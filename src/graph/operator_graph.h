// The operator graph: NSFlow's in-memory representation of one loop of an
// NSAI workload, as extracted from the program trace (paper Fig. 2, "Program
// Trace (.json)" -> frontend).
//
// Nodes carry the operator kind, data dependencies (producer node ids), the
// lowered kernel dimensions used by the analytical model, and byte-level
// memory footprints under the active precision policy. The graph is a DAG;
// `Validate` enforces acyclicity and reference integrity.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/op.h"
#include "quant/precision.h"

namespace nsflow {

using NodeId = std::int64_t;
inline constexpr NodeId kInvalidNode = -1;

struct OpNode {
  NodeId id = kInvalidNode;
  std::string name;             // e.g. "conv2d_1", "inv_binding_circular_2"
  OpKind kind = OpKind::kInput;
  std::vector<NodeId> inputs;   // Producer nodes.

  // Kernel dimensions (which one is meaningful depends on the unit).
  GemmDims gemm;                // AdArray NN mode.
  VsaDims vsa;                  // AdArray VSA mode.
  std::int64_t elem_count = 0;  // SIMD ops.

  // Memory footprints in bytes at the workload's precision policy.
  double weight_bytes = 0.0;    // Stationary operand (filters / codebooks).
  double activation_bytes = 0.0;  // Streaming operand(s).
  double output_bytes = 0.0;

  double Flops() const;
  double TotalBytes() const {
    return weight_bytes + activation_bytes + output_bytes;
  }
  /// DRAM traffic the op generates on a cache-based device. For vector VSA
  /// kernels the modulo-indexed circular access defeats reuse, so the
  /// streamed operand is re-fetched once per output element (the paper's
  /// "streaming vector elements, increasing the memory bandwidth pressure",
  /// Sec. II-B); all other ops touch their working set once.
  double TrafficBytes() const;
  Domain domain() const { return DomainOf(kind); }
  ComputeUnit unit() const { return UnitOf(kind); }
  OpCategory category() const { return CategoryOf(kind); }
};

/// Aggregate FLOP / byte / runtime-share statistics per domain, used by the
/// characterization benches (Fig. 1) and the DSE memory sizing.
struct DomainStats {
  double flops = 0.0;
  double bytes = 0.0;          // Working-set footprint (storage accounting).
  double traffic_bytes = 0.0;  // DRAM traffic (roofline accounting).
  int ops = 0;

  /// Arithmetic intensity in FLOPs per *transferred* byte (roofline x-axis).
  double ArithmeticIntensity() const {
    return traffic_bytes > 0 ? flops / traffic_bytes : 0.0;
  }
};

class OperatorGraph {
 public:
  OperatorGraph() = default;
  explicit OperatorGraph(std::string workload_name)
      : workload_name_(std::move(workload_name)) {}

  const std::string& workload_name() const { return workload_name_; }
  void set_workload_name(std::string name) { workload_name_ = std::move(name); }

  /// Number of algorithm iterations ("loops") this graph represents one of.
  int loop_count() const { return loop_count_; }
  void set_loop_count(int n) { loop_count_ = n; }

  PrecisionPolicy precision() const { return precision_; }
  void set_precision(PrecisionPolicy p) { precision_ = p; }

  /// Append a node; returns its id. Inputs must already exist (ids < new id),
  /// which makes insertion order a valid topological order.
  NodeId AddNode(OpNode node);

  const OpNode& node(NodeId id) const;
  OpNode& node(NodeId id);
  std::optional<NodeId> FindByName(const std::string& name) const;

  std::int64_t size() const { return static_cast<std::int64_t>(nodes_.size()); }
  const std::vector<OpNode>& nodes() const { return nodes_; }

  /// Consumers of each node (reverse adjacency), rebuilt on demand.
  std::vector<std::vector<NodeId>> BuildConsumers() const;

  /// Throws CheckError on dangling references or forward edges.
  void Validate() const;

  DomainStats StatsFor(Domain domain) const;
  DomainStats StatsFor(OpCategory category) const;
  double TotalFlops() const;
  double TotalBytes() const;

  /// All nodes of a given compute unit, in topological (insertion) order.
  std::vector<NodeId> NodesOnUnit(ComputeUnit unit) const;

 private:
  std::string workload_name_ = "unnamed";
  int loop_count_ = 1;
  PrecisionPolicy precision_ = PrecisionPolicy::Uniform(Precision::kFP32);
  std::vector<OpNode> nodes_;
};

}  // namespace nsflow
