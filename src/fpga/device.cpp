#include "fpga/device.h"

#include "common/error.h"

namespace nsflow {

FpgaDevice U250() {
  FpgaDevice d;
  d.name = "AMD U250";
  d.dsp = 12288;
  d.lut = 1728000;
  d.ff = 3456000;
  d.bram18 = 5376;        // 2688 x 36 Kb = 5376 x 18 Kb units.
  d.uram = 1280;
  d.lutram_luts = 791040; // SLICEM LUTs usable as distributed RAM.
  d.max_clock_hz = 500e6;
  return d;
}

FpgaDevice Zcu104() {
  FpgaDevice d;
  d.name = "ZCU104";
  d.dsp = 1728;
  d.lut = 230400;
  d.ff = 460800;
  d.bram18 = 624;         // 312 x 36 Kb.
  d.uram = 96;
  d.lutram_luts = 101760;
  d.max_clock_hz = 400e6;
  return d;
}

FpgaDevice DeviceByName(const std::string& name) {
  if (name == "u250") {
    return U250();
  }
  if (name == "zcu104") {
    return Zcu104();
  }
  throw Error("unknown FPGA device '" + name + "' (known: u250, zcu104)");
}

}  // namespace nsflow
