// Radix-2 FFT and FFT-accelerated circular convolution.
//
// The direct blockwise circular convolution is O(d²) per block — fine for
// hardware (the AdArray streams it in 3H + d − 1 cycles) but wasteful for
// host-side software such as the reasoning stack and the golden models. For
// power-of-two block dims (NVSA uses d = 256) the convolution theorem gives
// C = IFFT(FFT(A) ⊙ FFT(B)) in O(d log d).
//
// `FastCircularConvolve` transparently falls back to the direct form for
// non-power-of-two lengths, so callers can use it unconditionally; property
// tests pin it to vsa::CircularConvolve within floating-point tolerance.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace nsflow::vsa {

/// In-place iterative radix-2 Cooley-Tukey FFT. `data.size()` must be a
/// power of two. `inverse` applies the conjugate transform WITHOUT the 1/N
/// normalization (callers normalize once).
void Fft(std::span<std::complex<double>> data, bool inverse);

/// Circular convolution via the convolution theorem (power-of-two d), or
/// the direct O(d²) form otherwise.
void FastCircularConvolve(std::span<const float> a, std::span<const float> b,
                          std::span<float> out);

/// Circular correlation via conj(FFT(a)) ⊙ FFT(b) (power-of-two d), or the
/// direct form otherwise: out[n] = sum_k a[k] * b[(k + n) mod d].
void FastCircularCorrelate(std::span<const float> a, std::span<const float> b,
                           std::span<float> out);

}  // namespace nsflow::vsa
