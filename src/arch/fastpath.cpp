#include "arch/fastpath.h"

#include <algorithm>

#include "common/error.h"
#include "model/analytical.h"

namespace nsflow::arch {

LoopAlloc TunedAlloc(const AcceleratorDesign& design,
                     const DataflowGraph& dfg) {
  LoopAlloc alloc;
  if (design.sequential_mode) {
    // Single-kind execution: every kernel in turn owns the whole array.
    alloc.uniform_nl = design.array.count;
    alloc.uniform_nv = design.array.count;
    return alloc;
  }
  NSF_CHECK_MSG(design.nl.size() == dfg.layers().size(),
                "tuned design needs one Nl entry per layer");
  NSF_CHECK_MSG(design.nv.size() == dfg.vsa_ops().size(),
                "tuned design needs one Nv entry per VSA node");
  alloc.nl = design.nl;
  alloc.nv = design.nv;
  return alloc;
}

LoopAlloc RefitAlloc(const AcceleratorDesign& design,
                     const DataflowGraph& dfg) {
  LoopAlloc alloc;
  if (design.sequential_mode || dfg.vsa_ops().empty()) {
    // Whole array per kernel: sequential execution, or an all-NN graph for
    // which the adaptive array refolds every sub-array into GEMM mode.
    alloc.uniform_nl = design.array.count;
    alloc.uniform_nv = design.array.count;
    return alloc;
  }
  const std::int64_t nn_share =
      design.default_nl > 0 && design.default_nl < design.array.count
          ? design.default_nl
          : std::max<std::int64_t>(1, design.array.count / 2);
  alloc.uniform_nl = nn_share;
  alloc.uniform_nv = design.array.count - nn_share;
  return alloc;
}

SimReport EstimateLoopReport(const AcceleratorDesign& design,
                             const DataflowGraph& dfg,
                             const LoopAlloc& alloc) {
  SimReport report;
  const auto& layers = dfg.layers();
  const auto& vsa = dfg.vsa_ops();
  NSF_CHECK_MSG(alloc.nl.empty() || alloc.nl.size() == layers.size(),
                "allocation needs one Nl entry per layer");
  NSF_CHECK_MSG(alloc.nv.empty() || alloc.nv.size() == vsa.size(),
                "allocation needs one Nv entry per VSA node");

  // Derived exactly as the controller derives them at construction: the AXI
  // rate from the design's bandwidth/clock ratio, and the MemA partitioning
  // merged in sequential (single-kind) mode.
  const double bytes_per_cycle = design.dram_bandwidth / design.clock_hz;
  const double mem_a1_capacity = design.memory.mem_a1_bytes;
  const double mem_a_nn_capacity =
      design.sequential_mode
          ? design.memory.mem_a1_bytes + design.memory.mem_a2_bytes
          : design.memory.mem_a1_bytes;

  // ------------------------------------------------------------- NN lane
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const auto& layer = layers[i];
    NSF_CHECK_MSG(layer.weight_bytes <= mem_a_nn_capacity / 2.0 + 0.5 ||
                      layer.weight_bytes <= mem_a1_capacity / 2.0 + 0.5,
                  "DSE memory sizing must fit the largest filter");
    report.mem_a_swaps += 1.0;
    report.nn_lane_cycles +=
        LayerCycles(design.array, alloc.Nl(i), layer.gemm);

    // AXI traffic: filters always; outputs only when the URAM cache cannot
    // hold them for the next consumer.
    double bytes = layer.weight_bytes;
    if (layer.output_bytes > design.memory.cache_bytes) {
      bytes += layer.output_bytes;
    }
    report.dram_cycles += bytes / bytes_per_cycle;
    report.dram_bytes += bytes;
    ++report.kernels_executed;
  }

  // ------------------------------------------------------------ VSA lane
  if (!vsa.empty()) {
    // Eq. (5) walked per node in list order — the same accumulation
    // VsaTotalCycles performs, without materializing an Nv vector.
    double temporal = 0.0;
    double spatial = 0.0;
    for (std::size_t j = 0; j < vsa.size(); ++j) {
      const std::int64_t nv = alloc.Nv(j);
      temporal += VsaTemporalCycles(design.array, nv, vsa[j].vsa);
      spatial += VsaSpatialCycles(design.array, nv, vsa[j].vsa);
    }
    report.vsa_lane_cycles = std::min(temporal, spatial);
    for (const auto& v : vsa) {
      report.mem_a_swaps += 1.0;
      report.dram_cycles += v.bytes / bytes_per_cycle;
      report.dram_bytes += v.bytes;
      ++report.kernels_executed;
    }
  }

  // --------------------------------------------------------------- Merge
  report.array_cycles =
      design.sequential_mode
          ? report.nn_lane_cycles + report.vsa_lane_cycles
          : std::max(report.nn_lane_cycles, report.vsa_lane_cycles);

  report.simd_cycles = SimdCycles(dfg.TotalSimdElems(), design.simd_width);
  report.simd_exposed_cycles =
      std::max(0.0, report.simd_cycles - report.array_cycles);
  report.dram_stall_cycles =
      std::max(0.0, report.dram_cycles - report.array_cycles);
  report.total_cycles = report.array_cycles + report.simd_exposed_cycles +
                        report.dram_stall_cycles;
  return report;
}

SimReport EstimateLoop(const AcceleratorDesign& design,
                       const DataflowGraph& dfg) {
  return EstimateLoopReport(design, dfg, TunedAlloc(design, dfg));
}

double EstimateWeightDramCycles(const AcceleratorDesign& design,
                                const DataflowGraph& dfg) {
  double weight_bytes = 0.0;
  for (const auto& layer : dfg.layers()) {
    weight_bytes += layer.weight_bytes;
  }
  for (const auto& v : dfg.vsa_ops()) {
    // Only the stationary half of a VSA node's footprint stays resident
    // across batch items; the streamed query operand is per-request traffic.
    weight_bytes += v.bytes / 2.0;
  }
  return weight_bytes / (design.dram_bandwidth / design.clock_hz);
}

double WorkloadSecondsFromReport(const AcceleratorDesign& design,
                                 const DataflowGraph& dfg,
                                 const SimReport& steady) {
  const int loops = std::max(1, dfg.source().loop_count());
  if (design.sequential_mode || loops == 1) {
    return steady.Seconds(design.clock_hz) * loops;
  }
  const double fill = steady.nn_lane_cycles + steady.vsa_lane_cycles +
                      steady.simd_exposed_cycles + steady.dram_stall_cycles;
  return (fill + static_cast<double>(loops - 1) * steady.total_cycles) /
         design.clock_hz;
}

ServingModel ServingModelFromReport(const AcceleratorDesign& design,
                                    const DataflowGraph& dfg,
                                    const SimReport& steady) {
  ServingModel model;
  model.loops = std::max(1, dfg.source().loop_count());
  model.clock_hz = design.clock_hz;
  model.first_seconds = WorkloadSecondsFromReport(design, dfg, steady);
  // Marginal loop cost for tasks 2..B: same array/SIMD work, but the
  // stationary-operand AXI traffic disappears (weight-stationary serving),
  // shrinking — often eliminating — the exposed DRAM stall.
  const double amortized_dram = std::max(
      0.0, steady.dram_cycles - EstimateWeightDramCycles(design, dfg));
  const double amortized_stall =
      std::max(0.0, amortized_dram - steady.array_cycles);
  model.marginal_cycles =
      steady.array_cycles + steady.simd_exposed_cycles + amortized_stall;
  return model;
}

ServingModel BuildServingModel(const AcceleratorDesign& design,
                               const DataflowGraph& dfg, bool tuned) {
  const LoopAlloc alloc =
      tuned ? TunedAlloc(design, dfg) : RefitAlloc(design, dfg);
  return ServingModelFromReport(design, dfg,
                                EstimateLoopReport(design, dfg, alloc));
}

double BatchSecondsFromReport(const AcceleratorDesign& design,
                              const DataflowGraph& dfg,
                              const SimReport& steady, int batch_size) {
  NSF_CHECK_MSG(batch_size >= 1, "batch size must be positive");
  return ServingModelFromReport(design, dfg, steady).BatchSeconds(batch_size);
}

double EstimateWorkloadSeconds(const AcceleratorDesign& design,
                               const DataflowGraph& dfg) {
  return WorkloadSecondsFromReport(design, dfg, EstimateLoop(design, dfg));
}

double EstimateWorkloadBatchSeconds(const AcceleratorDesign& design,
                                    const DataflowGraph& dfg,
                                    int batch_size) {
  return BatchSecondsFromReport(design, dfg, EstimateLoop(design, dfg),
                                batch_size);
}

double EstimateServingBatchSeconds(const AcceleratorDesign& design,
                                   const DataflowGraph& dfg, int batch_size,
                                   bool tuned) {
  const LoopAlloc alloc =
      tuned ? TunedAlloc(design, dfg) : RefitAlloc(design, dfg);
  return BatchSecondsFromReport(design, dfg,
                                EstimateLoopReport(design, dfg, alloc),
                                batch_size);
}

}  // namespace nsflow::arch
