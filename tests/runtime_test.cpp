// Tests for the XRT-like host runtime over the simulated accelerator.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dse/dse.h"
#include "runtime/host_runtime.h"
#include "workloads/builders.h"

namespace nsflow::runtime {
namespace {

struct Deployed {
  std::unique_ptr<OperatorGraph> graph;
  std::unique_ptr<DataflowGraph> dfg;
  std::unique_ptr<Accelerator> accel;
};

Deployed DeployNvsa() {
  Deployed d;
  d.graph = std::make_unique<OperatorGraph>(workloads::MakeNvsa());
  d.dfg = std::make_unique<DataflowGraph>(*d.graph);
  const DseResult dse = RunTwoPhaseDse(*d.dfg, {});
  d.accel = std::make_unique<Accelerator>(dse.design, *d.dfg);
  return d;
}

TEST(HostRuntimeTest, GemmKernelComputesCorrectProduct) {
  auto d = DeployNvsa();
  Rng rng(1);
  Tensor a({6, 10});
  Tensor b({10, 4});
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    a.at(i) = static_cast<float>(rng.Gaussian());
  }
  for (std::int64_t i = 0; i < b.numel(); ++i) {
    b.at(i) = static_cast<float>(rng.Gaussian());
  }
  const KernelRun run = d.accel->RunGemm(a, b);
  const Tensor golden = MatMul(a, b);
  for (std::int64_t i = 0; i < golden.numel(); ++i) {
    EXPECT_NEAR(run.output.at(i), golden.at(i), 1e-3);
  }
  EXPECT_GT(run.device_cycles, 0.0);
}

TEST(HostRuntimeTest, BindUnbindRoundTripOnDevice) {
  auto d = DeployNvsa();
  Rng rng(2);
  const vsa::BlockShape shape{4, 64};
  auto a = vsa::RandomHyperVector(shape, rng);
  a.NormalizeBlocks();
  auto b = vsa::RandomHyperVector(shape, rng);
  b.NormalizeBlocks();

  const KernelRun bound = d.accel->RunBind(a, b);
  const vsa::HyperVector composite(shape, bound.output);
  // Golden: library binding.
  const auto golden = vsa::Bind(a, b);
  for (std::int64_t i = 0; i < golden.tensor().numel(); ++i) {
    EXPECT_NEAR(composite.tensor().at(i), golden.tensor().at(i), 1e-3);
  }

  // Unbind on-device recovers the factor approximately (HRR property).
  const KernelRun recovered_run = d.accel->RunUnbind(composite, b);
  const vsa::HyperVector recovered(shape, recovered_run.output);
  EXPECT_GT(vsa::Similarity(recovered, a), 0.6);
}

TEST(HostRuntimeTest, SoftmaxKernel) {
  auto d = DeployNvsa();
  Tensor logits({4}, {0.0f, 1.0f, 2.0f, 3.0f});
  const KernelRun run = d.accel->RunSoftmax(logits);
  float sum = 0.0f;
  for (std::int64_t i = 0; i < run.output.numel(); ++i) {
    sum += run.output.at(i);
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5);
}

TEST(HostRuntimeTest, BufferSyncChargesAxiCycles) {
  auto d = DeployNvsa();
  BufferObject bo = d.accel->AllocBuffer(1 << 20);
  const double to_device = bo.SyncToDevice();
  const double from_device = bo.SyncFromDevice();
  EXPECT_GT(to_device, 0.0);
  EXPECT_DOUBLE_EQ(to_device, from_device);
}

TEST(HostRuntimeTest, WorkloadRunProducesRealTimeLatency) {
  auto d = DeployNvsa();
  const double seconds = d.accel->RunWorkload();
  // The headline claim: NSFlow enables real-time NSAI — NVSA end-to-end
  // inference lands in the sub-second range on the generated design.
  EXPECT_GT(seconds, 1e-5);
  EXPECT_LT(seconds, 1.0);
}

TEST(HostRuntimeTest, ProfileLoopReportsAllUnits) {
  auto d = DeployNvsa();
  const arch::SimReport report = d.accel->ProfileLoop();
  EXPECT_GT(report.nn_lane_cycles, 0.0);
  EXPECT_GT(report.vsa_lane_cycles, 0.0);
  EXPECT_GT(report.simd_cycles, 0.0);
  EXPECT_GT(report.kernels_executed, 100);
  EXPECT_GT(report.dram_bytes, 0.0);
  EXPECT_GT(report.mem_a_swaps, 0.0);
}

}  // namespace
}  // namespace nsflow::runtime
