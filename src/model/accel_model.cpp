#include "model/accel_model.h"

#include <algorithm>

#include "common/error.h"

namespace nsflow {
namespace {

/// Bytes that must cross the AXI interface per loop: every node's operands
/// whose residency exceeds its double-buffered block are (re)streamed. We
/// charge each node's working set once — the DAG sizes MemA/MemB/MemC so
/// that intra-node traffic never re-fetches (Sec. V-C, "eliminate inner-node
/// memory stalls") — plus each layer's output unless it fits the cache.
double LoopDramBytes(const DataflowGraph& dfg,
                     const AcceleratorDesign& design) {
  double bytes = 0.0;
  for (const auto& layer : dfg.layers()) {
    bytes += layer.weight_bytes;
    if (layer.output_bytes > design.memory.cache_bytes) {
      bytes += layer.output_bytes;
    }
  }
  for (const auto& v : dfg.vsa_ops()) {
    bytes += v.bytes;
  }
  return bytes;
}

}  // namespace

AccelPerf EstimateAccelerator(const DataflowGraph& dfg,
                              const AcceleratorDesign& design) {
  const auto& layers = dfg.layers();
  const auto& vsa = dfg.vsa_ops();
  NSF_CHECK_MSG(design.sequential_mode || design.nl.size() == layers.size(),
                "parallel design needs one Nl entry per layer");
  NSF_CHECK_MSG(design.sequential_mode || design.nv.size() == vsa.size(),
                "parallel design needs one Nv entry per VSA node");

  AccelPerf perf;
  if (design.sequential_mode) {
    double nn = 0.0;
    for (const auto& layer : layers) {
      nn += LayerCycles(design.array, design.array.count, layer.gemm);
    }
    std::vector<std::int64_t> all(vsa.size(), design.array.count);
    perf.nn_cycles = nn;
    perf.vsa_cycles = vsa.empty() ? 0.0 : VsaTotalCycles(design.array, vsa, all);
    perf.array_cycles = perf.nn_cycles + perf.vsa_cycles;
  } else {
    perf.nn_cycles =
        layers.empty() ? 0.0 : NnTotalCycles(design.array, layers, design.nl);
    perf.vsa_cycles =
        vsa.empty() ? 0.0 : VsaTotalCycles(design.array, vsa, design.nv);
    perf.array_cycles = std::max(perf.nn_cycles, perf.vsa_cycles);
  }

  perf.simd_cycles = SimdCycles(dfg.TotalSimdElems(), design.simd_width);
  // The SIMD unit drains MemC while the array computes; only the excess
  // beyond array busy time is exposed (the DAG sizes the SIMD so this is
  // normally zero — Sec. V-C "SIMD size is minimized such that latency ...
  // can be hidden").
  perf.simd_exposed_cycles =
      std::max(0.0, perf.simd_cycles - perf.array_cycles);

  const double bytes_per_cycle = design.dram_bandwidth / design.clock_hz;
  perf.dram_cycles = LoopDramBytes(dfg, design) / bytes_per_cycle;
  // Double buffering: transfers overlap compute; only the excess stalls.
  perf.dram_stall_cycles =
      std::max(0.0, perf.dram_cycles - perf.array_cycles);

  perf.total_cycles =
      perf.array_cycles + perf.simd_exposed_cycles + perf.dram_stall_cycles;
  return perf;
}

double EndToEndSeconds(const DataflowGraph& dfg,
                       const AcceleratorDesign& design) {
  const AccelPerf steady = EstimateAccelerator(dfg, design);
  const int loops = std::max(1, dfg.source().loop_count());

  if (design.sequential_mode || loops == 1) {
    return steady.Seconds(design.clock_hz) * loops;
  }
  // Pipelined loops: the first iteration pays NN + VSA serially (symbolic
  // depends on the neural output — the critical-path dependency of Sec. I);
  // the remaining loops run at the steady-state fused rate.
  const double fill_cycles = steady.nn_cycles + steady.vsa_cycles +
                             steady.simd_exposed_cycles +
                             steady.dram_stall_cycles;
  const double total =
      fill_cycles + static_cast<double>(loops - 1) * steady.total_cycles;
  return total / design.clock_hz;
}

}  // namespace nsflow
