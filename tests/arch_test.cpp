// Tests for the cycle-level backend: the Fig. 3b circular-convolution
// column, the AdArray (folding, GEMM, batch circular conv), and the SIMD
// unit. Functional outputs are validated against the VSA golden model and
// dense MatMul.
#include <cmath>

#include <gtest/gtest.h>

#include "arch/adarray.h"
#include "arch/circ_conv_column.h"
#include "arch/simd_unit.h"
#include "common/rng.h"
#include "common/tensor.h"
#include "vsa/block_code.h"

namespace nsflow::arch {
namespace {

std::vector<float> RandomVec(std::int64_t n, Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = static_cast<float>(rng.Gaussian());
  }
  return v;
}

TEST(CircConvColumnTest, PaperThreeElementExample) {
  // H = 3 PEs, d = 3: the exact scenario of Fig. 3(b).
  CircConvColumn column(3);
  const std::vector<float> a = {1.0f, 2.0f, 3.0f};
  const std::vector<float> b = {5.0f, 7.0f, 11.0f};
  const auto run = column.Run(a, b);
  ASSERT_EQ(run.output.size(), 3u);
  EXPECT_FLOAT_EQ(run.output[0], 48.0f);  // A1B1 + A2B3 + A3B2.
  EXPECT_FLOAT_EQ(run.output[1], 50.0f);
  EXPECT_FLOAT_EQ(run.output[2], 40.0f);
  EXPECT_EQ(run.passes, 1);
  // T = 3H + d - 1 = 11 cycles.
  EXPECT_EQ(run.cycles, 11);
}

class CircConvColumnParamTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(CircConvColumnParamTest, MatchesGoldenModelAndEqFourCycles) {
  const auto [height, dim] = GetParam();
  CircConvColumn column(height);
  Rng rng(height * 1000 + dim);
  const auto a = RandomVec(dim, rng);
  const auto b = RandomVec(dim, rng);

  const auto run = column.Run(a, b);

  // Functional: register-stepped pipeline == direct circular convolution.
  std::vector<float> golden(static_cast<std::size_t>(dim));
  vsa::CircularConvolve(a, b, golden);
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_NEAR(run.output[i], golden[i], 1e-3 * (std::abs(golden[i]) + 1.0))
        << "output " << i;
  }

  // Timing: passes x (3H + d - 1), the Eq. (4) streaming period.
  const std::int64_t passes = (dim + height - 1) / height;
  EXPECT_EQ(run.passes, passes);
  EXPECT_EQ(run.cycles, passes * (3 * height + dim - 1));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CircConvColumnParamTest,
    ::testing::Values(std::tuple<std::int64_t, std::int64_t>{4, 4},
                      std::tuple<std::int64_t, std::int64_t>{4, 16},
                      std::tuple<std::int64_t, std::int64_t>{8, 5},
                      std::tuple<std::int64_t, std::int64_t>{16, 64},
                      std::tuple<std::int64_t, std::int64_t>{32, 256},
                      std::tuple<std::int64_t, std::int64_t>{7, 23}),
    [](const auto& info) {
      return "H" + std::to_string(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param));
    });

TEST(CircConvColumnTest, CommutativityThroughTheDatapath) {
  CircConvColumn column(8);
  Rng rng(99);
  const auto a = RandomVec(24, rng);
  const auto b = RandomVec(24, rng);
  const auto ab = column.Run(a, b);
  const auto ba = column.Run(b, a);
  for (std::size_t i = 0; i < ab.output.size(); ++i) {
    EXPECT_NEAR(ab.output[i], ba.output[i], 1e-3);
  }
}

TEST(CircConvColumnTest, RejectsMismatchedOperands) {
  CircConvColumn column(4);
  std::vector<float> a(8), b(9);
  EXPECT_THROW(column.Run(a, b), Error);
}

TEST(AdArrayTest, FoldingBoundsEnforced) {
  AdArray array(ArrayConfig{8, 8, 4});
  EXPECT_NO_THROW(array.Fold({2, 2}));
  EXPECT_NO_THROW(array.Fold({4, 0}));
  EXPECT_THROW(array.Fold({3, 2}), CheckError);
  EXPECT_THROW(array.Fold({-1, 2}), CheckError);
}

TEST(AdArrayTest, GemmMatchesMatMulAcrossTilings) {
  // The tiled hardware walk must agree with the dense golden model even
  // when dimensions do not divide the array geometry.
  AdArray array(ArrayConfig{8, 8, 4});
  array.Fold({4, 0});
  Rng rng(5);
  for (const auto& [m, n, k] :
       std::vector<std::tuple<int, int, int>>{{3, 5, 7},
                                              {8, 8, 8},
                                              {16, 24, 32},
                                              {10, 100, 9},
                                              {33, 17, 65}}) {
    Tensor a({m, n});
    Tensor b({n, k});
    for (std::int64_t i = 0; i < a.numel(); ++i) {
      a.at(i) = static_cast<float>(rng.Gaussian());
    }
    for (std::int64_t i = 0; i < b.numel(); ++i) {
      b.at(i) = static_cast<float>(rng.Gaussian());
    }
    for (const std::int64_t nl : {1, 2, 4}) {
      const auto run = array.RunGemm(a, b, nl);
      const Tensor golden = MatMul(a, b);
      for (std::int64_t i = 0; i < golden.numel(); ++i) {
        EXPECT_NEAR(run.output.at(i), golden.at(i), 1e-3)
            << m << "x" << n << "x" << k << " nl=" << nl;
      }
      EXPECT_DOUBLE_EQ(run.cycles,
                       LayerCycles(array.config(), nl, GemmDims{m, n, k}));
    }
  }
}

TEST(AdArrayTest, GemmNeedsNnFoldShare) {
  AdArray array(ArrayConfig{8, 8, 4});
  array.Fold({0, 4});  // All-VSA fold.
  EXPECT_THROW(array.RunGemm(Tensor({4, 4}), Tensor({4, 4}), 1), CheckError);
}

TEST(AdArrayTest, CircConvBatchMatchesVsaBind) {
  AdArray array(ArrayConfig{8, 8, 4});
  array.Fold({0, 4});
  Rng rng(6);
  const vsa::BlockShape shape{4, 32};
  const auto a = vsa::RandomHyperVector(shape, rng);
  const auto b = vsa::RandomHyperVector(shape, rng);

  const auto run = array.RunCircConvBatch(a.tensor(), b.tensor(), 2);
  const auto golden = vsa::Bind(a, b);
  for (std::int64_t i = 0; i < golden.tensor().numel(); ++i) {
    EXPECT_NEAR(run.output.at(i), golden.tensor().at(i), 1e-3);
  }
  // Cycles follow Eq. (5)'s min of the two mappings.
  const VsaDims dims{4, 32};
  EXPECT_DOUBLE_EQ(run.cycles,
                   std::min(VsaSpatialCycles(array.config(), 2, dims),
                            VsaTemporalCycles(array.config(), 2, dims)));
}

TEST(AdArrayTest, UtilizationIsAFraction) {
  AdArray array(ArrayConfig{8, 8, 2});
  array.Fold({2, 0});
  Rng rng(7);
  Tensor a({16, 16});
  Tensor b({16, 16});
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    a.at(i) = 1.0f;
    b.at(i) = 1.0f;
  }
  const auto run = array.RunGemm(a, b, 2);
  EXPECT_GT(run.utilization, 0.0);
  EXPECT_LE(run.utilization, 1.0);
  EXPECT_GT(array.total_macs(), 0.0);
  EXPECT_GT(array.nn_cycles(), 0.0);
}

TEST(DetailedGemmPassTest, MatchesDenseProductAndTiming) {
  AdArray array(ArrayConfig{8, 8, 1});
  Rng rng(8);
  // Tile: B[6, 5] stationary, A[10, 6] streamed.
  Tensor a({10, 6});
  Tensor b({6, 5});
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    a.at(i) = static_cast<float>(rng.Gaussian());
  }
  for (std::int64_t i = 0; i < b.numel(); ++i) {
    b.at(i) = static_cast<float>(rng.Gaussian());
  }
  const auto run = array.SimulateGemmPassDetailed(a, b);
  const Tensor golden = MatMul(a, b);
  for (std::int64_t i = 0; i < golden.numel(); ++i) {
    EXPECT_NEAR(run.output.at(i), golden.at(i), 1e-4);
  }
  // Eq. (1) single-pass term: 2H + W + m - 2 at full sub-array geometry.
  EXPECT_EQ(run.cycles, 2 * 8 + 8 + 10 - 2);
}

TEST(DetailedGemmPassTest, RejectsOversizedTile) {
  AdArray array(ArrayConfig{4, 4, 1});
  EXPECT_THROW(array.SimulateGemmPassDetailed(Tensor({4, 8}), Tensor({8, 4})),
               CheckError);
}

TEST(SimdUnitTest, UnaryOps) {
  SimdUnit simd(16);
  std::vector<float> data = {-1.0f, 0.0f, 2.0f, -3.0f};
  simd.RunUnary(SimdOp::kRelu, data);
  EXPECT_EQ(data, (std::vector<float>{0.0f, 0.0f, 2.0f, 0.0f}));

  std::vector<float> scaled = {1.0f, 2.0f};
  simd.RunUnary(SimdOp::kScale, scaled, 3.0f);
  EXPECT_EQ(scaled, (std::vector<float>{3.0f, 6.0f}));

  std::vector<float> clamped = {-5.0f, 0.5f, 5.0f};
  simd.RunUnary(SimdOp::kClamp, clamped, 0.0f, 1.0f);
  EXPECT_EQ(clamped, (std::vector<float>{0.0f, 0.5f, 1.0f}));
}

TEST(SimdUnitTest, SoftmaxNormalizes) {
  SimdUnit simd(16);
  std::vector<float> data = {1.0f, 2.0f, 3.0f, 4.0f};
  simd.RunUnary(SimdOp::kSoftmax, data);
  float sum = 0.0f;
  for (const float v : data) {
    EXPECT_GT(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5);
  EXPECT_GT(data[3], data[0]);  // Monotone in the logits.
}

TEST(SimdUnitTest, Reductions) {
  SimdUnit simd(8);
  const std::vector<float> a = {3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(simd.RunReduce(SimdOp::kSum, a).scalar_result, 7.0);
  EXPECT_DOUBLE_EQ(simd.RunReduce(SimdOp::kNorm, a).scalar_result, 5.0);
  const std::vector<float> b = {1.0f, 2.0f};
  EXPECT_DOUBLE_EQ(simd.RunReduce(SimdOp::kDot, a, b).scalar_result, 11.0);
}

TEST(SimdUnitTest, BinaryOpsAndCycleAccounting) {
  SimdUnit simd(4);
  const std::vector<float> a = {1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<float> b = {5.0f, 6.0f, 7.0f, 8.0f};
  std::vector<float> out(4);
  const auto add = simd.RunBinary(SimdOp::kAdd, a, b, out);
  EXPECT_EQ(out, (std::vector<float>{6.0f, 8.0f, 10.0f, 12.0f}));
  EXPECT_GT(add.cycles, 0.0);
  simd.RunBinary(SimdOp::kMul, a, b, out);
  EXPECT_EQ(out[3], 32.0f);
  EXPECT_GT(simd.total_cycles(), 0.0);
  EXPECT_DOUBLE_EQ(simd.total_elems(), 8.0);
}

TEST(SimdUnitTest, WrongArityThrows) {
  SimdUnit simd(4);
  std::vector<float> data(4);
  EXPECT_THROW(simd.RunUnary(SimdOp::kAdd, data), Error);
  EXPECT_THROW(simd.RunReduce(SimdOp::kRelu, data), Error);
  std::vector<float> small(2);
  EXPECT_THROW(simd.RunBinary(SimdOp::kAdd, data, small, data), Error);
}

}  // namespace
}  // namespace nsflow::arch
