#include "serve/autoscaler.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "arch/fastpath.h"
#include "common/error.h"
#include "fpga/resource_model.h"
#include "obs/metrics.h"
#include "serve/cluster.h"

namespace nsflow::serve {
namespace {

std::string Rps(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", rate);
  return buf;
}

void Account(PlanResources& used, const ResourceReport& report,
             double sign) {
  used.dsp += sign * report.dsp;
  used.lut += sign * report.lut;
  used.ff += sign * report.ff;
  used.bram18 += sign * report.bram18;
  used.uram += sign * report.uram;
}

}  // namespace

Autoscaler::Autoscaler(const WorkloadRegistry& registry,
                       const std::vector<WorkloadShare>& mix,
                       ServerPool& pool, const ServeOptions& options)
    : registry_(registry),
      pool_(pool),
      opts_(options.autoscale_opts),
      serve_(options) {
  NSF_CHECK_MSG(!mix.empty(), "autoscaler needs a workload mix");
  NSF_CHECK_MSG(opts_.interval_s > 0.0, "autoscale interval must be positive");
  NSF_CHECK_MSG(opts_.window_s > 0.0, "autoscale window must be positive");
  NSF_CHECK_MSG(opts_.headroom > 0.0, "autoscale headroom must be positive");
  NSF_CHECK_MSG(opts_.down_band > 0.0 && opts_.down_band < opts_.up_band,
                "hysteresis bands need 0 < down_band < up_band");
  NSF_CHECK_MSG(opts_.up_band < 1.0 + opts_.headroom,
                "up_band must stay below 1 + headroom, or drift inside the "
                "dead band can exceed the provisioned capacity "
                "(docs/AUTOSCALING.md)");
  NSF_CHECK_MSG(opts_.cooldown_s >= 0.0, "cool-down must be non-negative");
  NSF_CHECK_MSG(opts_.reconfig_s >= 0.0,
                "reconfiguration delay must be non-negative");
  NSF_CHECK_MSG(opts_.min_replicas >= 1 &&
                    opts_.min_replicas <= opts_.max_replicas,
                "need 1 <= min_replicas <= max_replicas");

  // The only DSE the autoscaler ever runs: the frontier sweep, up front.
  PlanOptions frontier_options;
  frontier_options.device = opts_.device;
  frontier_options.devices = opts_.devices;
  frontier_options.frontier_points = opts_.frontier_points;
  frontier_options.dse = opts_.dse;
  frontier_options.dictionary_bytes = opts_.dictionary_bytes;
  frontier_ = BuildPlanFrontier(registry, mix, frontier_options);

  double total_share = 0.0;
  for (const WorkloadShare& entry : mix) {
    NSF_CHECK_MSG(entry.share > 0.0, "mix shares must be positive");
    total_share += entry.share;
  }
  // Groups start provisioned for the scenario's peak share — the static
  // plan's sizing — so a run opening in a trough scales down, and a
  // peak-provisioned pool never scales up past what the plan deployed
  // until observed demand actually exceeds it.
  const double peak_rate =
      ScenarioPeakRate(serve_.scenario, serve_.qps, serve_.duration_s);
  for (const WorkloadShare& entry : mix) {
    Group group;
    group.workload = entry.workload;
    group.id = registry.IdOf(entry.workload);
    group.share = entry.share / total_share;
    group.provisioned_rps =
        peak_rate * group.share * (1.0 + opts_.headroom);
    const auto cap_index = static_cast<std::size_t>(group.id);
    group.batch_cap =
        cap_index < serve_.per_workload_max_batch.size() &&
                serve_.per_workload_max_batch[cap_index] > 0
            ? serve_.per_workload_max_batch[cap_index]
            : serve_.max_batch;
    group.last_delta_s = -std::numeric_limits<double>::infinity();
    groups_.push_back(std::move(group));
  }

  // Adopt the live pool's layout: every replica must be dedicated to
  // exactly one mix workload (partitioned pool — `nsflow plan` emits one).
  origin_.reserve(static_cast<std::size_t>(pool_.size()));
  for (int r = 0; r < pool_.size(); ++r) {
    WorkloadId served = kTunedForNone;
    for (int w = 0; w < pool_.workloads(); ++w) {
      if (pool_.CanServe(r, w)) {
        NSF_CHECK_MSG(served == kTunedForNone,
                      "autoscaling needs a partitioned pool — replica " +
                          std::to_string(r) +
                          " serves more than one workload");
        served = w;
      }
    }
    Group* group = nullptr;
    for (Group& candidate : groups_) {
      if (candidate.id == served) {
        group = &candidate;
        break;
      }
    }
    NSF_CHECK_MSG(group != nullptr,
                  "replica " + std::to_string(r) +
                      " serves a workload outside the autoscaled mix");
    group->members.push_back(r);

    // Resolve the replica's hardware to its workload's frontier point (the
    // deployed design came from the same deterministic DSE the frontier
    // re-ran, so planned pools always match).
    const PlanFrontier::WorkloadEntry& entry = EntryById(served);
    int point = -1;
    for (std::size_t p = 0; p < entry.points.size(); ++p) {
      if (SameServingDesign(entry.points[p].design, pool_.design(r))) {
        point = static_cast<int>(p);
        break;
      }
    }
    origin_.emplace_back(served, point);
    // Budget accounting: frontier-resolved hardware reuses the swept
    // resource report; off-frontier hardware is estimated once here.
    replica_resources_.push_back(
        point >= 0
            ? entry.resources[static_cast<std::size_t>(point)]
            : EstimateResources(pool_.design(r), frontier_.device));
    Account(used_, replica_resources_.back(), +1.0);
  }
  for (Group& group : groups_) {
    NSF_CHECK_MSG(!group.members.empty(),
                  "workload '" + group.workload +
                      "' has no replica in the initial pool");
    group.point_index = origin_[static_cast<std::size_t>(
                                    group.members.front())]
                            .second;
    for (const int member : group.members) {
      if (origin_[static_cast<std::size_t>(member)].second !=
          group.point_index) {
        group.point_index = -1;  // Mixed designs: let the replan choose.
        break;
      }
    }
  }

  next_tick_s_ = opts_.interval_s;
}

bool Autoscaler::FitsBudget(const ResourceReport& report) const {
  const FpgaDevice& device = frontier_.device;
  const auto budget = static_cast<double>(opts_.devices);
  return used_.dsp + report.dsp <=
             budget * static_cast<double>(device.dsp) &&
         used_.lut + report.lut <=
             budget * static_cast<double>(device.lut) &&
         used_.ff + report.ff <= budget * static_cast<double>(device.ff) &&
         used_.bram18 + report.bram18 <=
             budget * static_cast<double>(device.bram18) &&
         used_.uram + report.uram <=
             budget * static_cast<double>(device.uram);
}

const PlanFrontier::WorkloadEntry& Autoscaler::EntryById(
    WorkloadId id) const {
  for (const PlanFrontier::WorkloadEntry& entry : frontier_.workloads) {
    if (entry.workload_id == id) {
      return entry;
    }
  }
  throw Error("no frontier entry for workload id " + std::to_string(id));
}

Autoscaler::Target Autoscaler::ReplanGroup(int group_index,
                                           double target_rate) {
  Group& group = groups_[static_cast<std::size_t>(group_index)];
  Target target;
  target.group = group_index;
  target.target_rate = target_rate;
  if (target_rate <= 0.0) {
    // A silent tenant parks at the floor on its current design.
    target.replicas = opts_.min_replicas;
    target.batch_cap = group.batch_cap;
    target.point_index = group.point_index;
    return target;
  }

  // The capacity search at the observed rate. The scenario is stationary
  // Poisson on purpose: the windowed rate *is* the instantaneous demand —
  // peak-shaping already happened in the observation.
  PlanOptions replan;
  replan.qps = target_rate;
  replan.p99_slo_s = opts_.p99_slo_s;
  replan.device = opts_.device;
  replan.devices = opts_.devices;
  replan.max_replicas_per_workload = opts_.max_replicas;
  replan.max_utilization = opts_.max_utilization;
  replan.max_batch = serve_.max_batch;
  replan.max_wait_s = serve_.max_wait_s;

  // Design selection stays a planning-time decision: the replan is
  // restricted to the group's current frontier point (count, batch cap,
  // and assignment are the control loop's degrees of freedom), except
  // when the current design is off-frontier — then the full sweep picks.
  const PlanFrontier::WorkloadEntry& entry = EntryById(group.id);
  PlanFrontier restricted;
  restricted.device = frontier_.device;
  if (group.point_index >= 0) {
    PlanFrontier::WorkloadEntry one;
    one.workload = entry.workload;
    one.workload_id = entry.workload_id;
    const auto p = static_cast<std::size_t>(group.point_index);
    one.points = {entry.points[p]};
    one.models = {entry.models[p]};
    one.resources = {entry.resources[p]};
    restricted.workloads.push_back(std::move(one));
  } else {
    restricted.workloads.push_back(entry);
  }

  const std::vector<WorkloadShare> solo = {{group.workload, 1.0}};
  const PoolPlan plan = PlanCapacity(registry_, solo, replan, restricted);
  const GroupPlan& planned = plan.groups.front();
  if (planned.replicas <= 0) {
    // No frontier design fits the budget device at all — impossible for a
    // deployed group, but keep the pool as-is rather than acting blind.
    target.replicas = static_cast<int>(group.members.size());
    target.batch_cap = group.batch_cap;
    target.point_index = group.point_index;
    return target;
  }
  target.replicas =
      std::clamp(planned.replicas, opts_.min_replicas, opts_.max_replicas);
  target.batch_cap = planned.batch_cap;
  target.planned_batch = planned.planned_batch;
  target.point_index = group.point_index;
  for (std::size_t p = 0; p < entry.points.size(); ++p) {
    if (entry.points[p].pe_budget == planned.pe_budget) {
      target.point_index = static_cast<int>(p);
      break;
    }
  }
  return target;
}

bool Autoscaler::RefitKeepsSlo(int donor_replica, int to_group, int batch) {
  const auto [origin_workload, origin_point] =
      origin_[static_cast<std::size_t>(donor_replica)];
  const Group& to = groups_[static_cast<std::size_t>(to_group)];
  if (origin_point < 0 || to.point_index < 0) {
    return false;  // Off-frontier hardware: no model to admit against.
  }
  const auto key = std::make_tuple(origin_workload, origin_point, to.id);
  auto it = refit_models_.find(key);
  if (it == refit_models_.end()) {
    const PlanFrontier::WorkloadEntry& donor_entry =
        EntryById(origin_workload);
    const DataflowGraph& dfg = registry_.dataflow(to.id);
    // Two registry names aliasing one compiled graph keep the tuned
    // allocation (the pool applies the same rule — IsTunedFor).
    const bool tuned = &registry_.dataflow(origin_workload) == &dfg;
    std::optional<arch::ServingModel> model;
    try {
      model = arch::BuildServingModel(
          donor_entry.points[static_cast<std::size_t>(origin_point)].design,
          dfg, tuned);
    } catch (const std::exception&) {
      // The donor hardware cannot run the target at all (its memory
      // sizing was DSE'd for a different workload) — simply inadmissible.
      model = std::nullopt;
    }
    it = refit_models_.emplace(key, std::move(model)).first;
  }
  if (!it->second.has_value()) {
    return false;
  }
  // Admit only when the homogeneous queueing bound stays conservative:
  // the refit replica must serve the target at least as fast as the
  // design the replan sized the group with.
  const PlanFrontier::WorkloadEntry& to_entry = EntryById(to.id);
  return it->second->BatchSeconds(batch) <=
         to_entry.models[static_cast<std::size_t>(to.point_index)]
             .BatchSeconds(batch);
}

void Autoscaler::AttachMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    tick_counter_ = nullptr;
    add_counter_ = nullptr;
    retire_counter_ = nullptr;
    refit_counter_ = nullptr;
    batch_cap_counter_ = nullptr;
    deferred_counter_ = nullptr;
    return;
  }
  tick_counter_ = registry->GetCounter("autoscaler.ticks");
  add_counter_ = registry->GetCounter("autoscaler.adds");
  retire_counter_ = registry->GetCounter("autoscaler.retires");
  refit_counter_ = registry->GetCounter("autoscaler.refits");
  batch_cap_counter_ = registry->GetCounter("autoscaler.batch_caps");
  deferred_counter_ = registry->GetCounter("autoscaler.deferred_adds");
}

int Autoscaler::LiveMembers(const Group& group, double t) const {
  int live = 0;
  for (const int member : group.members) {
    if (!pool_.Failed(member, t)) {
      ++live;
    }
  }
  return live;
}

std::vector<PoolDelta> Autoscaler::Tick(MultiBatchFormer& former,
                                        ServeStats& stats) {
  const double t = next_tick_s_;
  next_tick_s_ += opts_.interval_s;
  const double window = std::min(opts_.window_s, t);
  if (tick_counter_ != nullptr) {
    tick_counter_->Increment();
  }

  // Settle the budget of drained replicas that have now actually retired.
  for (std::size_t i = 0; i < pending_frees_.size();) {
    if (pending_frees_[i].first <= t) {
      Account(used_, pending_frees_[i].second, -1.0);
      pending_frees_.erase(pending_frees_.begin() +
                           static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }

  // 1. Sample every group's trailing window; collect band crossings.
  std::vector<Target> targets;
  double total_rate = 0.0;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    Group& group = groups_[g];
    const double rate =
        window > 0.0
            ? static_cast<double>(
                  stats.ArrivalsInWindow(group.id, t - window, t)) /
                  window
            : 0.0;
    total_rate += rate;
    // Backlog folds into demand as "drain it within one window".
    const double demand =
        rate + static_cast<double>(former.pending(group.id)) / opts_.window_s;
    const double target_rate = demand * (1.0 + opts_.headroom);
    // Lost capacity is demand pressure: a dark member serves nothing, so
    // the hysteresis bands center on the surviving share of the
    // provisioned rate. All-live groups keep the exact fault-free math.
    const int live = LiveMembers(group, t);
    const double provisioned =
        group.members.empty() ||
                live == static_cast<int>(group.members.size())
            ? group.provisioned_rps
            : group.provisioned_rps * static_cast<double>(live) /
                  static_cast<double>(group.members.size());
    const bool up = target_rate > opts_.up_band * provisioned;
    const bool down =
        target_rate < opts_.down_band * provisioned &&
        t - group.last_delta_s >= opts_.cooldown_s;
    if (!up && !down) {
      continue;  // Inside the dead band: sample only.
    }
    Target target = ReplanGroup(static_cast<int>(g), target_rate);
    target.trigger =
        "'" + group.workload + "' demand " + Rps(target_rate) + " rps " +
        (up ? "above" : "below") + " band of provisioned " +
        Rps(provisioned) + " rps";
    // Re-center the hysteresis bands on what we just sized for, even when
    // the integer replica count ends up unchanged.
    group.provisioned_rps = target_rate;
    group.point_index = target.point_index;
    targets.push_back(std::move(target));
  }

  // Periodic timeline sample (pre-delta state).
  PoolEvent sample;
  sample.t_s = t;
  sample.active_replicas = pool_.ActiveReplicas(t);
  sample.window_rate_rps = total_rate;
  sample.queue_depth = former.total_pending();
  stats.RecordPoolEvent(sample);

  if (targets.empty()) {
    return {};
  }

  // 2. Free the excess of every scaling-down group first (newest members
  // shed first), so scaling-up groups can adopt the freed hardware.
  struct Freed {
    int replica;
    int group;
  };
  std::vector<Freed> freed;
  for (const Target& target : targets) {
    Group& group = groups_[static_cast<std::size_t>(target.group)];
    // Shed the newest *live* members — a dark replica is not hardware we
    // can hand to another tenant (it stays on the roster until recovery).
    int live = LiveMembers(group, t);
    for (std::size_t i = group.members.size();
         i-- > 0 && live > target.replicas;) {
      const int member = group.members[i];
      if (pool_.Failed(member, t)) {
        continue;
      }
      freed.push_back(Freed{member, target.group});
      group.members.erase(group.members.begin() +
                          static_cast<std::ptrdiff_t>(i));
      --live;
    }
  }

  std::vector<PoolDelta> applied;
  const auto record = [&](PoolDelta delta) {
    obs::Counter* counter = nullptr;
    switch (delta.kind) {
      case PoolDeltaKind::kAddReplica: counter = add_counter_; break;
      case PoolDeltaKind::kRetireReplica: counter = retire_counter_; break;
      case PoolDeltaKind::kRefitReplica: counter = refit_counter_; break;
      case PoolDeltaKind::kSetBatchCap: counter = batch_cap_counter_; break;
    }
    if (counter != nullptr) {
      counter->Increment();
    }
    PoolEvent event;
    event.t_s = t;
    event.kind = PoolEventKind::kDecision;
    event.event = delta.reason;
    event.active_replicas = pool_.ActiveReplicas(t);
    event.window_rate_rps = total_rate;
    event.queue_depth = former.total_pending();
    stats.RecordPoolEvent(std::move(event));
    applied.push_back(std::move(delta));
  };

  // 3. Fulfill scale-ups: refit freed hardware when it keeps the SLO,
  // provision fresh replicas otherwise.
  for (const Target& target : targets) {
    Group& group = groups_[static_cast<std::size_t>(target.group)];
    bool deferred = false;
    // Size against serving members: a dark replica contributes nothing, so
    // single-replica loss re-triggers an add here one tick after the fault.
    while (!deferred && LiveMembers(group, t) < target.replicas) {
      PoolDelta delta;
      delta.t_s = t;
      delta.workload = group.id;

      int donor = -1;
      for (std::size_t f = 0; f < freed.size(); ++f) {
        if (RefitKeepsSlo(freed[f].replica, target.group,
                          target.planned_batch)) {
          donor = static_cast<int>(f);
          break;
        }
      }
      if (donor >= 0) {
        const Freed from = freed[static_cast<std::size_t>(donor)];
        freed.erase(freed.begin() + donor);
        delta.kind = PoolDeltaKind::kRefitReplica;
        delta.replica = from.replica;
        if (cluster_ != nullptr && cluster_->nodes() > 1) {
          delta.node = pool_.NodeOf(from.replica);
        }
        delta.spec.design = pool_.design(from.replica);
        delta.spec.workloads = {group.id};
        delta.spec.tuned_for =
            origin_[static_cast<std::size_t>(from.replica)].first;
        delta.reason =
            "refit replica " + std::to_string(from.replica) + " from '" +
            groups_[static_cast<std::size_t>(from.group)].workload +
            "': " + target.trigger;
        pool_.RefitInPlace(from.replica, delta.spec, t + opts_.reconfig_s);
        group.members.insert(
            std::lower_bound(group.members.begin(), group.members.end(),
                             from.replica),
            from.replica);
        // The donation *is* the donor's scale-down — anchor its cool-down
        // exactly like a retire would.
        groups_[static_cast<std::size_t>(from.group)].last_delta_s = t;
      } else {
        const PlanFrontier::WorkloadEntry& entry = EntryById(group.id);
        const int point = target.point_index >= 0 ? target.point_index : 0;
        const ResourceReport& needed =
            entry.resources[static_cast<std::size_t>(point)];
        if (!FitsBudget(needed)) {
          // The aggregate inventory is spoken for — the same wall the
          // static planner would have hit. Park at the current size; the
          // next band crossing retries with whatever freed up by then.
          PoolEvent capped;
          capped.t_s = t;
          capped.kind = PoolEventKind::kDecision;
          capped.event = "budget exhausted, add deferred: " + target.trigger;
          capped.active_replicas = pool_.ActiveReplicas(t);
          capped.window_rate_rps = total_rate;
          capped.queue_depth = former.total_pending();
          stats.RecordPoolEvent(std::move(capped));
          if (deferred_counter_ != nullptr) {
            deferred_counter_->Increment();
          }
          deferred = true;
          continue;
        }
        delta.kind = PoolDeltaKind::kAddReplica;
        delta.spec.design =
            entry.points[static_cast<std::size_t>(point)].design;
        delta.spec.workloads = {group.id};
        delta.spec.tuned_for = group.id;
        // Cross-node placement (docs/CLUSTER.md): pick the warm-add's node
        // before the add so the new replica's own default tag (node 0)
        // cannot bias the population count. A drain on one node plus this
        // add on the emptiest one is the cluster's migration primitive.
        // One-node clusters skip all of it — their reason strings (and
        // with them the stats timeline and trace) must stay byte-identical
        // to a cluster-free run.
        const bool multi_node = cluster_ != nullptr && cluster_->nodes() > 1;
        const int add_node =
            multi_node ? cluster_->LeastPopulatedNode() : -1;
        delta.replica = pool_.AddReplica(delta.spec, t + opts_.reconfig_s);
        if (multi_node) {
          cluster_->AssignReplica(delta.replica, add_node);
          delta.node = add_node;
        }
        delta.reason =
            "add replica " + std::to_string(delta.replica) +
            (multi_node ? " on node " + std::to_string(add_node) : "") +
            ": " + target.trigger;
        stats.AddReplicaSlot();
        origin_.emplace_back(group.id, point);
        replica_resources_.push_back(needed);
        Account(used_, needed, +1.0);
        group.members.push_back(delta.replica);  // Highest index so far.
      }
      group.last_delta_s = t;
      record(std::move(delta));
    }
    if (deferred && target.replicas > 0) {
      // The group is sized for less than the target: re-center the bands
      // on the capacity actually achieved, so steady demand keeps
      // re-triggering the up-replan and the add retries as soon as the
      // budget frees.
      group.provisioned_rps =
          target.target_rate *
          static_cast<double>(group.members.size()) /
          static_cast<double>(target.replicas);
    }
  }

  // 4. Retire whatever freed hardware nobody adopted (drain-then-remove).
  for (const Freed& from : freed) {
    Group& group = groups_[static_cast<std::size_t>(from.group)];
    PoolDelta delta;
    delta.kind = PoolDeltaKind::kRetireReplica;
    delta.t_s = t;
    delta.workload = group.id;
    delta.replica = from.replica;
    if (cluster_ != nullptr && cluster_->nodes() > 1) {
      delta.node = pool_.NodeOf(from.replica);
    }
    for (const Target& target : targets) {
      if (target.group == from.group) {
        delta.reason = "retire replica " + std::to_string(from.replica) +
                       ": " + target.trigger;
        break;
      }
    }
    pool_.DrainReplica(from.replica, t);
    // The hardware stays occupied until the in-flight batch finishes.
    pending_frees_.emplace_back(
        pool_.RetiredAt(from.replica),
        replica_resources_[static_cast<std::size_t>(from.replica)]);
    group.last_delta_s = t;
    record(std::move(delta));
  }

  // 5. Forming-lane batch-cap changes.
  for (const Target& target : targets) {
    Group& group = groups_[static_cast<std::size_t>(target.group)];
    if (target.batch_cap == group.batch_cap) {
      continue;
    }
    PoolDelta delta;
    delta.kind = PoolDeltaKind::kSetBatchCap;
    delta.t_s = t;
    delta.workload = group.id;
    delta.batch_cap = target.batch_cap;
    delta.reason = "batch cap " + std::to_string(group.batch_cap) + " -> " +
                   std::to_string(target.batch_cap) + ": " + target.trigger;
    former.SetPolicy(group.id,
                     BatchPolicy{target.batch_cap, serve_.max_wait_s});
    group.batch_cap = target.batch_cap;
    group.last_delta_s = t;
    record(std::move(delta));
  }

  return applied;
}

}  // namespace nsflow::serve
