#include "serve/request_queue.h"

namespace nsflow::serve {

bool RequestQueue::Push(Request request) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [&] {
    return closed_ || capacity_ == 0 || queue_.size() < capacity_;
  });
  if (closed_) {
    return false;
  }
  queue_.push_back(request);
  max_depth_ = std::max(max_depth_, queue_.size());
  not_empty_.notify_one();
  return true;
}

std::optional<Request> RequestQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) {
    return std::nullopt;  // Closed and drained.
  }
  Request request = queue_.front();
  queue_.pop_front();
  not_full_.notify_one();
  return request;
}

std::optional<Request> RequestQueue::TryPop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) {
    return std::nullopt;
  }
  Request request = queue_.front();
  queue_.pop_front();
  not_full_.notify_one();
  return request;
}

void RequestQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t RequestQueue::max_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_depth_;
}

}  // namespace nsflow::serve
