// Elastic-autoscaler tests: pinned scale-up/scale-down decision sequences
// per scenario, drain safety across retires, hysteresis quiet on
// stationary traffic, fixed-seed bit-determinism of autoscaled runs, the
// frontier-reusing replan entry point, and the headline efficiency gate —
// on the diurnal scenario an autoscaled pool meets the static plan's p99
// SLO with at most 70% of its replica-seconds (docs/AUTOSCALING.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <vector>

#include "serve/autoscaler.h"
#include "serve/capacity_planner.h"
#include "serve/engine.h"
#include "serve/scenario.h"
#include "serve/server_pool.h"
#include "workloads/builders.h"

namespace nsflow::serve {
namespace {

/// The standard two-tenant pool of these tests: a fast latency tenant next
/// to the utilization-bound resnet18 group whose replica count actually
/// tracks the offered rate.
std::vector<WorkloadShare> StandardMix() {
  return {{"mlp", 0.2}, {"resnet18", 0.8}};
}

PoolPlan StandardPlan(WorkloadRegistry& registry, double qps,
                      const std::string& scenario) {
  registry.RegisterBuiltin("mlp");
  registry.RegisterBuiltin("resnet18");
  PlanOptions options;
  options.qps = qps;
  options.p99_slo_s = 50e-3;
  options.device = "u250";
  options.devices = 128;
  options.max_replicas_per_workload = 64;
  options.scenario = ScenarioSpec::Parse(scenario);
  return PlanCapacity(registry, StandardMix(), options);
}

ServeOptions StandardServe(const PoolPlan& plan, double qps,
                           const std::string& scenario, double duration_s) {
  ServeOptions options;
  options.qps = qps;
  options.duration_s = duration_s;
  options.seed = 42;
  options.max_batch = plan.max_batch;
  options.max_wait_s = plan.max_wait_s;
  options.per_workload_max_batch = plan.PerWorkloadMaxBatch();
  options.scenario = ScenarioSpec::Parse(scenario);
  return options;
}

/// The tuned control knobs of the efficiency gate (the bench_autoscale
/// section runs the same configuration — docs/AUTOSCALING.md).
void TunedAutoscale(ServeOptions& options, const PoolPlan& plan) {
  options.autoscale = true;
  options.autoscale_opts.p99_slo_s = plan.p99_slo_s;
  options.autoscale_opts.devices = plan.devices;
  options.autoscale_opts.max_replicas = 64;
  options.autoscale_opts.headroom = 0.10;
  options.autoscale_opts.up_band = 1.05;
  options.autoscale_opts.down_band = 0.85;
  options.autoscale_opts.cooldown_s = 0.5;
}

TEST(AutoscalerTest, FrontierReplanMatchesFullPlan) {
  WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  registry.RegisterBuiltin("resnet18");
  PlanOptions options;
  options.qps = 300.0;
  options.p99_slo_s = 50e-3;
  options.devices = 16;
  options.scenario = ScenarioSpec::Parse("diurnal:depth=0.8");

  const PoolPlan full = PlanCapacity(registry, StandardMix(), options);
  const PlanFrontier frontier =
      BuildPlanFrontier(registry, StandardMix(), options);
  const PoolPlan incremental =
      PlanCapacity(registry, StandardMix(), options, frontier);
  EXPECT_EQ(full.ToJson().Dump(2), incremental.ToJson().Dump(2));

  // A subset mix replans against the same frontier (the autoscaler's
  // one-workload-at-a-time pattern).
  const std::vector<WorkloadShare> solo = {{"resnet18", 1.0}};
  PlanOptions solo_options = options;
  solo_options.qps = 120.0;
  const PoolPlan replan =
      PlanCapacity(registry, solo, solo_options, frontier);
  ASSERT_EQ(replan.groups.size(), 1u);
  EXPECT_EQ(replan.groups[0].workload, "resnet18");
  EXPECT_GT(replan.groups[0].replicas, 0);
}

TEST(AutoscalerTest, ScenarioWindowMeanRateMatchesNumericIntegral) {
  const double qps = 100.0;
  const double duration = 10.0;
  const std::vector<std::string> scenarios = {
      "poisson", "diurnal:depth=0.8,period=4", "ramp:from=0.2,to=1.8",
      "spike:at=3,width=2,mult=5"};
  for (const std::string& text : scenarios) {
    const ScenarioSpec spec = ScenarioSpec::Parse(text);
    for (const auto& [t0, t1] :
         std::vector<std::pair<double, double>>{{0.0, 1.0},
                                                {2.5, 4.75},
                                                {0.0, 10.0}}) {
      // Numeric Riemann integral of the closed-form instantaneous rate.
      const int steps = 200000;
      double sum = 0.0;
      for (int i = 0; i < steps; ++i) {
        const double t = t0 + (t1 - t0) * (i + 0.5) / steps;
        sum += ScenarioRate(spec, qps, duration, t);
      }
      const double numeric = sum / steps;
      const double analytic =
          ScenarioWindowMeanRate(spec, qps, duration, t0, t1);
      EXPECT_NEAR(analytic, numeric, 1e-3 * qps) << text;
    }
  }
  // Whole-horizon window degenerates to the mean rate.
  const ScenarioSpec diurnal = ScenarioSpec::Parse("diurnal:depth=0.6");
  EXPECT_DOUBLE_EQ(
      ScenarioWindowMeanRate(diurnal, qps, duration, 0.0, duration),
      ScenarioMeanRate(diurnal, qps, duration));
}

TEST(AutoscalerTest, DrainSafetyAtPoolLevel) {
  WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  const AcceleratorDesign design =
      registry.compiled(0).design();
  const std::vector<ReplicaSpec> specs = {
      {design, {0}, 0}, {design, {0}, 0}};
  ServerPool pool(specs, registry.Dataflows(), 1);

  Batch batch;
  batch.workload = 0;
  batch.formed_s = 0.0;
  batch.requests = {Request{0, 0.0, 0}};
  const DispatchRecord first = pool.Dispatch(batch, nullptr);
  EXPECT_EQ(first.replica, 0);

  // Drain replica 0 while its batch is in flight: the batch completes on
  // it, but every later dispatch routes around it.
  pool.DrainReplica(0, 0.0);
  EXPECT_TRUE(pool.draining(0));
  EXPECT_DOUBLE_EQ(pool.RetiredAt(0), first.complete_s);
  for (int i = 1; i <= 4; ++i) {
    batch.requests = {Request{i, 0.0, 0}};
    EXPECT_EQ(pool.Dispatch(batch, nullptr).replica, 1);
  }
  // Draining the last capable replica would orphan the workload.
  EXPECT_THROW(pool.DrainReplica(1, 0.0), std::exception);

  // Warm add: unavailable before its ready time, preferred after.
  const int added = pool.AddReplica({design, {0}, 0}, /*ready_s=*/100.0);
  EXPECT_EQ(added, 2);
  EXPECT_DOUBLE_EQ(pool.AddedAt(added), 100.0);
  batch.requests = {Request{9, 0.0, 0}};
  EXPECT_EQ(pool.Dispatch(batch, nullptr).replica, 1);

  // Accounting: replica 0 active [0, first.complete_s), 1 active the whole
  // horizon, 2 active from t=100.
  EXPECT_EQ(pool.ActiveReplicas(0.0), 2);
  EXPECT_EQ(pool.ActiveReplicas(50.0), 1);
  EXPECT_EQ(pool.ActiveReplicas(100.0), 2);
  EXPECT_DOUBLE_EQ(pool.ReplicaSeconds(200.0),
                   first.complete_s + 200.0 + 100.0);
}

TEST(AutoscalerTest, StationaryHysteresisEmitsNoDeltas) {
  WorkloadRegistry registry;
  const PoolPlan plan = StandardPlan(registry, 1000.0, "poisson");
  ASSERT_TRUE(plan.feasible);
  ServeOptions options = StandardServe(plan, 1000.0, "poisson", 8.0);
  options.autoscale = true;  // Default (conservative) control knobs.
  options.autoscale_opts.p99_slo_s = plan.p99_slo_s;
  options.autoscale_opts.devices = plan.devices;
  options.autoscale_opts.max_replicas = 64;
  const ServeReport report =
      RunSyntheticServe(registry, plan.Replicas(), StandardMix(), options);
  // A stationary load inside the hysteresis dead band never reconfigures:
  // no oscillation means literally zero deltas at this rate and window.
  EXPECT_TRUE(report.deltas.empty());
  EXPECT_EQ(report.summary.completed, report.generated_requests);
  // The control loop still sampled the timeline every interval.
  EXPECT_GE(report.summary.timeline.size(), 30u);
  // Static pool throughout: replica-seconds == pool size x horizon.
  EXPECT_NEAR(report.replica_seconds,
              plan.TotalReplicas() * report.summary.horizon_s,
              1e-6 * report.replica_seconds);
}

TEST(AutoscalerTest, DiurnalMeetsSloWithinSeventyPercentReplicaSeconds) {
  // The acceptance gate: same p99 SLO as the PR 4 peak-provisioned static
  // plan, at most 70% of its replica-seconds. bench_plan_scenarios
  // publishes the same comparison in BENCH_plan.json (bench_autoscale).
  const std::string scenario = "diurnal:depth=0.8";
  WorkloadRegistry registry;
  const PoolPlan plan = StandardPlan(registry, 2000.0, scenario);
  ASSERT_TRUE(plan.feasible);

  ServeOptions options = StandardServe(plan, 2000.0, scenario, 16.0);
  const ServeReport fixed =
      RunSyntheticServe(registry, plan.Replicas(), StandardMix(), options);
  EXPECT_LE(fixed.summary.p99_ms, plan.p99_slo_s * 1e3);
  // Per-replica summation vs one multiply: identical up to rounding.
  EXPECT_NEAR(fixed.replica_seconds,
              plan.TotalReplicas() * fixed.summary.horizon_s,
              1e-6 * fixed.replica_seconds);

  TunedAutoscale(options, plan);
  const ServeReport elastic =
      RunSyntheticServe(registry, plan.Replicas(), StandardMix(), options);

  // Same SLO met, aggregate and per tenant.
  EXPECT_LE(elastic.summary.p99_ms, plan.p99_slo_s * 1e3);
  for (const WorkloadSummary& slice : elastic.summary.per_workload) {
    EXPECT_LE(slice.p99_ms, plan.p99_slo_s * 1e3) << slice.name;
  }
  // At most 70% of the static pool's FPGA time.
  EXPECT_LE(elastic.replica_seconds, 0.70 * fixed.replica_seconds);
  // Drain safety end to end: every generated request completes exactly
  // once across all the adds/retires (a lost request would shrink
  // `completed`, a double-served one would inflate it).
  EXPECT_EQ(elastic.summary.completed, elastic.generated_requests);
  EXPECT_EQ(elastic.generated_requests, fixed.generated_requests);

  // The diurnal cycle both grows and shrinks the pool.
  const PoolDeltaCounts counts = CountDeltas(elastic.deltas);
  EXPECT_GE(counts.adds, 1);
  EXPECT_GE(counts.retires, 1);
  // Decisions and the timeline agree on the final pool size.
  ASSERT_FALSE(elastic.summary.timeline.empty());
  EXPECT_GT(elastic.summary.timeline.back().t_s, 15.0);
}

TEST(AutoscalerTest, DiurnalDecisionSequenceIsBitDeterministic) {
  const std::string scenario = "diurnal:depth=0.8";
  WorkloadRegistry registry;
  const PoolPlan plan = StandardPlan(registry, 600.0, scenario);
  ASSERT_TRUE(plan.feasible);
  ServeOptions options = StandardServe(plan, 600.0, scenario, 16.0);
  TunedAutoscale(options, plan);

  const ServeReport a =
      RunSyntheticServe(registry, plan.Replicas(), StandardMix(), options);
  const ServeReport b =
      RunSyntheticServe(registry, plan.Replicas(), StandardMix(), options);

  ASSERT_EQ(a.deltas.size(), b.deltas.size());
  ASSERT_FALSE(a.deltas.empty());
  for (std::size_t i = 0; i < a.deltas.size(); ++i) {
    EXPECT_EQ(a.deltas[i].kind, b.deltas[i].kind) << i;
    EXPECT_EQ(a.deltas[i].replica, b.deltas[i].replica) << i;
    EXPECT_EQ(a.deltas[i].workload, b.deltas[i].workload) << i;
    EXPECT_DOUBLE_EQ(a.deltas[i].t_s, b.deltas[i].t_s) << i;
    EXPECT_EQ(a.deltas[i].reason, b.deltas[i].reason) << i;
  }
  EXPECT_EQ(a.dispatches.size(), b.dispatches.size());
  EXPECT_DOUBLE_EQ(a.summary.p99_ms, b.summary.p99_ms);
  EXPECT_DOUBLE_EQ(a.summary.mean_ms, b.summary.mean_ms);
  EXPECT_DOUBLE_EQ(a.replica_seconds, b.replica_seconds);
  ASSERT_EQ(a.summary.timeline.size(), b.summary.timeline.size());
}

TEST(AutoscalerTest, SpikeScaleUpThenDownSequenceIsPinned) {
  // spike defaults: window [0.4, 0.5) x duration at 4x the baseline.
  const std::string scenario = "spike:mult=4";
  WorkloadRegistry registry;
  const PoolPlan plan = StandardPlan(registry, 600.0, scenario);
  ASSERT_TRUE(plan.feasible);
  ServeOptions options = StandardServe(plan, 600.0, scenario, 16.0);
  TunedAutoscale(options, plan);
  const ServeReport report =
      RunSyntheticServe(registry, plan.Replicas(), StandardMix(), options);
  EXPECT_EQ(report.summary.completed, report.generated_requests);

  const double spike_start = 0.4 * 16.0;
  const double spike_end = 0.5 * 16.0;
  bool retired_before_spike = false;  // Peak-provisioned pool sheds first.
  bool grew_for_spike = false;
  bool shrank_after_spike = false;
  for (const PoolDelta& delta : report.deltas) {
    if (delta.kind == PoolDeltaKind::kRetireReplica &&
        delta.t_s < spike_start) {
      retired_before_spike = true;
    }
    if ((delta.kind == PoolDeltaKind::kAddReplica ||
         delta.kind == PoolDeltaKind::kRefitReplica) &&
        delta.t_s >= spike_start && delta.t_s <= spike_end + 1.0) {
      grew_for_spike = true;
    }
    if (delta.kind == PoolDeltaKind::kRetireReplica &&
        delta.t_s > spike_end) {
      shrank_after_spike = true;
    }
  }
  EXPECT_TRUE(retired_before_spike);
  EXPECT_TRUE(grew_for_spike);
  EXPECT_TRUE(shrank_after_spike);
}

TEST(AutoscalerTest, AggregateBudgetCapsScaleUps) {
  // Solo replans size one group at a time, so the autoscaler enforces the
  // aggregate devices x inventory budget itself: with exactly the boards
  // the peak-provisioned static plan needs, a flash crowd can re-grow the
  // pool back to the plan's size but never past it — further adds are
  // deferred with a "budget exhausted" timeline event.
  const std::string scenario = "spike:mult=4";
  WorkloadRegistry registry;
  const PoolPlan plan = StandardPlan(registry, 600.0, scenario);
  ASSERT_TRUE(plan.feasible);
  const FpgaDevice device = DeviceByName("u250");
  const int devices_needed = static_cast<int>(std::ceil(std::max(
      {plan.resources.dsp / static_cast<double>(device.dsp),
       plan.resources.lut / static_cast<double>(device.lut),
       plan.resources.ff / static_cast<double>(device.ff),
       plan.resources.bram18 / static_cast<double>(device.bram18),
       plan.resources.uram / static_cast<double>(device.uram)})));

  ServeOptions options = StandardServe(plan, 600.0, scenario, 16.0);
  TunedAutoscale(options, plan);
  options.autoscale_opts.devices = devices_needed;
  const ServeReport report =
      RunSyntheticServe(registry, plan.Replicas(), StandardMix(), options);
  EXPECT_EQ(report.summary.completed, report.generated_requests);

  // Replica count over the delta sequence never exceeds the initial
  // (budget-maxed) pool.
  int live = plan.TotalReplicas();
  int peak = live;
  for (const PoolDelta& delta : report.deltas) {
    if (delta.kind == PoolDeltaKind::kAddReplica) {
      ++live;
    } else if (delta.kind == PoolDeltaKind::kRetireReplica) {
      --live;
    }
    peak = std::max(peak, live);
  }
  EXPECT_LE(peak, plan.TotalReplicas());
  // The spike wanted more than the budget allows — the deferral is
  // visible on the timeline.
  bool deferred = false;
  for (const PoolEvent& event : report.summary.timeline) {
    deferred = deferred ||
               event.event.find("budget exhausted") != std::string::npos;
  }
  EXPECT_TRUE(deferred);
}

TEST(AutoscalerTest, RefitAdoptsFreedReplicaAcrossTenants) {
  // Two registry names aliasing one compiled workload (the compile cache
  // hands both the same design), driven by an anti-correlated replayed
  // trace: "east" is hot in the first half, "west" in the second. When
  // east's scale-down and west's scale-up land in one decision, the freed
  // replica refits to the other tenant instead of a retire + cold add —
  // its hardware provably serves the adopter at the planned speed (here:
  // bit-identically).
  WorkloadRegistry registry;
  registry.Register("east", workloads::MakeResnet18Classifier());
  registry.Register("west", workloads::MakeResnet18Classifier());
  EXPECT_EQ(registry.cache().hits(), 1);
  const std::vector<WorkloadShare> mix = {{"east", 0.5}, {"west", 0.5}};

  std::vector<Request> arrivals;
  const auto burst = [&](double from, double to, double rate,
                         WorkloadId workload) {
    for (double t = from; t < to; t += 1.0 / rate) {
      arrivals.push_back(Request{0, t, workload});
    }
  };
  burst(0.0, 8.0, 360.0, 0);
  burst(0.0, 8.0, 40.0, 1);
  burst(8.0, 16.0, 40.0, 0);
  burst(8.0, 16.0, 360.0, 1);
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Request& a, const Request& b) {
              return a.arrival_s != b.arrival_s
                         ? a.arrival_s < b.arrival_s
                         : a.workload < b.workload;
            });
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    arrivals[i].id = static_cast<std::int64_t>(i);
  }
  const std::string trace_path =
      testing::TempDir() + "autoscaler_flip_trace.json";
  {
    std::ofstream out(trace_path, std::ios::binary);
    out << EmitArrivalTraceJson(arrivals, registry.Names());
  }

  PlanOptions plan_options;
  plan_options.qps = 400.0;
  plan_options.p99_slo_s = 50e-3;
  plan_options.devices = 64;
  plan_options.max_replicas_per_workload = 64;
  const PoolPlan plan = PlanCapacity(registry, mix, plan_options);
  ASSERT_TRUE(plan.feasible);

  ServeOptions options;
  options.qps = 400.0;
  options.duration_s = 16.0;
  options.seed = 42;
  options.max_batch = plan.max_batch;
  options.max_wait_s = plan.max_wait_s;
  options.per_workload_max_batch = plan.PerWorkloadMaxBatch();
  options.scenario = ScenarioSpec::Parse("trace:file=" + trace_path);
  TunedAutoscale(options, plan);
  options.autoscale_opts.devices = 64;

  const ServeReport report =
      RunSyntheticServe(registry, plan.Replicas(), mix, options);
  EXPECT_EQ(report.summary.completed, report.generated_requests);
  const PoolDeltaCounts counts = CountDeltas(report.deltas);
  EXPECT_GE(counts.refits, 1);
  // The refits must point at the tenant that was scaling up.
  for (const PoolDelta& delta : report.deltas) {
    if (delta.kind == PoolDeltaKind::kRefitReplica) {
      ASSERT_EQ(delta.spec.workloads.size(), 1u);
      EXPECT_EQ(delta.spec.workloads[0], delta.workload);
    }
  }
  std::remove(trace_path.c_str());
}

TEST(AutoscalerTest, AutoscaleRequiresMultiTenantPartitionedPool) {
  WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  ServeOptions options;
  options.autoscale = true;
  // Single-workload engine: no registry, no mix — rejected outright.
  const AcceleratorDesign design = registry.compiled(0).design();
  EXPECT_THROW(RunSyntheticServe(registry.dataflow(0), {design}, options),
               std::exception);
  // Shared (non-partitioned) replicas are rejected too.
  const std::vector<ReplicaSpec> shared = {{design, {}, 0}};
  EXPECT_THROW(RunSyntheticServe(registry, shared, {{"mlp", 1.0}}, options),
               std::exception);
}

}  // namespace
}  // namespace nsflow::serve
