// Reproduces paper Table III — design configuration and FPGA deployment for
// NVSA, MIMONet, and LVRF on the AMD U250 at 272 MHz.
//
// Shape to check: all three workloads get multi-thousand-PE AdArrays with an
// NN-heavy default partition, a 64-lane-class SIMD unit, MB-scale BRAM
// blocks with a 2x URAM cache, DSP-dominated utilization, and 272 MHz
// closure.
#include <cstdio>

#include "common/table.h"
#include "fpga/device.h"
#include "nsflow/framework.h"
#include "workloads/builders.h"

int main() {
  using namespace nsflow;
  std::printf("=== NSFlow reproduction: Table III design configs ===\n\n");

  const Compiler compiler;
  const FpgaDevice device = U250();

  TablePrinter config_table({"Workload", "NN prec", "Symb prec",
                             "AdArray (H,W,N)", "Partition Nl:Nv", "SIMD",
                             "MemA1", "MemA2", "MemB", "MemC", "Cache"});
  TablePrinter util_table({"Workload", "DSP", "LUT", "FF", "BRAM", "URAM",
                           "LUTRAM", "Clock (MHz)", "fits?"});

  std::vector<OperatorGraph> workloads_list;
  workloads_list.push_back(workloads::MakeNvsa());
  workloads_list.push_back(workloads::MakeMimonet());
  workloads_list.push_back(workloads::MakeLvrf());

  for (auto& graph : workloads_list) {
    const std::string name = graph.workload_name();
    const CompiledDesign compiled = compiler.Compile(std::move(graph));
    const auto& d = compiled.design();

    config_table.AddRow(
        {name, PrecisionName(d.precision.neural),
         PrecisionName(d.precision.symbolic),
         std::to_string(d.array.height) + ", " +
             std::to_string(d.array.width) + ", " +
             std::to_string(d.array.count),
         std::to_string(d.default_nl) + " : " + std::to_string(d.default_nv),
         std::to_string(d.simd_width),
         TablePrinter::Bytes(d.memory.mem_a1_bytes),
         TablePrinter::Bytes(d.memory.mem_a2_bytes),
         TablePrinter::Bytes(d.memory.mem_b_bytes),
         TablePrinter::Bytes(d.memory.mem_c_bytes),
         TablePrinter::Bytes(d.memory.cache_bytes)});

    const ResourceReport report = Report(compiled, device);
    util_table.AddRow({name, TablePrinter::Percent(report.dsp_util, 0),
                       TablePrinter::Percent(report.lut_util, 0),
                       TablePrinter::Percent(report.ff_util, 0),
                       TablePrinter::Percent(report.bram_util, 0),
                       TablePrinter::Percent(report.uram_util, 0),
                       TablePrinter::Percent(report.lutram_util, 0),
                       TablePrinter::Num(report.achievable_clock_hz / 1e6, 0),
                       report.fits ? "yes" : "NO"});
  }

  std::printf("Design configuration (paper Table III, left half):\n%s\n",
              config_table.ToString().c_str());
  std::printf("AMD U250 utilization @ 272 MHz (paper Table III, right "
              "half):\n%s\n",
              util_table.ToString().c_str());
  std::printf("Paper anchors: NVSA (32,16,16) 14:2, SIMD 64, MemA1 2.7MB, "
              "cache 16.2MB, DSP 89%%, 272 MHz.\n");
  return 0;
}
