#include "graph/operator_graph.h"

#include <unordered_map>

#include "common/error.h"

namespace nsflow {

double OpNode::Flops() const {
  switch (unit()) {
    case ComputeUnit::kAdArray:
      return domain() == Domain::kNeuro ? gemm.Flops() : vsa.Flops();
    case ComputeUnit::kSimd:
      // Element-wise / reduction ops: ~2 flops per element (op + accumulate).
      return 2.0 * static_cast<double>(elem_count);
    case ComputeUnit::kNone:
      return 0.0;
  }
  return 0.0;
}

double OpNode::TrafficBytes() const {
  if (category() == OpCategory::kVectorVsa && vsa.dim > 0) {
    // Stationary operand loaded once; streamed operand re-fetched once per
    // output element (no reuse under modulo indexing); outputs written once.
    return weight_bytes + activation_bytes * static_cast<double>(vsa.dim) +
           output_bytes;
  }
  return TotalBytes();
}

NodeId OperatorGraph::AddNode(OpNode node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  node.id = id;
  for (const NodeId input : node.inputs) {
    NSF_CHECK_MSG(input >= 0 && input < id,
                  "node inputs must reference earlier nodes (topological "
                  "insertion order)");
  }
  nodes_.push_back(std::move(node));
  return id;
}

const OpNode& OperatorGraph::node(NodeId id) const {
  NSF_CHECK_MSG(id >= 0 && id < size(), "node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

OpNode& OperatorGraph::node(NodeId id) {
  NSF_CHECK_MSG(id >= 0 && id < size(), "node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

std::optional<NodeId> OperatorGraph::FindByName(const std::string& name) const {
  for (const auto& n : nodes_) {
    if (n.name == name) {
      return n.id;
    }
  }
  return std::nullopt;
}

std::vector<std::vector<NodeId>> OperatorGraph::BuildConsumers() const {
  std::vector<std::vector<NodeId>> consumers(nodes_.size());
  for (const auto& n : nodes_) {
    for (const NodeId input : n.inputs) {
      consumers[static_cast<std::size_t>(input)].push_back(n.id);
    }
  }
  return consumers;
}

void OperatorGraph::Validate() const {
  std::unordered_map<std::string, int> name_count;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& n = nodes_[i];
    NSF_CHECK_MSG(n.id == static_cast<NodeId>(i), "node id mismatch");
    NSF_CHECK_MSG(!n.name.empty(), "node must have a name");
    ++name_count[n.name];
    NSF_CHECK_MSG(name_count[n.name] == 1, "duplicate node name: " + n.name);
    for (const NodeId input : n.inputs) {
      NSF_CHECK_MSG(input >= 0 && input < n.id,
                    "edge must point to an earlier node: " + n.name);
    }
    if (n.unit() == ComputeUnit::kAdArray && n.domain() == Domain::kNeuro) {
      NSF_CHECK_MSG(n.gemm.m > 0 && n.gemm.n > 0 && n.gemm.k > 0,
                    "neural array op needs GEMM dims: " + n.name);
    }
    if (n.unit() == ComputeUnit::kAdArray && n.domain() == Domain::kSymbolic) {
      NSF_CHECK_MSG(n.vsa.count > 0 && n.vsa.dim > 0,
                    "VSA array op needs vector dims: " + n.name);
    }
  }
}

DomainStats OperatorGraph::StatsFor(Domain domain) const {
  DomainStats stats;
  for (const auto& n : nodes_) {
    if (n.domain() == domain) {
      stats.flops += n.Flops();
      stats.bytes += n.TotalBytes();
      stats.traffic_bytes += n.TrafficBytes();
      ++stats.ops;
    }
  }
  return stats;
}

DomainStats OperatorGraph::StatsFor(OpCategory category) const {
  DomainStats stats;
  for (const auto& n : nodes_) {
    if (n.category() == category) {
      stats.flops += n.Flops();
      stats.bytes += n.TotalBytes();
      stats.traffic_bytes += n.TrafficBytes();
      ++stats.ops;
    }
  }
  return stats;
}

double OperatorGraph::TotalFlops() const {
  double total = 0.0;
  for (const auto& n : nodes_) {
    total += n.Flops();
  }
  return total;
}

double OperatorGraph::TotalBytes() const {
  double total = 0.0;
  for (const auto& n : nodes_) {
    total += n.TotalBytes();
  }
  return total;
}

std::vector<NodeId> OperatorGraph::NodesOnUnit(ComputeUnit unit) const {
  std::vector<NodeId> ids;
  for (const auto& n : nodes_) {
    if (n.unit() == unit) {
      ids.push_back(n.id);
    }
  }
  return ids;
}

}  // namespace nsflow
