// Tests for the multi-tenant serving path: CompileCache content-hash
// memoization, per-workload batch purity and FIFO order in the
// MultiBatchFormer, workload-set-aware dispatch, and fixed-seed determinism
// of a 3-workload mixed serve run.
#include <gtest/gtest.h>

#include <set>

#include "serve/batch_former.h"
#include "serve/engine.h"
#include "serve/server_pool.h"
#include "serve/workload_registry.h"
#include "workloads/builders.h"

namespace nsflow::serve {
namespace {

Request At(std::int64_t id, double arrival_s, WorkloadId workload) {
  return Request{id, arrival_s, workload};
}

/// One registry shared by the whole suite: the three mix workloads are
/// compiled exactly once no matter how many tests exercise them.
WorkloadRegistry& SharedRegistry() {
  static WorkloadRegistry* registry = [] {
    auto* r = new WorkloadRegistry();
    r->RegisterBuiltin("mlp");
    r->RegisterBuiltin("resnet18");
    r->RegisterBuiltin("nvsa");
    return r;
  }();
  return *registry;
}

// -------------------------------------------------------------- compile cache

TEST(CompileCacheTest, HitsOnIdenticalTraceContent) {
  WorkloadRegistry registry;
  const WorkloadId a = registry.Register("a", workloads::MakeMlp());
  EXPECT_EQ(registry.cache().misses(), 1);
  EXPECT_EQ(registry.cache().hits(), 0);

  // Same builder, same params -> same trace content -> cache hit, and both
  // names share one CompiledDesign instance.
  const WorkloadId b = registry.Register("b", workloads::MakeMlp());
  EXPECT_EQ(registry.cache().misses(), 1);
  EXPECT_EQ(registry.cache().hits(), 1);
  EXPECT_NE(a, b);
  EXPECT_EQ(&registry.compiled(a), &registry.compiled(b));

  // Different content misses.
  workloads::MlpParams small;
  small.hidden_dim = 256;
  registry.Register("c", workloads::MakeMlp(small));
  EXPECT_EQ(registry.cache().misses(), 2);
}

TEST(CompileCacheTest, ContentHashTracksTraceContent) {
  const auto h1 = CompileCache::ContentHash(workloads::MakeMlp());
  const auto h2 = CompileCache::ContentHash(workloads::MakeMlp());
  EXPECT_EQ(h1, h2);
  workloads::MlpParams other;
  other.hidden_layers = 2;
  EXPECT_NE(h1, CompileCache::ContentHash(workloads::MakeMlp(other)));
}

TEST(CompileCacheTest, ReregisteringSameNameSameContentReturnsSameId) {
  WorkloadRegistry registry;
  const WorkloadId first = registry.Register("mlp", workloads::MakeMlp());
  const WorkloadId again = registry.Register("mlp", workloads::MakeMlp());
  EXPECT_EQ(first, again);
  EXPECT_EQ(registry.size(), 1);
  // Same name with different content is rejected.
  workloads::MlpParams other;
  other.classes = 20;
  EXPECT_ANY_THROW(registry.Register("mlp", workloads::MakeMlp(other)));
}

TEST(CompileCacheTest, UnknownNamesThrow) {
  WorkloadRegistry registry;
  EXPECT_ANY_THROW(registry.RegisterBuiltin("not-a-workload"));
  EXPECT_ANY_THROW(registry.IdOf("missing"));
  EXPECT_FALSE(registry.Contains("missing"));
}

// ------------------------------------------------------------- multi former

TEST(MultiBatchFormerTest, BatchesNeverMixWorkloads) {
  MultiBatchFormer former(BatchPolicy{4, 1.0}, 2);
  const std::vector<double> idle(2, 0.0);
  std::vector<Batch> closed;
  // Interleaved arrivals: w0, w1, w0, w1, ... Each lane fills to 4 on its
  // own; every closed batch must be single-workload.
  for (int i = 0; i < 16; ++i) {
    for (Batch& batch :
         former.Add(At(i, 0.001 * i, static_cast<WorkloadId>(i % 2)), idle)) {
      closed.push_back(std::move(batch));
    }
  }
  ASSERT_EQ(closed.size(), 4u);
  for (const Batch& batch : closed) {
    EXPECT_EQ(batch.size(), 4);
    for (const Request& request : batch.requests) {
      EXPECT_EQ(request.workload, batch.workload);
    }
  }
}

TEST(MultiBatchFormerTest, FifoOrderWithinWorkload) {
  MultiBatchFormer former(BatchPolicy{8, 0.005}, 3);
  const std::vector<double> idle(3, 0.0);
  std::vector<Batch> closed;
  // Round-robin arrivals across 3 workloads, then flush.
  for (int i = 0; i < 12; ++i) {
    for (Batch& batch :
         former.Add(At(i, 1e-4 * i, static_cast<WorkloadId>(i % 3)), idle)) {
      closed.push_back(std::move(batch));
    }
  }
  for (Batch& batch : former.Flush(1.0)) {
    closed.push_back(std::move(batch));
  }
  std::int64_t total = 0;
  for (const Batch& batch : closed) {
    for (std::size_t i = 1; i < batch.requests.size(); ++i) {
      EXPECT_LT(batch.requests[i - 1].id, batch.requests[i].id);
      EXPECT_LT(batch.requests[i - 1].arrival_s, batch.requests[i].arrival_s);
    }
    total += batch.size();
  }
  EXPECT_EQ(total, 12);
}

TEST(MultiBatchFormerTest, ExpiredLanesCloseOldestHeadOfLineFirst) {
  MultiBatchFormer former(BatchPolicy{8, 0.005}, 3);
  const std::vector<double> idle(3, 0.0);
  // Lane 2's head arrives first, then lane 0's: both wait past their
  // deadlines; a late arrival on lane 1 must close lane 2 before lane 0.
  EXPECT_TRUE(former.Add(At(0, 0.000, 2), idle).empty());
  EXPECT_TRUE(former.Add(At(1, 0.002, 0), idle).empty());
  const std::vector<Batch> closed = former.Add(At(2, 0.100, 1), idle);
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].workload, 2);
  EXPECT_DOUBLE_EQ(closed[0].formed_s, 0.005);  // Its own deadline.
  EXPECT_EQ(closed[1].workload, 0);
  EXPECT_DOUBLE_EQ(closed[1].formed_s, 0.007);
  EXPECT_EQ(former.pending(1), 1);
}

TEST(MultiBatchFormerTest, BusyHorizonStretchesPerWorkload) {
  MultiBatchFormer former(BatchPolicy{8, 0.005}, 2);
  // Workload 0's replicas are busy until t=0.1; workload 1's are idle.
  const std::vector<double> busy = {0.100, 0.0};
  EXPECT_TRUE(former.Add(At(0, 0.000, 0), busy).empty());
  EXPECT_TRUE(former.Add(At(1, 0.001, 1), busy).empty());
  // t=0.050: lane 1 is past its (unstretched) deadline and closes; lane 0
  // keeps absorbing backlog until its busy horizon.
  const std::vector<Batch> closed = former.Add(At(2, 0.050, 0), busy);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].workload, 1);
  EXPECT_EQ(former.pending(0), 2);
  // t=0.120 passes the stretched horizon: lane 0 closes at it.
  const std::vector<Batch> after = former.Add(At(3, 0.120, 1), busy);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].workload, 0);
  EXPECT_DOUBLE_EQ(after[0].formed_s, 0.100);
}

// ------------------------------------------------------------ pool routing

TEST(MultiTenantPoolTest, PartitionedDispatchRespectsWorkloadSets) {
  WorkloadRegistry& registry = SharedRegistry();
  // Replica r serves only workload r (3 replicas, 3 workloads).
  const std::vector<ReplicaSpec> specs =
      registry.ReplicaSpecs(registry.size(), /*partitioned=*/true);
  ServerPool pool(specs, registry.Dataflows());
  for (int r = 0; r < pool.size(); ++r) {
    for (WorkloadId w = 0; w < pool.workloads(); ++w) {
      EXPECT_EQ(pool.CanServe(r, w), r == w);
    }
  }

  ServeStats stats(pool.size(), pool.workloads());
  for (int i = 0; i < 6; ++i) {
    Batch batch;
    batch.workload = static_cast<WorkloadId>(i % 3);
    batch.formed_s = 0.0;
    batch.requests = {At(i, 0.0, batch.workload)};
    const DispatchRecord record = pool.Dispatch(batch, &stats);
    EXPECT_EQ(record.replica, batch.workload);  // Only capable replica.
    EXPECT_EQ(record.workload, batch.workload);
  }
  // A batch for a workload with no capable replica is rejected up front at
  // pool construction, not dispatch: constructing such a pool throws.
  std::vector<ReplicaSpec> uncovered = {
      ReplicaSpec{registry.compiled(0).design(), {0}, 0}};
  EXPECT_ANY_THROW(ServerPool(uncovered, registry.Dataflows()));
  // So is a partitioned layout with fewer replicas than workloads.
  EXPECT_ANY_THROW(registry.ReplicaSpecs(registry.size() - 1,
                                         /*partitioned=*/true));
}

TEST(MultiTenantPoolTest, LatencyCacheIsKeyedByWorkload) {
  WorkloadRegistry& registry = SharedRegistry();
  // One replica, one design, serving all three workloads: the same batch
  // size must yield per-workload service times (mlp is far lighter than
  // nvsa).
  const WorkloadId nvsa = registry.IdOf("nvsa");
  std::vector<ReplicaSpec> specs = {
      ReplicaSpec{registry.ProvisionDesign(nvsa), {}, nvsa}};
  ServerPool pool(specs, registry.Dataflows());
  const double mlp_s = pool.BatchSeconds(0, registry.IdOf("mlp"), 4);
  const double nvsa_s = pool.BatchSeconds(0, registry.IdOf("nvsa"), 4);
  EXPECT_GT(mlp_s, 0.0);
  EXPECT_GT(nvsa_s, mlp_s);
}

// ----------------------------------------------------------- mixed serving

TEST(MultiTenantServeTest, ThreeWorkloadMixIsDeterministicUnderFixedSeed) {
  WorkloadRegistry& registry = SharedRegistry();
  const std::vector<WorkloadShare> mix = {
      {"mlp", 0.6}, {"resnet18", 0.3}, {"nvsa", 0.1}};
  const std::vector<ReplicaSpec> replicas =
      registry.ReplicaSpecs(4, /*partitioned=*/false);
  ServeOptions options;
  options.qps = 150.0;
  options.duration_s = 0.4;
  options.seed = 7;

  const ServeReport first =
      RunSyntheticServe(registry, replicas, mix, options);
  const ServeReport second =
      RunSyntheticServe(registry, replicas, mix, options);

  EXPECT_EQ(first.generated_requests, second.generated_requests);
  ASSERT_EQ(first.dispatches.size(), second.dispatches.size());
  for (std::size_t i = 0; i < first.dispatches.size(); ++i) {
    EXPECT_EQ(first.dispatches[i].replica, second.dispatches[i].replica);
    EXPECT_EQ(first.dispatches[i].workload, second.dispatches[i].workload);
    EXPECT_DOUBLE_EQ(first.dispatches[i].start_s,
                     second.dispatches[i].start_s);
    EXPECT_DOUBLE_EQ(first.dispatches[i].complete_s,
                     second.dispatches[i].complete_s);
    EXPECT_EQ(first.dispatches[i].size, second.dispatches[i].size);
  }
  ASSERT_EQ(first.summary.per_workload.size(), 3u);
  for (std::size_t w = 0; w < 3; ++w) {
    EXPECT_EQ(first.summary.per_workload[w].completed,
              second.summary.per_workload[w].completed);
    EXPECT_DOUBLE_EQ(first.summary.per_workload[w].p99_ms,
                     second.summary.per_workload[w].p99_ms);
  }

  // All generated traffic completes, every workload in the mix saw some,
  // and the shares roughly track the mix (0.6 mlp vs 0.1 nvsa).
  EXPECT_EQ(first.summary.completed, first.generated_requests);
  const auto& slices = first.summary.per_workload;
  EXPECT_EQ(slices[0].name, "mlp");
  EXPECT_GT(slices[0].completed, 0);
  EXPECT_GT(slices[1].completed, 0);
  EXPECT_GT(slices[2].completed, 0);
  EXPECT_GT(slices[0].completed, slices[2].completed);

  // A different seed draws a different (time, workload) trace.
  options.seed = 99;
  const ServeReport other =
      RunSyntheticServe(registry, replicas, mix, options);
  EXPECT_NE(other.summary.p99_ms, first.summary.p99_ms);
}

TEST(MultiTenantServeTest, ArrivalMixSamplingIsSeeded) {
  ServeOptions options;
  options.qps = 500.0;
  options.duration_s = 1.0;
  options.seed = 11;
  const std::vector<double> shares = {0.6, 0.3, 0.1};
  const auto first = SyntheticArrivals(options, shares);
  const auto second = SyntheticArrivals(options, shares);
  ASSERT_EQ(first.size(), second.size());
  std::vector<std::int64_t> counts(3, 0);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].workload, second[i].workload);
    EXPECT_DOUBLE_EQ(first[i].arrival_s, second[i].arrival_s);
    ++counts[static_cast<std::size_t>(first[i].workload)];
  }
  // Law of large numbers at ~500 samples: ordering of shares is preserved.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[2]);
}

}  // namespace
}  // namespace nsflow::serve
