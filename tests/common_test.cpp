// Unit tests for src/common: errors, math helpers, RNG, table, tensor.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/tensor.h"

namespace nsflow {
namespace {

TEST(ErrorTest, CheckThrowsWithExpressionAndLocation) {
  try {
    NSF_CHECK_MSG(1 == 2, "context message");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("context message"), std::string::npos);
  }
}

TEST(ErrorTest, CheckPassesOnTrue) {
  EXPECT_NO_THROW(NSF_CHECK(2 + 2 == 4));
}

TEST(ErrorTest, HierarchyIsCatchableAsError) {
  EXPECT_THROW(throw ParseError("x"), Error);
  EXPECT_THROW(throw InfeasibleError("x"), Error);
}

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(CeilDiv<std::int64_t>(10, 3), 4);
  EXPECT_EQ(CeilDiv<std::int64_t>(9, 3), 3);
  EXPECT_EQ(CeilDiv<std::int64_t>(1, 3), 1);
  EXPECT_EQ(CeilDiv<std::int64_t>(0, 3), 0);
}

TEST(MathUtilTest, RoundUp) {
  EXPECT_EQ(RoundUp<std::int64_t>(10, 8), 16);
  EXPECT_EQ(RoundUp<std::int64_t>(16, 8), 16);
}

TEST(MathUtilTest, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(1023), 9);
  EXPECT_EQ(FloorLog2(1024), 10);
}

TEST(MathUtilTest, IsPowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(48));
}

TEST(MathUtilTest, ModIsEuclidean) {
  EXPECT_EQ(Mod(5, 3), 2);
  EXPECT_EQ(Mod(-1, 3), 2);
  EXPECT_EQ(Mod(-3, 3), 0);
  EXPECT_EQ(Mod(0, 7), 0);
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(3);
  const auto sample = rng.SampleWithoutReplacement(20, 10);
  ASSERT_EQ(sample.size(), 10u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (const auto v : sample) {
    EXPECT_LT(v, 20u);
  }
}

TEST(RngTest, SampleWithoutReplacementRejectsOversample) {
  Rng rng(3);
  EXPECT_THROW(rng.SampleWithoutReplacement(3, 4), CheckError);
}

TEST(RngTest, GaussianHasRoughlyCorrectMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.Gaussian(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(TableTest, RendersAlignedColumns) {
  TablePrinter table({"Device", "Runtime"});
  table.AddRow({"TX2", "23.90"});
  table.AddRow({"NSFlow", "1.00"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| Device"), std::string::npos);
  EXPECT_NE(out.find("| TX2"), std::string::npos);
  EXPECT_NE(out.find("| NSFlow"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableTest, RejectsWrongArity) {
  TablePrinter table({"A", "B"});
  EXPECT_THROW(table.AddRow({"only one"}), CheckError);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Percent(0.345, 1), "34.5%");
  EXPECT_EQ(TablePrinter::Bytes(2.0 * 1024.0 * 1024.0), "2.00 MB");
  EXPECT_EQ(TablePrinter::Bytes(512.0), "512.00 B");
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(t.at(i), 0.0f);
  }
}

TEST(TensorTest, ShapeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f, 2.0f, 3.0f}), CheckError);
}

TEST(TensorTest, At2) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at2(0, 0), 1.0f);
  EXPECT_EQ(t.at2(1, 2), 6.0f);
  t.at2(1, 0) = 9.0f;
  EXPECT_EQ(t.at(3), 9.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.Reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_EQ(r.at2(2, 1), 6.0f);
  EXPECT_THROW(t.Reshaped({4, 2}), CheckError);
}

TEST(TensorTest, ArithmeticHelpers) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {4, 5, 6});
  EXPECT_FLOAT_EQ(a.Dot(b), 32.0f);
  EXPECT_FLOAT_EQ(b.MaxAbs(), 6.0f);
  a += b;
  EXPECT_EQ(a.at(0), 5.0f);
  a *= 2.0f;
  EXPECT_EQ(a.at(2), 18.0f);
  EXPECT_NEAR(Tensor({2}, {3, 4}).Norm(), 5.0f, 1e-6);
}

TEST(MatMulTest, MatchesHandComputedProduct) {
  const Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at2(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at2(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 1), 154.0f);
}

TEST(MatMulTest, IdentityIsNeutral) {
  Rng rng(5);
  Tensor a({4, 4});
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    a.at(i) = static_cast<float>(rng.Gaussian());
  }
  Tensor eye({4, 4});
  for (int i = 0; i < 4; ++i) {
    eye.at2(i, i) = 1.0f;
  }
  EXPECT_EQ(MatMul(a, eye), a);
}

TEST(MatMulTest, RejectsMismatchedInner) {
  EXPECT_THROW(MatMul(Tensor({2, 3}), Tensor({4, 2})), CheckError);
}

}  // namespace
}  // namespace nsflow
