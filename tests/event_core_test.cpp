// Discrete-event serve core: differential equivalence + primitive tests
// (docs/ENGINE.md).
//
// Three layers:
//
//   1. The differential matrix — golden digests recorded from the
//      pre-rewrite polling build, which every matrix row must reproduce
//      byte-for-byte with the event engine, plus an in-process
//      legacy-vs-event comparison that holds on any toolchain.
//   2. Unit/property tests for the event-core primitives: (time, class,
//      seq) tie-break stability, randomized equal-timestamp drain order,
//      pooled-node reuse and the generation (ABA) guard.
//   3. The allocation contract: a reserved EventList / grown NodePool
//      never allocates in steady state (exact zero over a million-event
//      window), and a whole event-engine serve run performs O(1) counted
//      allocations regardless of request count.
//
// Regenerate the goldens (only on a toolchain whose fingerprint matches,
// and only intentionally) with:
//
//   NSFLOW_REGEN_GOLDEN=1 ./build/test_event_core_test
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/event_core.h"
#include "serve_differential.h"

namespace nsflow::serve {
namespace {

using event_core::Event;
using event_core::EventClass;
using event_core::EventList;
using event_core::NodePool;

std::string GoldenPath() {
  const std::string self = __FILE__;
  return self.substr(0, self.find_last_of('/')) +
         "/golden/event_core_golden.txt";
}

struct GoldenFile {
  std::string fingerprint;
  std::map<std::string, std::pair<std::string, int>> rows;  // key -> digest.
};

GoldenFile LoadGolden() {
  GoldenFile golden;
  std::ifstream in(GoldenPath());
  EXPECT_TRUE(in.good()) << "missing golden file: " << GoldenPath();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string first;
    fields >> first;
    if (first == "fingerprint") {
      fields >> golden.fingerprint;
      continue;
    }
    std::string digest;
    int exit_code = 0;
    fields >> digest >> exit_code;
    golden.rows[first] = {digest, exit_code};
  }
  return golden;
}

// ------------------------------------------------- differential matrix

TEST(EventCoreDifferential, MatrixMatchesPreRewriteGolden) {
  const diff::DiffFixture fixture;
  const std::string fingerprint = diff::PlatformFingerprint(fixture);
  const bool regen = std::getenv("NSFLOW_REGEN_GOLDEN") != nullptr;

  if (regen) {
    std::ofstream out(GoldenPath());
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    out << "# Serve-engine differential digests (pre-rewrite polling "
           "build).\n"
        << "# One row per matrix config: key digest exit_code — see\n"
        << "# tests/serve_differential.h for the serialization.\n"
        << "fingerprint " << fingerprint << "\n";
    for (const diff::DiffConfig& config : diff::MatrixConfigs()) {
      const diff::RunResult result =
          diff::RunConfig(fixture, diff::OptionsFor(config));
      out << config.Key() << " " << diff::HexDigest(result.digest) << " "
          << result.exit_code << "\n";
    }
    return;
  }

  const GoldenFile golden = LoadGolden();
  if (golden.fingerprint != fingerprint) {
    GTEST_SKIP() << "platform fingerprint " << fingerprint
                 << " != golden " << golden.fingerprint
                 << " — libm/FP differences make the recorded digests "
                    "incomparable on this toolchain (the "
                    "EventAndLegacyEnginesAgree leg still ran)";
  }
  for (const diff::DiffConfig& config : diff::MatrixConfigs()) {
    const auto row = golden.rows.find(config.Key());
    ASSERT_NE(row, golden.rows.end()) << "no golden row for "
                                      << config.Key();
    const diff::RunResult result =
        diff::RunConfig(fixture, diff::OptionsFor(config));
    EXPECT_EQ(diff::HexDigest(result.digest), row->second.first)
        << "digest drift at " << config.Key();
    EXPECT_EQ(result.exit_code, row->second.second)
        << "exit-code drift at " << config.Key();
  }
}

// The toolchain-independent leg: the preserved polling driver and the
// event driver must produce byte-identical runs on every matrix row —
// both digests come from this build, so no fingerprint gate applies.
TEST(EventCoreDifferential, EventAndLegacyEnginesAgree) {
  const diff::DiffFixture fixture;
  for (const diff::DiffConfig& config : diff::MatrixConfigs()) {
    ServeOptions options = diff::OptionsFor(config);
    options.engine = ServeEngine::kEvent;
    const diff::RunResult event_run = diff::RunConfig(fixture, options);
    options.engine = ServeEngine::kLegacy;
    const diff::RunResult legacy_run = diff::RunConfig(fixture, options);
    EXPECT_EQ(diff::HexDigest(event_run.digest),
              diff::HexDigest(legacy_run.digest))
        << "engine divergence at " << config.Key();
    EXPECT_EQ(event_run.exit_code, legacy_run.exit_code)
        << "exit-code divergence at " << config.Key();
  }
}

// ---------------------------------------- same-instant ordering contract
//
// The latent hazard the EventClass contract fixes: with an adversity
// fault and an autoscaler tick landing on the same virtual instant, the
// fault must fire first (the world changes, then the control loop
// observes it). Previously that ordering fell out of code order in the
// polling loop; now it is an explicit priority, pinned here for BOTH
// drivers via the stats timeline's record order.
TEST(EventCoreDifferential, SameInstantAdversityFiresBeforeTick) {
  const diff::DiffFixture fixture;
  for (const ServeEngine engine :
       {ServeEngine::kEvent, ServeEngine::kLegacy}) {
    diff::DiffConfig config;
    config.autoscale = true;  // First control tick at interval_s = 0.25.
    ServeOptions options = diff::OptionsFor(config);
    options.adversity =
        AdversitySpec::Parse("straggler:at=0.25,duration=0.5,count=1");
    options.engine = engine;
    const ServeReport report = RunSyntheticServe(
        fixture.registry, fixture.replicas, fixture.mix, options);
    const std::vector<PoolEvent>& timeline = report.summary.timeline;
    std::ptrdiff_t fault_at = -1;
    std::ptrdiff_t sample_at = -1;
    for (std::size_t i = 0; i < timeline.size(); ++i) {
      if (timeline[i].t_s != 0.25) {
        continue;
      }
      if (fault_at < 0 && timeline[i].kind == PoolEventKind::kFault) {
        fault_at = static_cast<std::ptrdiff_t>(i);
      }
      if (sample_at < 0 && timeline[i].kind == PoolEventKind::kSample) {
        sample_at = static_cast<std::ptrdiff_t>(i);
      }
    }
    ASSERT_GE(fault_at, 0) << "no fault event at t=0.25";
    ASSERT_GE(sample_at, 0) << "no tick sample at t=0.25";
    EXPECT_LT(fault_at, sample_at)
        << "same-instant adversity must fire before the autoscaler tick ("
        << (engine == ServeEngine::kEvent ? "event" : "legacy")
        << " engine)";
  }
}

// --------------------------------------------------- EventList ordering

TEST(EventListTest, SameInstantClassPriorityOrder) {
  EventList list;
  // Pushed in reverse priority: the pop order must be the class order,
  // not the push order.
  list.Push(1.0, EventClass::kDrain);
  list.Push(1.0, EventClass::kArrival);
  list.Push(1.0, EventClass::kAdmissionRetry);
  list.Push(1.0, EventClass::kAutoscalerTick);
  list.Push(1.0, EventClass::kAdversity);
  EXPECT_EQ(list.Pop().cls, EventClass::kAdversity);
  EXPECT_EQ(list.Pop().cls, EventClass::kAutoscalerTick);
  EXPECT_EQ(list.Pop().cls, EventClass::kAdmissionRetry);
  EXPECT_EQ(list.Pop().cls, EventClass::kArrival);
  EXPECT_EQ(list.Pop().cls, EventClass::kDrain);
  EXPECT_TRUE(list.empty());
}

TEST(EventListTest, TimeOrdersBeforeClass) {
  EventList list;
  list.Push(2.0, EventClass::kAdversity);
  list.Push(1.0, EventClass::kDrain);
  EXPECT_EQ(list.Pop().cls, EventClass::kDrain);
  EXPECT_EQ(list.Pop().cls, EventClass::kAdversity);
}

TEST(EventListTest, EqualKeyDrainsInPushOrder) {
  EventList list;
  for (std::int64_t i = 0; i < 64; ++i) {
    list.Push(3.5, EventClass::kArrival, /*payload=*/i);
  }
  for (std::int64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(list.Pop().payload, i) << "FIFO violated at position " << i;
  }
}

// Property: over a randomized schedule with heavy (time, class)
// collisions, the drain order is exactly the sorted (t, class, seq)
// order — in particular, equal-key events leave in scheduling order.
TEST(EventListTest, RandomizedDrainIsTotallyOrdered) {
  std::mt19937 rng(20250808);
  std::uniform_int_distribution<int> time_draw(0, 7);    // Few distinct
  std::uniform_int_distribution<int> class_draw(0, 3);   // values force
  EventList list;                                        // collisions.
  const int kEvents = 4096;
  for (int i = 0; i < kEvents; ++i) {
    list.Push(0.125 * time_draw(rng),
              static_cast<EventClass>(class_draw(rng)));
  }
  std::vector<Event> drained;
  drained.reserve(kEvents);
  while (!list.empty()) {
    drained.push_back(list.Pop());
  }
  ASSERT_EQ(drained.size(), static_cast<std::size_t>(kEvents));
  for (std::size_t i = 1; i < drained.size(); ++i) {
    const Event& a = drained[i - 1];
    const Event& b = drained[i];
    const bool ordered =
        a.t_s < b.t_s ||
        (a.t_s == b.t_s &&
         (static_cast<int>(a.cls) < static_cast<int>(b.cls) ||
          (a.cls == b.cls && a.seq < b.seq)));
    ASSERT_TRUE(ordered) << "drain order violated at position " << i;
  }
}

// ------------------------------------------------------------- NodePool

struct TestNode {
  std::int64_t value = 0;
  explicit TestNode(std::int64_t v) : value(v) {}
};

TEST(NodePoolTest, ReleasedSlotIsReusedFirst) {
  NodePool<TestNode> pool(/*block_nodes=*/4);
  TestNode* a = pool.Acquire(1);
  TestNode* b = pool.Acquire(2);
  EXPECT_TRUE(pool.Owns(a));
  EXPECT_TRUE(pool.Owns(b));
  EXPECT_EQ(pool.live(), 2u);
  pool.Release(a);
  // LIFO freelist: the very next acquire reoccupies a's slot (same arena,
  // same address), not a fresh bump slot.
  TestNode* c = pool.Acquire(3);
  EXPECT_EQ(static_cast<void*>(c), static_cast<void*>(a));
  EXPECT_EQ(c->value, 3);
  EXPECT_EQ(pool.live(), 2u);
  pool.Release(b);
  pool.Release(c);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(NodePoolTest, GenerationGuardsAgainstAba) {
  NodePool<TestNode> pool(/*block_nodes=*/4);
  TestNode* node = pool.Acquire(7);
  const std::uint64_t born = pool.Generation(node);
  EXPECT_EQ(born, 0u);  // Never-released slot.
  pool.Release(node);
  TestNode* reused = pool.Acquire(8);
  ASSERT_EQ(static_cast<void*>(reused), static_cast<void*>(node));
  // The slot address repeats (the A-B-A shape) but the generation moved:
  // a handle that remembered `born` can detect its node was recycled.
  EXPECT_EQ(pool.Generation(reused), born + 1);
  pool.Release(reused);
  TestNode* again = pool.Acquire(9);
  EXPECT_EQ(pool.Generation(again), born + 2);
  pool.Release(again);
}

TEST(NodePoolTest, GrowsInCountedBlocks) {
  const std::int64_t before = event_core::allocation_count();
  NodePool<TestNode> pool(/*block_nodes=*/8);
  std::vector<TestNode*> nodes;
  for (std::int64_t i = 0; i < 24; ++i) {
    nodes.push_back(pool.Acquire(i));
  }
  EXPECT_EQ(pool.capacity(), 24u);  // Three 8-node arena blocks.
  EXPECT_EQ(event_core::allocation_count() - before, 3);
  for (TestNode* node : nodes) {
    pool.Release(node);
  }
}

// -------------------------------------------------- allocation contract

// The steady-state gate: once the spine is reserved and the arena has
// grown, a million push/pop + acquire/release cycles perform exactly zero
// counted allocations.
TEST(AllocationContract, MillionEventSteadyStateIsAllocationFree) {
  EventList list;
  list.Reserve(1024);
  NodePool<TestNode> pool(/*block_nodes=*/256);
  std::vector<TestNode*> warm;
  for (std::int64_t i = 0; i < 256; ++i) {
    warm.push_back(pool.Acquire(i));  // Grow the first arena block.
  }
  for (TestNode* node : warm) {
    pool.Release(node);
  }
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> jitter(0.0, 1.0);

  const std::int64_t before = event_core::allocation_count();
  double clock = 0.0;
  std::size_t depth = 0;
  for (std::int64_t i = 0; i < 1'000'000; ++i) {
    if (depth < 512 && (depth == 0 || (i & 1) == 0)) {
      list.Push(clock + jitter(rng), EventClass::kArrival, i);
      ++depth;
    } else {
      TestNode* node = pool.Acquire(list.Pop().payload);  // Churn a node
      pool.Release(node);                                 // per pop.
      --depth;
      clock += 1e-6;
    }
  }
  while (!list.empty()) {
    list.Pop();
  }
  EXPECT_EQ(event_core::allocation_count() - before, 0)
      << "steady-state event scheduling allocated";
}

// Engine-level gate: a full event-driven serve run performs O(1) counted
// allocations — one heap reserve — no matter how many requests flow
// through (a million here). Anything per-request would show up as a
// request-count-scaled delta.
TEST(AllocationContract, EventEngineRunAllocationsAreConstant) {
  const diff::DiffFixture fixture;
  ServeOptions options;
  options.qps = 500000.0;
  options.duration_s = 2.0;
  options.max_batch = 8;
  options.seed = 42;
  options.engine = ServeEngine::kEvent;
  const std::int64_t before = event_core::allocation_count();
  const ServeReport report = RunSyntheticServe(
      fixture.registry, fixture.replicas, fixture.mix, options);
  const std::int64_t delta = event_core::allocation_count() - before;
  EXPECT_GE(report.generated_requests, 900000);
  EXPECT_LE(delta, 2) << "event-core allocations scaled with the run";
}

}  // namespace
}  // namespace nsflow::serve
