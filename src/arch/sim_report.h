// SimReport — the cycle/traffic breakdown of one simulated (or estimated)
// workload loop. Shared by the mutating cycle-level simulator
// (arch/controller.h) and the allocation-free fast-path estimator
// (arch/fastpath.h); the two are bit-match-contracted in
// tests/fastpath_test.cpp.
#pragma once

namespace nsflow::arch {

/// Cycle/traffic report for one simulated loop.
struct SimReport {
  double nn_lane_cycles = 0.0;
  double vsa_lane_cycles = 0.0;
  double array_cycles = 0.0;        // max (parallel) or sum (sequential).
  double simd_cycles = 0.0;
  double simd_exposed_cycles = 0.0;
  double dram_cycles = 0.0;
  double dram_stall_cycles = 0.0;
  double total_cycles = 0.0;
  double dram_bytes = 0.0;
  double mem_a_swaps = 0.0;         // Double-buffer swaps performed.
  int kernels_executed = 0;

  double Seconds(double clock_hz) const { return total_cycles / clock_hz; }
};

}  // namespace nsflow::arch
