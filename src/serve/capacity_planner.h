// SLO-driven capacity planner — the paper's DSE provisioning the serving
// pool.
//
// PRs 1–3 sized replica pools by hand (`--replicas`, `--heterogeneous`).
// The planner closes the loop: given a workload mix, a p99-latency SLO, and
// an FPGA resource budget, it searches each workload's `ParetoDesigns`
// frontier (the two-phase DSE swept across shrinking PE budgets) with
// fast-path `ServingModel` latencies and an M/G/k-style queueing bound, and
// emits a `PoolPlan` — replica count x design kind x workload set with
// predicted p50/p99/utilization — that `ServerPool`/`WorkloadRegistry` can
// instantiate directly and `RunSyntheticServe` can validate (predicted vs
// measured p99 side by side; docs/PLANNING.md documents the tolerance).
//
// The queueing model, in one paragraph (assumptions in docs/PLANNING.md):
// each workload gets its own partitioned replica group, so each group is an
// independent queue. Arrivals are Poisson at the *scenario peak* rate share
// λ_w (plan for the crest, not the mean). For a candidate batch cap c the
// former coalesces ~b* = clamp(⌈λ_w · max_wait⌉, 1, c) requests per launch,
// so the group is approximated as M/D/k at job rate λ_w/b* with
// deterministic service S_w(b*) from the bit-exact fast path. The p99 is
// composed of three parts: the forming delay (0 when c = 1 — size-close at
// the arrival; else bounded by max_wait), the M/M/k (Erlang C) wait tail
// plus one service quantum when tail waits occur at all (service is
// deterministic and batch-quantized, so a waiting request sits behind a
// whole batch), and the *batch-tail residence* S_w(b99) where b99 counts
// the 99th-percentile co-arrival cluster joining the same lane within a
// forming-window + service span — residence grows nearly linearly in batch
// size on these designs, and the busy-horizon deadline stretch turns
// co-arrival clusters into larger batches. The planner searches (frontier
// design x batch cap x replica count) per workload and keeps the cheapest
// configuration meeting the SLO below the utilization cap whose summed
// per-replica FPGA resources fit the device budget.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/fastpath.h"
#include "common/json.h"
#include "dse/dse.h"
#include "fpga/device.h"
#include "fpga/resource_model.h"
#include "nsflow/framework.h"
#include "serve/engine.h"
#include "serve/server_pool.h"
#include "serve/workload_registry.h"

namespace nsflow::serve {

struct PlanOptions {
  /// Total offered load the plan must absorb (mean rate; the scenario's
  /// peak-to-mean shape scales it to the planning rate).
  double qps = 100.0;
  /// The p99 latency SLO every workload must meet, seconds.
  double p99_slo_s = 10e-3;
  /// FPGA budget: `devices` boards of the named device ("u250" | "zcu104").
  std::string device = "u250";
  int devices = 1;
  /// Cluster shape: the boards are split evenly across `nodes` hosts
  /// (`devices` must divide by `nodes`), and every replica is placed on a
  /// node under that per-node budget (docs/CLUSTER.md). 1 = one host, no
  /// placement — the plan JSON stays byte-identical to a pre-cluster plan.
  int nodes = 1;
  /// Search bounds and stability margin.
  int max_replicas_per_workload = 16;
  double max_utilization = 0.85;  // Planned rho cap (stability margin).
  int frontier_points = 4;        // Pareto points evaluated per workload.
  /// Batching policy bounds for the planned pool: the planner picks each
  /// group's batch cap from {1, 2, 4, ..., max_batch} (batching buys
  /// throughput on batch-amortizing workloads at a tail-latency cost — the
  /// search makes the trade explicitly).
  std::int64_t max_batch = 8;
  double max_wait_s = 5e-3;
  /// Traffic shape: the plan provisions for ScenarioPeakRate(scenario).
  ScenarioSpec scenario;
  /// Base DSE options (the per-point PE budget is swept below
  /// `dse.max_pes`); `dictionary_bytes` mirrors CompileOptions so planned
  /// designs match what the registry compiled.
  DseOptions dse;
  double dictionary_bytes = 512.0 * 1024.0;
};

/// One workload's replica group in a plan.
struct GroupPlan {
  std::string workload;
  WorkloadId workload_id = 0;
  AcceleratorDesign design;     // The chosen frontier design.
  std::int64_t pe_budget = 0;   // DSE max_pes that produced it (rebuildable).
  std::int64_t pes = 0;         // Actual H*W*N.
  int replicas = 0;
  double lambda_rps = 0.0;      // Planned (peak) arrival share.
  std::int64_t batch_cap = 1;   // The lane's chosen max_batch.
  int planned_batch = 1;        // b* the queueing model assumed.
  double service_s = 0.0;       // Batch-1 latency (fast path).
  double batch_service_s = 0.0; // Latency at planned_batch.
  double utilization = 0.0;     // Planned rho.
  double wait_p99_s = 0.0;      // Queueing-wait component of p99.
  double predicted_p50_s = 0.0;
  double predicted_p99_s = 0.0;
  /// Node of each of the group's replicas, in `Replicas()` order. Empty on
  /// single-node plans (everything implicitly on node 0).
  std::vector<int> placement;
};

/// Per-resource totals of a plan against the device budget.
struct PlanResources {
  double dsp = 0.0;
  double lut = 0.0;
  double ff = 0.0;
  double bram18 = 0.0;
  double uram = 0.0;
  bool fits = false;  // Every total <= devices x inventory.
};

/// The planner's output: a pool layout `ServerPool` can instantiate
/// directly (via `Replicas()`), with its predictions and budget accounting.
/// Serializes to the PoolPlan JSON schema (docs/PLANNING.md); `LoadPlan`
/// rebuilds an identical plan from that JSON by re-running the
/// deterministic DSE at each group's recorded PE budget.
struct PoolPlan {
  std::vector<GroupPlan> groups;
  std::vector<WorkloadShare> mix;
  double qps = 0.0;            // Mean offered load the plan was asked for.
  double planning_rate = 0.0;  // Scenario peak rate actually provisioned.
  double p99_slo_s = 0.0;
  std::string device_name;     // CLI name ("u250"), not the display name.
  int devices = 1;
  int nodes = 1;               // Cluster hosts the boards are split over.
  std::int64_t max_batch = 8;
  double max_wait_s = 5e-3;
  ScenarioSpec scenario;
  // Recorded for the bit-exact DSE rebuild: every CLI-settable DSE knob
  // that shapes a design besides the per-group PE budget. `dse_max_pes`
  // is the frontier sweep's base budget — the autoscaler rebuilds the
  // same frontier from it when serving the plan elastically.
  double dse_clock_hz = 272e6;
  bool dse_enable_phase2 = true;
  std::int64_t dse_max_pes = 16384;
  double dictionary_bytes = 512.0 * 1024.0;
  PlanResources resources;
  bool feasible = false;
  std::string note;            // Why infeasible (empty when feasible).
  double predicted_p50_s = 0.0;  // Mix-weighted aggregate quantiles.
  double predicted_p99_s = 0.0;

  int TotalReplicas() const;
  /// Expand the groups into the partitioned ReplicaSpec list (group order,
  /// `tuned_for` set) — the `ServerPool` / `RunSyntheticServe` input.
  std::vector<ReplicaSpec> Replicas() const;
  /// The groups' chosen batch caps as `ServeOptions::per_workload_max_batch`
  /// (indexed by WorkloadId).
  std::vector<std::int64_t> PerWorkloadMaxBatch() const;
  /// Replica -> node, flattened in `Replicas()` order (the
  /// `ServeOptions::cluster_nodes` input). All zeros on single-node plans.
  std::vector<int> Placement() const;
  Json ToJson() const;
};

/// The reusable, expensive half of a capacity plan: each workload's DSE
/// pareto frontier with the bit-exact fast-path serving model and the
/// budget-device resource report per frontier point. Building a frontier
/// runs the two-phase DSE (hundreds of ms per workload); everything
/// PlanCapacity does on top of it — the (design x batch cap x replica
/// count) queueing search — is microseconds. Online replanning (the
/// autoscaler's control loop) builds one frontier up front and re-plans
/// against it every decision, so a replan costs no DSE at all.
///
/// A frontier stays valid while the registry's compiled workloads, the
/// budget device, and the DSE options that built it are unchanged; the
/// traffic fields of PlanOptions (qps, scenario, SLO, replica bounds,
/// batching policy) may differ freely between replans.
struct PlanFrontier {
  struct WorkloadEntry {
    std::string workload;
    WorkloadId workload_id = 0;
    std::vector<ParetoPoint> points;
    std::vector<arch::ServingModel> models;  // Per point, tuned allocation.
    std::vector<ResourceReport> resources;   // Per point, vs `device`.
  };
  std::vector<WorkloadEntry> workloads;
  FpgaDevice device;

  /// Entry for a mix workload name; throws when the frontier was not built
  /// over it.
  const WorkloadEntry& Entry(const std::string& workload) const;
};

/// Sweep the frontier for every workload in `mix` (names resolved through
/// `registry`) under `options.dse` / `options.frontier_points` /
/// `options.device`.
PlanFrontier BuildPlanFrontier(const WorkloadRegistry& registry,
                               const std::vector<WorkloadShare>& mix,
                               const PlanOptions& options);

/// Plan a pool for `mix` over the workloads registered in `registry` (every
/// mix name must already be registered). Always returns a plan — when no
/// configuration meets the SLO and budget, `feasible` is false, `note` says
/// why, and the groups hold the best-effort (fastest-design, max-replica)
/// layout so the caller can still inspect what fell short.
PoolPlan PlanCapacity(const WorkloadRegistry& registry,
                      const std::vector<WorkloadShare>& mix,
                      const PlanOptions& options);

/// Incremental replan: the same search against a pre-built frontier (the
/// DSE is skipped entirely). `mix` may be any subset of the frontier's
/// workloads — the autoscaler replans one workload at a time. The
/// three-argument PlanCapacity is exactly this overload over
/// `BuildPlanFrontier(registry, mix, options)`, pinned by tests.
PoolPlan PlanCapacity(const WorkloadRegistry& registry,
                      const std::vector<WorkloadShare>& mix,
                      const PlanOptions& options,
                      const PlanFrontier& frontier);

/// Rebuild a serialized plan: resolves mix workloads in `registry`
/// (registering builtins on demand), re-runs the deterministic DSE at each
/// group's recorded PE budget, and restores the recorded predictions. The
/// rebuilt designs are bit-identical to the planner's (tests pin this).
PoolPlan LoadPlan(const Json& plan_json, WorkloadRegistry& registry);

/// Predicted-vs-measured comparison table for a validation run (the
/// `nsflow plan --validate` / `nsflow serve --plan` report): one row per
/// workload with predicted p99, measured p99, and the ratio.
std::string PlanValidationTable(const PoolPlan& plan,
                                const StatsSummary& measured);

}  // namespace nsflow::serve
