#!/usr/bin/env python3
"""NSFlow perf-regression harness.

Runs the serve benches from an existing build tree and records the perf
trajectory artifacts: BENCH_serve.json (fast-path cycle estimation — see
docs/PERFORMANCE.md) and BENCH_plan.json (capacity-planner predicted vs
measured p99 per traffic scenario — see docs/PLANNING.md). The heavy
lifting happens inside bench_serve_fastpath and bench_plan_scenarios;
this script drives them, sanity-checks the emitted JSON, and fails loudly
when the fast-path estimator diverges from the functional simulator or a
planned pool's measured tail leaves the documented tolerance band.

Usage:
  tools/run_benches.py [--build-dir build] [--out BENCH_serve.json]
                       [--plan-out BENCH_plan.json] [--smoke] [--full]

  --smoke  reduced iteration counts (the CI bench-smoke job's mode)
  --full   additionally run the serve throughput/multi-tenant sweeps
           (console tables only; they do not feed the JSON)
"""

import argparse
import json
import pathlib
import subprocess
import sys


def run(cmd, **kwargs):
    print("+", " ".join(str(c) for c in cmd), flush=True)
    return subprocess.run(cmd, **kwargs)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build tree holding the bench binaries")
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="where to write the perf artifact")
    parser.add_argument("--plan-out", default="BENCH_plan.json",
                        help="where to write the planner/scenario artifact")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced iteration counts (CI mode)")
    parser.add_argument("--full", action="store_true",
                        help="also run the serve sweep benches")
    args = parser.parse_args()

    build = pathlib.Path(args.build_dir).resolve()
    fastpath = build / "bench_serve_fastpath"
    if not fastpath.exists():
        print(f"error: {fastpath} not found — build the tree first "
              f"(cmake -B {build} -S . && cmake --build {build} -j)",
              file=sys.stderr)
        return 2

    cmd = [str(fastpath), "--out", args.out]
    if args.smoke:
        cmd.append("--smoke")
    result = run(cmd)
    if result.returncode != 0:
        print("error: bench_serve_fastpath failed "
              "(estimator/functional divergence fails the bench)",
              file=sys.stderr)
        return result.returncode

    # Independent sanity pass over the artifact: the bench already exits
    # non-zero on divergence, but a malformed or truncated JSON should not
    # reach CI artifacts silently.
    with open(args.out, encoding="utf-8") as fh:
        report = json.load(fh)
    divergent = report["contract"]["divergent"]
    if divergent != 0:
        print(f"error: {divergent} divergent cycle estimates",
              file=sys.stderr)
        return 1
    cold = report["cold_cache"]
    print(f"cold-cache fill: functional {cold['functional_fill_us']:.1f} us "
          f"-> fast path {cold['fastpath_fill_us']:.1f} us "
          f"({cold['speedup']:.1f}x), "
          f"warm hit {report['latency_cache']['warm_hit_ns']:.0f} ns")
    serve = report["serve"]
    print(f"serve: {serve['throughput_rps']:.1f} rps over "
          f"{serve['virtual_duration_s']:.1f} virtual s "
          f"({serve['engine_wall_ms']:.1f} ms wall), "
          f"p99 {serve['p99_ms']:.3f} ms")

    # Planner/scenario smoke: plan once, validate predicted vs measured
    # p99 under each arrival pattern. The bench itself exits non-zero on
    # a tolerance violation; re-check the artifact independently.
    plan_bench = build / "bench_plan_scenarios"
    if not plan_bench.exists():
        print(f"error: {plan_bench} not found — build the tree first",
              file=sys.stderr)
        return 2
    cmd = [str(plan_bench), "--out", args.plan_out]
    if args.smoke:
        cmd.append("--smoke")
    result = run(cmd)
    if result.returncode != 0:
        print("error: bench_plan_scenarios failed (measured p99 outside the "
              "documented tolerance of the plan's prediction)",
              file=sys.stderr)
        return result.returncode
    with open(args.plan_out, encoding="utf-8") as fh:
        plan_report = json.load(fh)
    if plan_report["tolerance"]["violations"] != 0:
        print("error: planner tolerance violations recorded in artifact",
              file=sys.stderr)
        return 1
    rows = plan_report["scenarios"]
    ratios = [w["ratio"] for row in rows for w in row["per_workload"]]
    print(f"plan: {len(rows)} scenario(s) planned+validated, "
          f"p99 meas/pred ratios {min(ratios):.2f}..{max(ratios):.2f}")

    if args.full:
        for bench in ("bench_serve_throughput", "bench_serve_multitenant",
                      "bench_scalability"):
            path = build / bench
            if path.exists():
                if run([str(path)]).returncode != 0:
                    print(f"error: {bench} failed", file=sys.stderr)
                    return 1
            else:
                print(f"note: {path} not built, skipping")

    print(f"wrote {args.out} and {args.plan_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
