// Bring-your-own workload: author a program trace in the paper's JSON
// format (Fig. 2's entry artifact), run it through the NSFlow frontend, and
// inspect every generated artifact — dataflow graph summary, DSE decision,
// design config JSON, host code, and the RTL parameter header.
//
//   $ ./custom_workload_dse
#include <cstdio>

#include "nsflow/framework.h"

namespace {

// A compact hybrid workload: a 3-layer CNN feeding a VSA associative-memory
// query loop — the kind of custom NSAI pipeline a user would bring.
constexpr const char* kTraceJson = R"({
  "workload": "CustomAssocMemory",
  "loop_count": 4,
  "precision": {"neural": "INT8", "symbolic": "INT4"},
  "ops": [
    {"name": "frames", "kind": "input", "output_bytes": 1572864},
    {"name": "conv1", "kind": "conv2d", "inputs": ["frames"],
     "gemm": {"m": 32, "n": 27, "k": 65536},
     "weight_bytes": 864, "activation_bytes": 786432,
     "output_bytes": 2097152},
    {"name": "relu1", "kind": "relu", "inputs": ["conv1"],
     "elem_count": 2097152, "activation_bytes": 2097152,
     "output_bytes": 2097152},
    {"name": "conv2", "kind": "conv2d", "inputs": ["relu1"],
     "gemm": {"m": 64, "n": 288, "k": 16384},
     "weight_bytes": 18432, "activation_bytes": 2097152,
     "output_bytes": 1048576},
    {"name": "relu2", "kind": "relu", "inputs": ["conv2"],
     "elem_count": 1048576, "activation_bytes": 1048576,
     "output_bytes": 1048576},
    {"name": "conv3", "kind": "conv2d", "inputs": ["relu2"],
     "gemm": {"m": 128, "n": 576, "k": 4096},
     "weight_bytes": 73728, "activation_bytes": 1048576,
     "output_bytes": 524288},
    {"name": "encode", "kind": "softmax", "inputs": ["conv3"],
     "elem_count": 4096, "activation_bytes": 524288,
     "output_bytes": 2048},
    {"name": "query_bind", "kind": "nvsa.binding_circular",
     "inputs": ["encode"], "vsa": {"count": 128, "dim": 512},
     "weight_bytes": 32768, "activation_bytes": 32768,
     "output_bytes": 32768},
    {"name": "memory_unbind", "kind": "nvsa.inv_binding_circular",
     "inputs": ["query_bind"], "vsa": {"count": 128, "dim": 512},
     "weight_bytes": 32768, "activation_bytes": 32768,
     "output_bytes": 32768},
    {"name": "match", "kind": "nvsa.match_prob_multi_batched",
     "inputs": ["memory_unbind"], "elem_count": 262144,
     "activation_bytes": 131072, "output_bytes": 512},
    {"name": "score", "kind": "torch.sum", "inputs": ["match"],
     "elem_count": 512, "activation_bytes": 512, "output_bytes": 4}
  ]
})";

}  // namespace

int main() {
  using namespace nsflow;

  const Compiler compiler;
  const CompiledDesign compiled = compiler.CompileJsonTrace(kTraceJson);

  const auto& dfg = *compiled.dataflow;
  std::printf("Ingested '%s': %zu NN layers, %zu VSA nodes, %zu SIMD ops, "
              "%d parallel ops exposed by the BFS pass\n",
              compiled.graph->workload_name().c_str(), dfg.layers().size(),
              dfg.vsa_ops().size(), dfg.simd_ops().size(),
              dfg.ParallelOpCount());

  const auto& dse = compiled.dse;
  std::printf("\nDSE decision (Algorithm 1):\n");
  std::printf("  t_seq  = %.0f cycles\n", dse.t_seq_cycles);
  std::printf("  t_para = %.0f cycles (Phase I %.0f -> Phase II %.0f, "
              "gain %.1f%%)\n",
              dse.t_para_cycles, dse.phase1_cycles, dse.phase2_cycles,
              dse.Phase2Gain() * 100.0);
  std::printf("  mode   = %s\n",
              dse.design.sequential_mode ? "sequential" : "folded-parallel");
  std::printf("  points evaluated: %lld (vs the ~10^300 exhaustive space)\n",
              static_cast<long long>(dse.evaluated_points));

  std::printf("\n--- System design config (.json) ---\n%s\n",
              compiled.design_config_json.c_str());
  std::printf("\n--- Generated host code (.cpp), first 800 chars ---\n%.800s"
              "...\n",
              compiled.host_code.c_str());
  std::printf("\n--- RTL parameter header (nsflow_params.vh) ---\n%s\n",
              compiled.rtl_parameter_header.c_str());
  std::printf("Predicted latency for 4 loops: %.3f ms\n",
              compiled.PredictedSeconds() * 1e3);
  return 0;
}
