// ResNet-18 layer catalogue.
//
// All four benchmark workloads (Table I) use a CNN frontend; NVSA/LVRF use a
// ResNet-18 over 160x160 RAVEN panels (the paper's Listing 1 trace shows
// [16,64,160,160] activations — 16 panels per reasoning task). This module
// enumerates the conv/pool/fc structure with exact im2col-lowered GEMM
// dimensions so the analytical model, the DSE, and the simulator all agree
// on layer shapes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/op.h"

namespace nsflow {

/// One convolution (or fc) layer lowered to GEMM.
struct ConvLayerSpec {
  std::string name;
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 0;      // kxk.
  std::int64_t stride = 1;
  std::int64_t in_size = 0;     // Input spatial edge (square).
  std::int64_t out_size = 0;    // Output spatial edge.
  bool followed_by_relu = true;

  /// im2col GEMM dims for batch `b`: m=Cout, n=Cin*k*k, k=b*out^2.
  GemmDims Gemm(std::int64_t batch) const {
    return {out_channels, in_channels * kernel * kernel,
            batch * out_size * out_size};
  }
  std::int64_t WeightCount() const {
    return out_channels * in_channels * kernel * kernel;
  }
  std::int64_t OutputCount(std::int64_t batch) const {
    return batch * out_channels * out_size * out_size;
  }
  std::int64_t InputCount(std::int64_t batch) const {
    return batch * in_channels * in_size * in_size;
  }
};

/// The 20 weight layers of ResNet-18 (conv1, 16 block convs, 3 downsample
/// 1x1 convs) for a square input of `input_size` pixels. The final fc is
/// omitted: NVSA-class frontends replace it with the PMF-to-VSA head.
std::vector<ConvLayerSpec> ResNet18Layers(std::int64_t input_size);

/// Total multiply-accumulate FLOPs of the stack for a given batch.
double ResNet18Flops(std::int64_t input_size, std::int64_t batch);

}  // namespace nsflow
