// NSFlow-Serve fast-path perf-regression bench — the source of
// BENCH_serve.json (docs/PERFORMANCE.md).
//
// Three measurements plus one contract check, all on the serving mix
// mlp=0.6,resnet18=0.3,nvsa=0.1:
//   1. cold-cache evaluation cost: nanoseconds per latency-cache miss under
//      the pre-fast-path functional protocol (scratch Accelerator +
//      RunWorkloadBatch, what ServerPool::BatchSeconds used to do) vs the
//      timing-only estimator (what it does now), and their ratio — the
//      cold-cache speedup the fast path delivers;
//   2. pool cache behavior: wall-clock of a cold WarmBatchSizes sweep vs
//      re-reading every entry warm (shared-lock hits);
//   3. end-to-end engine time: RunSyntheticServe under the mix with a fixed
//      seed, reporting wall-clock, throughput, and tail latencies.
// The contract check asserts estimator == functional (exact double
// equality) for every (workload, batch size, tuned/refit) the pool can
// evaluate; any divergence makes the bench exit non-zero, which is what
// the CI bench-smoke job keys on.
//
// A fourth section measures the discrete-event core (docs/ENGINE.md):
// heap schedule/fire throughput under a stationary event pattern — gated
// at 10M events/s on optimized unsanitized builds, non-zero exit below —
// plus the legacy-vs-event driver wall ratio on the same fixed-seed run.
//
// A fifth section gates the observability overhead contract
// (docs/OBSERVABILITY.md): the same fixed-seed mix run is timed with
// tracing off and on (paired, best-of-N), and the bench exits non-zero
// when obs-on costs more than 5% wall-clock over obs-off (plus a small
// absolute epsilon — smoke runs are sub-millisecond). `--trace-out FILE`
// additionally writes the traced run's Chrome JSON, which the CI
// bench-smoke job uploads as an artifact.
//
// Usage: bench_serve_fastpath [--out BENCH_serve.json] [--smoke]
//                             [--trace-out trace.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/fastpath.h"
#include "common/json.h"
#include "obs/observability.h"
#include "runtime/host_runtime.h"
#include "serve/engine.h"
#include "serve/event_core.h"
#include "serve/server_pool.h"
#include "serve/workload_registry.h"

// The event-core throughput gate only binds on an optimized,
// unsanitized build — Debug or sanitizer legs still measure and record
// the number, but a slow instrumented heap is not a regression.
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define NSFLOW_BENCH_SANITIZED 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define NSFLOW_BENCH_SANITIZED 1
#endif

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedNs(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

constexpr bool kEventGateEnforced =
#if defined(NDEBUG) && !defined(NSFLOW_BENCH_SANITIZED)
    true;
#else
    false;
#endif

}  // namespace

int main(int argc, char** argv) {
  using namespace nsflow;

  std::string out_path = "BENCH_serve.json";
  std::string trace_out_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out BENCH_serve.json] [--smoke] "
                   "[--trace-out trace.json]\n",
                   argv[0]);
      return 2;
    }
  }
  const int eval_iters = smoke ? 20 : 200;
  const double serve_duration_s = smoke ? 0.5 : 2.0;

  std::printf("=== NSFlow-Serve: fast-path perf regression ===\n\n");

  const std::string mix_spec = "mlp=0.6,resnet18=0.3,nvsa=0.1";
  serve::WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  registry.RegisterBuiltin("resnet18");
  registry.RegisterBuiltin("nvsa");
  const std::vector<serve::ReplicaSpec> specs =
      registry.ReplicaSpecs(/*replicas=*/3, /*partitioned=*/false);

  serve::ServeOptions options;
  options.qps = 400.0;
  options.duration_s = serve_duration_s;
  options.max_batch = 8;
  options.max_wait_s = 5e-3;
  options.seed = 42;

  // Every (hardware kind, workload, batch size) the pool's latency cache
  // can hold for this deployment.
  struct Eval {
    const AcceleratorDesign* hardware;
    const DataflowGraph* dfg;
    int batch;
    bool tuned;
  };
  std::vector<Eval> evals;
  for (const serve::ReplicaSpec& spec : specs) {
    for (serve::WorkloadId w = 0; w < registry.size(); ++w) {
      for (std::int64_t b = 1; b <= options.max_batch; ++b) {
        evals.push_back(Eval{&spec.design, &registry.dataflow(w),
                             static_cast<int>(b), w == spec.tuned_for});
      }
    }
  }

  // ------------------------------------------------- contract check first
  std::int64_t divergent = 0;
  for (const Eval& e : evals) {
    runtime::Accelerator functional(
        e.tuned ? *e.hardware : serve::RefitDesign(*e.hardware, *e.dfg),
        *e.dfg);
    const double functional_s = functional.RunWorkloadBatch(e.batch);
    const double estimated_s = arch::EstimateServingBatchSeconds(
        *e.hardware, *e.dfg, e.batch, e.tuned);
    if (functional_s != estimated_s) {
      ++divergent;
      std::fprintf(stderr,
                   "DIVERGENCE: batch %d tuned=%d functional=%.17g "
                   "estimated=%.17g\n",
                   e.batch, e.tuned ? 1 : 0, functional_s, estimated_s);
    }
  }
  std::printf("Contract: %zu (kind, workload, batch) evaluations, %lld "
              "divergent\n",
              evals.size(), static_cast<long long>(divergent));

  // ------------------------------------------- cold-cache evaluation cost
  // Functional protocol (pre-fast-path cache miss): scratch deployment +
  // cycle-level run per entry.
  double sink = 0.0;  // Defeat dead-code elimination.
  const auto functional_start = Clock::now();
  for (int it = 0; it < eval_iters; ++it) {
    for (const Eval& e : evals) {
      runtime::Accelerator scratch(
          e.tuned ? *e.hardware : serve::RefitDesign(*e.hardware, *e.dfg),
          *e.dfg);
      sink += scratch.RunWorkloadBatch(e.batch);
    }
  }
  const double functional_ns =
      ElapsedNs(functional_start) / (static_cast<double>(eval_iters) *
                                     static_cast<double>(evals.size()));

  const auto estimator_start = Clock::now();
  for (int it = 0; it < eval_iters; ++it) {
    for (const Eval& e : evals) {
      sink += arch::EstimateServingBatchSeconds(*e.hardware, *e.dfg, e.batch,
                                                e.tuned);
    }
  }
  const double estimator_ns =
      ElapsedNs(estimator_start) / (static_cast<double>(eval_iters) *
                                    static_cast<double>(evals.size()));
  std::printf("Per-eval: functional %.0f ns, estimator %.0f ns (%.1fx)\n",
              functional_ns, estimator_ns, functional_ns / estimator_ns);

  // --------------------------------------------------- pool cold vs warm
  // The headline cold-cache metric: filling a fresh pool's latency cache
  // end to end. The functional protocol is reproduced exactly as the
  // pre-fast-path engine ran it — a worker-thread pool (one per hardware
  // thread, capped by the work count) pulling (kind, workload, batch size)
  // entries, each paying a scratch deployment plus a cycle-level
  // simulation. The fast path is today's WarmBatchSizes: loop equations
  // once per (kind, workload), every batch size derived from the memoized
  // ServingModel. Best of several rounds each (steady_clock granularity
  // makes single cold runs noisy).
  const int cold_rounds = smoke ? 5 : 20;
  double functional_cold_total_ns = 0.0;
  for (int round = 0; round < cold_rounds; ++round) {
    const auto start = Clock::now();
    const int threads = static_cast<int>(std::min<std::size_t>(
        std::max(1u, std::thread::hardware_concurrency()), evals.size()));
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < evals.size();
             i = next.fetch_add(1)) {
          const Eval& e = evals[i];
          runtime::Accelerator scratch(
              e.tuned ? *e.hardware : serve::RefitDesign(*e.hardware, *e.dfg),
              *e.dfg);
          scratch.RunWorkloadBatch(e.batch);
        }
      });
    }
    for (auto& worker : workers) {
      worker.join();
    }
    const double ns = ElapsedNs(start);
    if (round == 0 || ns < functional_cold_total_ns) {
      functional_cold_total_ns = ns;
    }
  }

  double cold_total_ns = 0.0;
  for (int round = 0; round < cold_rounds; ++round) {
    serve::ServerPool fresh(specs, registry.Dataflows());
    const auto cold_start = Clock::now();
    fresh.WarmBatchSizes(options.max_batch);
    const double ns = ElapsedNs(cold_start);
    if (round == 0 || ns < cold_total_ns) {
      cold_total_ns = ns;
    }
  }
  const double cold_speedup = functional_cold_total_ns / cold_total_ns;

  serve::ServerPool pool(specs, registry.Dataflows());
  pool.WarmBatchSizes(options.max_batch);
  const auto warm_start = Clock::now();
  for (int r = 0; r < pool.size(); ++r) {
    for (serve::WorkloadId w = 0; w < registry.size(); ++w) {
      for (std::int64_t b = 1; b <= options.max_batch; ++b) {
        sink += pool.BatchSeconds(r, w, b);
      }
    }
  }
  const double warm_hits = static_cast<double>(pool.size()) *
                           static_cast<double>(registry.size()) *
                           static_cast<double>(options.max_batch);
  const double warm_ns_per_hit = ElapsedNs(warm_start) / warm_hits;
  std::printf("Cold cache fill: functional protocol %.1f us, fast path "
              "%.1f us -> %.1fx; warm hit %.0f ns\n",
              functional_cold_total_ns / 1e3, cold_total_ns / 1e3,
              cold_speedup, warm_ns_per_hit);

  // ------------------------------------------------- end-to-end serve run
  const std::vector<serve::WorkloadShare> mix = serve::ParseMix(mix_spec);
  const auto serve_start = Clock::now();
  const serve::ServeReport report =
      serve::RunSyntheticServe(registry, specs, mix, options);
  const double engine_wall_ms = ElapsedNs(serve_start) / 1e6;
  std::printf("Serve run (%s, %.1f qps, %.1f s virtual): %.1f ms wall, "
              "%.1f rps, p99 %.3f ms\n",
              mix_spec.c_str(), options.qps, options.duration_s,
              engine_wall_ms, report.summary.throughput_rps,
              report.summary.p99_ms);

  // ----------------------------------------------- event-core throughput
  // The headline discrete-event metric (docs/ENGINE.md): schedule/fire
  // throughput of the engine's event heap under the stationary-scenario
  // shape. The cursor protocol keeps the timeline heap shallow — one
  // outstanding arrival, the tick, the adversity cursor, the drain, a
  // stray retry — so the measured window is a rolling 8-deep schedule
  // with a tick interleaved every 16th event. Gate: >= 10M events/s on
  // an optimized, unsanitized build; below it the bench exits non-zero.
  const double event_gate_per_s = 10e6;
  const std::int64_t micro_events = smoke ? 2'000'000 : 8'000'000;
  double heap_events_per_s = 0.0;
  {
    serve::event_core::EventList list;
    list.Reserve(128);
    double clock_s = 0.0;
    for (int i = 0; i < 8; ++i) {
      list.Push(clock_s + 1e-3 * i, serve::event_core::EventClass::kArrival);
    }
    const auto start = Clock::now();
    for (std::int64_t i = 0; i < micro_events; ++i) {
      const serve::event_core::Event e = list.Pop();
      sink += e.t_s;
      clock_s = e.t_s;
      list.Push(clock_s + 8e-3,
                (i & 15) == 0
                    ? serve::event_core::EventClass::kAutoscalerTick
                    : serve::event_core::EventClass::kArrival);
    }
    heap_events_per_s =
        static_cast<double>(micro_events) / (ElapsedNs(start) / 1e9);
  }
  const bool event_gate_ok =
      !kEventGateEnforced || heap_events_per_s >= event_gate_per_s;
  std::printf("Event core: %.1fM events/s heap schedule/fire (gate %.0fM%s) "
              "%s\n",
              heap_events_per_s / 1e6, event_gate_per_s / 1e6,
              kEventGateEnforced ? "" : ", informational on this build",
              event_gate_ok ? "OK" : "FAIL");

  // Old-vs-new driver wall: the same fixed-seed mix run under the
  // preserved polling loop and the event driver (byte-identical output —
  // tests/event_core_test.cpp proves it; here only wall-clock differs).
  const int engine_rounds = smoke ? 3 : 5;
  double legacy_wall_ms = 0.0;
  double event_wall_ms = 0.0;
  std::int64_t event_run_requests = 0;
  for (int round = 0; round < engine_rounds; ++round) {
    serve::ServeOptions engine_options = options;
    engine_options.engine = serve::ServeEngine::kLegacy;
    auto start = Clock::now();
    const serve::ServeReport legacy_run =
        serve::RunSyntheticServe(registry, specs, mix, engine_options);
    const double legacy_ms = ElapsedNs(start) / 1e6;
    sink += static_cast<double>(legacy_run.summary.completed);
    if (round == 0 || legacy_ms < legacy_wall_ms) {
      legacy_wall_ms = legacy_ms;
    }

    engine_options.engine = serve::ServeEngine::kEvent;
    start = Clock::now();
    const serve::ServeReport event_run =
        serve::RunSyntheticServe(registry, specs, mix, engine_options);
    const double event_ms = ElapsedNs(start) / 1e6;
    sink += static_cast<double>(event_run.summary.completed);
    event_run_requests = event_run.generated_requests;
    if (round == 0 || event_ms < event_wall_ms) {
      event_wall_ms = event_ms;
    }
  }
  const double legacy_over_event = legacy_wall_ms / event_wall_ms;
  const double run_events_per_s =
      static_cast<double>(event_run_requests) / (event_wall_ms / 1e3);
  std::printf("Engine wall (best of %d): legacy %.2f ms, event %.2f ms -> "
              "%.2fx; %.0fk arrival events/s end-to-end\n",
              engine_rounds, legacy_wall_ms, event_wall_ms, legacy_over_event,
              run_events_per_s / 1e3);

  // ------------------------------------------- observability overhead gate
  // Paired obs-off / obs-on runs of the same fixed-seed mix, best-of-N
  // (the virtual clock makes the *work* identical; only recording cost
  // differs). The contract (docs/OBSERVABILITY.md): obs-on wall-clock may
  // not exceed obs-off by more than 5%, with a small absolute epsilon so
  // sub-millisecond smoke runs don't gate on scheduler jitter.
  const int obs_rounds = smoke ? 5 : 7;
  const double obs_epsilon_ms = 0.2;
  serve::ServeOptions obs_options = options;
  obs_options.duration_s = smoke ? 2.0 : 4.0;
  double obs_off_ms = 0.0;
  double obs_on_ms = 0.0;
  std::shared_ptr<obs::Observability> obs_bundle;
  for (int round = 0; round < obs_rounds; ++round) {
    obs_options.trace.enabled = false;
    auto start = Clock::now();
    const serve::ServeReport off =
        serve::RunSyntheticServe(registry, specs, mix, obs_options);
    const double off_ms = ElapsedNs(start) / 1e6;
    sink += static_cast<double>(off.summary.completed);
    if (round == 0 || off_ms < obs_off_ms) {
      obs_off_ms = off_ms;
    }

    obs_options.trace.enabled = true;
    start = Clock::now();
    serve::ServeReport on =
        serve::RunSyntheticServe(registry, specs, mix, obs_options);
    const double on_ms = ElapsedNs(start) / 1e6;
    sink += static_cast<double>(on.summary.completed);
    if (round == 0 || on_ms < obs_on_ms) {
      obs_on_ms = on_ms;
    }
    obs_bundle = std::move(on.obs);  // Deterministic: any round's is THE trace.
  }
  const double obs_ratio = obs_on_ms / obs_off_ms;
  const bool obs_gate_ok =
      obs_on_ms <= obs_off_ms * 1.05 + obs_epsilon_ms;
  std::printf("Obs overhead (best of %d): off %.3f ms, on %.3f ms -> "
              "%.3fx (gate 1.05 + %.1f ms) %s\n",
              obs_rounds, obs_off_ms, obs_on_ms, obs_ratio, obs_epsilon_ms,
              obs_gate_ok ? "OK" : "FAIL");

  if (!trace_out_path.empty() && obs_bundle) {
    std::ofstream trace_file(trace_out_path);
    if (!trace_file) {
      std::fprintf(stderr, "cannot write %s\n", trace_out_path.c_str());
      return 2;
    }
    trace_file << obs_bundle->ChromeTraceJson() << "\n";
    std::printf("Wrote %s\n", trace_out_path.c_str());
  }

  // ------------------------------------------------------------ emit JSON
  JsonObject cold_cache;
  cold_cache["cache_entries"] = Json(static_cast<std::int64_t>(evals.size()));
  cold_cache["rounds"] = Json(eval_iters);
  cold_cache["functional_ns_per_eval"] = Json(functional_ns);
  cold_cache["estimator_ns_per_eval"] = Json(estimator_ns);
  cold_cache["functional_fill_us"] = Json(functional_cold_total_ns / 1e3);
  cold_cache["fastpath_fill_us"] = Json(cold_total_ns / 1e3);
  cold_cache["speedup"] = Json(cold_speedup);

  JsonObject cache;
  cache["warm_hit_ns"] = Json(warm_ns_per_hit);

  JsonObject serve_run;
  serve_run["mix"] = Json(mix_spec);
  serve_run["qps"] = Json(options.qps);
  serve_run["virtual_duration_s"] = Json(options.duration_s);
  serve_run["replicas"] = Json(static_cast<std::int64_t>(specs.size()));
  serve_run["max_batch"] = Json(options.max_batch);
  serve_run["seed"] = Json(static_cast<std::uint64_t>(options.seed));
  serve_run["engine_wall_ms"] = Json(engine_wall_ms);
  serve_run["completed"] = Json(report.summary.completed);
  serve_run["throughput_rps"] = Json(report.summary.throughput_rps);
  serve_run["p50_ms"] = Json(report.summary.p50_ms);
  serve_run["p95_ms"] = Json(report.summary.p95_ms);
  serve_run["p99_ms"] = Json(report.summary.p99_ms);

  JsonObject obs_overhead;
  obs_overhead["rounds"] = Json(obs_rounds);
  obs_overhead["virtual_duration_s"] = Json(obs_options.duration_s);
  obs_overhead["off_wall_ms"] = Json(obs_off_ms);
  obs_overhead["on_wall_ms"] = Json(obs_on_ms);
  obs_overhead["ratio"] = Json(obs_ratio);
  obs_overhead["gate_ratio"] = Json(1.05);
  obs_overhead["gate_epsilon_ms"] = Json(obs_epsilon_ms);
  obs_overhead["ok"] = Json(obs_gate_ok);

  JsonObject event_core;
  event_core["micro_events"] = Json(micro_events);
  event_core["heap_events_per_s"] = Json(heap_events_per_s);
  event_core["gate_events_per_s"] = Json(event_gate_per_s);
  event_core["gate_enforced"] = Json(kEventGateEnforced);
  event_core["ok"] = Json(event_gate_ok);
  event_core["legacy_wall_ms"] = Json(legacy_wall_ms);
  event_core["event_wall_ms"] = Json(event_wall_ms);
  event_core["legacy_over_event"] = Json(legacy_over_event);
  event_core["run_events_per_s"] = Json(run_events_per_s);

  JsonObject contract;
  contract["checked"] = Json(static_cast<std::int64_t>(evals.size()));
  contract["divergent"] = Json(divergent);

  JsonObject root;
  root["bench"] = Json("serve_fastpath");
  root["smoke"] = Json(smoke);
  root["cold_cache"] = Json(std::move(cold_cache));
  root["latency_cache"] = Json(std::move(cache));
  root["serve"] = Json(std::move(serve_run));
  root["event_core"] = Json(std::move(event_core));
  root["obs_overhead"] = Json(std::move(obs_overhead));
  root["contract"] = Json(std::move(contract));
  root["checksum_sink"] = Json(sink);  // Keeps the timed loops honest.

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << Json(std::move(root)).Dump(2) << "\n";
  std::printf("\nWrote %s\n", out_path.c_str());

  if (divergent != 0) {
    std::fprintf(stderr,
                 "FAIL: estimator diverged from the functional simulator on "
                 "%lld evaluation(s)\n",
                 static_cast<long long>(divergent));
    return 1;
  }
  if (!obs_gate_ok) {
    std::fprintf(stderr,
                 "FAIL: observability overhead %.3fx exceeds the 5%% gate "
                 "(off %.3f ms, on %.3f ms)\n",
                 obs_ratio, obs_off_ms, obs_on_ms);
    return 1;
  }
  if (!event_gate_ok) {
    std::fprintf(stderr,
                 "FAIL: event core %.1fM events/s below the %.0fM events/s "
                 "gate\n",
                 heap_events_per_s / 1e6, event_gate_per_s / 1e6);
    return 1;
  }
  return 0;
}
