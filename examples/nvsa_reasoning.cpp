// NVSA-style abstract reasoning end to end: generate synthetic Raven's
// Progressive Matrices, solve them with the VSA abductive reasoner at
// several precisions, and show the quantization-accuracy trade-off that
// motivates NSFlow's mixed-precision hardware (paper Sec. IV-D, Table IV).
//
//   $ ./nvsa_reasoning [tasks_per_setting]
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "reasoning/accuracy.h"
#include "reasoning/vsa_reasoner.h"

int main(int argc, char** argv) {
  using namespace nsflow;
  using namespace nsflow::reasoning;

  const int tasks = argc > 1 ? std::atoi(argv[1]) : 100;
  Rng rng(2024);

  const RpmSuiteSpec suite = RavenLikeSuite();
  const RpmGenerator generator(suite);

  // Solve one task verbosely at FP32 to show the abduction pipeline.
  ReasonerConfig config;
  config.perception_noise = SuiteBaseNoise(suite);
  const VsaReasoner reasoner(suite, config, rng);

  const RpmTask task = generator.Generate(rng);
  SolveTrace trace;
  const std::int64_t chosen = reasoner.Solve(task, rng, &trace);

  std::printf("One RAVEN-like task, solved step by step:\n");
  std::printf("  true rules per attribute: ");
  for (const auto rule : task.rules) {
    std::printf("%s ", RuleTypeName(rule));
  }
  std::printf("\n  abduced rules:            ");
  for (const auto rule : trace.abduced_rules) {
    std::printf("%s ", RuleTypeName(rule));
  }
  std::printf("\n  predicted panel: ");
  for (const auto v : trace.predicted) {
    std::printf("%lld ", static_cast<long long>(v));
  }
  std::printf("\n  true panel:      ");
  for (const auto v : task.solution) {
    std::printf("%lld ", static_cast<long long>(v));
  }
  std::printf("\n  chose candidate %lld (answer %lld) — %s, margin %.3f\n\n",
              static_cast<long long>(chosen),
              static_cast<long long>(task.answer_index),
              chosen == task.answer_index ? "CORRECT" : "WRONG",
              trace.winning_similarity - trace.runner_up_similarity);

  // Precision sweep (the Table IV experiment, condensed).
  std::printf("Accuracy over %d tasks per precision setting:\n", tasks);
  for (const auto& setting : TableIvSettings()) {
    const auto cell = EvaluateAccuracy(suite, setting, tasks);
    std::printf("  %-26s %6.1f%%   (model memory %5.1f MB)\n",
                setting.label.c_str(), cell.accuracy * 100.0,
                ModelMemoryBytes(setting) / 1e6);
  }
  std::printf("\nNote the MP point: near-INT8 accuracy at a 5.8x smaller "
              "footprint than FP32 — the configuration NSFlow deploys.\n");
  return 0;
}
