#include "reasoning/vsa_reasoner.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.h"
#include "common/math_util.h"
#include "quant/quantizer.h"

namespace nsflow::reasoning {

VsaReasoner::VsaReasoner(const RpmSuiteSpec& suite,
                         const ReasonerConfig& config, Rng& rng)
    : suite_(suite), config_(config) {
  // Build role and value codebooks, then the bound dictionary; store only
  // the bound form (what cleanup needs), quantized to the VSA precision.
  bound_.resize(static_cast<std::size_t>(suite_.num_attributes));
  for (std::int64_t a = 0; a < suite_.num_attributes; ++a) {
    auto role = vsa::RandomHyperVector(config_.shape, rng);
    role.NormalizeBlocks();
    auto& row = bound_[static_cast<std::size_t>(a)];
    row.reserve(static_cast<std::size_t>(suite_.values_per_attribute));
    for (std::int64_t v = 0; v < suite_.values_per_attribute; ++v) {
      auto value = vsa::RandomHyperVector(config_.shape, rng);
      value.NormalizeBlocks();
      auto bound = vsa::Bind(role, value);
      bound.NormalizeBlocks();
      row.push_back(vsa::QuantizeHyperVector(bound, config_.vsa_precision));
    }
  }
}

vsa::HyperVector VsaReasoner::EncodePanel(const Panel& panel, Rng& rng) const {
  NSF_CHECK_MSG(static_cast<std::int64_t>(panel.size()) ==
                    suite_.num_attributes,
                "panel arity mismatch");
  std::vector<vsa::HyperVector> parts;
  parts.reserve(panel.size());
  for (std::int64_t a = 0; a < suite_.num_attributes; ++a) {
    parts.push_back(
        bound_[static_cast<std::size_t>(a)]
              [static_cast<std::size_t>(panel[static_cast<std::size_t>(a)])]);
  }
  auto encoding = vsa::Bundle(parts);

  // Perception noise: relative to the encoding's RMS element magnitude.
  if (config_.perception_noise > 0.0) {
    const double rms =
        encoding.tensor().Norm() /
        std::sqrt(static_cast<double>(encoding.tensor().numel()));
    const double sigma = config_.perception_noise * rms;
    for (std::int64_t i = 0; i < encoding.tensor().numel(); ++i) {
      encoding.tensor().at(i) += static_cast<float>(rng.Gaussian(0.0, sigma));
    }
  }
  return vsa::QuantizeHyperVector(encoding, config_.vsa_precision);
}

std::int64_t VsaReasoner::DecodeAttribute(const vsa::HyperVector& encoding,
                                          std::int64_t attribute) const {
  const auto& dict = bound_[static_cast<std::size_t>(attribute)];
  std::int64_t best = 0;
  double best_score = -2.0;
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(dict.size()); ++v) {
    const double score =
        vsa::Similarity(encoding, dict[static_cast<std::size_t>(v)]);
    if (score > best_score) {
      best_score = score;
      best = v;
    }
  }
  return best;
}

RuleType VsaReasoner::AbduceRule(std::int64_t attribute,
                                 const std::vector<Panel>& decoded) const {
  const std::int64_t v = suite_.values_per_attribute;
  const auto at = [&](int pos) {
    return decoded[static_cast<std::size_t>(pos)]
                  [static_cast<std::size_t>(attribute)];
  };

  // Check each rule family against both complete rows; first match wins.
  // Ordering matters for ambiguous instances (e.g. a constant row is also a
  // progression with step 0) — most-specific first.
  const auto row_ok = [&](int row, auto&& predicate) {
    return predicate(at(row * 3), at(row * 3 + 1), at(row * 3 + 2));
  };

  const auto constant = [](std::int64_t a, std::int64_t b, std::int64_t c) {
    return a == b && b == c;
  };
  if (row_ok(0, constant) && row_ok(1, constant)) {
    return RuleType::kConstant;
  }

  for (const std::int64_t step : {std::int64_t{1}, std::int64_t{-1}}) {
    const auto prog = [&](std::int64_t a, std::int64_t b, std::int64_t c) {
      return b == Mod(a + step, v) && c == Mod(b + step, v);
    };
    if (row_ok(0, prog) && row_ok(1, prog)) {
      return RuleType::kProgression;
    }
  }

  const auto arith = [&](std::int64_t a, std::int64_t b, std::int64_t c) {
    return c == Mod(a + b, v);
  };
  if (row_ok(0, arith) && row_ok(1, arith)) {
    return RuleType::kArithmetic;
  }

  return RuleType::kDistributeThree;
}

std::int64_t VsaReasoner::ExecuteRule(RuleType rule, std::int64_t attribute,
                                      const std::vector<Panel>& decoded) const {
  const std::int64_t v = suite_.values_per_attribute;
  const auto at = [&](int pos) {
    return decoded[static_cast<std::size_t>(pos)]
                  [static_cast<std::size_t>(attribute)];
  };
  const std::int64_t y0 = at(6);
  const std::int64_t y1 = at(7);

  switch (rule) {
    case RuleType::kConstant:
      return y0;
    case RuleType::kProgression: {
      const std::int64_t step = Mod(y1 - y0 + v, v) <= v / 2
                                    ? Mod(y1 - y0, v)
                                    : Mod(y1 - y0, v) - v;
      return Mod(y1 + step, v);
    }
    case RuleType::kArithmetic:
      return Mod(y0 + y1, v);
    case RuleType::kDistributeThree: {
      // The triple is whatever the first row held; the answer is the member
      // absent from the third row's first two cells.
      std::set<std::int64_t> triple = {at(0), at(1), at(2)};
      for (const auto value : triple) {
        if (value != y0 && value != y1) {
          return value;
        }
      }
      return at(2);  // Degenerate decode; fall back to a seen value.
    }
  }
  throw Error("unknown rule in ExecuteRule");
}

std::int64_t VsaReasoner::Solve(const RpmTask& task, Rng& rng,
                                SolveTrace* trace) const {
  // 1-2: perceive and parse the eight context panels.
  std::vector<Panel> decoded;
  decoded.reserve(8);
  for (const auto& panel : task.context) {
    const auto encoding = EncodePanel(panel, rng);
    Panel values(static_cast<std::size_t>(suite_.num_attributes), 0);
    for (std::int64_t a = 0; a < suite_.num_attributes; ++a) {
      values[static_cast<std::size_t>(a)] = DecodeAttribute(encoding, a);
    }
    decoded.push_back(std::move(values));
  }

  // 3-4: abduce a rule per attribute and execute it on the third row.
  Panel predicted(static_cast<std::size_t>(suite_.num_attributes), 0);
  std::vector<RuleType> rules;
  rules.reserve(static_cast<std::size_t>(suite_.num_attributes));
  for (std::int64_t a = 0; a < suite_.num_attributes; ++a) {
    const RuleType rule = AbduceRule(a, decoded);
    rules.push_back(rule);
    predicted[static_cast<std::size_t>(a)] = ExecuteRule(rule, a, decoded);
  }

  // Encode the prediction symbolically (clean — it came from rules, not
  // perception) and match against the perceived candidates.
  std::vector<vsa::HyperVector> parts;
  for (std::int64_t a = 0; a < suite_.num_attributes; ++a) {
    parts.push_back(
        bound_[static_cast<std::size_t>(a)][static_cast<std::size_t>(
            predicted[static_cast<std::size_t>(a)])]);
  }
  const auto prediction = vsa::QuantizeHyperVector(
      vsa::Bundle(parts), config_.vsa_precision);

  std::int64_t chosen = 0;
  double best = -2.0;
  double runner_up = -2.0;
  for (std::int64_t c = 0;
       c < static_cast<std::int64_t>(task.candidates.size()); ++c) {
    const auto candidate_enc =
        EncodePanel(task.candidates[static_cast<std::size_t>(c)], rng);
    const double score = vsa::Similarity(prediction, candidate_enc);
    if (score > best) {
      runner_up = best;
      best = score;
      chosen = c;
    } else if (score > runner_up) {
      runner_up = score;
    }
  }

  if (trace != nullptr) {
    trace->chosen = chosen;
    trace->decoded_context = std::move(decoded);
    trace->abduced_rules = std::move(rules);
    trace->predicted = std::move(predicted);
    trace->winning_similarity = best;
    trace->runner_up_similarity = runner_up;
  }
  return chosen;
}

double VsaReasoner::CodebookBytes() const {
  double bytes = 0.0;
  for (const auto& row : bound_) {
    for (const auto& entry : row) {
      bytes += entry.ByteSize(config_.vsa_precision);
    }
  }
  return bytes;
}

}  // namespace nsflow::reasoning
