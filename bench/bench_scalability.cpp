// Reproduces the Sec. I scalability claim: "only 4x runtime increase when
// symbolic workloads scale by 150x".
//
// The NVSA symbolic load is scaled x1 .. x150; at each point the full
// frontend re-runs (new dataflow graph, new DSE) and the generated design's
// runtime is compared with the x1 baseline, alongside the TPU-like
// monolithic array for contrast.
#include <cstdio>

#include "common/table.h"
#include "model/device_zoo.h"
#include "nsflow/framework.h"
#include "workloads/builders.h"

int main() {
  using namespace nsflow;
  std::printf("=== NSFlow reproduction: symbolic scalability (Sec. I claim) "
              "===\n\n");

  const Compiler compiler;
  const auto tpu = MakeDevice(DeviceKind::kTpuLikeSa);
  // The paper's claim scales the *symbolic* workload 150x from a base where
  // reasoning is a small fraction of the fused runtime (the deployment
  // regime its Sec. I motivates): a symbolic-light NVSA variant.
  workloads::NvsaParams light;
  light.vsa_batch = 4;  // ~3% of the fused runtime is symbolic at 1x.
  const OperatorGraph base = workloads::MakeNvsa(light);

  double nsflow_base = 0.0;
  double tpu_base = 0.0;

  TablePrinter table({"Symbolic scale", "NSFlow (ms)", "NSFlow growth",
                      "TPU-like (ms)", "TPU-like growth"});
  for (const double scale : {1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 150.0}) {
    const OperatorGraph graph = workloads::ScaleSymbolic(base, scale);
    const int loops = std::max(1, graph.loop_count());

    const double ours =
        compiler.Compile(OperatorGraph(graph)).PredictedSeconds();
    const double theirs = tpu->Estimate(graph).total_s() * loops;
    if (scale == 1.0) {
      nsflow_base = ours;
      tpu_base = theirs;
    }
    table.AddRow({TablePrinter::Num(scale, 0) + "x",
                  TablePrinter::Num(ours * 1e3, 2),
                  TablePrinter::Num(ours / nsflow_base, 2) + "x",
                  TablePrinter::Num(theirs * 1e3, 2),
                  TablePrinter::Num(theirs / tpu_base, 2) + "x"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Paper anchor: ~4x NSFlow runtime growth at 150x symbolic "
              "scale (sub-linear thanks to refolding + remapping).\n");
  return 0;
}
