// Tests for the FFT fast path: transform identities and equivalence of the
// frequency-domain circular convolution/correlation with the direct forms.
#include "common/error.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vsa/block_code.h"
#include "vsa/fft.h"

namespace nsflow::vsa {
namespace {

std::vector<float> RandomVec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) {
    x = static_cast<float>(rng.Gaussian());
  }
  return v;
}

TEST(FftTest, ForwardOfImpulseIsFlat) {
  std::vector<std::complex<double>> data(8, 0.0);
  data[0] = 1.0;
  Fft(data, false);
  for (const auto& v : data) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, RoundTripRestoresSignal) {
  Rng rng(1);
  for (const std::size_t n : {2u, 8u, 64u, 256u, 1024u}) {
    std::vector<std::complex<double>> data(n);
    std::vector<std::complex<double>> original(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = {rng.Gaussian(), rng.Gaussian()};
      original[i] = data[i];
    }
    Fft(data, false);
    Fft(data, true);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(data[i].real() / static_cast<double>(n), original[i].real(),
                  1e-9);
      EXPECT_NEAR(data[i].imag() / static_cast<double>(n), original[i].imag(),
                  1e-9);
    }
  }
}

TEST(FftTest, ParsevalHolds) {
  Rng rng(2);
  constexpr std::size_t kN = 128;
  std::vector<std::complex<double>> data(kN);
  double time_energy = 0.0;
  for (auto& v : data) {
    v = {rng.Gaussian(), 0.0};
    time_energy += std::norm(v);
  }
  Fft(data, false);
  double freq_energy = 0.0;
  for (const auto& v : data) {
    freq_energy += std::norm(v);
  }
  EXPECT_NEAR(freq_energy / kN, time_energy, 1e-8 * time_energy);
}

TEST(FftTest, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(12);
  EXPECT_THROW(Fft(data, false), CheckError);
}

class FastConvTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FastConvTest, MatchesDirectConvolution) {
  Rng rng(GetParam());
  const auto a = RandomVec(GetParam(), rng);
  const auto b = RandomVec(GetParam(), rng);
  std::vector<float> fast(GetParam());
  std::vector<float> direct(GetParam());
  FastCircularConvolve(a, b, fast);
  CircularConvolve(a, b, direct);
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], direct[i], 1e-3 * (std::abs(direct[i]) + 1.0)) << i;
  }
}

TEST_P(FastConvTest, MatchesDirectCorrelation) {
  Rng rng(GetParam() + 1);
  const auto a = RandomVec(GetParam(), rng);
  const auto b = RandomVec(GetParam(), rng);
  std::vector<float> fast(GetParam());
  std::vector<float> direct(GetParam());
  FastCircularCorrelate(a, b, fast);
  CircularCorrelate(a, b, direct);
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], direct[i], 1e-3 * (std::abs(direct[i]) + 1.0)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, FastConvTest,
                         ::testing::Values(4, 16, 256, 1024,
                                           // Non-power-of-two fallbacks:
                                           3, 100),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

TEST(FastConvTest, BindUnbindChainThroughFastPath) {
  // The HRR recovery property must survive the fast path end to end.
  Rng rng(7);
  constexpr std::size_t kD = 512;
  const auto a = RandomVec(kD, rng);
  const auto b = RandomVec(kD, rng);
  std::vector<float> bound(kD);
  FastCircularConvolve(a, b, bound);
  std::vector<float> recovered(kD);
  FastCircularCorrelate(b, bound, recovered);

  // cos(recovered, a) should be high.
  double dot = 0.0;
  double na = 0.0;
  double nr = 0.0;
  for (std::size_t i = 0; i < kD; ++i) {
    dot += static_cast<double>(recovered[i]) * a[i];
    na += static_cast<double>(a[i]) * a[i];
    nr += static_cast<double>(recovered[i]) * recovered[i];
  }
  EXPECT_GT(dot / std::sqrt(na * nr), 0.6);
}

}  // namespace
}  // namespace nsflow::vsa
