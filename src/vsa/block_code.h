// Block-code vector-symbolic architecture (VSA) primitives.
//
// NVSA-family workloads (paper Table I) represent symbols as *block codes*:
// a hypervector is a [blocks, block_dim] matrix, and the binding of two
// symbols is the **blockwise circular convolution** the paper singles out as
// the key symbolic kernel:
//
//   C[n] = sum_k A[k] * B[(n - k) mod N]          (per block, Sec. II-A)
//
// Binding is commutative and associative, preserves information from both
// operands, and is (approximately) invertible through circular *correlation*
// with the same vector — the `inv_binding_circular` kernel in the paper's
// Listing 1 trace. Similarity between block codes (`match_prob`) is the mean
// per-block cosine, clamped to [0, 1].
//
// This module is the functional golden model: the AdArray's streaming
// circular-convolution datapath (src/arch) is verified against `CircularConvolve`,
// and the reasoning stack (src/reasoning) is built from these operations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/tensor.h"
#include "quant/precision.h"

namespace nsflow::vsa {

/// Geometry of a block-code hypervector.
struct BlockShape {
  std::int64_t blocks = 4;
  std::int64_t block_dim = 256;  // NVSA uses [4, 256] block codes (Listing 1).

  std::int64_t dim() const { return blocks * block_dim; }
  bool operator==(const BlockShape&) const = default;
};

/// A block-code hypervector: value type wrapping a [blocks, block_dim] tensor.
class HyperVector {
 public:
  HyperVector() = default;
  explicit HyperVector(BlockShape shape)
      : shape_(shape), data_({shape.blocks, shape.block_dim}) {}
  HyperVector(BlockShape shape, Tensor data);

  const BlockShape& shape() const { return shape_; }
  const Tensor& tensor() const { return data_; }
  Tensor& tensor() { return data_; }

  /// Access element `i` of block `b`.
  float& at(std::int64_t b, std::int64_t i) { return data_.at2(b, i); }
  float at(std::int64_t b, std::int64_t i) const { return data_.at2(b, i); }

  /// One contiguous block as a span.
  std::span<const float> block(std::int64_t b) const;
  std::span<float> block(std::int64_t b);

  /// L2-normalize each block independently (keeps binding well-conditioned).
  void NormalizeBlocks();

  /// Memory footprint at a given storage precision.
  double ByteSize(Precision p) const;

  bool operator==(const HyperVector&) const = default;

 private:
  BlockShape shape_;
  Tensor data_;
};

/// Draw a random hypervector with i.i.d. N(0, 1/block_dim) entries — the
/// standard holographic-reduced-representation construction for which
/// correlation-unbinding is an approximate inverse in high dimension.
HyperVector RandomHyperVector(BlockShape shape, Rng& rng);

/// Circular convolution of two length-d spans into `out` (direct O(d^2) form,
/// matching the paper's definition element for element).
void CircularConvolve(std::span<const float> a, std::span<const float> b,
                      std::span<float> out);

/// Circular correlation: out[n] = sum_k a[k] * b[(k + n) mod d].
void CircularCorrelate(std::span<const float> a, std::span<const float> b,
                       std::span<float> out);

/// VSA binding: blockwise circular convolution. Commutative & associative.
HyperVector Bind(const HyperVector& a, const HyperVector& b);

/// Approximate inverse of binding: blockwise circular correlation of the
/// composite with one factor recovers (a noisy copy of) the other factor.
/// This is `nvsa.inv_binding_circular` from the paper's trace.
HyperVector Unbind(const HyperVector& composite, const HyperVector& factor);

/// The exact involution used by unbinding: b*[n] = b[(-n) mod d] per block.
HyperVector Involution(const HyperVector& v);

/// Superposition (bundling): elementwise sum of all inputs; normalized so
/// the result stays on the same magnitude scale as its inputs.
HyperVector Bundle(std::span<const HyperVector> inputs);

/// Mean per-block cosine similarity in [-1, 1].
double Similarity(const HyperVector& a, const HyperVector& b);

/// Similarity mapped to a probability: clamp(similarity, 0, 1). This is the
/// `nvsa.match_prob` kernel.
double MatchProb(const HyperVector& a, const HyperVector& b);

/// `nvsa.match_prob_multi_batched`: match a query against every entry of a
/// dictionary, returning one probability per entry.
std::vector<double> MatchProbBatched(const HyperVector& query,
                                     std::span<const HyperVector> dictionary);

/// Fake-quantize every element (used to run the reasoner at INT8/INT4).
HyperVector QuantizeHyperVector(const HyperVector& v, Precision precision);

}  // namespace nsflow::vsa
