// Cross-module integration tests: the paper's headline claims, end to end.
#include "common/error.h"

#include <gtest/gtest.h>

#include "graph/trace.h"
#include "model/device_zoo.h"
#include "nsflow/framework.h"
#include "workloads/builders.h"

namespace nsflow {
namespace {

double NsflowSeconds(const OperatorGraph& graph) {
  const Compiler compiler;
  return compiler.Compile(OperatorGraph(graph)).PredictedSeconds();
}

TEST(HeadlineClaims, NsflowBeatsEveryBaselineOnEveryTask) {
  // Fig. 5: NSFlow consistently outperforms TX2, NX, CPU, GPU, the TPU-like
  // array, and the DPU across all six reasoning tasks.
  const auto baselines = MakeFig5Baselines();
  for (const auto task : workloads::kAllTasks) {
    const OperatorGraph graph = workloads::MakeTask(task);
    const double ours = NsflowSeconds(graph);
    for (const auto& device : baselines) {
      const double theirs = device->Estimate(graph).total_s() *
                            std::max(1, graph.loop_count());
      EXPECT_GT(theirs, ours)
          << device->name() << " on " << workloads::TaskName(task);
    }
  }
}

TEST(HeadlineClaims, SpeedupMagnitudesInPaperBands) {
  // Paper abstract: ~31x over TX2, >2x over GPU, up to 8x over the TPU-like
  // array, >3x over DPU. Bands are generous — shape, not testbed numbers.
  double best_tx2 = 0.0;
  double best_gpu = 0.0;
  double best_tpu = 0.0;
  double best_dpu = 0.0;
  for (const auto task : workloads::kAllTasks) {
    const OperatorGraph graph = workloads::MakeTask(task);
    const double ours = NsflowSeconds(graph);
    const int loops = std::max(1, graph.loop_count());
    best_tx2 = std::max(best_tx2, MakeDevice(DeviceKind::kJetsonTx2)
                                          ->Estimate(graph)
                                          .total_s() *
                                      loops / ours);
    best_gpu = std::max(best_gpu, MakeDevice(DeviceKind::kRtx2080)
                                          ->Estimate(graph)
                                          .total_s() *
                                      loops / ours);
    best_tpu = std::max(best_tpu, MakeDevice(DeviceKind::kTpuLikeSa)
                                          ->Estimate(graph)
                                          .total_s() *
                                      loops / ours);
    best_dpu = std::max(best_dpu, MakeDevice(DeviceKind::kXilinxDpu)
                                          ->Estimate(graph)
                                          .total_s() *
                                      loops / ours);
  }
  EXPECT_GT(best_tx2, 10.0);
  EXPECT_GT(best_gpu, 1.5);
  EXPECT_GT(best_tpu, 3.0);
  EXPECT_GT(best_dpu, 1.5);
}

TEST(HeadlineClaims, ScalabilityUnderSymbolicGrowth) {
  // Paper Sec. I: scaling symbolic workloads by 150x increases NSFlow
  // runtime by only ~4x (sub-linear scaling thanks to folding + mapping),
  // starting from a deployment where symbolic work is a small share.
  workloads::NvsaParams light;
  light.vsa_batch = 4;
  const OperatorGraph base = workloads::MakeNvsa(light);
  const OperatorGraph scaled = workloads::ScaleSymbolic(base, 150.0);
  const double t_base = NsflowSeconds(base);
  const double t_scaled = NsflowSeconds(scaled);
  const double growth = t_scaled / t_base;
  EXPECT_GT(growth, 1.0);
  EXPECT_LT(growth, 12.0);  // Far below the 150x workload growth.

  // The rigid baseline scales much worse than NSFlow does.
  const auto tpu = MakeDevice(DeviceKind::kTpuLikeSa);
  const double tpu_growth = tpu->Estimate(scaled).total_s() /
                            tpu->Estimate(base).total_s();
  EXPECT_GT(tpu_growth, growth);
}

TEST(HeadlineClaims, FoldingBeatsMonolithicOnSymbolicHeavyWorkloads) {
  // Fig. 6 end points: at high symbolic share the NSFlow-generated design
  // beats the "normal TPU design" arm (a monolithic 128x64 traditional
  // systolic array that must lower circular convolution to circulant GEMMs)
  // by a large factor — the paper reports >7x at 80% symbolic share.
  const OperatorGraph heavy = workloads::MakeParametricNsai(0.8);
  const DataflowGraph dfg(heavy);

  const DseResult nsflow = RunTwoPhaseDse(dfg, {});
  const double nsflow_s = nsflow.t_para_cycles / nsflow.design.clock_hz;

  const SystolicArrayDevice mono("w/o Phase I", ArrayConfig{128, 64, 1},
                                 nsflow.design.clock_hz,
                                 nsflow.design.dram_bandwidth);
  const double mono_s = mono.Estimate(heavy).total_s();

  EXPECT_GT(mono_s / nsflow_s, 3.0);
}

TEST(HeadlineClaims, RealTimeInference) {
  // The motivating failure: >3 minutes for one reasoning task on a desktop
  // GPU system (Sec. I). NSFlow's generated designs land every task in
  // well under a second.
  for (const auto task : workloads::kAllTasks) {
    const OperatorGraph graph = workloads::MakeTask(task);
    EXPECT_LT(NsflowSeconds(graph), 1.0) << workloads::TaskName(task);
  }
}

TEST(Integration, FullPipelineTraceToUtilization) {
  // trace JSON -> compile -> deploy -> run -> resource report, one flow.
  const std::string trace = EmitJsonTrace(workloads::MakeLvrf());
  const Compiler compiler;
  const CompiledDesign compiled = compiler.CompileJsonTrace(trace);
  const auto accel = Deploy(compiled);
  const double seconds = accel->RunWorkload();
  EXPECT_GT(seconds, 0.0);
  const ResourceReport report = Report(compiled, U250());
  EXPECT_TRUE(report.fits);
}

}  // namespace
}  // namespace nsflow
