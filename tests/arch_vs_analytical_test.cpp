// Cross-validation: the cycle-level simulator must agree with the
// closed-form analytical model (Eqs. (1)-(5)) that the DSE searches over.
// This is the contract that makes the frontend's decisions meaningful.
#include <gtest/gtest.h>

#include "arch/adarray.h"
#include "arch/circ_conv_column.h"
#include "arch/controller.h"
#include "common/rng.h"
#include "dse/dse.h"
#include "model/accel_model.h"
#include "model/analytical.h"
#include "workloads/builders.h"

namespace nsflow {
namespace {

TEST(ArchVsAnalytical, GemmCyclesEqualEqOne) {
  arch::AdArray array(ArrayConfig{16, 8, 4});
  array.Fold({4, 0});
  Rng rng(1);
  for (const auto& [m, n, k] : std::vector<std::tuple<int, int, int>>{
           {8, 32, 16}, {20, 100, 50}, {64, 64, 64}}) {
    Tensor a({m, n});
    Tensor b({n, k});
    for (const std::int64_t nl : {1, 2, 4}) {
      const auto run = array.RunGemm(a, b, nl);
      EXPECT_DOUBLE_EQ(run.cycles,
                       LayerCycles(array.config(), nl, GemmDims{m, n, k}));
    }
  }
}

TEST(ArchVsAnalytical, ColumnCyclesEqualStreamPeriod) {
  for (const std::int64_t h : {4, 8, 16}) {
    arch::CircConvColumn column(h);
    for (const std::int64_t d : {8, 32, 100}) {
      Rng rng(h * 100 + d);
      std::vector<float> a(static_cast<std::size_t>(d), 1.0f);
      std::vector<float> b(static_cast<std::size_t>(d), 1.0f);
      const auto run = column.Run(a, b);
      const std::int64_t passes = (d + h - 1) / h;
      EXPECT_EQ(run.cycles,
                passes * static_cast<std::int64_t>(VsaStreamPeriod(h, d)));
    }
  }
}

TEST(ArchVsAnalytical, ControllerMatchesAccelModelOnNvsa) {
  const OperatorGraph graph = workloads::MakeNvsa();
  const DataflowGraph dfg(graph);
  const DseResult dse = RunTwoPhaseDse(dfg, {});

  arch::Controller controller(dse.design, dfg);
  const arch::SimReport sim = controller.RunLoop();
  const AccelPerf model = EstimateAccelerator(dfg, dse.design);

  // Array lanes are computed by the same equations walked kernel-by-kernel:
  // exact agreement expected.
  EXPECT_NEAR(sim.nn_lane_cycles, model.nn_cycles, 1.0);
  EXPECT_NEAR(sim.vsa_lane_cycles, model.vsa_cycles, 1.0);
  EXPECT_NEAR(sim.array_cycles, model.array_cycles, 1.0);
  EXPECT_NEAR(sim.simd_cycles, model.simd_cycles, 1.0);
  // DRAM traffic model is shared; stalls must agree within rounding.
  EXPECT_NEAR(sim.dram_stall_cycles, model.dram_stall_cycles,
              0.01 * model.total_cycles + 1.0);
  EXPECT_NEAR(sim.total_cycles, model.total_cycles,
              0.01 * model.total_cycles + 1.0);
}

TEST(ArchVsAnalytical, ControllerMatchesAccelModelSequentialMode) {
  const OperatorGraph graph = workloads::MakeParametricNsai(0.0);
  const DataflowGraph dfg(graph);
  const DseResult dse = RunTwoPhaseDse(dfg, {});
  ASSERT_TRUE(dse.design.sequential_mode);

  arch::Controller controller(dse.design, dfg);
  const arch::SimReport sim = controller.RunLoop();
  const AccelPerf model = EstimateAccelerator(dfg, dse.design);
  EXPECT_NEAR(sim.total_cycles, model.total_cycles,
              0.01 * model.total_cycles + 1.0);
}

TEST(ArchVsAnalytical, EndToEndSecondsAgree) {
  for (const auto task :
       {workloads::TaskId::kNvsaRaven, workloads::TaskId::kMimonetCvr}) {
    const OperatorGraph graph = workloads::MakeTask(task);
    const DataflowGraph dfg(graph);
    const DseResult dse = RunTwoPhaseDse(dfg, {});
    arch::Controller controller(dse.design, dfg);
    const double sim_s = controller.RunWorkload();
    const double model_s = EndToEndSeconds(dfg, dse.design);
    EXPECT_NEAR(sim_s, model_s, 0.02 * model_s)
        << workloads::TaskName(task);
  }
}

TEST(ArchVsAnalytical, DsePredictionIsAchievedBySimulator) {
  // The design the DSE promises (t_para cycles) must be what the simulated
  // backend actually delivers for the array portion.
  const OperatorGraph graph = workloads::MakeNvsa();
  const DataflowGraph dfg(graph);
  const DseResult dse = RunTwoPhaseDse(dfg, {});
  arch::Controller controller(dse.design, dfg);
  const arch::SimReport sim = controller.RunLoop();
  EXPECT_NEAR(sim.array_cycles, dse.t_para_cycles, 1.0);
}

}  // namespace
}  // namespace nsflow
