#include "serve/server_pool.h"

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <utility>

#include "common/error.h"

namespace nsflow::serve {

bool SameServingDesign(const AcceleratorDesign& a,
                       const AcceleratorDesign& b) {
  // Every field the cycle model reads must participate: the memory sizing
  // (cache capacity gates output-spill AXI traffic) as much as the array.
  return a.array.height == b.array.height && a.array.width == b.array.width &&
         a.array.count == b.array.count &&
         a.sequential_mode == b.sequential_mode && a.nl == b.nl &&
         a.nv == b.nv && a.simd_width == b.simd_width &&
         a.clock_hz == b.clock_hz && a.dram_bandwidth == b.dram_bandwidth &&
         a.memory.mem_a1_bytes == b.memory.mem_a1_bytes &&
         a.memory.mem_a2_bytes == b.memory.mem_a2_bytes &&
         a.memory.mem_b_bytes == b.memory.mem_b_bytes &&
         a.memory.mem_c_bytes == b.memory.mem_c_bytes &&
         a.memory.cache_bytes == b.memory.cache_bytes;
}

ServerPool::ServerPool(std::vector<AcceleratorDesign> designs,
                       const DataflowGraph& dfg, int worker_threads)
    : dfg_(&dfg), designs_(std::move(designs)) {
  NSF_CHECK_MSG(!designs_.empty(), "a pool needs at least one replica");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  worker_threads_ =
      worker_threads > 0 ? worker_threads : static_cast<int>(hw);

  free_at_.assign(designs_.size(), 0.0);
  kind_.reserve(designs_.size());
  replicas_.reserve(designs_.size());
  for (const auto& design : designs_) {
    int kind = -1;
    for (std::size_t k = 0; k < distinct_designs_.size(); ++k) {
      if (SameServingDesign(distinct_designs_[k], design)) {
        kind = static_cast<int>(k);
        break;
      }
    }
    if (kind < 0) {
      kind = static_cast<int>(distinct_designs_.size());
      distinct_designs_.push_back(design);
    }
    kind_.push_back(kind);
    replicas_.push_back(
        std::make_unique<runtime::Accelerator>(design, dfg));
  }
}

const AcceleratorDesign& ServerPool::design(int replica) const {
  NSF_CHECK(replica >= 0 && replica < size());
  return designs_[static_cast<std::size_t>(replica)];
}

runtime::Accelerator& ServerPool::replica(int index) {
  NSF_CHECK(index >= 0 && index < size());
  return *replicas_[static_cast<std::size_t>(index)];
}

double ServerPool::BatchSeconds(int replica, std::int64_t batch_size) {
  NSF_CHECK(replica >= 0 && replica < size());
  NSF_CHECK_MSG(batch_size >= 1, "batch size must be positive");
  const Key key{kind_[static_cast<std::size_t>(replica)], batch_size};
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    const auto it = latency_cache_.find(key);
    if (it != latency_cache_.end()) {
      return it->second;
    }
  }
  // Evaluate on a scratch deployment: the cycle model is a pure function of
  // (design, dfg, batch size), and a private Accelerator keeps concurrent
  // cache warming race-free without serializing the long-lived replicas.
  runtime::Accelerator scratch(
      distinct_designs_[static_cast<std::size_t>(key.kind)], *dfg_);
  const double seconds =
      scratch.RunWorkloadBatch(static_cast<int>(batch_size));
  std::lock_guard<std::mutex> lock(cache_mu_);
  latency_cache_.emplace(key, seconds);
  return seconds;
}

void ServerPool::WarmLatencyCache(const std::vector<Batch>& batches) {
  // Distinct (kind, size) work items: every replica kind must be able to
  // serve every batch size that occurs.
  std::set<std::int64_t> sizes;
  for (const auto& batch : batches) {
    sizes.insert(batch.size());
  }
  WarmSizes(sizes);
}

void ServerPool::WarmBatchSizes(std::int64_t max_batch) {
  NSF_CHECK_MSG(max_batch >= 1, "max_batch must be positive");
  std::set<std::int64_t> sizes;
  for (std::int64_t s = 1; s <= max_batch; ++s) {
    sizes.insert(s);
  }
  WarmSizes(sizes);
}

void ServerPool::WarmSizes(const std::set<std::int64_t>& sizes) {
  std::vector<Key> work;
  for (std::size_t k = 0; k < distinct_designs_.size(); ++k) {
    for (const std::int64_t s : sizes) {
      work.push_back(Key{static_cast<int>(k), s});
    }
  }
  if (work.empty()) {
    return;
  }

  // Representative replica per kind, for routing through BatchSeconds.
  std::vector<int> kind_replica(distinct_designs_.size(), 0);
  for (int r = 0; r < size(); ++r) {
    kind_replica[static_cast<std::size_t>(kind_[static_cast<std::size_t>(r)])] =
        r;
  }

  const int threads =
      std::min<int>(worker_threads_, static_cast<int>(work.size()));
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < work.size();
           i = next.fetch_add(1)) {
        BatchSeconds(kind_replica[static_cast<std::size_t>(work[i].kind)],
                     work[i].batch_size);
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
}

double ServerPool::EarliestFree() const {
  return *std::min_element(free_at_.begin(), free_at_.end());
}

void ServerPool::ResetSchedule() {
  std::fill(free_at_.begin(), free_at_.end(), 0.0);
  dispatched_batches_ = 0;
}

DispatchRecord ServerPool::Dispatch(const Batch& batch, ServeStats* stats,
                                    std::int64_t queue_depth) {
  NSF_CHECK_MSG(batch.size() > 0, "cannot dispatch an empty batch");
  // Earliest-available replica, ties to the lowest id.
  int choice = 0;
  for (int r = 1; r < size(); ++r) {
    if (free_at_[static_cast<std::size_t>(r)] <
        free_at_[static_cast<std::size_t>(choice)]) {
      choice = r;
    }
  }
  const double service = BatchSeconds(choice, batch.size());
  DispatchRecord record;
  record.batch_index = dispatched_batches_++;
  record.replica = choice;
  record.start_s =
      std::max(batch.formed_s, free_at_[static_cast<std::size_t>(choice)]);
  record.complete_s = record.start_s + service;
  record.size = batch.size();
  free_at_[static_cast<std::size_t>(choice)] = record.complete_s;

  if (stats != nullptr) {
    stats->RecordBatch(batch.size(), queue_depth);
    stats->RecordReplicaBusy(choice, service);
    for (const auto& request : batch.requests) {
      stats->RecordRequest(request.arrival_s, record.complete_s);
    }
  }
  return record;
}

std::vector<DispatchRecord> ServerPool::Dispatch(
    const std::vector<Batch>& batches, ServeStats* stats) {
  WarmLatencyCache(batches);
  ResetSchedule();

  // Backlog accounting: arrivals that have entered the system but whose
  // batch has not yet started on a replica, sampled at each batch start.
  std::vector<double> arrivals;
  for (const auto& batch : batches) {
    for (const auto& request : batch.requests) {
      arrivals.push_back(request.arrival_s);
    }
  }
  std::sort(arrivals.begin(), arrivals.end());

  std::vector<DispatchRecord> records;
  records.reserve(batches.size());
  std::int64_t started = 0;  // Requests whose batch already started.
  for (const Batch& batch : batches) {
    // Start time is what Dispatch will compute: max(formed, earliest free).
    const double start = std::max(batch.formed_s, EarliestFree());
    const auto arrived = static_cast<std::int64_t>(
        std::upper_bound(arrivals.begin(), arrivals.end(), start) -
        arrivals.begin());
    records.push_back(Dispatch(batch, stats, arrived - started));
    started += batch.size();
  }
  return records;
}

}  // namespace nsflow::serve
