// Performance model of a generated NSFlow accelerator.
//
// Combines the Sec. V-C cycle equations with the memory system: array and
// SIMD cycles from the analytical model, DRAM traffic through the AXI model
// with double buffering (transfers overlap compute; only the excess stalls),
// all at the deployment clock (272 MHz on the U250, Table III).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dataflow_graph.h"
#include "model/analytical.h"
#include "quant/precision.h"

namespace nsflow {

/// On-chip memory block sizes chosen by the DAG (paper Sec. IV-C / V-C).
struct MemoryConfig {
  double mem_a1_bytes = 0.0;   // NN filters for the NN sub-arrays.
  double mem_a2_bytes = 0.0;   // Stationary VSA vectors for the VSA sub-arrays.
  double mem_b_bytes = 0.0;    // IFMAP buffer (NN mode only).
  double mem_c_bytes = 0.0;    // Output buffer (array + SIMD results).
  double cache_bytes = 0.0;    // URAM intermediate cache.

  double TotalSramBytes() const {
    return mem_a1_bytes + mem_a2_bytes + mem_b_bytes + mem_c_bytes;
  }
  double TotalBytes() const { return TotalSramBytes() + cache_bytes; }
};

/// A fully specified accelerator instance — everything the backend needs to
/// instantiate hardware, and everything this model needs to predict runtime.
/// Produced by the DSE (src/dse) and consumed by the simulator (src/arch),
/// the resource model (src/fpga), and the benches.
struct AcceleratorDesign {
  ArrayConfig array;
  bool sequential_mode = false;       // Algorithm 1 line 14 fallback.
  std::vector<std::int64_t> nl;       // Per-layer sub-array allocation.
  std::vector<std::int64_t> nv;       // Per-VSA-node sub-array allocation.
  std::int64_t default_nl = 0;        // Phase I static partition (reporting).
  std::int64_t default_nv = 0;
  std::int64_t simd_width = 64;
  MemoryConfig memory;
  PrecisionPolicy precision;
  double clock_hz = 272e6;            // Table III deployment frequency.
  double dram_bandwidth = 77e9;       // Four DDR4-2400 channels on the U250.
};

/// Cycle breakdown for one loop of the workload.
struct AccelPerf {
  double array_cycles = 0.0;      // AdArray busy time (max of NN/VSA lanes
                                  // in parallel mode, sum in sequential).
  double nn_cycles = 0.0;         // t_nn component.
  double vsa_cycles = 0.0;        // t_vsa component.
  double simd_cycles = 0.0;       // SIMD unit busy time.
  double simd_exposed_cycles = 0.0;  // SIMD time not hidden under the array.
  double dram_cycles = 0.0;       // AXI transfer time.
  double dram_stall_cycles = 0.0; // Transfer time not hidden by buffering.
  double total_cycles = 0.0;

  double Seconds(double clock_hz) const { return total_cycles / clock_hz; }
};

/// Predict one-loop performance of `design` on `dfg`.
AccelPerf EstimateAccelerator(const DataflowGraph& dfg,
                              const AcceleratorDesign& design);

/// End-to-end seconds for the workload's full loop_count, accounting for the
/// pipeline fill of the first loop (NN and VSA cannot overlap until one NN
/// pass has completed).
double EndToEndSeconds(const DataflowGraph& dfg,
                       const AcceleratorDesign& design);

}  // namespace nsflow
