// Error handling primitives for NSFlow.
//
// NSFlow follows the C++ Core Guidelines error model (E.2): failures that a
// caller cannot locally prevent are reported by throwing an exception derived
// from `nsflow::Error`. Programming errors (precondition violations) are
// reported through NSF_CHECK / NSF_DCHECK, which throw `nsflow::CheckError`
// with the failing expression and location so that tests can assert on them.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace nsflow {

/// Base class for all NSFlow errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed user input: unparsable trace, bad configuration value, etc.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("ParseError: " + what) {}
};

/// A request that is structurally valid but cannot be satisfied, e.g. a DSE
/// query whose constraints admit no feasible design point.
class InfeasibleError : public Error {
 public:
  explicit InfeasibleError(const std::string& what)
      : Error("InfeasibleError: " + what) {}
};

/// Violated internal invariant or precondition (raised by NSF_CHECK).
class CheckError : public Error {
 public:
  CheckError(std::string_view expr, std::string_view file, int line,
             const std::string& msg)
      : Error(Format(expr, file, line, msg)) {}

 private:
  static std::string Format(std::string_view expr, std::string_view file,
                            int line, const std::string& msg);
};

namespace internal {
[[noreturn]] void ThrowCheckError(const char* expr, const char* file, int line,
                                  const std::string& msg);
}  // namespace internal

}  // namespace nsflow

/// Precondition / invariant check, always enabled. Throws CheckError.
#define NSF_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::nsflow::internal::ThrowCheckError(#expr, __FILE__, __LINE__, "");   \
    }                                                                       \
  } while (false)

/// Precondition check with a context message.
#define NSF_CHECK_MSG(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::nsflow::internal::ThrowCheckError(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                       \
  } while (false)

/// Debug-only check. Compiles away in NDEBUG builds.
#ifdef NDEBUG
#define NSF_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define NSF_DCHECK(expr) NSF_CHECK(expr)
#endif
