// Thread-safe FIFO request queue — the handoff between the arrival producer
// and the batching consumer (the "task queue" of the oneflow-style serving
// idiom: producers enqueue, workers drain, close() ends the stream).
//
// Single-producer/single-consumer in the engine, but safe for any number of
// either. FIFO order is guaranteed, which — together with virtual
// timestamps on the requests — keeps downstream batching deterministic no
// matter how the threads interleave.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "serve/request.h"

namespace nsflow::serve {

class RequestQueue {
 public:
  /// `capacity` == 0 means unbounded; otherwise Push blocks while full
  /// (producer backpressure).
  explicit RequestQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Enqueue; blocks while the queue is at capacity. Returns false if the
  /// queue was closed (the request is dropped).
  bool Push(Request request);

  /// Dequeue in FIFO order; blocks while empty. Returns nullopt once the
  /// queue is closed *and* drained.
  std::optional<Request> Pop();

  /// Non-blocking dequeue.
  std::optional<Request> TryPop();

  /// End the stream: wakes all blocked producers/consumers. Idempotent.
  void Close();

  bool closed() const;
  std::size_t depth() const;
  /// High-water mark of the wall-clock queue depth since construction.
  std::size_t max_depth() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Request> queue_;
  bool closed_ = false;
  std::size_t max_depth_ = 0;
};

}  // namespace nsflow::serve
