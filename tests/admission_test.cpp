// Admission-frontend tests (serve/admission.h): spec round-trips and
// strict-parse rejection, the token bucket against its closed form, the
// never-dispatched deadline invariant checked against the recorded trace,
// critical-over-batch dispatch preemption, retry-budget exhaustion,
// graceful-drain conservation (every offered request is accounted exactly
// once), fixed-seed bit-determinism of admission-controlled runs, and the
// flash-crowd x admission composition pin — superimposed flash arrivals
// route through the same per-tenant accounting as base traffic
// (docs/ADMISSION.md).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/error.h"
#include "obs/observability.h"
#include "serve/admission.h"
#include "serve/adversity.h"
#include "serve/batch_former.h"
#include "serve/engine.h"
#include "serve/workload_registry.h"

namespace nsflow::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<std::string> AllAdmissionSpecs() {
  return {"none",
          "quota",
          "quota:rate=120,burst=8,retry=2,backoff=0.02",
          "slo",
          "slo:deadline=0.05,retry=0",
          "overload",
          "overload:depth=32,live=0.5,backoff=0.005",
          "guard",
          "guard:rate=500,burst=16,deadline=0.04,depth=48,live=0.8,retry=3,"
          "backoff=0.01"};
}

// ------------------------------------------------------------ spec parsing

TEST(AdmissionTest, SpecParsesAndRoundTrips) {
  for (const std::string& text : AllAdmissionSpecs()) {
    const AdmissionSpec spec = AdmissionSpec::Parse(text);
    const AdmissionSpec again = AdmissionSpec::Parse(spec.ToString());
    EXPECT_TRUE(spec == again) << text << " -> " << spec.ToString();
  }
  EXPECT_FALSE(AdmissionSpec::Parse("none").enabled());
  EXPECT_TRUE(AdmissionSpec::Parse("guard").enabled());
  EXPECT_EQ(AdmissionSpec::Parse("quota:rate=10").Name(), "quota");
  // High-precision values survive the canonical print bit-exactly (bench
  // artifacts record the spec string).
  AdmissionSpec spec;
  spec.kind = AdmissionKind::kSlo;
  spec.params["deadline"] = 1.0 / 3.0;
  const AdmissionSpec again = AdmissionSpec::Parse(spec.ToString());
  EXPECT_EQ(again.Param("deadline", 0.0), 1.0 / 3.0);
}

TEST(AdmissionTest, SpecRejectsUnknownAndOutOfRange) {
  // Unknown policy names and keys, malformed entries.
  EXPECT_THROW(AdmissionSpec::Parse("bogus"), Error);
  EXPECT_THROW(AdmissionSpec::Parse("quota:deadline=0.05"), Error);
  EXPECT_THROW(AdmissionSpec::Parse("slo:rate=10"), Error);
  EXPECT_THROW(AdmissionSpec::Parse("none:retry=1"), Error);
  EXPECT_THROW(AdmissionSpec::Parse("quota:rate"), Error);
  EXPECT_THROW(AdmissionSpec::Parse("quota:=1"), Error);
  EXPECT_THROW(AdmissionSpec::Parse("quota:rate=abc"), Error);
  // Out-of-range values are rejected at parse, not at first use.
  EXPECT_THROW(AdmissionSpec::Parse("quota:rate=0"), Error);
  EXPECT_THROW(AdmissionSpec::Parse("quota:rate=-5"), Error);
  EXPECT_THROW(AdmissionSpec::Parse("quota:burst=0.5"), Error);
  EXPECT_THROW(AdmissionSpec::Parse("slo:deadline=0"), Error);
  EXPECT_THROW(AdmissionSpec::Parse("overload:depth=0"), Error);
  EXPECT_THROW(AdmissionSpec::Parse("overload:depth=1.5"), Error);
  EXPECT_THROW(AdmissionSpec::Parse("overload:live=1.5"), Error);
  EXPECT_THROW(AdmissionSpec::Parse("overload:live=-0.1"), Error);
  EXPECT_THROW(AdmissionSpec::Parse("guard:retry=-1"), Error);
  EXPECT_THROW(AdmissionSpec::Parse("guard:retry=0.5"), Error);
  EXPECT_THROW(AdmissionSpec::Parse("guard:backoff=-0.01"), Error);
  // Tier names are strict too.
  EXPECT_THROW(TierFromName("gold"), Error);
  EXPECT_EQ(TierFromName("critical"), SlaTier::kCritical);
  EXPECT_EQ(std::string(TierName(SlaTier::kBatch)), "batch");
}

// ------------------------------------------------------------ token bucket

TEST(AdmissionTest, TokenBucketMatchesClosedForm) {
  // Uniform offers at interval dt with refill r and opening burst b, where
  // r*dt < 1 (the bucket never refills a whole token between offers) and
  // b >= 2 (the cap never re-binds after the first take): the bucket admits
  // exactly floor(b + r * dt * (N - 1)) of N offers. Verify the controller
  // against both that closed form and an independent float re-simulation.
  const struct {
    double rate, burst, dt;
    int offers;
  } cases[] = {{0.5, 2.0, 1.0, 101}, {3.0, 5.0, 0.1, 200}};
  for (const auto& c : cases) {
    const AdmissionSpec spec = AdmissionSpec::Parse(
        "quota:rate=" + std::to_string(c.rate) +
        ",burst=" + std::to_string(c.burst));
    // A batch-tier tenant sheds without the retry path, so every offer is a
    // pure bucket decision.
    AdmissionController controller(
        spec, {{"t0", SlaTier::kBatch, /*offered_rps=*/1.0}});
    std::int64_t admitted = 0;
    double tokens = c.burst;
    double last = 0.0;
    std::int64_t simulated = 0;
    for (int i = 0; i < c.offers; ++i) {
      const double now = static_cast<double>(i) * c.dt;
      Request request;
      request.id = i;
      request.arrival_s = now;
      admitted += controller.Offer(&request, /*backlog=*/0,
                                   /*live_fraction=*/1.0)
                      ? 1
                      : 0;
      tokens = std::min(c.burst, tokens + c.rate * (now - last));
      last = now;
      if (tokens >= 1.0) {
        tokens -= 1.0;
        ++simulated;
      }
    }
    const auto closed_form = static_cast<std::int64_t>(std::floor(
        c.burst + c.rate * c.dt * static_cast<double>(c.offers - 1)));
    EXPECT_EQ(admitted, simulated) << "rate=" << c.rate;
    EXPECT_EQ(admitted, closed_form) << "rate=" << c.rate;
    const auto rows = controller.Summaries();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].offered, c.offers);
    EXPECT_EQ(rows[0].admitted, admitted);
    EXPECT_EQ(rows[0].shed_quota, c.offers - admitted);
    EXPECT_EQ(rows[0].expired, 0);
    EXPECT_EQ(rows[0].retried, 0);
    EXPECT_EQ(controller.removed(), c.offers - admitted);
  }
}

// ------------------------------------------------------- deadline expiry

TEST(AdmissionTest, ExpiredRequestsAreNeverDispatched) {
  // A 2 ms start deadline on the slow critical tenant at ~3x its capacity:
  // expiries must occur, and the recorded trace must show every dispatched
  // request starting inside its (recomputed) deadline. Tiers avoid
  // `standard` so no retry re-stamps `arrival_s` and the recomputation is
  // exact.
  WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  registry.RegisterBuiltin("resnet18");
  const std::vector<ReplicaSpec> replicas = registry.ReplicaSpecs(2, true);
  const std::vector<WorkloadShare> mix = {{"mlp", 0.2}, {"resnet18", 0.8}};
  ServeOptions options;
  options.qps = 600.0;
  options.duration_s = 2.0;
  options.seed = 42;
  options.admission = AdmissionSpec::Parse("slo:deadline=0.002");
  options.tiers = {SlaTier::kBatch, SlaTier::kCritical};
  options.trace.enabled = true;
  const ServeReport report = RunSyntheticServe(registry, replicas, mix,
                                               options);

  ASSERT_EQ(report.admission.size(), 2u);
  const AdmissionTenantSummary& batch_row = report.admission[0];
  const AdmissionTenantSummary& critical_row = report.admission[1];
  EXPECT_EQ(batch_row.tier, SlaTier::kBatch);
  EXPECT_EQ(critical_row.tier, SlaTier::kCritical);
  EXPECT_GT(critical_row.expired, 0) << "overdriven tenant never expired";
  EXPECT_EQ(batch_row.expired, 0) << "batch tier has no deadline";
  EXPECT_EQ(report.expired_dispatched, 0);

  // Conservation: what the pool completed is exactly what admission let
  // through minus what the sweeps removed.
  const std::int64_t admitted =
      batch_row.admitted + critical_row.admitted;
  const std::int64_t expired = batch_row.expired + critical_row.expired;
  EXPECT_EQ(report.summary.completed, admitted - expired);

  // The invariant against the independent record: no dispatched request
  // started past arrival + tier budget (critical 2 ms; batch exempt).
  ASSERT_NE(report.obs, nullptr);
  const obs::TraceData trace = report.obs->recorder.Drain();
  ASSERT_EQ(trace.requests.size(),
            static_cast<std::size_t>(report.summary.completed));
  for (const obs::RequestSpan& span : trace.requests) {
    const double budget = span.workload == 1 ? 0.002 : kInf;
    EXPECT_LE(span.start_s, span.arrival_s + budget)
        << "request " << span.request_id << " dispatched past its deadline";
  }
}

// ------------------------------------------------- dispatch preemption

TEST(AdmissionTest, CriticalLanesPreemptBatchLanesAtDispatch) {
  // Two lanes both past deadline at the same instant. Legacy (all-zero
  // priority) order closes the older head first; with tier priorities the
  // critical lane closes first even though its head arrived later.
  BatchPolicy policy;
  policy.max_batch = 8;
  policy.max_wait_s = 1e-3;
  const auto feed = [&](MultiBatchFormer* former) {
    Request a;  // Lane 0 head, the oldest request overall.
    a.id = 0;
    a.workload = 0;
    a.arrival_s = 0.0;
    Request b;  // Lane 1 head, younger.
    b.id = 1;
    b.workload = 1;
    b.arrival_s = 0.0005;
    const std::vector<double> idle = {0.0, 0.0};
    EXPECT_TRUE(former->Add(a, idle).empty());
    EXPECT_TRUE(former->Add(b, idle).empty());
    return former->Flush(0.01);
  };

  MultiBatchFormer legacy(policy, 2);
  const std::vector<Batch> legacy_order = feed(&legacy);
  ASSERT_EQ(legacy_order.size(), 2u);
  EXPECT_EQ(legacy_order[0].workload, 0) << "legacy order is oldest-head";

  MultiBatchFormer tiered(policy, 2);
  tiered.SetLanePriority(0, static_cast<int>(SlaTier::kBatch));
  tiered.SetLanePriority(1, static_cast<int>(SlaTier::kCritical));
  const std::vector<Batch> tiered_order = feed(&tiered);
  ASSERT_EQ(tiered_order.size(), 2u);
  EXPECT_EQ(tiered_order[0].workload, 1)
      << "critical lane must preempt the batch lane";
  EXPECT_EQ(tiered_order[1].workload, 0);
}

// --------------------------------------------------- retry exhaustion

TEST(AdmissionTest, RetryBudgetExhaustsIntoAFinalShed) {
  // A standard-tier tenant under sustained deep backlog: each shed
  // schedules a retry with doubling backoff until the budget runs out, then
  // the request finally sheds.
  const AdmissionSpec spec =
      AdmissionSpec::Parse("overload:depth=1,retry=2,backoff=0.5");
  AdmissionController controller(
      spec, {{"t0", SlaTier::kStandard, /*offered_rps=*/100.0}});
  Request request;
  request.id = 0;
  request.arrival_s = 0.0;
  EXPECT_FALSE(controller.Offer(&request, /*backlog=*/100,
                                /*live_fraction=*/1.0));
  EXPECT_DOUBLE_EQ(controller.NextRetryAt(), 0.5);  // backoff * 2^0

  Request retry1 = controller.PopRetry();
  EXPECT_EQ(retry1.attempt, 1);
  EXPECT_DOUBLE_EQ(retry1.arrival_s, 0.5);
  EXPECT_FALSE(controller.Offer(&retry1, /*backlog=*/100,
                                /*live_fraction=*/1.0));
  EXPECT_DOUBLE_EQ(controller.NextRetryAt(), 1.5);  // 0.5 + backoff * 2^1

  Request retry2 = controller.PopRetry();
  EXPECT_EQ(retry2.attempt, 2);
  EXPECT_FALSE(controller.Offer(&retry2, /*backlog=*/100,
                                /*live_fraction=*/1.0));
  EXPECT_EQ(controller.NextRetryAt(), kInf) << "budget spent, no more retries";

  auto rows = controller.Summaries();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].offered, 3);  // First offer + two re-offers.
  EXPECT_EQ(rows[0].admitted, 0);
  EXPECT_EQ(rows[0].retried, 2);
  EXPECT_EQ(rows[0].shed_overload, 1);  // Exactly one *final* shed.
  EXPECT_EQ(controller.removed(), 1);

  // A retry offered into a recovered pool admits normally.
  Request second;
  second.id = 1;
  second.arrival_s = 10.0;
  EXPECT_FALSE(controller.Offer(&second, /*backlog=*/100, 1.0));
  Request recovered = controller.PopRetry();
  EXPECT_TRUE(controller.Offer(&recovered, /*backlog=*/0, 1.0));
  // A retry still pending at shutdown finalizes as a shed.
  Request third;
  third.id = 2;
  third.arrival_s = 20.0;
  EXPECT_FALSE(controller.Offer(&third, /*backlog=*/100, 1.0));
  EXPECT_EQ(controller.CloseRetries(), 1);
  rows = controller.Summaries();
  EXPECT_EQ(rows[0].admitted, 1);
  EXPECT_EQ(rows[0].shed_overload, 2);
  EXPECT_EQ(controller.NextRetryAt(), kInf);
}

// ------------------------------------------------- graceful drain

TEST(AdmissionTest, GracefulDrainAccountsForEveryOfferedRequest) {
  // An overdriven guarded run: conservation must hold exactly — every
  // generated arrival is offered, every offer either admits or sheds, and
  // every admit either completes or expires. The drain retires the whole
  // pool on the decision timeline.
  WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  registry.RegisterBuiltin("resnet18");
  const std::vector<ReplicaSpec> replicas = registry.ReplicaSpecs(2, true);
  const std::vector<WorkloadShare> mix = {{"mlp", 0.3}, {"resnet18", 0.7}};
  ServeOptions options;
  options.qps = 700.0;
  options.duration_s = 2.0;
  options.seed = 7;
  options.admission = AdmissionSpec::Parse("guard:depth=8,deadline=0.02");
  options.tiers = {SlaTier::kCritical, SlaTier::kBatch};  // No retry path.
  const ServeReport report = RunSyntheticServe(registry, replicas, mix,
                                               options);

  ASSERT_EQ(report.admission.size(), 2u);
  std::int64_t offered = 0;
  std::int64_t admitted = 0;
  std::int64_t expired = 0;
  for (const AdmissionTenantSummary& row : report.admission) {
    EXPECT_EQ(row.offered, row.admitted + row.shed()) << row.tenant;
    EXPECT_LE(row.expired, row.admitted) << row.tenant;
    EXPECT_EQ(row.retried, 0) << row.tenant;
    offered += row.offered;
    admitted += row.admitted;
    expired += row.expired;
  }
  EXPECT_EQ(offered, report.generated_requests);
  EXPECT_EQ(report.summary.completed, admitted - expired);
  EXPECT_GT(report.admission[1].shed(), 0) << "overdrive never shed batch";
  EXPECT_EQ(report.expired_dispatched, 0);

  // The shutdown drain is on the pool timeline.
  bool drained = false;
  for (const PoolEvent& event : report.summary.timeline) {
    drained = drained ||
              (event.kind == PoolEventKind::kDecision &&
               event.event.find("graceful drain") != std::string::npos);
  }
  EXPECT_TRUE(drained);
}

// ------------------------------------------------- determinism + compose

TEST(AdmissionTest, AdmissionRunsAreBitDeterministicUnderAFixedSeed) {
  // Admission x adversity x scenario, run twice: identical seed, identical
  // bytes — summaries, dispatch log, and every admission counter.
  WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  registry.RegisterBuiltin("resnet18");
  const std::vector<ReplicaSpec> replicas = registry.ReplicaSpecs(2, true);
  const std::vector<WorkloadShare> mix = {{"mlp", 0.5}, {"resnet18", 0.5}};
  ServeOptions options;
  options.qps = 500.0;
  options.duration_s = 1.5;
  options.seed = 11;
  options.scenario = ScenarioSpec::Parse("diurnal:depth=0.6");
  options.adversity = AdversitySpec::Parse("replica-fail:at=0.5,down=0.3");
  options.admission = AdmissionSpec::Parse("guard:depth=16,deadline=0.03");
  options.tiers = {SlaTier::kCritical, SlaTier::kStandard};
  const ServeReport a = RunSyntheticServe(registry, replicas, mix, options);
  const ServeReport b = RunSyntheticServe(registry, replicas, mix, options);
  ASSERT_GT(a.summary.completed, 0);
  EXPECT_EQ(a.generated_requests, b.generated_requests);
  EXPECT_EQ(a.summary.completed, b.summary.completed);
  EXPECT_EQ(a.summary.p99_ms, b.summary.p99_ms);
  EXPECT_EQ(a.summary.throughput_rps, b.summary.throughput_rps);
  EXPECT_EQ(a.dispatches.size(), b.dispatches.size());
  ASSERT_EQ(a.admission.size(), b.admission.size());
  for (std::size_t i = 0; i < a.admission.size(); ++i) {
    EXPECT_EQ(a.admission[i].offered, b.admission[i].offered);
    EXPECT_EQ(a.admission[i].admitted, b.admission[i].admitted);
    EXPECT_EQ(a.admission[i].shed_quota, b.admission[i].shed_quota);
    EXPECT_EQ(a.admission[i].shed_overload, b.admission[i].shed_overload);
    EXPECT_EQ(a.admission[i].expired, b.admission[i].expired);
    EXPECT_EQ(a.admission[i].retried, b.admission[i].retried);
  }
  ASSERT_EQ(a.summary.per_tier.size(), b.summary.per_tier.size());
  for (std::size_t i = 0; i < a.summary.per_tier.size(); ++i) {
    EXPECT_EQ(a.summary.per_tier[i].p99_ms, b.summary.per_tier[i].p99_ms);
  }
}

TEST(AdmissionTest, FlashCrowdArrivalsRouteThroughTenantAccounting) {
  // The satellite-6 pin: flash-crowd extras are superimposed inside
  // SyntheticArrivals, so they hit the same admission path as base traffic
  // — the per-tenant offered tallies must sum to the generated total, with
  // and without the flash. Tiers avoid `standard` so no retry re-offers
  // inflate the tallies.
  WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  registry.RegisterBuiltin("resnet18");
  const std::vector<ReplicaSpec> replicas = registry.ReplicaSpecs(2, true);
  const std::vector<WorkloadShare> mix = {{"mlp", 0.5}, {"resnet18", 0.5}};
  ServeOptions options;
  options.qps = 400.0;
  options.duration_s = 1.0;
  options.seed = 21;
  options.admission = AdmissionSpec::Parse("quota:rate=150,burst=8");
  options.tiers = {SlaTier::kCritical, SlaTier::kBatch};
  const ServeReport calm = RunSyntheticServe(registry, replicas, mix,
                                             options);
  options.adversity = AdversitySpec::Parse("flash:at=0.25,width=0.5,mult=3");
  const ServeReport flash = RunSyntheticServe(registry, replicas, mix,
                                              options);
  const auto offered_sum = [](const ServeReport& report) {
    std::int64_t sum = 0;
    for (const AdmissionTenantSummary& row : report.admission) {
      sum += row.offered;
    }
    return sum;
  };
  EXPECT_EQ(offered_sum(calm), calm.generated_requests);
  EXPECT_EQ(offered_sum(flash), flash.generated_requests);
  EXPECT_GT(flash.generated_requests, calm.generated_requests)
      << "the flash window superimposed no extra arrivals";
  // The tightened bucket actually bites under the flash: quota sheds are
  // recorded against the tenants the extras targeted.
  std::int64_t quota_sheds = 0;
  for (const AdmissionTenantSummary& row : flash.admission) {
    quota_sheds += row.shed_quota;
  }
  EXPECT_GT(quota_sheds, 0);
}

}  // namespace
}  // namespace nsflow::serve
