// Unit tests for the minimal JSON parser/serializer.
#include <gtest/gtest.h>

#include "common/json.h"

namespace nsflow {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Json::Parse("null").is_null());
  EXPECT_TRUE(Json::Parse("true").AsBool());
  EXPECT_FALSE(Json::Parse("false").AsBool());
  EXPECT_DOUBLE_EQ(Json::Parse("3.25").AsDouble(), 3.25);
  EXPECT_DOUBLE_EQ(Json::Parse("-17").AsDouble(), -17.0);
  EXPECT_DOUBLE_EQ(Json::Parse("6.02e23").AsDouble(), 6.02e23);
  EXPECT_EQ(Json::Parse("\"hello\"").AsString(), "hello");
}

TEST(JsonParseTest, EscapeSequences) {
  EXPECT_EQ(Json::Parse(R"("a\nb\t\"q\"\\")").AsString(), "a\nb\t\"q\"\\");
  EXPECT_EQ(Json::Parse(R"("A")").AsString(), "A");
  EXPECT_EQ(Json::Parse(R"("é")").AsString(), "\xc3\xa9");  // é in UTF-8.
}

TEST(JsonParseTest, NestedStructures) {
  const Json doc = Json::Parse(R"({
    "workload": "NVSA",
    "loop_count": 2,
    "ops": [{"name": "conv1", "gemm": {"m": 64, "n": 147, "k": 102400}}]
  })");
  EXPECT_EQ(doc.At("workload").AsString(), "NVSA");
  EXPECT_EQ(doc.At("loop_count").AsInt(), 2);
  EXPECT_EQ(doc.At("ops").size(), 1u);
  EXPECT_EQ(doc.At("ops").At(0).At("gemm").At("k").AsInt(), 102400);
}

TEST(JsonParseTest, EmptyContainers) {
  EXPECT_EQ(Json::Parse("[]").size(), 0u);
  EXPECT_EQ(Json::Parse("{}").size(), 0u);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_THROW(Json::Parse(""), ParseError);
  EXPECT_THROW(Json::Parse("{"), ParseError);
  EXPECT_THROW(Json::Parse("[1,]"), ParseError);
  EXPECT_THROW(Json::Parse("{\"a\" 1}"), ParseError);
  EXPECT_THROW(Json::Parse("\"unterminated"), ParseError);
  EXPECT_THROW(Json::Parse("tru"), ParseError);
  EXPECT_THROW(Json::Parse("1 2"), ParseError);  // Trailing garbage.
  EXPECT_THROW(Json::Parse("\"\\u00g0\""), ParseError);
}

TEST(JsonParseTest, TypeMismatchThrows) {
  const Json doc = Json::Parse("{\"a\": 1}");
  EXPECT_THROW(doc.At("a").AsString(), ParseError);
  EXPECT_THROW(doc.At("missing"), ParseError);
  EXPECT_THROW(doc.At("a").AsArray(), ParseError);
  EXPECT_THROW(Json::Parse("1.5").AsInt(), ParseError);
}

TEST(JsonDumpTest, CompactRoundTrip) {
  const std::string text =
      R"({"array":{"count":16,"height":32,"width":16},"name":"NVSA"})";
  const Json doc = Json::Parse(text);
  EXPECT_EQ(doc.Dump(), text);
}

TEST(JsonDumpTest, RoundTripPreservesValue) {
  JsonObject obj;
  obj["pi"] = Json(3.14159);
  obj["n"] = Json(std::int64_t{42});
  obj["s"] = Json("line1\nline2");
  obj["list"] = Json(JsonArray{Json(1), Json(true), Json(nullptr)});
  const Json original{std::move(obj)};
  EXPECT_EQ(Json::Parse(original.Dump()), original);
  EXPECT_EQ(Json::Parse(original.Dump(2)), original);
}

TEST(JsonDumpTest, IntegersPrintWithoutDecimals) {
  EXPECT_EQ(Json(std::int64_t{272000000}).Dump(), "272000000");
  EXPECT_EQ(Json(16.0).Dump(), "16");
}

TEST(JsonDumpTest, IndentedOutputIsStable) {
  const Json doc = Json::Parse(R"({"b": [1, 2], "a": 3})");
  const std::string pretty = doc.Dump(2);
  // std::map ordering: keys sorted -> "a" before "b"; diffable output.
  EXPECT_LT(pretty.find("\"a\""), pretty.find("\"b\""));
  EXPECT_NE(pretty.find("\n"), std::string::npos);
}

TEST(JsonAccessorsTest, GetOrDefaults) {
  const Json doc = Json::Parse(R"({"x": 5, "s": "v"})");
  EXPECT_DOUBLE_EQ(doc.GetNumberOr("x", 0.0), 5.0);
  EXPECT_DOUBLE_EQ(doc.GetNumberOr("y", 7.5), 7.5);
  EXPECT_EQ(doc.GetStringOr("s", "d"), "v");
  EXPECT_EQ(doc.GetStringOr("t", "d"), "d");
  EXPECT_TRUE(doc.Contains("x"));
  EXPECT_FALSE(doc.Contains("zz"));
}

TEST(JsonAccessorsTest, MutationViaIndexOperator) {
  Json doc;
  doc["a"]["b"] = Json(1);
  EXPECT_EQ(doc.At("a").At("b").AsInt(), 1);
}

}  // namespace
}  // namespace nsflow
