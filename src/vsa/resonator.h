// Resonator network for factorizing composite hypervectors.
//
// Given a composite s = x1 ⊛ x2 ⊛ ... ⊛ xF with each factor drawn from a
// known codebook, a resonator network recovers the factors by iterating
//
//   xi(t+1) = cleanup_i( s ⊘ prod_{j != i} xj(t) )
//
// where ⊛ is binding (blockwise circular convolution) and ⊘ is unbinding.
// This is the factorization primitive NVSA-class systems use to decompose a
// perceived scene vector into attribute vectors, and one of the symbolic
// query patterns NSFlow's dataflow graph schedules onto the AdArray.
#pragma once

#include <cstdint>
#include <vector>

#include "vsa/codebook.h"

namespace nsflow::vsa {

struct ResonatorOptions {
  int max_iterations = 50;
  /// Stop once every factor estimate is a fixed point of the update.
  bool early_stop = true;
};

struct ResonatorResult {
  std::vector<std::int64_t> factors;  // Decoded symbol per codebook.
  int iterations = 0;
  bool converged = false;
};

/// Factorize `composite` against one codebook per factor.
ResonatorResult Factorize(const HyperVector& composite,
                          std::span<const Codebook> codebooks,
                          const ResonatorOptions& options = {});

}  // namespace nsflow::vsa
