#include "nsflow/framework.h"

#include <algorithm>
#include <limits>

#include "arch/fastpath.h"
#include "common/error.h"
#include "dse/design_config.h"
#include "fpga/rtl_emitter.h"
#include "graph/trace.h"
#include "nsflow/host_codegen.h"

namespace nsflow {

double CompiledDesign::PredictedSeconds() const {
  return EndToEndSeconds(*dataflow, dse.design);
}

CompiledDesign Compiler::Compile(OperatorGraph graph) const {
  CompiledDesign compiled;
  compiled.graph = std::make_unique<OperatorGraph>(std::move(graph));
  compiled.dataflow = std::make_unique<DataflowGraph>(*compiled.graph);

  DseOptions dse_options = options_.dse;
  dse_options.dictionary_bytes = options_.dictionary_bytes;
  compiled.dse = RunTwoPhaseDse(*compiled.dataflow, dse_options);

  compiled.design_config_json =
      EmitDesignConfig(compiled.dse.design, compiled.graph->workload_name());
  compiled.host_code = EmitHostCode(*compiled.dataflow, compiled.dse.design,
                                    compiled.graph->workload_name());
  compiled.rtl_parameter_header = EmitParameterHeader(compiled.dse.design);
  compiled.rtl_top_level = EmitTopLevel(compiled.dse.design);
  return compiled;
}

CompiledDesign Compiler::CompileJsonTrace(const std::string& trace_json) const {
  return Compile(ParseJsonTrace(trace_json));
}

std::vector<ParetoPoint> ParetoDesigns(const DataflowGraph& dfg,
                                       DseOptions base, int max_points,
                                       std::int64_t min_pes) {
  NSF_CHECK_MSG(max_points >= 1, "need at least one pareto point");
  NSF_CHECK_MSG(min_pes >= 1, "min_pes must be positive");

  // Always evaluate the base budget, even when it sits below min_pes —
  // callers must get a non-empty frontier for any valid DSE options.
  min_pes = std::min(min_pes, base.max_pes);
  std::vector<ParetoPoint> candidates;
  for (std::int64_t budget = base.max_pes;
       budget >= min_pes &&
       static_cast<int>(candidates.size()) < 2 * max_points;
       budget /= 2) {
    DseOptions options = base;
    options.max_pes = budget;
    ParetoPoint point;
    point.design = RunTwoPhaseDse(dfg, options).design;
    point.pe_budget = budget;
    point.pes = point.design.array.height * point.design.array.width *
                point.design.array.count;
    // Fast-path estimate: the exact seconds a deployed replica's cycle
    // model reports (serve::ServerPool::BatchSeconds at batch 1), so the
    // frontier's predicted latency and the serving pool's latency cache
    // agree to the bit.
    point.predicted_seconds = arch::EstimateWorkloadSeconds(point.design, dfg);
    candidates.push_back(std::move(point));
  }

  // Frontier filter: keep only non-dominated points (no other candidate has
  // both fewer-or-equal PEs and lower-or-equal latency); ties on PEs keep
  // the faster design. Result is sorted largest budget first, so PEs
  // strictly decrease and latency strictly increases along it.
  std::sort(candidates.begin(), candidates.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              return a.pes != b.pes ? a.pes < b.pes
                                    : a.predicted_seconds < b.predicted_seconds;
            });
  std::vector<ParetoPoint> frontier;
  double best_seconds = std::numeric_limits<double>::infinity();
  // Ascending PEs: a point survives only by beating every smaller design's
  // latency, which is exactly pareto optimality on this ordering.
  for (auto& candidate : candidates) {
    if (candidate.predicted_seconds < best_seconds) {
      best_seconds = candidate.predicted_seconds;
      frontier.push_back(std::move(candidate));
    }
  }
  std::reverse(frontier.begin(), frontier.end());
  if (static_cast<int>(frontier.size()) > max_points) {
    frontier.resize(static_cast<std::size_t>(max_points));
  }
  return frontier;
}

std::unique_ptr<runtime::Accelerator> Deploy(const CompiledDesign& compiled) {
  return std::make_unique<runtime::Accelerator>(compiled.dse.design,
                                                *compiled.dataflow);
}

ResourceReport Report(const CompiledDesign& compiled,
                      const FpgaDevice& device) {
  return EstimateResources(compiled.dse.design, device);
}

}  // namespace nsflow
