// Leveled, thread-safe structured logger.
//
// Intended for the framework's host-side tooling (trace ingestion, DSE
// progress, runtime scheduling, the autoscaler's delta log), not for
// per-cycle simulator events — the simulator exposes structured statistics
// instead of log spam.
//
// Every emission is a structured `LogRecord` (level, source location,
// message) routed through the installed sink. The default sink formats
// `[LEVEL file:line] message` to stderr; `SetLogSink` injects a custom
// consumer (the CLI routes the autoscaler's delta log to stdout this way,
// and tests capture records without touching the process's streams). Level
// filtering happens before the sink is consulted, so discarded messages
// cost one atomic load.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace nsflow {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// One structured log emission, as handed to the sink.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string_view file;  // Full __FILE__ path (sinks may Basename it).
  int line = 0;
  std::string message;
};

/// Consumes records that pass the level filter. Called under the logger's
/// mutex: sinks may be non-reentrant, but must not log.
using LogSink = std::function<void(const LogRecord&)>;

/// Process-wide minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Install `sink` as the record consumer and return the previous sink.
/// Passing nullptr restores the default stderr formatter. Thread safe.
LogSink SetLogSink(LogSink sink);

/// "DEBUG" / "INFO" / "WARN" / "ERROR" — exposed for custom sinks.
const char* LogLevelName(LogLevel level);
/// Strip the directory part of a __FILE__ path — for custom sinks that
/// format their own location prefix.
std::string_view LogBasename(std::string_view path);

/// Emit one record (thread safe). Prefer the NSF_LOG macro.
void LogMessage(LogLevel level, std::string_view file, int line,
                const std::string& message);

namespace internal {

/// Stream-style collector used by NSF_LOG; flushes on destruction.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { LogMessage(level_, file_, line_, os_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream os_;
};

}  // namespace internal
}  // namespace nsflow

#define NSF_LOG(level) \
  ::nsflow::internal::LogStream(::nsflow::LogLevel::level, __FILE__, __LINE__)
