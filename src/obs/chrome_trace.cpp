#include "obs/chrome_trace.h"

#include <cstring>
#include <utility>

#include "common/error.h"

// GCC 12 issues a spurious -Wrestrict for short string-literal assignments
// inlined into vector-growth paths (GCC PR105329); the copies here target
// freshly allocated, provably non-overlapping storage.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

namespace nsflow::obs {

namespace {

constexpr int kRequestsPid = 1;
constexpr int kReplicasPid = 2;
constexpr int kAutoscalerPid = 3;

constexpr double kUsPerSecond = 1e6;

const char* CloseName(BatchClose close) {
  switch (close) {
    case BatchClose::kNone:
      return "";
    case BatchClose::kSizeCap:
      return "size_cap";
    case BatchClose::kDeadline:
      return "deadline";
    case BatchClose::kFlush:
      return "flush";
  }
  return "";
}

std::string WorkloadName(const TraceMeta& meta, std::int32_t workload) {
  if (workload >= 0 &&
      workload < static_cast<std::int32_t>(meta.workload_names.size())) {
    return meta.workload_names[static_cast<std::size_t>(workload)];
  }
  return "workload " + std::to_string(workload);
}

ChromeEvent Metadata(const char* what, int pid, int tid, std::string name) {
  ChromeEvent event;
  event.name = what;  // "process_name" / "thread_name".
  event.ph = "M";
  event.pid = pid;
  event.tid = tid;
  event.args["name"] = Json(std::move(name));
  return event;
}

ChromeEvent Instant(const InstantEvent& record, const TraceMeta& meta) {
  ChromeEvent event;
  event.ph = "i";
  event.ts_us = record.t_s * kUsPerSecond;
  event.scope = "t";
  switch (record.kind) {
    case InstantKind::kAutoscalerDecision:
      event.name = "decision";
      event.cat = "autoscaler";
      event.pid = kAutoscalerPid;
      break;
    case InstantKind::kAutoscalerDeferred:
      event.name = "add deferred";
      event.cat = "autoscaler";
      event.pid = kAutoscalerPid;
      break;
    case InstantKind::kReplicaAdded:
      event.name = "added";
      event.cat = "replica";
      event.pid = kReplicasPid;
      event.tid = record.replica;
      break;
    case InstantKind::kReplicaDraining:
      event.name = "draining";
      event.cat = "replica";
      event.pid = kReplicasPid;
      event.tid = record.replica;
      break;
    case InstantKind::kReplicaRetired:
      event.name = "retired";
      event.cat = "replica";
      event.pid = kReplicasPid;
      event.tid = record.replica;
      break;
    case InstantKind::kReplicaRefit:
      event.name = "refit";
      event.cat = "replica";
      event.pid = kReplicasPid;
      event.tid = record.replica;
      break;
    case InstantKind::kReplicaFailed:
      event.name = "failed";
      event.cat = "replica";
      event.pid = kReplicasPid;
      event.tid = record.replica;
      break;
    case InstantKind::kReplicaRecovered:
      event.name = "recovered";
      event.cat = "replica";
      event.pid = kReplicasPid;
      event.tid = record.replica;
      break;
    case InstantKind::kReplicaDerated:
      event.name = "derated";
      event.cat = "replica";
      event.pid = kReplicasPid;
      event.tid = record.replica;
      break;
    case InstantKind::kEnvironment:
      event.name = "environment";
      event.cat = "adversity";
      event.pid = kAutoscalerPid;
      break;
    case InstantKind::kAdmissionShed:
      event.name = "shed";
      event.cat = "admission";
      event.pid = kAutoscalerPid;
      break;
    case InstantKind::kAdmissionRetry:
      event.name = "retry";
      event.cat = "admission";
      event.pid = kAutoscalerPid;
      break;
    case InstantKind::kAdmissionExpired:
      event.name = "expired";
      event.cat = "admission";
      event.pid = kAutoscalerPid;
      break;
    case InstantKind::kClusterRoute:
      event.name = "route";
      event.cat = "cluster";
      event.pid = kAutoscalerPid;
      break;
  }
  if (!record.detail.empty()) {
    event.args["detail"] = Json(record.detail);
  }
  if (record.workload >= 0) {
    event.args["workload"] = Json(WorkloadName(meta, record.workload));
  }
  return event;
}

ChromeEvent CounterEvent(double t_s, const char* name, const char* key,
                         Json value) {
  ChromeEvent event;
  event.name = name;
  event.ph = "C";
  event.cat = "autoscaler";
  event.ts_us = t_s * kUsPerSecond;
  event.pid = kAutoscalerPid;
  event.args[key] = std::move(value);
  return event;
}

}  // namespace

std::vector<ChromeEvent> BuildChromeTrace(const TraceData& data,
                                          const TraceMeta& meta,
                                          TraceDetail detail) {
  std::vector<ChromeEvent> events;
  // Deterministic section order: metadata, counters, instants, batches,
  // request spans. Each section preserves Drain()'s (time, seq) order.
  events.push_back(Metadata("process_name", kRequestsPid, 0, "requests"));
  events.push_back(Metadata("process_name", kReplicasPid, 0, "replicas"));
  events.push_back(Metadata("process_name", kAutoscalerPid, 0, "autoscaler"));
  for (std::size_t w = 0; w < meta.workload_names.size(); ++w) {
    events.push_back(Metadata("thread_name", kRequestsPid, static_cast<int>(w),
                              meta.workload_names[w]));
  }
  for (int r = 0; r < meta.replicas; ++r) {
    events.push_back(Metadata("thread_name", kReplicasPid, r,
                              "replica " + std::to_string(r)));
  }
  events.push_back(Metadata("thread_name", kAutoscalerPid, 0, "control loop"));

  for (const CounterSample& sample : data.counters) {
    events.push_back(CounterEvent(sample.t_s, "window_rate_rps", "rps",
                                  Json(sample.window_rate_rps)));
    events.push_back(CounterEvent(sample.t_s, "active_replicas", "replicas",
                                  Json(sample.active_replicas)));
    events.push_back(CounterEvent(sample.t_s, "queue_depth", "depth",
                                  Json(sample.queue_depth)));
  }

  for (const InstantEvent& instant : data.instants) {
    events.push_back(Instant(instant, meta));
  }

  for (const BatchSpan& batch : data.batches) {
    ChromeEvent event;
    event.name = WorkloadName(meta, batch.workload);
    event.cat = "batch";
    event.ph = "X";
    event.ts_us = batch.start_s * kUsPerSecond;
    event.dur_us = (batch.complete_s - batch.start_s) * kUsPerSecond;
    event.pid = kReplicasPid;
    event.tid = batch.replica;
    event.args["batch"] = Json(batch.batch_index);
    event.args["size"] = Json(batch.size);
    if (batch.close != BatchClose::kNone) {
      event.args["close"] = Json(CloseName(batch.close));
    }
    events.push_back(std::move(event));
  }

  for (const RequestSpan& span : data.requests) {
    const std::string id = std::to_string(span.request_id);
    ChromeEvent begin;
    begin.name = WorkloadName(meta, span.workload);
    begin.cat = "request";
    begin.ph = "b";
    begin.ts_us = span.arrival_s * kUsPerSecond;
    begin.pid = kRequestsPid;
    begin.tid = span.workload;
    begin.id = id;
    events.push_back(std::move(begin));

    if (detail == TraceDetail::kFull) {
      // Nested phase spans under the same async id: forming (arrival ->
      // batch close) and execution (dispatch -> completion); the gap
      // between them is the dispatch wait on a busy replica.
      ChromeEvent form_b;
      form_b.name = "form";
      form_b.cat = "request";
      form_b.ph = "b";
      form_b.ts_us = span.arrival_s * kUsPerSecond;
      form_b.pid = kRequestsPid;
      form_b.tid = span.workload;
      form_b.id = id;
      events.push_back(std::move(form_b));
      ChromeEvent form_e = events.back();
      form_e.ph = "e";
      form_e.ts_us = span.formed_s * kUsPerSecond;
      form_e.args.clear();
      events.push_back(std::move(form_e));

      ChromeEvent exec_b;
      exec_b.name = "execute";
      exec_b.cat = "request";
      exec_b.ph = "b";
      exec_b.ts_us = span.start_s * kUsPerSecond;
      exec_b.pid = kRequestsPid;
      exec_b.tid = span.workload;
      exec_b.id = id;
      events.push_back(std::move(exec_b));
      ChromeEvent exec_e = events.back();
      exec_e.ph = "e";
      exec_e.ts_us = span.complete_s * kUsPerSecond;
      events.push_back(std::move(exec_e));
    }

    ChromeEvent end;
    end.name = WorkloadName(meta, span.workload);
    end.cat = "request";
    end.ph = "e";
    end.ts_us = span.complete_s * kUsPerSecond;
    end.pid = kRequestsPid;
    end.tid = span.workload;
    end.id = id;
    end.args["batch"] = Json(span.batch_index);
    end.args["replica"] = Json(span.replica);
    end.args["batch_size"] = Json(span.batch_size);
    if (span.close != BatchClose::kNone) {
      end.args["close"] = Json(CloseName(span.close));
    }
    events.push_back(std::move(end));
  }
  return events;
}

std::string SerializeChromeTrace(const std::vector<ChromeEvent>& events) {
  JsonArray entries;
  entries.reserve(events.size());
  for (const ChromeEvent& event : events) {
    JsonObject entry;
    entry["name"] = Json(event.name);
    entry["ph"] = Json(event.ph);
    entry["pid"] = Json(event.pid);
    entry["tid"] = Json(event.tid);
    entry["ts"] = Json(event.ts_us);
    if (!event.cat.empty()) {
      entry["cat"] = Json(event.cat);
    }
    if (event.dur_us >= 0.0) {
      entry["dur"] = Json(event.dur_us);
    }
    if (!event.id.empty()) {
      entry["id"] = Json(event.id);
    }
    if (!event.scope.empty()) {
      entry["s"] = Json(event.scope);
    }
    if (!event.args.empty()) {
      entry["args"] = Json(event.args);
    }
    entries.push_back(Json(std::move(entry)));
  }
  JsonObject root;
  root["displayTimeUnit"] = Json("ms");
  root["traceEvents"] = Json(std::move(entries));
  return Json(std::move(root)).Dump(0);
}

std::vector<ChromeEvent> ParseChromeTrace(std::string_view text) {
  const Json root = Json::Parse(text);
  const JsonArray& entries = root.At("traceEvents").AsArray();
  std::vector<ChromeEvent> events;
  events.reserve(entries.size());
  for (const Json& entry : entries) {
    ChromeEvent event;
    event.name = entry.At("name").AsString();
    event.ph = entry.At("ph").AsString();
    event.pid = static_cast<int>(entry.At("pid").AsInt());
    event.tid = static_cast<int>(entry.At("tid").AsInt());
    event.ts_us = entry.At("ts").AsDouble();
    event.cat = entry.GetStringOr("cat", "");
    event.dur_us = entry.GetNumberOr("dur", -1.0);
    event.id = entry.GetStringOr("id", "");
    event.scope = entry.GetStringOr("s", "");
    if (entry.Contains("args")) {
      event.args = entry.At("args").AsObject();
    }
    events.push_back(std::move(event));
  }
  return events;
}

// --------------------------------------------------------------- binary

namespace {

// "NSFT" packed little-endian.
constexpr std::uint32_t kMagic = 'N' | ('S' << 8) | ('F' << 16) |
                                 (static_cast<std::uint32_t>('T') << 24);
constexpr std::uint32_t kVersion = 1;

class Writer {
 public:
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void I64(std::int64_t v) {
    const auto u = static_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((u >> (8 * i)) & 0xff));
    }
  }
  void F64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    I64(static_cast<std::int64_t>(bits));
  }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::uint32_t U32() {
    Need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::int64_t I64() {
    Need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return static_cast<std::int64_t>(v);
  }
  double F64() {
    const auto bits = static_cast<std::uint64_t>(I64());
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string Str() {
    const std::uint32_t n = U32();
    Need(n);
    std::string s(bytes_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  void Need(std::size_t n) {
    NSF_CHECK_MSG(pos_ + n <= bytes_.size(), "truncated binary trace");
  }
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string SerializeBinaryTrace(const TraceData& data) {
  Writer w;
  w.U32(kMagic);
  w.U32(kVersion);
  w.I64(static_cast<std::int64_t>(data.requests.size()));
  w.I64(static_cast<std::int64_t>(data.batches.size()));
  w.I64(static_cast<std::int64_t>(data.instants.size()));
  w.I64(static_cast<std::int64_t>(data.counters.size()));
  w.I64(data.dropped);
  for (const RequestSpan& r : data.requests) {
    w.I64(r.request_id);
    w.U32(static_cast<std::uint32_t>(r.workload));
    w.U32(static_cast<std::uint32_t>(r.close));
    w.F64(r.arrival_s);
    w.F64(r.formed_s);
    w.F64(r.start_s);
    w.F64(r.complete_s);
    w.I64(r.batch_index);
    w.U32(static_cast<std::uint32_t>(r.replica));
    w.U32(static_cast<std::uint32_t>(r.batch_size));
    w.I64(r.seq);
  }
  for (const BatchSpan& b : data.batches) {
    w.I64(b.batch_index);
    w.U32(static_cast<std::uint32_t>(b.workload));
    w.U32(static_cast<std::uint32_t>(b.replica));
    w.U32(static_cast<std::uint32_t>(b.close));
    w.F64(b.formed_s);
    w.F64(b.start_s);
    w.F64(b.complete_s);
    w.I64(b.size);
    w.I64(b.seq);
  }
  for (const InstantEvent& e : data.instants) {
    w.F64(e.t_s);
    w.U32(static_cast<std::uint32_t>(e.kind));
    w.U32(static_cast<std::uint32_t>(e.replica));
    w.U32(static_cast<std::uint32_t>(e.workload));
    w.Str(e.detail);
    w.I64(e.seq);
  }
  for (const CounterSample& c : data.counters) {
    w.F64(c.t_s);
    w.F64(c.window_rate_rps);
    w.U32(static_cast<std::uint32_t>(c.active_replicas));
    w.I64(c.queue_depth);
    w.I64(c.seq);
  }
  return w.Take();
}

TraceData ParseBinaryTrace(std::string_view bytes) {
  Reader r(bytes);
  const std::uint32_t magic = r.U32();
  NSF_CHECK_MSG(magic == kMagic, "not a binary nsflow trace (bad magic)");
  const std::uint32_t version = r.U32();
  NSF_CHECK_MSG(version == kVersion, "unsupported binary trace version " +
                                         std::to_string(version));
  TraceData data;
  const auto requests = static_cast<std::size_t>(r.I64());
  const auto batches = static_cast<std::size_t>(r.I64());
  const auto instants = static_cast<std::size_t>(r.I64());
  const auto counters = static_cast<std::size_t>(r.I64());
  data.dropped = r.I64();
  data.requests.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    RequestSpan s;
    s.request_id = r.I64();
    s.workload = static_cast<std::int32_t>(r.U32());
    s.close = static_cast<BatchClose>(r.U32());
    s.arrival_s = r.F64();
    s.formed_s = r.F64();
    s.start_s = r.F64();
    s.complete_s = r.F64();
    s.batch_index = r.I64();
    s.replica = static_cast<std::int32_t>(r.U32());
    s.batch_size = static_cast<std::int32_t>(r.U32());
    s.seq = r.I64();
    data.requests.push_back(s);
  }
  data.batches.reserve(batches);
  for (std::size_t i = 0; i < batches; ++i) {
    BatchSpan b;
    b.batch_index = r.I64();
    b.workload = static_cast<std::int32_t>(r.U32());
    b.replica = static_cast<std::int32_t>(r.U32());
    b.close = static_cast<BatchClose>(r.U32());
    b.formed_s = r.F64();
    b.start_s = r.F64();
    b.complete_s = r.F64();
    b.size = r.I64();
    b.seq = r.I64();
    data.batches.push_back(b);
  }
  data.instants.reserve(instants);
  for (std::size_t i = 0; i < instants; ++i) {
    InstantEvent e;
    e.t_s = r.F64();
    e.kind = static_cast<InstantKind>(r.U32());
    e.replica = static_cast<std::int32_t>(r.U32());
    e.workload = static_cast<std::int32_t>(r.U32());
    e.detail = r.Str();
    e.seq = r.I64();
    data.instants.push_back(std::move(e));
  }
  data.counters.reserve(counters);
  for (std::size_t i = 0; i < counters; ++i) {
    CounterSample c;
    c.t_s = r.F64();
    c.window_rate_rps = r.F64();
    c.active_replicas = static_cast<std::int32_t>(r.U32());
    c.queue_depth = r.I64();
    c.seq = r.I64();
    data.counters.push_back(c);
  }
  NSF_CHECK_MSG(r.AtEnd(), "trailing bytes after binary trace");
  return data;
}

}  // namespace nsflow::obs
