#include "serve/adversity.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <tuple>
#include <utility>

#include "common/error.h"
#include "common/rng.h"

namespace nsflow::serve {
namespace {

struct KindInfo {
  AdversityKind kind;
  const char* name;
  // Parameter keys this pattern accepts (nullptr-terminated).
  const char* keys[7];
};

constexpr KindInfo kKinds[] = {
    {AdversityKind::kNone, "none", {nullptr}},
    {AdversityKind::kReplicaFail,
     "replica-fail",
     {"at", "down", "replica", "count", "warmup", "node", nullptr}},
    {AdversityKind::kStraggler,
     "straggler",
     {"at", "duration", "factor", "replica", "count", nullptr}},
    {AdversityKind::kChurn, "churn", {"at", "down", "workload", nullptr}},
    {AdversityKind::kFlash, "flash", {"at", "width", "mult", nullptr}},
};

const KindInfo& InfoFor(AdversityKind kind) {
  for (const KindInfo& info : kKinds) {
    if (info.kind == kind) {
      return info;
    }
  }
  throw Error("unknown adversity kind");
}

std::string KnownPatternNames() {
  std::string names;
  for (const KindInfo& info : kKinds) {
    names += (names.empty() ? "" : ", ") + std::string(info.name);
  }
  return names;
}

bool IsIntegral(double value) { return value == std::floor(value); }

}  // namespace

AdversitySpec AdversitySpec::Parse(const std::string& text) {
  AdversitySpec spec;
  const std::size_t colon = text.find(':');
  const std::string name = text.substr(0, colon);
  bool known = false;
  for (const KindInfo& info : kKinds) {
    if (name == info.name) {
      spec.kind = info.kind;
      known = true;
      break;
    }
  }
  if (!known) {
    throw Error("unknown adversity pattern '" + name +
                "' (known: " + KnownPatternNames() + ")");
  }

  std::size_t start = colon == std::string::npos ? text.size() : colon + 1;
  while (start < text.size()) {
    std::size_t end = text.find(',', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string entry = text.substr(start, end - start);
    const std::size_t eq = entry.find('=');
    if (entry.empty() || eq == std::string::npos || eq == 0) {
      throw Error("bad adversity parameter '" + entry +
                  "' (expected key=value)");
    }
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    const KindInfo& info = InfoFor(spec.kind);
    bool accepted = false;
    for (const char* const* k = info.keys; *k != nullptr; ++k) {
      if (key == *k) {
        accepted = true;
        break;
      }
    }
    if (!accepted) {
      std::string keys;
      for (const char* const* k = info.keys; *k != nullptr; ++k) {
        keys += (keys.empty() ? "" : ", ") + std::string(*k);
      }
      throw Error("adversity pattern '" + std::string(info.name) +
                  "' has no parameter '" + key + "'" +
                  (keys.empty() ? "" : " (known: " + keys + ")"));
    }
    try {
      spec.params[key] = std::stod(value);
    } catch (const std::exception&) {
      throw Error("bad numeric value for adversity parameter '" + key +
                  "': '" + value + "'");
    }
    start = end + 1;
  }

  // Range validation of the provided parameters (defaults are always
  // valid; duration-relative defaults are resolved at timeline build time).
  const auto require = [&](bool ok, const char* message) {
    if (!ok) {
      throw Error("adversity '" + spec.Name() + "': " + message);
    }
  };
  switch (spec.kind) {
    case AdversityKind::kReplicaFail:
      require(spec.Param("at", 0.0) >= 0.0, "at must be non-negative");
      require(spec.Param("down", 1.0) > 0.0, "down must be positive");
      require(spec.Param("warmup", 0.0) >= 0.0,
              "warmup must be non-negative");
      require(spec.Param("count", 1.0) >= 1.0 &&
                  IsIntegral(spec.Param("count", 1.0)),
              "count must be a positive integer");
      require(spec.Param("replica", -1.0) >= -1.0 &&
                  IsIntegral(spec.Param("replica", -1.0)),
              "replica must be an integer >= -1 (-1 picks the busiest)");
      require(spec.Param("node", -1.0) >= -1.0 &&
                  IsIntegral(spec.Param("node", -1.0)),
              "node must be an integer >= -1 (-1 targets replicas, not a "
              "cluster node)");
      break;
    case AdversityKind::kStraggler:
      require(spec.Param("at", 0.0) >= 0.0, "at must be non-negative");
      require(spec.Param("duration", 1.0) > 0.0,
              "duration must be positive");
      require(spec.Param("factor", 2.0) >= 1.0,
              "factor must be >= 1 (a clock derate slows, never speeds up)");
      require(spec.Param("count", 1.0) >= 1.0 &&
                  IsIntegral(spec.Param("count", 1.0)),
              "count must be a positive integer");
      require(spec.Param("replica", -1.0) >= -1.0 &&
                  IsIntegral(spec.Param("replica", -1.0)),
              "replica must be an integer >= -1 (-1 picks the busiest)");
      break;
    case AdversityKind::kChurn:
      require(spec.Param("at", 0.0) >= 0.0, "at must be non-negative");
      require(spec.Param("down", 1.0) > 0.0, "down must be positive");
      require(spec.Param("workload", 0.0) >= 0.0 &&
                  IsIntegral(spec.Param("workload", 0.0)),
              "workload must be a non-negative integer id");
      break;
    case AdversityKind::kFlash:
      require(spec.Param("at", 0.0) >= 0.0, "at must be non-negative");
      require(spec.Param("width", 1.0) > 0.0, "width must be positive");
      require(spec.Param("mult", 3.0) >= 1.0, "mult must be >= 1");
      break;
    case AdversityKind::kNone:
      break;
  }
  return spec;
}

std::string AdversitySpec::Name() const { return InfoFor(kind).name; }

std::string AdversitySpec::ToString() const {
  std::string out = Name();
  char sep = ':';
  for (const auto& [key, value] : params) {
    out += sep;
    sep = ',';
    // Shortest form that parses back to the same double (same canonical
    // printing as ScenarioSpec::ToString — report JSON records it).
    char buf[64];
    if (value == std::floor(value) && std::fabs(value) < 1e15) {
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    } else {
      for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
        if (std::strtod(buf, nullptr) == value) {
          break;
        }
      }
    }
    out += key + "=" + buf;
  }
  return out;
}

double AdversitySpec::Param(const std::string& key, double fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

std::vector<AdversityEvent> BuildAdversityTimeline(const AdversitySpec& spec,
                                                   double duration_s) {
  NSF_CHECK_MSG(duration_s > 0.0, "adversity timeline needs a positive run");
  std::vector<AdversityEvent> events;
  switch (spec.kind) {
    case AdversityKind::kNone:
      break;
    case AdversityKind::kReplicaFail: {
      const double at = spec.Param("at", 0.25 * duration_s);
      const double down = spec.Param("down", 0.25 * duration_s);
      const double warmup = spec.Param("warmup", 0.05);
      const int count = static_cast<int>(spec.Param("count", 1.0));
      const int replica = static_cast<int>(spec.Param("replica", -1.0));
      const int node = static_cast<int>(spec.Param("node", -1.0));
      if (node >= 0) {
        // Whole-node outage: one event carrying the node id; the engine
        // expands it to every replica pinned there at fire time (so
        // autoscaler-added replicas on the node fail too). `count` and
        // `replica` are meaningless alongside `node`.
        AdversityEvent e;
        e.t_s = at;
        e.kind = AdversityEventKind::kReplicaFail;
        e.node = node;
        e.until_s = at + down;
        e.warmup_s = warmup;
        events.push_back(e);
        break;
      }
      for (int i = 0; i < count; ++i) {
        AdversityEvent e;
        e.t_s = at;
        e.kind = AdversityEventKind::kReplicaFail;
        // An explicit target fans out to consecutive ids; -1 resolves to
        // the busiest eligible replica per event (already-failed replicas
        // are ineligible, so simultaneous events pick distinct targets).
        e.replica = replica < 0 ? -1 : replica + i;
        e.until_s = at + down;
        e.warmup_s = warmup;
        events.push_back(e);
      }
      break;
    }
    case AdversityKind::kStraggler: {
      const double at = spec.Param("at", 0.25 * duration_s);
      const double window = spec.Param("duration", 0.5 * duration_s);
      const double factor = spec.Param("factor", 2.0);
      const int count = static_cast<int>(spec.Param("count", 1.0));
      const int replica = static_cast<int>(spec.Param("replica", -1.0));
      for (int i = 0; i < count; ++i) {
        AdversityEvent e;
        e.t_s = at;
        e.kind = AdversityEventKind::kDerateStart;
        e.replica = replica < 0 ? -1 : replica + i;
        e.factor = factor;
        e.until_s = at + window;
        events.push_back(e);
      }
      break;
    }
    case AdversityKind::kChurn: {
      const double at = spec.Param("at", 0.3 * duration_s);
      const double down = spec.Param("down", 0.4 * duration_s);
      const WorkloadId workload =
          static_cast<WorkloadId>(spec.Param("workload", 0.0));
      AdversityEvent leave;
      leave.t_s = at;
      leave.kind = AdversityEventKind::kChurnLeave;
      leave.workload = workload;
      leave.until_s = at + down;
      events.push_back(leave);
      AdversityEvent rejoin;
      rejoin.t_s = at + down;
      rejoin.kind = AdversityEventKind::kChurnRejoin;
      rejoin.workload = workload;
      events.push_back(rejoin);
      break;
    }
    case AdversityKind::kFlash: {
      const double at = spec.Param("at", 0.4 * duration_s);
      const double width = spec.Param("width", 0.1 * duration_s);
      const double mult = spec.Param("mult", 3.0);
      AdversityEvent open;
      open.t_s = at;
      open.kind = AdversityEventKind::kFlashStart;
      open.factor = mult;
      open.until_s = at + width;
      events.push_back(open);
      AdversityEvent close;
      close.t_s = at + width;
      close.kind = AdversityEventKind::kFlashEnd;
      events.push_back(close);
      break;
    }
  }
  // Start events at or past the horizon can never fire; end events past it
  // simply stay unfired (the pool clamps dead time to the horizon itself).
  events.erase(std::remove_if(events.begin(), events.end(),
                              [&](const AdversityEvent& e) {
                                return e.t_s >= duration_s;
                              }),
               events.end());
  std::stable_sort(events.begin(), events.end(),
                   [](const AdversityEvent& a, const AdversityEvent& b) {
                     return a.t_s < b.t_s;
                   });
  return events;
}

void ApplyAdversityArrivals(const AdversitySpec& spec,
                            std::vector<Request>* arrivals, double qps,
                            double duration_s, std::uint64_t seed,
                            const std::vector<double>& shares) {
  NSF_CHECK(arrivals != nullptr);
  switch (spec.kind) {
    case AdversityKind::kNone:
    case AdversityKind::kReplicaFail:
    case AdversityKind::kStraggler:
      return;  // Replica-side patterns leave the trace bit-identical.
    case AdversityKind::kChurn: {
      const double at = spec.Param("at", 0.3 * duration_s);
      const double down = spec.Param("down", 0.4 * duration_s);
      const WorkloadId workload =
          static_cast<WorkloadId>(spec.Param("workload", 0.0));
      NSF_CHECK_MSG(
          workload < static_cast<WorkloadId>(shares.size()),
          "churn workload index out of range for this mix");
      arrivals->erase(
          std::remove_if(arrivals->begin(), arrivals->end(),
                         [&](const Request& r) {
                           return r.workload == workload &&
                                  r.arrival_s >= at &&
                                  r.arrival_s < at + down;
                         }),
          arrivals->end());
      break;
    }
    case AdversityKind::kFlash: {
      const double at = spec.Param("at", 0.4 * duration_s);
      const double width = spec.Param("width", 0.1 * duration_s);
      const double mult = spec.Param("mult", 3.0);
      const double lo = std::min(at, duration_s);
      const double hi = std::min(at + width, duration_s);
      double total_share = 0.0;
      for (const double share : shares) {
        NSF_CHECK_MSG(share >= 0.0, "workload shares must be non-negative");
        total_share += share;
      }
      NSF_CHECK_MSG(total_share > 0.0, "at least one share must be positive");
      // Superimposed Poisson: rate(flash) = mult*rate(base), and the sum of
      // independent Poisson streams is Poisson, so drawing the extra
      // (mult-1)*qps*share arrivals from a dedicated derived-seed stream
      // leaves the base trace bit-untouched while hitting the target rate.
      Rng rng(seed ^ 0x9E3779B97F4A7C15ULL);
      std::vector<Request> extra;
      for (std::size_t w = 0; w < shares.size(); ++w) {
        const double rate = (mult - 1.0) * qps * shares[w] / total_share;
        if (rate <= 0.0) {
          continue;
        }
        double now = lo;
        while (true) {
          now += -std::log(1.0 - rng.Uniform()) / rate;
          if (now >= hi) {
            break;
          }
          extra.push_back(Request{0, now, static_cast<WorkloadId>(w)});
        }
      }
      std::stable_sort(extra.begin(), extra.end(),
                       [](const Request& a, const Request& b) {
                         return std::tie(a.arrival_s, a.workload) <
                                std::tie(b.arrival_s, b.workload);
                       });
      std::vector<Request> merged;
      merged.reserve(arrivals->size() + extra.size());
      // Base arrivals win ties so the unperturbed prefix stays in order.
      std::merge(arrivals->begin(), arrivals->end(), extra.begin(),
                 extra.end(),
                 std::back_inserter(merged),
                 [](const Request& a, const Request& b) {
                   return a.arrival_s < b.arrival_s;
                 });
      *arrivals = std::move(merged);
      break;
    }
  }
  // The trace changed — re-densify ids to 0..n-1 in time order (engine
  // invariants: ids are the arrival index).
  for (std::size_t i = 0; i < arrivals->size(); ++i) {
    (*arrivals)[i].id = static_cast<std::int64_t>(i);
  }
}

}  // namespace nsflow::serve
