#include "serve/batch_former.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.h"
#include "obs/metrics.h"

namespace nsflow::serve {

BatchFormer::BatchFormer(BatchPolicy policy) : policy_(policy) {
  NSF_CHECK_MSG(policy_.max_batch >= 1, "max_batch must be positive");
  NSF_CHECK_MSG(policy_.max_wait_s >= 0.0, "max_wait_s must be non-negative");
}

Batch BatchFormer::CloseAt(double formed_s, BatchCloseReason reason) {
  Batch batch;
  batch.requests = std::move(pending_);
  batch.formed_s = formed_s;
  batch.close_reason = reason;
  pending_.clear();
  return batch;
}

std::optional<Batch> BatchFormer::Add(const Request& request,
                                      double busy_until) {
  std::optional<Batch> closed;
  // The pending batch's wait clock may have expired before this arrival:
  // close it at its effective deadline — stretched to `busy_until` while no
  // server could take it anyway — so its requests are not delayed by a lull
  // in the arrival process.
  const double effective_deadline = std::max(Deadline(), busy_until);
  if (!pending_.empty() && request.arrival_s >= effective_deadline) {
    closed = CloseAt(effective_deadline, BatchCloseReason::kDeadline);
  }
  pending_.push_back(request);
  if (static_cast<std::int64_t>(pending_.size()) >= policy_.max_batch) {
    NSF_CHECK_MSG(!closed.has_value(),
                  "a single arrival cannot close two batches");
    return CloseAt(request.arrival_s, BatchCloseReason::kSizeCap);
  }
  return closed;
}

std::optional<Batch> BatchFormer::Flush(double now) {
  if (pending_.empty()) {
    return std::nullopt;
  }
  // Close no later than the wait deadline and no earlier than the newest
  // pending arrival (a batch cannot form before its requests exist).
  const double formed =
      std::max(pending_.back().arrival_s, std::min(now, Deadline()));
  return CloseAt(formed, BatchCloseReason::kFlush);
}

double BatchFormer::Deadline() const {
  if (pending_.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  return pending_.front().arrival_s + policy_.max_wait_s;
}

// ---------------------------------------------------------------------------
// MultiBatchFormer

MultiBatchFormer::MultiBatchFormer(BatchPolicy policy, int workloads)
    : MultiBatchFormer(std::vector<BatchPolicy>(
          static_cast<std::size_t>(std::max(workloads, 1)), policy)) {
  NSF_CHECK_MSG(workloads >= 1, "need at least one workload lane");
}

MultiBatchFormer::MultiBatchFormer(std::vector<BatchPolicy> policies)
    : policies_(std::move(policies)) {
  NSF_CHECK_MSG(!policies_.empty(), "need at least one workload lane");
  for (const BatchPolicy& policy : policies_) {
    NSF_CHECK_MSG(policy.max_batch >= 1, "max_batch must be positive");
    NSF_CHECK_MSG(policy.max_wait_s >= 0.0,
                  "max_wait_s must be non-negative");
  }
  lanes_.resize(policies_.size());
  lane_priority_.assign(policies_.size(), 0);
}

Batch MultiBatchFormer::CloseLane(WorkloadId w, double formed_s,
                                  BatchCloseReason reason) {
  auto& lane = lanes_[static_cast<std::size_t>(w)];
  Batch batch;
  batch.requests = std::move(lane);
  batch.formed_s = formed_s;
  batch.workload = w;
  batch.close_reason = reason;
  lane.clear();
  if (!spares_.empty()) {
    // The move above surrendered the lane's capacity to the batch; refill
    // it from the recycled stash so steady-state forming never grows a
    // vector (docs/ENGINE.md's allocation contract).
    lane = std::move(spares_.back());
    spares_.pop_back();
  }
  switch (reason) {
    case BatchCloseReason::kSizeCap:
      if (close_size_cap_ != nullptr) close_size_cap_->Increment();
      break;
    case BatchCloseReason::kDeadline:
      if (close_deadline_ != nullptr) close_deadline_->Increment();
      break;
    case BatchCloseReason::kFlush:
      if (close_flush_ != nullptr) close_flush_->Increment();
      break;
    case BatchCloseReason::kNone:
      break;
  }
  return batch;
}

std::vector<WorkloadId> MultiBatchFormer::ExpiredLanes(
    double now, const std::vector<double>& busy_until) const {
  std::vector<WorkloadId> expired;
  for (int w = 0; w < workloads(); ++w) {
    const auto& lane = lanes_[static_cast<std::size_t>(w)];
    if (lane.empty()) {
      continue;
    }
    const double busy = static_cast<std::size_t>(w) < busy_until.size()
                            ? busy_until[static_cast<std::size_t>(w)]
                            : 0.0;
    if (now >= std::max(Deadline(w), busy)) {
      expired.push_back(w);
    }
  }
  // Lane priority first (critical preempts batch under admission tiers),
  // then oldest head-of-line; workload id breaks exact ties. With all
  // priorities at the default 0 this is the legacy fairness order.
  std::sort(expired.begin(), expired.end(),
            [this](WorkloadId a, WorkloadId b) {
              const int pa = lane_priority_[static_cast<std::size_t>(a)];
              const int pb = lane_priority_[static_cast<std::size_t>(b)];
              if (pa != pb) {
                return pa < pb;
              }
              const double ha = lanes_[static_cast<std::size_t>(a)].front()
                                    .arrival_s;
              const double hb = lanes_[static_cast<std::size_t>(b)].front()
                                    .arrival_s;
              return ha != hb ? ha < hb : a < b;
            });
  return expired;
}

std::vector<Batch> MultiBatchFormer::Add(
    const Request& request, const std::vector<double>& busy_until) {
  NSF_CHECK_MSG(request.workload >= 0 && request.workload < workloads(),
                "request targets an unregistered workload lane");
  std::vector<Batch> closed;
  // This arrival proves virtual time reached `request.arrival_s`: every lane
  // whose effective deadline (stretched to its busy horizon) has passed
  // closes at that deadline, not at the arrival — a lull in one workload's
  // traffic must not delay another workload's formed batch.
  for (const WorkloadId w : ExpiredLanes(request.arrival_s, busy_until)) {
    const double busy = static_cast<std::size_t>(w) < busy_until.size()
                            ? busy_until[static_cast<std::size_t>(w)]
                            : 0.0;
    closed.push_back(CloseLane(w, std::max(Deadline(w), busy),
                               BatchCloseReason::kDeadline));
  }
  auto& lane = lanes_[static_cast<std::size_t>(request.workload)];
  lane.push_back(request);
  if (static_cast<std::int64_t>(lane.size()) >=
      policy(request.workload).max_batch) {
    closed.push_back(CloseLane(request.workload, request.arrival_s,
                               BatchCloseReason::kSizeCap));
  }
  return closed;
}

std::vector<Batch> MultiBatchFormer::Flush(double now) {
  std::vector<WorkloadId> order;
  for (int w = 0; w < workloads(); ++w) {
    if (!lanes_[static_cast<std::size_t>(w)].empty()) {
      order.push_back(w);
    }
  }
  std::sort(order.begin(), order.end(), [this](WorkloadId a, WorkloadId b) {
    const int pa = lane_priority_[static_cast<std::size_t>(a)];
    const int pb = lane_priority_[static_cast<std::size_t>(b)];
    if (pa != pb) {
      return pa < pb;
    }
    const double ha = lanes_[static_cast<std::size_t>(a)].front().arrival_s;
    const double hb = lanes_[static_cast<std::size_t>(b)].front().arrival_s;
    return ha != hb ? ha < hb : a < b;
  });
  std::vector<Batch> closed;
  for (const WorkloadId w : order) {
    // Same clamp as BatchFormer::Flush: no later than the lane's deadline,
    // no earlier than its newest pending arrival.
    const double formed =
        std::max(lanes_[static_cast<std::size_t>(w)].back().arrival_s,
                 std::min(now, Deadline(w)));
    closed.push_back(CloseLane(w, formed, BatchCloseReason::kFlush));
  }
  return closed;
}

double MultiBatchFormer::Deadline(WorkloadId w) const {
  NSF_CHECK(w >= 0 && w < workloads());
  const auto& lane = lanes_[static_cast<std::size_t>(w)];
  if (lane.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  return lane.front().arrival_s + policy(w).max_wait_s;
}

void MultiBatchFormer::SetPolicy(WorkloadId w, BatchPolicy policy) {
  NSF_CHECK(w >= 0 && w < workloads());
  NSF_CHECK_MSG(policy.max_batch >= 1, "max_batch must be positive");
  NSF_CHECK_MSG(policy.max_wait_s >= 0.0, "max_wait_s must be non-negative");
  policies_[static_cast<std::size_t>(w)] = policy;
}

void MultiBatchFormer::SetLanePriority(WorkloadId w, int priority) {
  NSF_CHECK(w >= 0 && w < workloads());
  lane_priority_[static_cast<std::size_t>(w)] = priority;
}

std::int64_t MultiBatchFormer::pending(WorkloadId w) const {
  NSF_CHECK(w >= 0 && w < workloads());
  return static_cast<std::int64_t>(lanes_[static_cast<std::size_t>(w)].size());
}

void MultiBatchFormer::AttachMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    close_size_cap_ = nullptr;
    close_deadline_ = nullptr;
    close_flush_ = nullptr;
    return;
  }
  close_size_cap_ = registry->GetCounter("former.close_size_cap");
  close_deadline_ = registry->GetCounter("former.close_deadline");
  close_flush_ = registry->GetCounter("former.close_flush");
}

void MultiBatchFormer::Recycle(std::vector<Request>&& storage) {
  if (storage.capacity() == 0) {
    return;
  }
  // Bound the stash at one spare per lane — enough to cover the worst
  // case of every lane closing at one arrival, without hoarding capacity
  // from a transient burst forever.
  if (spares_.size() >= lanes_.size()) {
    return;
  }
  storage.clear();
  spares_.push_back(std::move(storage));
}

std::int64_t MultiBatchFormer::total_pending() const {
  std::int64_t total = 0;
  for (const auto& lane : lanes_) {
    total += static_cast<std::int64_t>(lane.size());
  }
  return total;
}

}  // namespace nsflow::serve
