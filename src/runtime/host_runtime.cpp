#include "runtime/host_runtime.h"

#include <algorithm>

#include "common/error.h"
#include "vsa/block_code.h"

namespace nsflow::runtime {

BufferObject::BufferObject(arch::MemorySystem* memory, std::int64_t bytes)
    : memory_(memory), bytes_(bytes) {
  NSF_CHECK_MSG(bytes >= 0, "buffer size must be non-negative");
}

double BufferObject::SyncToDevice() {
  return memory_->DramTransfer(static_cast<double>(bytes_));
}

double BufferObject::SyncFromDevice() {
  return memory_->DramTransfer(static_cast<double>(bytes_));
}

Accelerator::Accelerator(AcceleratorDesign design, const DataflowGraph& dfg)
    : design_(std::move(design)), dfg_(&dfg), controller_(design_, dfg) {}

BufferObject Accelerator::AllocBuffer(std::int64_t bytes) {
  return BufferObject(&controller_.memory(), bytes);
}

KernelRun Accelerator::RunGemm(const Tensor& a, const Tensor& b) {
  auto& array = controller_.array();
  // Interactive kernels run on the full array in NN fold if no schedule has
  // pinned a split (matches XRT's exclusive kernel-compute-unit access).
  if (array.folding().nn_subarrays == 0) {
    array.Fold({design_.array.count, 0});
  }
  const auto run = array.RunGemm(a, b, array.folding().nn_subarrays);
  return {run.output, run.cycles};
}

BatchedKernelRun Accelerator::RunGemmBatched(const std::vector<Tensor>& as,
                                             const Tensor& b) {
  NSF_CHECK_MSG(!as.empty(), "batched GEMM needs at least one request");
  const std::int64_t inner = b.dim(0);
  std::int64_t total_rows = 0;
  for (const auto& a : as) {
    NSF_CHECK_MSG(a.rank() == 2 && a.dim(1) == inner,
                  "batched GEMM operands must share the inner dimension");
    total_rows += a.dim(0);
  }

  // Stack the per-request activations into one tall operand so the array
  // sees a single streaming pass over the stationary weights. The staging
  // buffer is a member so steady-state serving (same batch shape every
  // call) re-fills it in place instead of reallocating per batch.
  if (batch_stack_.rank() != 2 || batch_stack_.dim(0) != total_rows ||
      batch_stack_.dim(1) != inner) {
    batch_stack_ = Tensor({total_rows, inner});
  }
  std::int64_t row = 0;
  for (const auto& a : as) {
    std::copy(a.data(), a.data() + a.numel(),
              batch_stack_.data() + row * inner);
    row += a.dim(0);
  }

  auto& array = controller_.array();
  if (array.folding().nn_subarrays == 0) {
    array.Fold({design_.array.count, 0});
  }
  const auto run =
      array.RunGemm(batch_stack_, b, array.folding().nn_subarrays);

  BatchedKernelRun result;
  result.device_cycles = run.cycles;
  result.outputs.reserve(as.size());
  const std::int64_t out_cols = b.dim(1);
  row = 0;
  for (const auto& a : as) {
    const std::int64_t rows = a.dim(0);
    Tensor out({rows, out_cols});
    std::copy(run.output.data() + row * out_cols,
              run.output.data() + (row + rows) * out_cols, out.data());
    result.outputs.push_back(std::move(out));
    row += rows;
  }
  return result;
}

KernelRun Accelerator::RunBind(const vsa::HyperVector& a,
                               const vsa::HyperVector& b) {
  auto& array = controller_.array();
  if (array.folding().vsa_subarrays == 0) {
    array.Fold({0, design_.array.count});
  }
  const auto run = array.RunCircConvBatch(a.tensor(), b.tensor(),
                                          array.folding().vsa_subarrays);
  return {run.output, run.cycles};
}

KernelRun Accelerator::RunUnbind(const vsa::HyperVector& composite,
                                 const vsa::HyperVector& factor) {
  // corr(c, f) = conv(involution(f), c): reuse the binding datapath with the
  // index-reversed factor — exactly how the hardware implements inverse
  // binding (no dedicated correlation mode needed).
  const vsa::HyperVector inv = vsa::Involution(factor);
  return RunBind(inv, composite);
}

KernelRun Accelerator::RunSoftmax(const Tensor& logits) {
  Tensor out = logits;
  auto& simd = controller_.simd();
  const auto run = simd.RunUnary(
      arch::SimdOp::kSoftmax,
      std::span<float>(out.data(), static_cast<std::size_t>(out.numel())));
  return {std::move(out), run.cycles};
}

double Accelerator::RunWorkload() { return controller_.RunWorkload(); }

double Accelerator::RunWorkloadBatch(int batch_size) {
  return controller_.RunWorkloadBatch(batch_size);
}

double Accelerator::EstimateWorkload() const {
  return controller_.EstimateWorkload();
}

double Accelerator::EstimateWorkloadBatch(int batch_size) const {
  return controller_.EstimateWorkloadBatch(batch_size);
}

arch::SimReport Accelerator::ProfileLoop() { return controller_.RunLoop(); }

arch::SimReport Accelerator::EstimateLoop() const {
  return controller_.EstimateLoop();
}

}  // namespace nsflow::runtime
