// Tests for NSFlow-Serve: batch forming, queue FIFO semantics, stat
// percentiles, batched cycle accounting, and multi-replica dispatch
// determinism under a fixed RNG seed.
#include <gtest/gtest.h>

#include <thread>

#include "common/rng.h"
#include "dse/dse.h"
#include "nsflow/framework.h"
#include "runtime/host_runtime.h"
#include "serve/batch_former.h"
#include "serve/engine.h"
#include "serve/request_queue.h"
#include "serve/serve_stats.h"
#include "serve/server_pool.h"
#include "workloads/builders.h"

namespace nsflow::serve {
namespace {

Request At(std::int64_t id, double arrival_s) { return Request{id, arrival_s}; }

// ---------------------------------------------------------------- former

TEST(BatchFormerTest, ClosesAtMaxBatchSize) {
  BatchFormer former(BatchPolicy{3, 1.0});
  EXPECT_FALSE(former.Add(At(0, 0.00)).has_value());
  EXPECT_FALSE(former.Add(At(1, 0.01)).has_value());
  const auto batch = former.Add(At(2, 0.02));
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->size(), 3);
  EXPECT_DOUBLE_EQ(batch->formed_s, 0.02);  // Closed by the last arrival.
  EXPECT_EQ(former.pending(), 0);
}

TEST(BatchFormerTest, ClosesAtMaxWaitDeadline) {
  BatchFormer former(BatchPolicy{8, 0.005});
  EXPECT_FALSE(former.Add(At(0, 0.000)).has_value());
  EXPECT_FALSE(former.Add(At(1, 0.001)).has_value());
  // Arrival after the oldest request's deadline closes the pending batch at
  // the deadline, not at the new arrival.
  const auto batch = former.Add(At(2, 0.050));
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->size(), 2);
  EXPECT_DOUBLE_EQ(batch->formed_s, 0.005);
  // The late request seeds the next batch.
  EXPECT_EQ(former.pending(), 1);
}

TEST(BatchFormerTest, PreservesFifoOrderWithinBatch) {
  BatchFormer former(BatchPolicy{4, 1.0});
  former.Add(At(10, 0.0));
  former.Add(At(11, 0.1));
  former.Add(At(12, 0.2));
  const auto batch = former.Add(At(13, 0.3));
  ASSERT_TRUE(batch.has_value());
  ASSERT_EQ(batch->size(), 4);
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(batch->requests[static_cast<std::size_t>(i)].id, 10 + i);
  }
}

TEST(BatchFormerTest, BusyPoolStretchesWaitDeadline) {
  BatchFormer former(BatchPolicy{8, 0.005});
  former.Add(At(0, 0.000));
  // Every replica is busy until t=0.100: arrivals past the nominal 5 ms
  // deadline keep accumulating instead of closing a tiny batch.
  EXPECT_FALSE(former.Add(At(1, 0.020), /*busy_until=*/0.100).has_value());
  EXPECT_FALSE(former.Add(At(2, 0.050), /*busy_until=*/0.100).has_value());
  // First arrival past the busy horizon closes the batch at that horizon.
  const auto batch = former.Add(At(3, 0.120), /*busy_until=*/0.100);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->size(), 3);
  EXPECT_DOUBLE_EQ(batch->formed_s, 0.100);
  EXPECT_EQ(former.pending(), 1);
}

TEST(BatchFormerTest, FlushDrainsTail) {
  BatchFormer former(BatchPolicy{8, 0.005});
  former.Add(At(0, 0.100));
  former.Add(At(1, 0.101));
  const auto tail = former.Flush(1.0);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->size(), 2);
  // Flush clamps to the wait deadline of the oldest request.
  EXPECT_DOUBLE_EQ(tail->formed_s, 0.105);
  EXPECT_FALSE(former.Flush(2.0).has_value());
}

// ----------------------------------------------------------------- queue

TEST(RequestQueueTest, FifoAcrossThreads) {
  RequestQueue queue;
  constexpr int kCount = 1000;
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      queue.Push(At(i, 1e-3 * i));
    }
    queue.Close();
  });
  std::int64_t expected = 0;
  while (auto request = queue.Pop()) {
    EXPECT_EQ(request->id, expected++);
  }
  producer.join();
  EXPECT_EQ(expected, kCount);
  EXPECT_TRUE(queue.closed());
  EXPECT_GE(queue.max_depth(), 1u);
}

TEST(RequestQueueTest, PushAfterCloseIsDropped) {
  RequestQueue queue;
  queue.Push(At(0, 0.0));
  queue.Close();
  EXPECT_FALSE(queue.Push(At(1, 0.1)));
  EXPECT_TRUE(queue.Pop().has_value());
  EXPECT_FALSE(queue.Pop().has_value());  // Closed and drained.
}

// ----------------------------------------------------------------- stats

TEST(ServeStatsTest, NearestRankPercentiles) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) {
    values.push_back(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(ServeStats::Percentile(values, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(ServeStats::Percentile(values, 95.0), 95.0);
  EXPECT_DOUBLE_EQ(ServeStats::Percentile(values, 99.0), 99.0);
  EXPECT_DOUBLE_EQ(ServeStats::Percentile(values, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(ServeStats::Percentile({5.0}, 99.0), 5.0);
  EXPECT_DOUBLE_EQ(ServeStats::Percentile({}, 50.0), 0.0);
}

TEST(ServeStatsTest, SummarizesLatencyAndUtilization) {
  ServeStats stats(2);
  stats.RecordRequest(0.0, 0.010);
  stats.RecordRequest(0.0, 0.020);
  stats.RecordRequest(0.0, 0.030);
  stats.RecordRequest(0.0, 0.040);
  stats.RecordBatch(4, 6);
  stats.RecordReplicaBusy(0, 0.02);
  stats.RecordReplicaBusy(1, 0.01);

  const StatsSummary s = stats.Summarize(100.0, 0.04);
  EXPECT_EQ(s.completed, 4);
  EXPECT_DOUBLE_EQ(s.p50_ms, 20.0);
  EXPECT_DOUBLE_EQ(s.p99_ms, 40.0);
  EXPECT_DOUBLE_EQ(s.mean_ms, 25.0);
  EXPECT_DOUBLE_EQ(s.throughput_rps, 100.0);
  EXPECT_DOUBLE_EQ(s.mean_batch, 4.0);
  EXPECT_EQ(s.max_queue_depth, 6);
  ASSERT_EQ(s.replica_utilization.size(), 2u);
  EXPECT_DOUBLE_EQ(s.replica_utilization[0], 0.5);
  EXPECT_DOUBLE_EQ(s.replica_utilization[1], 0.25);
  // The rendered table mentions the headline metrics.
  const std::string table = ServeStats::ToTable(s);
  EXPECT_NE(table.find("latency p99"), std::string::npos);
  EXPECT_NE(table.find("throughput"), std::string::npos);
}

// ------------------------------------------------------- batched kernels

struct Deployed {
  std::unique_ptr<OperatorGraph> graph;
  std::unique_ptr<DataflowGraph> dfg;
  DseResult dse;
};

Deployed CompileNvsa() {
  Deployed d;
  d.graph = std::make_unique<OperatorGraph>(workloads::MakeNvsa());
  d.dfg = std::make_unique<DataflowGraph>(*d.graph);
  d.dse = RunTwoPhaseDse(*d.dfg, {});
  return d;
}

TEST(BatchedKernelTest, GemmBatchMatchesGoldenAndAmortizesCycles) {
  const Deployed d = CompileNvsa();
  runtime::Accelerator accel(d.dse.design, *d.dfg);
  Rng rng(3);
  Tensor b({12, 6});
  for (std::int64_t i = 0; i < b.numel(); ++i) {
    b.at(i) = static_cast<float>(rng.Gaussian());
  }
  std::vector<Tensor> as;
  for (int r = 0; r < 4; ++r) {
    Tensor a({5, 12});
    for (std::int64_t i = 0; i < a.numel(); ++i) {
      a.at(i) = static_cast<float>(rng.Gaussian());
    }
    as.push_back(std::move(a));
  }

  const runtime::BatchedKernelRun batched = accel.RunGemmBatched(as, b);
  ASSERT_EQ(batched.outputs.size(), 4u);
  for (std::size_t r = 0; r < as.size(); ++r) {
    const Tensor golden = MatMul(as[r], b);
    ASSERT_EQ(batched.outputs[r].numel(), golden.numel());
    for (std::int64_t i = 0; i < golden.numel(); ++i) {
      EXPECT_NEAR(batched.outputs[r].at(i), golden.at(i), 1e-3);
    }
  }

  // One batched launch is cheaper than four singles (shared pipeline fill).
  runtime::Accelerator solo(d.dse.design, *d.dfg);
  double single_cycles = 0.0;
  for (const auto& a : as) {
    single_cycles += solo.RunGemm(a, b).device_cycles;
  }
  EXPECT_GT(batched.device_cycles, 0.0);
  EXPECT_LT(batched.device_cycles, single_cycles);
}

TEST(BatchedKernelTest, WorkloadBatchAmortizesWeightTraffic) {
  const Deployed d = CompileNvsa();
  runtime::Accelerator accel(d.dse.design, *d.dfg);
  const double single = accel.RunWorkloadBatch(1);
  EXPECT_DOUBLE_EQ(single, accel.RunWorkload());
  const double batch4 = accel.RunWorkloadBatch(4);
  const double batch8 = accel.RunWorkloadBatch(8);
  // Batching amortizes: total grows with batch size but stays below the
  // pay-per-request total, and the marginal request is cheaper than the
  // first (which carries the pipeline fill and the weight load).
  EXPECT_GT(batch4, single);
  EXPECT_GT(batch8, batch4);
  EXPECT_LT(batch4, 4.0 * single);
  EXPECT_LT(batch8, 8.0 * single);
  EXPECT_LT(batch8 - batch4, 4.0 * single);
}

// -------------------------------------------------------------- dispatch

std::vector<AcceleratorDesign> Pool(const Deployed& d, int replicas) {
  return std::vector<AcceleratorDesign>(static_cast<std::size_t>(replicas),
                                        d.dse.design);
}

TEST(ServerPoolTest, DispatchIsDeterministicUnderFixedSeed) {
  const Deployed d = CompileNvsa();
  ServeOptions options;
  options.qps = 150.0;
  options.duration_s = 0.5;
  options.max_batch = 8;
  options.seed = 1234;

  const ServeReport first = RunSyntheticServe(*d.dfg, Pool(d, 4), options);
  const ServeReport second = RunSyntheticServe(*d.dfg, Pool(d, 4), options);

  ASSERT_EQ(first.dispatches.size(), second.dispatches.size());
  for (std::size_t i = 0; i < first.dispatches.size(); ++i) {
    EXPECT_EQ(first.dispatches[i].replica, second.dispatches[i].replica);
    EXPECT_DOUBLE_EQ(first.dispatches[i].start_s,
                     second.dispatches[i].start_s);
    EXPECT_DOUBLE_EQ(first.dispatches[i].complete_s,
                     second.dispatches[i].complete_s);
    EXPECT_EQ(first.dispatches[i].size, second.dispatches[i].size);
  }
  EXPECT_DOUBLE_EQ(first.summary.p99_ms, second.summary.p99_ms);
  EXPECT_DOUBLE_EQ(first.summary.throughput_rps,
                   second.summary.throughput_rps);

  // A different seed produces a different arrival trace.
  options.seed = 99;
  const ServeReport other = RunSyntheticServe(*d.dfg, Pool(d, 4), options);
  EXPECT_NE(other.generated_requests, 0);
  EXPECT_NE(other.summary.p99_ms, first.summary.p99_ms);
}

TEST(ServerPoolTest, EarliestAvailableDispatchBalancesReplicas) {
  const Deployed d = CompileNvsa();
  // Four equal batches, all formed at t=0: each replica must take exactly
  // one (earliest-available with lowest-id tie-break = round robin here).
  std::vector<Batch> batches(4);
  for (int b = 0; b < 4; ++b) {
    batches[static_cast<std::size_t>(b)].formed_s = 0.0;
    batches[static_cast<std::size_t>(b)].requests = {At(b, 0.0)};
  }
  ServerPool pool(Pool(d, 4), *d.dfg);
  ServeStats stats(pool.size());
  const auto records = pool.Dispatch(batches, &stats);
  ASSERT_EQ(records.size(), 4u);
  for (int b = 0; b < 4; ++b) {
    EXPECT_EQ(records[static_cast<std::size_t>(b)].replica, b);
    EXPECT_DOUBLE_EQ(records[static_cast<std::size_t>(b)].start_s, 0.0);
  }
}

TEST(ServerPoolTest, ReplicationScalesSaturatedThroughput) {
  const Deployed d = CompileNvsa();
  ServeOptions options;
  options.duration_s = 1.0;
  options.max_batch = 8;
  options.seed = 42;
  // Saturating load for even the largest pool.
  options.qps = 800.0;

  const double one =
      RunSyntheticServe(*d.dfg, Pool(d, 1), options).summary.throughput_rps;
  const double four =
      RunSyntheticServe(*d.dfg, Pool(d, 4), options).summary.throughput_rps;
  EXPECT_GT(one, 0.0);
  // Acceptance bar: 4 replicas at saturation >= 2x the single-replica
  // baseline (in practice close to 4x).
  EXPECT_GE(four, 2.0 * one);
}

TEST(ServerPoolTest, HeterogeneousParetoPoolServes) {
  const Deployed d = CompileNvsa();
  const auto frontier = ParetoDesigns(*d.dfg, DseOptions{}, 3);
  ASSERT_GE(frontier.size(), 1u);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    // Largest budget first, strictly shrinking area along the frontier.
    EXPECT_LT(frontier[i].pes, frontier[i - 1].pes);
  }

  std::vector<AcceleratorDesign> designs;
  for (int r = 0; r < 3; ++r) {
    designs.push_back(frontier[static_cast<std::size_t>(r) % frontier.size()]
                          .design);
  }
  ServeOptions options;
  options.qps = 120.0;
  options.duration_s = 0.5;
  options.seed = 5;
  const ServeReport report = RunSyntheticServe(*d.dfg, designs, options);
  EXPECT_EQ(report.summary.completed, report.generated_requests);
  EXPECT_GT(report.summary.throughput_rps, 0.0);
  ASSERT_EQ(report.summary.replica_utilization.size(), 3u);
}

}  // namespace
}  // namespace nsflow::serve
