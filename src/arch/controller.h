// Control unit: executes one loop of a workload's dataflow graph on the
// simulated backend (AdArray + SIMD + memory system) according to an
// accelerator design — the hardware-level task scheduling of Sec. IV-A.
//
// In parallel (folded) mode the controller keeps two timelines: the NN lane
// (layers on their Nl sub-arrays, filters staged through MemA1, IFMAPs
// through MemB) and the VSA lane (vector nodes on their Nv sub-arrays,
// stationary operands through MemA2). The lanes advance independently —
// inter-loop fusion lets loop k+1's NN overlap loop k's symbolic tail — so
// loop latency is the slower lane plus any SIMD or AXI time the double
// buffering could not hide. In sequential mode MemA1/MemA2 are merged and
// every kernel owns the whole array.
//
// Timing is a pure function of (design, dataflow graph): the cycle math
// lives in arch/fastpath.h and the controller delegates to it, so the
// Estimate* methods return bit-identical numbers to their Run* twins while
// touching no simulator state. Run* additionally replays the loop's memory
// traffic into the units so their statistics (occupancy, bytes moved, DRAM
// totals) describe a real execution.
//
// The controller's measured totals are validated against the closed-form
// accelerator model (model/accel_model.h) in tests.
#pragma once

#include <cstdint>

#include "arch/adarray.h"
#include "arch/memory_system.h"
#include "arch/sim_report.h"
#include "arch/simd_unit.h"
#include "graph/dataflow_graph.h"
#include "model/accel_model.h"

namespace nsflow::arch {

class Controller {
 public:
  Controller(const AcceleratorDesign& design, const DataflowGraph& dfg);

  /// Simulate one loop; repeatable (statistics accumulate in the units).
  SimReport RunLoop();

  /// End-to-end seconds across the workload's loop_count, with the first
  /// loop paying the un-overlapped pipeline fill.
  double RunWorkload();

  /// Seconds for `batch_size` back-to-back end-to-end tasks of the same
  /// workload (the serving case: one model, many requests). The first task
  /// pays the full RunWorkload() cost; follow-up tasks reuse the stationary
  /// operands already resident in MemA1/MemA2 — filters and VSA codebooks are
  /// not re-fetched over AXI — so their marginal cost drops the weight share
  /// of the DRAM stall. Batch size 1 degenerates to RunWorkload().
  double RunWorkloadBatch(int batch_size);

  /// Timing-only twins of RunLoop / RunWorkload / RunWorkloadBatch: the same
  /// numbers (bit-identical doubles; EstimateLoop's `dram_bytes` is per-loop
  /// where RunLoop's accumulates across calls), no tensor movement, no unit
  /// mutation. These are the serve-path entry points.
  SimReport EstimateLoop() const;
  double EstimateWorkload() const;
  double EstimateWorkloadBatch(int batch_size) const;

  /// AXI cycles one loop spends moving stationary operands (NN filters plus
  /// stationary VSA vectors) — the share a batch amortizes.
  double WeightDramCycles() const;

  AdArray& array() { return array_; }
  SimdUnit& simd() { return simd_; }
  MemorySystem& memory() { return memory_; }

 private:
  /// Push one loop's worth of traffic through the memory system and the
  /// array fold so unit statistics reflect the execution RunLoop reports.
  void ReplayLoopTraffic();

  const AcceleratorDesign& design_;
  const DataflowGraph& dfg_;
  AdArray array_;
  SimdUnit simd_;
  MemorySystem memory_;
};

}  // namespace nsflow::arch
