#include "dse/design_config.h"

#include "common/json.h"

namespace nsflow {

std::string EmitDesignConfig(const AcceleratorDesign& design,
                             const std::string& workload_name, int indent) {
  Json doc;
  doc["workload"] = Json(workload_name);
  doc["clock_hz"] = Json(design.clock_hz);
  doc["dram_bandwidth"] = Json(design.dram_bandwidth);
  doc["sequential_mode"] = Json(design.sequential_mode);

  JsonObject array;
  array["height"] = Json(design.array.height);
  array["width"] = Json(design.array.width);
  array["count"] = Json(design.array.count);
  doc["array"] = Json(std::move(array));

  JsonObject partition;
  partition["default_nl"] = Json(design.default_nl);
  partition["default_nv"] = Json(design.default_nv);
  JsonArray nl;
  for (const auto v : design.nl) {
    nl.push_back(Json(v));
  }
  partition["nl"] = Json(std::move(nl));
  JsonArray nv;
  for (const auto v : design.nv) {
    nv.push_back(Json(v));
  }
  partition["nv"] = Json(std::move(nv));
  doc["partition"] = Json(std::move(partition));

  doc["simd_width"] = Json(design.simd_width);

  JsonObject memory;
  memory["mem_a1_bytes"] = Json(design.memory.mem_a1_bytes);
  memory["mem_a2_bytes"] = Json(design.memory.mem_a2_bytes);
  memory["mem_b_bytes"] = Json(design.memory.mem_b_bytes);
  memory["mem_c_bytes"] = Json(design.memory.mem_c_bytes);
  memory["cache_bytes"] = Json(design.memory.cache_bytes);
  doc["memory"] = Json(std::move(memory));

  JsonObject precision;
  precision["neural"] = Json(PrecisionName(design.precision.neural));
  precision["symbolic"] = Json(PrecisionName(design.precision.symbolic));
  doc["precision"] = Json(std::move(precision));

  return doc.Dump(indent);
}

AcceleratorDesign ParseDesignConfig(const std::string& text) {
  const Json doc = Json::Parse(text);
  AcceleratorDesign design;
  design.clock_hz = doc.At("clock_hz").AsDouble();
  design.dram_bandwidth = doc.At("dram_bandwidth").AsDouble();
  design.sequential_mode = doc.At("sequential_mode").AsBool();

  const auto& array = doc.At("array");
  design.array.height = array.At("height").AsInt();
  design.array.width = array.At("width").AsInt();
  design.array.count = array.At("count").AsInt();

  const auto& partition = doc.At("partition");
  design.default_nl = partition.At("default_nl").AsInt();
  design.default_nv = partition.At("default_nv").AsInt();
  for (const auto& v : partition.At("nl").AsArray()) {
    design.nl.push_back(v.AsInt());
  }
  for (const auto& v : partition.At("nv").AsArray()) {
    design.nv.push_back(v.AsInt());
  }

  design.simd_width = doc.At("simd_width").AsInt();

  const auto& memory = doc.At("memory");
  design.memory.mem_a1_bytes = memory.At("mem_a1_bytes").AsDouble();
  design.memory.mem_a2_bytes = memory.At("mem_a2_bytes").AsDouble();
  design.memory.mem_b_bytes = memory.At("mem_b_bytes").AsDouble();
  design.memory.mem_c_bytes = memory.At("mem_c_bytes").AsDouble();
  design.memory.cache_bytes = memory.At("cache_bytes").AsDouble();

  const auto& precision = doc.At("precision");
  design.precision.neural =
      PrecisionFromName(precision.At("neural").AsString());
  design.precision.symbolic =
      PrecisionFromName(precision.At("symbolic").AsString());
  return design;
}

}  // namespace nsflow
