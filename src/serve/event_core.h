// Discrete-event core for the serve engine (docs/ENGINE.md).
//
// The engine's virtual timeline is driven by one binary min-heap of plain
// 32-byte event records keyed `(virtual_time, class, seq)`:
//
//   * `virtual_time` — seconds on the run's virtual clock;
//   * `class`        — the same-instant firing priority (EventClass below),
//                      which makes the engine's co-incident ordering an
//                      explicit, tested contract instead of code order;
//   * `seq`          — a monotone push counter, so events that tie on both
//                      time and class drain in scheduling order (FIFO).
//
// Allocation contract: this header extends the Tensor
// `allocation_count()` contract (common/tensor.h) to the serve path.
// Every heap-spine growth and every pool-arena block bumps the global
// `event_core::allocation_count()`; once an `EventList` is reserved and a
// `NodePool` has grown its arenas, pushing/popping events and
// acquiring/releasing nodes never allocates — the steady-state gate
// `allocation_count()` delta == 0 over a million-event run is enforced in
// tests/event_core_test.cpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/error.h"

namespace nsflow::serve::event_core {

/// Same-instant firing priority, smallest first. The ordering encodes the
/// engine's observable contract (docs/ENGINE.md):
///
///   1. the environment changes (adversity faults land),
///   2. the control loop observes the changed world (autoscaler tick),
///   3. shed requests re-offer (admission retry),
///   4. new arrivals enter,
///   5. shutdown runs strictly last.
///
/// kLaneDeadline..kSnapshot are the taxonomy's folded classes: lane
/// closes, dispatches, batch completions, admission sweeps, and metric
/// snapshots are *consequences* computed inside the handlers above (the
/// eager scheduler books batches ahead of the clock), so they never sit in
/// the heap as top-level timeline events — but they keep explicit class
/// values for bookkeeping heaps (the dispatched-start backlog tracker) and
/// for the bench's event accounting.
enum class EventClass : std::uint8_t {
  kAdversity = 0,
  kAutoscalerTick = 1,
  kAdmissionRetry = 2,
  kArrival = 3,
  kLaneDeadline = 4,
  kDispatch = 5,
  kBatchComplete = 6,
  kAdmissionSweep = 7,
  kSnapshot = 8,
  kDrain = 9,
};

/// Stable lowercase name for logs, the bench's event accounting, and
/// docs/ENGINE.md's taxonomy table.
const char* EventClassName(EventClass cls);

/// One heap record. Plain data, 32 bytes: the payload words mean whatever
/// the scheduling site wants (an arrival index, a batch size) — handlers
/// for cursor-driven classes (adversity, ticks) carry no payload at all.
struct Event {
  double t_s = 0.0;
  std::uint64_t seq = 0;
  std::int64_t payload = 0;
  EventClass cls = EventClass::kArrival;
};

namespace detail {
/// The serve-path allocation counter behind `allocation_count()` — the
/// exact shape of Tensor's: an inline static atomic, bumped on every
/// heap-spine growth and arena-block allocation.
struct AllocationCounter {
  inline static std::atomic<std::int64_t> count{0};
};
inline void CountAllocation() {
  AllocationCounter::count.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

/// Total heap-spine growths + pool-arena blocks allocated so far,
/// process-wide. Tests snapshot before/after a steady-state window and
/// assert the delta is zero.
inline std::int64_t allocation_count() {
  return detail::AllocationCounter::count.load(std::memory_order_relaxed);
}

/// Binary min-heap of Events keyed (t_s, class, seq). Storage is one flat
/// vector; `Reserve` pre-sizes it and any later growth is counted as an
/// allocation (see the header comment).
class EventList {
 public:
  EventList() = default;

  void Reserve(std::size_t capacity) {
    if (capacity > heap_.capacity()) {
      detail::CountAllocation();
      heap_.reserve(capacity);
    }
  }

  /// Schedules an event; returns its seq (monotone per list, so equal
  /// (t, class) pushes drain first-scheduled-first).
  std::uint64_t Push(double t_s, EventClass cls, std::int64_t payload = 0) {
    const std::uint64_t seq = next_seq_++;
    if (heap_.size() == heap_.capacity()) {
      detail::CountAllocation();
    }
    heap_.push_back(Event{t_s, seq, payload, cls});
    SiftUp(heap_.size() - 1);
    return seq;
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  std::size_t capacity() const { return heap_.capacity(); }

  const Event& Top() const {
    NSF_CHECK_MSG(!heap_.empty(), "Top() on an empty event list");
    return heap_.front();
  }

  Event Pop() {
    NSF_CHECK_MSG(!heap_.empty(), "Pop() on an empty event list");
    const Event top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      SiftDown(0);
    }
    return top;
  }

  void Clear() { heap_.clear(); }

 private:
  static bool Before(const Event& a, const Event& b) {
    if (a.t_s != b.t_s) {
      return a.t_s < b.t_s;
    }
    if (a.cls != b.cls) {
      return static_cast<std::uint8_t>(a.cls) <
             static_cast<std::uint8_t>(b.cls);
    }
    return a.seq < b.seq;
  }

  void SiftUp(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!Before(heap_[i], heap_[parent])) {
        break;
      }
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void SiftDown(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t left = 2 * i + 1;
      const std::size_t right = left + 1;
      std::size_t smallest = i;
      if (left < n && Before(heap_[left], heap_[smallest])) {
        smallest = left;
      }
      if (right < n && Before(heap_[right], heap_[smallest])) {
        smallest = right;
      }
      if (smallest == i) {
        break;
      }
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

/// Freelist-backed arena of intrusive nodes. `Acquire` pops the freelist
/// (LIFO — a released slot is the next one handed out, keeping hot nodes
/// cache-resident) or bump-allocates from the newest arena block; only
/// growing a fresh block allocates, and that is counted. Each slot carries
/// a generation stamp bumped on every release, so a stale handle from a
/// previous occupancy is detectable (the classic ABA guard) — tests pin
/// both the same-arena reuse and the generation bump.
template <typename T>
class NodePool {
 public:
  explicit NodePool(std::size_t block_nodes = 256)
      : block_nodes_(block_nodes == 0 ? 1 : block_nodes) {}

  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  ~NodePool() {
    // Live nodes must be released (and destroyed) by the owner before the
    // pool dies; remaining slots hold no constructed T.
  }

  /// Constructs a T in a pooled slot and returns it.
  template <typename... Args>
  T* Acquire(Args&&... args) {
    Slot* slot = free_;
    if (slot != nullptr) {
      free_ = slot->next_free;
    } else {
      if (bump_ == block_nodes_ || blocks_.empty()) {
        detail::CountAllocation();
        blocks_.push_back(std::make_unique<Slot[]>(block_nodes_));
        bump_ = 0;
      }
      slot = &blocks_.back()[bump_++];
    }
    ++live_;
    return new (slot->storage) T(std::forward<Args>(args)...);
  }

  /// Destroys the node and returns its slot to the freelist.
  void Release(T* node) {
    NSF_CHECK_MSG(node != nullptr, "Release(nullptr)");
    node->~T();
    Slot* slot = SlotOf(node);
    ++slot->generation;
    slot->next_free = free_;
    free_ = slot;
    --live_;
  }

  /// The slot's occupancy generation: 0 for a never-released slot, +1 per
  /// Release. A handle that remembers the generation it was acquired
  /// under can detect reuse (ABA) by comparing.
  std::uint64_t Generation(const T* node) const {
    return SlotOf(const_cast<T*>(node))->generation;
  }

  /// Whether `node` points into one of this pool's arena blocks.
  bool Owns(const T* node) const {
    for (const auto& block : blocks_) {
      const Slot* begin = block.get();
      const Slot* end = begin + block_nodes_;
      const Slot* slot = SlotOf(const_cast<T*>(node));
      if (slot >= begin && slot < end) {
        return true;
      }
    }
    return false;
  }

  std::size_t live() const { return live_; }
  std::size_t capacity() const { return blocks_.size() * block_nodes_; }

 private:
  struct Slot {
    alignas(alignof(T)) unsigned char storage[sizeof(T)];
    Slot* next_free = nullptr;
    std::uint64_t generation = 0;
  };

  static Slot* SlotOf(T* node) {
    // storage is the first member, so the T* and its Slot* coincide.
    return std::launder(reinterpret_cast<Slot*>(
        reinterpret_cast<unsigned char*>(node) - offsetof(Slot, storage)));
  }

  std::size_t block_nodes_;
  std::vector<std::unique_ptr<Slot[]>> blocks_;
  Slot* free_ = nullptr;
  std::size_t bump_ = 0;
  std::size_t live_ = 0;
};

}  // namespace nsflow::serve::event_core
