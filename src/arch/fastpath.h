// Fast-path cycle estimation — the timing-only twin of the cycle-level
// simulator (arch/controller.h).
//
// NSFlow's value is its closed-form cycle model (Eqs. (1)/(3)/(4)): every
// number `Controller::RunLoop` reports is a pure function of the
// (AcceleratorDesign, DataflowGraph) pair. The functions here compute the
// full `SimReport` — array, SIMD, DRAM, lane, and stall cycles — directly
// from that pair, without constructing an `Accelerator`, a `MemorySystem`,
// or any `Tensor`, and without mutating anything. They are what the serving
// stack (ServerPool::BatchSeconds, cache warming), the DSE sweep
// (ParetoDesigns), and the benches call on their hot paths.
//
// Contract: the estimator is the single source of truth for the loop cycle
// math. `Controller::RunLoop` *delegates* to `EstimateLoop` for its report
// and only replays the memory-system traffic on top for unit statistics, so
// `EstimateWorkloadBatchSeconds(design, dfg, b)` bit-matches
// `Controller::RunWorkloadBatch(b)` (exact double equality) by construction.
// tests/fastpath_test.cpp enforces this across every builtin workload and
// batch size.
#pragma once

#include <cstdint>
#include <span>

#include "arch/sim_report.h"
#include "graph/dataflow_graph.h"
#include "model/accel_model.h"

namespace nsflow::arch {

/// Per-kernel sub-array allocation the estimator walks: either spans over a
/// design's tuned Phase II `nl`/`nv` vectors, or uniform values (sequential
/// mode, and the `RefitDesign` schedule for a design serving a foreign
/// tenant) — the uniform form never materializes an allocation vector.
struct LoopAlloc {
  std::span<const std::int64_t> nl;  // Empty => uniform_nl for every layer.
  std::span<const std::int64_t> nv;  // Empty => uniform_nv for every node.
  std::int64_t uniform_nl = 0;
  std::int64_t uniform_nv = 0;

  std::int64_t Nl(std::size_t i) const { return nl.empty() ? uniform_nl : nl[i]; }
  std::int64_t Nv(std::size_t j) const { return nv.empty() ? uniform_nv : nv[j]; }
};

/// The allocation `Controller::RunLoop` uses for a design tuned to `dfg`:
/// the whole array per kernel in sequential mode, the design's per-kernel
/// `nl`/`nv` otherwise (sizes must match the graph's kernel lists).
LoopAlloc TunedAlloc(const AcceleratorDesign& design, const DataflowGraph& dfg);

/// The allocation `serve::RefitDesign` would assign when `design` was DSE'd
/// for a different workload: uniform full-array (sequential or all-NN
/// graphs) or the design's static Phase I partition — computed without
/// building the refit design's vectors.
LoopAlloc RefitAlloc(const AcceleratorDesign& design, const DataflowGraph& dfg);

/// One-loop report under an explicit allocation. Pure; allocates nothing.
SimReport EstimateLoopReport(const AcceleratorDesign& design,
                             const DataflowGraph& dfg, const LoopAlloc& alloc);

/// One-loop report with the tuned allocation (what `Controller::RunLoop`
/// reports for a fresh controller, except `dram_bytes` which the controller
/// accumulates across calls and the estimator reports per loop).
SimReport EstimateLoop(const AcceleratorDesign& design,
                       const DataflowGraph& dfg);

/// AXI cycles one loop spends on stationary operands (NN filters plus the
/// resident half of each VSA node) — the share a batch amortizes. Mirrors
/// `Controller::WeightDramCycles`.
double EstimateWeightDramCycles(const AcceleratorDesign& design,
                                const DataflowGraph& dfg);

/// End-to-end seconds for the workload's loop_count given one steady-state
/// report (first loop pays the un-overlapped pipeline fill). The exact
/// arithmetic `Controller::RunWorkload` applies to its own report.
double WorkloadSecondsFromReport(const AcceleratorDesign& design,
                                 const DataflowGraph& dfg,
                                 const SimReport& steady);

/// Seconds for `batch_size` back-to-back tasks given one steady-state
/// report: first task pays the full workload, follow-ups amortize the
/// stationary-operand AXI traffic. The exact arithmetic
/// `Controller::RunWorkloadBatch` applies to its own report.
double BatchSecondsFromReport(const AcceleratorDesign& design,
                              const DataflowGraph& dfg,
                              const SimReport& steady, int batch_size);

/// Batch-size-independent serving state for one (design, dfg, allocation):
/// everything the batched-latency formula needs, so a latency cache can
/// evaluate the loop equations once per (design kind, workload) and derive
/// *every* batch size in a handful of flops. `BatchSeconds` keeps the
/// operation order of `Controller::RunWorkloadBatch`'s tail expression
/// verbatim, so derived values stay bit-identical to the functional path.
struct ServingModel {
  double first_seconds = 0.0;     // Batch-1 (full workload) latency.
  double marginal_cycles = 0.0;   // Steady loop cycles for tasks 2..B.
  int loops = 1;                  // Workload loop_count.
  double clock_hz = 1.0;

  double BatchSeconds(int batch_size) const {
    if (batch_size == 1) {
      return first_seconds;
    }
    return first_seconds + static_cast<double>(batch_size - 1) *
                               static_cast<double>(loops) * marginal_cycles /
                               clock_hz;
  }
};

/// Fold a steady-state report into the O(1)-per-batch-size form.
ServingModel ServingModelFromReport(const AcceleratorDesign& design,
                                    const DataflowGraph& dfg,
                                    const SimReport& steady);

/// Evaluate the loop equations once and return the memoizable serving
/// model: `tuned` keeps the design's Phase II allocation, otherwise the
/// `RefitAlloc` schedule applies (see EstimateServingBatchSeconds).
ServingModel BuildServingModel(const AcceleratorDesign& design,
                               const DataflowGraph& dfg, bool tuned);

/// End-to-end seconds, tuned allocation. Bit-matches
/// `Controller::RunWorkload` on a fresh controller.
double EstimateWorkloadSeconds(const AcceleratorDesign& design,
                               const DataflowGraph& dfg);

/// Batched seconds, tuned allocation. Bit-matches
/// `Controller::RunWorkloadBatch` on a fresh controller.
double EstimateWorkloadBatchSeconds(const AcceleratorDesign& design,
                                    const DataflowGraph& dfg, int batch_size);

/// Batched seconds for the serving cache: `tuned` keeps the design's Phase
/// II allocation, otherwise the `RefitAlloc` schedule applies — equal to
/// deploying `RefitDesign(design, dfg)` functionally, with zero design
/// copies and zero vector materialization.
double EstimateServingBatchSeconds(const AcceleratorDesign& design,
                                   const DataflowGraph& dfg, int batch_size,
                                   bool tuned);

}  // namespace nsflow::arch
