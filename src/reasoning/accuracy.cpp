#include "reasoning/accuracy.h"

#include "common/error.h"
#include "reasoning/vsa_reasoner.h"

namespace nsflow::reasoning {

std::vector<PrecisionSetting> TableIvSettings() {
  // Noise multipliers calibrated on the RAVEN-like psychometric curve so
  // the accuracy ordering matches Table IV: FP32 ≈ FP16 ≳ INT8 ≳ MP >> INT4.
  // A quantized CNN frontend mislocates attributes more often; INT4
  // perception is the cliff.
  return {
      {"FP32", Precision::kFP32, Precision::kFP32, 1.0},
      {"FP16", Precision::kFP16, Precision::kFP16, 1.01},
      {"INT8", Precision::kINT8, Precision::kINT8, 1.12},
      {"MP (INT8 NN, INT4 Symb)", Precision::kINT8, Precision::kINT4, 1.25},
      {"INT4", Precision::kINT4, Precision::kINT4, 1.55},
  };
}

double ModelMemoryBytes(const PrecisionSetting& setting) {
  // Element budget reproducing the paper's footprint row (32 MB at FP32,
  // 5.5 MB at MP): 3M neural parameters (NVSA's trimmed perception frontend)
  // + 5M symbolic elements (value/role codebooks and bound dictionaries).
  constexpr double kNeuralParams = 3.0e6;
  constexpr double kSymbolicElems = 5.0e6;
  return kNeuralParams * BytesOf(setting.nn_precision) +
         kSymbolicElems * BytesOf(setting.vsa_precision);
}

double SuiteBaseNoise(const RpmSuiteSpec& suite) {
  // Calibrated against Table IV's FP32 anchors (RAVEN 98.9, I-RAVEN 99.0,
  // PGM 68.7): PGM-like sits deep on its (steep) psychometric curve because
  // every distractor is a near miss over a larger attribute space.
  if (suite.name == "PGM-like") {
    return 1.85;
  }
  if (suite.name == "I-RAVEN-like") {
    return 1.25;
  }
  return 1.3;  // RAVEN-like default.
}

double SuiteNoiseSensitivity(const RpmSuiteSpec& suite) {
  // How strongly extra perception noise (from quantization) moves accuracy.
  // PGM-like's curve is several times steeper in relative-noise terms, so
  // the same precision drop produces a similar *accuracy point* drop only
  // if its multiplier is damped.
  return suite.name == "PGM-like" ? 0.08 : 1.0;
}

AccuracyCell EvaluateAccuracy(const RpmSuiteSpec& suite,
                              const PrecisionSetting& setting, int trials,
                              std::uint64_t seed) {
  NSF_CHECK_MSG(trials > 0, "need at least one trial");
  Rng rng(seed);

  ReasonerConfig config;
  config.vsa_precision = setting.vsa_precision;
  const double damped_multiplier =
      1.0 + (setting.nn_noise_multiplier - 1.0) * SuiteNoiseSensitivity(suite);
  config.perception_noise = SuiteBaseNoise(suite) * damped_multiplier;

  const RpmGenerator generator(suite);
  const VsaReasoner reasoner(suite, config, rng);

  int correct = 0;
  for (int t = 0; t < trials; ++t) {
    const RpmTask task = generator.Generate(rng);
    if (reasoner.Solve(task, rng) == task.answer_index) {
      ++correct;
    }
  }

  AccuracyCell cell;
  cell.suite = suite.name;
  cell.setting = setting.label;
  cell.trials = trials;
  cell.accuracy = static_cast<double>(correct) / static_cast<double>(trials);
  return cell;
}

}  // namespace nsflow::reasoning
