// FPGA device descriptions (resource inventories).
//
// The paper deploys on an AMD/Xilinx Alveo U250 (Table III) and sizes the
// memory system against a ZCU104's ~36 Mb of on-chip RAM (Sec. IV-C). The
// inventories below are from the vendor datasheets.
#pragma once

#include <cstdint>
#include <string>

namespace nsflow {

struct FpgaDevice {
  std::string name;
  std::int64_t dsp = 0;           // DSP48E2 slices.
  std::int64_t lut = 0;           // 6-input LUTs.
  std::int64_t ff = 0;            // Flip-flops.
  std::int64_t bram18 = 0;        // 18 Kb block-RAM units.
  std::int64_t uram = 0;          // 288 Kb UltraRAM blocks.
  std::int64_t lutram_luts = 0;   // LUTs usable as distributed RAM.
  double max_clock_hz = 0.0;      // Fabric clock ceiling for this family.

  double BramBytes() const { return static_cast<double>(bram18) * 18.0 * 1024.0 / 8.0; }
  double UramBytes() const { return static_cast<double>(uram) * 288.0 * 1024.0 / 8.0; }
};

/// Alveo U250 (xcu250-figd2104-2L-e).
FpgaDevice U250();

/// Zynq UltraScale+ ZCU104 (xczu7ev).
FpgaDevice Zcu104();

/// Look up a device by CLI name: "u250" | "zcu104". Throws on anything
/// else, listing the known names (the `nsflow plan --budget` resolver).
FpgaDevice DeviceByName(const std::string& name);

}  // namespace nsflow
