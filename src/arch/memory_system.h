// Re-organizable on-chip memory system — paper Sec. IV-C.
//
// Three double-buffered SRAM blocks plus a URAM cache and an AXI/DRAM port:
//   * MemA, partitioned into MemA1 (NN filters) and MemA2 (stationary VSA
//     vectors); the two chunks can be *merged* at runtime when only one kind
//     of operation executes.
//   * MemB, the IFMAP buffer feeding the horizontal array inputs (NN only).
//   * MemC, outputs of the array and SIMD unit, readable by compute units or
//     written back to MemA/MemB/DRAM.
//   * an on-chip URAM cache buffering intermediates for the three blocks.
//
// Each block tracks capacity, occupancy, double-buffer phase, and access
// counters; the AXI port converts transferred bytes into cycles at the
// configured bandwidth-per-cycle, letting the controller overlap loads with
// compute (double buffering) and account only the exposed stalls.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.h"
#include "model/accel_model.h"

namespace nsflow::arch {

/// One double-buffered SRAM block.
class MemoryBlock {
 public:
  MemoryBlock(std::string name, double capacity_bytes)
      : name_(std::move(name)), capacity_(capacity_bytes) {}

  const std::string& name() const { return name_; }
  double capacity() const { return capacity_; }
  double occupancy() const { return occupancy_[active_]; }

  /// Stage data into the *shadow* buffer (overlapped with compute).
  void Stage(double bytes);
  /// Swap shadow and active buffers (0-cycle, end of a kernel).
  void Swap();
  /// Record a read of `bytes` from the active buffer.
  void Read(double bytes);
  /// Record a write of `bytes` into the active buffer.
  void Write(double bytes);
  /// Drop the active buffer contents.
  void Clear();

  double bytes_read() const { return bytes_read_; }
  double bytes_written() const { return bytes_written_; }

 private:
  std::string name_;
  double capacity_;
  double occupancy_[2] = {0.0, 0.0};
  int active_ = 0;
  double bytes_read_ = 0.0;
  double bytes_written_ = 0.0;
};

/// The full Sec. IV-C memory complex.
class MemorySystem {
 public:
  explicit MemorySystem(const MemoryConfig& config);

  MemoryBlock& mem_a1() { return mem_a1_; }
  MemoryBlock& mem_a2() { return mem_a2_; }
  MemoryBlock& mem_b() { return mem_b_; }
  MemoryBlock& mem_c() { return mem_c_; }
  MemoryBlock& cache() { return cache_; }

  /// Runtime re-partitioning: merge MemA1+MemA2 into one block (single-kind
  /// execution) or split them back (parallel NN + VSA).
  void MergeMemA();
  void SplitMemA();
  bool mem_a_merged() const { return merged_; }
  /// Capacity available to NN filters under the current partitioning.
  double MemANnCapacity() const;

  /// DRAM transfer over AXI: returns the cycles the transfer occupies on the
  /// port at `bytes_per_cycle`.
  double DramTransfer(double bytes);

  double dram_bytes() const { return dram_bytes_; }
  double dram_cycles() const { return dram_cycles_; }
  double bytes_per_cycle() const { return bytes_per_cycle_; }
  void set_bytes_per_cycle(double bpc);

 private:
  MemoryBlock mem_a1_;
  MemoryBlock mem_a2_;
  MemoryBlock mem_b_;
  MemoryBlock mem_c_;
  MemoryBlock cache_;
  bool merged_ = false;
  double bytes_per_cycle_ = 16.0;  // 38.4 GB/s at 272 MHz ≈ 141 B/cycle; set
                                   // from the design at construction.
  double dram_bytes_ = 0.0;
  double dram_cycles_ = 0.0;
};

}  // namespace nsflow::arch
