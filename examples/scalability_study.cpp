// Scalability study: how the NSFlow-generated design responds as the
// symbolic share of an NSAI workload grows — the experiment behind the
// paper's "only 4x runtime increase when symbolic workloads scale by 150x"
// claim and the Fig. 6 ablation. Also shows how the DSE's chosen partition
// shifts toward the symbolic side as the workload does.
//
//   $ ./scalability_study
#include <cstdio>

#include "dse/dse.h"
#include "model/device_zoo.h"
#include "nsflow/framework.h"
#include "workloads/builders.h"

int main() {
  using namespace nsflow;

  std::printf("How the generated design adapts to the symbolic share:\n\n");
  std::printf("%-14s %-18s %-12s %-14s %-12s\n", "symb mem %", "AdArray",
              "partition", "mode", "ms/loop");

  for (const double pct : {0.0, 0.1, 0.2, 0.4, 0.6, 0.8}) {
    const OperatorGraph graph = workloads::MakeParametricNsai(pct);
    const DataflowGraph dfg(graph);
    const DseResult dse = RunTwoPhaseDse(dfg, {});
    const auto& d = dse.design;
    char array_desc[32];
    std::snprintf(array_desc, sizeof(array_desc), "%lldx%lldx%lld",
                  static_cast<long long>(d.array.height),
                  static_cast<long long>(d.array.width),
                  static_cast<long long>(d.array.count));
    char partition[32];
    std::snprintf(partition, sizeof(partition), "%lld:%lld",
                  static_cast<long long>(d.default_nl),
                  static_cast<long long>(d.default_nv));
    std::printf("%-14.0f %-18s %-12s %-14s %-12.2f\n", pct * 100.0,
                array_desc, d.sequential_mode ? "-" : partition,
                d.sequential_mode ? "sequential" : "folded",
                dse.t_para_cycles / d.clock_hz * 1e3);
  }

  std::printf("\nSymbolic scaling on NVSA (vs a rigid TPU-like array):\n\n");
  const Compiler compiler;
  const auto tpu = MakeDevice(DeviceKind::kTpuLikeSa);
  const OperatorGraph base = workloads::MakeNvsa();
  double ours_base = 0.0;
  double tpu_base = 0.0;
  for (const double scale : {1.0, 10.0, 50.0, 150.0}) {
    const OperatorGraph graph = workloads::ScaleSymbolic(base, scale);
    const double ours =
        compiler.Compile(OperatorGraph(graph)).PredictedSeconds();
    const double theirs = tpu->Estimate(graph).total_s() *
                          std::max(1, graph.loop_count());
    if (scale == 1.0) {
      ours_base = ours;
      tpu_base = theirs;
    }
    std::printf("  x%-6.0f NSFlow %8.2f ms (%5.2fx)    TPU-like %9.2f ms "
                "(%6.2fx)\n",
                scale, ours * 1e3, ours / ours_base, theirs * 1e3,
                theirs / tpu_base);
  }
  std::printf("\nNSFlow's growth stays sub-linear: refolding shifts "
              "sub-arrays to the symbolic lane as it saturates, and the "
              "symbolic lane overlaps the next loop's NN compute.\n");
  return 0;
}
