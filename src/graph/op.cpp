#include "graph/op.h"

#include <unordered_map>

#include "common/error.h"

namespace nsflow {

OpCategory CategoryOf(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
    case OpKind::kConstant:
      return OpCategory::kNone;
    case OpKind::kConv2d:
      return OpCategory::kMatrixNn;
    case OpKind::kLinear:
    case OpKind::kAttentionQkv:
      return OpCategory::kOtherGemm;
    case OpKind::kRelu:
    case OpKind::kBatchNorm:
    case OpKind::kMaxPool:
    case OpKind::kAvgPool:
    case OpKind::kSoftmax:
    case OpKind::kAddElem:
      return OpCategory::kElemNn;
    case OpKind::kCircularBind:
    case OpKind::kCircularUnbind:
      return OpCategory::kVectorVsa;
    case OpKind::kMatchProb:
    case OpKind::kMatchProbBatched:
    case OpKind::kVecSum:
    case OpKind::kVecClamp:
    case OpKind::kVecMul:
    case OpKind::kVecNorm:
    case OpKind::kProbAbduction:
      return OpCategory::kElemVsa;
  }
  return OpCategory::kNone;
}

Domain DomainOf(OpKind kind) {
  switch (CategoryOf(kind)) {
    case OpCategory::kMatrixNn:
    case OpCategory::kOtherGemm:
    case OpCategory::kElemNn:
      return Domain::kNeuro;
    case OpCategory::kVectorVsa:
    case OpCategory::kElemVsa:
      return Domain::kSymbolic;
    case OpCategory::kNone:
      return Domain::kNone;
  }
  return Domain::kNone;
}

ComputeUnit UnitOf(OpKind kind) {
  switch (CategoryOf(kind)) {
    case OpCategory::kMatrixNn:
    case OpCategory::kOtherGemm:
    case OpCategory::kVectorVsa:
      return ComputeUnit::kAdArray;
    case OpCategory::kElemNn:
    case OpCategory::kElemVsa:
      return ComputeUnit::kSimd;
    case OpCategory::kNone:
      return ComputeUnit::kNone;
  }
  return ComputeUnit::kNone;
}

namespace {

const std::unordered_map<std::string, OpKind>& NameTable() {
  static const auto* table = new std::unordered_map<std::string, OpKind>{
      {"input", OpKind::kInput},
      {"constant", OpKind::kConstant},
      {"conv2d", OpKind::kConv2d},
      {"linear", OpKind::kLinear},
      {"attention_qkv", OpKind::kAttentionQkv},
      {"relu", OpKind::kRelu},
      {"batch_norm", OpKind::kBatchNorm},
      {"maxpool", OpKind::kMaxPool},
      {"avgpool", OpKind::kAvgPool},
      {"softmax", OpKind::kSoftmax},
      {"add", OpKind::kAddElem},
      {"nvsa.binding_circular", OpKind::kCircularBind},
      {"nvsa.inv_binding_circular", OpKind::kCircularUnbind},
      {"nvsa.match_prob", OpKind::kMatchProb},
      {"nvsa.match_prob_multi_batched", OpKind::kMatchProbBatched},
      {"torch.sum", OpKind::kVecSum},
      {"torch.clamp", OpKind::kVecClamp},
      {"operator.mul", OpKind::kVecMul},
      {"torch.norm", OpKind::kVecNorm},
      {"prae.prob_abduction", OpKind::kProbAbduction},
  };
  return *table;
}

}  // namespace

const char* OpKindName(OpKind kind) {
  for (const auto& [name, k] : NameTable()) {
    if (k == kind) {
      return name.c_str();
    }
  }
  return "?";
}

OpKind OpKindFromName(const std::string& name) {
  const auto& table = NameTable();
  const auto it = table.find(name);
  if (it == table.end()) {
    throw ParseError("unknown op kind: " + name);
  }
  return it->second;
}

}  // namespace nsflow
