// Analytical runtime model — paper Sec. V-C, Eqs. (1)–(5).
//
// These closed-form cycle counts are the contract between NSFlow's frontend
// (which searches over them) and backend (whose cycle-level simulator is
// validated against them in tests/arch_vs_analytical_test.cpp):
//
//   Eq.(1)  t_l(H,W,Nl[i]) = (2H + W + d1 - 2) · ⌈⌈d2/Nl[i]⌉/H⌉ · ⌈d3/W⌉
//   Eq.(2)  t_nn = Σ_{i∈Rl} t_l
//   Eq.(3)  t_v,spatial = n_j · ⌈d_j/(W·H·Nv[j])⌉ · T
//   Eq.(4)  t_v,temp    = ⌈n_j/W⌉ · ⌈d_j/(H·Nv[j])⌉ · T
//   Eq.(5)  t_vsa = min(Σ t_v,temp, Σ t_v,spatial)        with T = 3H + d_j − 1
//
// AdArray is a scale-out design with row-level partition: Nl[i] sub-arrays
// cooperate on layer i by splitting its d2 (reduction) dimension; Nv[j]
// sub-arrays split a VSA node's vector set or element range depending on the
// mapping (spatial vs. temporal).
#pragma once

#include <cstdint>
#include <span>

#include "graph/dataflow_graph.h"

namespace nsflow {

/// AdArray geometry: N sub-arrays of H rows × W columns each.
struct ArrayConfig {
  std::int64_t height = 32;   // H
  std::int64_t width = 16;    // W
  std::int64_t count = 16;    // N (number of sub-arrays)

  std::int64_t TotalPes() const { return height * width * count; }
  bool operator==(const ArrayConfig&) const = default;
};

/// Eq. (1): cycles for NN layer with GEMM dims (d1,d2,d3)=(m,n,k) on Nl
/// cooperating sub-arrays of HxW PEs.
double LayerCycles(const ArrayConfig& cfg, std::int64_t nl,
                   const GemmDims& gemm);

/// Eq. (2): total NN cycles with per-layer sub-array allocation `nl[i]`.
double NnTotalCycles(const ArrayConfig& cfg, std::span<const LayerNode> layers,
                     std::span<const std::int64_t> nl);

/// Streaming period T = 3H + d − 1 for a d-element circular convolution
/// through an H-row column (stationary fill + stream + drain).
double VsaStreamPeriod(std::int64_t height, std::int64_t dim);

/// Eq. (3): spatial mapping — all of one vector spread across PEs.
double VsaSpatialCycles(const ArrayConfig& cfg, std::int64_t nv,
                        const VsaDims& vsa);

/// Eq. (4): temporal mapping — vectors multiplexed over columns.
double VsaTemporalCycles(const ArrayConfig& cfg, std::int64_t nv,
                         const VsaDims& vsa);

enum class VsaMapping : std::uint8_t { kSpatial, kTemporal };

/// Eq. (5): total VSA cycles, taking the better of the two mappings across
/// the whole loop. Optionally reports which mapping won.
double VsaTotalCycles(const ArrayConfig& cfg, std::span<const VsaNode> vsa_ops,
                      std::span<const std::int64_t> nv,
                      VsaMapping* chosen = nullptr);

/// SIMD-unit cycles for `elems` element-wise/reduction operations on a
/// `simd_width`-lane unit (one op per lane per cycle, plus pipeline fill).
double SimdCycles(double elems, std::int64_t simd_width);

/// Algorithm 1 line 12: sequential mode — every node in turn gets all N
/// sub-arrays (Nl[i] = Nv[j] = N), NN then VSA.
double SequentialCycles(const ArrayConfig& cfg,
                        std::span<const LayerNode> layers,
                        std::span<const VsaNode> vsa_ops);

/// Parallel (folded) mode, Phase I form: t_para = max(t_nn, t_vsa) — NN on
/// Nl sub-arrays overlapping VSA on Nv sub-arrays across fused loops
/// (Algorithm 1, line 8).
double ParallelCycles(const ArrayConfig& cfg,
                      std::span<const LayerNode> layers,
                      std::span<const VsaNode> vsa_ops,
                      std::span<const std::int64_t> nl,
                      std::span<const std::int64_t> nv);

/// Fused-schedule refinement: the steady-state loop executes window by
/// window — layer i of loop k+1 runs concurrently with its VSA window of
/// loop k — so loop latency is Σ_i max(t_l(i), t_vsa(window_i)) (plus any
/// VSA nodes in empty tail windows). This is the objective Phase II
/// fine-tunes: per-window rebalancing has no effect on the coarse
/// max-of-sums form but directly shrinks imbalanced windows here. Always
/// >= ParallelCycles and == it when one side dominates every window.
double WindowedParallelCycles(const ArrayConfig& cfg,
                              std::span<const LayerNode> layers,
                              std::span<const VsaNode> vsa_ops,
                              std::span<const std::int64_t> nl,
                              std::span<const std::int64_t> nv,
                              std::span<const VsaSpan> windows);

}  // namespace nsflow
