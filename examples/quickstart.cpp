// Quickstart: compile an NSAI workload with NSFlow's frontend, inspect the
// generated design, deploy it on the simulated backend, and run a kernel.
//
//   $ ./quickstart
//
// Walks the full Fig. 2 flow in ~40 lines of user code.
#include <cstdio>

#include "common/rng.h"
#include "nsflow/framework.h"
#include "vsa/block_code.h"
#include "workloads/builders.h"

int main() {
  using namespace nsflow;

  // 1. Build (or ingest) a workload. Here: NVSA — ResNet-18 perception over
  //    16 RAVEN panels plus a VSA reasoning backend (paper Table I).
  OperatorGraph workload = workloads::MakeNvsa();
  std::printf("Workload: %s, %lld ops, %.2f GFLOPs\n",
              workload.workload_name().c_str(),
              static_cast<long long>(workload.size()),
              workload.TotalFlops() / 1e9);

  // 2. Frontend: dataflow graph -> two-phase DSE -> design config.
  const Compiler compiler;
  const CompiledDesign compiled = compiler.Compile(std::move(workload));
  const auto& design = compiled.design();
  std::printf("Generated AdArray: H=%lld W=%lld N=%lld (partition %lld:%lld),"
              " SIMD width %lld, %s mode\n",
              static_cast<long long>(design.array.height),
              static_cast<long long>(design.array.width),
              static_cast<long long>(design.array.count),
              static_cast<long long>(design.default_nl),
              static_cast<long long>(design.default_nv),
              static_cast<long long>(design.simd_width),
              design.sequential_mode ? "sequential" : "folded");
  std::printf("Predicted end-to-end latency: %.3f ms\n",
              compiled.PredictedSeconds() * 1e3);

  // 3. Check the deployment fits the U250 (Table III).
  const ResourceReport report = Report(compiled, U250());
  std::printf("U250 utilization: DSP %.0f%%, LUT %.0f%%, BRAM %.0f%% -> %s\n",
              report.dsp_util * 100.0, report.lut_util * 100.0,
              report.bram_util * 100.0, report.fits ? "fits" : "DOES NOT FIT");

  // 4. Backend: deploy on the cycle-level simulator and launch a VSA kernel
  //    through the XRT-like runtime.
  const auto accelerator = Deploy(compiled);
  Rng rng(7);
  const vsa::BlockShape shape{4, 256};
  auto role = vsa::RandomHyperVector(shape, rng);
  auto filler = vsa::RandomHyperVector(shape, rng);
  role.NormalizeBlocks();
  filler.NormalizeBlocks();

  const auto bound = accelerator->RunBind(role, filler);
  std::printf("Bound a [4,256] block-code pair on-device in %.0f cycles "
              "(%.2f us @ 272 MHz)\n",
              bound.device_cycles, bound.device_cycles / 272.0);

  const vsa::HyperVector composite(shape, bound.output);
  const auto recovered = accelerator->RunUnbind(composite, filler);
  const vsa::HyperVector estimate(shape, recovered.output);
  std::printf("Unbinding recovered the role with similarity %.3f\n",
              vsa::Similarity(estimate, role));

  // 5. Full simulated inference run.
  std::printf("Simulated end-to-end inference: %.3f ms\n",
              accelerator->RunWorkload() * 1e3);

  // The emitted artifacts a real deployment would consume:
  std::printf("\n--- design_config.json (first 400 chars) ---\n%.400s...\n",
              compiled.design_config_json.c_str());
  return 0;
}
