// Mixed-precision reasoning-accuracy harness — paper Table IV.
//
// Evaluates the VSA reasoner on the three dataset-analogue suites under the
// five precision settings the paper reports (FP32, FP16, INT8, MP = INT8 NN
// + INT4 symbolic, INT4), together with the model memory footprint at each
// setting. NN quantization cannot change the symbolic arithmetic directly;
// its effect on the pipeline is coarser perception — modeled as a
// perception-noise multiplier on the panel encodings, calibrated against the
// CNN-side accuracy drops the NVSA paper reports for its quantized frontend.
#pragma once

#include <string>
#include <vector>

#include "quant/precision.h"
#include "reasoning/rpm.h"

namespace nsflow::reasoning {

/// One Table IV column.
struct PrecisionSetting {
  std::string label;
  Precision nn_precision = Precision::kFP32;
  Precision vsa_precision = Precision::kFP32;
  /// Perception-noise multiplier induced by NN quantization.
  double nn_noise_multiplier = 1.0;
};

/// The five paper columns in order.
std::vector<PrecisionSetting> TableIvSettings();

/// Model memory footprint at a setting (Table IV bottom row): neural
/// parameters at the NN precision + symbolic codebooks/dictionaries at the
/// VSA precision. Element counts are chosen to reproduce the paper's
/// 32 MB @ FP32 anchor (see accuracy.cpp for the breakdown).
double ModelMemoryBytes(const PrecisionSetting& setting);

struct AccuracyCell {
  std::string suite;
  std::string setting;
  double accuracy = 0.0;
  int trials = 0;
};

/// Evaluate one (suite, setting) cell over `trials` generated tasks.
AccuracyCell EvaluateAccuracy(const RpmSuiteSpec& suite,
                              const PrecisionSetting& setting, int trials,
                              std::uint64_t seed = 42);

/// Per-suite base perception noise, calibrated so FP32 accuracy lands near
/// the paper's anchors (RAVEN 98.9 / I-RAVEN 99.0 / PGM 68.7).
double SuiteBaseNoise(const RpmSuiteSpec& suite);

/// Per-suite damping of the precision-induced noise multiplier (the harder
/// suite sits on a steeper accuracy-vs-noise curve).
double SuiteNoiseSensitivity(const RpmSuiteSpec& suite);

}  // namespace nsflow::reasoning
