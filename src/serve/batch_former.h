// Batch forming policy: coalesce the FIFO request stream into batches under
// a max-batch-size / max-wait contract.
//
// A batch closes when either
//   * it reaches `max_batch` requests (closed at the last arrival), or
//   * the *oldest* request in it has waited `max_wait_s` AND a server is
//     free (closed at that moment — the next arrival proves virtual time
//     passed it). While every replica is busy (`busy_until` at Add time),
//     waiting longer costs nothing, so the pending batch keeps absorbing
//     backlog up to max_batch — this is what makes batching engage at
//     saturation, where the amortization matters most.
//
// The former is a pure, single-threaded policy object operating on
// arrival-stamped requests in arrival order; all latency/wait bookkeeping is
// virtual time, so forming is deterministic and unit-testable in isolation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "serve/request.h"

namespace nsflow::serve {

struct BatchPolicy {
  std::int64_t max_batch = 8;
  double max_wait_s = 5e-3;
};

class BatchFormer {
 public:
  explicit BatchFormer(BatchPolicy policy);

  /// Feed the next request (arrival order). Returns a closed batch when the
  /// policy fires; the new request is never part of a batch closed by its
  /// own arrival's deadline check (it arrived after the deadline).
  /// `busy_until` is the earliest time any server frees up (0 when one is
  /// already idle): the wait deadline stretches to it, growing batches from
  /// backlog while dispatch would stall anyway.
  std::optional<Batch> Add(const Request& request, double busy_until = 0.0);

  /// Close the pending batch at `now` (stream drained / engine shutdown).
  std::optional<Batch> Flush(double now);

  /// Virtual deadline of the pending batch (+inf when nothing pends).
  double Deadline() const;

  std::int64_t pending() const {
    return static_cast<std::int64_t>(pending_.size());
  }
  const BatchPolicy& policy() const { return policy_; }

 private:
  Batch CloseAt(double formed_s);

  BatchPolicy policy_;
  std::vector<Request> pending_;
};

}  // namespace nsflow::serve
