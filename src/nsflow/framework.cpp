#include "nsflow/framework.h"

#include "dse/design_config.h"
#include "fpga/rtl_emitter.h"
#include "graph/trace.h"
#include "nsflow/host_codegen.h"

namespace nsflow {

double CompiledDesign::PredictedSeconds() const {
  return EndToEndSeconds(*dataflow, dse.design);
}

CompiledDesign Compiler::Compile(OperatorGraph graph) const {
  CompiledDesign compiled;
  compiled.graph = std::make_unique<OperatorGraph>(std::move(graph));
  compiled.dataflow = std::make_unique<DataflowGraph>(*compiled.graph);

  DseOptions dse_options = options_.dse;
  dse_options.dictionary_bytes = options_.dictionary_bytes;
  compiled.dse = RunTwoPhaseDse(*compiled.dataflow, dse_options);

  compiled.design_config_json =
      EmitDesignConfig(compiled.dse.design, compiled.graph->workload_name());
  compiled.host_code = EmitHostCode(*compiled.dataflow, compiled.dse.design,
                                    compiled.graph->workload_name());
  compiled.rtl_parameter_header = EmitParameterHeader(compiled.dse.design);
  compiled.rtl_top_level = EmitTopLevel(compiled.dse.design);
  return compiled;
}

CompiledDesign Compiler::CompileJsonTrace(const std::string& trace_json) const {
  return Compile(ParseJsonTrace(trace_json));
}

std::unique_ptr<runtime::Accelerator> Deploy(const CompiledDesign& compiled) {
  return std::make_unique<runtime::Accelerator>(compiled.dse.design,
                                                *compiled.dataflow);
}

ResourceReport Report(const CompiledDesign& compiled,
                      const FpgaDevice& device) {
  return EstimateResources(compiled.dse.design, device);
}

}  // namespace nsflow
