// Register-level simulation of one AdArray column running vector-symbolic
// circular convolution — the datapath of paper Fig. 3(b).
//
// Each PE in the column has four registers:
//   * Stationary Reg — one element of vector A, loaded before streaming.
//   * Streaming Reg  — the element of vector B being multiplied this cycle.
//   * Passing Reg    — holds the incoming B element for ONE cycle before it
//                      enters the streaming register; forwarding to the next
//                      PE happens the following cycle. This extra register is
//                      what creates the 1-cycle pace mismatch between A and B
//                      that turns a MAC column into a circular convolver.
//   * Partial-Sum Reg — accumulates with the partial product from the PE
//                      above (1 cycle per row).
//
// B therefore advances 2 cycles per row while partial sums advance 1 cycle
// per row; the net skew of 1 cycle per row walks each descending partial sum
// across circularly shifted B elements, so the column emits
//   C[n] = sum_k A[k] * B[(n-k) mod d]
// at its bottom port. One pass over a d-element vector with H rows costs
//   T = 3H + d - 1 cycles  (2H fill skew + d stream + H drain − 1),
// matching Eq. (3)/(4)'s streaming period. Vectors longer than H rows run in
// ⌈d/H⌉ passes with A chunked and partial outputs accumulated (the
// simulator's `Run` handles the chunking; tests validate both the functional
// output against vsa::CircularConvolve and the cycle count against Eq. (4)).
//
// In NN mode the passing register is bypassed via the multiplexer and the
// column behaves as a standard systolic column (see adarray.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace nsflow::arch {

/// Architectural state of one PE (exposed for tests that walk the paper's
/// cycle-by-cycle example).
struct CircConvPe {
  float stationary = 0.0f;
  float passing = 0.0f;
  float streaming = 0.0f;
  float psum_out = 0.0f;
  bool passing_valid = false;
  bool streaming_valid = false;
  bool psum_valid = false;
  std::int64_t passing_index = -1;    // Which B element sits in passing.
  std::int64_t streaming_index = -1;  // Which B element sits in streaming.
  std::int64_t psum_target = -1;      // Which output the psum belongs to.
};

/// Result of running one or more passes through the column.
struct CircConvRun {
  std::vector<float> output;   // C, length d.
  std::int64_t cycles = 0;     // Total column-busy cycles.
  std::int64_t passes = 0;     // ⌈d/H⌉ chunk passes executed.
};

class CircConvColumn {
 public:
  explicit CircConvColumn(std::int64_t height);

  std::int64_t height() const { return height_; }

  /// Full circular convolution C = A ⊛ B of dimension d = a.size(),
  /// chunking A across passes when d > H. Cycle count per pass is the
  /// register-pipeline latency T = 3H + d − 1 (when the chunk uses all H
  /// rows; short final chunks still pay the full fill+drain).
  CircConvRun Run(std::span<const float> a, std::span<const float> b);

  /// Single register-stepped pass with A-chunk `a_chunk` (size <= H) against
  /// the full stream `b`, accumulating into `accum` (size d). Returns cycles.
  /// `chunk_offset` is the index of a_chunk[0] within the original A.
  std::int64_t StepPass(std::span<const float> a_chunk,
                        std::int64_t chunk_offset, std::span<const float> b,
                        std::span<float> accum);

  /// PE state inspection after the most recent StepPass cycle loop.
  const std::vector<CircConvPe>& pes() const { return pes_; }

 private:
  std::int64_t height_;
  std::vector<CircConvPe> pes_;
};

}  // namespace nsflow::arch
