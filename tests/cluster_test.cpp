// Tests for multi-node cluster serving (serve/cluster.h, docs/CLUSTER.md):
// strict spec parsing, the closed-form network cost model against
// hand-computed dataflow footprints, router determinism under a fixed
// seed, the single-node bit-identity contract (a one-node cluster's
// artifacts are byte-identical to a cluster-free run), cross-node pricing
// (remote dispatch is never free), node-scoped fault injection, and the
// planner's cross-node placement with its JSON round-trip.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.h"
#include "graph/dataflow_graph.h"
#include "serve/adversity.h"
#include "serve/capacity_planner.h"
#include "serve/cluster.h"
#include "serve/engine.h"
#include "serve/workload_registry.h"

namespace nsflow::serve {
namespace {

// ------------------------------------------------------------ spec parsing

TEST(ClusterSpecTest, ParsesAndRoundTripsCanonically) {
  const ClusterSpec none = ClusterSpec::Parse("none");
  EXPECT_FALSE(none.enabled());
  EXPECT_EQ(none.ToString(), "none");

  const ClusterSpec hash = ClusterSpec::Parse("hash:nodes=4,hop_us=2.5");
  EXPECT_TRUE(hash.enabled());
  EXPECT_EQ(hash.nodes(), 4);
  EXPECT_DOUBLE_EQ(hash.hop_s(), 2.5e-6);
  EXPECT_EQ(hash.hops(), 1);                     // Default.
  EXPECT_DOUBLE_EQ(hash.gigabits_per_s(), 100.0);  // Default.
  EXPECT_EQ(ClusterSpec::Parse(hash.ToString()).ToString(), hash.ToString());

  const ClusterSpec ll =
      ClusterSpec::Parse("least-loaded:affinity=0.5,gbps=25,hops=3");
  EXPECT_EQ(ll.policy, ClusterRouterPolicy::kLeastLoaded);
  EXPECT_DOUBLE_EQ(ll.affinity(), 0.5);
  EXPECT_DOUBLE_EQ(ll.gigabits_per_s(), 25.0);
  EXPECT_EQ(ll.hops(), 3);
  EXPECT_EQ(ClusterSpec::Parse(ll.ToString()).params, ll.params);
}

TEST(ClusterSpecTest, RejectsUnknownNamesKeysAndBadRanges) {
  EXPECT_THROW(ClusterSpec::Parse("mesh"), Error);
  EXPECT_THROW(ClusterSpec::Parse("hash:fanout=2"), Error);
  // affinity belongs to least-loaded only.
  EXPECT_THROW(ClusterSpec::Parse("hash:affinity=1"), Error);
  EXPECT_THROW(ClusterSpec::Parse("hash:nodes=0"), Error);
  EXPECT_THROW(ClusterSpec::Parse("hash:nodes=2.5"), Error);
  EXPECT_THROW(ClusterSpec::Parse("hash:gbps=0"), Error);
  EXPECT_THROW(ClusterSpec::Parse("hash:hop_us=-1"), Error);
  EXPECT_THROW(ClusterSpec::Parse("least-loaded:affinity=-0.1"), Error);
}

// ----------------------------------------------------- network cost model

/// The documented closed forms (docs/CLUSTER.md), re-derived from the
/// graph by hand: request = first layer's A[m, n] activation (4 B/elem),
/// or the first VSA block when no NN layers exist; response = the last VSA
/// result hypervector, else the last layer's output footprint.
WorkloadFootprint HandFootprint(const DataflowGraph& dfg) {
  WorkloadFootprint fp;
  if (!dfg.layers().empty()) {
    fp.request_bytes = 4.0 * static_cast<double>(dfg.layers().front().gemm.m) *
                       static_cast<double>(dfg.layers().front().gemm.n);
  } else if (!dfg.vsa_ops().empty()) {
    fp.request_bytes = 4.0 *
                       static_cast<double>(dfg.vsa_ops().front().vsa.count) *
                       static_cast<double>(dfg.vsa_ops().front().vsa.dim);
  }
  if (!dfg.vsa_ops().empty()) {
    fp.response_bytes = 4.0 * static_cast<double>(dfg.vsa_ops().back().vsa.dim);
  } else if (!dfg.layers().empty()) {
    fp.response_bytes = dfg.layers().back().output_bytes;
  }
  return fp;
}

TEST(NetworkModelTest, FootprintsMatchHandComputedPayloads) {
  WorkloadRegistry registry;
  for (const char* name : {"mlp", "resnet18", "nvsa"}) {
    registry.RegisterBuiltin(name);
    const DataflowGraph& dfg = registry.dataflow(registry.IdOf(name));
    const WorkloadFootprint fp = NetworkModel::Footprint(dfg);
    const WorkloadFootprint hand = HandFootprint(dfg);
    EXPECT_DOUBLE_EQ(fp.request_bytes, hand.request_bytes) << name;
    EXPECT_DOUBLE_EQ(fp.response_bytes, hand.response_bytes) << name;
    // Remote dispatch is never free: both directions carry payload.
    EXPECT_GT(fp.request_bytes, 0.0) << name;
    EXPECT_GT(fp.response_bytes, 0.0) << name;
  }
}

TEST(NetworkModelTest, TransferTimeIsHopsPlusBytesOverBandwidth) {
  WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  // 8 Gb/s = 1e9 B/s and 2 x 10 us of hop latency: easy closed forms.
  const ClusterSpec spec = ClusterSpec::Parse("hash:hops=2,hop_us=10,gbps=8");
  const NetworkModel model(spec, registry.Dataflows());
  EXPECT_DOUBLE_EQ(model.TransferSeconds(0.0), 20e-6);
  EXPECT_DOUBLE_EQ(model.TransferSeconds(1e9), 20e-6 + 1.0);
  EXPECT_DOUBLE_EQ(model.TransferSeconds(5e8), 20e-6 + 0.5);

  // Payload scales linearly with batch size; hop latency does not (it is
  // charged once per transfer inside TransferSeconds).
  const WorkloadId mlp = registry.IdOf("mlp");
  EXPECT_DOUBLE_EQ(model.RequestBytes(mlp, 3), 3.0 * model.RequestBytes(mlp, 1));
  EXPECT_DOUBLE_EQ(model.ResponseBytes(mlp, 4),
                   4.0 * model.ResponseBytes(mlp, 1));
}

// ---------------------------------------------- routed-run determinism

ServeOptions ClusterRunOptions(const std::string& cluster) {
  ServeOptions options;
  options.qps = 300.0;
  options.duration_s = 0.5;
  options.seed = 7;
  options.trace.enabled = true;
  if (!cluster.empty()) {
    options.cluster = ClusterSpec::Parse(cluster);
  }
  return options;
}

TEST(ClusterServeTest, RoutedRunsAreBitDeterministicUnderBothPolicies) {
  WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  registry.RegisterBuiltin("resnet18");
  const std::vector<ReplicaSpec> replicas = registry.ReplicaSpecs(2, false);
  const std::vector<WorkloadShare> mix = {{"mlp", 0.5}, {"resnet18", 0.5}};
  for (const char* cluster :
       {"hash:nodes=2", "least-loaded:nodes=2,affinity=0.5"}) {
    const ServeOptions options = ClusterRunOptions(cluster);
    const ServeReport a = RunSyntheticServe(registry, replicas, mix, options);
    const ServeReport b = RunSyntheticServe(registry, replicas, mix, options);
    ASSERT_GT(a.summary.completed, 0) << cluster;
    EXPECT_EQ(a.summary.completed, a.generated_requests) << cluster;
    ASSERT_EQ(a.summary.completed, b.summary.completed) << cluster;
    ASSERT_EQ(a.summary.p99_ms, b.summary.p99_ms) << cluster;
    ASSERT_EQ(a.dispatches.size(), b.dispatches.size()) << cluster;
    ASSERT_NE(a.obs, nullptr);
    ASSERT_NE(b.obs, nullptr);
    EXPECT_EQ(a.obs->ChromeTraceJson(), b.obs->ChromeTraceJson()) << cluster;
    EXPECT_EQ(a.obs->MetricsJson(), b.obs->MetricsJson()) << cluster;
  }
}

TEST(ClusterServeTest, OneNodeClusterIsByteIdenticalToNoCluster) {
  // The single-node bit-identity contract (docs/CLUSTER.md): constructing
  // the cluster layer with one node must not perturb a single byte of the
  // serve artifacts — stats, Chrome trace, metrics timeline.
  WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  registry.RegisterBuiltin("resnet18");
  const std::vector<ReplicaSpec> replicas = registry.ReplicaSpecs(2, false);
  const std::vector<WorkloadShare> mix = {{"mlp", 0.5}, {"resnet18", 0.5}};
  const ServeReport plain =
      RunSyntheticServe(registry, replicas, mix, ClusterRunOptions(""));
  const ServeReport one_node = RunSyntheticServe(
      registry, replicas, mix, ClusterRunOptions("least-loaded:nodes=1"));
  ASSERT_GT(plain.summary.completed, 0);
  EXPECT_EQ(plain.summary.completed, one_node.summary.completed);
  EXPECT_EQ(plain.summary.p99_ms, one_node.summary.p99_ms);
  EXPECT_EQ(plain.summary.throughput_rps, one_node.summary.throughput_rps);
  EXPECT_EQ(plain.dispatches.size(), one_node.dispatches.size());
  // No per-node table appears for a one-node cluster.
  EXPECT_TRUE(one_node.summary.per_node.empty());
  ASSERT_NE(plain.obs, nullptr);
  ASSERT_NE(one_node.obs, nullptr);
  EXPECT_EQ(plain.obs->ChromeTraceJson(), one_node.obs->ChromeTraceJson());
  EXPECT_EQ(plain.obs->MetricsJson(), one_node.obs->MetricsJson());
}

TEST(ClusterServeTest, CrossNodeDispatchIsPricedNeverFree) {
  // A shared two-replica pool split across two nodes: both tenants home on
  // node 0, so load must spill to node 1 — and every spilled batch pays
  // modeled network time and moves payload bytes.
  WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  registry.RegisterBuiltin("resnet18");
  const std::vector<ReplicaSpec> replicas = registry.ReplicaSpecs(2, false);
  const std::vector<WorkloadShare> mix = {{"mlp", 0.5}, {"resnet18", 0.5}};
  const ServeReport report = RunSyntheticServe(
      registry, replicas, mix, ClusterRunOptions("least-loaded:nodes=2"));
  ASSERT_EQ(report.summary.per_node.size(), 2u);
  std::int64_t remote = 0;
  double network_s = 0.0;
  double bytes = 0.0;
  for (const NodeSummary& node : report.summary.per_node) {
    remote += node.remote_batches;
    network_s += node.network_s;
    bytes += node.bytes_in + node.bytes_out;
    // A node with remote traffic always shows network time and bytes.
    if (node.remote_batches > 0) {
      EXPECT_GT(node.network_s, 0.0);
      EXPECT_GT(node.bytes_in, 0.0);
      EXPECT_GT(node.bytes_out, 0.0);
    }
  }
  EXPECT_GT(remote, 0);
  EXPECT_GT(network_s, 0.0);
  EXPECT_GT(bytes, 0.0);
  // The cluster metrics are registered on multi-node runs.
  ASSERT_NE(report.obs, nullptr);
  EXPECT_NE(report.obs->MetricsJson().find("cluster.remote_dispatches"),
            std::string::npos);
}

// ----------------------------------------------- node-scoped adversity

TEST(ClusterServeTest, NodeFailureDarkensEveryReplicaOnTheNode) {
  WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  registry.RegisterBuiltin("resnet18");
  const std::vector<ReplicaSpec> replicas = registry.ReplicaSpecs(4, true);
  const std::vector<WorkloadShare> mix = {{"mlp", 0.5}, {"resnet18", 0.5}};
  ServeOptions options = ClusterRunOptions("least-loaded:nodes=2");
  options.duration_s = 1.0;
  // Partitioned replicas are mlp={0,2}, resnet18={1,3}; this placement
  // gives every tenant a replica on each node, so losing a node leaves
  // both servable.
  options.cluster_nodes = {0, 1, 1, 0};
  options.adversity =
      AdversitySpec::Parse("replica-fail:at=0.3,down=0.3,node=0");
  const ServeReport a = RunSyntheticServe(registry, replicas, mix, options);
  const ServeReport b = RunSyntheticServe(registry, replicas, mix, options);
  ASSERT_GT(a.summary.completed, 0);
  EXPECT_EQ(a.summary.completed, a.generated_requests);
  EXPECT_EQ(a.summary.p99_ms, b.summary.p99_ms);
  ASSERT_NE(a.obs, nullptr);
  EXPECT_EQ(a.obs->ChromeTraceJson(), b.obs->ChromeTraceJson());

  // The pool timeline names the node-scoped outage, and both of the
  // node's replicas (0 and 3) went dark.
  bool node_fault = false;
  bool r0_failed = false;
  bool r3_failed = false;
  for (const PoolEvent& event : a.summary.timeline) {
    if (event.kind != PoolEventKind::kFault) {
      continue;
    }
    node_fault |= event.event.find("node 0 failing") != std::string::npos;
    r0_failed |= event.event.find("replica 0 failed") != std::string::npos;
    r3_failed |= event.event.find("replica 3 failed") != std::string::npos;
  }
  EXPECT_TRUE(node_fault);
  EXPECT_TRUE(r0_failed);
  EXPECT_TRUE(r3_failed);
}

TEST(ClusterServeTest, NodeFailureWithoutClusterIsSkippedLoudly) {
  WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  const std::vector<ReplicaSpec> replicas = registry.ReplicaSpecs(2, false);
  const std::vector<WorkloadShare> mix = {{"mlp", 1.0}};
  ServeOptions options = ClusterRunOptions("");
  options.adversity =
      AdversitySpec::Parse("replica-fail:at=0.1,down=0.1,node=0");
  const ServeReport report =
      RunSyntheticServe(registry, replicas, mix, options);
  EXPECT_EQ(report.summary.completed, report.generated_requests);
  bool skipped = false;
  for (const PoolEvent& event : report.summary.timeline) {
    skipped |= event.event.find("node failure skipped") != std::string::npos;
  }
  EXPECT_TRUE(skipped);
}

// --------------------------------------------------- planner placement

TEST(ClusterPlannerTest, PlacesReplicasUnderPerNodeBudgetsAndRoundTrips) {
  const std::vector<WorkloadShare> mix = {{"mlp", 0.6}, {"resnet18", 0.4}};
  WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  registry.RegisterBuiltin("resnet18");
  PlanOptions options;
  options.qps = 200.0;
  options.p99_slo_s = 50e-3;
  options.devices = 4;
  options.nodes = 2;
  const PoolPlan plan = PlanCapacity(registry, mix, options);
  ASSERT_TRUE(plan.feasible) << plan.note;
  EXPECT_EQ(plan.nodes, 2);
  const std::vector<int> placement = plan.Placement();
  ASSERT_EQ(static_cast<int>(placement.size()), plan.TotalReplicas());
  for (const int node : placement) {
    EXPECT_GE(node, 0);
    EXPECT_LT(node, 2);
  }
  for (const GroupPlan& group : plan.groups) {
    EXPECT_EQ(static_cast<int>(group.placement.size()), group.replicas)
        << group.workload;
  }

  // JSON round-trip carries the cluster shape and the exact placement.
  const Json json = plan.ToJson();
  ASSERT_TRUE(json.Contains("cluster"));
  EXPECT_EQ(json.At("cluster").At("nodes").AsInt(), 2);
  WorkloadRegistry reload_registry;
  const PoolPlan reloaded = LoadPlan(json, reload_registry);
  EXPECT_EQ(reloaded.nodes, 2);
  EXPECT_EQ(reloaded.Placement(), placement);
}

TEST(ClusterPlannerTest, SingleNodePlanJsonOmitsTheClusterSchema) {
  const std::vector<WorkloadShare> mix = {{"mlp", 1.0}};
  WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  PlanOptions options;
  options.qps = 100.0;
  options.p99_slo_s = 50e-3;
  const PoolPlan plan = PlanCapacity(registry, mix, options);
  ASSERT_TRUE(plan.feasible) << plan.note;
  EXPECT_EQ(plan.nodes, 1);
  // Pre-cluster schema exactly: no cluster object, no placement arrays —
  // plans written by older builds and readers stay interchangeable.
  const Json json = plan.ToJson();
  EXPECT_FALSE(json.Contains("cluster"));
  for (const Json& group : json.At("groups").AsArray()) {
    EXPECT_FALSE(group.Contains("placement"));
  }
}

TEST(ClusterPlannerTest, RejectsUnevenDeviceSplits) {
  const std::vector<WorkloadShare> mix = {{"mlp", 1.0}};
  WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  PlanOptions options;
  options.devices = 3;
  options.nodes = 2;
  EXPECT_THROW(PlanCapacity(registry, mix, options), Error);
}

}  // namespace
}  // namespace nsflow::serve
