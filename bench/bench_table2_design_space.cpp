// Reproduces paper Table II — NSFlow design space and the two-phase pruning.
//
// Expected shape: the original cross-coupled space is ~10^300 for m = 10
// (max 2^m-PE sub-arrays) on an NVSA-scale dataflow graph; Phase I reduces
// it to ~10^3 model evaluations plus Iter x #layers for Phase II — a
// reduction of ~100 orders of magnitude.
#include <cstdio>

#include "common/table.h"
#include "dse/design_space.h"
#include "dse/dse.h"
#include "workloads/builders.h"

int main() {
  using namespace nsflow;
  std::printf("=== NSFlow reproduction: Table II design space ===\n\n");

  const OperatorGraph graph = workloads::MakeNvsa();
  const DataflowGraph dfg(graph);

  TablePrinter table({"m (max PEs = 2^m)", "HW points", "HW pruned",
                      "log10 original", "log10 Phase I", "log10 Phase II",
                      "log10 reduction"});
  for (const int m : {8, 10, 12, 14}) {
    const auto size = CountDesignSpace(dfg, m, /*phase2_iters=*/4);
    table.AddRow({std::to_string(m),
                  std::to_string(size.hw_points_original),
                  std::to_string(size.hw_points_pruned),
                  TablePrinter::Num(size.log10_original, 1),
                  TablePrinter::Num(size.log10_phase1, 1),
                  TablePrinter::Num(size.log10_phase2, 1),
                  TablePrinter::Num(size.log10_reduction, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Cross-check with the DSE's actual evaluation counter.
  const DseResult result = RunTwoPhaseDse(dfg, {});
  std::printf(
      "Actual DSE model evaluations on NVSA: %lld (vs ~10^%d original "
      "points)\n",
      static_cast<long long>(result.evaluated_points),
      static_cast<int>(CountDesignSpace(dfg, 10, 4).log10_original));
  std::printf("Paper anchor: 10^300 original -> ~10^3 after phasing "
              "(10^100x reduction claim; see Table II).\n");
  return 0;
}
