#include "workloads/builders.h"

#include <string>

#include "common/error.h"
#include "workloads/resnet18.h"

namespace nsflow::workloads {
namespace {

/// Incremental graph assembly helper: tracks the last node so chains read
/// top-to-bottom, and centralizes the byte accounting per precision policy.
class GraphBuilder {
 public:
  GraphBuilder(std::string name, PrecisionPolicy precision, int loop_count)
      : graph_(std::move(name)) {
    graph_.set_precision(precision);
    graph_.set_loop_count(loop_count);
  }

  double NeuralBytes(double elems) const {
    return elems * BytesOf(graph_.precision().neural);
  }
  double SymbolicBytes(double elems) const {
    return elems * BytesOf(graph_.precision().symbolic);
  }

  NodeId AddInput(const std::string& name, double elems) {
    OpNode node;
    node.name = name;
    node.kind = OpKind::kInput;
    node.output_bytes = NeuralBytes(elems);
    return graph_.AddNode(std::move(node));
  }

  /// Full ResNet-18 stack: conv + relu after every conv, maxpool after the
  /// stem. Returns the final activation node.
  NodeId AddResNet18(NodeId input, std::int64_t input_size,
                     std::int64_t batch) {
    NodeId last = input;
    const auto layers = ResNet18Layers(input_size);
    for (std::size_t i = 0; i < layers.size(); ++i) {
      const auto& spec = layers[i];
      OpNode conv;
      conv.name = spec.name;
      conv.kind = OpKind::kConv2d;
      conv.inputs = {last};
      conv.gemm = spec.Gemm(batch);
      conv.weight_bytes = NeuralBytes(static_cast<double>(spec.WeightCount()));
      conv.activation_bytes =
          NeuralBytes(static_cast<double>(spec.InputCount(batch)));
      conv.output_bytes =
          NeuralBytes(static_cast<double>(spec.OutputCount(batch)));
      last = graph_.AddNode(std::move(conv));

      OpNode relu;
      relu.name = spec.name + ".relu";
      relu.kind = OpKind::kRelu;
      relu.inputs = {last};
      relu.elem_count = spec.OutputCount(batch);
      relu.activation_bytes =
          NeuralBytes(static_cast<double>(spec.OutputCount(batch)));
      relu.output_bytes = relu.activation_bytes;
      last = graph_.AddNode(std::move(relu));

      if (i == 0) {
        OpNode pool;
        pool.name = "maxpool";
        pool.kind = OpKind::kMaxPool;
        pool.inputs = {last};
        pool.elem_count = spec.OutputCount(batch);
        pool.activation_bytes = relu.activation_bytes;
        pool.output_bytes = relu.activation_bytes / 4.0;
        last = graph_.AddNode(std::move(pool));
      }
    }
    return last;
  }

  /// A GEMM projection layer (transformer head / classifier).
  NodeId AddLinear(const std::string& name, NodeId input, std::int64_t rows,
                   std::int64_t cols, std::int64_t batch) {
    OpNode node;
    node.name = name;
    node.kind = OpKind::kLinear;
    node.inputs = {input};
    node.gemm = {rows, cols, batch};
    node.weight_bytes = NeuralBytes(static_cast<double>(rows * cols));
    node.activation_bytes = NeuralBytes(static_cast<double>(cols * batch));
    node.output_bytes = NeuralBytes(static_cast<double>(rows * batch));
    return graph_.AddNode(std::move(node));
  }

  /// One VSA binding/unbinding node fusing `fused` block-code operations.
  NodeId AddVsaOp(const std::string& name, OpKind kind,
                  std::vector<NodeId> inputs, std::int64_t blocks,
                  std::int64_t block_dim, std::int64_t fused) {
    NSF_DCHECK(kind == OpKind::kCircularBind || kind == OpKind::kCircularUnbind);
    OpNode node;
    node.name = name;
    node.kind = kind;
    node.inputs = std::move(inputs);
    node.vsa = {blocks * fused, block_dim};
    const double operand_elems =
        static_cast<double>(blocks * block_dim * fused);
    node.weight_bytes = SymbolicBytes(operand_elems);      // Stationary A.
    node.activation_bytes = SymbolicBytes(operand_elems);  // Streamed B.
    node.output_bytes = SymbolicBytes(operand_elems);
    return graph_.AddNode(std::move(node));
  }

  NodeId AddSimdOp(const std::string& name, OpKind kind,
                   std::vector<NodeId> inputs, std::int64_t elems,
                   bool symbolic) {
    OpNode node;
    node.name = name;
    node.kind = kind;
    node.inputs = std::move(inputs);
    node.elem_count = elems;
    const double bytes = symbolic ? SymbolicBytes(static_cast<double>(elems))
                                  : NeuralBytes(static_cast<double>(elems));
    node.activation_bytes = bytes;
    node.output_bytes = bytes / 8.0;  // Reductions shrink the output.
    return graph_.AddNode(std::move(node));
  }

  OperatorGraph Finish() {
    graph_.Validate();
    return std::move(graph_);
  }

  OperatorGraph& graph() { return graph_; }

 private:
  OperatorGraph graph_;
};

/// Shared NVSA/LVRF symbolic backend: `stages` sequential phases, each with
/// `parallel` independent unbind/bind nodes (the BFS pass groups these), each
/// fusing `fused` block-code ops, followed by batched cleanup matching and
/// scalar glue (sum / clamp / mul) on the SIMD unit — mirroring Listing 1.
NodeId AddVsaBackend(GraphBuilder& b, NodeId head, const std::string& prefix,
                     std::int64_t stages, std::int64_t parallel,
                     std::int64_t blocks, std::int64_t block_dim,
                     std::int64_t fused, std::int64_t dict_size) {
  NodeId stage_head = head;
  for (std::int64_t s = 0; s < stages; ++s) {
    std::vector<NodeId> stage_nodes;
    for (std::int64_t p = 0; p < parallel; ++p) {
      const OpKind kind =
          p % 2 == 0 ? OpKind::kCircularUnbind : OpKind::kCircularBind;
      // Heterogeneous node sizes (x0.5 / x1 / x1.5 cycling, mean x1):
      // real VSA programs mix small query bindings with large batched rule
      // evaluations, which is what gives Phase II's per-node allocation
      // something to exploit beyond the uniform Phase I split.
      const std::int64_t scaled =
          std::max<std::int64_t>(1, fused * (1 + ((s + p) % 3)) / 2);
      stage_nodes.push_back(
          b.AddVsaOp(prefix + "_vsa_s" + std::to_string(s) + "_p" +
                         std::to_string(p),
                     kind, {stage_head}, blocks, block_dim, scaled));
    }
    // Batched cleanup across the dictionary joins the stage's nodes.
    stage_head = b.AddSimdOp(
        prefix + "_match_s" + std::to_string(s), OpKind::kMatchProbBatched,
        std::move(stage_nodes), dict_size * blocks * block_dim,
        /*symbolic=*/true);
  }
  const NodeId sum = b.AddSimdOp(prefix + "_sum", OpKind::kVecSum,
                                 {stage_head}, dict_size, /*symbolic=*/true);
  const NodeId clamp = b.AddSimdOp(prefix + "_clamp", OpKind::kVecClamp, {sum},
                                   dict_size, /*symbolic=*/true);
  return b.AddSimdOp(prefix + "_mul", OpKind::kVecMul, {clamp}, dict_size,
                     /*symbolic=*/true);
}

}  // namespace

OperatorGraph MakeNvsa(const NvsaParams& p) {
  GraphBuilder b("NVSA", PrecisionPolicy::MixedNvsa(), p.loop_count);
  const NodeId input = b.AddInput(
      "scene", static_cast<double>(p.batch * 3 * p.input_size * p.input_size));
  const NodeId backbone = b.AddResNet18(input, p.input_size, p.batch);
  // PMF-to-VSA head: per-panel attribute PMFs projected into block codes.
  const NodeId pmf =
      b.AddSimdOp("pmf_to_vsa", OpKind::kSoftmax, {backbone},
                  p.batch * p.blocks * p.block_dim, /*symbolic=*/false);
  AddVsaBackend(b, pmf, "nvsa", p.vsa_stages, p.vsa_parallel, p.blocks,
                p.block_dim, p.vsa_batch, p.dict_size);
  return b.Finish();
}

OperatorGraph MakeMimonet(const MimonetParams& p) {
  GraphBuilder b("MIMONet", PrecisionPolicy::Uniform(Precision::kINT8),
                 p.loop_count);
  const NodeId input = b.AddInput(
      "inputs", static_cast<double>(p.batch * 3 * p.input_size * p.input_size));

  // Superposition binding happens *before* the CNN: the MIMO trick runs one
  // network over bound-together inputs.
  const NodeId bound =
      b.AddVsaOp("mimo_bind", OpKind::kCircularBind, {input}, p.blocks,
                 p.block_dim, p.vsa_batch);
  const NodeId backbone = b.AddResNet18(bound, p.input_size, p.batch);

  // Transformer-style head: three projections + softmax.
  NodeId head = backbone;
  for (const char* proj : {"q_proj", "k_proj", "v_proj"}) {
    head = b.AddLinear(std::string("head.") + proj, head, p.embed_dim,
                       p.embed_dim, p.batch * 64);
  }
  const NodeId attn = b.AddSimdOp("head.softmax", OpKind::kSoftmax, {head},
                                  p.batch * 64 * p.embed_dim,
                                  /*symbolic=*/false);

  // Unbinding recovers per-input results from the superposed output.
  std::vector<NodeId> unbinds;
  for (std::int64_t i = 0; i < p.vsa_nodes; ++i) {
    unbinds.push_back(b.AddVsaOp("mimo_unbind_" + std::to_string(i),
                                 OpKind::kCircularUnbind, {attn}, p.blocks,
                                 p.block_dim, p.vsa_batch));
  }
  b.AddSimdOp("mimo_readout", OpKind::kMatchProb, std::move(unbinds),
              p.batch * p.blocks * p.block_dim, /*symbolic=*/true);
  return b.Finish();
}

OperatorGraph MakeLvrf(const LvrfParams& p) {
  GraphBuilder b("LVRF", PrecisionPolicy::MixedNvsa(), p.loop_count);
  const NodeId input = b.AddInput(
      "scene", static_cast<double>(p.batch * 3 * p.input_size * p.input_size));
  const NodeId backbone = b.AddResNet18(input, p.input_size, p.batch);
  const NodeId pmf =
      b.AddSimdOp("pmf_to_vsa", OpKind::kSoftmax, {backbone},
                  p.batch * p.blocks * p.block_dim, /*symbolic=*/false);

  // Learnable-rule evaluation: every rule r applies its VSA program to the
  // scene vector; rules are independent (wide intra-loop parallelism), the
  // estimation head reduces over rules.
  std::vector<NodeId> rule_outputs;
  for (std::int64_t r = 0; r < p.rules; ++r) {
    NodeId rule_head = pmf;
    for (std::int64_t v = 0; v < p.vsa_per_rule; ++v) {
      const OpKind kind =
          v % 2 == 0 ? OpKind::kCircularUnbind : OpKind::kCircularBind;
      rule_head = b.AddVsaOp(
          "rule" + std::to_string(r) + "_vsa" + std::to_string(v), kind,
          {rule_head}, p.blocks, p.block_dim, p.vsa_batch);
    }
    rule_outputs.push_back(rule_head);
  }
  const NodeId estimate =
      b.AddSimdOp("rule_estimation", OpKind::kMatchProbBatched,
                  std::move(rule_outputs),
                  p.rules * p.blocks * p.block_dim * 64, /*symbolic=*/true);
  b.AddSimdOp("answer_select", OpKind::kVecSum, {estimate}, p.rules * 64,
              /*symbolic=*/true);
  return b.Finish();
}

OperatorGraph MakePrae(const PraeParams& p) {
  GraphBuilder b("PrAE", PrecisionPolicy::Uniform(Precision::kINT8),
                 p.loop_count);
  const NodeId input = b.AddInput(
      "scene", static_cast<double>(p.batch * 3 * p.input_size * p.input_size));
  const NodeId backbone = b.AddResNet18(input, p.input_size, p.batch);
  const NodeId scene_inf =
      b.AddSimdOp("scene_inference", OpKind::kSoftmax, {backbone},
                  p.batch * 4096, /*symbolic=*/false);

  // Probabilistic abduction + execution: stages of large element-wise
  // probability-tensor manipulations (no GEMM structure at all).
  NodeId head = scene_inf;
  const std::int64_t per_stage = p.abduction_elems / p.abduction_stages;
  for (std::int64_t s = 0; s < p.abduction_stages; ++s) {
    head = b.AddSimdOp("abduction_" + std::to_string(s),
                       OpKind::kProbAbduction, {head}, per_stage,
                       /*symbolic=*/true);
  }
  b.AddSimdOp("execution", OpKind::kVecSum, {head}, p.batch * 8,
              /*symbolic=*/true);
  return b.Finish();
}

OperatorGraph MakeMlp(const MlpParams& p) {
  NSF_CHECK_MSG(p.hidden_layers >= 1, "an MLP needs at least one hidden layer");
  GraphBuilder b("MLP", PrecisionPolicy::Uniform(Precision::kINT8),
                 /*loop_count=*/1);
  NodeId head = b.AddInput(
      "features", static_cast<double>(p.batch * p.input_dim));
  std::int64_t in_dim = p.input_dim;
  for (std::int64_t l = 0; l < p.hidden_layers; ++l) {
    head = b.AddLinear("fc" + std::to_string(l), head, p.hidden_dim, in_dim,
                       p.batch);
    head = b.AddSimdOp("fc" + std::to_string(l) + ".relu", OpKind::kRelu,
                       {head}, p.batch * p.hidden_dim, /*symbolic=*/false);
    in_dim = p.hidden_dim;
  }
  head = b.AddLinear("classifier", head, p.classes, in_dim, p.batch);
  b.AddSimdOp("softmax", OpKind::kSoftmax, {head}, p.batch * p.classes,
              /*symbolic=*/false);
  return b.Finish();
}

OperatorGraph MakeResnet18Classifier(const Resnet18ClassifierParams& p) {
  GraphBuilder b("ResNet18", PrecisionPolicy::Uniform(Precision::kINT8),
                 /*loop_count=*/1);
  const NodeId input = b.AddInput(
      "image", static_cast<double>(p.batch * 3 * p.input_size * p.input_size));
  const NodeId backbone = b.AddResNet18(input, p.input_size, p.batch);
  // Global-average-pooled features into the fc head the NSAI frontends drop.
  const NodeId pooled = b.AddSimdOp("avgpool", OpKind::kVecSum, {backbone},
                                    p.batch * 512, /*symbolic=*/false);
  const NodeId logits =
      b.AddLinear("fc", pooled, p.classes, 512, p.batch);
  b.AddSimdOp("softmax", OpKind::kSoftmax, {logits}, p.batch * p.classes,
              /*symbolic=*/false);
  return b.Finish();
}

OperatorGraph MakeParametricNsai(double symbolic_mem_fraction,
                                 std::int64_t input_size, std::int64_t batch) {
  NSF_CHECK_MSG(symbolic_mem_fraction >= 0.0 && symbolic_mem_fraction < 1.0,
                "symbolic memory fraction must be in [0, 1)");
  GraphBuilder b("ParametricNSAI", PrecisionPolicy::MixedNvsa(),
                 /*loop_count=*/2);
  const NodeId input = b.AddInput(
      "scene", static_cast<double>(batch * 3 * input_size * input_size));
  const NodeId backbone = b.AddResNet18(input, input_size, batch);

  if (symbolic_mem_fraction <= 0.0) {
    return b.Finish();
  }

  // Measure the neural footprint, then add uniform VSA nodes until symbolic
  // bytes reach fraction p of the total: symb = p/(1-p) * neural.
  double neural_bytes = 0.0;
  for (const auto& node : b.graph().nodes()) {
    if (node.domain() == Domain::kNeuro) {
      neural_bytes += node.TotalBytes();
    }
  }
  const double target_symbolic =
      symbolic_mem_fraction / (1.0 - symbolic_mem_fraction) * neural_bytes;

  constexpr std::int64_t kBlocks = 4;
  constexpr std::int64_t kBlockDim = 256;
  constexpr std::int64_t kFused = 64;
  // Bytes per VSA node (stationary + streamed + output), symbolic precision.
  const double node_bytes =
      3.0 * b.SymbolicBytes(static_cast<double>(kBlocks * kBlockDim * kFused));
  const auto num_nodes = static_cast<std::int64_t>(
      std::max(1.0, target_symbolic / node_bytes + 0.5));

  // Lay the nodes out in parallel groups of 8 per stage so the dataflow
  // graph exposes the same kind of intra-loop parallelism NVSA does.
  NodeId head = backbone;
  constexpr std::int64_t kGroup = 8;
  for (std::int64_t added = 0; added < num_nodes;) {
    std::vector<NodeId> group;
    for (std::int64_t g = 0; g < kGroup && added < num_nodes; ++g, ++added) {
      // Heterogeneous sizes (x0.5/x1/x1.5 cycling, mean x1) — see
      // AddVsaBackend for the rationale.
      const std::int64_t scaled =
          std::max<std::int64_t>(1, kFused * (1 + (added % 3)) / 2);
      group.push_back(b.AddVsaOp("vsa_" + std::to_string(added),
                                 added % 2 == 0 ? OpKind::kCircularUnbind
                                                : OpKind::kCircularBind,
                                 {head}, kBlocks, kBlockDim, scaled));
    }
    head = b.AddSimdOp("join_" + std::to_string(added),
                       OpKind::kMatchProbBatched, std::move(group),
                       kBlocks * kBlockDim * kGroup, /*symbolic=*/true);
  }
  return b.Finish();
}

OperatorGraph ScaleSymbolic(const OperatorGraph& graph, double factor) {
  NSF_CHECK_MSG(factor > 0.0, "scale factor must be positive");
  OperatorGraph scaled(graph.workload_name() + "_x" +
                       std::to_string(factor));
  scaled.set_loop_count(graph.loop_count());
  scaled.set_precision(graph.precision());
  for (OpNode node : graph.nodes()) {  // Copy, then scale symbolic work.
    node.id = kInvalidNode;
    if (node.domain() == Domain::kSymbolic) {
      if (node.unit() == ComputeUnit::kAdArray) {
        node.vsa.count = static_cast<std::int64_t>(
            std::max(1.0, static_cast<double>(node.vsa.count) * factor));
      } else {
        node.elem_count = static_cast<std::int64_t>(
            std::max(1.0, static_cast<double>(node.elem_count) * factor));
      }
      node.weight_bytes *= factor;
      node.activation_bytes *= factor;
      node.output_bytes *= factor;
    }
    scaled.AddNode(std::move(node));
  }
  scaled.Validate();
  return scaled;
}

const char* TaskName(TaskId id) {
  switch (id) {
    case TaskId::kNvsaRaven:
      return "NVSA/RAVEN";
    case TaskId::kNvsaIRaven:
      return "NVSA/I-RAVEN";
    case TaskId::kNvsaPgm:
      return "NVSA/PGM";
    case TaskId::kPraeRaven:
      return "PrAE/RAVEN";
    case TaskId::kMimonetCvr:
      return "MIMONet/CVR";
    case TaskId::kLvrfSvrt:
      return "LVRF/SVRT";
  }
  return "?";
}

OperatorGraph MakeTask(TaskId id) {
  switch (id) {
    case TaskId::kNvsaRaven:
      return MakeNvsa();
    case TaskId::kNvsaIRaven: {
      // I-RAVEN balances the candidate set: slightly more cleanup work.
      NvsaParams p;
      p.dict_size = 1280;
      auto graph = MakeNvsa(p);
      graph.set_workload_name("NVSA(I-RAVEN)");
      return graph;
    }
    case TaskId::kNvsaPgm: {
      // PGM has a larger rule space: more symbolic stages per loop.
      NvsaParams p;
      p.vsa_stages = 13;
      p.dict_size = 2048;
      auto graph = MakeNvsa(p);
      graph.set_workload_name("NVSA(PGM)");
      return graph;
    }
    case TaskId::kPraeRaven:
      return MakePrae();
    case TaskId::kMimonetCvr:
      return MakeMimonet();
    case TaskId::kLvrfSvrt:
      return MakeLvrf();
  }
  throw Error("unknown task");
}

std::vector<OperatorGraph> MakeCharacterizationSuite() {
  std::vector<OperatorGraph> suite;
  suite.push_back(MakeNvsa());
  suite.push_back(MakeMimonet());
  suite.push_back(MakeLvrf());
  suite.push_back(MakePrae());
  return suite;
}

}  // namespace nsflow::workloads
