// Tests for the re-organizable on-chip memory system (Sec. IV-C).
#include <gtest/gtest.h>

#include "arch/memory_system.h"

namespace nsflow::arch {
namespace {

MemoryConfig SmallConfig() {
  MemoryConfig config;
  config.mem_a1_bytes = 1024.0;
  config.mem_a2_bytes = 512.0;
  config.mem_b_bytes = 2048.0;
  config.mem_c_bytes = 256.0;
  config.cache_bytes = 8192.0;
  return config;
}

TEST(MemoryBlockTest, DoubleBufferStageAndSwap) {
  MemoryBlock block("MemA1", 1000.0);
  block.Stage(600.0);            // Into the shadow buffer.
  EXPECT_DOUBLE_EQ(block.occupancy(), 0.0);  // Active still empty.
  block.Swap();
  EXPECT_DOUBLE_EQ(block.occupancy(), 600.0);
  // New shadow is empty: the next stage can fill it fully.
  block.Stage(1000.0);
  block.Swap();
  EXPECT_DOUBLE_EQ(block.occupancy(), 1000.0);
}

TEST(MemoryBlockTest, OverflowDetected) {
  MemoryBlock block("MemB", 100.0);
  EXPECT_THROW(block.Stage(200.0), CheckError);
  block.Write(80.0);
  EXPECT_THROW(block.Write(30.0), CheckError);
  block.Clear();
  EXPECT_NO_THROW(block.Write(100.0));
}

TEST(MemoryBlockTest, AccessCounters) {
  MemoryBlock block("MemC", 1000.0);
  block.Write(100.0);
  block.Read(40.0);
  block.Read(60.0);
  EXPECT_DOUBLE_EQ(block.bytes_written(), 100.0);
  EXPECT_DOUBLE_EQ(block.bytes_read(), 100.0);
}

TEST(MemorySystemTest, BlocksCarryConfiguredCapacities) {
  MemorySystem mem(SmallConfig());
  EXPECT_DOUBLE_EQ(mem.mem_a1().capacity(), 1024.0);
  EXPECT_DOUBLE_EQ(mem.mem_a2().capacity(), 512.0);
  EXPECT_DOUBLE_EQ(mem.mem_b().capacity(), 2048.0);
  EXPECT_DOUBLE_EQ(mem.mem_c().capacity(), 256.0);
  EXPECT_DOUBLE_EQ(mem.cache().capacity(), 8192.0);
}

TEST(MemorySystemTest, MergeAndSplitMemA) {
  // Sec. IV-C feature 1: MemA1/MemA2 merge for single-kind execution.
  MemorySystem mem(SmallConfig());
  EXPECT_FALSE(mem.mem_a_merged());
  EXPECT_DOUBLE_EQ(mem.MemANnCapacity(), 1024.0);
  mem.MergeMemA();
  EXPECT_TRUE(mem.mem_a_merged());
  EXPECT_DOUBLE_EQ(mem.MemANnCapacity(), 1536.0);
  mem.SplitMemA();
  EXPECT_DOUBLE_EQ(mem.MemANnCapacity(), 1024.0);
}

TEST(MemorySystemTest, DramTransferChargesCycles) {
  MemorySystem mem(SmallConfig());
  mem.set_bytes_per_cycle(100.0);
  const double cycles = mem.DramTransfer(1000.0);
  EXPECT_DOUBLE_EQ(cycles, 10.0);
  mem.DramTransfer(500.0);
  EXPECT_DOUBLE_EQ(mem.dram_bytes(), 1500.0);
  EXPECT_DOUBLE_EQ(mem.dram_cycles(), 15.0);
  EXPECT_THROW(mem.DramTransfer(-1.0), CheckError);
  EXPECT_THROW(mem.set_bytes_per_cycle(0.0), CheckError);
}

}  // namespace
}  // namespace nsflow::arch
