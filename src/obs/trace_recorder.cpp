#include "obs/trace_recorder.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/error.h"

namespace nsflow::obs {

TraceRecorder::TraceRecorder(std::size_t ring_capacity, int shards)
    : ring_capacity_(ring_capacity) {
  NSF_CHECK_MSG(shards >= 1, "recorder needs at least one shard");
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

TraceRecorder::Shard& TraceRecorder::ShardForThisThread() {
  const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return *shards_[h % shards_.size()];
}

template <typename Record>
void TraceRecorder::Push(Shard& shard, std::vector<Record>& pool,
                         std::size_t& head, Record record) {
  record.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  if (ring_capacity_ > 0 && pool.size() >= ring_capacity_) {
    pool[head] = std::move(record);  // Overwrite the oldest record.
    head = (head + 1) % ring_capacity_;
    ++shard.dropped;
    return;
  }
  if (pool.capacity() == 0) {
    // Reserve on a shard's first record, not at construction: the engine
    // records from one consumer thread, so 7 of 8 shards stay empty and
    // a short traced run never pays 8x the up-front allocation.
    pool.reserve(ring_capacity_ > 0 ? ring_capacity_ : kInitialReserve);
  }
  pool.push_back(std::move(record));
}

void TraceRecorder::RecordRequest(RequestSpan span) {
  Shard& shard = ShardForThisThread();
  const std::lock_guard<std::mutex> lock(shard.mu);
  Push(shard, shard.requests, shard.request_head, span);
}

void TraceRecorder::RecordBatch(BatchSpan span) {
  Shard& shard = ShardForThisThread();
  const std::lock_guard<std::mutex> lock(shard.mu);
  Push(shard, shard.batches, shard.batch_head, span);
}

void TraceRecorder::RecordInstant(InstantEvent event) {
  Shard& shard = ShardForThisThread();
  const std::lock_guard<std::mutex> lock(shard.mu);
  // Control-plane events are never ring-evicted: they are rare and a
  // long-run trace must keep its reconfiguration history.
  event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  shard.instants.push_back(std::move(event));
}

void TraceRecorder::RecordCounter(CounterSample sample) {
  Shard& shard = ShardForThisThread();
  const std::lock_guard<std::mutex> lock(shard.mu);
  sample.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  shard.counters.push_back(sample);
}

namespace {

/// (timestamp, seq) ordering; seq alone already orders records from one
/// recording thread, but the timestamp leads so a multi-shard merge stays
/// in virtual-time order.
template <typename Record>
void SortByTime(std::vector<Record>& records, double Record::* stamp) {
  std::sort(records.begin(), records.end(),
            [stamp](const Record& a, const Record& b) {
              if (a.*stamp != b.*stamp) {
                return a.*stamp < b.*stamp;
              }
              return a.seq < b.seq;
            });
}

}  // namespace

TraceData TraceRecorder::Drain() const {
  TraceData data;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    data.requests.insert(data.requests.end(), shard->requests.begin(),
                         shard->requests.end());
    data.batches.insert(data.batches.end(), shard->batches.begin(),
                        shard->batches.end());
    data.instants.insert(data.instants.end(), shard->instants.begin(),
                         shard->instants.end());
    data.counters.insert(data.counters.end(), shard->counters.begin(),
                         shard->counters.end());
    data.dropped += shard->dropped;
  }
  SortByTime(data.requests, &RequestSpan::complete_s);
  SortByTime(data.batches, &BatchSpan::start_s);
  SortByTime(data.instants, &InstantEvent::t_s);
  SortByTime(data.counters, &CounterSample::t_s);
  return data;
}

std::int64_t TraceRecorder::dropped() const {
  std::int64_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->dropped;
  }
  return total;
}

}  // namespace nsflow::obs
