// NSFlow-Serve engine — the end-to-end serving loop.
//
//   Poisson arrival generator (producer thread, virtual timestamps,
//   per-workload mix sampling)
//     └─> RequestQueue (thread-safe FIFO handoff)
//           └─> BatchFormer / MultiBatchFormer (max-batch / max-wait
//               coalescing, one lane per workload — batches never mix
//               workloads)
//                 └─> ServerPool (N accelerator replicas, per-replica
//                     workload sets, worker threads)
//                       └─> ServeStats (p50/p95/p99, throughput, util,
//                           per-workload breakdown)
//
// The engine turns the paper's one-shot `RunWorkload` accelerator into a
// throughput-oriented service: an open-loop synthetic trace with exponential
// inter-arrival times drives the pipeline for `duration_s` virtual seconds,
// and the report captures tail latency and saturation behavior. A
// multi-tenant run draws each arrival's workload from the requested QPS mix
// with the same RNG stream as the inter-arrival times, so with a fixed seed
// the whole run — single- or multi-workload — is bit-reproducible (see
// request.h on virtual time).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dse/dse.h"
#include "graph/dataflow_graph.h"
#include "model/accel_model.h"
#include "obs/observability.h"
#include "serve/admission.h"
#include "serve/adversity.h"
#include "serve/cluster.h"
#include "serve/request.h"
#include "serve/scenario.h"
#include "serve/server_pool.h"
#include "serve/serve_stats.h"
#include "serve/workload_registry.h"

namespace nsflow::serve {

/// Elastic-autoscaler knobs (docs/AUTOSCALING.md). All times are virtual
/// seconds; every decision is a pure function of windowed arrival counts
/// and forming-lane depths, so an autoscaled run stays bit-deterministic
/// under a fixed seed. The replan target fields mirror PlanOptions — the
/// control loop re-runs the capacity search (against a cached frontier)
/// at the observed rate; when serving a PoolPlan, the CLI copies these
/// from the plan.
struct AutoscaleOptions {
  // Control loop.
  double interval_s = 0.25;  // Decision cadence.
  double window_s = 1.0;     // Trailing rate-observation window.
  double headroom = 0.25;    // Provision for observed * (1 + headroom).
  // Hysteresis bands around each group's provisioned (headroom-inclusive)
  // rate: replan up above up_band x provisioned, down below down_band x
  // provisioned. up_band < 1 + headroom keeps undetected drift inside the
  // provisioned capacity (docs/AUTOSCALING.md derives the invariant).
  double up_band = 1.10;
  double down_band = 0.60;
  double cooldown_s = 2.0;     // Min gap after any delta before a group
                               // may scale *down* (ups are never delayed).
  double reconfig_s = 0.02;    // Warm add/refit readiness delay.
  int min_replicas = 1;        // Per-workload floor.
  int max_replicas = 16;       // Per-workload ceiling (replan bound).
  // Replan target (PlanCapacity re-run per decision).
  double p99_slo_s = 50e-3;
  std::string device = "u250";
  int devices = 16;
  double max_utilization = 0.85;
  int frontier_points = 4;
  DseOptions dse;              // Frontier build only (one DSE, up front).
  double dictionary_bytes = 512.0 * 1024.0;
};

/// Which pipeline driver runs the virtual timeline (docs/ENGINE.md).
/// Both drivers share every handler — the batch former, pool, autoscaler,
/// admission, adversity, and obs subscribers see the identical call
/// sequence — so fixed-seed runs are byte-identical between them; the
/// differential matrix in tests/event_core_test.cpp enforces it.
enum class ServeEngine {
  /// Discrete-event core (serve/event_core.h): one binary min-heap keyed
  /// (virtual_time, class, seq) drives arrivals, adversity faults,
  /// autoscaler ticks, admission retries, and the drain. The default.
  kEvent = 0,
  /// The pre-event-core polling interleave, kept as the differential
  /// oracle and the bench's old-vs-new wall reference.
  kLegacy = 1,
};

struct ServeOptions {
  double qps = 100.0;          // Open-loop offered load (Poisson arrivals).
  double duration_s = 1.0;     // Virtual length of the arrival trace.
  std::int64_t max_batch = 8;  // BatchFormer size cap.
  double max_wait_s = 5e-3;    // BatchFormer wait cap.
  std::uint64_t seed = 42;     // Arrival-process RNG seed.
  int worker_threads = 0;      // 0 = hardware concurrency.
  /// Arrival pattern (scenario.h). The default stationary Poisson
  /// reproduces the pre-scenario arrival stream bit-for-bit.
  ScenarioSpec scenario;
  /// Per-workload batch-size caps, indexed by WorkloadId (empty = every
  /// lane uses `max_batch`; entries of 0 also fall back to it). The
  /// capacity planner sets these so a latency-critical tenant can run
  /// unbatched (cap 1 — batches close at their own arrival, no forming
  /// wait) next to a throughput tenant that keeps coalescing.
  std::vector<std::int64_t> per_workload_max_batch;
  /// Elastic autoscaling (docs/AUTOSCALING.md): the multi-tenant engine
  /// runs an online control loop that samples windowed arrival rates,
  /// replans against a cached DSE frontier, and applies PoolDeltas (warm
  /// add / drain-retire / refit / batch-cap change) mid-run. Requires a
  /// partitioned pool — every replica dedicated to exactly one workload.
  bool autoscale = false;
  AutoscaleOptions autoscale_opts;
  /// Environment-fault injection (adversity.h): a seed-deterministic
  /// fault/straggler/churn/flash timeline composed with the traffic
  /// scenario. The default `none` pattern leaves every run bit-identical
  /// to a build without the adversity layer.
  AdversitySpec adversity;
  /// Admission frontend (docs/ADMISSION.md): with an enabled spec, every
  /// generated arrival is offered to an AdmissionController before it can
  /// enter the forming lanes — per-tenant token buckets, SLA-tier
  /// deadlines with pre-dispatch expiry sweeps, load-aware overload
  /// shedding, bounded retry/backoff, and a whole-pool graceful drain at
  /// shutdown. The default `none` spec constructs no controller and leaves
  /// every run byte-identical to a build without the admission layer.
  AdmissionSpec admission;
  /// SLA tier per WorkloadId (empty = every tenant `standard`). Only
  /// consulted when `admission` is enabled; must then be empty or have one
  /// entry per registry workload. The CLI parses `--tiers
  /// mlp=critical,resnet18=batch` into this.
  std::vector<SlaTier> tiers;
  /// Multi-node cluster serving (docs/CLUSTER.md): with an enabled spec the
  /// multi-tenant engine shards the pool's replicas over N nodes, routes
  /// every formed batch through the cluster router, and prices cross-node
  /// dispatch with the modeled interconnect. The default `none` spec builds
  /// no cluster and leaves every run byte-identical to a build without the
  /// cluster layer; so does an explicit one-node cluster (all routing is
  /// then local and no cluster instruments register).
  ClusterSpec cluster;
  /// Initial replica -> node placement, indexed like the replica list
  /// (empty = replica r on node r % nodes). `nsflow serve --plan` fills
  /// this from the plan's recorded placement.
  std::vector<int> cluster_nodes;
  /// Pipeline driver selection — event-driven by default; `kLegacy` runs
  /// the preserved polling loop (byte-identical output, used as the
  /// differential oracle and for the bench's wall-clock ratio).
  ServeEngine engine = ServeEngine::kEvent;
  /// Observability (docs/OBSERVABILITY.md): with `trace.enabled` the engine
  /// records every request/batch lifecycle span, autoscaler decision, and
  /// replica transition on the virtual timeline into `ServeReport::obs`,
  /// and the components publish aggregate metrics snapshotted every
  /// `trace.snapshot_interval_s`. Off by default: the pipeline then pays
  /// only a null check per record site.
  obs::ObsOptions trace;
};

/// One entry of a multi-tenant QPS mix: `share` of the total offered load
/// goes to the named registry workload. Shares are normalized, so
/// {mlp=0.6, nvsa=0.2} and {mlp=3, nvsa=1} describe the same mix.
struct WorkloadShare {
  std::string workload;
  double share = 0.0;
};

/// Parse a CLI mix spec "mlp=0.6,resnet18=0.3,nvsa=0.1" into shares.
std::vector<WorkloadShare> ParseMix(const std::string& spec);

struct ServeReport {
  StatsSummary summary;
  std::vector<DispatchRecord> dispatches;
  std::int64_t generated_requests = 0;
  /// Single-request latency of workload 0 on a capable replica — the
  /// no-batching baseline the throughput numbers are judged against.
  double single_request_s = 0.0;
  /// Same baseline per registered workload (one entry in single-workload
  /// runs).
  std::vector<double> single_request_by_workload;
  /// Autoscaler actions in decision order (empty when autoscaling is off).
  std::vector<PoolDelta> deltas;
  /// FPGA time the pool consumed: the integral of the provisioned-replica
  /// count over the run horizon. A static pool uses replicas x horizon;
  /// the elastic-vs-static efficiency ratio divides the two
  /// (docs/AUTOSCALING.md).
  double replica_seconds = 0.0;
  /// Per-tenant admission accounting (empty unless `ServeOptions::admission`
  /// enabled a controller): offered/admitted/shed/expired/retried, one row
  /// per registry workload. The CLI epilogue table and exit codes read it.
  std::vector<AdmissionTenantSummary> admission;
  /// Defensive invariant counter: requests dispatched with their start past
  /// their deadline. The pre-dispatch expiry sweep keeps this at exactly 0;
  /// the headline bench gates on it.
  std::int64_t expired_dispatched = 0;
  /// The run's observability bundle (null unless `ServeOptions::trace`
  /// enabled it): drained spans export via ChromeTraceJson()/BinaryTrace(),
  /// the metrics timeline via MetricsJson() (docs/OBSERVABILITY.md).
  std::shared_ptr<obs::Observability> obs;
};

/// Generate the arrival trace for `options` — `options.scenario` picks the
/// pattern (stationary Poisson by default; see scenario.h), and
/// `options.adversity`'s arrival-side patterns (churn masking, flash-crowd
/// superimposition) are applied before returning: there is exactly one
/// arrival path, so flash extras can never bypass per-tenant admission
/// accounting. Exposed for
/// tests and for replaying the same trace against different pools. The
/// multi-workload overload additionally samples each arrival's workload id
/// from `shares` (normalized weights indexed by workload id) with the same
/// RNG stream; `workload_names` (indexed by id) resolves the labels of a
/// replayed `trace:file=...` scenario — pass {} when not serving named
/// workloads (labels are then ignored, everything maps to workload 0).
std::vector<Request> SyntheticArrivals(const ServeOptions& options);
std::vector<Request> SyntheticArrivals(const ServeOptions& options,
                                       const std::vector<double>& shares,
                                       const std::vector<std::string>&
                                           workload_names = {});

/// The offered load a run actually carried: `options.qps` for rate-driven
/// scenarios, the renewal rate for closed loops (which ignore qps), and
/// the replayed count over the horizon for traces. This is what the
/// summary's `offered_qps` records and the CLI headers print.
double EffectiveOfferedRps(const ServeOptions& options,
                           std::int64_t generated_requests);

/// Run the full pipeline: synthetic arrivals through queue, former, and
/// pool. `designs` defines the pool (one replica per entry; `dfg` must
/// outlive the call).
ServeReport RunSyntheticServe(const DataflowGraph& dfg,
                              const std::vector<AcceleratorDesign>& designs,
                              const ServeOptions& options);

/// Multi-tenant pipeline: every arrival draws its workload from `mix`
/// (names resolved through `registry`, which must outlive the call), the
/// former keeps one lane per workload, and each batch routes to an
/// earliest-available replica deployed for its workload.
ServeReport RunSyntheticServe(const WorkloadRegistry& registry,
                              const std::vector<ReplicaSpec>& replicas,
                              const std::vector<WorkloadShare>& mix,
                              const ServeOptions& options);

}  // namespace nsflow::serve
