#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string_view>

namespace nsflow {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::string_view Basename(std::string_view path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void LogMessage(LogLevel level, std::string_view file, int line,
                const std::string& message) {
  if (level < g_level.load()) {
    return;
  }
  const std::lock_guard<std::mutex> lock(g_mutex);
  const auto base = Basename(file);
  std::fprintf(stderr, "[%s %.*s:%d] %s\n", LevelName(level),
               static_cast<int>(base.size()), base.data(), line,
               message.c_str());
}

}  // namespace nsflow
