// WorkloadRegistry — the multi-tenant workload catalogue of NSFlow-Serve.
//
// A registry owns named `CompiledDesign`s: each registered workload is
// compiled once through the full NSFlow frontend (`Compiler::Compile`) and
// addressed afterwards by a dense `WorkloadId` — the id the serving pipeline
// stamps on requests and batches. Registration is memoized by *trace content
// hash* via a thread-safe `CompileCache`: two names whose operator graphs
// serialize to the same canonical JSON trace share one compiled design, so
// re-registering a workload (or registering an alias) never pays the DSE
// again.
//
// The registry is the layer every multi-tenant serving feature plugs into:
// `ServerPool` takes `Dataflows()` to key its latency cache by workload,
// the engine resolves `--mix mlp=0.6,...` names through `IdOf`, and future
// per-workload priorities/SLOs hang their configuration off the same ids.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "graph/dataflow_graph.h"
#include "graph/operator_graph.h"
#include "nsflow/framework.h"
#include "serve/request.h"
#include "serve/server_pool.h"

namespace nsflow::serve {

/// Thread-safe memoization of `Compiler::Compile`, keyed by the content
/// hash of the workload's canonical JSON trace. Identical trace content ->
/// one frontend run (dataflow build + two-phase DSE + codegen), shared by
/// every caller.
class CompileCache {
 public:
  explicit CompileCache(CompileOptions options = {})
      : compiler_(std::move(options)) {}

  /// FNV-1a over the canonical serialized trace (`EmitJsonTrace`). Stable
  /// across graph copies — only the trace *content* matters.
  static std::uint64_t ContentHash(const OperatorGraph& graph);

  /// Return the compiled design for `graph`, compiling at most once per
  /// distinct content hash. Safe to call concurrently; warm hits take only
  /// a shared (reader) lock, so concurrent registrations of already-known
  /// content never serialize.
  std::shared_ptr<const CompiledDesign> GetOrCompile(
      const OperatorGraph& graph);

  std::int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::int64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::int64_t size() const;

 private:
  Compiler compiler_;
  mutable std::shared_mutex mu_;
  std::map<std::uint64_t, std::shared_ptr<const CompiledDesign>> cache_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
};

class WorkloadRegistry {
 public:
  explicit WorkloadRegistry(CompileOptions options = {})
      : cache_(std::move(options)) {}

  /// Register `graph` under `name`, compiling it (through the cache) on
  /// first sight. Returns the workload's dense id. Registering the same
  /// name twice is an error unless the trace content is identical, in which
  /// case the existing id is returned.
  WorkloadId Register(const std::string& name, OperatorGraph graph);

  /// Register one of the built-in workload builders by name:
  /// mlp | resnet18 | nvsa | mimonet | lvrf | prae.
  WorkloadId RegisterBuiltin(const std::string& name);

  /// Register a workload from its canonical JSON trace text.
  WorkloadId RegisterJsonTrace(const std::string& name,
                               const std::string& trace_json);

  bool Contains(const std::string& name) const;
  /// Id of a registered name; throws when unknown.
  WorkloadId IdOf(const std::string& name) const;
  const std::string& NameOf(WorkloadId id) const;

  int size() const { return static_cast<int>(designs_.size()); }
  std::vector<std::string> Names() const { return names_; }

  const CompiledDesign& compiled(WorkloadId id) const;
  const DataflowGraph& dataflow(WorkloadId id) const;
  /// Per-workload dataflow graphs in id order — the `ServerPool`
  /// multi-tenant constructor's input. Pointers stay valid for the life of
  /// the registry.
  std::vector<const DataflowGraph*> Dataflows() const;

  const CompileCache& cache() const { return cache_; }

  /// Design for a *shared* replica: workload `base`'s DSE winner with the
  /// on-chip memory grown to the element-wise max across `served` (all
  /// registered workloads when empty), and MemA1 sized for the largest
  /// filter any tenant stages. Hardware is provisioned for the worst
  /// tenant; the per-kernel allocation is refit per workload at dispatch
  /// (`serve::RefitDesign`).
  AcceleratorDesign ProvisionDesign(
      WorkloadId base, const std::vector<WorkloadId>& served = {}) const;

  /// Standard multi-tenant pool layout: replica r carries workload
  /// (r % size())'s DSE winner. Partitioned, replica r serves only that
  /// workload (requires `replicas` >= size()); shared, every replica
  /// serves all workloads with memory provisioned for the worst tenant
  /// (`ProvisionDesign`). `tuned_for` provenance is set either way so the
  /// pool keeps tuned allocations exactly where they apply.
  std::vector<ReplicaSpec> ReplicaSpecs(int replicas, bool partitioned) const;

  /// The names `RegisterBuiltin` accepts.
  static std::vector<std::string> BuiltinNames();

 private:
  CompileCache cache_;
  std::vector<std::string> names_;                               // By id.
  std::vector<std::shared_ptr<const CompiledDesign>> designs_;   // By id.
  std::map<std::string, WorkloadId> by_name_;
};

}  // namespace nsflow::serve
