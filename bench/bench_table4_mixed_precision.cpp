// Reproduces paper Table IV — reasoning accuracy under mixed precision.
//
// Columns: FP32 / FP16 / INT8 / MP (INT8 NN + INT4 symbolic) / INT4; rows:
// RAVEN-like, I-RAVEN-like, PGM-like suites plus the model memory footprint.
// Shape to check: FP32 ≈ FP16 ≈ INT8 >= MP (within ~1 point) >> INT4, with
// a 5.8x memory saving at MP vs FP32 (32 MB -> 5.5 MB).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.h"
#include "reasoning/accuracy.h"

int main(int argc, char** argv) {
  using namespace nsflow;
  using namespace nsflow::reasoning;

  // Trials per cell: default keeps the full 3x5 sweep under ~a minute;
  // pass a larger count for tighter confidence intervals.
  const int trials = argc > 1 ? std::atoi(argv[1]) : 400;

  std::printf("=== NSFlow reproduction: Table IV mixed-precision accuracy "
              "(%d trials/cell) ===\n\n", trials);

  const auto settings = TableIvSettings();
  std::vector<std::string> headers = {"Suite"};
  for (const auto& s : settings) {
    headers.push_back(s.label);
  }
  TablePrinter table(headers);

  const std::vector<RpmSuiteSpec> suites = {RavenLikeSuite(), IRavenLikeSuite(),
                                            PgmLikeSuite()};
  for (const auto& suite : suites) {
    std::vector<std::string> row = {suite.name};
    for (const auto& setting : settings) {
      const auto cell = EvaluateAccuracy(suite, setting, trials);
      row.push_back(TablePrinter::Percent(cell.accuracy, 1));
    }
    table.AddRow(std::move(row));
  }

  std::vector<std::string> memory_row = {"Memory"};
  for (const auto& setting : settings) {
    memory_row.push_back(
        TablePrinter::Num(ModelMemoryBytes(setting) / 1e6, 1) + " MB");
  }
  table.AddRow(std::move(memory_row));

  std::printf("%s\n", table.ToString().c_str());
  std::printf("Paper anchors (Table IV): RAVEN 98.9/98.9/98.7/98.0/92.5, "
              "PGM 68.7/68.6/68.4/67.4/59.9, memory 32/16/8/5.5/4 MB.\n");
  return 0;
}
