#include "model/analytical.h"

#include <algorithm>

#include "common/error.h"
#include "common/math_util.h"

namespace nsflow {

double LayerCycles(const ArrayConfig& cfg, std::int64_t nl,
                   const GemmDims& gemm) {
  NSF_CHECK_MSG(nl >= 1, "layer needs at least one sub-array");
  NSF_CHECK_MSG(gemm.m > 0 && gemm.n > 0 && gemm.k > 0,
                "layer GEMM dims must be positive");
  const std::int64_t h = cfg.height;
  const std::int64_t w = cfg.width;
  // Eq. (1): (2H + W + d1 − 2) · ⌈⌈d2/Nl⌉/H⌉ · ⌈d3/W⌉.
  const double pass = static_cast<double>(2 * h + w + gemm.m - 2);
  const double row_tiles =
      static_cast<double>(CeilDiv(CeilDiv(gemm.n, nl), h));
  const double col_tiles = static_cast<double>(CeilDiv(gemm.k, w));
  return pass * row_tiles * col_tiles;
}

double NnTotalCycles(const ArrayConfig& cfg, std::span<const LayerNode> layers,
                     std::span<const std::int64_t> nl) {
  NSF_CHECK_MSG(nl.size() == layers.size(),
                "one sub-array allocation per layer required");
  double total = 0.0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    total += LayerCycles(cfg, nl[i], layers[i].gemm);
  }
  return total;
}

double VsaStreamPeriod(std::int64_t height, std::int64_t dim) {
  // Fill the H stationary registers, stream d elements with the 1-cycle
  // passing-register skew down H rows, drain: T = 3H + d − 1.
  return static_cast<double>(3 * height + dim - 1);
}

double VsaSpatialCycles(const ArrayConfig& cfg, std::int64_t nv,
                        const VsaDims& vsa) {
  NSF_CHECK_MSG(nv >= 1, "VSA node needs at least one sub-array");
  const double t = VsaStreamPeriod(cfg.height, vsa.dim);
  // Eq. (3): n_j · ⌈d_j/(W·H·Nv)⌉ · T — each vector's d elements spread
  // across all PEs of the allocated sub-arrays.
  const double tiles = static_cast<double>(
      CeilDiv(vsa.dim, cfg.width * cfg.height * nv));
  return static_cast<double>(vsa.count) * tiles * t;
}

double VsaTemporalCycles(const ArrayConfig& cfg, std::int64_t nv,
                         const VsaDims& vsa) {
  NSF_CHECK_MSG(nv >= 1, "VSA node needs at least one sub-array");
  const double t = VsaStreamPeriod(cfg.height, vsa.dim);
  // Eq. (4): ⌈n_j/W⌉ · ⌈d_j/(H·Nv)⌉ · T — one vector per column, element
  // range split across the rows of the allocated sub-arrays.
  const double vec_waves = static_cast<double>(CeilDiv(vsa.count, cfg.width));
  const double elem_tiles =
      static_cast<double>(CeilDiv(vsa.dim, cfg.height * nv));
  return vec_waves * elem_tiles * t;
}

double VsaTotalCycles(const ArrayConfig& cfg, std::span<const VsaNode> vsa_ops,
                      std::span<const std::int64_t> nv, VsaMapping* chosen) {
  NSF_CHECK_MSG(nv.size() == vsa_ops.size(),
                "one sub-array allocation per VSA node required");
  double temporal = 0.0;
  double spatial = 0.0;
  for (std::size_t j = 0; j < vsa_ops.size(); ++j) {
    temporal += VsaTemporalCycles(cfg, nv[j], vsa_ops[j].vsa);
    spatial += VsaSpatialCycles(cfg, nv[j], vsa_ops[j].vsa);
  }
  if (chosen != nullptr) {
    *chosen = temporal <= spatial ? VsaMapping::kTemporal : VsaMapping::kSpatial;
  }
  return std::min(temporal, spatial);
}

double SimdCycles(double elems, std::int64_t simd_width) {
  NSF_CHECK_MSG(simd_width >= 1, "SIMD width must be positive");
  constexpr double kPipelineFill = 8.0;  // exp/log/norm units are pipelined.
  if (elems <= 0.0) {
    return 0.0;
  }
  return elems / static_cast<double>(simd_width) + kPipelineFill;
}

double SequentialCycles(const ArrayConfig& cfg,
                        std::span<const LayerNode> layers,
                        std::span<const VsaNode> vsa_ops) {
  // Algorithm 1 line 12: Σ_i f_l_i(H,W,N) + min(Σ_j f_v_j,temp, Σ_j f_v_j,spatial)
  // — every op owns the whole array, neural then symbolic.
  double nn = 0.0;
  for (const auto& layer : layers) {
    nn += LayerCycles(cfg, cfg.count, layer.gemm);
  }
  double temporal = 0.0;
  double spatial = 0.0;
  for (const auto& v : vsa_ops) {
    temporal += VsaTemporalCycles(cfg, cfg.count, v.vsa);
    spatial += VsaSpatialCycles(cfg, cfg.count, v.vsa);
  }
  return nn + std::min(temporal, spatial);
}

double WindowedParallelCycles(const ArrayConfig& cfg,
                              std::span<const LayerNode> layers,
                              std::span<const VsaNode> vsa_ops,
                              std::span<const std::int64_t> nl,
                              std::span<const std::int64_t> nv,
                              std::span<const VsaSpan> windows) {
  NSF_CHECK_MSG(windows.size() == layers.size(),
                "one VSA window per layer required");
  NSF_CHECK_MSG(nl.size() == layers.size() && nv.size() == vsa_ops.size(),
                "allocation vectors must match node lists");
  double total = 0.0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const double t_layer = LayerCycles(cfg, nl[i], layers[i].gemm);
    double temporal = 0.0;
    double spatial = 0.0;
    const VsaSpan& w = windows[i];
    if (w.first <= w.last && w.last < vsa_ops.size()) {
      for (std::size_t j = w.first; j <= w.last; ++j) {
        temporal += VsaTemporalCycles(cfg, nv[j], vsa_ops[j].vsa);
        spatial += VsaSpatialCycles(cfg, nv[j], vsa_ops[j].vsa);
      }
    }
    total += std::max(t_layer, std::min(temporal, spatial));
  }
  return total;
}

double ParallelCycles(const ArrayConfig& cfg,
                      std::span<const LayerNode> layers,
                      std::span<const VsaNode> vsa_ops,
                      std::span<const std::int64_t> nl,
                      std::span<const std::int64_t> nv) {
  // Algorithm 1 line 8: t_para = max(t_nn, t_vsa). NN of loop k+1 overlaps
  // the symbolic tail of loop k in the fused dataflow graph.
  const double t_nn =
      layers.empty() ? 0.0 : NnTotalCycles(cfg, layers, nl);
  const double t_vsa =
      vsa_ops.empty() ? 0.0 : VsaTotalCycles(cfg, vsa_ops, nv);
  return std::max(t_nn, t_vsa);
}

}  // namespace nsflow
