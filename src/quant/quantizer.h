// Symmetric per-tensor quantization.
//
// NSFlow quantizes the NN and symbolic components independently
// (paper Sec. IV-D and Table IV): e.g. INT8 for the CNN and INT4 for the VSA
// codebooks/vectors in the "MP" configuration. The reasoning-accuracy study
// runs on *actually quantized* values: `Quantize` maps floats to the integer
// grid, arithmetic happens on dequantized grid values, so precision loss
// propagates through binding, bundling, and similarity exactly as it would on
// the accelerator's integer datapath.
#pragma once

#include <cstdint>
#include <vector>

#include "common/tensor.h"
#include "quant/precision.h"

namespace nsflow {

/// Integer grid parameters for a symmetric quantizer: real = scale * q with
/// q in [-qmax, qmax].
struct QuantParams {
  Precision precision = Precision::kINT8;
  float scale = 1.0f;

  /// Largest representable magnitude on the integer grid.
  std::int32_t qmax() const;

  /// Choose the scale so that `max_abs` maps to the grid edge.
  static QuantParams Calibrate(Precision precision, float max_abs);
};

/// A tensor stored as quantized integers plus its grid parameters.
struct QuantizedTensor {
  Tensor::Shape shape;
  std::vector<std::int32_t> values;  // In [-qmax, qmax].
  QuantParams params;

  std::int64_t numel() const { return static_cast<std::int64_t>(values.size()); }
  /// Storage bytes at the nominal bit width (INT4 packs two per byte).
  double byte_size() const { return numel() * BytesOf(params.precision); }

  Tensor Dequantize() const;
};

/// Quantize `t` onto the grid implied by `precision` with per-tensor
/// calibration on max|t|.
QuantizedTensor Quantize(const Tensor& t, Precision precision);

/// Fake quantization: round-trip through the grid, keep float storage.
/// For FP32 this is the identity, for FP16 it rounds through binary16.
Tensor FakeQuantize(const Tensor& t, Precision precision);

/// Root-mean-square quantization error of fake-quantizing `t`, used by tests
/// to assert the INT4 grid is strictly coarser than INT8 which is coarser
/// than FP16.
double QuantizationRmse(const Tensor& t, Precision precision);

}  // namespace nsflow
