// Tests for the traffic-scenario suite (serve/scenario.h): fixed-seed
// bit-determinism per pattern, rate envelopes against their closed forms,
// JSON trace-replay round-trips, and spec parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "serve/adversity.h"
#include "serve/engine.h"
#include "serve/scenario.h"

namespace nsflow::serve {
namespace {

const std::vector<double> kOneWorkload = {1.0};

std::vector<std::string> AllScenarioSpecs() {
  return {"poisson",
          "diurnal",
          "diurnal:period=0.25,depth=0.5,phase=0.25",
          "bursty",
          "bursty:on=0.02,off=0.08,idle=0.2",
          "ramp",
          "ramp:from=0.5,to=1.5",
          "spike",
          "spike:at=0.2,width=0.2,mult=3",
          "closed",
          "closed:clients=8,think_ms=5,service_ms=2"};
}

// ------------------------------------------------------------ determinism

TEST(ScenarioTest, FixedSeedIsBitDeterministicPerPattern) {
  for (const std::string& text : AllScenarioSpecs()) {
    const ScenarioSpec spec = ScenarioSpec::Parse(text);
    const auto a = GenerateArrivals(spec, 500.0, 1.0, 7, {0.6, 0.3, 0.1});
    const auto b = GenerateArrivals(spec, 500.0, 1.0, 7, {0.6, 0.3, 0.1});
    ASSERT_EQ(a.size(), b.size()) << text;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].id, b[i].id) << text;
      // Bit-exact, not approximately equal.
      ASSERT_EQ(a[i].arrival_s, b[i].arrival_s) << text;
      ASSERT_EQ(a[i].workload, b[i].workload) << text;
    }
    const auto c = GenerateArrivals(spec, 500.0, 1.0, 8, {0.6, 0.3, 0.1});
    bool differs = c.size() != a.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i) {
      differs = c[i].arrival_s != a[i].arrival_s;
    }
    EXPECT_TRUE(differs) << text << ": different seeds gave the same trace";
  }
}

TEST(ScenarioTest, ArrivalsAreOrderedInWindowAndDenselyNumbered) {
  for (const std::string& text : AllScenarioSpecs()) {
    const ScenarioSpec spec = ScenarioSpec::Parse(text);
    const auto arrivals = GenerateArrivals(spec, 800.0, 0.5, 11, kOneWorkload);
    ASSERT_FALSE(arrivals.empty()) << text;
    double previous = 0.0;
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      EXPECT_EQ(arrivals[i].id, static_cast<std::int64_t>(i)) << text;
      EXPECT_GE(arrivals[i].arrival_s, previous) << text;
      EXPECT_LT(arrivals[i].arrival_s, 0.5) << text;
      previous = arrivals[i].arrival_s;
    }
  }
}

TEST(ScenarioTest, DefaultPoissonMatchesLegacyEngineStream) {
  // The scenario layer must reproduce the pre-scenario arrival stream
  // bit-for-bit: ServeOptions' default scenario is stationary Poisson.
  ServeOptions options;
  options.qps = 300.0;
  options.duration_s = 1.0;
  options.seed = 42;
  const auto via_engine = SyntheticArrivals(options, {0.5, 0.5});
  const auto direct = GenerateArrivals(ScenarioSpec{}, options.qps,
                                       options.duration_s, options.seed,
                                       {0.5, 0.5});
  ASSERT_EQ(via_engine.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    ASSERT_EQ(via_engine[i].arrival_s, direct[i].arrival_s);
    ASSERT_EQ(via_engine[i].workload, direct[i].workload);
  }
}

// -------------------------------------------------------- rate envelopes

// Expected-count checks: the generated count must sit within ~5 standard
// deviations of ScenarioMeanRate * duration (Poisson sd = sqrt(mean)).
void ExpectCountNearClosedForm(const std::string& text, double qps,
                               double duration_s) {
  const ScenarioSpec spec = ScenarioSpec::Parse(text);
  const auto arrivals = GenerateArrivals(spec, qps, duration_s, 123,
                                         kOneWorkload);
  const double expected = ScenarioMeanRate(spec, qps, duration_s) * duration_s;
  const double slack = 5.0 * std::sqrt(expected);
  EXPECT_NEAR(static_cast<double>(arrivals.size()), expected, slack) << text;
}

TEST(ScenarioTest, MeanCountsMatchClosedForms) {
  ExpectCountNearClosedForm("poisson", 2000.0, 2.0);
  ExpectCountNearClosedForm("diurnal", 2000.0, 2.0);
  ExpectCountNearClosedForm("diurnal:period=0.5,depth=0.9", 2000.0, 2.0);
  // Half a period of pure crest: mean = qps * (1 + 2*depth/pi).
  ExpectCountNearClosedForm("diurnal:period=4,depth=0.5", 2000.0, 2.0);
  ExpectCountNearClosedForm("ramp", 2000.0, 2.0);
  ExpectCountNearClosedForm("ramp:from=1,to=3", 2000.0, 2.0);
  ExpectCountNearClosedForm("spike", 2000.0, 2.0);
  ExpectCountNearClosedForm("spike:at=0.5,width=1,mult=4", 2000.0, 2.0);
  ExpectCountNearClosedForm("closed:clients=32,think_ms=20,service_ms=5",
                            0.0, 2.0);
}

TEST(ScenarioTest, DiurnalMeanRateIntegralIsExactForFullPeriods) {
  const ScenarioSpec spec = ScenarioSpec::Parse("diurnal:period=0.5,depth=0.9");
  // Whole number of periods -> the sinusoid integrates to zero.
  EXPECT_NEAR(ScenarioMeanRate(spec, 100.0, 2.0), 100.0, 1e-9);
  // Quarter period from the trough-to-crest rise keeps a positive excess.
  const ScenarioSpec quarter = ScenarioSpec::Parse("diurnal:period=4,depth=0.5");
  EXPECT_NEAR(ScenarioMeanRate(quarter, 100.0, 1.0),
              100.0 * (1.0 + 0.5 * 2.0 / 3.141592653589793), 1e-6);
}

TEST(ScenarioTest, RampQuartersFollowTheLinearEnvelope) {
  // rate(t) = qps * 2t/D: quarter k (0-based) holds (2k+1)/16 of the mass.
  const ScenarioSpec spec = ScenarioSpec::Parse("ramp");
  const double qps = 4000.0;
  const double duration = 2.0;
  const auto arrivals = GenerateArrivals(spec, qps, duration, 99, kOneWorkload);
  double counts[4] = {0, 0, 0, 0};
  for (const Request& request : arrivals) {
    counts[static_cast<int>(request.arrival_s / (duration / 4.0))] += 1.0;
  }
  const double total = qps * duration;  // Expected grand total (from=0,to=2).
  for (int k = 0; k < 4; ++k) {
    const double expected = total * (2.0 * k + 1.0) / 16.0;
    EXPECT_NEAR(counts[k], expected, 5.0 * std::sqrt(expected)) << "quarter "
                                                                << k;
  }
}

TEST(ScenarioTest, SpikeWindowCarriesTheMultiplier) {
  const ScenarioSpec spec = ScenarioSpec::Parse("spike:at=0.5,width=0.5,mult=6");
  const double qps = 3000.0;
  const auto arrivals = GenerateArrivals(spec, qps, 2.0, 5, kOneWorkload);
  double inside = 0.0;
  double outside = 0.0;
  for (const Request& request : arrivals) {
    (request.arrival_s >= 0.5 && request.arrival_s < 1.0 ? inside : outside) +=
        1.0;
  }
  const double expected_inside = qps * 6.0 * 0.5;
  const double expected_outside = qps * 1.5;
  EXPECT_NEAR(inside, expected_inside, 5.0 * std::sqrt(expected_inside));
  EXPECT_NEAR(outside, expected_outside, 5.0 * std::sqrt(expected_outside));
}

TEST(ScenarioTest, BurstyKeepsLongRunMeanAndPeakRate) {
  const ScenarioSpec spec = ScenarioSpec::Parse("bursty:on=0.02,off=0.06,idle=0.1");
  const double qps = 2000.0;
  const double duration = 8.0;  // Many dwell cycles for the long-run mean.
  const auto arrivals = GenerateArrivals(spec, qps, duration, 17, kOneWorkload);
  const double expected = qps * duration;
  // Dwell-cycle variance dominates the Poisson variance; allow ~10%.
  EXPECT_NEAR(static_cast<double>(arrivals.size()), expected, 0.10 * expected);
  // The on-state rate the planner provisions for exceeds the mean.
  EXPECT_GT(ScenarioPeakRate(spec, qps, duration), qps * 2.0);

  // Burstiness shows up as index of dispersion > 1: slice into windows and
  // compare var/mean of window counts against a Poisson stream's ~1.
  const auto window_dispersion = [&](const std::vector<Request>& trace) {
    const int windows = 200;
    std::vector<double> counts(windows, 0.0);
    for (const Request& request : trace) {
      counts[std::min(windows - 1,
                      static_cast<int>(request.arrival_s / duration *
                                       windows))] += 1.0;
    }
    double mean = 0.0;
    for (const double c : counts) mean += c;
    mean /= windows;
    double var = 0.0;
    for (const double c : counts) var += (c - mean) * (c - mean);
    var /= windows;
    return var / mean;
  };
  const auto poisson = GenerateArrivals(ScenarioSpec{}, qps, duration, 17,
                                        kOneWorkload);
  EXPECT_GT(window_dispersion(arrivals), 3.0 * window_dispersion(poisson));
}

TEST(ScenarioTest, ClosedLoopRespectsClientConcurrency) {
  // With think >> 0 and a residence estimate, no client can have two
  // requests closer than service_ms apart; the offered rate follows the
  // renewal formula clients / (think + service).
  const ScenarioSpec spec =
      ScenarioSpec::Parse("closed:clients=4,think_ms=10,service_ms=5");
  const auto arrivals = GenerateArrivals(spec, 0.0, 4.0, 3, kOneWorkload);
  const double expected = 4.0 / 0.015 * 4.0;
  EXPECT_NEAR(static_cast<double>(arrivals.size()), expected,
              5.0 * std::sqrt(expected));
  EXPECT_NEAR(ScenarioMeanRate(spec, 0.0, 4.0), 4.0 / 0.015, 1e-9);
}

TEST(ScenarioTest, MixSharesApplyAcrossScenarios) {
  const ScenarioSpec spec = ScenarioSpec::Parse("diurnal:depth=0.5");
  const auto arrivals =
      GenerateArrivals(spec, 4000.0, 1.0, 21, {0.75, 0.25});
  double first = 0.0;
  for (const Request& request : arrivals) {
    if (request.workload == 0) {
      first += 1.0;
    }
  }
  const double share = first / static_cast<double>(arrivals.size());
  EXPECT_NEAR(share, 0.75, 0.05);
}

// ------------------------------------------------------------ trace replay

TEST(ScenarioTest, TraceRoundTripsThroughJson) {
  ServeOptions options;
  options.qps = 400.0;
  options.duration_s = 0.5;
  options.seed = 9;
  const auto original = SyntheticArrivals(options, {0.6, 0.4});
  const std::vector<std::string> names = {"mlp", "nvsa"};
  const std::string json = EmitArrivalTraceJson(original, names);
  const auto replayed = ParseArrivalTraceJson(json, names, options.duration_s);
  ASSERT_EQ(replayed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(replayed[i].id, original[i].id);
    ASSERT_EQ(replayed[i].arrival_s, original[i].arrival_s);  // Bit-exact.
    ASSERT_EQ(replayed[i].workload, original[i].workload);
  }
}

TEST(ScenarioTest, TraceReplayDropsArrivalsPastTheHorizon) {
  const std::string json =
      R"({"arrivals": [{"t_s": 0.1}, {"t_s": 0.4}, {"t_s": 0.9}]})";
  const auto replayed = ParseArrivalTraceJson(json, {}, 0.5);
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[1].arrival_s, 0.4);
}

TEST(ScenarioTest, TraceReplayValidates) {
  EXPECT_THROW(ParseArrivalTraceJson(
                   R"({"arrivals": [{"t_s": 0.4}, {"t_s": 0.1}]})", {}, 1.0),
               Error);
  EXPECT_THROW(
      ParseArrivalTraceJson(R"({"arrivals": [{"t_s": -0.1}]})", {}, 1.0),
      Error);
  EXPECT_THROW(
      ParseArrivalTraceJson(
          R"({"arrivals": [{"t_s": 0.1, "workload": "unknown"}]})",
          {"mlp"}, 1.0),
      Error);
  // Labels are ignored when the caller serves no named workloads.
  const auto unlabeled = ParseArrivalTraceJson(
      R"({"arrivals": [{"t_s": 0.1, "workload": "whatever"}]})", {}, 1.0);
  ASSERT_EQ(unlabeled.size(), 1u);
  EXPECT_EQ(unlabeled[0].workload, 0);
}

// ------------------------------------------------------------ spec parsing

TEST(ScenarioTest, SpecParsesAndRoundTrips) {
  for (const std::string& text : AllScenarioSpecs()) {
    const ScenarioSpec spec = ScenarioSpec::Parse(text);
    const ScenarioSpec again = ScenarioSpec::Parse(spec.ToString());
    EXPECT_TRUE(spec == again) << text << " -> " << spec.ToString();
  }
  const ScenarioSpec trace = ScenarioSpec::Parse("trace:file=arrivals.json");
  EXPECT_EQ(trace.kind, ScenarioKind::kTrace);
  EXPECT_EQ(trace.trace_path, "arrivals.json");
  EXPECT_TRUE(ScenarioSpec::Parse(trace.ToString()) == trace);
}

TEST(ScenarioTest, SpecRejectsUnknownNamesAndParameters) {
  EXPECT_THROW(ScenarioSpec::Parse("tsunami"), Error);
  EXPECT_THROW(ScenarioSpec::Parse("diurnal:depht=0.5"), Error);  // Typo.
  EXPECT_THROW(ScenarioSpec::Parse("poisson:rate=5"), Error);
  EXPECT_THROW(ScenarioSpec::Parse("diurnal:depth="), Error);
  EXPECT_THROW(ScenarioSpec::Parse("trace"), Error);  // Needs file=.
  EXPECT_THROW(ScenarioSpec::Parse("diurnal:depth=1.5"), Error);
  // Off-state alone exceeding the mean rate has no valid on-state rate —
  // rejected at parse time, and the peak-rate query agrees.
  EXPECT_THROW(ScenarioSpec::Parse("bursty:idle=7"), Error);

  // AdversitySpec shares the strict-parse contract (serve/adversity.h):
  // unknown patterns and keys, malformed k=v entries, and out-of-range
  // values all throw instead of silently falling back to defaults.
  EXPECT_THROW(AdversitySpec::Parse("meteor"), Error);
  EXPECT_THROW(AdversitySpec::Parse("replica-fail:donw=2"), Error);  // Typo.
  EXPECT_THROW(AdversitySpec::Parse("none:at=1"), Error);
  EXPECT_THROW(AdversitySpec::Parse("replica-fail:at="), Error);
  EXPECT_THROW(AdversitySpec::Parse("replica-fail:at=soon"), Error);
  EXPECT_THROW(AdversitySpec::Parse("straggler:at"), Error);  // No '='.
  EXPECT_THROW(AdversitySpec::Parse("replica-fail:down=0"), Error);
  EXPECT_THROW(AdversitySpec::Parse("replica-fail:count=0"), Error);
  EXPECT_THROW(AdversitySpec::Parse("replica-fail:replica=-2"), Error);
  EXPECT_THROW(AdversitySpec::Parse("straggler:factor=0.5"), Error);
  EXPECT_THROW(AdversitySpec::Parse("churn:workload=1.5"), Error);
  EXPECT_THROW(AdversitySpec::Parse("churn:workload=-1"), Error);
  EXPECT_THROW(AdversitySpec::Parse("flash:mult=0.9"), Error);
  EXPECT_THROW(AdversitySpec::Parse("flash:width=-1"), Error);
}

TEST(ScenarioTest, ToStringRoundTripsHighPrecisionParams) {
  // The canonical string is recorded in plan JSON: values with more
  // precision than a fixed 6-decimal print must survive bit-exactly.
  ScenarioSpec spec;
  spec.kind = ScenarioKind::kBursty;
  spec.params["on"] = 5e-7;
  spec.params["off"] = 1.0 / 3.0;
  const ScenarioSpec again = ScenarioSpec::Parse(spec.ToString());
  EXPECT_EQ(again.Param("on", 0.0), 5e-7);
  EXPECT_EQ(again.Param("off", 0.0), 1.0 / 3.0);
}

TEST(ScenarioTest, EngineRunsEveryScenarioDeterministically) {
  // End-to-end: a tiny pool under each pattern, twice, bit-identical stats.
  // (Workload compile is the expensive part; do it once.)
  WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  const std::vector<ReplicaSpec> replicas = registry.ReplicaSpecs(2, false);
  const std::vector<WorkloadShare> mix = {{"mlp", 1.0}};
  for (const std::string& text :
       {std::string("diurnal"), std::string("bursty"), std::string("ramp"),
        std::string("spike:mult=3"), std::string("closed:clients=8")}) {
    ServeOptions options;
    options.qps = 300.0;
    options.duration_s = 0.2;
    options.seed = 4;
    options.scenario = ScenarioSpec::Parse(text);
    const ServeReport a = RunSyntheticServe(registry, replicas, mix, options);
    const ServeReport b = RunSyntheticServe(registry, replicas, mix, options);
    ASSERT_EQ(a.generated_requests, b.generated_requests) << text;
    ASSERT_GT(a.summary.completed, 0) << text;
    ASSERT_EQ(a.summary.p99_ms, b.summary.p99_ms) << text;
    ASSERT_EQ(a.summary.throughput_rps, b.summary.throughput_rps) << text;
  }
}

}  // namespace
}  // namespace nsflow::serve
