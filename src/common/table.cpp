#include "common/table.h"

#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace nsflow {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  NSF_CHECK_MSG(!headers_.empty(), "table must have at least one column");
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  NSF_CHECK_MSG(row.size() == headers_.size(),
                "row arity does not match header");
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::Bytes(double bytes) {
  const char* suffix = "B";
  if (bytes >= 1024.0 * 1024.0) {
    bytes /= 1024.0 * 1024.0;
    suffix = "MB";
  } else if (bytes >= 1024.0) {
    bytes /= 1024.0;
    suffix = "KB";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, suffix);
  return buf;
}

std::string TablePrinter::Percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto separator = [&] {
    std::string s = "+";
    for (const auto w : widths) {
      s += std::string(w + 2, '-') + "+";
    }
    return s + "\n";
  }();

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      s += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::ostringstream os;
  os << separator << render_row(headers_) << separator;
  for (const auto& row : rows_) {
    os << render_row(row);
  }
  os << separator;
  return os.str();
}

}  // namespace nsflow
