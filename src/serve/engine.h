// NSFlow-Serve engine — the end-to-end serving loop.
//
//   Poisson arrival generator (producer thread, virtual timestamps)
//     └─> RequestQueue (thread-safe FIFO handoff)
//           └─> BatchFormer (max-batch / max-wait coalescing)
//                 └─> ServerPool (N accelerator replicas, worker threads)
//                       └─> ServeStats (p50/p95/p99, throughput, util)
//
// The engine turns the paper's one-shot `RunWorkload` accelerator into a
// throughput-oriented service: an open-loop synthetic trace with exponential
// inter-arrival times drives the pipeline for `duration_s` virtual seconds,
// and the report captures tail latency and saturation behavior. With a fixed
// seed the whole run is bit-reproducible (see request.h on virtual time).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dataflow_graph.h"
#include "model/accel_model.h"
#include "serve/request.h"
#include "serve/server_pool.h"
#include "serve/serve_stats.h"

namespace nsflow::serve {

struct ServeOptions {
  double qps = 100.0;          // Open-loop offered load (Poisson arrivals).
  double duration_s = 1.0;     // Virtual length of the arrival trace.
  std::int64_t max_batch = 8;  // BatchFormer size cap.
  double max_wait_s = 5e-3;    // BatchFormer wait cap.
  std::uint64_t seed = 42;     // Arrival-process RNG seed.
  int worker_threads = 0;      // 0 = hardware concurrency.
};

struct ServeReport {
  StatsSummary summary;
  std::vector<DispatchRecord> dispatches;
  std::int64_t generated_requests = 0;
  /// Single-request latency on replica 0 — the no-batching baseline the
  /// throughput numbers are judged against.
  double single_request_s = 0.0;
};

/// Generate the open-loop Poisson arrival trace for `options` (exposed for
/// tests and for replaying the same trace against different pools).
std::vector<Request> SyntheticArrivals(const ServeOptions& options);

/// Run the full pipeline: synthetic arrivals through queue, former, and
/// pool. `designs` defines the pool (one replica per entry; `dfg` must
/// outlive the call).
ServeReport RunSyntheticServe(const DataflowGraph& dfg,
                              const std::vector<AcceleratorDesign>& designs,
                              const ServeOptions& options);

}  // namespace nsflow::serve
