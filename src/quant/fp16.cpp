#include "quant/fp16.h"

#include <bit>
#include <cstring>

namespace nsflow {
namespace {

std::uint32_t FloatBits(float f) { return std::bit_cast<std::uint32_t>(f); }
float BitsFloat(std::uint32_t b) { return std::bit_cast<float>(b); }

}  // namespace

std::uint16_t FloatToHalfBits(float value) {
  const std::uint32_t bits = FloatBits(value);
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::uint32_t exponent = (bits >> 23) & 0xFFu;
  std::uint32_t mantissa = bits & 0x007FFFFFu;

  if (exponent == 0xFF) {  // Inf or NaN.
    // Preserve NaN-ness by forcing a non-zero mantissa bit.
    const std::uint32_t nan_bit = mantissa != 0 ? 0x0200u : 0u;
    return static_cast<std::uint16_t>(sign | 0x7C00u | nan_bit |
                                      (mantissa >> 13));
  }

  // Re-bias exponent from 127 to 15.
  const int new_exp = static_cast<int>(exponent) - 127 + 15;

  if (new_exp >= 0x1F) {  // Overflow -> infinity.
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  if (new_exp <= 0) {  // Subnormal or underflow to zero.
    if (new_exp < -10) {
      return static_cast<std::uint16_t>(sign);  // Too small: signed zero.
    }
    // Add the implicit leading 1, then shift right into subnormal position.
    mantissa |= 0x00800000u;
    const int shift = 14 - new_exp;  // 14..24
    const std::uint32_t rounded =
        (mantissa + (1u << (shift - 1)) - 1u +
         ((mantissa >> shift) & 1u)) >>
        shift;
    return static_cast<std::uint16_t>(sign | rounded);
  }

  // Normalized: round mantissa from 23 to 10 bits, round-to-nearest-even.
  std::uint32_t half = sign | (static_cast<std::uint32_t>(new_exp) << 10) |
                       (mantissa >> 13);
  const std::uint32_t round_bits = mantissa & 0x1FFFu;
  if (round_bits > 0x1000u || (round_bits == 0x1000u && (half & 1u))) {
    ++half;  // May carry into the exponent, which correctly yields infinity.
  }
  return static_cast<std::uint16_t>(half);
}

float HalfBitsToFloat(std::uint16_t bits) {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exponent = (bits >> 10) & 0x1Fu;
  std::uint32_t mantissa = bits & 0x03FFu;

  if (exponent == 0x1F) {  // Inf / NaN.
    return BitsFloat(sign | 0x7F800000u | (mantissa << 13));
  }
  if (exponent == 0) {
    if (mantissa == 0) {
      return BitsFloat(sign);  // Signed zero.
    }
    // Subnormal: normalize.
    int e = -1;
    do {
      ++e;
      mantissa <<= 1;
    } while ((mantissa & 0x0400u) == 0);
    mantissa &= 0x03FFu;
    const std::uint32_t new_exp = static_cast<std::uint32_t>(127 - 15 - e);
    return BitsFloat(sign | (new_exp << 23) | (mantissa << 13));
  }
  const std::uint32_t new_exp = exponent - 15 + 127;
  return BitsFloat(sign | (new_exp << 23) | (mantissa << 13));
}

}  // namespace nsflow
