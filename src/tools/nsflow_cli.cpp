// nsflow — command-line front door to the framework (the `NSFlow-generated`
// flow of paper Fig. 2).
//
//   nsflow compile <trace.json>   frontend -> deployment artifacts
//   nsflow estimate <trace.json>  latency prediction on baseline devices
//   nsflow serve [trace.json]     NSFlow-Serve replica pool (docs/SERVING.md)
//   nsflow plan                   SLO-driven capacity planning
//                                 (docs/PLANNING.md)
//   nsflow demo                   compile the built-in NVSA workload
//
// `nsflow <command> --help` prints the command's flag reference. The flag
// tables below are the single source of that help text, and each command
// accepts exactly its own flags — a flag from another command (or an
// unknown one) is an error with a non-zero exit, never silently ignored.
// tools/check_doc_links.py cross-checks these tables against the docs.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/table.h"
#include "fpga/device.h"
#include "graph/trace.h"
#include "model/device_zoo.h"
#include "nsflow/framework.h"
#include "serve/capacity_planner.h"
#include "serve/cluster.h"
#include "serve/engine.h"
#include "serve/scenario.h"
#include "workloads/builders.h"

namespace nsflow {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("cannot open file: " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw Error("cannot write file: " + path);
  }
  out << contents;
}

// ---------------------------------------------------------------- flag spec

/// One command-line flag: its value placeholder ("" = boolean switch), the
/// default shown in --help, and the help line. These tables are the single
/// source of truth for `--help`, for per-command flag validation, and for
/// the docs cross-check in tools/check_doc_links.py.
struct FlagSpec {
  const char* flag;
  const char* value;    // "" for boolean switches.
  const char* fallback; // Default, as shown in help.
  const char* help;
};

struct CommandSpec {
  const char* name;
  const char* operand;  // Positional operand, "" when none.
  const char* summary;
  std::vector<FlagSpec> flags;
};

const std::vector<FlagSpec> kDseFlags = {
    {"--max-pes", "N", "16384", "DSE PE budget M (FPGA resource bound)"},
    {"--clock-mhz", "F", "272", "deployment clock frequency, MHz"},
    {"--no-phase2", "", "off", "disable DSE Phase II per-kernel tuning"},
};

std::vector<FlagSpec> WithDseFlags(std::vector<FlagSpec> flags) {
  flags.insert(flags.end(), kDseFlags.begin(), kDseFlags.end());
  return flags;
}

const std::vector<CommandSpec>& Commands() {
  static const std::vector<CommandSpec> kCommands = {
      {"compile", "<trace.json>",
       "run the frontend on a JSON program trace and emit design_config.json,"
       " host.cpp, nsflow_params.vh, nsflow_top.v, and report.txt",
       WithDseFlags({
           {"--out-dir", "DIR", ".", "directory for the emitted artifacts"},
       })},
      {"estimate", "<trace.json>",
       "predict end-to-end workload latency on a baseline device or the"
       " NSFlow-generated design",
       WithDseFlags({
           {"--device", "NAME", "nsflow",
            "nsflow | tx2 | nx | cpu | rtx2080 | coral | tpu-like | dpu"},
       })},
      {"serve", "[trace.json]",
       "deploy a replica pool and drive it with a synthetic arrival trace;"
       " see docs/SERVING.md and docs/SCENARIOS.md",
       WithDseFlags({
           {"--qps", "F", "100", "offered load, requests/second (scenario"
                                 " mean rate)"},
           {"--duration", "F", "1.0", "virtual arrival-trace length, seconds"},
           {"--replicas", "N", "1", "pool size"},
           {"--max-batch", "N", "8", "batch former size cap"},
           {"--max-wait-ms", "F", "5", "batch former wait cap, ms"},
           {"--seed", "N", "42", "arrival-trace RNG seed"},
           {"--threads", "N", "0",
            "cycle-model warm-up threads (0 = hardware concurrency)"},
           {"--heterogeneous", "", "off",
            "single-workload pools: replica designs from the DSE pareto"
            " frontier"},
           {"--mix", "name=share,...", "off",
            "multi-tenant mode, e.g. mlp=0.6,resnet18=0.3,nvsa=0.1"},
           {"--partition", "", "off",
            "with --mix: dedicate replica r to workload r % W"},
           {"--scenario", "name[:k=v,...]", "poisson",
            "arrival pattern: poisson | diurnal | bursty | ramp | spike |"
            " closed | trace (docs/SCENARIOS.md)"},
           {"--adversity", "name[:k=v,...]", "none",
            "environment-fault injection: none | replica-fail | straggler |"
            " churn | flash (seed-deterministic; docs/SCENARIOS.md)"},
           {"--admission", "name[:k=v,...]", "none",
            "admission frontend: none | quota | slo | overload | guard —"
            " per-tenant token buckets, SLA-tier deadlines, overload"
            " shedding, bounded retries (docs/ADMISSION.md)"},
           {"--cluster", "name[:k=v,...]", "none",
            "multi-node serving: none | hash | least-loaded — replicas"
            " shard across nodes=N hosts and cross-node dispatch pays the"
            " modeled interconnect (hops, hop_us, gbps; docs/CLUSTER.md)"},
           {"--engine", "NAME", "event",
            "pipeline driver: event (discrete-event core) | legacy"
            " (preserved polling loop) — byte-identical output"
            " (docs/ENGINE.md)"},
           {"--tiers", "name=tier,...", "standard",
            "with --admission: SLA tier per workload, critical | standard |"
            " batch, e.g. mlp=critical,resnet18=batch (docs/ADMISSION.md)"},
           {"--plan", "FILE", "off",
            "execute a PoolPlan emitted by `nsflow plan --out` and report"
            " predicted vs measured latency"},
           {"--autoscale", "", "off",
            "elastic autoscaling: replan online from windowed arrival"
            " rates and reconfigure the pool mid-run (needs --plan, or"
            " --mix with --partition; docs/AUTOSCALING.md)"},
           {"--headroom", "F", "0.25",
            "autoscale: provision for observed rate x (1 + headroom)"},
           {"--cooldown-s", "F", "2",
            "autoscale: min virtual seconds between scale-downs of one"
            " workload"},
           {"--min-replicas", "N", "1",
            "autoscale: per-workload replica floor"},
           {"--max-replicas", "N", "16",
            "autoscale: per-workload replica ceiling (replan bound)"},
           {"--trace-out", "FILE", "off",
            "record the run and write a Chrome trace_event JSON (a .bin"
            " path writes the compact binary encoding instead) — load in"
            " Perfetto (docs/OBSERVABILITY.md)"},
           {"--metrics-out", "FILE", "off",
            "record the run and write the metrics.json snapshot timeline"
            " (docs/OBSERVABILITY.md)"},
           {"--trace-detail", "spans|full", "spans",
            "trace expansion: full additionally nests per-request"
            " form/execute phase spans (export-time choice)"},
       })},
      {"plan", "",
       "search the DSE pareto frontier for the smallest replica pool meeting"
       " a p99 SLO under an FPGA budget; see docs/PLANNING.md",
       WithDseFlags({
           {"--mix", "name=share,...", "required",
            "workload mix the pool must serve"},
           {"--p99-ms", "F", "10", "p99 latency SLO, ms"},
           {"--budget", "NAME", "u250", "budget FPGA device: u250 | zcu104"},
           {"--devices", "N", "1", "how many budget devices the pool may use"},
           {"--nodes", "N", "1",
            "cluster hosts the devices split across — replicas are placed"
            " per node and serve --plan deploys the cluster"
            " (docs/CLUSTER.md)"},
           {"--qps", "F", "100", "offered load to plan for (mean rate; the"
                                 " scenario's peak shape scales it)"},
           {"--scenario", "name[:k=v,...]", "poisson",
            "traffic shape to provision for (peak-rate planning)"},
           {"--max-batch", "N", "8", "batching policy of the planned pool"},
           {"--max-wait-ms", "F", "5", "batching wait cap of the planned"
                                       " pool, ms"},
           {"--max-replicas", "N", "16", "per-workload replica search bound"},
           {"--duration", "F", "1.0", "validation-run trace length, seconds"},
           {"--seed", "N", "42", "validation-run RNG seed"},
           {"--threads", "N", "0", "validation-run warm-up threads"},
           {"--out", "FILE", "off", "write the PoolPlan JSON here"},
           {"--validate", "", "off",
            "run the planned pool and print predicted vs measured"},
       })},
      {"demo", "", "compile the built-in NVSA workload and print a summary",
       {}},
  };
  return kCommands;
}

const CommandSpec& CommandByName(const std::string& name) {
  for (const CommandSpec& command : Commands()) {
    if (name == command.name) {
      return command;
    }
  }
  std::string known;
  for (const CommandSpec& command : Commands()) {
    known += (known.empty() ? "" : ", ") + std::string(command.name);
  }
  throw Error("unknown command: " + name + " (known: " + known + ")");
}

void PrintGlobalHelp() {
  std::printf("nsflow — NSFlow compiler, estimator, and serving front door\n");
  std::printf("\nusage: nsflow <command> [operand] [flags]\n\n");
  for (const CommandSpec& command : Commands()) {
    std::printf("  %-9s %-13s %s\n", command.name, command.operand,
                command.summary);
  }
  std::printf(
      "\nRun 'nsflow <command> --help' for that command's flag reference.\n");
}

void PrintCommandHelp(const CommandSpec& command) {
  std::printf("nsflow %s — %s\n\nusage: nsflow %s%s%s%s\n", command.name,
              command.summary, command.name,
              command.operand[0] ? " " : "", command.operand,
              command.flags.empty() ? "" : " [flags]");
  if (!command.flags.empty()) {
    std::printf("\nflags (default in brackets):\n");
    for (const FlagSpec& flag : command.flags) {
      const std::string left =
          std::string(flag.flag) +
          (flag.value[0] ? " " + std::string(flag.value) : "");
      std::printf("  %-26s %s [%s]\n", left.c_str(), flag.help,
                  flag.fallback);
    }
  }
}

// ------------------------------------------------------------------ parsing

struct CliArgs {
  std::string command;
  bool help = false;
  std::string trace_path;
  std::string out_dir = ".";
  std::string device = "nsflow";
  DseOptions dse;
  serve::ServeOptions serve;
  int replicas = 1;
  bool heterogeneous = false;
  std::string mix;        // Multi-tenant QPS mix, e.g. "mlp=0.6,nvsa=0.4".
  std::string tiers;      // --tiers text, resolved against the registry.
  bool partition = false; // Dedicate replica r to workload r % W.
  std::string plan_path;  // serve --plan: execute this PoolPlan JSON.
  std::string trace_out;    // serve --trace-out: Chrome trace (or .bin).
  std::string metrics_out;  // serve --metrics-out: metrics.json timeline.
  // Plan command.
  double p99_ms = 10.0;
  std::string budget = "u250";
  int devices = 1;
  int nodes = 1;           // plan --nodes: cluster hosts to place across.
  bool cluster_set = false;  // serve --cluster given explicitly.
  int max_replicas = 16;
  std::string plan_out;
  bool validate = false;
  // Which traffic flags were given explicitly (a plan's recorded values
  // apply otherwise when executing `serve --plan`).
  bool qps_set = false;
  bool max_batch_set = false;
  bool max_wait_set = false;
  bool scenario_set = false;
  bool replicas_set = false;
  bool dse_set = false;  // Any of --max-pes/--clock-mhz/--no-phase2.
};

CliArgs Parse(int argc, char** argv) {
  CliArgs args;
  if (argc < 2) {
    throw Error(
        "usage: nsflow <compile|estimate|serve|plan|demo> [args] "
        "(try nsflow --help)");
  }
  args.command = argv[1];
  if (args.command == "--help" || args.command == "-h" ||
      args.command == "help") {
    args.command.clear();
    args.help = true;
    return args;
  }
  const CommandSpec& spec = CommandByName(args.command);

  int i = 2;
  if ((args.command == "compile" || args.command == "estimate")) {
    if (i < argc &&
        (std::strcmp(argv[i], "--help") == 0 ||
         std::strcmp(argv[i], "-h") == 0)) {
      args.help = true;
      return args;
    }
    if (i >= argc || argv[i][0] == '-') {
      throw Error(args.command + " needs a trace file argument (see nsflow " +
                  args.command + " --help)");
    }
    args.trace_path = argv[i++];
  }
  if (args.command == "serve" && i < argc && argv[i][0] != '-') {
    args.trace_path = argv[i++];  // Optional: defaults to built-in NVSA.
  }
  for (; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      args.help = true;
      return args;
    }
    bool known = false;
    for (const FlagSpec& allowed : spec.flags) {
      if (flag == allowed.flag) {
        known = true;
        break;
      }
    }
    if (!known) {
      // Distinguish "wrong command" from "no such flag" in the message.
      for (const CommandSpec& other : Commands()) {
        for (const FlagSpec& other_flag : other.flags) {
          if (flag == other_flag.flag) {
            throw Error("flag " + flag + " is not valid for 'nsflow " +
                        args.command + "' (it belongs to 'nsflow " +
                        other.name + "'; see nsflow " + args.command +
                        " --help)");
          }
        }
      }
      throw Error("unknown flag: " + flag + " (see nsflow " + args.command +
                  " --help)");
    }
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw Error("flag " + flag + " needs a value");
      }
      return argv[++i];
    };
    if (flag == "--out-dir") {
      args.out_dir = next();
    } else if (flag == "--max-pes") {
      args.dse.max_pes = std::stoll(next());
      args.dse_set = true;
    } else if (flag == "--clock-mhz") {
      args.dse.clock_hz = std::stod(next()) * 1e6;
      args.dse_set = true;
    } else if (flag == "--no-phase2") {
      args.dse.enable_phase2 = false;
      args.dse_set = true;
    } else if (flag == "--device") {
      args.device = next();
    } else if (flag == "--qps") {
      args.serve.qps = std::stod(next());
      args.qps_set = true;
    } else if (flag == "--duration") {
      args.serve.duration_s = std::stod(next());
    } else if (flag == "--replicas") {
      args.replicas = static_cast<int>(std::stoll(next()));
      args.replicas_set = true;
    } else if (flag == "--max-batch") {
      args.serve.max_batch = std::stoll(next());
      args.max_batch_set = true;
    } else if (flag == "--max-wait-ms") {
      args.serve.max_wait_s = std::stod(next()) * 1e-3;
      args.max_wait_set = true;
    } else if (flag == "--seed") {
      args.serve.seed = static_cast<std::uint64_t>(std::stoull(next()));
    } else if (flag == "--threads") {
      args.serve.worker_threads = static_cast<int>(std::stoll(next()));
    } else if (flag == "--heterogeneous") {
      args.heterogeneous = true;
    } else if (flag == "--mix") {
      args.mix = next();
    } else if (flag == "--partition") {
      args.partition = true;
    } else if (flag == "--scenario") {
      args.serve.scenario = serve::ScenarioSpec::Parse(next());
      args.scenario_set = true;
    } else if (flag == "--adversity") {
      args.serve.adversity = serve::AdversitySpec::Parse(next());
    } else if (flag == "--admission") {
      args.serve.admission = serve::AdmissionSpec::Parse(next());
    } else if (flag == "--cluster") {
      args.serve.cluster = serve::ClusterSpec::Parse(next());
      args.cluster_set = true;
    } else if (flag == "--engine") {
      const std::string engine = next();
      if (engine == "event") {
        args.serve.engine = serve::ServeEngine::kEvent;
      } else if (engine == "legacy") {
        args.serve.engine = serve::ServeEngine::kLegacy;
      } else {
        throw Error("unknown --engine '" + engine +
                    "' (expected event or legacy)");
      }
    } else if (flag == "--tiers") {
      args.tiers = next();
    } else if (flag == "--plan") {
      args.plan_path = next();
    } else if (flag == "--trace-out") {
      args.trace_out = next();
      args.serve.trace.enabled = true;
    } else if (flag == "--metrics-out") {
      args.metrics_out = next();
      args.serve.trace.enabled = true;
    } else if (flag == "--trace-detail") {
      const std::string detail = next();
      if (detail == "spans") {
        args.serve.trace.detail = obs::TraceDetail::kSpans;
      } else if (detail == "full") {
        args.serve.trace.detail = obs::TraceDetail::kFull;
      } else {
        throw Error("--trace-detail must be 'spans' or 'full', got '" +
                    detail + "'");
      }
    } else if (flag == "--autoscale") {
      args.serve.autoscale = true;
    } else if (flag == "--headroom") {
      auto& autoscale = args.serve.autoscale_opts;
      autoscale.headroom = std::stod(next());
      // The SLO invariant needs up_band < 1 + headroom; the CLI exposes
      // only --headroom, so tighten the default band to fit small values
      // instead of tripping the autoscaler's internal check.
      autoscale.up_band =
          std::min(autoscale.up_band, 1.0 + 0.9 * autoscale.headroom);
    } else if (flag == "--cooldown-s") {
      args.serve.autoscale_opts.cooldown_s = std::stod(next());
    } else if (flag == "--min-replicas") {
      args.serve.autoscale_opts.min_replicas =
          static_cast<int>(std::stoll(next()));
    } else if (flag == "--p99-ms") {
      args.p99_ms = std::stod(next());
    } else if (flag == "--budget") {
      args.budget = next();
    } else if (flag == "--devices") {
      args.devices = static_cast<int>(std::stoll(next()));
    } else if (flag == "--nodes") {
      args.nodes = static_cast<int>(std::stoll(next()));
    } else if (flag == "--max-replicas") {
      // `plan`'s search bound and `serve --autoscale`'s replan ceiling —
      // only the owning command accepts the flag, so set both.
      args.max_replicas = static_cast<int>(std::stoll(next()));
      args.serve.autoscale_opts.max_replicas = args.max_replicas;
    } else if (flag == "--out") {
      args.plan_out = next();
    } else if (flag == "--validate") {
      args.validate = true;
    } else {
      throw Error("unhandled flag: " + flag);  // Spec/dispatch drift.
    }
  }
  return args;
}

// ----------------------------------------------------------------- commands

std::string ReportText(const CompiledDesign& compiled) {
  const auto& dse = compiled.dse;
  const auto& d = dse.design;
  std::ostringstream os;
  os << "NSFlow compilation report — workload '"
     << compiled.graph->workload_name() << "'\n\n";
  os << "Dataflow graph: " << compiled.dataflow->layers().size()
     << " NN layers, " << compiled.dataflow->vsa_ops().size()
     << " VSA nodes, " << compiled.dataflow->simd_ops().size()
     << " SIMD ops, " << compiled.dataflow->ParallelOpCount()
     << " parallel-attached ops\n\n";
  os << "DSE (Algorithm 1): " << dse.evaluated_points
     << " model evaluations\n";
  os << "  t_seq  = " << dse.t_seq_cycles << " cycles\n";
  os << "  t_para = " << dse.t_para_cycles << " cycles (Phase I "
     << dse.phase1_cycles << " -> Phase II " << dse.phase2_cycles << ", gain "
     << dse.Phase2Gain() * 100.0 << "%)\n";
  os << "  mode   = " << (d.sequential_mode ? "sequential" : "folded") << "\n\n";
  os << "AdArray: H=" << d.array.height << " W=" << d.array.width
     << " N=" << d.array.count << " (partition " << d.default_nl << ":"
     << d.default_nv << "), SIMD " << d.simd_width << " lanes\n";
  os << "Memory: A1=" << d.memory.mem_a1_bytes / 1e6
     << " MB, A2=" << d.memory.mem_a2_bytes / 1e6
     << " MB, B=" << d.memory.mem_b_bytes / 1e6
     << " MB, C=" << d.memory.mem_c_bytes / 1e6
     << " MB, cache=" << d.memory.cache_bytes / 1e6 << " MB\n\n";

  const ResourceReport rpt = Report(compiled, U250());
  os << "U250 @ " << d.clock_hz / 1e6 << " MHz: DSP " << rpt.dsp_util * 100
     << "%, LUT " << rpt.lut_util * 100 << "%, FF " << rpt.ff_util * 100
     << "%, BRAM " << rpt.bram_util * 100 << "%, URAM "
     << rpt.uram_util * 100 << "% -> " << (rpt.fits ? "fits" : "DOES NOT FIT")
     << "\n";
  os << "Predicted end-to-end latency: " << compiled.PredictedSeconds() * 1e3
     << " ms\n";
  return os.str();
}

int RunCompile(const CliArgs& args, OperatorGraph graph) {
  CompileOptions options;
  options.dse = args.dse;
  const Compiler compiler(options);
  const CompiledDesign compiled = compiler.Compile(std::move(graph));

  const std::string prefix = args.out_dir + "/";
  WriteFile(prefix + "design_config.json", compiled.design_config_json);
  WriteFile(prefix + "host.cpp", compiled.host_code);
  WriteFile(prefix + "nsflow_params.vh", compiled.rtl_parameter_header);
  WriteFile(prefix + "nsflow_top.v", compiled.rtl_top_level);
  const std::string report = ReportText(compiled);
  WriteFile(prefix + "report.txt", report);
  std::printf("%s\nArtifacts written to %s\n", report.c_str(),
              args.out_dir.c_str());
  return 0;
}

int RunEstimate(const CliArgs& args) {
  const OperatorGraph graph = ParseJsonTrace(ReadFile(args.trace_path));
  const int loops = std::max(1, graph.loop_count());

  if (args.device == "nsflow") {
    CompileOptions options;
    options.dse = args.dse;
    const Compiler compiler(options);
    const CompiledDesign compiled =
        compiler.Compile(OperatorGraph(graph));
    std::printf("NSFlow-generated design: %.3f ms end to end\n",
                compiled.PredictedSeconds() * 1e3);
    return 0;
  }

  DeviceKind kind;
  if (args.device == "tx2") {
    kind = DeviceKind::kJetsonTx2;
  } else if (args.device == "nx") {
    kind = DeviceKind::kXavierNx;
  } else if (args.device == "cpu") {
    kind = DeviceKind::kXeonCpu;
  } else if (args.device == "rtx2080") {
    kind = DeviceKind::kRtx2080;
  } else if (args.device == "coral") {
    kind = DeviceKind::kCoralTpu;
  } else if (args.device == "tpu-like") {
    kind = DeviceKind::kTpuLikeSa;
  } else if (args.device == "dpu") {
    kind = DeviceKind::kXilinxDpu;
  } else {
    throw Error("unknown device: " + args.device);
  }
  const auto device = MakeDevice(kind);
  const auto estimate = device->Estimate(graph);
  std::printf("%s: %.3f ms end to end (%.1f%% symbolic)\n",
              device->name().c_str(), estimate.total_s() * loops * 1e3,
              estimate.symbolic_share() * 100.0);
  return 0;
}

/// The "Arrival trace: ..." header line, scenario-aware: closed loops and
/// trace replays ignore --qps, so printing it would misstate the run.
std::string TrafficLine(const serve::ServeOptions& options) {
  char buf[192];
  const std::string scenario = options.scenario.ToString();
  if (options.scenario.kind == serve::ScenarioKind::kClosedLoop) {
    std::snprintf(buf, sizeof(buf),
                  "%.1f rps offered (client-driven; --qps unused) for %.2f "
                  "s (seed %llu, scenario %s)",
                  serve::EffectiveOfferedRps(options, 0),
                  options.duration_s,
                  static_cast<unsigned long long>(options.seed),
                  scenario.c_str());
  } else if (options.scenario.kind == serve::ScenarioKind::kTrace) {
    std::snprintf(buf, sizeof(buf),
                  "replayed arrivals (--qps unused) for %.2f s (scenario "
                  "%s)",
                  options.duration_s, scenario.c_str());
  } else {
    std::snprintf(buf, sizeof(buf),
                  "%.1f qps for %.2f s (seed %llu, scenario %s)",
                  options.qps, options.duration_s,
                  static_cast<unsigned long long>(options.seed),
                  scenario.c_str());
  }
  return buf;
}

void PrintPlan(const serve::PoolPlan& plan) {
  std::printf(
      "PoolPlan — mix over %zu workload(s), SLO p99 <= %.3f ms, budget %d x "
      "%s\n",
      plan.mix.size(), plan.p99_slo_s * 1e3, plan.devices,
      plan.device_name.c_str());
  std::printf(
      "Traffic: %.1f qps mean, scenario %s -> planning for %.1f rps peak\n\n",
      plan.qps, plan.scenario.ToString().c_str(), plan.planning_rate);
  TablePrinter table({"workload", "replicas", "PEs (budget)", "batch cap",
                      "service (ms)", "rho", "pred p50 (ms)",
                      "pred p99 (ms)"});
  for (const serve::GroupPlan& group : plan.groups) {
    table.AddRow(
        {group.workload, std::to_string(group.replicas),
         std::to_string(group.pes) + " (" + std::to_string(group.pe_budget) +
             ")",
         std::to_string(group.batch_cap),
         TablePrinter::Num(group.batch_service_s * 1e3, 3),
         TablePrinter::Percent(group.utilization),
         TablePrinter::Num(group.predicted_p50_s * 1e3, 3),
         TablePrinter::Num(group.predicted_p99_s * 1e3, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Resources: %.0f DSP, %.0f kLUT, %.0f BRAM18, %.0f URAM -> %s\n",
      plan.resources.dsp, plan.resources.lut / 1e3, plan.resources.bram18,
      plan.resources.uram,
      plan.resources.fits ? "fits the budget" : "EXCEEDS the budget");
  if (plan.nodes > 1) {
    std::string placement;
    for (const serve::GroupPlan& group : plan.groups) {
      placement += (placement.empty() ? "" : "; ") + group.workload + " ->";
      for (const int node : group.placement) {
        placement += " " + std::to_string(node);
      }
    }
    std::printf("Cluster: %d device(s) split across %d node(s) — %s\n",
                plan.devices, plan.nodes, placement.c_str());
  }
  std::printf("Aggregate predicted: p50 %.3f ms, p99 %.3f ms (SLO %.3f ms)\n",
              plan.predicted_p50_s * 1e3, plan.predicted_p99_s * 1e3,
              plan.p99_slo_s * 1e3);
  if (!plan.feasible) {
    std::printf("INFEASIBLE: %s\n", plan.note.c_str());
  }
}

serve::ServeOptions ValidationOptions(const CliArgs& args,
                                      const serve::PoolPlan& plan) {
  serve::ServeOptions options = args.serve;
  if (!args.qps_set) {
    options.qps = plan.qps;
  }
  if (!args.max_batch_set) {
    options.max_batch = plan.max_batch;
    // The plan's per-lane batch caps apply unless the user pinned a
    // uniform cap explicitly.
    options.per_workload_max_batch = plan.PerWorkloadMaxBatch();
  }
  if (!args.max_wait_set) {
    options.max_wait_s = plan.max_wait_s;
  }
  if (!args.scenario_set) {
    options.scenario = plan.scenario;
  }
  // A multi-node plan deploys as a cluster: the plan's recorded placement
  // pins replicas to nodes, and the router defaults to least-loaded unless
  // --cluster picked a policy explicitly (docs/CLUSTER.md).
  if (plan.nodes > 1) {
    if (!options.cluster.enabled()) {
      options.cluster = serve::ClusterSpec::Parse(
          "least-loaded:nodes=" + std::to_string(plan.nodes));
    }
    NSF_CHECK_MSG(options.cluster.nodes() == plan.nodes,
                  "--cluster names " +
                      std::to_string(options.cluster.nodes()) +
                      " node(s) but the plan placed replicas across " +
                      std::to_string(plan.nodes) +
                      " — match nodes= to the plan (docs/CLUSTER.md)");
    options.cluster_nodes = plan.Placement();
  }
  return options;
}

int RunPlanCommand(const CliArgs& args) {
  if (args.mix.empty()) {
    throw Error("nsflow plan needs --mix name=share,... (the workloads the "
                "pool must serve)");
  }
  const std::vector<serve::WorkloadShare> mix = serve::ParseMix(args.mix);

  CompileOptions options;
  options.dse = args.dse;
  serve::WorkloadRegistry registry(options);
  for (const serve::WorkloadShare& entry : mix) {
    if (!registry.Contains(entry.workload)) {
      registry.RegisterBuiltin(entry.workload);
    }
  }

  serve::PlanOptions plan_options;
  plan_options.qps = args.serve.qps;
  plan_options.p99_slo_s = args.p99_ms * 1e-3;
  plan_options.device = args.budget;
  plan_options.devices = args.devices;
  plan_options.nodes = args.nodes;
  plan_options.max_replicas_per_workload = args.max_replicas;
  plan_options.max_batch = args.serve.max_batch;
  plan_options.max_wait_s = args.serve.max_wait_s;
  plan_options.scenario = args.serve.scenario;
  plan_options.dse = args.dse;
  plan_options.dictionary_bytes = options.dictionary_bytes;

  const serve::PoolPlan plan = serve::PlanCapacity(registry, mix, plan_options);
  PrintPlan(plan);

  if (!args.plan_out.empty()) {
    WriteFile(args.plan_out, plan.ToJson().Dump(2) + "\n");
    std::printf("\nPoolPlan written to %s (execute with `nsflow serve --plan "
                "%s`)\n",
                args.plan_out.c_str(), args.plan_out.c_str());
  }

  // Validation needs every mix workload placed — a group left at zero
  // replicas (no frontier design fit the budget device) has no replica
  // able to serve it and the pool cannot be built.
  bool every_group_placed = !plan.groups.empty();
  for (const serve::GroupPlan& group : plan.groups) {
    every_group_placed = every_group_placed && group.replicas > 0;
  }
  if (args.validate && !every_group_placed) {
    std::printf("\nSkipping --validate: not every workload could be placed "
                "(%s)\n",
                plan.note.c_str());
  }
  if (args.validate && every_group_placed) {
    serve::ServeOptions serve_options = ValidationOptions(args, plan);
    std::printf("\nValidation run: %s\n\n",
                TrafficLine(serve_options).c_str());
    const serve::ServeReport report =
        serve::RunSyntheticServe(registry, plan.Replicas(), mix,
                                 serve_options);
    std::printf("%s\n", serve::ServeStats::ToTable(report.summary).c_str());
    std::printf("%s\n",
                serve::PlanValidationTable(plan, report.summary).c_str());
  }
  return plan.feasible ? 0 : 3;
}

/// The elastic-run epilogue: delta counts, replica-seconds vs the static
/// pool the run started from, and the decision log (docs/AUTOSCALING.md).
void PrintAutoscaleSummary(const serve::ServeReport& report,
                           int initial_replicas) {
  const serve::PoolDeltaCounts counts = serve::CountDeltas(report.deltas);
  std::printf(
      "\nAutoscaler: %d delta(s) — %d add, %d retire, %d refit, %d "
      "batch-cap\n",
      counts.total(), counts.adds, counts.retires, counts.refits,
      counts.batch_caps);
  const double static_rs =
      static_cast<double>(initial_replicas) * report.summary.horizon_s;
  std::printf(
      "Replica-seconds: %.1f elastic vs %.1f static-equivalent (%.0f%%)\n",
      report.replica_seconds, static_rs,
      static_rs > 0.0 ? 100.0 * report.replica_seconds / static_rs : 0.0);
  // The decision log goes through the structured logger with a stdout sink
  // (common/logging.h): the CLI keeps its exact historic format while the
  // records stay level-filterable and capturable like every other emission.
  const LogLevel level = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  LogSink previous = SetLogSink([](const LogRecord& record) {
    std::printf("  %s\n", record.message.c_str());
  });
  for (const serve::PoolDelta& delta : report.deltas) {
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "t=%7.3fs", delta.t_s);
    NSF_LOG(kInfo) << stamp << "  " << delta.reason;
  }
  SetLogSink(std::move(previous));
  SetLogLevel(level);
}

/// Write the run's recorded trace/metrics to the --trace-out/--metrics-out
/// paths (docs/OBSERVABILITY.md). A no-op when tracing was off.
void ExportObservability(const CliArgs& args,
                         const serve::ServeReport& report) {
  if (report.obs == nullptr) {
    return;
  }
  if (!args.trace_out.empty()) {
    const bool binary =
        args.trace_out.size() >= 4 &&
        args.trace_out.compare(args.trace_out.size() - 4, 4, ".bin") == 0;
    if (binary) {
      WriteFile(args.trace_out, report.obs->BinaryTrace());
      std::printf("Trace written to %s (compact binary, NSFT v1)\n",
                  args.trace_out.c_str());
    } else {
      WriteFile(args.trace_out, report.obs->ChromeTraceJson() + "\n");
      std::printf(
          "Trace written to %s (Chrome trace_event JSON — load in Perfetto "
          "or chrome://tracing)\n",
          args.trace_out.c_str());
    }
  }
  if (!args.metrics_out.empty()) {
    WriteFile(args.metrics_out, report.obs->MetricsJson() + "\n");
    std::printf("Metrics timeline written to %s\n", args.metrics_out.c_str());
  }
  if (report.obs->recorder.dropped() > 0) {
    std::printf("Trace ring dropped %lld oldest record(s) (raise the ring "
                "capacity for full coverage)\n",
                static_cast<long long>(report.obs->recorder.dropped()));
  }
}

/// Resolve the --tiers text ("mlp=critical,resnet18=batch") against the
/// run's workload names into a per-WorkloadId tier vector. Unlisted
/// workloads stay `standard`; empty text means no tier overrides at all.
std::vector<serve::SlaTier> ResolveTiers(const CliArgs& args,
                                         const std::vector<std::string>&
                                             names) {
  if (args.tiers.empty()) {
    return {};
  }
  if (!args.serve.admission.enabled()) {
    throw Error(
        "--tiers needs an admission frontend: add --admission "
        "(docs/ADMISSION.md)");
  }
  std::vector<serve::SlaTier> tiers(names.size(), serve::SlaTier::kStandard);
  const std::string& text = args.tiers;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(',', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string entry = text.substr(start, end - start);
    const std::size_t eq = entry.find('=');
    if (entry.empty() || eq == 0 || eq == std::string::npos ||
        eq + 1 >= entry.size()) {
      throw Error("bad --tiers entry '" + entry +
                  "' (expected name=tier, e.g. mlp=critical)");
    }
    const std::string name = entry.substr(0, eq);
    const serve::SlaTier tier = serve::TierFromName(entry.substr(eq + 1));
    const auto it = std::find(names.begin(), names.end(), name);
    if (it == names.end()) {
      std::string served;
      for (const std::string& n : names) {
        served += (served.empty() ? "" : ", ") + n;
      }
      throw Error("--tiers names unknown workload '" + name +
                  "' (this run serves: " + served + ")");
    }
    tiers[static_cast<std::size_t>(it - names.begin())] = tier;
    start = end + 1;
  }
  return tiers;
}

/// Admission epilogue: the per-tenant accounting table, plus the run's exit
/// code — 4 when the critical tier shed or expired anything, 5 when only
/// standard did, 0 otherwise (batch-only shedding is the designed overload
/// response, not a failure). A report without admission rows returns 0 and
/// prints nothing.
int PrintAdmissionSummary(const CliArgs& args,
                          const serve::ServeReport& report) {
  if (report.admission.empty()) {
    return 0;
  }
  TablePrinter table({"tenant", "tier", "offered", "admitted", "shed",
                      "expired", "retried"});
  for (const serve::AdmissionTenantSummary& row : report.admission) {
    table.AddRow({row.tenant, serve::TierName(row.tier),
                  std::to_string(row.offered), std::to_string(row.admitted),
                  std::to_string(row.shed()), std::to_string(row.expired),
                  std::to_string(row.retried)});
  }
  std::printf("\nAdmission (%s):\n%s",
              args.serve.admission.ToString().c_str(),
              table.ToString().c_str());
  if (report.expired_dispatched > 0) {
    // The pre-dispatch sweep should make this unreachable; surface loudly
    // if the invariant ever breaks rather than burying it in a trace.
    std::printf("WARNING: %lld expired request(s) were dispatched\n",
                static_cast<long long>(report.expired_dispatched));
  }
  return serve::AdmissionExitCode(report.admission);
}

/// Execute a PoolPlan emitted by `nsflow plan --out`: rebuild its designs
/// (deterministic DSE at the recorded budgets), run the planned pool, and
/// print measured latency next to the plan's predictions.
int RunServePlan(const CliArgs& args) {
  if (!args.trace_path.empty()) {
    throw Error(
        "serve --plan takes its workloads from the plan (serialized plans "
        "cover built-in workloads; plan trace workloads with `nsflow plan "
        "--validate` in-process)");
  }
  if (!args.mix.empty() || args.heterogeneous || args.partition ||
      args.replicas_set) {
    throw Error(
        "serve --plan derives the pool and mix from the plan — drop --mix/"
        "--heterogeneous/--partition/--replicas");
  }
  if (args.dse_set) {
    throw Error(
        "serve --plan rebuilds designs from the plan's recorded DSE options "
        "— drop --max-pes/--clock-mhz/--no-phase2 (re-plan with them "
        "instead)");
  }
  const Json plan_json = Json::Parse(ReadFile(args.plan_path));
  CompileOptions options;
  options.dse = args.dse;
  serve::WorkloadRegistry registry(options);
  const serve::PoolPlan plan = serve::LoadPlan(plan_json, registry);
  NSF_CHECK_MSG(!plan.groups.empty(), "plan has no workload groups");
  for (const serve::GroupPlan& group : plan.groups) {
    NSF_CHECK_MSG(group.replicas > 0,
                  "plan leaves workload '" + group.workload +
                      "' without a replica (was it feasible?)");
  }

  serve::ServeOptions serve_options = ValidationOptions(args, plan);
  {
    std::vector<std::string> names;
    for (serve::WorkloadId w = 0; w < registry.size(); ++w) {
      names.push_back(registry.NameOf(w));
    }
    serve_options.tiers = ResolveTiers(args, names);
  }
  if (serve_options.autoscale) {
    // The plan carries the replan target: its SLO, budget device, and the
    // recorded DSE knobs (so the frontier rebuild is bit-identical to the
    // designs the plan deployed). The control knobs come from the flags.
    serve_options.autoscale_opts.p99_slo_s = plan.p99_slo_s;
    serve_options.autoscale_opts.device = plan.device_name;
    serve_options.autoscale_opts.devices = plan.devices;
    serve_options.autoscale_opts.dse.clock_hz = plan.dse_clock_hz;
    serve_options.autoscale_opts.dse.enable_phase2 = plan.dse_enable_phase2;
    serve_options.autoscale_opts.dse.max_pes = plan.dse_max_pes;
    serve_options.autoscale_opts.dictionary_bytes = plan.dictionary_bytes;
  }
  std::printf(
      "NSFlow-Serve — executing PoolPlan %s: %d replica(s) across %zu "
      "workload(s)%s\n",
      args.plan_path.c_str(), plan.TotalReplicas(), plan.groups.size(),
      serve_options.autoscale ? ", elastic (--autoscale)" : "");
  if (serve_options.cluster.enabled()) {
    std::printf("Cluster: %s\n", serve_options.cluster.ToString().c_str());
  }
  std::printf("Traffic: %s\n\n", TrafficLine(serve_options).c_str());

  const serve::ServeReport report =
      serve::RunSyntheticServe(registry, plan.Replicas(), plan.mix,
                               serve_options);
  std::printf("%s\n", serve::ServeStats::ToTable(report.summary).c_str());
  std::printf("%s\n",
              serve::PlanValidationTable(plan, report.summary).c_str());
  if (serve_options.autoscale) {
    PrintAutoscaleSummary(report, plan.TotalReplicas());
  }
  const int admission_code = PrintAdmissionSummary(args, report);
  ExportObservability(args, report);
  return admission_code;
}

/// Multi-tenant serve: compile every mix workload through the registry,
/// deploy one shared (or partitioned) pool over all of them, and print the
/// per-workload breakdown next to the aggregate table.
int RunServeMix(const CliArgs& args) {
  const std::vector<serve::WorkloadShare> mix = serve::ParseMix(args.mix);

  CompileOptions options;
  options.dse = args.dse;
  serve::WorkloadRegistry registry(options);
  // A trace file on the command line registers under its workload name and
  // can then be referenced from the mix like any built-in.
  if (!args.trace_path.empty()) {
    const OperatorGraph traced = ParseJsonTrace(ReadFile(args.trace_path));
    registry.Register(traced.workload_name(), OperatorGraph(traced));
  }
  for (const serve::WorkloadShare& entry : mix) {
    if (!registry.Contains(entry.workload)) {
      registry.RegisterBuiltin(entry.workload);
    }
  }

  if (args.partition && args.replicas < registry.size()) {
    throw Error("--partition needs at least one replica per workload (" +
                std::to_string(registry.size()) + " workloads)");
  }
  if (args.serve.autoscale && !args.partition) {
    throw Error(
        "--autoscale needs a partitioned pool: add --partition (or execute "
        "a plan: nsflow serve --plan plan.json --autoscale)");
  }

  // Replica r carries the DSE winner of workload r % W — with --partition
  // it serves only that workload, otherwise every replica serves the full
  // set with memory provisioned for the worst tenant (the design variety
  // then acts as a heterogeneous pool).
  const std::vector<serve::ReplicaSpec> replicas =
      registry.ReplicaSpecs(args.replicas, args.partition);

  std::printf(
      "NSFlow-Serve — %d workload(s) [", registry.size());
  for (serve::WorkloadId w = 0; w < registry.size(); ++w) {
    std::printf("%s%s", w == 0 ? "" : ", ", registry.NameOf(w).c_str());
  }
  std::printf(
      "], %d replica(s)%s, max batch %lld, max wait %.2f ms\n",
      args.replicas, args.partition ? " (partitioned)" : " (shared)",
      static_cast<long long>(args.serve.max_batch),
      args.serve.max_wait_s * 1e3);
  std::printf("Arrival trace: %s, mix %s\n", TrafficLine(args.serve).c_str(),
              args.mix.c_str());
  if (args.serve.cluster.enabled()) {
    std::printf("Cluster: %s\n", args.serve.cluster.ToString().c_str());
  }
  std::printf("Compile cache: %lld compile(s), %lld hit(s)\n\n",
              static_cast<long long>(registry.cache().misses()),
              static_cast<long long>(registry.cache().hits()));

  serve::ServeOptions serve_options = args.serve;
  {
    std::vector<std::string> names;
    for (serve::WorkloadId w = 0; w < registry.size(); ++w) {
      names.push_back(registry.NameOf(w));
    }
    serve_options.tiers = ResolveTiers(args, names);
  }
  if (serve_options.autoscale) {
    // The frontier must model the pool actually deployed: carry the
    // compile-time DSE knobs into the replan target (the SLO/budget stay
    // at the AutoscaleOptions defaults in mix mode — serve a plan to
    // carry those).
    serve_options.autoscale_opts.dse = args.dse;
    serve_options.autoscale_opts.dictionary_bytes = options.dictionary_bytes;
  }
  const serve::ServeReport report =
      serve::RunSyntheticServe(registry, replicas, mix, serve_options);
  std::printf("%s\n", serve::ServeStats::ToTable(report.summary).c_str());
  if (serve_options.autoscale) {
    PrintAutoscaleSummary(report, args.replicas);
  }
  const int admission_code = PrintAdmissionSummary(args, report);
  ExportObservability(args, report);
  for (serve::WorkloadId w = 0; w < registry.size(); ++w) {
    const double single =
        report.single_request_by_workload[static_cast<std::size_t>(w)];
    std::printf(
        "Single-request baseline [%s]: %.3f ms -> %.1f rps per unbatched "
        "replica\n",
        registry.NameOf(w).c_str(), single * 1e3,
        single > 0.0 ? 1.0 / single : 0.0);
  }
  return admission_code;
}

int RunServe(const CliArgs& args) {
  if (args.replicas < 1) {
    throw Error("--replicas must be at least 1");
  }
  if (!args.plan_path.empty()) {
    return RunServePlan(args);
  }
  if (!args.mix.empty()) {
    if (args.heterogeneous) {
      throw Error(
          "--heterogeneous is not supported with --mix (a mixed pool is "
          "already heterogeneous: replica r carries workload r % W's "
          "design)");
    }
    return RunServeMix(args);
  }
  if (args.serve.autoscale) {
    throw Error(
        "--autoscale needs the multi-tenant engine: serve a plan (--plan "
        "plan.json) or a mix with --mix ... --partition "
        "(docs/AUTOSCALING.md)");
  }
  OperatorGraph graph = args.trace_path.empty()
                            ? workloads::MakeNvsa()
                            : ParseJsonTrace(ReadFile(args.trace_path));
  const std::string workload_name = graph.workload_name();
  CompileOptions options;
  options.dse = args.dse;
  const Compiler compiler(options);
  const CompiledDesign compiled = compiler.Compile(std::move(graph));

  // Homogeneous pool: N copies of the DSE winner. Heterogeneous pool: walk
  // the (PEs, latency) pareto frontier so big low-latency replicas coexist
  // with small area-efficient ones.
  std::vector<AcceleratorDesign> designs;
  if (args.heterogeneous) {
    // Mirror Compiler::Compile's option adjustment so the frontier designs
    // are provisioned for the same resident dictionaries as the compiled
    // design.
    DseOptions pareto_options = args.dse;
    pareto_options.dictionary_bytes = options.dictionary_bytes;
    const auto frontier =
        ParetoDesigns(*compiled.dataflow, pareto_options, args.replicas);
    for (int r = 0; r < args.replicas; ++r) {
      designs.push_back(
          frontier[static_cast<std::size_t>(r) % frontier.size()].design);
    }
  } else {
    designs.assign(static_cast<std::size_t>(args.replicas),
                   compiled.design());
  }

  std::printf(
      "NSFlow-Serve — workload '%s', %d replica(s)%s, max batch %lld, "
      "max wait %.2f ms\n",
      workload_name.c_str(), args.replicas,
      args.heterogeneous ? " (heterogeneous pareto pool)" : "",
      static_cast<long long>(args.serve.max_batch),
      args.serve.max_wait_s * 1e3);
  std::printf("Arrival trace: %s\n\n", TrafficLine(args.serve).c_str());

  serve::ServeOptions serve_options = args.serve;
  serve_options.tiers = ResolveTiers(args, {workload_name});
  const serve::ServeReport report =
      serve::RunSyntheticServe(*compiled.dataflow, designs, serve_options);
  std::printf("%s\n", serve::ServeStats::ToTable(report.summary).c_str());
  std::printf(
      "Single-request baseline: %.3f ms -> %.1f rps per unbatched replica\n",
      report.single_request_s * 1e3,
      report.single_request_s > 0.0 ? 1.0 / report.single_request_s : 0.0);
  const int admission_code = PrintAdmissionSummary(args, report);
  ExportObservability(args, report);
  return admission_code;
}

int Main(int argc, char** argv) {
  const CliArgs args = Parse(argc, argv);
  if (args.help) {
    if (args.command.empty()) {
      PrintGlobalHelp();
    } else {
      PrintCommandHelp(CommandByName(args.command));
    }
    return 0;
  }
  if (args.command == "compile") {
    return RunCompile(args, ParseJsonTrace(ReadFile(args.trace_path)));
  }
  if (args.command == "estimate") {
    return RunEstimate(args);
  }
  if (args.command == "serve") {
    return RunServe(args);
  }
  if (args.command == "plan") {
    return RunPlanCommand(args);
  }
  if (args.command == "demo") {
    CliArgs demo_args = args;
    demo_args.out_dir = ".";
    return RunCompile(demo_args, workloads::MakeNvsa());
  }
  throw Error("unknown command: " + args.command);
}

}  // namespace
}  // namespace nsflow

int main(int argc, char** argv) {
  try {
    return nsflow::Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nsflow: %s\n", e.what());
    return 1;
  }
}
