// NSFlow-Serve engine — the end-to-end serving loop.
//
//   Poisson arrival generator (producer thread, virtual timestamps,
//   per-workload mix sampling)
//     └─> RequestQueue (thread-safe FIFO handoff)
//           └─> BatchFormer / MultiBatchFormer (max-batch / max-wait
//               coalescing, one lane per workload — batches never mix
//               workloads)
//                 └─> ServerPool (N accelerator replicas, per-replica
//                     workload sets, worker threads)
//                       └─> ServeStats (p50/p95/p99, throughput, util,
//                           per-workload breakdown)
//
// The engine turns the paper's one-shot `RunWorkload` accelerator into a
// throughput-oriented service: an open-loop synthetic trace with exponential
// inter-arrival times drives the pipeline for `duration_s` virtual seconds,
// and the report captures tail latency and saturation behavior. A
// multi-tenant run draws each arrival's workload from the requested QPS mix
// with the same RNG stream as the inter-arrival times, so with a fixed seed
// the whole run — single- or multi-workload — is bit-reproducible (see
// request.h on virtual time).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/dataflow_graph.h"
#include "model/accel_model.h"
#include "serve/request.h"
#include "serve/scenario.h"
#include "serve/server_pool.h"
#include "serve/serve_stats.h"
#include "serve/workload_registry.h"

namespace nsflow::serve {

struct ServeOptions {
  double qps = 100.0;          // Open-loop offered load (Poisson arrivals).
  double duration_s = 1.0;     // Virtual length of the arrival trace.
  std::int64_t max_batch = 8;  // BatchFormer size cap.
  double max_wait_s = 5e-3;    // BatchFormer wait cap.
  std::uint64_t seed = 42;     // Arrival-process RNG seed.
  int worker_threads = 0;      // 0 = hardware concurrency.
  /// Arrival pattern (scenario.h). The default stationary Poisson
  /// reproduces the pre-scenario arrival stream bit-for-bit.
  ScenarioSpec scenario;
  /// Per-workload batch-size caps, indexed by WorkloadId (empty = every
  /// lane uses `max_batch`; entries of 0 also fall back to it). The
  /// capacity planner sets these so a latency-critical tenant can run
  /// unbatched (cap 1 — batches close at their own arrival, no forming
  /// wait) next to a throughput tenant that keeps coalescing.
  std::vector<std::int64_t> per_workload_max_batch;
};

/// One entry of a multi-tenant QPS mix: `share` of the total offered load
/// goes to the named registry workload. Shares are normalized, so
/// {mlp=0.6, nvsa=0.2} and {mlp=3, nvsa=1} describe the same mix.
struct WorkloadShare {
  std::string workload;
  double share = 0.0;
};

/// Parse a CLI mix spec "mlp=0.6,resnet18=0.3,nvsa=0.1" into shares.
std::vector<WorkloadShare> ParseMix(const std::string& spec);

struct ServeReport {
  StatsSummary summary;
  std::vector<DispatchRecord> dispatches;
  std::int64_t generated_requests = 0;
  /// Single-request latency of workload 0 on a capable replica — the
  /// no-batching baseline the throughput numbers are judged against.
  double single_request_s = 0.0;
  /// Same baseline per registered workload (one entry in single-workload
  /// runs).
  std::vector<double> single_request_by_workload;
};

/// Generate the arrival trace for `options` — `options.scenario` picks the
/// pattern (stationary Poisson by default; see scenario.h). Exposed for
/// tests and for replaying the same trace against different pools. The
/// multi-workload overload additionally samples each arrival's workload id
/// from `shares` (normalized weights indexed by workload id) with the same
/// RNG stream; `workload_names` (indexed by id) resolves the labels of a
/// replayed `trace:file=...` scenario — pass {} when not serving named
/// workloads (labels are then ignored, everything maps to workload 0).
std::vector<Request> SyntheticArrivals(const ServeOptions& options);
std::vector<Request> SyntheticArrivals(const ServeOptions& options,
                                       const std::vector<double>& shares,
                                       const std::vector<std::string>&
                                           workload_names = {});

/// The offered load a run actually carried: `options.qps` for rate-driven
/// scenarios, the renewal rate for closed loops (which ignore qps), and
/// the replayed count over the horizon for traces. This is what the
/// summary's `offered_qps` records and the CLI headers print.
double EffectiveOfferedRps(const ServeOptions& options,
                           std::int64_t generated_requests);

/// Run the full pipeline: synthetic arrivals through queue, former, and
/// pool. `designs` defines the pool (one replica per entry; `dfg` must
/// outlive the call).
ServeReport RunSyntheticServe(const DataflowGraph& dfg,
                              const std::vector<AcceleratorDesign>& designs,
                              const ServeOptions& options);

/// Multi-tenant pipeline: every arrival draws its workload from `mix`
/// (names resolved through `registry`, which must outlive the call), the
/// former keeps one lane per workload, and each batch routes to an
/// earliest-available replica deployed for its workload.
ServeReport RunSyntheticServe(const WorkloadRegistry& registry,
                              const std::vector<ReplicaSpec>& replicas,
                              const std::vector<WorkloadShare>& mix,
                              const ServeOptions& options);

}  // namespace nsflow::serve
