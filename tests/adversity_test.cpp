// Adversity-engine tests (serve/adversity.h): spec round-trips, the
// resolved event timeline, per-pattern bit-determinism under a fixed seed,
// the fault x scenario composition matrix, re-enqueue safety on replica
// failure (no lost or duplicated requests, batch composition preserved),
// straggler routing, churn-driven scale-to-floor + re-grow, and the
// headline hardening gate — a single replica loss at the diurnal peak with
// the tuned autoscaler still meets the 50 ms p99 SLO at <= 15% extra
// replica-seconds versus the fault-free run, bit-identically across two
// same-seed runs (docs/SCENARIOS.md "Adversity").
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/error.h"
#include "obs/observability.h"
#include "serve/adversity.h"
#include "serve/capacity_planner.h"
#include "serve/engine.h"
#include "serve/scenario.h"
#include "serve/server_pool.h"
#include "serve/workload_registry.h"

namespace nsflow::serve {
namespace {

std::vector<std::string> AllAdversitySpecs() {
  return {"none",
          "replica-fail",
          "replica-fail:at=0.5,down=0.25,replica=0,count=2,warmup=0.1",
          "straggler",
          "straggler:at=0.2,duration=1,factor=2.5,replica=1",
          "churn",
          "churn:at=0.3,down=0.4,workload=1",
          "flash",
          "flash:at=0.5,width=0.25,mult=4"};
}

// ------------------------------------------------------------ spec parsing

TEST(AdversityTest, SpecParsesAndRoundTrips) {
  for (const std::string& text : AllAdversitySpecs()) {
    const AdversitySpec spec = AdversitySpec::Parse(text);
    const AdversitySpec again = AdversitySpec::Parse(spec.ToString());
    EXPECT_TRUE(spec == again) << text << " -> " << spec.ToString();
  }
  EXPECT_FALSE(AdversitySpec::Parse("none").enabled());
  EXPECT_TRUE(AdversitySpec::Parse("flash").enabled());
  EXPECT_EQ(AdversitySpec::Parse("replica-fail:at=2").Name(), "replica-fail");
  // High-precision values survive the canonical print bit-exactly (the
  // spec string is recorded in bench artifacts).
  AdversitySpec spec;
  spec.kind = AdversityKind::kStraggler;
  spec.params["at"] = 1.0 / 3.0;
  spec.params["factor"] = 2.0000000001;
  const AdversitySpec again = AdversitySpec::Parse(spec.ToString());
  EXPECT_EQ(again.Param("at", 0.0), 1.0 / 3.0);
  EXPECT_EQ(again.Param("factor", 0.0), 2.0000000001);
}

// ------------------------------------------------------- event timelines

TEST(AdversityTest, TimelineResolvesDurationRelativeDefaults) {
  // replica-fail defaults: at = 0.25 x D, down = 0.25 x D, one target
  // resolved at fire time.
  const auto fail =
      BuildAdversityTimeline(AdversitySpec::Parse("replica-fail"), 8.0);
  ASSERT_EQ(fail.size(), 1u);
  EXPECT_EQ(fail[0].kind, AdversityEventKind::kReplicaFail);
  EXPECT_DOUBLE_EQ(fail[0].t_s, 2.0);
  EXPECT_DOUBLE_EQ(fail[0].until_s, 4.0);
  EXPECT_EQ(fail[0].replica, -1);

  // count fans out; an explicit base target fans to consecutive ids.
  const auto pair = BuildAdversityTimeline(
      AdversitySpec::Parse("replica-fail:at=1,down=2,replica=3,count=2"), 8.0);
  ASSERT_EQ(pair.size(), 2u);
  EXPECT_EQ(pair[0].replica, 3);
  EXPECT_EQ(pair[1].replica, 4);

  // churn emits its paired rejoin as a timeline event.
  const auto churn = BuildAdversityTimeline(
      AdversitySpec::Parse("churn:at=1,down=2,workload=1"), 8.0);
  ASSERT_EQ(churn.size(), 2u);
  EXPECT_EQ(churn[0].kind, AdversityEventKind::kChurnLeave);
  EXPECT_EQ(churn[1].kind, AdversityEventKind::kChurnRejoin);
  EXPECT_DOUBLE_EQ(churn[1].t_s, 3.0);
  EXPECT_EQ(churn[0].workload, 1);

  // Start events at or past the horizon are dropped (nothing can fire).
  EXPECT_TRUE(
      BuildAdversityTimeline(AdversitySpec::Parse("replica-fail:at=10"), 8.0)
          .empty());
  // The timeline itself is deterministic: no random draws.
  const auto a = BuildAdversityTimeline(AdversitySpec::Parse("flash"), 16.0);
  const auto b = BuildAdversityTimeline(AdversitySpec::Parse("flash"), 16.0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t_s, b[i].t_s);
    EXPECT_EQ(static_cast<int>(a[i].kind), static_cast<int>(b[i].kind));
  }
}

// ------------------------------------------------- arrival-side patterns

TEST(AdversityTest, ChurnMasksOnlyTheTenantWindow) {
  ServeOptions options;
  options.qps = 2000.0;
  options.duration_s = 2.0;
  options.seed = 7;
  const std::vector<double> shares = {0.5, 0.5};
  const auto base = SyntheticArrivals(options, shares);
  auto churned = base;
  const AdversitySpec spec =
      AdversitySpec::Parse("churn:at=0.5,down=1,workload=1");
  ApplyAdversityArrivals(spec, &churned, options.qps, options.duration_s,
                         options.seed, shares);
  // Nothing of workload 1 inside [0.5, 1.5); everything else survives
  // bit-exactly in order.
  std::size_t kept = 0;
  for (const Request& r : base) {
    if (r.workload == 1 && r.arrival_s >= 0.5 && r.arrival_s < 1.5) {
      continue;
    }
    ASSERT_LT(kept, churned.size());
    EXPECT_EQ(churned[kept].arrival_s, r.arrival_s);
    EXPECT_EQ(churned[kept].workload, r.workload);
    ++kept;
  }
  EXPECT_EQ(kept, churned.size());
  EXPECT_LT(churned.size(), base.size());
  // Ids re-densified to the arrival index (engine invariant).
  for (std::size_t i = 0; i < churned.size(); ++i) {
    EXPECT_EQ(churned[i].id, static_cast<std::int64_t>(i));
  }
}

TEST(AdversityTest, FlashSuperimposesSeededExtraArrivals) {
  ServeOptions options;
  options.qps = 2000.0;
  options.duration_s = 2.0;
  options.seed = 7;
  const std::vector<double> shares = {0.5, 0.5};
  const auto base = SyntheticArrivals(options, shares);
  const AdversitySpec spec =
      AdversitySpec::Parse("flash:at=0.5,width=0.5,mult=3");
  auto a = base;
  ApplyAdversityArrivals(spec, &a, options.qps, options.duration_s,
                         options.seed, shares);
  auto b = base;
  ApplyAdversityArrivals(spec, &b, options.qps, options.duration_s,
                         options.seed, shares);
  // Same seed: bit-identical superimposed trace.
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].arrival_s, b[i].arrival_s);
    ASSERT_EQ(a[i].workload, b[i].workload);
  }
  // A different seed draws a different flash stream over the same base.
  auto c = base;
  ApplyAdversityArrivals(spec, &c, options.qps, options.duration_s,
                         options.seed + 1, shares);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = c[i].arrival_s != a[i].arrival_s;
  }
  EXPECT_TRUE(differs) << "different seeds gave the same flash stream";
  // The window carries ~mult x the base mass; the base trace is a
  // subsequence (every original stamp survives).
  const auto in_window = [](const std::vector<Request>& trace) {
    double n = 0.0;
    for (const Request& r : trace) {
      n += (r.arrival_s >= 0.5 && r.arrival_s < 1.0) ? 1.0 : 0.0;
    }
    return n;
  };
  const double expected = in_window(base) * 3.0;
  EXPECT_NEAR(in_window(a), expected, 5.0 * std::sqrt(expected));
  std::size_t next = 0;
  for (const Request& r : base) {
    while (next < a.size() && a[next].arrival_s != r.arrival_s) {
      ++next;
    }
    ASSERT_LT(next, a.size()) << "base arrival lost in the merge";
    ++next;
  }
}

// ------------------------------------- fault x scenario composition matrix

TEST(AdversityTest, EveryPatternComposesWithEveryScenarioDeterministically) {
  // Each fault pattern x three traffic scenarios, each run twice: the run
  // completes every generated request and is bit-identical under the fixed
  // seed (the determinism contract extends to composed runs).
  WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  const std::vector<ReplicaSpec> replicas = registry.ReplicaSpecs(2, false);
  const std::vector<WorkloadShare> mix = {{"mlp", 1.0}};
  for (const std::string& adversity :
       {std::string("replica-fail:at=0.1,down=0.2"),
        std::string("straggler:factor=3"), std::string("churn:workload=0"),
        std::string("flash:mult=3")}) {
    for (const std::string& scenario :
         {std::string("poisson"), std::string("diurnal:depth=0.8"),
          std::string("bursty")}) {
      ServeOptions options;
      options.qps = 400.0;
      options.duration_s = 0.5;
      options.seed = 11;
      options.scenario = ScenarioSpec::Parse(scenario);
      options.adversity = AdversitySpec::Parse(adversity);
      const ServeReport a =
          RunSyntheticServe(registry, replicas, mix, options);
      const ServeReport b =
          RunSyntheticServe(registry, replicas, mix, options);
      const std::string label = adversity + " x " + scenario;
      ASSERT_GT(a.summary.completed, 0) << label;
      EXPECT_EQ(a.summary.completed, a.generated_requests) << label;
      ASSERT_EQ(a.generated_requests, b.generated_requests) << label;
      ASSERT_EQ(a.summary.completed, b.summary.completed) << label;
      ASSERT_EQ(a.summary.p99_ms, b.summary.p99_ms) << label;
      ASSERT_EQ(a.summary.throughput_rps, b.summary.throughput_rps) << label;
      ASSERT_EQ(a.replica_seconds, b.replica_seconds) << label;
      ASSERT_EQ(a.dispatches.size(), b.dispatches.size()) << label;
    }
  }
}

// --------------------------------------------------- re-enqueue safety

TEST(AdversityTest, ReplicaFailureReEnqueuesInFlightWorkSafely) {
  // Two resnet18 replicas near saturation; replica 0 goes dark mid-run.
  // Every in-flight batch it held is re-enqueued: no request is lost or
  // served twice, batches keep their composition (consecutive arrival ids
  // — the per-workload FIFO), and nothing starts on the dark replica.
  WorkloadRegistry registry;
  registry.RegisterBuiltin("resnet18");
  const std::vector<ReplicaSpec> replicas = registry.ReplicaSpecs(2, false);
  const std::vector<WorkloadShare> mix = {{"resnet18", 1.0}};
  const double fail_s = 1.0;
  const double recover_s = 1.5;
  ServeOptions options;
  options.qps = 1600.0;
  options.duration_s = 2.0;
  options.seed = 42;
  options.adversity =
      AdversitySpec::Parse("replica-fail:at=1,down=0.5,replica=0");
  options.trace.enabled = true;
  const ServeReport report =
      RunSyntheticServe(registry, replicas, mix, options);
  EXPECT_EQ(report.summary.completed, report.generated_requests);

  // The fault is on the pool timeline with the re-enqueue tally.
  bool failed_event = false;
  for (const PoolEvent& event : report.summary.timeline) {
    if (event.kind == PoolEventKind::kFault &&
        event.event.find("replica 0 failed") != std::string::npos) {
      failed_event = true;
      EXPECT_NE(event.event.find("re-enqueued"), std::string::npos)
          << event.event;
    }
  }
  EXPECT_TRUE(failed_event);

  ASSERT_NE(report.obs, nullptr);
  const obs::TraceData trace = report.obs->recorder.Drain();
  ASSERT_EQ(trace.requests.size(),
            static_cast<std::size_t>(report.generated_requests));

  // Every generated request completes exactly once.
  std::set<std::int64_t> ids;
  for (const obs::RequestSpan& span : trace.requests) {
    EXPECT_TRUE(ids.insert(span.request_id).second)
        << "request " << span.request_id << " served twice";
    EXPECT_GE(span.complete_s, span.start_s);
    // Nothing executes on the dark replica inside its outage.
    if (span.replica == 0) {
      EXPECT_FALSE(span.start_s >= fail_s && span.start_s < recover_s)
          << "request " << span.request_id << " started on the dark replica";
    }
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(report.generated_requests));
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), report.generated_requests - 1);

  // Batch composition survives the re-enqueue: one workload means each
  // batch holds consecutive arrival ids (the forming lane is FIFO and a
  // re-dispatched batch moves whole).
  std::map<std::int64_t, std::vector<std::int64_t>> by_batch;
  for (const obs::RequestSpan& span : trace.requests) {
    by_batch[span.batch_index].push_back(span.request_id);
  }
  bool re_enqueued_batch = false;
  for (auto& [batch_index, members] : by_batch) {
    std::sort(members.begin(), members.end());
    for (std::size_t i = 1; i < members.size(); ++i) {
      EXPECT_EQ(members[i], members[i - 1] + 1)
          << "batch " << batch_index << " lost its FIFO composition";
    }
  }
  // At least one batch was actually re-enqueued — its formed stamp is the
  // fail instant (re-dispatch re-forms aborted batches at the failure) —
  // and no batch executes on the dark replica inside its outage.
  for (const obs::BatchSpan& span : trace.batches) {
    re_enqueued_batch =
        re_enqueued_batch || (span.formed_s == fail_s && span.replica != 0);
    if (span.replica == 0) {
      EXPECT_FALSE(span.start_s >= fail_s && span.start_s < recover_s)
          << "batch " << span.batch_index << " started on the dark replica";
    }
  }
  EXPECT_TRUE(re_enqueued_batch);

  // The whole traced run is byte-reproducible under the same seed.
  const ServeReport again =
      RunSyntheticServe(registry, replicas, mix, options);
  ASSERT_NE(again.obs, nullptr);
  EXPECT_EQ(report.obs->ChromeTraceJson(), again.obs->ChromeTraceJson());
}

TEST(AdversityTest, FailureThatWouldOrphanAWorkloadIsSkipped) {
  // One replica serving the only workload: injecting its failure would
  // orphan the tenant, so the engine skips it and surfaces the skip as a
  // pool event instead of crashing or losing requests.
  WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  const std::vector<ReplicaSpec> replicas = registry.ReplicaSpecs(1, false);
  const std::vector<WorkloadShare> mix = {{"mlp", 1.0}};
  ServeOptions options;
  options.qps = 200.0;
  options.duration_s = 1.0;
  options.seed = 5;
  options.adversity = AdversitySpec::Parse("replica-fail:at=0.25,down=0.25");
  const ServeReport report =
      RunSyntheticServe(registry, replicas, mix, options);
  EXPECT_EQ(report.summary.completed, report.generated_requests);
  bool skipped = false;
  for (const PoolEvent& event : report.summary.timeline) {
    skipped = skipped || (event.kind == PoolEventKind::kFault &&
                          event.event.find("skipped") != std::string::npos);
  }
  EXPECT_TRUE(skipped);
}

// --------------------------------------------------- straggler routing

TEST(AdversityTest, PoolDerateMultipliesServiceInsideTheWindow) {
  WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  ServerPool pool(registry.ReplicaSpecs(2, false), registry.Dataflows(), 1);
  Batch batch;
  batch.workload = 0;
  batch.formed_s = 0.0;
  batch.requests = {Request{0, 0.0, 0}};
  const double clean = pool.Dispatch(batch, nullptr).complete_s;
  ASSERT_GT(clean, 0.0);

  pool.SetDerate(0, 2.0, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(pool.DerateAt(0, 1.5), 2.0);
  EXPECT_DOUBLE_EQ(pool.DerateAt(0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(pool.DerateAt(0, 2.0), 1.0);
  EXPECT_EQ(pool.Health(0, 1.5), ServerPool::ReplicaHealth::kDerated);
  EXPECT_EQ(pool.Health(0, 0.5), ServerPool::ReplicaHealth::kUp);

  // Inside the window the modeled service doubles; outside it is exact.
  batch.formed_s = 1.2;
  pool.ResetSchedule();
  const DispatchRecord derated = pool.Dispatch(batch, nullptr);
  EXPECT_EQ(derated.replica, 0);
  // complete - start loses a few ulps against the large start stamp.
  EXPECT_NEAR(derated.complete_s - derated.start_s, 2.0 * clean,
              1e-9 * clean);
  batch.formed_s = 3.0;
  pool.ResetSchedule();
  const DispatchRecord after = pool.Dispatch(batch, nullptr);
  EXPECT_NEAR(after.complete_s - after.start_s, clean, 1e-9 * clean);
}

TEST(AdversityTest, StragglerDerateShiftsDispatchShareAway) {
  // Two replicas near saturation; replica 0 runs at half clock for most of
  // the run. The eager earliest-free schedule routes around it on its own:
  // a 2x derate cuts its dispatch share from ~1/2 to ~1/3.
  WorkloadRegistry registry;
  registry.RegisterBuiltin("resnet18");
  const std::vector<ReplicaSpec> replicas = registry.ReplicaSpecs(2, false);
  const std::vector<WorkloadShare> mix = {{"resnet18", 1.0}};
  ServeOptions options;
  options.qps = 200.0;  // ~80% of the two-replica capacity: busy enough
                        // that dispatch is a free-time race, stable enough
                        // that starts track the derate window.
  options.duration_s = 4.0;
  options.seed = 42;

  const auto replica0_share = [](const ServeReport& report, double from,
                                 double to) {
    double on0 = 0.0;
    double total = 0.0;
    for (const DispatchRecord& record : report.dispatches) {
      if (record.start_s < from || record.start_s >= to) {
        continue;
      }
      total += 1.0;
      on0 += record.replica == 0 ? 1.0 : 0.0;
    }
    return total == 0.0 ? 0.0 : on0 / total;
  };

  const ServeReport healthy =
      RunSyntheticServe(registry, replicas, mix, options);
  options.adversity =
      AdversitySpec::Parse("straggler:at=0.5,duration=3,factor=2,replica=0");
  const ServeReport derated =
      RunSyntheticServe(registry, replicas, mix, options);
  EXPECT_EQ(derated.summary.completed, derated.generated_requests);

  const double healthy_share = replica0_share(healthy, 0.5, 3.5);
  const double derated_share = replica0_share(derated, 0.5, 3.5);
  EXPECT_GT(healthy_share, 0.45);
  EXPECT_LT(derated_share, 0.45);
  EXPECT_LT(derated_share, healthy_share - 0.05);
  // The derate window is on the pool timeline.
  bool derate_event = false;
  for (const PoolEvent& event : derated.summary.timeline) {
    derate_event = derate_event ||
                   (event.kind == PoolEventKind::kFault &&
                    event.event.find("derated") != std::string::npos);
  }
  EXPECT_TRUE(derate_event);
}

// ------------------------------------------------------- churn + refit

TEST(AdversityTest, ChurnDrivesScaleToFloorAndRegrow) {
  // The big tenant churns out mid-run: the autoscaler sheds its replicas
  // toward the floor, then re-grows (warm adds / refits) when it rejoins.
  const std::string scenario = "poisson";
  WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  registry.RegisterBuiltin("resnet18");
  const std::vector<WorkloadShare> mix = {{"mlp", 0.2}, {"resnet18", 0.8}};
  PlanOptions plan_options;
  plan_options.qps = 600.0;
  plan_options.p99_slo_s = 50e-3;
  plan_options.device = "u250";
  plan_options.devices = 128;
  plan_options.max_replicas_per_workload = 64;
  const PoolPlan plan = PlanCapacity(registry, mix, plan_options);
  ASSERT_TRUE(plan.feasible);

  ServeOptions options;
  options.qps = 600.0;
  options.duration_s = 16.0;
  options.seed = 42;
  options.max_batch = plan.max_batch;
  options.max_wait_s = plan.max_wait_s;
  options.per_workload_max_batch = plan.PerWorkloadMaxBatch();
  options.autoscale = true;
  options.autoscale_opts.p99_slo_s = plan.p99_slo_s;
  options.autoscale_opts.devices = plan.devices;
  options.autoscale_opts.max_replicas = 64;
  options.autoscale_opts.headroom = 0.10;
  options.autoscale_opts.up_band = 1.05;
  options.autoscale_opts.down_band = 0.85;
  options.autoscale_opts.cooldown_s = 0.5;
  options.adversity = AdversitySpec::Parse("churn:at=4,down=6,workload=1");

  const ServeReport report = RunSyntheticServe(registry, plan.Replicas(),
                                               mix, options);
  EXPECT_EQ(report.summary.completed, report.generated_requests);
  // Shrink inside the churn window, grow after the rejoin — both for the
  // churned tenant.
  bool shed_in_window = false;
  bool regrew_after = false;
  for (const PoolDelta& delta : report.deltas) {
    if (delta.workload != 1) {
      continue;
    }
    if (delta.kind == PoolDeltaKind::kRetireReplica && delta.t_s >= 4.0 &&
        delta.t_s < 10.0) {
      shed_in_window = true;
    }
    if ((delta.kind == PoolDeltaKind::kAddReplica ||
         delta.kind == PoolDeltaKind::kRefitReplica) &&
        delta.t_s >= 10.0) {
      regrew_after = true;
    }
  }
  EXPECT_TRUE(shed_in_window);
  EXPECT_TRUE(regrew_after);
  // The churn window itself is on the pool timeline.
  bool churn_event = false;
  for (const PoolEvent& event : report.summary.timeline) {
    churn_event = churn_event ||
                  (event.kind == PoolEventKind::kFault &&
                   event.event.find("churned out") != std::string::npos);
  }
  EXPECT_TRUE(churn_event);
}

// ------------------------------------------------------- headline gate

TEST(AdversityTest, SingleReplicaLossAtPeakHoldsSloWithinOverheadBudget) {
  // The hardening gate (bench_plan_scenarios publishes the same run):
  // diurnal traffic with the tuned autoscaler, the busiest replica lost at
  // the crest (replica-fail defaults: at = 0.25 x D = the diurnal peak).
  // The autoscaled pool must still hold the 50 ms p99 SLO while spending
  // at most 15% more replica-seconds than the fault-free run, and the
  // whole decision/fault sequence must be bit-identical across two
  // same-seed runs.
  const std::string scenario = "diurnal:depth=0.8";
  WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  registry.RegisterBuiltin("resnet18");
  const std::vector<WorkloadShare> mix = {{"mlp", 0.2}, {"resnet18", 0.8}};
  PlanOptions plan_options;
  plan_options.qps = 2000.0;
  plan_options.p99_slo_s = 50e-3;
  plan_options.device = "u250";
  plan_options.devices = 128;
  plan_options.max_replicas_per_workload = 64;
  plan_options.scenario = ScenarioSpec::Parse(scenario);
  const PoolPlan plan = PlanCapacity(registry, mix, plan_options);
  ASSERT_TRUE(plan.feasible);

  ServeOptions options;
  options.qps = 2000.0;
  options.duration_s = 16.0;
  options.seed = 42;
  options.max_batch = plan.max_batch;
  options.max_wait_s = plan.max_wait_s;
  options.per_workload_max_batch = plan.PerWorkloadMaxBatch();
  options.scenario = ScenarioSpec::Parse(scenario);
  options.autoscale = true;
  options.autoscale_opts.p99_slo_s = plan.p99_slo_s;
  options.autoscale_opts.devices = plan.devices;
  options.autoscale_opts.max_replicas = 64;
  options.autoscale_opts.headroom = 0.10;
  options.autoscale_opts.up_band = 1.05;
  options.autoscale_opts.down_band = 0.85;
  options.autoscale_opts.cooldown_s = 0.5;

  const ServeReport no_fault = RunSyntheticServe(registry, plan.Replicas(),
                                                 mix, options);
  ASSERT_LE(no_fault.summary.p99_ms, plan.p99_slo_s * 1e3);

  options.adversity = AdversitySpec::Parse("replica-fail");
  const ServeReport fault = RunSyntheticServe(registry, plan.Replicas(),
                                              mix, options);
  // Identical offered trace (replica-side fault leaves arrivals alone),
  // every request still served exactly once through the loss.
  EXPECT_EQ(fault.generated_requests, no_fault.generated_requests);
  EXPECT_EQ(fault.summary.completed, fault.generated_requests);
  // SLO held through the outage, aggregate and per tenant.
  EXPECT_LE(fault.summary.p99_ms, plan.p99_slo_s * 1e3);
  for (const WorkloadSummary& slice : fault.summary.per_workload) {
    EXPECT_LE(slice.p99_ms, plan.p99_slo_s * 1e3) << slice.name;
  }
  // Replan-around-loss is efficient: at most 15% extra replica-seconds
  // versus the fault-free autoscaled run (the dead replica's dark time is
  // excluded from the bill, so recovery capacity is the only overhead).
  EXPECT_LE(fault.replica_seconds, 1.15 * no_fault.replica_seconds);
  // The loss actually registered: a fault event on the timeline, and the
  // autoscaler reacted after it.
  double fail_t = -1.0;
  for (const PoolEvent& event : fault.summary.timeline) {
    if (event.kind == PoolEventKind::kFault &&
        event.event.find("failed") != std::string::npos) {
      fail_t = event.t_s;
    }
  }
  ASSERT_GE(fail_t, 0.0);
  EXPECT_DOUBLE_EQ(fail_t, 4.0);  // at = 0.25 x 16 (the diurnal crest).

  // Bit-determinism of the hardened run: two same-seed runs agree delta
  // for delta and fault for fault.
  const ServeReport again = RunSyntheticServe(registry, plan.Replicas(),
                                              mix, options);
  ASSERT_EQ(fault.deltas.size(), again.deltas.size());
  for (std::size_t i = 0; i < fault.deltas.size(); ++i) {
    EXPECT_EQ(fault.deltas[i].kind, again.deltas[i].kind) << i;
    EXPECT_EQ(fault.deltas[i].replica, again.deltas[i].replica) << i;
    EXPECT_EQ(fault.deltas[i].workload, again.deltas[i].workload) << i;
    EXPECT_DOUBLE_EQ(fault.deltas[i].t_s, again.deltas[i].t_s) << i;
    EXPECT_EQ(fault.deltas[i].reason, again.deltas[i].reason) << i;
  }
  ASSERT_EQ(fault.summary.timeline.size(), again.summary.timeline.size());
  for (std::size_t i = 0; i < fault.summary.timeline.size(); ++i) {
    EXPECT_EQ(fault.summary.timeline[i].event,
              again.summary.timeline[i].event) << i;
    EXPECT_DOUBLE_EQ(fault.summary.timeline[i].t_s,
                     again.summary.timeline[i].t_s) << i;
  }
  EXPECT_DOUBLE_EQ(fault.summary.p99_ms, again.summary.p99_ms);
  EXPECT_DOUBLE_EQ(fault.replica_seconds, again.replica_seconds);
}

}  // namespace
}  // namespace nsflow::serve
