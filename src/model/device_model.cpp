#include "model/device_model.h"

#include <algorithm>

#include "common/error.h"
#include "common/math_util.h"

namespace nsflow {

double CategoryEfficiency::For(OpCategory category) const {
  switch (category) {
    case OpCategory::kMatrixNn:
      return matrix_nn;
    case OpCategory::kOtherGemm:
      return other_gemm;
    case OpCategory::kVectorVsa:
      return vector_vsa;
    case OpCategory::kElemVsa:
      return elem_vsa;
    case OpCategory::kElemNn:
      return elem_nn;
    case OpCategory::kNone:
      return 1.0;
  }
  return 1.0;
}

WorkloadEstimate RooflineDevice::Estimate(const OperatorGraph& graph) const {
  WorkloadEstimate estimate;
  for (const auto& node : graph.nodes()) {
    const double t = OpRuntime(node);
    switch (node.domain()) {
      case Domain::kNeuro:
        estimate.neuro_s += t;
        break;
      case Domain::kSymbolic:
        estimate.symbolic_s += t;
        break;
      case Domain::kNone:
        break;
    }
  }
  return estimate;
}

double RooflineDevice::OpRuntime(const OpNode& node) const {
  if (node.category() == OpCategory::kNone) {
    return 0.0;
  }
  const double ceff = spec_.compute_eff.For(node.category());
  const double beff = spec_.bandwidth_eff.For(node.category());
  NSF_CHECK_MSG(ceff > 0.0 && beff > 0.0, "efficiencies must be positive");
  const double compute_s = node.Flops() / (spec_.peak_flops * ceff);
  const double memory_s = node.TrafficBytes() / (spec_.mem_bandwidth * beff);
  return std::max(compute_s, memory_s) + spec_.launch_overhead_s;
}

SystolicArrayDevice::SystolicArrayDevice(std::string name, ArrayConfig config,
                                         double clock_hz, double mem_bandwidth,
                                         double launch_overhead_s)
    : name_(std::move(name)),
      config_(config),
      clock_hz_(clock_hz),
      mem_bandwidth_(mem_bandwidth),
      launch_overhead_s_(launch_overhead_s) {
  NSF_CHECK_MSG(config_.count == 1,
                "monolithic baseline array must have a single partition");
}

double SystolicArrayDevice::OpCycles(const OpNode& node) const {
  switch (node.unit()) {
    case ComputeUnit::kAdArray: {
      if (node.domain() == Domain::kNeuro) {
        return LayerCycles(config_, 1, node.gemm);
      }
      // Circular convolution on a rigid GEMM array: each output vector needs
      // a d x d circulant-matrix GEMM, and the circulant operand must be
      // materialized and streamed from memory every time (no stationary
      // reuse across the d shifted copies). Compute cycles per Eq. (1) with
      // m=n=d, k=count; memory cycles for streaming count * d*d circulant
      // words through the array's edge bandwidth.
      const GemmDims circulant{node.vsa.dim, node.vsa.dim, node.vsa.count};
      const double compute = LayerCycles(config_, 1, circulant);
      const double words = static_cast<double>(node.vsa.count) *
                           static_cast<double>(node.vsa.dim) *
                           static_cast<double>(node.vsa.dim);
      const double bytes_per_cycle = mem_bandwidth_ / clock_hz_;
      const double memory = words /* 1 byte each at INT8 */ / bytes_per_cycle;
      return std::max(compute, memory);
    }
    case ComputeUnit::kSimd:
      // No SIMD coprocessor: element-wise ops run on the accompanying host
      // vector unit (a 256-lane-equivalent path at the array clock).
      return SimdCycles(static_cast<double>(node.elem_count), 256);
    case ComputeUnit::kNone:
      return 0.0;
  }
  return 0.0;
}

WorkloadEstimate SystolicArrayDevice::Estimate(const OperatorGraph& graph) const {
  WorkloadEstimate estimate;
  for (const auto& node : graph.nodes()) {
    const double t = OpCycles(node) / clock_hz_ +
                     (node.category() == OpCategory::kNone
                          ? 0.0
                          : launch_overhead_s_);
    switch (node.domain()) {
      case Domain::kNeuro:
        estimate.neuro_s += t;
        break;
      case Domain::kSymbolic:
        estimate.symbolic_s += t;
        break;
      case Domain::kNone:
        break;
    }
  }
  return estimate;
}

}  // namespace nsflow
