#include "model/roofline.h"

#include <algorithm>

#include "common/error.h"

namespace nsflow {

double Roofline::Attainable(double ai) const {
  NSF_CHECK_MSG(peak_flops > 0.0 && mem_bandwidth > 0.0,
                "roofline needs positive peak and bandwidth");
  return std::min(peak_flops, ai * mem_bandwidth);
}

std::vector<RooflinePoint> PlaceOnRoofline(const OperatorGraph& graph,
                                           const Roofline& roofline,
                                           double efficiency) {
  std::vector<RooflinePoint> points;
  for (const Domain domain : {Domain::kNeuro, Domain::kSymbolic}) {
    const DomainStats stats = graph.StatsFor(domain);
    if (stats.ops == 0) {
      continue;
    }
    RooflinePoint point;
    point.label = graph.workload_name() +
                  (domain == Domain::kNeuro ? " (Neuro)" : " (Symb)");
    point.arithmetic_intensity = stats.ArithmeticIntensity();
    point.attained_flops =
        efficiency * roofline.Attainable(point.arithmetic_intensity);
    point.memory_bound = !roofline.IsComputeBound(point.arithmetic_intensity);
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace nsflow
