// Tests for the two-phase DSE (Algorithm 1), design-space accounting
// (Table II), memory sizing, and the design-config JSON round trip.
#include "common/error.h"

#include <gtest/gtest.h>

#include "dse/design_config.h"
#include "dse/design_space.h"
#include "dse/dse.h"
#include "model/accel_model.h"
#include "workloads/builders.h"

namespace nsflow {
namespace {

DseOptions FastOptions() {
  DseOptions options;
  options.max_pes = 8192;
  return options;
}

TEST(DesignSpaceTest, OriginalSpaceIsAstronomical) {
  const OperatorGraph graph = workloads::MakeNvsa();
  const DataflowGraph dfg(graph);
  const auto size = CountDesignSpace(dfg, /*m=*/10, /*phase2_iters=*/4);
  // Paper Table II: ~10^300 for m=10 on an NVSA-scale graph.
  EXPECT_GT(size.log10_original, 200.0);
  EXPECT_LT(size.log10_original, 400.0);
}

TEST(DesignSpaceTest, PrunedSpaceIsTiny) {
  const OperatorGraph graph = workloads::MakeNvsa();
  const DataflowGraph dfg(graph);
  const auto size = CountDesignSpace(dfg, 10, 4);
  // Phase I ~10^3, Phase II = iters x layers.
  EXPECT_LT(size.log10_phase1, 6.0);
  EXPECT_LT(size.log10_phase2, 3.0);
  // Reduction of ~100 orders of magnitude (paper: "10^100x").
  EXPECT_GT(size.log10_reduction, 100.0);
  EXPECT_LT(size.hw_points_pruned, size.hw_points_original);
}

TEST(TwoPhaseDseTest, ProducesFeasibleDesign) {
  const OperatorGraph graph = workloads::MakeNvsa();
  const DataflowGraph dfg(graph);
  const DseResult result = RunTwoPhaseDse(dfg, FastOptions());

  const auto& d = result.design;
  EXPECT_GE(d.array.height, 4);
  EXPECT_GE(d.array.width, 4);
  EXPECT_GE(d.array.count, 1);
  EXPECT_LE(d.array.TotalPes(), 8192);

  // Aspect-ratio pruning respected.
  const double aspect =
      static_cast<double>(d.array.height) / static_cast<double>(d.array.width);
  EXPECT_GE(aspect, 0.25);
  EXPECT_LE(aspect, 16.0);

  if (!d.sequential_mode) {
    ASSERT_EQ(d.nl.size(), dfg.layers().size());
    ASSERT_EQ(d.nv.size(), dfg.vsa_ops().size());
    for (const auto nl : d.nl) {
      EXPECT_GE(nl, 1);
      EXPECT_LT(nl, d.array.count);
    }
    for (const auto nv : d.nv) {
      EXPECT_GE(nv, 1);
      EXPECT_LT(nv, d.array.count);
    }
  }
  EXPECT_GT(result.evaluated_points, 100);
}

TEST(TwoPhaseDseTest, NvsaChoosesParallelMode) {
  // NVSA has a real symbolic lane: folding must beat sequential execution.
  const OperatorGraph graph = workloads::MakeNvsa();
  const DataflowGraph dfg(graph);
  const DseResult result = RunTwoPhaseDse(dfg, FastOptions());
  EXPECT_FALSE(result.design.sequential_mode);
  EXPECT_LT(result.t_para_cycles, result.t_seq_cycles);
}

TEST(TwoPhaseDseTest, PureNeuralFallsBackToSequential) {
  // Algorithm 1 line 14: with no symbolic work, parallel mode is pointless.
  const OperatorGraph graph = workloads::MakeParametricNsai(0.0);
  const DataflowGraph dfg(graph);
  const DseResult result = RunTwoPhaseDse(dfg, FastOptions());
  EXPECT_TRUE(result.design.sequential_mode);
}

TEST(TwoPhaseDseTest, PhaseTwoNeverHurts) {
  const OperatorGraph graph = workloads::MakeNvsa();
  const DataflowGraph dfg(graph);

  DseOptions with = FastOptions();
  DseOptions without = FastOptions();
  without.enable_phase2 = false;

  const DseResult tuned = RunTwoPhaseDse(dfg, with);
  const DseResult static_only = RunTwoPhaseDse(dfg, without);

  EXPECT_LE(tuned.t_para_cycles, static_only.t_para_cycles);
  EXPECT_DOUBLE_EQ(static_only.Phase2Gain(), 0.0);
  EXPECT_GE(tuned.Phase2Gain(), 0.0);
}

TEST(TwoPhaseDseTest, PhaseTwoGainPeaksWhenBalanced) {
  // Fig. 6: the Phase II gain is largest when NN and symbolic work are
  // comparable (symbolic memory share around 20%), and small at the
  // extremes. We check balanced > extreme rather than an absolute number.
  const auto gain_at = [](double fraction) {
    const OperatorGraph graph = workloads::MakeParametricNsai(fraction);
    const DataflowGraph dfg(graph);
    DseOptions options;
    options.max_pes = 8192;
    const DseResult result = RunTwoPhaseDse(dfg, options);
    return result.design.sequential_mode ? 0.0 : result.Phase2Gain();
  };
  const double balanced = gain_at(0.2);
  const double tiny = gain_at(0.02);
  EXPECT_GE(balanced, tiny);
}

TEST(TwoPhaseDseTest, ForcedArrayAblation) {
  // The Fig. 6 "w/o Phase I" arm: a monolithic 128x64 array, sequential.
  const OperatorGraph graph = workloads::MakeNvsa();
  const DataflowGraph dfg(graph);
  DseOptions options;
  options.enable_phase1 = false;
  options.forced_array = ArrayConfig{128, 64, 1};
  const DseResult forced = RunTwoPhaseDse(dfg, options);
  EXPECT_EQ(forced.design.array.height, 128);
  EXPECT_EQ(forced.design.array.width, 64);
  EXPECT_TRUE(forced.design.sequential_mode);  // One sub-array can't fold.

  // And it must be slower than the full flow on a symbolic-heavy workload.
  const DseResult full = RunTwoPhaseDse(dfg, FastOptions());
  EXPECT_LT(full.t_para_cycles, forced.t_para_cycles);
}

TEST(TwoPhaseDseTest, MissingForcedArrayIsAnError) {
  const OperatorGraph graph = workloads::MakeNvsa();
  const DataflowGraph dfg(graph);
  DseOptions options;
  options.enable_phase1 = false;
  EXPECT_THROW(RunTwoPhaseDse(dfg, options), CheckError);
}

TEST(MemorySizingTest, FollowsSectionVC) {
  const OperatorGraph graph = workloads::MakeNvsa();
  const DataflowGraph dfg(graph);
  const auto mem =
      dse_internal::SizeMemory(dfg, ArrayConfig{32, 16, 16}, 512.0 * 1024.0);

  // MA1 holds the double-buffered max filter.
  EXPECT_GE(mem.mem_a1_bytes, 2.0 * dfg.MaxLayerWeightBytes());
  // MA2 holds the larger of max VSA node and the dictionary, doubled.
  EXPECT_GE(mem.mem_a2_bytes,
            2.0 * std::max(dfg.MaxVsaNodeBytes(), 512.0 * 1024.0));
  // Cache = 2 x (MA + MB + MC), rounded to URAM blocks.
  const double sram = mem.mem_a1_bytes + mem.mem_a2_bytes + mem.mem_b_bytes +
                      mem.mem_c_bytes;
  EXPECT_GE(mem.cache_bytes, 2.0 * sram - 288.0 * 1024.0);
  // Everything is BRAM/URAM-block aligned.
  EXPECT_EQ(static_cast<std::int64_t>(mem.mem_a1_bytes) % (18 * 1024), 0);
  EXPECT_EQ(static_cast<std::int64_t>(mem.cache_bytes) % (288 * 1024), 0);
}

TEST(SimdSizingTest, SmallestWidthThatHides) {
  const std::vector<std::int64_t> widths = {16, 32, 64, 128, 256};
  // 10k elements, array busy 1000 cycles: need ceil(10000/w) <= ~1000 -> 16.
  EXPECT_EQ(dse_internal::SizeSimd(10000.0, 1000.0, widths), 16);
  // Array busy only 100 cycles: need width 128 (10000/128 + 8 = 86 <= 100).
  EXPECT_EQ(dse_internal::SizeSimd(10000.0, 100.0, widths), 128);
  // Nothing hides: fall back to the largest.
  EXPECT_EQ(dse_internal::SizeSimd(1e9, 10.0, widths), 256);
}

TEST(DesignConfigTest, JsonRoundTrip) {
  const OperatorGraph graph = workloads::MakeNvsa();
  const DataflowGraph dfg(graph);
  const DseResult result = RunTwoPhaseDse(dfg, FastOptions());

  const std::string json = EmitDesignConfig(result.design, "NVSA");
  const AcceleratorDesign parsed = ParseDesignConfig(json);

  EXPECT_EQ(parsed.array, result.design.array);
  EXPECT_EQ(parsed.sequential_mode, result.design.sequential_mode);
  EXPECT_EQ(parsed.nl, result.design.nl);
  EXPECT_EQ(parsed.nv, result.design.nv);
  EXPECT_EQ(parsed.simd_width, result.design.simd_width);
  EXPECT_DOUBLE_EQ(parsed.memory.cache_bytes, result.design.memory.cache_bytes);
  EXPECT_EQ(parsed.precision, result.design.precision);
  EXPECT_DOUBLE_EQ(parsed.clock_hz, result.design.clock_hz);
}

class DsePerWorkloadTest
    : public ::testing::TestWithParam<workloads::TaskId> {};

TEST_P(DsePerWorkloadTest, EveryTaskGetsAValidDesign) {
  const OperatorGraph graph = workloads::MakeTask(GetParam());
  const DataflowGraph dfg(graph);
  const DseResult result = RunTwoPhaseDse(dfg, FastOptions());
  EXPECT_GT(result.t_para_cycles, 0.0);
  EXPECT_LE(result.design.array.TotalPes(), 8192);
  // The produced design must be evaluable end to end.
  const double seconds = EndToEndSeconds(dfg, result.design);
  EXPECT_GT(seconds, 0.0);
  EXPECT_LT(seconds, 10.0);  // Real-time-ish on all tasks (paper's goal).
}

INSTANTIATE_TEST_SUITE_P(AllTasks, DsePerWorkloadTest,
                         ::testing::ValuesIn(workloads::kAllTasks),
                         [](const auto& info) {
                           std::string name = workloads::TaskName(info.param);
                           for (auto& c : name) {
                             if (c == '/' || c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace nsflow
