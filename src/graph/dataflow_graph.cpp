#include "graph/dataflow_graph.h"

#include <algorithm>

#include "common/error.h"

namespace nsflow {

DataflowGraph::DataflowGraph(const OperatorGraph& graph) : graph_(&graph) {
  graph.Validate();
  ComputeDepths();
  FindCriticalPath();
  AttachParallelNodes();
  SummarizeKernels();
}

void DataflowGraph::ComputeDepths() {
  // Insertion order is topological, so one forward pass suffices.
  depth_.assign(static_cast<std::size_t>(graph_->size()), 0);
  for (const auto& node : graph_->nodes()) {
    int d = 0;
    for (const NodeId input : node.inputs) {
      d = std::max(d, depth_[static_cast<std::size_t>(input)] + 1);
    }
    depth_[static_cast<std::size_t>(node.id)] = d;
  }
}

void DataflowGraph::FindCriticalPath() {
  // Step 1 (Fig. 4): DFS for the critical path of a single loop. We run the
  // DFS as a memoized longest-path-to-sink computation in reverse topological
  // order, with per-node FLOPs as the configuration-independent edge weight.
  const auto consumers = graph_->BuildConsumers();
  const auto n = static_cast<std::size_t>(graph_->size());
  longest_to_sink_.assign(n, 0.0);
  std::vector<NodeId> best_next(n, kInvalidNode);

  for (std::size_t i = n; i-- > 0;) {
    const auto& node = graph_->node(static_cast<NodeId>(i));
    double best = 0.0;
    NodeId next = kInvalidNode;
    for (const NodeId c : consumers[i]) {
      const double via = longest_to_sink_[static_cast<std::size_t>(c)];
      if (next == kInvalidNode || via > best) {
        best = via;
        next = c;
      }
    }
    longest_to_sink_[i] = node.Flops() + best;
    best_next[i] = next;
  }

  // The path starts at the source with the largest total weight.
  NodeId head = kInvalidNode;
  double head_weight = -1.0;
  for (const auto& node : graph_->nodes()) {
    if (node.inputs.empty() &&
        longest_to_sink_[static_cast<std::size_t>(node.id)] > head_weight) {
      head_weight = longest_to_sink_[static_cast<std::size_t>(node.id)];
      head = node.id;
    }
  }
  NSF_CHECK_MSG(head != kInvalidNode, "graph has no source node");

  for (NodeId at = head; at != kInvalidNode;
       at = best_next[static_cast<std::size_t>(at)]) {
    DfgNode dfg;
    dfg.op = at;
    dfg.depth = depth_[static_cast<std::size_t>(at)];
    dfg.on_critical_path = true;
    critical_path_.push_back(dfg);
  }
}

void DataflowGraph::AttachParallelNodes() {
  // Step 2 (Fig. 4): BFS over the graph; every node not on the critical path
  // is attached to the critical-path node at the same depth (or the deepest
  // CP node not exceeding its depth), marking its earliest start slot.
  std::vector<bool> on_path(static_cast<std::size_t>(graph_->size()), false);
  for (const auto& dfg : critical_path_) {
    on_path[static_cast<std::size_t>(dfg.op)] = true;
  }

  for (const auto& node : graph_->nodes()) {
    if (on_path[static_cast<std::size_t>(node.id)]) {
      continue;
    }
    const int d = depth_[static_cast<std::size_t>(node.id)];
    // CP nodes are depth-sorted along the path; find the attachment anchor.
    std::size_t anchor = 0;
    for (std::size_t i = 0; i < critical_path_.size(); ++i) {
      if (critical_path_[i].depth <= d) {
        anchor = i;
      } else {
        break;
      }
    }
    critical_path_[anchor].attached.push_back(node.id);
  }
}

void DataflowGraph::SummarizeKernels() {
  // Steps 4–5 (Fig. 4): collect runtime-function inputs and memory footprints
  // in schedule order (critical path order, attachments after their anchor).
  std::vector<NodeId> schedule;
  schedule.reserve(static_cast<std::size_t>(graph_->size()));
  for (const auto& dfg : critical_path_) {
    schedule.push_back(dfg.op);
    for (const NodeId a : dfg.attached) {
      schedule.push_back(a);
    }
  }

  for (const NodeId id : schedule) {
    const auto& node = graph_->node(id);
    switch (node.unit()) {
      case ComputeUnit::kAdArray:
        if (node.domain() == Domain::kNeuro) {
          layers_.push_back({id, node.gemm, node.weight_bytes,
                             node.output_bytes});
        } else {
          vsa_ops_.push_back(
              {id, node.vsa, node.weight_bytes + node.activation_bytes});
        }
        break;
      case ComputeUnit::kSimd:
        simd_ops_.push_back({id, node.elem_count, node.domain()});
        break;
      case ComputeUnit::kNone:
        break;
    }
  }
}

VsaSpan DataflowGraph::LayerSpan(std::size_t layer_index) const {
  NSF_CHECK_MSG(layer_index < layers_.size(), "layer index out of range");
  if (vsa_ops_.empty()) {
    return {0, 0};
  }

  // Step 3 (Fig. 4): with fused loops, layer i of loop k+1 executes while the
  // symbolic tail of loop k drains. Map the layer's fractional position in
  // total NN work onto the cumulative distribution of VSA work to find the
  // VSA nodes it overlaps.
  double total_nn = 0.0;
  for (const auto& l : layers_) {
    total_nn += l.gemm.Flops();
  }
  double total_vsa = 0.0;
  for (const auto& v : vsa_ops_) {
    total_vsa += v.vsa.Flops();
  }
  if (total_nn <= 0.0 || total_vsa <= 0.0) {
    return {0, vsa_ops_.empty() ? 0 : vsa_ops_.size() - 1};
  }

  double before = 0.0;
  for (std::size_t i = 0; i < layer_index; ++i) {
    before += layers_[i].gemm.Flops();
  }
  const double start_frac = before / total_nn;
  const double end_frac =
      (before + layers_[layer_index].gemm.Flops()) / total_nn;

  VsaSpan span;
  bool first_set = false;
  double cum = 0.0;
  for (std::size_t j = 0; j < vsa_ops_.size(); ++j) {
    const double lo = cum / total_vsa;
    cum += vsa_ops_[j].vsa.Flops();
    const double hi = cum / total_vsa;
    const bool overlaps = hi > start_frac && lo < end_frac;
    if (overlaps) {
      if (!first_set) {
        span.first = j;
        first_set = true;
      }
      span.last = j;
    }
  }
  if (!first_set) {
    // Degenerate (zero-FLOP layer): pin to the nearest span edge.
    span.first = span.last =
        start_frac >= 1.0 ? vsa_ops_.size() - 1 : 0;
  }
  return span;
}

std::vector<VsaSpan> DataflowGraph::LayerWindows() const {
  std::vector<VsaSpan> windows(layers_.size());
  if (layers_.empty() || vsa_ops_.empty()) {
    return windows;
  }

  // The controller issues the previous loop's VSA queue in program order,
  // one contiguous slice per NN layer window, without knowing node costs
  // (the schedule is static). Windows therefore get near-equal node
  // *counts*, not equal work — the per-window imbalance between a layer's
  // runtime and its VSA slice's runtime is exactly what Phase II's
  // per-layer reallocation repairs.
  const std::size_t num_layers = layers_.size();
  const std::size_t num_vsa = vsa_ops_.size();
  std::size_t next = 0;
  for (std::size_t i = 0; i < num_layers; ++i) {
    const std::size_t take =
        (num_vsa * (i + 1)) / num_layers - (num_vsa * i) / num_layers;
    if (take == 0) {
      windows[i] = {1, 0};  // first > last encodes "no VSA in this window".
    } else {
      windows[i] = {next, next + take - 1};
      next += take;
    }
  }
  NSF_DCHECK(next == num_vsa);
  return windows;
}

double DataflowGraph::MaxLayerWeightBytes() const {
  double best = 0.0;
  for (const auto& l : layers_) {
    best = std::max(best, l.weight_bytes);
  }
  return best;
}

double DataflowGraph::MaxVsaNodeBytes() const {
  double best = 0.0;
  for (const auto& v : vsa_ops_) {
    best = std::max(best, v.bytes);
  }
  return best;
}

double DataflowGraph::MaxLayerOutputBytes() const {
  double best = 0.0;
  for (const auto& l : layers_) {
    best = std::max(best, l.output_bytes);
  }
  return best;
}

double DataflowGraph::TotalSimdElems() const {
  double total = 0.0;
  for (const auto& s : simd_ops_) {
    total += static_cast<double>(s.elem_count);
  }
  return total;
}

int DataflowGraph::ParallelOpCount() const {
  int count = 0;
  for (const auto& dfg : critical_path_) {
    count += static_cast<int>(dfg.attached.size());
  }
  return count;
}

}  // namespace nsflow
