// Unit tests for the operator graph and op taxonomy.
#include "common/error.h"

#include <gtest/gtest.h>

#include "graph/operator_graph.h"

namespace nsflow {
namespace {

OpNode MakeConv(const std::string& name, std::vector<NodeId> inputs,
                GemmDims gemm) {
  OpNode node;
  node.name = name;
  node.kind = OpKind::kConv2d;
  node.inputs = std::move(inputs);
  node.gemm = gemm;
  node.weight_bytes = static_cast<double>(gemm.m * gemm.n);
  return node;
}

TEST(OpTaxonomyTest, CategoriesMatchPaperFig1Legend) {
  EXPECT_EQ(CategoryOf(OpKind::kConv2d), OpCategory::kMatrixNn);
  EXPECT_EQ(CategoryOf(OpKind::kLinear), OpCategory::kOtherGemm);
  EXPECT_EQ(CategoryOf(OpKind::kCircularBind), OpCategory::kVectorVsa);
  EXPECT_EQ(CategoryOf(OpKind::kMatchProb), OpCategory::kElemVsa);
  EXPECT_EQ(CategoryOf(OpKind::kRelu), OpCategory::kElemNn);
  EXPECT_EQ(CategoryOf(OpKind::kInput), OpCategory::kNone);
}

TEST(OpTaxonomyTest, DomainSplit) {
  EXPECT_EQ(DomainOf(OpKind::kConv2d), Domain::kNeuro);
  EXPECT_EQ(DomainOf(OpKind::kSoftmax), Domain::kNeuro);
  EXPECT_EQ(DomainOf(OpKind::kCircularUnbind), Domain::kSymbolic);
  EXPECT_EQ(DomainOf(OpKind::kVecSum), Domain::kSymbolic);
}

TEST(OpTaxonomyTest, UnitAssignment) {
  // Matrix and vector kernels run on the AdArray; element-wise on SIMD.
  EXPECT_EQ(UnitOf(OpKind::kConv2d), ComputeUnit::kAdArray);
  EXPECT_EQ(UnitOf(OpKind::kCircularBind), ComputeUnit::kAdArray);
  EXPECT_EQ(UnitOf(OpKind::kRelu), ComputeUnit::kSimd);
  EXPECT_EQ(UnitOf(OpKind::kMatchProbBatched), ComputeUnit::kSimd);
}

TEST(OpTaxonomyTest, ListingOneKernelNamesParse) {
  // Every kernel name appearing in the paper's Listing 1 must resolve.
  for (const char* name :
       {"conv2d", "maxpool", "relu", "nvsa.inv_binding_circular",
        "nvsa.match_prob", "nvsa.match_prob_multi_batched", "torch.sum",
        "torch.clamp", "operator.mul"}) {
    EXPECT_NO_THROW(OpKindFromName(name)) << name;
  }
  EXPECT_THROW(OpKindFromName("torch.nonexistent"), ParseError);
}

TEST(OpNodeTest, FlopsPerUnit) {
  OpNode conv = MakeConv("c", {}, {64, 576, 1024});
  EXPECT_DOUBLE_EQ(conv.Flops(), 2.0 * 64 * 576 * 1024);

  OpNode bind;
  bind.kind = OpKind::kCircularBind;
  bind.vsa = {8, 256};
  EXPECT_DOUBLE_EQ(bind.Flops(), 2.0 * 8 * 256 * 256);

  OpNode relu;
  relu.kind = OpKind::kRelu;
  relu.elem_count = 1000;
  EXPECT_DOUBLE_EQ(relu.Flops(), 2000.0);
}

TEST(OperatorGraphTest, TopologicalInsertionEnforced) {
  OperatorGraph graph("test");
  OpNode input;
  input.name = "in";
  input.kind = OpKind::kInput;
  const NodeId id = graph.AddNode(input);
  EXPECT_EQ(id, 0);

  OpNode bad = MakeConv("bad", {5}, {1, 1, 1});  // Forward reference.
  EXPECT_THROW(graph.AddNode(bad), CheckError);
}

TEST(OperatorGraphTest, ValidateCatchesDuplicateNames) {
  OperatorGraph graph("test");
  OpNode a;
  a.name = "x";
  a.kind = OpKind::kInput;
  graph.AddNode(a);
  OpNode b;
  b.name = "x";
  b.kind = OpKind::kInput;
  graph.AddNode(b);
  EXPECT_THROW(graph.Validate(), CheckError);
}

TEST(OperatorGraphTest, ValidateRequiresKernelDims) {
  OperatorGraph graph("test");
  OpNode conv;
  conv.name = "conv";
  conv.kind = OpKind::kConv2d;  // Missing GEMM dims.
  graph.AddNode(conv);
  EXPECT_THROW(graph.Validate(), CheckError);
}

TEST(OperatorGraphTest, FindByName) {
  OperatorGraph graph("test");
  OpNode input;
  input.name = "in";
  input.kind = OpKind::kInput;
  graph.AddNode(input);
  graph.AddNode(MakeConv("conv1", {0}, {8, 8, 8}));
  ASSERT_TRUE(graph.FindByName("conv1").has_value());
  EXPECT_EQ(*graph.FindByName("conv1"), 1);
  EXPECT_FALSE(graph.FindByName("nope").has_value());
}

TEST(OperatorGraphTest, ConsumersReverseAdjacency) {
  OperatorGraph graph("test");
  OpNode input;
  input.name = "in";
  input.kind = OpKind::kInput;
  graph.AddNode(input);
  graph.AddNode(MakeConv("a", {0}, {4, 4, 4}));
  graph.AddNode(MakeConv("b", {0}, {4, 4, 4}));
  const auto consumers = graph.BuildConsumers();
  ASSERT_EQ(consumers[0].size(), 2u);
  EXPECT_EQ(consumers[0][0], 1);
  EXPECT_EQ(consumers[0][1], 2);
  EXPECT_TRUE(consumers[1].empty());
}

TEST(OperatorGraphTest, DomainStatsAggregation) {
  OperatorGraph graph("test");
  OpNode input;
  input.name = "in";
  input.kind = OpKind::kInput;
  graph.AddNode(input);
  OpNode conv = MakeConv("conv", {0}, {10, 10, 10});
  conv.activation_bytes = 100.0;
  conv.output_bytes = 50.0;
  graph.AddNode(conv);
  OpNode bind;
  bind.name = "bind";
  bind.kind = OpKind::kCircularBind;
  bind.inputs = {1};
  bind.vsa = {2, 16};
  bind.weight_bytes = 32.0;
  graph.AddNode(bind);

  const auto neuro = graph.StatsFor(Domain::kNeuro);
  EXPECT_EQ(neuro.ops, 1);
  EXPECT_DOUBLE_EQ(neuro.flops, 2000.0);
  EXPECT_DOUBLE_EQ(neuro.bytes, 250.0);
  EXPECT_DOUBLE_EQ(neuro.ArithmeticIntensity(), 8.0);

  const auto symbolic = graph.StatsFor(Domain::kSymbolic);
  EXPECT_EQ(symbolic.ops, 1);
  EXPECT_DOUBLE_EQ(symbolic.flops, 2.0 * 2 * 16 * 16);

  EXPECT_DOUBLE_EQ(graph.TotalFlops(), neuro.flops + symbolic.flops);
}

TEST(OperatorGraphTest, NodesOnUnitFiltersInOrder) {
  OperatorGraph graph("test");
  OpNode input;
  input.name = "in";
  input.kind = OpKind::kInput;
  graph.AddNode(input);
  graph.AddNode(MakeConv("c1", {0}, {4, 4, 4}));
  OpNode relu;
  relu.name = "r1";
  relu.kind = OpKind::kRelu;
  relu.inputs = {1};
  relu.elem_count = 16;
  graph.AddNode(relu);
  graph.AddNode(MakeConv("c2", {2}, {4, 4, 4}));

  const auto array_nodes = graph.NodesOnUnit(ComputeUnit::kAdArray);
  ASSERT_EQ(array_nodes.size(), 2u);
  EXPECT_EQ(array_nodes[0], 1);
  EXPECT_EQ(array_nodes[1], 3);
  EXPECT_EQ(graph.NodesOnUnit(ComputeUnit::kSimd).size(), 1u);
}

}  // namespace
}  // namespace nsflow
