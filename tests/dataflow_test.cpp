// Tests for the dataflow-graph construction (paper Fig. 4 steps 1-5).
#include "common/error.h"

#include <gtest/gtest.h>

#include "graph/dataflow_graph.h"
#include "workloads/builders.h"

namespace nsflow {
namespace {

/// A small diamond-shaped NSAI graph: input -> conv1 -> conv2 (critical, big)
/// with two parallel VSA ops hanging off conv1, joined by a SIMD op.
OperatorGraph MakeDiamond() {
  OperatorGraph graph("diamond");
  graph.set_loop_count(2);

  OpNode input;
  input.name = "in";
  input.kind = OpKind::kInput;
  const NodeId in = graph.AddNode(input);

  OpNode conv1;
  conv1.name = "conv1";
  conv1.kind = OpKind::kConv2d;
  conv1.inputs = {in};
  conv1.gemm = {64, 576, 4096};
  conv1.weight_bytes = 36864.0;
  conv1.output_bytes = 262144.0;
  const NodeId c1 = graph.AddNode(conv1);

  OpNode conv2 = conv1;
  conv2.name = "conv2";
  conv2.inputs = {c1};
  conv2.gemm = {128, 1152, 4096};  // Bigger: stays on the critical path.
  conv2.weight_bytes = 147456.0;
  const NodeId c2 = graph.AddNode(conv2);

  OpNode vsa1;
  vsa1.name = "vsa1";
  vsa1.kind = OpKind::kCircularUnbind;
  vsa1.inputs = {c1};
  vsa1.vsa = {4, 256};
  vsa1.weight_bytes = 1024.0;
  vsa1.activation_bytes = 1024.0;
  const NodeId v1 = graph.AddNode(vsa1);

  OpNode vsa2 = vsa1;
  vsa2.name = "vsa2";
  const NodeId v2 = graph.AddNode(vsa2);

  OpNode join;
  join.name = "join";
  join.kind = OpKind::kMatchProbBatched;
  join.inputs = {c2, v1, v2};
  join.elem_count = 4096;
  graph.AddNode(join);

  graph.Validate();
  return graph;
}

TEST(DataflowTest, DepthsAreLongestPath) {
  const OperatorGraph graph = MakeDiamond();
  const DataflowGraph dfg(graph);
  const auto& d = dfg.depths();
  EXPECT_EQ(d[0], 0);  // in
  EXPECT_EQ(d[1], 1);  // conv1
  EXPECT_EQ(d[2], 2);  // conv2
  EXPECT_EQ(d[3], 2);  // vsa1 (same depth as conv2)
  EXPECT_EQ(d[5], 3);  // join
}

TEST(DataflowTest, CriticalPathFollowsHeaviestChain) {
  const OperatorGraph graph = MakeDiamond();
  const DataflowGraph dfg(graph);
  std::vector<std::string> path_names;
  for (const auto& n : dfg.critical_path()) {
    path_names.push_back(graph.node(n.op).name);
  }
  // conv2's FLOPs dwarf the VSA branch, so the DFS keeps the conv chain.
  EXPECT_EQ(path_names,
            (std::vector<std::string>{"in", "conv1", "conv2", "join"}));
}

TEST(DataflowTest, OffPathNodesAttachAtTheirDepth) {
  const OperatorGraph graph = MakeDiamond();
  const DataflowGraph dfg(graph);
  // vsa1/vsa2 sit at depth 2 -> attached to the depth-2 CP node (conv2).
  const auto& cp = dfg.critical_path();
  ASSERT_EQ(cp.size(), 4u);
  EXPECT_EQ(graph.node(cp[2].op).name, "conv2");
  ASSERT_EQ(cp[2].attached.size(), 2u);
  EXPECT_EQ(graph.node(cp[2].attached[0]).name, "vsa1");
  EXPECT_EQ(dfg.ParallelOpCount(), 2);
}

TEST(DataflowTest, KernelListsInScheduleOrder) {
  const OperatorGraph graph = MakeDiamond();
  const DataflowGraph dfg(graph);
  ASSERT_EQ(dfg.layers().size(), 2u);
  EXPECT_EQ(graph.node(dfg.layers()[0].op).name, "conv1");
  EXPECT_EQ(graph.node(dfg.layers()[1].op).name, "conv2");
  ASSERT_EQ(dfg.vsa_ops().size(), 2u);
  ASSERT_EQ(dfg.simd_ops().size(), 1u);
  EXPECT_EQ(dfg.simd_ops()[0].elem_count, 4096);
}

TEST(DataflowTest, MemorySummaries) {
  const OperatorGraph graph = MakeDiamond();
  const DataflowGraph dfg(graph);
  EXPECT_DOUBLE_EQ(dfg.MaxLayerWeightBytes(), 147456.0);
  EXPECT_DOUBLE_EQ(dfg.MaxVsaNodeBytes(), 2048.0);
  EXPECT_DOUBLE_EQ(dfg.MaxLayerOutputBytes(), 262144.0);
  EXPECT_DOUBLE_EQ(dfg.TotalSimdElems(), 4096.0);
}

TEST(DataflowTest, LayerSpanCoversAllVsaNodes) {
  const OperatorGraph graph = MakeDiamond();
  const DataflowGraph dfg(graph);
  // Spans must be within range and monotone non-decreasing across layers.
  VsaSpan prev{0, 0};
  for (std::size_t i = 0; i < dfg.layers().size(); ++i) {
    const VsaSpan span = dfg.LayerSpan(i);
    EXPECT_LE(span.first, span.last);
    EXPECT_LT(span.last, dfg.vsa_ops().size());
    EXPECT_GE(span.first, prev.first);
    prev = span;
  }
  EXPECT_THROW(dfg.LayerSpan(99), CheckError);
}

TEST(DataflowTest, PipelinedLoopsFlag) {
  OperatorGraph graph = MakeDiamond();
  EXPECT_TRUE(DataflowGraph(graph).pipelined_loops());
  graph.set_loop_count(1);
  EXPECT_FALSE(DataflowGraph(graph).pipelined_loops());
}

TEST(DataflowTest, NvsaWorkloadStructure) {
  const OperatorGraph graph = workloads::MakeNvsa();
  const DataflowGraph dfg(graph);
  // ResNet-18: 20 weight layers.
  EXPECT_EQ(dfg.layers().size(), 20u);
  // NVSA params: 10 stages x 10 parallel VSA nodes.
  EXPECT_EQ(dfg.vsa_ops().size(), 100u);
  // BFS attachment exposes symbolic parallelism: many attached nodes.
  EXPECT_GT(dfg.ParallelOpCount(), 50);
  // Every NN layer's concurrent-VSA span is valid.
  for (std::size_t i = 0; i < dfg.layers().size(); ++i) {
    const auto span = dfg.LayerSpan(i);
    EXPECT_LT(span.last, dfg.vsa_ops().size());
  }
}

TEST(DataflowTest, PureNeuralGraphHasNoVsaNodes) {
  const OperatorGraph graph = workloads::MakeParametricNsai(0.0);
  const DataflowGraph dfg(graph);
  EXPECT_EQ(dfg.vsa_ops().size(), 0u);
  EXPECT_EQ(dfg.layers().size(), 20u);
  EXPECT_DOUBLE_EQ(dfg.MaxVsaNodeBytes(), 0.0);
}

}  // namespace
}  // namespace nsflow
