#include "serve/engine.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

#include "common/error.h"
#include "serve/autoscaler.h"
#include "serve/batch_former.h"
#include "serve/request_queue.h"

namespace nsflow::serve {

std::vector<Request> SyntheticArrivals(const ServeOptions& options) {
  return SyntheticArrivals(options, {1.0});
}

double EffectiveOfferedRps(const ServeOptions& options,
                           std::int64_t generated_requests) {
  switch (options.scenario.kind) {
    case ScenarioKind::kClosedLoop:
      // Sized by the client count; --qps is ignored.
      return ScenarioMeanRate(options.scenario, options.qps,
                              options.duration_s);
    case ScenarioKind::kTrace:
      // A replayed file has no rate parameter — report what it contained.
      return static_cast<double>(generated_requests) / options.duration_s;
    default:
      return options.qps;
  }
}

std::vector<Request> SyntheticArrivals(
    const ServeOptions& options, const std::vector<double>& shares,
    const std::vector<std::string>& workload_names) {
  NSF_CHECK_MSG(options.duration_s > 0.0, "duration must be positive");
  if (options.scenario.kind == ScenarioKind::kTrace) {
    // Replay: workload labels resolve through the registry's names; a
    // single-workload caller passes {} and the labels are ignored.
    std::ifstream in(options.scenario.trace_path, std::ios::binary);
    if (!in) {
      throw Error("cannot open arrival trace: " + options.scenario.trace_path);
    }
    std::ostringstream text;
    text << in.rdbuf();
    return ParseArrivalTraceJson(text.str(), workload_names,
                                 options.duration_s);
  }
  // The workload draw shares the RNG stream with the inter-arrival draws,
  // so one seed pins the entire (time, workload) trace whatever the
  // scenario (see scenario.cpp).
  return GenerateArrivals(options.scenario, options.qps, options.duration_s,
                          options.seed, shares);
}

std::vector<WorkloadShare> ParseMix(const std::string& spec) {
  std::vector<WorkloadShare> mix;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) {
      end = spec.size();
    }
    const std::string entry = spec.substr(start, end - start);
    const std::size_t eq = entry.find('=');
    if (entry.empty() || eq == std::string::npos || eq == 0) {
      throw Error("bad mix entry '" + entry +
                  "' (expected name=share, e.g. mlp=0.6)");
    }
    WorkloadShare share;
    share.workload = entry.substr(0, eq);
    try {
      share.share = std::stod(entry.substr(eq + 1));
    } catch (const std::exception&) {
      throw Error("bad mix share in '" + entry + "'");
    }
    if (share.share <= 0.0) {
      throw Error("mix share for '" + share.workload + "' must be positive");
    }
    mix.push_back(std::move(share));
    start = end + 1;
  }
  if (mix.empty()) {
    throw Error("empty workload mix");
  }
  return mix;
}

namespace {

/// Shared forming + dispatch loop: stream `arrivals` through the queue into
/// the multi-workload former, sending every closed batch to the earliest
/// capable replica. Works unchanged for the single-workload path (one lane,
/// every replica capable). With `autoscaler` non-null, its control
/// decisions interleave with the arrival stream on the virtual timeline:
/// every tick at or before the next arrival fires first, so a fixed seed
/// pins the whole (arrival, decision) sequence.
ServeReport RunPipeline(ServerPool& pool, ServeStats& stats,
                        const std::vector<Request>& arrivals,
                        const ServeOptions& options,
                        Autoscaler* autoscaler = nullptr,
                        std::shared_ptr<obs::Observability> obs = nullptr) {
  NSF_CHECK_MSG(options.max_batch >= 1, "max_batch must be positive");
  // Observability (docs/OBSERVABILITY.md): resolve the instrument pointers
  // once up front; with `obs` null every record site below is one pointer
  // test — the whole overhead of tracing-off.
  obs::TraceRecorder* recorder = obs != nullptr ? &obs->recorder : nullptr;
  if (obs != nullptr) {
    stats.AttachMetrics(&obs->metrics);
    pool.AttachMetrics(&obs->metrics);
    if (autoscaler != nullptr) {
      autoscaler->AttachMetrics(&obs->metrics);
    }
  }
  // Per-lane batching policies: `per_workload_max_batch` overrides the
  // uniform cap where set (0 entries fall back).
  std::vector<BatchPolicy> policies(
      static_cast<std::size_t>(pool.workloads()),
      BatchPolicy{options.max_batch, options.max_wait_s});
  NSF_CHECK_MSG(options.per_workload_max_batch.empty() ||
                    options.per_workload_max_batch.size() ==
                        policies.size(),
                "per_workload_max_batch must have one entry per workload");
  for (std::size_t w = 0; w < options.per_workload_max_batch.size(); ++w) {
    if (options.per_workload_max_batch[w] > 0) {
      policies[w].max_batch = options.per_workload_max_batch[w];
    }
  }

  // Producer thread feeds the queue in arrival order; the consumer below
  // drains it into the batch former. FIFO + virtual timestamps keep the
  // result independent of how the two threads interleave. The joiner
  // makes the consumer exception-safe: an error thrown mid-pipeline (an
  // autoscaler guard, a bad trace) must propagate to the caller, not hit
  // the joinable-thread destructor and terminate the process.
  RequestQueue queue;
  std::thread producer([&] {
    for (const Request& request : arrivals) {
      if (!queue.Push(request)) {
        break;  // Queue closed under us — nothing left to feed.
      }
    }
    queue.Close();
  });
  struct ProducerJoiner {
    RequestQueue& queue;
    std::thread& producer;
    ~ProducerJoiner() {
      queue.Close();  // Unblocks a producer still pushing.
      if (producer.joinable()) {
        producer.join();
      }
    }
  } joiner{queue, producer};

  // Parallel cycle-model warm-up, restricted to workloads that actually
  // have traffic — idle tenants stay lazily memoized (their unbatched
  // baseline below is the only evaluation they pay).
  std::vector<bool> active(static_cast<std::size_t>(pool.workloads()), false);
  for (const Request& request : arrivals) {
    active[static_cast<std::size_t>(request.workload)] = true;
  }
  // Warm each active lane only up to *its* batch cap — a cap-1 lane never
  // forms a batch its policy forbids, so pre-evaluating larger sizes for
  // it would be wasted cold-start work. Lanes sharing a cap warm together.
  std::map<std::int64_t, std::vector<WorkloadId>> active_by_cap;
  for (int w = 0; w < pool.workloads(); ++w) {
    if (active[static_cast<std::size_t>(w)]) {
      active_by_cap[policies[static_cast<std::size_t>(w)].max_batch]
          .push_back(w);
    }
  }
  for (const auto& [cap, ids] : active_by_cap) {
    pool.WarmBatchSizes(cap, ids);
  }

  // Integrated forming + dispatch: each closed batch goes straight to the
  // earliest-available capable replica, and the pool's per-workload
  // availability feeds back into the former so lanes grow from backlog
  // while every replica that could take them is busy.
  MultiBatchFormer former(policies);
  if (obs != nullptr) {
    former.AttachMetrics(&obs->metrics);
  }
  std::vector<DispatchRecord> dispatches;
  std::int64_t started = 0;  // Requests whose batch already dispatched.
  const auto dispatch = [&](Batch&& batch) {
    // Backlog the batch sees at its start: arrivals in the system (the
    // stream is sorted, so count by binary search) minus requests already
    // sent to a replica.
    const double start =
        std::max(batch.formed_s, pool.EarliestFree(batch.workload));
    const auto arrived = static_cast<std::int64_t>(
        std::upper_bound(arrivals.begin(), arrivals.end(), start,
                         [](double t, const Request& r) {
                           return t < r.arrival_s;
                         }) -
        arrivals.begin());
    const DispatchRecord dr = pool.Dispatch(batch, &stats, arrived - started);
    dispatches.push_back(dr);
    started += batch.size();
    if (recorder != nullptr) {
      // Every phase stamp is resolved by dispatch time (enqueue == arrival
      // on the virtual timeline), so the spans are written once, complete.
      const auto close = static_cast<obs::BatchClose>(batch.close_reason);
      obs::BatchSpan bspan;
      bspan.batch_index = dr.batch_index;
      bspan.workload = dr.workload;
      bspan.replica = dr.replica;
      bspan.close = close;
      bspan.formed_s = batch.formed_s;
      bspan.start_s = dr.start_s;
      bspan.complete_s = dr.complete_s;
      bspan.size = dr.size;
      recorder->RecordBatch(bspan);
      for (const Request& r : batch.requests) {
        obs::RequestSpan span;
        span.request_id = r.id;
        span.workload = r.workload;
        span.close = close;
        span.arrival_s = r.arrival_s;
        span.formed_s = batch.formed_s;
        span.start_s = dr.start_s;
        span.complete_s = dr.complete_s;
        span.batch_index = dr.batch_index;
        span.replica = dr.replica;
        span.batch_size = static_cast<std::int32_t>(dr.size);
        recorder->RecordRequest(span);
      }
    }
  };

  // Mirror new ServeStats PoolEvents into the trace: periodic samples
  // become Chrome counter points, budget deferrals become autoscaler-track
  // instants (applied deltas get richer instants straight from the delta
  // in the tick loop below).
  std::size_t timeline_seen = 0;
  const auto sync_timeline = [&] {
    if (recorder == nullptr) {
      return;
    }
    const std::vector<PoolEvent>& timeline = stats.timeline();
    for (; timeline_seen < timeline.size(); ++timeline_seen) {
      const PoolEvent& event = timeline[timeline_seen];
      if (event.event.empty()) {
        obs::CounterSample sample;
        sample.t_s = event.t_s;
        sample.window_rate_rps = event.window_rate_rps;
        sample.active_replicas =
            static_cast<std::int32_t>(event.active_replicas);
        sample.queue_depth = event.queue_depth;
        recorder->RecordCounter(sample);
      } else if (event.event.rfind("budget exhausted", 0) == 0) {
        obs::InstantEvent instant;
        instant.t_s = event.t_s;
        instant.kind = obs::InstantKind::kAutoscalerDeferred;
        instant.detail = event.event;
        recorder->RecordInstant(std::move(instant));
      }
    }
  };
  const auto record_delta = [&](const PoolDelta& delta) {
    if (recorder == nullptr) {
      return;
    }
    obs::InstantEvent decision;
    decision.t_s = delta.t_s;
    decision.kind = obs::InstantKind::kAutoscalerDecision;
    decision.replica = delta.replica;
    decision.workload = delta.workload;
    decision.detail = delta.reason;
    recorder->RecordInstant(std::move(decision));
    obs::InstantKind kind = obs::InstantKind::kAutoscalerDecision;
    switch (delta.kind) {
      case PoolDeltaKind::kAddReplica:
        kind = obs::InstantKind::kReplicaAdded;
        break;
      case PoolDeltaKind::kRetireReplica:
        kind = obs::InstantKind::kReplicaDraining;
        break;
      case PoolDeltaKind::kRefitReplica:
        kind = obs::InstantKind::kReplicaRefit;
        break;
      case PoolDeltaKind::kSetBatchCap:
        return;  // No replica track to annotate.
    }
    obs::InstantEvent transition;
    transition.t_s = delta.t_s;
    transition.kind = kind;
    transition.replica = delta.replica;
    transition.workload = delta.workload;
    transition.detail = delta.reason;
    recorder->RecordInstant(std::move(transition));
  };

  // Virtual-time metrics-snapshot clock (obs on): one timeline point every
  // snapshot_interval_s, fired between arrivals like the autoscaler tick.
  const double snapshot_interval_s =
      obs != nullptr ? obs->options.snapshot_interval_s : 0.0;
  double next_snapshot_s = snapshot_interval_s;
  const auto snapshot_until = [&](double t) {
    if (obs == nullptr || snapshot_interval_s <= 0.0) {
      return;
    }
    while (next_snapshot_s <= t) {
      pool.PublishCacheMetrics();
      obs->metrics.TakeSnapshot(next_snapshot_s);
      next_snapshot_s += snapshot_interval_s;
    }
  };

  std::vector<PoolDelta> deltas;
  std::vector<double> busy_until(static_cast<std::size_t>(pool.workloads()),
                                 0.0);
  while (auto request = queue.Pop()) {
    // Control decisions scheduled at or before this arrival fire first —
    // the tick clock and the arrival stamps share one virtual timeline.
    // The arrival record only exists to feed the autoscaler's windowed
    // rate samples; static runs skip the bookkeeping (hot path).
    if (autoscaler != nullptr) {
      while (autoscaler->next_tick_s() <= request->arrival_s) {
        for (PoolDelta& delta : autoscaler->Tick(former, stats)) {
          record_delta(delta);
          deltas.push_back(std::move(delta));
        }
        sync_timeline();
      }
      stats.RecordArrival(request->workload, request->arrival_s);
    }
    snapshot_until(request->arrival_s);
    for (int w = 0; w < pool.workloads(); ++w) {
      busy_until[static_cast<std::size_t>(w)] = pool.EarliestFree(w);
    }
    for (Batch& batch : former.Add(*request, busy_until)) {
      dispatch(std::move(batch));
    }
  }
  // Run out the tick clock over the arrival-free tail, then flush.
  if (autoscaler != nullptr) {
    while (autoscaler->next_tick_s() <= options.duration_s) {
      for (PoolDelta& delta : autoscaler->Tick(former, stats)) {
        record_delta(delta);
        deltas.push_back(std::move(delta));
      }
      sync_timeline();
    }
  }
  snapshot_until(options.duration_s);
  for (Batch& tail : former.Flush(options.duration_s + options.max_wait_s)) {
    dispatch(std::move(tail));
  }

  // Utilization denominators: each replica against its provisioned span
  // (a no-op for static pools, whose spans are the whole horizon).
  if (autoscaler != nullptr) {
    for (int r = 0; r < pool.size(); ++r) {
      stats.SetReplicaSpan(r, pool.AddedAt(r), pool.RetiredAt(r));
      // Retire instants are only knowable post-run: a drained replica's
      // actual retire time is its busy horizon at drain, not the decision.
      const double retired = pool.RetiredAt(r);
      if (recorder != nullptr && std::isfinite(retired)) {
        obs::InstantEvent instant;
        instant.t_s = retired;
        instant.kind = obs::InstantKind::kReplicaRetired;
        instant.replica = r;
        instant.detail = "replica " + std::to_string(r) + " retired";
        recorder->RecordInstant(std::move(instant));
      }
    }
  }

  ServeReport report;
  report.generated_requests = static_cast<std::int64_t>(arrivals.size());
  for (int w = 0; w < pool.workloads(); ++w) {
    // The unbatched baseline runs on the first replica deployed for w.
    for (int r = 0; r < pool.size(); ++r) {
      if (pool.CanServe(r, w)) {
        report.single_request_by_workload.push_back(
            pool.BatchSeconds(r, w, 1));
        break;
      }
    }
  }
  report.single_request_s = report.single_request_by_workload.empty()
                                ? 0.0
                                : report.single_request_by_workload.front();
  report.dispatches = std::move(dispatches);
  report.deltas = std::move(deltas);
  report.summary = stats.Summarize(
      EffectiveOfferedRps(options, report.generated_requests),
      options.duration_s);
  report.replica_seconds = pool.ReplicaSeconds(report.summary.horizon_s);
  if (obs != nullptr) {
    // Final metrics point at the true horizon, then hand the bundle back
    // for export.
    pool.PublishCacheMetrics();
    obs->metrics.TakeSnapshot(report.summary.horizon_s);
    obs->meta.replicas = pool.size();
    obs->meta.duration_s = options.duration_s;
    report.obs = std::move(obs);
  }
  return report;
}

}  // namespace

ServeReport RunSyntheticServe(const DataflowGraph& dfg,
                              const std::vector<AcceleratorDesign>& designs,
                              const ServeOptions& options) {
  NSF_CHECK_MSG(!options.autoscale,
                "autoscaling requires the multi-tenant engine — serve a "
                "mix or a plan (docs/AUTOSCALING.md)");
  const std::vector<Request> arrivals = SyntheticArrivals(options);
  ServerPool pool(designs, dfg, options.worker_threads);
  ServeStats stats(pool.size());
  std::shared_ptr<obs::Observability> obs;
  if (options.trace.enabled) {
    obs = std::make_shared<obs::Observability>(options.trace);
    obs->meta.workload_names = {"workload 0"};
  }
  return RunPipeline(pool, stats, arrivals, options, nullptr, std::move(obs));
}

ServeReport RunSyntheticServe(const WorkloadRegistry& registry,
                              const std::vector<ReplicaSpec>& replicas,
                              const std::vector<WorkloadShare>& mix,
                              const ServeOptions& options) {
  NSF_CHECK_MSG(registry.size() >= 1, "registry has no workloads");
  NSF_CHECK_MSG(!mix.empty(), "workload mix cannot be empty");

  // Resolve names -> per-id shares. Unlisted workloads get zero traffic
  // (they are still compiled and servable — just idle this run).
  std::vector<double> shares(static_cast<std::size_t>(registry.size()), 0.0);
  for (const WorkloadShare& entry : mix) {
    NSF_CHECK_MSG(entry.share > 0.0, "mix shares must be positive");
    const WorkloadId id = registry.IdOf(entry.workload);
    NSF_CHECK_MSG(shares[static_cast<std::size_t>(id)] == 0.0,
                  "workload '" + entry.workload + "' listed twice in mix");
    shares[static_cast<std::size_t>(id)] = entry.share;
  }

  const std::vector<Request> arrivals =
      SyntheticArrivals(options, shares, registry.Names());
  ServerPool pool(replicas, registry.Dataflows(), options.worker_threads);
  ServeStats stats(pool.size(), registry.size());
  for (WorkloadId w = 0; w < registry.size(); ++w) {
    stats.SetWorkloadName(w, registry.NameOf(w));
  }
  std::shared_ptr<obs::Observability> obs;
  if (options.trace.enabled) {
    obs = std::make_shared<obs::Observability>(options.trace);
    obs->meta.workload_names = registry.Names();
  }
  if (options.autoscale) {
    for (const ReplicaSpec& spec : replicas) {
      NSF_CHECK_MSG(spec.workloads.size() == 1,
                    "autoscaling needs a partitioned pool (every replica "
                    "dedicated to exactly one workload) — `nsflow plan` "
                    "emits one, or pass --partition with --mix");
    }
    Autoscaler autoscaler(registry, mix, pool, options);
    return RunPipeline(pool, stats, arrivals, options, &autoscaler,
                       std::move(obs));
  }
  return RunPipeline(pool, stats, arrivals, options, nullptr, std::move(obs));
}

}  // namespace nsflow::serve
