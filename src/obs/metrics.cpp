#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace nsflow::obs {

double Histogram::Boundary(int i) {
  NSF_CHECK_MSG(i >= 0 && i <= kBucketCount, "bucket index out of range");
  return kBase * std::exp2(static_cast<double>(i) /
                           static_cast<double>(kBucketsPerOctave));
}

int Histogram::BucketFor(double value_s) {
  if (value_s < kBase) {
    return -1;
  }
  // floor(log2(v / base) * buckets_per_octave), nudged down when the value
  // sits exactly on a boundary that floating point rounded up past.
  int i = static_cast<int>(std::floor(std::log2(value_s / kBase) *
                                      static_cast<double>(kBucketsPerOctave)));
  i = std::clamp(i, 0, kBucketCount - 1);
  while (i > 0 && value_s < Boundary(i)) {
    --i;
  }
  while (i + 1 < kBucketCount && value_s >= Boundary(i + 1)) {
    ++i;
  }
  return i;
}

void Histogram::Observe(double value_s) {
  const int i = BucketFor(value_s);
  if (i < 0) {
    ++underflow_;
  } else {
    ++buckets_[static_cast<std::size_t>(i)];
  }
  if (count_ == 0) {
    min_s_ = value_s;
    max_s_ = value_s;
  } else {
    min_s_ = std::min(min_s_, value_s);
    max_s_ = std::max(max_s_, value_s);
  }
  ++count_;
  sum_s_ += value_s;
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBucketCount; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
  underflow_ += other.underflow_;
  if (other.count_ > 0) {
    min_s_ = count_ > 0 ? std::min(min_s_, other.min_s_) : other.min_s_;
    max_s_ = count_ > 0 ? std::max(max_s_, other.max_s_) : other.max_s_;
  }
  count_ += other.count_;
  sum_s_ += other.sum_s_;
}

double Histogram::ValueAtPercentile(double p) const {
  NSF_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  if (count_ == 0) {
    return 0.0;
  }
  const auto rank = static_cast<std::int64_t>(std::max(
      1.0, std::ceil(p / 100.0 * static_cast<double>(count_))));
  std::int64_t seen = underflow_;
  if (rank <= seen) {
    return kBase;  // Underflow bucket's upper edge.
  }
  for (int i = 0; i < kBucketCount; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (rank <= seen) {
      return Boundary(i + 1);
    }
  }
  return max_s_;
}

Json Histogram::ToJson() const {
  JsonObject schema;
  schema["base_s"] = Json(kBase);
  schema["buckets_per_octave"] = Json(kBucketsPerOctave);
  schema["bucket_count"] = Json(kBucketCount);
  schema["version"] = Json(kSchemaVersion);

  // Sparse: [bucket index, count] pairs, ascending index.
  JsonArray nonzero;
  for (int i = 0; i < kBucketCount; ++i) {
    if (buckets_[static_cast<std::size_t>(i)] != 0) {
      nonzero.push_back(Json(JsonArray{
          Json(i), Json(buckets_[static_cast<std::size_t>(i)])}));
    }
  }

  JsonObject out;
  out["schema"] = Json(std::move(schema));
  out["count"] = Json(count_);
  out["underflow"] = Json(underflow_);
  out["sum_s"] = Json(sum_s_);
  out["min_s"] = Json(min_s());
  out["max_s"] = Json(max_s());
  out["buckets"] = Json(std::move(nonzero));
  return Json(std::move(out));
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

Json MetricsSnapshot::ToJson() const {
  JsonObject counter_values;
  for (const auto& [name, value] : counters) {
    counter_values[*name] = Json(value);
  }
  JsonObject gauge_values;
  for (const auto& [name, value] : gauges) {
    gauge_values[*name] = Json(value);
  }
  JsonObject histogram_values;
  for (const auto& [name, histogram] : histograms) {
    histogram_values[*name] = histogram.ToJson();
  }
  JsonObject out;
  out["counters"] = Json(std::move(counter_values));
  out["gauges"] = Json(std::move(gauge_values));
  out["histograms"] = Json(std::move(histogram_values));
  return Json(std::move(out));
}

Json MetricsRegistry::Snapshot() const {
  JsonObject counters;
  for (const auto& [name, counter] : counters_) {
    counters[name] = Json(counter->value());
  }
  JsonObject gauges;
  for (const auto& [name, gauge] : gauges_) {
    gauges[name] = Json(gauge->value());
  }
  JsonObject histograms;
  for (const auto& [name, histogram] : histograms_) {
    histograms[name] = histogram->ToJson();
  }
  JsonObject out;
  out["counters"] = Json(std::move(counters));
  out["gauges"] = Json(std::move(gauges));
  out["histograms"] = Json(std::move(histograms));
  return Json(std::move(out));
}

void MetricsRegistry::TakeSnapshot(double t_s) {
  MetricsSnapshot snapshot;
  snapshot.t_s = t_s;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(&name, counter->value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(&name, gauge->value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(&name, *histogram);
  }
  timeline_.push_back(std::move(snapshot));
}

Json MetricsRegistry::TimelineJson() const {
  JsonArray points;
  for (const MetricsSnapshot& snapshot : timeline_) {
    JsonObject point;
    point["t_s"] = Json(snapshot.t_s);
    point["values"] = snapshot.ToJson();
    points.push_back(Json(std::move(point)));
  }
  JsonObject out;
  out["format"] = Json("nsflow-metrics");
  out["version"] = Json(1);
  out["snapshots"] = Json(std::move(points));
  return Json(std::move(out));
}

}  // namespace nsflow::obs
