// Tests for FPGA device descriptions, the resource model (Table III), and
// the RTL emitter.
#include <gtest/gtest.h>

#include "dse/dse.h"
#include "fpga/device.h"
#include "fpga/resource_model.h"
#include "fpga/rtl_emitter.h"
#include "workloads/builders.h"

namespace nsflow {
namespace {

AcceleratorDesign NvsaDesign() {
  const OperatorGraph graph = workloads::MakeNvsa();
  const DataflowGraph dfg(graph);
  return RunTwoPhaseDse(dfg, {}).design;
}

TEST(FpgaDeviceTest, InventoriesMatchDatasheets) {
  const FpgaDevice u250 = U250();
  EXPECT_EQ(u250.dsp, 12288);
  EXPECT_EQ(u250.bram18, 5376);
  EXPECT_EQ(u250.uram, 1280);
  const FpgaDevice zcu = Zcu104();
  EXPECT_LT(zcu.dsp, u250.dsp);
  EXPECT_GT(zcu.BramBytes(), 0.0);
}

TEST(ResourceModelTest, NvsaDesignFitsU250) {
  const auto design = NvsaDesign();
  const auto report = EstimateResources(design, U250());
  EXPECT_TRUE(report.fits);
  // Table III band: the U250 deployment is DSP-heavy (89%) with LUT/FF in
  // the 40-60% range. Allow generous bands around the paper's numbers.
  EXPECT_GT(report.dsp_util, 0.5);
  EXPECT_LE(report.dsp_util, 1.0);
  EXPECT_GT(report.lut_util, 0.2);
  EXPECT_LT(report.lut_util, 0.9);
  EXPECT_GT(report.ff_util, 0.2);
  EXPECT_LT(report.ff_util, 0.9);
  EXPECT_GT(report.bram_util, 0.05);
  EXPECT_LT(report.bram_util, 0.8);
  EXPECT_GT(report.uram_util, 0.01);
  EXPECT_LT(report.uram_util, 0.5);
}

TEST(ResourceModelTest, ClockHoldsAtModerateUtilization) {
  const auto design = NvsaDesign();
  const auto report = EstimateResources(design, U250());
  // Paper Table III: 272 MHz closure on the U250.
  EXPECT_DOUBLE_EQ(report.achievable_clock_hz, 272e6);
}

TEST(ResourceModelTest, SameDesignOverflowsZcu104) {
  // An 8192-PE design cannot fit a ZCU104-class part; the model must say so.
  const auto design = NvsaDesign();
  const auto report = EstimateResources(design, Zcu104());
  EXPECT_FALSE(report.fits);
  EXPECT_GT(report.dsp_util, 1.0);
}

TEST(ResourceModelTest, MixedPrecisionCostsMoreThanUniform) {
  auto design = NvsaDesign();
  design.precision = PrecisionPolicy::MixedNvsa();
  const auto mixed = EstimateResources(design, U250());
  design.precision = PrecisionPolicy::Uniform(Precision::kINT8);
  const auto uniform = EstimateResources(design, U250());
  EXPECT_GT(mixed.dsp, uniform.dsp);
  EXPECT_GT(mixed.lut, uniform.lut);
  EXPECT_GT(mixed.ff, uniform.ff);
}

TEST(ResourceModelTest, ResourcesScaleWithArraySize) {
  auto design = NvsaDesign();
  const auto base = EstimateResources(design, U250());
  design.array.count /= 2;
  const auto half = EstimateResources(design, U250());
  EXPECT_LT(half.dsp, base.dsp);
  EXPECT_LT(half.lut, base.lut);
  EXPECT_LT(half.bram18, base.bram18);
}

TEST(RtlEmitterTest, ParameterHeaderCarriesTheDesign) {
  const auto design = NvsaDesign();
  const std::string header = EmitParameterHeader(design);
  EXPECT_NE(header.find("SUB_ARRAY_H   = " +
                        std::to_string(design.array.height)),
            std::string::npos);
  EXPECT_NE(header.find("NUM_SUBARRAYS = " +
                        std::to_string(design.array.count)),
            std::string::npos);
  EXPECT_NE(header.find("SIMD_WIDTH"), std::string::npos);
  EXPECT_NE(header.find("`ifndef NSFLOW_PARAMS_VH"), std::string::npos);
  EXPECT_NE(header.find("`endif"), std::string::npos);
}

TEST(RtlEmitterTest, TopLevelInstantiatesAllBlocks) {
  const auto design = NvsaDesign();
  const std::string top = EmitTopLevel(design);
  EXPECT_NE(top.find("module nsflow_top"), std::string::npos);
  EXPECT_NE(top.find("nsflow_subarray"), std::string::npos);
  EXPECT_NE(top.find("nsflow_simd"), std::string::npos);
  EXPECT_NE(top.find("u_mem_a1"), std::string::npos);
  EXPECT_NE(top.find("nsflow_uram_cache"), std::string::npos);
  EXPECT_NE(top.find("endmodule"), std::string::npos);
  // Balanced generate block.
  EXPECT_NE(top.find("generate"), std::string::npos);
  EXPECT_NE(top.find("endgenerate"), std::string::npos);
}

}  // namespace
}  // namespace nsflow
