// Traffic scenarios — arrival-trace generators beyond stationary Poisson.
//
// NSFlow-Serve's engine consumes a pre-generated arrival vector (virtual
// timestamps; see request.h), which keeps every run bit-reproducible under a
// fixed seed. A `ScenarioSpec` names the arrival *pattern* that vector is
// drawn from:
//
//   poisson   stationary Poisson at `qps` (the PR 1 default — the generator
//             here reproduces the original stream bit-for-bit).
//   diurnal   sinusoidal rate: qps * (1 + depth * sin(2π(t/period + phase))).
//             Models the day/night cycle compressed onto the run horizon.
//   bursty    MMPP-style two-state on/off modulation: exponential dwell
//             times, a hot on-state rate and a trickle off-state rate,
//             normalized so the long-run mean stays `qps`.
//   ramp      linearly growing rate qps*(from + (to-from)*t/duration) —
//             a load ramp (or drain when to < from).
//   spike     flash crowd: baseline qps, multiplied by `mult` inside the
//             window [at, at+width).
//   closed    closed-loop clients: `clients` independent sessions, each
//             issuing its next request `think` (exponential) + `service`
//             (fixed residence estimate) after the previous one. Offered
//             load derives from the client count, not `qps`.
//   trace     replay a recorded arrival trace from a JSON file
//             (see ParseArrivalTraceJson for the schema).
//
// Every inhomogeneous-rate pattern samples by Lewis–Shedler thinning against
// the pattern's rate ceiling, drawing from one seeded RNG stream in a fixed
// order, so a (seed, spec) pair pins the whole (time, workload) trace.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/request.h"

namespace nsflow::serve {

enum class ScenarioKind {
  kPoisson,
  kDiurnal,
  kBursty,
  kRamp,
  kSpike,
  kClosedLoop,
  kTrace,
};

/// A parsed `--scenario` value: the pattern plus its numeric parameters.
/// Parameters not listed in the spec keep the defaults documented in
/// docs/SCENARIOS.md; unknown names are an error (typos must not silently
/// fall back to defaults).
struct ScenarioSpec {
  ScenarioKind kind = ScenarioKind::kPoisson;
  std::map<std::string, double> params;  // Deterministic iteration order.
  std::string trace_path;                // kTrace only.

  /// Parse "name" or "name:key=value,key=value" (e.g.
  /// "diurnal:period=0.5,depth=0.8", "trace:file=arrivals.json"). Throws on
  /// unknown scenario names and unknown parameter keys.
  static ScenarioSpec Parse(const std::string& text);

  /// Canonical round-trippable form ("diurnal:depth=0.8,period=0.5").
  /// Parse(ToString()) == *this.
  std::string ToString() const;

  /// The scenario's name without parameters ("diurnal").
  std::string Name() const;

  double Param(const std::string& key, double fallback) const;
  bool operator==(const ScenarioSpec& other) const {
    return kind == other.kind && params == other.params &&
           trace_path == other.trace_path;
  }
};

/// Instantaneous arrival rate of `spec` at virtual time `t` for a run driven
/// at `qps` over `duration_s` — the closed form the generators sample from
/// and the tests integrate against. Closed-loop and trace scenarios have no
/// open-loop rate function and throw.
double ScenarioRate(const ScenarioSpec& spec, double qps, double duration_s,
                    double t);

/// Mean of `ScenarioRate` over [0, duration_s) (analytic, not numeric):
/// the expected request count is this times `duration_s`. Closed-loop
/// returns the renewal rate clients/(think + service); trace throws.
double ScenarioMeanRate(const ScenarioSpec& spec, double qps,
                        double duration_s);

/// Mean of `ScenarioRate` over the window [t0, t1) ⊆ [0, duration_s)
/// (analytic, not numeric): the expected arrival count in the window is
/// this times (t1 - t0). This is the closed form the autoscaler's windowed
/// rate observations converge to — tests compare the two. Bursty returns
/// the long-run mean `qps` (the MMPP state sequence is stochastic, so a
/// window has no deterministic rate); closed-loop returns the renewal
/// rate; trace throws.
double ScenarioWindowMeanRate(const ScenarioSpec& spec, double qps,
                              double duration_s, double t0, double t1);

/// The scenario's rate ceiling — the instantaneous rate a pool must absorb
/// to hold a tail-latency SLO through the pattern's worst moment (diurnal
/// crest, burst on-state, ramp end, spike window). The capacity planner
/// provisions against this, not the mean. Closed-loop returns the renewal
/// rate (its arrivals are self-limiting); trace returns `qps` (a replayed
/// file has no closed form — drive planning with an explicit --qps).
double ScenarioPeakRate(const ScenarioSpec& spec, double qps,
                        double duration_s);

/// Generate the arrival trace for `spec`: virtual timestamps in [0,
/// duration_s), ids in time order, each arrival's workload drawn from
/// `shares` (normalized weights indexed by workload id) on the same RNG
/// stream. Bit-deterministic for a fixed (spec, qps, duration_s, seed,
/// shares) tuple. `{1.0}` is the single-workload share vector.
std::vector<Request> GenerateArrivals(const ScenarioSpec& spec, double qps,
                                      double duration_s, std::uint64_t seed,
                                      const std::vector<double>& shares);

/// Serialize an arrival trace to the replayable JSON form. `workload_names`
/// (indexed by WorkloadId) labels each arrival; pass an empty vector to
/// omit workload labels (single-workload traces).
std::string EmitArrivalTraceJson(const std::vector<Request>& arrivals,
                                 const std::vector<std::string>& workload_names);

/// Parse the replayable JSON trace:
///   {"arrivals": [{"t_s": 0.0012, "workload": "mlp"}, ...]}
/// `workload` is optional (defaults to id 0) and is resolved through
/// `workload_names` (its index is the WorkloadId); an unknown name throws.
/// Arrivals must be non-negative and ascending in time. Entries at or past
/// `duration_s` are dropped (the engine's flush horizon ends there);
/// pass an infinite duration to keep everything.
std::vector<Request> ParseArrivalTraceJson(
    const std::string& json_text,
    const std::vector<std::string>& workload_names, double duration_s);

}  // namespace nsflow::serve
