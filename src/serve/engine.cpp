#include "serve/engine.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <utility>

#include "common/error.h"
#include "common/rng.h"
#include "serve/batch_former.h"
#include "serve/request_queue.h"

namespace nsflow::serve {

std::vector<Request> SyntheticArrivals(const ServeOptions& options) {
  NSF_CHECK_MSG(options.qps > 0.0, "qps must be positive");
  NSF_CHECK_MSG(options.duration_s > 0.0, "duration must be positive");
  Rng rng(options.seed);
  std::vector<Request> arrivals;
  double now = 0.0;
  std::int64_t next_id = 0;
  while (true) {
    // Exponential inter-arrival times — memoryless open-loop traffic.
    now += -std::log(1.0 - rng.Uniform()) / options.qps;
    if (now >= options.duration_s) {
      break;
    }
    arrivals.push_back(Request{next_id++, now});
  }
  return arrivals;
}

ServeReport RunSyntheticServe(const DataflowGraph& dfg,
                              const std::vector<AcceleratorDesign>& designs,
                              const ServeOptions& options) {
  NSF_CHECK_MSG(options.max_batch >= 1, "max_batch must be positive");
  const std::vector<Request> arrivals = SyntheticArrivals(options);

  // Producer thread feeds the queue in arrival order; the consumer below
  // drains it into the batch former. FIFO + virtual timestamps keep the
  // result independent of how the two threads interleave.
  RequestQueue queue;
  std::thread producer([&] {
    for (const Request& request : arrivals) {
      if (!queue.Push(request)) {
        break;  // Queue closed under us — nothing left to feed.
      }
    }
    queue.Close();
  });

  ServerPool pool(designs, dfg, options.worker_threads);
  pool.WarmBatchSizes(options.max_batch);  // Parallel cycle-model warm-up.
  ServeStats stats(pool.size());

  // Integrated forming + dispatch: each closed batch goes straight to the
  // earliest-available replica, and the pool's availability feeds back into
  // the former so batches grow from backlog while all replicas are busy.
  BatchFormer former(BatchPolicy{options.max_batch, options.max_wait_s});
  std::vector<DispatchRecord> dispatches;
  std::int64_t started = 0;  // Requests whose batch already dispatched.
  const auto dispatch = [&](Batch&& batch) {
    // Backlog the batch sees at its start: arrivals in the system (the
    // stream is sorted, so count by binary search) minus requests already
    // sent to a replica.
    const double start = std::max(batch.formed_s, pool.EarliestFree());
    const auto arrived = static_cast<std::int64_t>(
        std::upper_bound(arrivals.begin(), arrivals.end(), start,
                         [](double t, const Request& r) {
                           return t < r.arrival_s;
                         }) -
        arrivals.begin());
    dispatches.push_back(pool.Dispatch(batch, &stats, arrived - started));
    started += batch.size();
  };

  while (auto request = queue.Pop()) {
    if (auto batch = former.Add(*request, pool.EarliestFree())) {
      dispatch(std::move(*batch));
    }
  }
  if (auto tail = former.Flush(options.duration_s + options.max_wait_s)) {
    dispatch(std::move(*tail));
  }
  producer.join();

  ServeReport report;
  report.generated_requests = static_cast<std::int64_t>(arrivals.size());
  report.single_request_s = pool.BatchSeconds(0, 1);
  report.dispatches = std::move(dispatches);
  report.summary = stats.Summarize(options.qps, options.duration_s);
  return report;
}

}  // namespace nsflow::serve
