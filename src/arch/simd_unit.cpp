#include "arch/simd_unit.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "model/analytical.h"

namespace nsflow::arch {

SimdUnit::SimdUnit(std::int64_t width) : width_(width) {
  NSF_CHECK_MSG(width >= 1, "SIMD width must be positive");
}

double SimdUnit::Charge(double elems) {
  const double cycles = SimdCycles(elems, width_);
  total_cycles_ += cycles;
  total_elems_ += elems;
  return cycles;
}

SimdRun SimdUnit::RunUnary(SimdOp op, std::span<float> data, float arg0,
                           float arg1) {
  SimdRun run;
  switch (op) {
    case SimdOp::kRelu:
      for (float& v : data) {
        v = std::max(0.0f, v);
      }
      break;
    case SimdOp::kScale:
      for (float& v : data) {
        v *= arg0;
      }
      break;
    case SimdOp::kClamp:
      for (float& v : data) {
        v = std::min(arg1, std::max(arg0, v));
      }
      break;
    case SimdOp::kExp:
      for (float& v : data) {
        v = std::exp(v);
      }
      break;
    case SimdOp::kTanh:
      for (float& v : data) {
        v = std::tanh(v);
      }
      break;
    case SimdOp::kSoftmax: {
      // Numerically stable: subtract the max, exponentiate, normalize.
      // Three passes => three lane-sweeps of cycles.
      float max_v = -std::numeric_limits<float>::infinity();
      for (const float v : data) {
        max_v = std::max(max_v, v);
      }
      double sum = 0.0;
      for (float& v : data) {
        v = std::exp(v - max_v);
        sum += v;
      }
      const auto inv = static_cast<float>(1.0 / sum);
      for (float& v : data) {
        v *= inv;
      }
      run.cycles = Charge(3.0 * static_cast<double>(data.size()));
      return run;
    }
    default:
      throw Error("SimdUnit::RunUnary: not a unary op");
  }
  run.cycles = Charge(static_cast<double>(data.size()));
  return run;
}

SimdRun SimdUnit::RunBinary(SimdOp op, std::span<const float> a,
                            std::span<const float> b, std::span<float> out) {
  NSF_CHECK_MSG(a.size() == b.size() && a.size() == out.size(),
                "binary SIMD op requires equal spans");
  SimdRun run;
  switch (op) {
    case SimdOp::kAdd:
      for (std::size_t i = 0; i < a.size(); ++i) {
        out[i] = a[i] + b[i];
      }
      break;
    case SimdOp::kMul:
      for (std::size_t i = 0; i < a.size(); ++i) {
        out[i] = a[i] * b[i];
      }
      break;
    default:
      throw Error("SimdUnit::RunBinary: not a binary op");
  }
  run.cycles = Charge(static_cast<double>(a.size()));
  return run;
}

SimdRun SimdUnit::RunReduce(SimdOp op, std::span<const float> a,
                            std::span<const float> b) {
  SimdRun run;
  double acc = 0.0;
  switch (op) {
    case SimdOp::kSum:
      for (const float v : a) {
        acc += v;
      }
      break;
    case SimdOp::kNorm:
      for (const float v : a) {
        acc += static_cast<double>(v) * v;
      }
      acc = std::sqrt(acc);
      break;
    case SimdOp::kDot:
      NSF_CHECK_MSG(b.size() == a.size(), "dot requires equal spans");
      for (std::size_t i = 0; i < a.size(); ++i) {
        acc += static_cast<double>(a[i]) * b[i];
      }
      break;
    default:
      throw Error("SimdUnit::RunReduce: not a reduction op");
  }
  run.scalar_result = acc;
  // Tree reduction: one sweep through the lanes plus log2(width) combine.
  run.cycles = Charge(static_cast<double>(a.size()));
  return run;
}

}  // namespace nsflow::arch
