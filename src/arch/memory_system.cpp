#include "arch/memory_system.h"

namespace nsflow::arch {

void MemoryBlock::Stage(double bytes) {
  const int shadow = 1 - active_;
  NSF_CHECK_MSG(occupancy_[shadow] + bytes <= capacity_ + 0.5,
                name_ + ": staging overflows the shadow buffer");
  occupancy_[shadow] += bytes;
  bytes_written_ += bytes;
}

void MemoryBlock::Swap() {
  occupancy_[active_] = 0.0;
  active_ = 1 - active_;
}

void MemoryBlock::Read(double bytes) { bytes_read_ += bytes; }

void MemoryBlock::Write(double bytes) {
  NSF_CHECK_MSG(occupancy_[active_] + bytes <= capacity_ + 0.5,
                name_ + ": write overflows the active buffer");
  occupancy_[active_] += bytes;
  bytes_written_ += bytes;
}

void MemoryBlock::Clear() { occupancy_[active_] = 0.0; }

MemorySystem::MemorySystem(const MemoryConfig& config)
    : mem_a1_("MemA1", config.mem_a1_bytes),
      mem_a2_("MemA2", config.mem_a2_bytes),
      mem_b_("MemB", config.mem_b_bytes),
      mem_c_("MemC", config.mem_c_bytes),
      cache_("Cache", config.cache_bytes) {}

void MemorySystem::MergeMemA() { merged_ = true; }

void MemorySystem::SplitMemA() { merged_ = false; }

double MemorySystem::MemANnCapacity() const {
  return merged_ ? mem_a1_.capacity() + mem_a2_.capacity()
                 : mem_a1_.capacity();
}

double MemorySystem::DramTransfer(double bytes) {
  NSF_CHECK_MSG(bytes >= 0.0, "negative DRAM transfer");
  const double cycles = bytes / bytes_per_cycle_;
  dram_bytes_ += bytes;
  dram_cycles_ += cycles;
  return cycles;
}

void MemorySystem::set_bytes_per_cycle(double bpc) {
  NSF_CHECK_MSG(bpc > 0.0, "bytes per cycle must be positive");
  bytes_per_cycle_ = bpc;
}

}  // namespace nsflow::arch
