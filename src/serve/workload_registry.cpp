#include "serve/workload_registry.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "graph/trace.h"
#include "workloads/builders.h"

namespace nsflow::serve {

std::uint64_t CompileCache::ContentHash(const OperatorGraph& graph) {
  // FNV-1a 64-bit over the canonical trace serialization: cheap, stable,
  // and insensitive to how the graph object was produced (builder, JSON
  // parse, copy) as long as the content matches.
  const std::string trace = EmitJsonTrace(graph, /*indent=*/0);
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : trace) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::shared_ptr<const CompiledDesign> CompileCache::GetOrCompile(
    const OperatorGraph& graph) {
  const std::uint64_t key = ContentHash(graph);
  {
    // Warm hits ride the reader lock — repeat registrations of known
    // content proceed concurrently.
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Compile outside the lock — the frontend (DSE included) is the expensive
  // part and must not serialize unrelated registrations. A concurrent
  // compile of the same content is wasted work, not a correctness problem:
  // the first insert wins below.
  auto compiled = std::make_shared<CompiledDesign>(
      compiler_.Compile(OperatorGraph(graph)));
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto [it, inserted] = cache_.emplace(key, std::move(compiled));
  if (inserted) {
    misses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second;
}

std::int64_t CompileCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<std::int64_t>(cache_.size());
}

WorkloadId WorkloadRegistry::Register(const std::string& name,
                                      OperatorGraph graph) {
  NSF_CHECK_MSG(!name.empty(), "workload name cannot be empty");
  const auto existing = by_name_.find(name);
  if (existing != by_name_.end()) {
    const WorkloadId id = existing->second;
    NSF_CHECK_MSG(
        CompileCache::ContentHash(graph) ==
            CompileCache::ContentHash(*designs_[static_cast<std::size_t>(id)]
                                           ->graph),
        "workload '" + name + "' already registered with different content");
    return id;
  }
  auto compiled = cache_.GetOrCompile(graph);
  const auto id = static_cast<WorkloadId>(designs_.size());
  names_.push_back(name);
  designs_.push_back(std::move(compiled));
  by_name_.emplace(name, id);
  return id;
}

WorkloadId WorkloadRegistry::RegisterBuiltin(const std::string& name) {
  if (name == "mlp") {
    return Register(name, workloads::MakeMlp());
  }
  if (name == "resnet18") {
    return Register(name, workloads::MakeResnet18Classifier());
  }
  if (name == "nvsa") {
    return Register(name, workloads::MakeNvsa());
  }
  if (name == "mimonet") {
    return Register(name, workloads::MakeMimonet());
  }
  if (name == "lvrf") {
    return Register(name, workloads::MakeLvrf());
  }
  if (name == "prae") {
    return Register(name, workloads::MakePrae());
  }
  std::string known;
  for (const std::string& builtin : BuiltinNames()) {
    known += (known.empty() ? "" : ", ") + builtin;
  }
  throw Error("unknown built-in workload '" + name + "' (known: " + known +
              ")");
}

WorkloadId WorkloadRegistry::RegisterJsonTrace(const std::string& name,
                                               const std::string& trace_json) {
  return Register(name, ParseJsonTrace(trace_json));
}

bool WorkloadRegistry::Contains(const std::string& name) const {
  return by_name_.find(name) != by_name_.end();
}

WorkloadId WorkloadRegistry::IdOf(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    throw Error("workload '" + name + "' is not registered");
  }
  return it->second;
}

const std::string& WorkloadRegistry::NameOf(WorkloadId id) const {
  NSF_CHECK_MSG(id >= 0 && id < size(), "workload id out of range");
  return names_[static_cast<std::size_t>(id)];
}

const CompiledDesign& WorkloadRegistry::compiled(WorkloadId id) const {
  NSF_CHECK_MSG(id >= 0 && id < size(), "workload id out of range");
  return *designs_[static_cast<std::size_t>(id)];
}

const DataflowGraph& WorkloadRegistry::dataflow(WorkloadId id) const {
  return *compiled(id).dataflow;
}

std::vector<const DataflowGraph*> WorkloadRegistry::Dataflows() const {
  std::vector<const DataflowGraph*> dfgs;
  dfgs.reserve(designs_.size());
  for (const auto& design : designs_) {
    dfgs.push_back(design->dataflow.get());
  }
  return dfgs;
}

AcceleratorDesign WorkloadRegistry::ProvisionDesign(
    WorkloadId base, const std::vector<WorkloadId>& served) const {
  AcceleratorDesign design = compiled(base).design();
  std::vector<WorkloadId> ids = served;
  if (ids.empty()) {
    for (WorkloadId w = 0; w < size(); ++w) {
      ids.push_back(w);
    }
  }
  for (const WorkloadId w : ids) {
    const auto& tenant = compiled(w).design().memory;
    auto& m = design.memory;
    m.mem_a1_bytes = std::max(m.mem_a1_bytes, tenant.mem_a1_bytes);
    m.mem_a2_bytes = std::max(m.mem_a2_bytes, tenant.mem_a2_bytes);
    m.mem_b_bytes = std::max(m.mem_b_bytes, tenant.mem_b_bytes);
    m.mem_c_bytes = std::max(m.mem_c_bytes, tenant.mem_c_bytes);
    m.cache_bytes = std::max(m.cache_bytes, tenant.cache_bytes);
    // The controller double-buffers filters in MemA1: the largest filter of
    // every tenant must fit in half of it, whatever memory-merge mode the
    // tenant's own DSE assumed.
    for (const auto& layer : dataflow(w).layers()) {
      m.mem_a1_bytes = std::max(m.mem_a1_bytes, 2.0 * layer.weight_bytes);
    }
  }
  return design;
}

std::vector<ReplicaSpec> WorkloadRegistry::ReplicaSpecs(
    int replicas, bool partitioned) const {
  NSF_CHECK_MSG(size() >= 1, "registry has no workloads");
  NSF_CHECK_MSG(replicas >= 1, "need at least one replica");
  NSF_CHECK_MSG(!partitioned || replicas >= size(),
                "a partitioned pool needs at least one replica per workload");
  std::vector<ReplicaSpec> specs;
  specs.reserve(static_cast<std::size_t>(replicas));
  for (int r = 0; r < replicas; ++r) {
    const auto w = static_cast<WorkloadId>(r % size());
    ReplicaSpec spec;
    spec.tuned_for = w;
    if (partitioned) {
      spec.design = compiled(w).design();
      spec.workloads = {w};
    } else {
      spec.design = ProvisionDesign(w);
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<std::string> WorkloadRegistry::BuiltinNames() {
  return {"mlp", "resnet18", "nvsa", "mimonet", "lvrf", "prae"};
}

}  // namespace nsflow::serve
