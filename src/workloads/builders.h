// Workload graph builders — the four representative NSAI models of Table I
// plus the parametric workloads used by the ablation and scalability studies.
//
// Each builder emits an `OperatorGraph` for ONE loop of the algorithm
// (`loop_count` records how many loops an end-to-end task runs), with exact
// im2col GEMM dims for the CNN frontend, VSA kernel dims for the symbolic
// backend, SIMD element counts, and byte footprints under the workload's
// deployed precision policy (Table III).
//
// Kernel counts and dimensions are calibrated against the paper's
// characterization anchors: NVSA symbolic ≈ 19% of FLOPs but the dominant
// GPU runtime share (Sec. II-B), symbolic working sets of tens of MB
// (Sec. I), MIMONet neural-dominated, PrAE abduction element-wise heavy.
#pragma once

#include <cstdint>
#include <string>

#include "graph/operator_graph.h"

namespace nsflow::workloads {

struct NvsaParams {
  std::int64_t input_size = 160;  // RAVEN panels, Listing 1: [16,·,160,160].
  std::int64_t batch = 16;        // 8 context + 8 candidate panels.
  std::int64_t blocks = 4;        // Block-code geometry [4,256] (Listing 1).
  std::int64_t block_dim = 256;
  std::int64_t vsa_stages = 10;   // Sequential symbolic phases per loop.
  std::int64_t vsa_parallel = 10; // Independent VSA nodes per phase.
  std::int64_t vsa_batch = 128;   // Bindings fused per node.
  std::int64_t dict_size = 1024;  // Cleanup dictionary entries.
  int loop_count = 2;             // Perception loop + reasoning refinement.
};
OperatorGraph MakeNvsa(const NvsaParams& params = {});

struct MimonetParams {
  std::int64_t input_size = 128;
  std::int64_t batch = 8;         // Superposed inputs.
  std::int64_t embed_dim = 512;   // Transformer-head projections.
  std::int64_t blocks = 4;
  std::int64_t block_dim = 256;
  std::int64_t vsa_nodes = 2;     // Binding/unbinding of the superposition.
  std::int64_t vsa_batch = 32;
  int loop_count = 1;
};
OperatorGraph MakeMimonet(const MimonetParams& params = {});

struct LvrfParams {
  std::int64_t input_size = 160;  // Frontend shared with NVSA (Table I).
  std::int64_t batch = 16;
  std::int64_t blocks = 4;
  std::int64_t block_dim = 256;
  std::int64_t rules = 12;        // Learnable rule set R.
  std::int64_t vsa_per_rule = 10; // Rule-evaluation VSA nodes per rule.
  std::int64_t vsa_batch = 96;
  int loop_count = 2;
};
OperatorGraph MakeLvrf(const LvrfParams& params = {});

struct PraeParams {
  std::int64_t input_size = 80;   // PrAE uses a small perception CNN.
  std::int64_t batch = 16;
  std::int64_t abduction_elems = 1'200'000'000;  // Probability-tensor traffic.
  std::int64_t abduction_stages = 8;
  int loop_count = 1;
};
OperatorGraph MakePrae(const PraeParams& params = {});

/// Purely-neural serving workloads — the small/medium tenants a multi-tenant
/// NSFlow-Serve pool mixes with the NSAI reasoning models (the paper's
/// Fig. 2 flow compiles classic NN workloads end-to-end through the same
/// frontend; the AdArray simply never folds into VSA mode).

struct MlpParams {
  std::int64_t input_dim = 784;   // MNIST-style flattened input.
  std::int64_t hidden_dim = 1024;
  std::int64_t hidden_layers = 3;
  std::int64_t classes = 10;
  std::int64_t batch = 16;
};
OperatorGraph MakeMlp(const MlpParams& params = {});

struct Resnet18ClassifierParams {
  std::int64_t input_size = 160;  // Square input edge.
  std::int64_t batch = 16;
  std::int64_t classes = 1000;
};
OperatorGraph MakeResnet18Classifier(
    const Resnet18ClassifierParams& params = {});

/// Ablation workload (Fig. 6): a ResNet-18 frontend plus enough VSA nodes
/// that symbolic data accounts for `symbolic_mem_fraction` of the total
/// memory footprint (0 disables the symbolic part entirely).
OperatorGraph MakeParametricNsai(double symbolic_mem_fraction,
                                 std::int64_t input_size = 160,
                                 std::int64_t batch = 16);

/// Scalability study (Sec. I claim: 150x symbolic scale -> ~4x runtime):
/// returns a copy of `graph` with every VSA node's vector count scaled.
OperatorGraph ScaleSymbolic(const OperatorGraph& graph, double factor);

/// The six reasoning tasks of Fig. 5.
enum class TaskId {
  kNvsaRaven,
  kNvsaIRaven,
  kNvsaPgm,
  kPraeRaven,
  kMimonetCvr,
  kLvrfSvrt,
};
inline constexpr TaskId kAllTasks[] = {
    TaskId::kNvsaRaven, TaskId::kNvsaIRaven, TaskId::kNvsaPgm,
    TaskId::kPraeRaven, TaskId::kMimonetCvr, TaskId::kLvrfSvrt};

const char* TaskName(TaskId id);
OperatorGraph MakeTask(TaskId id);

/// All four Table I workloads in paper order (for the Fig. 1 benches).
std::vector<OperatorGraph> MakeCharacterizationSuite();

}  // namespace nsflow::workloads
