// Shared fixture + digest machinery for the serve-engine differential
// harness (tests/event_core_test.cpp, docs/ENGINE.md).
//
// The event-core rewrite (ROADMAP item 4) replaced the engine's polling
// interleave with a discrete-event driver; the contract is that every
// fixed-seed run stays BYTE-identical — same stats table, same trace and
// metrics files, same exit code. This header pins that contract as data:
// each matrix configuration ({scenario} x {adversity} x {admission} x
// {autoscale} x {seed}) reduces a full serve run to one FNV-1a digest over
// every observable artifact, and the digests recorded from the pre-rewrite
// polling build are checked in under tests/golden/.
//
// Floating-point caveat: the digests cover double bit patterns, which are
// only portable across toolchains that evaluate libm (exp/log in the
// arrival draws) identically. `PlatformFingerprint` digests the fixture's
// arrival streams and cycle-model latencies; when it matches the recorded
// one, golden rows are compared strictly, otherwise the golden leg is
// skipped (the legacy-vs-event in-process comparison still runs — that one
// is toolchain-independent by construction).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "serve/engine.h"
#include "serve/request.h"
#include "serve/serve_stats.h"
#include "serve/workload_registry.h"

namespace nsflow::serve::diff {

// ---------------------------------------------------------------- matrix

inline const std::vector<std::string>& MatrixScenarios() {
  static const std::vector<std::string> kScenarios = {
      "poisson", "diurnal", "bursty", "ramp", "spike", "closed"};
  return kScenarios;
}

inline const std::vector<std::string>& MatrixAdversities() {
  static const std::vector<std::string> kAdversities = {
      "replica-fail", "straggler", "churn", "flash"};
  return kAdversities;
}

inline const std::vector<std::uint64_t>& MatrixSeeds() {
  static const std::vector<std::uint64_t> kSeeds = {7, 42, 1234};
  return kSeeds;
}

struct DiffConfig {
  std::string scenario = "poisson";
  std::string adversity = "none";
  bool admission = false;
  bool autoscale = false;
  std::uint64_t seed = 42;

  std::string Key() const {
    return scenario + "|" + adversity + "|" +
           (admission ? "adm" : "noadm") + "|" +
           (autoscale ? "as" : "noas") + "|s" + std::to_string(seed);
  }
};

/// The full differential matrix: {6 scenarios} x {4 adversity patterns} x
/// {admission on/off} x {autoscale on/off} x {3 seeds} = 288 rows, plus an
/// adversity-free slice (6 scenarios x on/off x on/off at seed 42) so the
/// fault-free fast path is pinned too.
inline std::vector<DiffConfig> MatrixConfigs() {
  std::vector<DiffConfig> configs;
  for (const std::string& scenario : MatrixScenarios()) {
    for (const std::string& adversity : MatrixAdversities()) {
      for (const bool admission : {false, true}) {
        for (const bool autoscale : {false, true}) {
          for (const std::uint64_t seed : MatrixSeeds()) {
            configs.push_back({scenario, adversity, admission, autoscale,
                               seed});
          }
        }
      }
    }
    for (const bool admission : {false, true}) {
      for (const bool autoscale : {false, true}) {
        configs.push_back({scenario, "none", admission, autoscale, 42});
      }
    }
  }
  return configs;
}

// --------------------------------------------------------------- fixture

/// One registry + partitioned two-replica pool shared by every matrix row
/// (autoscaled rows require the partitioned shape). Building the registry
/// compiles both workloads once; the per-row ServerPool is constructed
/// inside RunSyntheticServe from the spec list.
struct DiffFixture {
  DiffFixture() {
    registry.RegisterBuiltin("mlp");
    registry.RegisterBuiltin("resnet18");
    replicas = registry.ReplicaSpecs(2, /*partitioned=*/true);
    mix = {{"mlp", 0.6}, {"resnet18", 0.4}};
  }

  WorkloadRegistry registry;
  std::vector<ReplicaSpec> replicas;
  std::vector<WorkloadShare> mix;
};

inline ServeOptions OptionsFor(const DiffConfig& config) {
  ServeOptions options;
  options.qps = 400.0;
  options.duration_s = 2.0;
  options.max_batch = 8;
  options.seed = config.seed;
  options.scenario = ScenarioSpec::Parse(config.scenario);
  options.adversity = AdversitySpec::Parse(config.adversity);
  if (config.admission) {
    options.admission = AdmissionSpec::Parse("guard");
    options.tiers = {SlaTier::kCritical, SlaTier::kBatch};
  }
  options.autoscale = config.autoscale;
  options.trace.enabled = true;
  options.trace.snapshot_interval_s = 0.25;
  return options;
}

// ---------------------------------------------------------------- digest

inline std::uint64_t FnvMix(std::uint64_t hash, const char* data,
                            std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ULL;
  }
  return hash;
}

inline std::uint64_t Fnv(const std::string& text) {
  return FnvMix(14695981039346656037ULL, text.data(), text.size());
}

inline std::string HexDigest(std::uint64_t hash) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buf);
}

/// Full-precision double rendering: %.17g round-trips every finite bit
/// pattern, so two runs digest equal iff their doubles are bit-equal.
inline std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

/// The run's exit code under the CLI's admission contract — delegated to
/// serve::AdmissionExitCode (admission.h) so the harness digests exactly
/// what the CLI would exit with.
inline int AdmissionExitCodeOf(const ServeReport& report) {
  return AdmissionExitCode(report.admission);
}

/// Serializes every observable artifact of a run — the stats epilogue
/// table, per-batch dispatch records, autoscaler deltas, admission rows,
/// the Chrome trace and metrics JSON bytes, and the exit code — into the
/// digest source text. Byte-identical runs produce byte-identical text.
inline std::string SerializeReport(const ServeReport& report) {
  std::string out;
  out.reserve(1 << 20);
  out += "== stats\n";
  out += ServeStats::ToTable(report.summary);
  out += "generated=" + std::to_string(report.generated_requests) + "\n";
  out += "single=" + Num(report.single_request_s) + "\n";
  for (const double s : report.single_request_by_workload) {
    out += "single_w=" + Num(s) + "\n";
  }
  out += "replica_seconds=" + Num(report.replica_seconds) + "\n";
  out += "expired_dispatched=" + std::to_string(report.expired_dispatched) +
         "\n";
  out += "== dispatches\n";
  for (const DispatchRecord& d : report.dispatches) {
    out += std::to_string(d.batch_index) + " r" + std::to_string(d.replica) +
           " w" + std::to_string(d.workload) + " " + Num(d.start_s) + " " +
           Num(d.complete_s) + " n" + std::to_string(d.size) + "\n";
  }
  out += "== deltas\n";
  for (const PoolDelta& d : report.deltas) {
    out += std::to_string(static_cast<int>(d.kind)) + " " + Num(d.t_s) +
           " w" + std::to_string(d.workload) + " r" +
           std::to_string(d.replica) + " cap" +
           std::to_string(d.batch_cap) + " " + d.reason + "\n";
  }
  out += "== admission\n";
  for (const AdmissionTenantSummary& row : report.admission) {
    out += row.tenant + " " + TierName(row.tier) + " " +
           std::to_string(row.offered) + " " + std::to_string(row.admitted) +
           " " + std::to_string(row.shed_quota) + " " +
           std::to_string(row.shed_overload) + " " +
           std::to_string(row.expired) + " " + std::to_string(row.retried) +
           "\n";
  }
  out += "exit=" + std::to_string(AdmissionExitCodeOf(report)) + "\n";
  if (report.obs != nullptr) {
    out += "== trace\n";
    out += report.obs->ChromeTraceJson();
    out += "\n== metrics\n";
    out += report.obs->MetricsJson();
    out += "\n";
  }
  return out;
}

struct RunResult {
  std::uint64_t digest = 0;
  int exit_code = 0;
};

/// Runs one matrix row through the public engine entry point and reduces
/// it to (digest, exit code).
inline RunResult RunConfig(const DiffFixture& fixture,
                           const ServeOptions& options) {
  const ServeReport report = RunSyntheticServe(fixture.registry,
                                               fixture.replicas, fixture.mix,
                                               options);
  RunResult result;
  result.digest = Fnv(SerializeReport(report));
  result.exit_code = AdmissionExitCodeOf(report);
  return result;
}

/// Digest of everything toolchain-dependent the matrix consumes: the
/// composed arrival streams (libm-driven RNG draws) for every scenario x
/// seed, and the fixture's cycle-model single-request latencies. Two
/// builds that agree on this fingerprint agree on every double entering
/// the pipeline, so their golden digests are comparable.
inline std::string PlatformFingerprint(const DiffFixture& fixture) {
  std::string out;
  out.reserve(1 << 20);
  const std::vector<double> shares = {0.6, 0.4};
  for (const std::string& scenario : MatrixScenarios()) {
    for (const std::uint64_t seed : MatrixSeeds()) {
      DiffConfig config;
      config.scenario = scenario;
      config.adversity = "flash";  // Exercises arrival-side superimposition.
      config.seed = seed;
      const ServeOptions options = OptionsFor(config);
      for (const Request& r :
           SyntheticArrivals(options, shares, fixture.registry.Names())) {
        out += Num(r.arrival_s) + ":" + std::to_string(r.workload) + "\n";
      }
    }
  }
  DiffConfig base;  // poisson/none/no-admission/no-autoscale, seed 42.
  ServeOptions options = OptionsFor(base);
  options.duration_s = 0.25;
  const ServeReport probe = RunSyntheticServe(fixture.registry,
                                              fixture.replicas, fixture.mix,
                                              options);
  for (const double s : probe.single_request_by_workload) {
    out += "lat=" + Num(s) + "\n";
  }
  return HexDigest(Fnv(out));
}

}  // namespace nsflow::serve::diff
