#include "vsa/block_code.h"

#include <cmath>

#include "common/error.h"
#include "common/math_util.h"
#include "quant/quantizer.h"

namespace nsflow::vsa {

HyperVector::HyperVector(BlockShape shape, Tensor data)
    : shape_(shape), data_(std::move(data)) {
  NSF_CHECK_MSG(data_.rank() == 2 && data_.dim(0) == shape.blocks &&
                    data_.dim(1) == shape.block_dim,
                "hypervector tensor shape mismatch");
}

std::span<const float> HyperVector::block(std::int64_t b) const {
  NSF_CHECK(b >= 0 && b < shape_.blocks);
  return {data_.data() + b * shape_.block_dim,
          static_cast<std::size_t>(shape_.block_dim)};
}

std::span<float> HyperVector::block(std::int64_t b) {
  NSF_CHECK(b >= 0 && b < shape_.blocks);
  return {data_.data() + b * shape_.block_dim,
          static_cast<std::size_t>(shape_.block_dim)};
}

void HyperVector::NormalizeBlocks() {
  for (std::int64_t b = 0; b < shape_.blocks; ++b) {
    auto blk = block(b);
    double norm_sq = 0.0;
    for (const float v : blk) {
      norm_sq += static_cast<double>(v) * v;
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > 0.0) {
      const float inv = static_cast<float>(1.0 / norm);
      for (float& v : blk) {
        v *= inv;
      }
    }
  }
}

double HyperVector::ByteSize(Precision p) const {
  return static_cast<double>(shape_.dim()) * BytesOf(p);
}

HyperVector RandomHyperVector(BlockShape shape, Rng& rng) {
  HyperVector v(shape);
  const double stddev = 1.0 / std::sqrt(static_cast<double>(shape.block_dim));
  for (std::int64_t b = 0; b < shape.blocks; ++b) {
    for (std::int64_t i = 0; i < shape.block_dim; ++i) {
      v.at(b, i) = static_cast<float>(rng.Gaussian(0.0, stddev));
    }
  }
  return v;
}

void CircularConvolve(std::span<const float> a, std::span<const float> b,
                      std::span<float> out) {
  const auto d = static_cast<std::int64_t>(a.size());
  NSF_CHECK_MSG(b.size() == a.size() && out.size() == a.size(),
                "circular convolution requires equal lengths");
  for (std::int64_t n = 0; n < d; ++n) {
    double acc = 0.0;
    for (std::int64_t k = 0; k < d; ++k) {
      acc += static_cast<double>(a[static_cast<std::size_t>(k)]) *
             static_cast<double>(b[static_cast<std::size_t>(Mod(n - k, d))]);
    }
    out[static_cast<std::size_t>(n)] = static_cast<float>(acc);
  }
}

void CircularCorrelate(std::span<const float> a, std::span<const float> b,
                       std::span<float> out) {
  const auto d = static_cast<std::int64_t>(a.size());
  NSF_CHECK_MSG(b.size() == a.size() && out.size() == a.size(),
                "circular correlation requires equal lengths");
  for (std::int64_t n = 0; n < d; ++n) {
    double acc = 0.0;
    for (std::int64_t k = 0; k < d; ++k) {
      acc += static_cast<double>(a[static_cast<std::size_t>(k)]) *
             static_cast<double>(b[static_cast<std::size_t>(Mod(k + n, d))]);
    }
    out[static_cast<std::size_t>(n)] = static_cast<float>(acc);
  }
}

HyperVector Bind(const HyperVector& a, const HyperVector& b) {
  NSF_CHECK_MSG(a.shape() == b.shape(), "binding requires equal shapes");
  HyperVector c(a.shape());
  for (std::int64_t blk = 0; blk < a.shape().blocks; ++blk) {
    CircularConvolve(a.block(blk), b.block(blk), c.block(blk));
  }
  return c;
}

HyperVector Unbind(const HyperVector& composite, const HyperVector& factor) {
  NSF_CHECK_MSG(composite.shape() == factor.shape(),
                "unbinding requires equal shapes");
  HyperVector out(composite.shape());
  for (std::int64_t blk = 0; blk < composite.shape().blocks; ++blk) {
    // corr(c, f)[n] = sum_k c[k] f[(k+n) mod d] = conv(c, involution(f))[n].
    CircularCorrelate(factor.block(blk), composite.block(blk), out.block(blk));
  }
  return out;
}

HyperVector Involution(const HyperVector& v) {
  HyperVector out(v.shape());
  const auto d = v.shape().block_dim;
  for (std::int64_t blk = 0; blk < v.shape().blocks; ++blk) {
    for (std::int64_t n = 0; n < d; ++n) {
      out.at(blk, n) = v.at(blk, Mod(-n, d));
    }
  }
  return out;
}

HyperVector Bundle(std::span<const HyperVector> inputs) {
  NSF_CHECK_MSG(!inputs.empty(), "cannot bundle zero vectors");
  HyperVector acc(inputs.front().shape());
  for (const auto& v : inputs) {
    NSF_CHECK_MSG(v.shape() == acc.shape(), "bundle requires equal shapes");
    acc.tensor() += v.tensor();
  }
  // Scale by 1/sqrt(n): keeps the expected norm of a bundle of unit-norm
  // random vectors at 1, so similarities stay comparable across bundle sizes.
  acc.tensor() *= static_cast<float>(1.0 / std::sqrt(static_cast<double>(inputs.size())));
  return acc;
}

double Similarity(const HyperVector& a, const HyperVector& b) {
  NSF_CHECK_MSG(a.shape() == b.shape(), "similarity requires equal shapes");
  double total = 0.0;
  for (std::int64_t blk = 0; blk < a.shape().blocks; ++blk) {
    const auto ba = a.block(blk);
    const auto bb = b.block(blk);
    double dot = 0.0;
    double na = 0.0;
    double nb = 0.0;
    for (std::size_t i = 0; i < ba.size(); ++i) {
      dot += static_cast<double>(ba[i]) * bb[i];
      na += static_cast<double>(ba[i]) * ba[i];
      nb += static_cast<double>(bb[i]) * bb[i];
    }
    const double denom = std::sqrt(na) * std::sqrt(nb);
    total += denom > 0.0 ? dot / denom : 0.0;
  }
  return total / static_cast<double>(a.shape().blocks);
}

double MatchProb(const HyperVector& a, const HyperVector& b) {
  return Clamp(Similarity(a, b), 0.0, 1.0);
}

std::vector<double> MatchProbBatched(const HyperVector& query,
                                     std::span<const HyperVector> dictionary) {
  std::vector<double> probs;
  probs.reserve(dictionary.size());
  for (const auto& entry : dictionary) {
    probs.push_back(MatchProb(query, entry));
  }
  return probs;
}

HyperVector QuantizeHyperVector(const HyperVector& v, Precision precision) {
  return HyperVector(v.shape(), FakeQuantize(v.tensor(), precision));
}

}  // namespace nsflow::vsa
