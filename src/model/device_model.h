// Baseline device models.
//
// HARDWARE SUBSTITUTION (see DESIGN.md): the paper measures Jetson TX2,
// Xavier NX, Xeon CPU, RTX 2080, a Coral edge TPU, a TPU-like 128x128
// systolic array, and a Xilinx DPU. We model each device as a roofline with
// per-kernel-category efficiency derates and a per-kernel launch overhead:
//
//   t_op = max( flops / (peak · eff_class), bytes / (bw · bw_eff_class) )
//          + launch_overhead
//
// Symbolic VSA kernels stream large vectors with almost no reuse, so their
// bandwidth efficiency is low and their compute efficiency lower still —
// exactly the paper's Fig. 1 observation (symbolic = 19% of NVSA FLOPs but
// ~87% of GPU runtime). The TPU-like systolic array and the DPU are instead
// modeled through the cycle equations of src/model/analytical.h so the
// array-utilization pathology of circular convolution on a rigid GEMM engine
// emerges structurally rather than from a tuned constant.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/operator_graph.h"
#include "model/analytical.h"

namespace nsflow {

/// Per-category fraction-of-peak efficiencies.
struct CategoryEfficiency {
  double matrix_nn = 0.6;
  double other_gemm = 0.5;
  double vector_vsa = 0.05;
  double elem_vsa = 0.05;
  double elem_nn = 0.2;

  double For(OpCategory category) const;
};

/// Roofline-style device description.
struct DeviceSpec {
  std::string name;
  double peak_flops = 1e12;        // Effective FLOP/s at the deployed precision.
  double mem_bandwidth = 100e9;    // byte/s
  double launch_overhead_s = 5e-6; // Per-kernel dispatch cost.
  CategoryEfficiency compute_eff;
  CategoryEfficiency bandwidth_eff;
  double tdp_watts = 0.0;
};

/// Per-domain runtime estimate for one loop of a workload.
struct WorkloadEstimate {
  double neuro_s = 0.0;
  double symbolic_s = 0.0;

  double total_s() const { return neuro_s + symbolic_s; }
  double symbolic_share() const {
    const double t = total_s();
    return t > 0.0 ? symbolic_s / t : 0.0;
  }
};

/// Interface implemented by all baseline devices.
class DeviceModel {
 public:
  virtual ~DeviceModel() = default;
  virtual const std::string& name() const = 0;
  /// Estimated end-to-end runtime of one loop of `graph`.
  virtual WorkloadEstimate Estimate(const OperatorGraph& graph) const = 0;
};

/// Roofline device (CPU, GPU, edge SoCs, edge TPU).
class RooflineDevice : public DeviceModel {
 public:
  explicit RooflineDevice(DeviceSpec spec) : spec_(std::move(spec)) {}

  const std::string& name() const override { return spec_.name; }
  const DeviceSpec& spec() const { return spec_; }
  WorkloadEstimate Estimate(const OperatorGraph& graph) const override;

  /// Runtime of a single op on this device (exposed for tests).
  double OpRuntime(const OpNode& node) const;

 private:
  DeviceSpec spec_;
};

/// A rigid monolithic weight-stationary systolic array (TPU-like baseline,
/// 128x128 by default). GEMMs run through Eq. (1) with N=1; circular
/// convolutions must be lowered to circulant-matrix GEMMs (d x d matrix per
/// vector), which is where the 8x inefficiency the paper reports comes from.
/// Neural and symbolic phases are strictly sequential (no folding).
class SystolicArrayDevice : public DeviceModel {
 public:
  SystolicArrayDevice(std::string name, ArrayConfig config, double clock_hz,
                      double mem_bandwidth, double launch_overhead_s = 2e-6);

  const std::string& name() const override { return name_; }
  WorkloadEstimate Estimate(const OperatorGraph& graph) const override;

  /// Cycles to run one op (exposed for the ablation bench).
  double OpCycles(const OpNode& node) const;

 private:
  std::string name_;
  ArrayConfig config_;  // count is 1 for a monolithic array.
  double clock_hz_;
  double mem_bandwidth_;
  double launch_overhead_s_;
};

}  // namespace nsflow
