#include "dse/design_space.h"

#include <cmath>

#include "common/error.h"

namespace nsflow {

DesignSpaceSize CountDesignSpace(const DataflowGraph& dfg, int m,
                                 int phase2_iters) {
  NSF_CHECK_MSG(m >= 2 && m <= 40, "m out of range");
  DesignSpaceSize size;

  // Hardware grid: H = 2^a, W = 2^b with a + b <= m (so H*W <= 2^m PEs in a
  // single sub-array). That is (m+1)(m+2)/2 points, the paper's m(m+1)/2 up
  // to the off-by-one of counting degenerate rows.
  std::int64_t hw_points = 0;
  std::int64_t hw_pruned = 0;
  for (int a = 0; a <= m; ++a) {
    for (int b = 0; a + b <= m; ++b) {
      ++hw_points;
      // Phase I aspect-ratio pruning: 1/4 <= H/W <= 16  =>  -2 <= a-b <= 4.
      if (a - b >= -2 && a - b <= 4) {
        ++hw_pruned;
      }
    }
  }
  size.hw_points_original = hw_points;
  size.hw_points_pruned = hw_pruned;

  // Mapping space: every AdArray node independently picks an allocation in
  // [1, N-1]. With the smallest sub-array (4 PEs), N can reach 2^m / 4.
  const double max_n = std::pow(2.0, m) / 4.0;
  const auto k = static_cast<double>(dfg.layers().size() + dfg.vsa_ops().size());
  const double log10_mapping = k * std::log10(std::max(2.0, max_n - 1.0));
  size.log10_original =
      std::log10(static_cast<double>(hw_points)) + log10_mapping;

  // Phase I: pruned (H, W) grid x static-partition scan over N̄l in [1, N).
  // Bounded by hw_pruned * max_n evaluations of the closed-form model.
  size.log10_phase1 =
      std::log10(static_cast<double>(hw_pruned) * std::max(2.0, max_n));

  // Phase II: Iter_max sweeps over the NN layers.
  const double phase2 =
      std::max(1.0, static_cast<double>(phase2_iters) *
                        static_cast<double>(dfg.layers().size()));
  size.log10_phase2 = std::log10(phase2);

  const double log10_total_pruned =
      std::log10(std::pow(10.0, size.log10_phase1) + phase2);
  size.log10_reduction = size.log10_original - log10_total_pruned;
  return size;
}

}  // namespace nsflow
