// Numeric precision taxonomy for NSFlow's adaptive mixed-precision compute
// (paper Sec. IV-D): FP16/FP8-class floats down to INT8/INT4 integers, with a
// "mixed" mode that runs the NN in INT8 and the symbolic pipeline in INT4 —
// the configuration Table III deploys for NVSA and LVRF.
#pragma once

#include <cstdint>
#include <string>

namespace nsflow {

enum class Precision : std::uint8_t {
  kFP32,
  kFP16,
  kINT8,
  kINT4,
};

/// Bits of storage per element.
int BitsOf(Precision p);

/// Bytes per element as used for memory-footprint accounting. INT4 packs two
/// elements per byte, so this returns a fractional value.
double BytesOf(Precision p);

const char* PrecisionName(Precision p);
Precision PrecisionFromName(const std::string& name);

/// A (neural precision, symbolic precision) pair — the unit the frontend lets
/// users choose per component. The paper's "MP" point is {INT8, INT4}.
struct PrecisionPolicy {
  Precision neural = Precision::kFP32;
  Precision symbolic = Precision::kFP32;

  static PrecisionPolicy Uniform(Precision p) { return {p, p}; }
  static PrecisionPolicy MixedNvsa() {
    return {Precision::kINT8, Precision::kINT4};
  }

  std::string Name() const;
  bool operator==(const PrecisionPolicy&) const = default;
};

/// Number of `precision` multiply-accumulates a single DSP48-class slice can
/// sustain per cycle. Models the INT8 double-pumping trick of [30]
/// (Langhammer et al., FCCM'20) that the paper cites for its DSP packing.
int MacsPerDsp(Precision p);

}  // namespace nsflow
