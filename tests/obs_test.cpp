// Observability tests (docs/OBSERVABILITY.md): pinned histogram bucket
// boundaries, bit-exact Chrome/binary trace round trips, ring-buffer
// eviction accounting, fixed-seed trace determinism of an autoscaled
// diurnal run, request/batch span invariants, and the structured logger's
// sink injection + level filter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "serve/engine.h"
#include "serve/workload_registry.h"

namespace nsflow::obs {
namespace {

// ---------------------------------------------------------------- histogram

TEST(ObsHistogramTest, BucketBoundariesArePinned) {
  // The schema is a versioned contract: these exact boundaries must hold
  // across commits or serialized histograms stop being comparable.
  EXPECT_EQ(Histogram::kSchemaVersion, 1);
  EXPECT_EQ(Histogram::kBucketsPerOctave, 4);
  EXPECT_EQ(Histogram::kBucketCount, 112);
  EXPECT_DOUBLE_EQ(Histogram::Boundary(0), 1e-6);
  // Whole octaves are exact powers of two of the base.
  EXPECT_DOUBLE_EQ(Histogram::Boundary(4), 2e-6);
  EXPECT_DOUBLE_EQ(Histogram::Boundary(8), 4e-6);
  EXPECT_DOUBLE_EQ(Histogram::Boundary(40), 1024e-6);
  // Quarter-octave steps are monotone with ~19% relative width.
  for (int i = 1; i < Histogram::kBucketCount; ++i) {
    const double ratio =
        Histogram::Boundary(i) / Histogram::Boundary(i - 1);
    EXPECT_NEAR(ratio, std::exp2(0.25), 1e-12);
  }
  // BucketFor agrees with the boundaries, including the exact edges.
  EXPECT_EQ(Histogram::BucketFor(1e-6), 0);
  EXPECT_EQ(Histogram::BucketFor(2e-6), 4);
  EXPECT_EQ(Histogram::BucketFor(2e-6 - 1e-12), 3);
  EXPECT_EQ(Histogram::BucketFor(0.5e-6), -1);  // Underflow.
  EXPECT_EQ(Histogram::BucketFor(1e9), Histogram::kBucketCount - 1);
}

TEST(ObsHistogramTest, ObserveMergeAndPercentileBracket) {
  Histogram a;
  for (int i = 0; i < 90; ++i) {
    a.Observe(1e-3);  // 1 ms.
  }
  for (int i = 0; i < 10; ++i) {
    a.Observe(50e-3);  // 50 ms tail.
  }
  EXPECT_EQ(a.count(), 100);
  EXPECT_NEAR(a.sum_s(), 90 * 1e-3 + 10 * 50e-3, 1e-12);
  EXPECT_DOUBLE_EQ(a.min_s(), 1e-3);
  EXPECT_DOUBLE_EQ(a.max_s(), 50e-3);
  // The bucketed percentile brackets the true value within one bucket
  // (<= 2^(1/4) relative error on the upper edge it reports).
  EXPECT_GE(a.ValueAtPercentile(50.0), 1e-3);
  EXPECT_LE(a.ValueAtPercentile(50.0), 1e-3 * std::exp2(0.25) + 1e-12);
  EXPECT_GE(a.ValueAtPercentile(99.0), 50e-3);
  EXPECT_LE(a.ValueAtPercentile(99.0), 50e-3 * std::exp2(0.25) + 1e-12);

  Histogram b;
  b.Observe(0.1e-6);  // Underflow slot.
  b.Merge(a);
  EXPECT_EQ(b.count(), 101);
  EXPECT_EQ(b.underflow(), 1);
  EXPECT_DOUBLE_EQ(b.max_s(), 50e-3);
  EXPECT_DOUBLE_EQ(b.min_s(), 0.1e-6);
}

TEST(ObsMetricsTest, RegistryPointersAreStableAndSnapshotsAccumulate) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("serve.completed");
  EXPECT_EQ(c, registry.GetCounter("serve.completed"));
  c->Increment(3);
  registry.GetGauge("pool.rate")->Set(123.5);
  registry.GetHistogram("serve.latency_s")->Observe(2e-3);
  registry.TakeSnapshot(0.25);
  c->Increment();
  registry.TakeSnapshot(0.5);
  ASSERT_EQ(registry.timeline().size(), 2u);
  EXPECT_DOUBLE_EQ(registry.timeline()[0].t_s, 0.25);
  const std::string doc = registry.TimelineJson().Dump(0);
  EXPECT_NE(doc.find("\"nsflow-metrics\""), std::string::npos);
  EXPECT_NE(doc.find("serve.completed"), std::string::npos);
}

// ------------------------------------------------------------- round trips

TraceData SampleTrace() {
  TraceData data;
  RequestSpan r;
  r.request_id = 7;
  r.workload = 1;
  r.close = BatchClose::kSizeCap;
  r.arrival_s = 0.001;
  r.formed_s = 0.002;
  r.start_s = 0.0025;
  r.complete_s = 0.004;
  r.batch_index = 3;
  r.replica = 2;
  r.batch_size = 4;
  r.seq = 0;
  data.requests.push_back(r);
  BatchSpan b;
  b.batch_index = 3;
  b.workload = 1;
  b.replica = 2;
  b.close = BatchClose::kSizeCap;
  b.formed_s = 0.002;
  b.start_s = 0.0025;
  b.complete_s = 0.004;
  b.size = 4;
  b.seq = 1;
  data.batches.push_back(b);
  InstantEvent i;
  i.t_s = 0.25;
  i.kind = InstantKind::kReplicaAdded;
  i.replica = 5;
  i.workload = 1;
  i.detail = "add replica 5: demand above band";
  i.seq = 2;
  data.instants.push_back(i);
  CounterSample s;
  s.t_s = 0.25;
  s.window_rate_rps = 212.5;
  s.active_replicas = 6;
  s.queue_depth = 11;
  s.seq = 3;
  data.counters.push_back(s);
  return data;
}

TraceMeta SampleMeta() {
  TraceMeta meta;
  meta.workload_names = {"mlp", "resnet18"};
  meta.replicas = 6;
  meta.duration_s = 2.0;
  return meta;
}

TEST(ObsChromeTraceTest, SerializeParseReserializeIsBitExact) {
  for (const TraceDetail detail : {TraceDetail::kSpans, TraceDetail::kFull}) {
    const std::vector<ChromeEvent> events =
        BuildChromeTrace(SampleTrace(), SampleMeta(), detail);
    const std::string text = SerializeChromeTrace(events);
    const std::vector<ChromeEvent> parsed = ParseChromeTrace(text);
    ASSERT_EQ(parsed.size(), events.size());
    EXPECT_EQ(SerializeChromeTrace(parsed), text);
  }
}

TEST(ObsChromeTraceTest, FullDetailNestsPhaseSpans) {
  const auto spans = BuildChromeTrace(SampleTrace(), SampleMeta(),
                                      TraceDetail::kSpans);
  const auto full = BuildChromeTrace(SampleTrace(), SampleMeta(),
                                     TraceDetail::kFull);
  EXPECT_GT(full.size(), spans.size());
}

TEST(ObsBinaryTraceTest, EncodeDecodeReencodeIsByteExact) {
  const TraceData data = SampleTrace();
  const std::string bytes = SerializeBinaryTrace(data);
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes.substr(0, 4), "NSFT");
  const TraceData decoded = ParseBinaryTrace(bytes);
  ASSERT_EQ(decoded.requests.size(), 1u);
  EXPECT_EQ(decoded.requests[0].request_id, 7);
  EXPECT_EQ(decoded.requests[0].close, BatchClose::kSizeCap);
  ASSERT_EQ(decoded.instants.size(), 1u);
  EXPECT_EQ(decoded.instants[0].detail, data.instants[0].detail);
  EXPECT_EQ(SerializeBinaryTrace(decoded), bytes);
}

TEST(ObsBinaryTraceTest, RejectsBadMagicAndTruncation) {
  const std::string bytes = SerializeBinaryTrace(SampleTrace());
  std::string corrupted = bytes;
  corrupted[0] = 'X';
  EXPECT_THROW(ParseBinaryTrace(corrupted), std::exception);
  EXPECT_THROW(ParseBinaryTrace(bytes.substr(0, bytes.size() / 2)),
               std::exception);
}

// ---------------------------------------------------------------- recorder

TEST(ObsRecorderTest, RingModeDropsOldestAndCounts) {
  TraceRecorder recorder(/*ring_capacity=*/4, /*shards=*/1);
  for (int i = 0; i < 10; ++i) {
    RequestSpan span;
    span.request_id = i;
    span.complete_s = static_cast<double>(i);
    recorder.RecordRequest(span);
  }
  const TraceData data = recorder.Drain();
  ASSERT_EQ(data.requests.size(), 4u);
  EXPECT_EQ(recorder.dropped(), 6);
  EXPECT_EQ(data.dropped, 6);
  // The retained window is the newest records, in time order.
  EXPECT_EQ(data.requests.front().request_id, 6);
  EXPECT_EQ(data.requests.back().request_id, 9);
  // Control-plane instants are never ring-evicted.
  for (int i = 0; i < 10; ++i) {
    InstantEvent event;
    event.t_s = static_cast<double>(i);
    recorder.RecordInstant(event);
  }
  EXPECT_EQ(recorder.Drain().instants.size(), 10u);
}

TEST(ObsRecorderTest, DrainOrdersByTimestampThenSeq) {
  TraceRecorder recorder;
  for (int i = 0; i < 3; ++i) {
    BatchSpan span;
    span.batch_index = i;
    span.start_s = 0.5;  // Identical stamps: seq breaks the tie.
    recorder.RecordBatch(span);
  }
  const TraceData data = recorder.Drain();
  ASSERT_EQ(data.batches.size(), 3u);
  EXPECT_LT(data.batches[0].seq, data.batches[1].seq);
  EXPECT_LT(data.batches[1].seq, data.batches[2].seq);
}

// ------------------------------------------------- traced serve invariants

serve::ServeReport TracedDiurnalRun(serve::WorkloadRegistry& registry) {
  const std::vector<serve::WorkloadShare> mix = {{"mlp", 0.3},
                                                 {"resnet18", 0.7}};
  const std::vector<serve::ReplicaSpec> replicas =
      registry.ReplicaSpecs(2, /*partition=*/true);
  serve::ServeOptions options;
  options.qps = 300.0;
  options.duration_s = 1.5;
  options.seed = 42;
  options.scenario = serve::ScenarioSpec::Parse("diurnal:depth=0.8");
  options.autoscale = true;
  options.autoscale_opts.max_replicas = 8;
  options.autoscale_opts.devices = 64;
  options.trace.enabled = true;
  options.trace.detail = TraceDetail::kFull;
  return serve::RunSyntheticServe(registry, replicas, mix, options);
}

TEST(ObsServeTest, FixedSeedTraceIsBitIdenticalAcrossRuns) {
  serve::WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  registry.RegisterBuiltin("resnet18");
  const serve::ServeReport first = TracedDiurnalRun(registry);
  const serve::ServeReport second = TracedDiurnalRun(registry);
  ASSERT_NE(first.obs, nullptr);
  ASSERT_NE(second.obs, nullptr);
  EXPECT_EQ(first.obs->ChromeTraceJson(), second.obs->ChromeTraceJson());
  EXPECT_EQ(first.obs->BinaryTrace(), second.obs->BinaryTrace());
  EXPECT_EQ(first.obs->MetricsJson(), second.obs->MetricsJson());
}

TEST(ObsServeTest, SpansSatisfyLifecycleInvariants) {
  serve::WorkloadRegistry registry;
  registry.RegisterBuiltin("mlp");
  registry.RegisterBuiltin("resnet18");
  const serve::ServeReport report = TracedDiurnalRun(registry);
  ASSERT_NE(report.obs, nullptr);
  const TraceData data = report.obs->recorder.Drain();

  // Every completed request has exactly one span, every dispatched batch
  // exactly one batch span.
  EXPECT_EQ(static_cast<std::int64_t>(data.requests.size()),
            report.summary.completed);
  EXPECT_EQ(static_cast<std::int64_t>(data.batches.size()),
            report.summary.batches);
  EXPECT_GT(data.counters.size(), 0u);  // Periodic autoscaler samples.

  std::map<std::int64_t, const BatchSpan*> batches;
  for (const BatchSpan& batch : data.batches) {
    EXPECT_LE(batch.formed_s, batch.start_s);
    EXPECT_LT(batch.start_s, batch.complete_s);
    EXPECT_GE(batch.size, 1);
    EXPECT_NE(batch.close, BatchClose::kNone);
    batches[batch.batch_index] = &batch;
  }
  std::map<std::int64_t, std::int64_t> batch_members;
  for (const RequestSpan& span : data.requests) {
    // Monotone lifecycle on the virtual timeline.
    EXPECT_LE(span.arrival_s, span.formed_s);
    EXPECT_LE(span.formed_s, span.start_s);
    EXPECT_LT(span.start_s, span.complete_s);
    // Every request's dispatch matches a batch span bit-exactly.
    const auto it = batches.find(span.batch_index);
    ASSERT_NE(it, batches.end());
    EXPECT_EQ(span.replica, it->second->replica);
    EXPECT_EQ(span.workload, it->second->workload);
    EXPECT_EQ(span.start_s, it->second->start_s);
    EXPECT_EQ(span.complete_s, it->second->complete_s);
    EXPECT_EQ(span.batch_size, it->second->size);
    ++batch_members[span.batch_index];
  }
  for (const auto& [index, members] : batch_members) {
    EXPECT_EQ(members, batches.at(index)->size);
  }
  // The autoscaled run recorded decision instants, and every applied delta
  // is mirrored as one.
  std::int64_t decisions = 0;
  for (const InstantEvent& instant : data.instants) {
    if (instant.kind == InstantKind::kAutoscalerDecision) {
      ++decisions;
    }
  }
  EXPECT_EQ(decisions, static_cast<std::int64_t>(report.deltas.size()));
}

TEST(ObsServeTest, PercentileInPlaceMatchesCopyingPath) {
  const std::vector<double> values = {5.0, 1.0, 4.0, 2.0, 3.0, 9.0, 7.0};
  for (const double p : {0.0, 25.0, 50.0, 95.0, 99.0, 100.0}) {
    std::vector<double> scratch = values;
    EXPECT_DOUBLE_EQ(serve::ServeStats::PercentileInPlace(&scratch, p),
                     serve::ServeStats::Percentile(values, p))
        << "p=" << p;
  }
  // The in-place path sorts its argument instead of copying.
  std::vector<double> scratch = values;
  serve::ServeStats::PercentileInPlace(&scratch, 50.0);
  EXPECT_TRUE(std::is_sorted(scratch.begin(), scratch.end()));
}

// ------------------------------------------------------------------ logger

TEST(ObsLoggingTest, SinkInjectionAndLevelFilter) {
  std::vector<LogRecord> captured;
  std::vector<std::string> messages;
  const LogLevel level = GetLogLevel();
  LogSink previous = SetLogSink([&](const LogRecord& record) {
    captured.push_back(record);
    messages.push_back(record.message);
  });
  SetLogLevel(LogLevel::kInfo);
  NSF_LOG(kDebug) << "filtered out";
  NSF_LOG(kInfo) << "count " << 42;
  NSF_LOG(kError) << "boom";
  SetLogSink(std::move(previous));
  SetLogLevel(level);

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(messages[0], "count 42");
  EXPECT_EQ(captured[0].level, LogLevel::kInfo);
  EXPECT_EQ(captured[1].level, LogLevel::kError);
  EXPECT_GT(captured[0].line, 0);
  EXPECT_NE(std::string(LogBasename(captured[0].file)), "");
  EXPECT_EQ(std::string(LogLevelName(LogLevel::kWarning)), "WARN");
}

}  // namespace
}  // namespace nsflow::obs
