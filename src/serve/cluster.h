// Multi-node cluster serving — sharded pools over a modeled interconnect
// (docs/CLUSTER.md).
//
// A `ClusterPool` promotes the single-box `ServerPool` to N nodes: every
// replica is pinned to a node (its own FPGA inventory slice), each tenant
// has a *home* node (where its arrivals ingress — the node holding most of
// its capable replicas), and a cluster router decides per formed batch
// which node executes it. Cross-node dispatch is priced, never free: a
// `NetworkModel` charges per-hop latency plus payload bytes over a modeled
// interconnect bandwidth, with request/response payload sizes derived from
// the workload's dataflow-graph tensor footprints. The request transfer
// delays the batch's dispatch (it cannot start remotely before it arrives
// there); the response transfer extends only the client-observed latency
// (the replica frees at compute completion — the NIC, not the array,
// carries the reply).
//
// Everything runs on the engine's virtual timeline: routing is a pure
// function of (batch, schedule), the network model is closed-form, and a
// fixed seed pins the whole routed run bit-exactly. A one-node cluster
// routes every batch locally with zero transfers, so its output is
// byte-identical to a build without the cluster layer (the single-node
// bit-identity contract, enforced in tests/cluster_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/dataflow_graph.h"
#include "serve/request.h"
#include "serve/serve_stats.h"

namespace nsflow::obs {
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace nsflow::obs

namespace nsflow::serve {

class ServerPool;

/// Which policy routes formed batches to nodes.
enum class ClusterRouterPolicy {
  kNone = 0,         // No cluster — the default single-box pipeline.
  kHash = 1,         // Consistent hash of (workload, lead request id) over
                     // the capable nodes: sticky, schedule-oblivious.
  kLeastLoaded = 2,  // Earliest projected start across capable nodes, with
                     // a locality-affinity penalty on leaving home.
};

/// Strict-parse cluster spec, `name[:k=v,...]` — same grammar family as
/// ScenarioSpec / AdversitySpec / AdmissionSpec (docs/CLUSTER.md). Unknown
/// names and keys are errors, never silently ignored.
///
/// Names: `none` | `hash` | `least-loaded`. Parameters (both routers):
///   nodes=N      node count (default 2, >= 1)
///   hops=N       interconnect hops per transfer (default 1, >= 0)
///   hop_us=F     per-hop latency, microseconds (default 5, >= 0)
///   gbps=F       interconnect bandwidth, gigabits/s (default 100, > 0)
///   affinity=F   locality-affinity weight on the least-loaded score
///                (default 1; 0 = pure earliest-start routing)
struct ClusterSpec {
  ClusterRouterPolicy policy = ClusterRouterPolicy::kNone;
  /// Provided parameters only (std::map: deterministic iteration order for
  /// canonical ToString round-trips). Defaults resolve through Param().
  std::map<std::string, double> params;

  static ClusterSpec Parse(const std::string& text);
  std::string Name() const;
  /// Canonical spec string that parses back to *this (report JSON, docs).
  std::string ToString() const;
  double Param(const std::string& key, double fallback) const;

  bool enabled() const { return policy != ClusterRouterPolicy::kNone; }
  int nodes() const { return static_cast<int>(Param("nodes", 2.0)); }
  int hops() const { return static_cast<int>(Param("hops", 1.0)); }
  double hop_s() const { return Param("hop_us", 5.0) * 1e-6; }
  double gigabits_per_s() const { return Param("gbps", 100.0); }
  double affinity() const { return Param("affinity", 1.0); }
};

/// Per-request network payload of one workload, derived from its dataflow
/// graph (docs/CLUSTER.md gives the closed forms):
///   request  — the model input: the first NN layer's activation matrix
///              A[m, n] (the GEMM convention is C[m,k] = A[m,n]·B[n,k]);
///              VSA-only graphs ship the first VSA node's hypervector
///              block (count × dim); pure-SIMD graphs ship their element
///              stream. 4 bytes per element throughout.
///   response — the model output: the last VSA op's result hypervector
///              (dim elements) when symbolic work exists, else the last NN
///              layer's output footprint, else the SIMD stream.
struct WorkloadFootprint {
  double request_bytes = 0.0;
  double response_bytes = 0.0;
};

/// Closed-form interconnect cost: transfer_s = hops · hop_s + bytes / BW.
/// Payload bytes scale linearly with batch size (a batch ships its
/// members' tensors back to back; the hop latency is paid once per
/// transfer, not per request).
class NetworkModel {
 public:
  NetworkModel() = default;
  NetworkModel(const ClusterSpec& spec,
               const std::vector<const DataflowGraph*>& dfgs);

  /// Per-request payloads of one workload's graph. Exposed for the
  /// closed-form checks in tests/cluster_test.cpp.
  static WorkloadFootprint Footprint(const DataflowGraph& dfg);

  double RequestBytes(WorkloadId workload, std::int64_t batch_size) const;
  double ResponseBytes(WorkloadId workload, std::int64_t batch_size) const;
  double TransferSeconds(double bytes) const;

 private:
  double hop_total_s_ = 0.0;   // hops × hop_s, paid once per transfer.
  double bytes_per_s_ = 1.0;   // gbps × 1e9 / 8.
  std::vector<WorkloadFootprint> footprints_;  // Per workload id.
};

/// One routing decision for a formed batch. A local dispatch (the batch's
/// home node serves it) moves zero bytes; a remote one prices the request
/// transfer into the dispatch time and the response transfer into the
/// recorded client latency.
struct RouteDecision {
  int node = 0;
  int home = 0;
  bool remote = false;
  double ingress_s = 0.0;       // Request transfer (delays dispatch).
  double egress_s = 0.0;        // Response transfer (client latency only).
  double request_bytes = 0.0;
  double response_bytes = 0.0;
};

/// Routing + pricing + per-node accounting over one node-tagged
/// `ServerPool`. The pool stays the single dispatch authority — the
/// cluster only narrows each dispatch to the routed node's replicas and
/// prices the movement — so every existing pool mechanism (warm
/// reconfiguration, fault state, draining) works unchanged inside a node.
class ClusterPool {
 public:
  /// `placement[r]` pins initial replica `r` to a node (empty = replica r
  /// to node r % nodes — the deterministic spread). `dfgs` feeds the
  /// network model's footprints; both `pool` and the graphs must outlive
  /// the cluster.
  ClusterPool(const ClusterSpec& spec, ServerPool& pool,
              const std::vector<const DataflowGraph*>& dfgs,
              const std::vector<int>& placement);

  int nodes() const { return nodes_; }
  const ClusterSpec& spec() const { return spec_; }
  const NetworkModel& network() const { return network_; }

  /// The node a workload's arrivals ingress at: the node holding most of
  /// its capable replicas at construction, ties to the lowest node id.
  int HomeNode(WorkloadId workload) const;

  /// Route one formed batch (pure function of the batch and the pool's
  /// current schedule — no RNG, no wall clock; docs/CLUSTER.md).
  RouteDecision Route(const Batch& batch) const;

  /// Account one dispatched batch against its routed node (and publish
  /// the attached cluster metrics).
  void RecordDispatch(const RouteDecision& route);

  /// Pin `replica` (e.g. one the autoscaler just warm-added) to `node`.
  void AssignReplica(int replica, int node);
  /// The node to warm-add the next replica on: fewest live (non-retired,
  /// non-draining) replicas, ties to the lowest node id — the autoscaler's
  /// cross-node placement rule (migrate = drain on one node + warm-add on
  /// the one this picks).
  int LeastPopulatedNode() const;

  /// Per-node slices for ServeStats (replica counts resolved against the
  /// pool's current state; traffic/byte tallies from RecordDispatch).
  std::vector<NodeSummary> Snapshot() const;

  /// Publish per-node dispatch/byte counters and the transfer-time
  /// histogram into `registry` (`cluster.*`; docs/OBSERVABILITY.md). Null
  /// detaches. The engine only attaches this for nodes > 1 — a one-node
  /// cluster registers nothing, keeping metrics output byte-identical to
  /// a cluster-free run.
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  ClusterSpec spec_;
  int nodes_ = 1;
  ServerPool& pool_;
  NetworkModel network_;
  std::vector<int> home_;  // Per workload id.
  std::vector<NodeSummary> accounts_;  // Per node (replica counts filled
                                       // fresh in Snapshot()).

  // Resolved by AttachMetrics; null = metrics off.
  obs::Counter* local_counter_ = nullptr;
  obs::Counter* remote_counter_ = nullptr;
  obs::Counter* bytes_counter_ = nullptr;
  obs::Histogram* transfer_hist_ = nullptr;
};

}  // namespace nsflow::serve
