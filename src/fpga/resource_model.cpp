#include "fpga/resource_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_util.h"

namespace nsflow {
namespace {

/// DSP slices consumed per PE at a precision pair. The packing of [30] lets
/// one DSP48 carry two INT8 or four INT4 multipliers, but the adaptive PE
/// must provision the *union* of the modes it supports, so a mixed-precision
/// PE costs more than a fixed INT8 one.
double DspPerPe(const PrecisionPolicy& precision) {
  const bool mixed = precision.neural != precision.symbolic;
  switch (precision.neural) {
    case Precision::kINT8:
      // Two INT8 MACs per DSP48 ([30]); the adaptive splitter for a mixed
      // INT8/INT4 PE costs an extra quarter slice of fabric-assist.
      return mixed ? 0.625 : 0.5;
    case Precision::kINT4:
      return 0.25;  // Four INT4 MACs per DSP48.
    case Precision::kFP16:
      return 1.0;
    case Precision::kFP32:
      return 2.0;
  }
  return 1.0;
}

}  // namespace

ResourceReport EstimateResources(const AcceleratorDesign& design,
                                 const FpgaDevice& device) {
  ResourceReport report;
  const double pes = static_cast<double>(design.array.TotalPes());
  const double subarrays = static_cast<double>(design.array.count);
  const double columns =
      static_cast<double>(design.array.count * design.array.width);
  const bool mixed = design.precision.neural != design.precision.symbolic;

  // ------------------------------------------------------------------ DSP
  constexpr double kDspPerSimdLane = 4.0;  // mult/div + exp/log + norm units.
  report.dsp = pes * DspPerPe(design.precision) +
               static_cast<double>(design.simd_width) * kDspPerSimdLane;

  // The PE datapath is provisioned at the *wider* of the two precisions
  // (the narrower mode reuses the same registers); mixed precision adds
  // mode-mux and splitter overhead on top.
  const double bits =
      static_cast<double>(std::max(BitsOf(design.precision.neural),
                                   BitsOf(design.precision.symbolic)));

  // ------------------------------------------------------------------ LUT
  // Mode muxes + (for mixed precision) the INT4 splitter fabric.
  const double lut_per_pe = 15.0 + 3.5 * bits + (mixed ? 10.0 : 0.0);
  constexpr double kLutPerSubarrayCtrl = 2200.0;   // Folding FSM + routing.
  constexpr double kLutPerSimdLane = 1400.0;
  constexpr double kLutInfra = 42000.0;            // AXI DMA + controller.
  report.lut = pes * lut_per_pe + subarrays * kLutPerSubarrayCtrl +
               static_cast<double>(design.simd_width) * kLutPerSimdLane +
               kLutInfra;

  // ------------------------------------------------------------------- FF
  // Stationary + streaming + passing + psum registers plus pipeline flops.
  const double ff_per_pe = 30.0 + 8.0 * bits + (mixed ? 15.0 : 0.0);
  constexpr double kFfPerSimdLane = 900.0;
  constexpr double kFfInfra = 30000.0;
  report.ff = pes * ff_per_pe +
              static_cast<double>(design.simd_width) * kFfPerSimdLane +
              kFfInfra;

  // ---------------------------------------------------------------- BRAM18
  const double capacity_blocks =
      std::ceil(design.memory.TotalSramBytes() / (18.0 * 1024.0 / 8.0 * 8.0));
  // Banking: each column needs independently addressed stationary and
  // streaming ports, double-buffered => 4 BRAM18 per column; MemC adds one
  // write bank per column of the widest fold.
  const double banking_blocks = columns * 4.0 + columns * 1.0;
  report.bram18 = std::max(capacity_blocks, banking_blocks);

  // ------------------------------------------------------------------ URAM
  const double uram_capacity =
      std::ceil(design.memory.cache_bytes / (288.0 * 1024.0 / 8.0 * 8.0));
  report.uram = uram_capacity * 2.0;  // Double-banked for read/write overlap.

  // ---------------------------------------------------------------- LUTRAM
  constexpr double kLutramPerPe = 20.0;  // PE-local scratch (Sec. IV-C).
  report.lutram_luts = pes * kLutramPerPe +
                       static_cast<double>(design.simd_width) * 128.0;

  // ------------------------------------------------------------ Utilization
  report.dsp_util = report.dsp / static_cast<double>(device.dsp);
  report.lut_util = report.lut / static_cast<double>(device.lut);
  report.ff_util = report.ff / static_cast<double>(device.ff);
  report.bram_util = report.bram18 / static_cast<double>(device.bram18);
  report.uram_util = report.uram / static_cast<double>(device.uram);
  report.lutram_util =
      report.lutram_luts / static_cast<double>(device.lutram_luts);
  report.fits = report.dsp_util <= 1.0 && report.lut_util <= 1.0 &&
                report.ff_util <= 1.0 && report.bram_util <= 1.0 &&
                report.uram_util <= 1.0 && report.lutram_util <= 1.0;

  // Timing closure: the deployment clock holds while the critical fabric
  // resources stay under ~90%; beyond that, routing congestion derates it.
  const double max_util =
      std::max({report.dsp_util, report.lut_util, report.ff_util,
                report.bram_util, report.uram_util});
  double clock = design.clock_hz;
  if (max_util > 0.9) {
    clock *= std::max(0.5, 1.0 - (max_util - 0.9));
  }
  report.achievable_clock_hz = std::min(clock, device.max_clock_hz);
  return report;
}

}  // namespace nsflow
