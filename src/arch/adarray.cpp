#include "arch/adarray.h"

#include <algorithm>

#include "arch/circ_conv_column.h"
#include "common/error.h"
#include "common/math_util.h"

namespace nsflow::arch {

AdArray::AdArray(ArrayConfig config) : config_(config) {
  NSF_CHECK_MSG(config_.height >= 1 && config_.width >= 1 && config_.count >= 1,
                "array geometry must be positive");
  folding_ = {config_.count, 0};  // Boot in all-NN fold.
}

void AdArray::Fold(const FoldingPlan& plan) {
  NSF_CHECK_MSG(plan.nn_subarrays >= 0 && plan.vsa_subarrays >= 0 &&
                    plan.nn_subarrays + plan.vsa_subarrays <= config_.count,
                "fold exceeds the sub-array count");
  folding_ = plan;
}

ArrayRun AdArray::RunGemm(const Tensor& a, const Tensor& b, std::int64_t nl) {
  NSF_CHECK_MSG(a.rank() == 2 && b.rank() == 2, "GEMM expects matrices");
  NSF_CHECK_MSG(a.dim(1) == b.dim(0), "GEMM inner dimensions must match");
  NSF_CHECK_MSG(nl >= 1 && nl <= folding_.nn_subarrays,
                "GEMM needs sub-arrays within the NN fold share");
  const std::int64_t m = a.dim(0);
  const std::int64_t n = a.dim(1);
  const std::int64_t k = b.dim(1);
  const std::int64_t h = config_.height;
  const std::int64_t w = config_.width;

  ArrayRun run;
  run.output = Tensor({m, k});

  // Walk the hardware tile loops: the n (reduction) range is split across
  // the nl cooperating sub-arrays, then across row tiles of H; the k range
  // across column tiles of W. Partial products accumulate in MemC exactly as
  // the double-buffered output buffer does.
  const std::int64_t n_per_array = CeilDiv(n, nl);
  const std::int64_t row_tiles = CeilDiv(n_per_array, h);
  const std::int64_t col_tiles = CeilDiv(k, w);

  // Hot loop: raw row pointers and hoisted tile bounds — the per-element
  // at2() index arithmetic would dominate the MAC work otherwise. The loop
  // order (and so the float accumulation order) is exactly the tiled
  // hardware schedule above, keeping outputs bit-identical.
  const float* a_data = a.data();
  const float* b_data = b.data();
  float* out_data = run.output.data();
  for (std::int64_t sub = 0; sub < nl; ++sub) {
    const std::int64_t n0 = sub * n_per_array;
    if (n0 >= n) {
      break;  // Trailing sub-arrays idle when n does not fill them.
    }
    const std::int64_t n_end = std::min(n, n0 + n_per_array);
    for (std::int64_t rt = 0; rt < row_tiles; ++rt) {
      const std::int64_t r0 = n0 + rt * h;
      if (r0 >= n_end) {
        break;
      }
      const std::int64_t r1 = std::min(n_end, r0 + h);
      for (std::int64_t ct = 0; ct < col_tiles; ++ct) {
        const std::int64_t c0 = ct * w;
        const std::int64_t c1 = std::min(k, c0 + w);
        // One array pass: C[:, c0:c1] += A[:, r0:r1] * B[r0:r1, c0:c1].
        for (std::int64_t i = 0; i < m; ++i) {
          const float* a_row = a_data + i * n;
          float* out_row = out_data + i * k;
          for (std::int64_t r = r0; r < r1; ++r) {
            const float av = a_row[r];
            if (av == 0.0f) {
              continue;  // Sparse activations skip whole B rows.
            }
            const float* b_row = b_data + r * k;
            for (std::int64_t c = c0; c < c1; ++c) {
              out_row[c] += av * b_row[c];
            }
          }
        }
      }
    }
  }

  run.cycles = LayerCycles(config_, nl, GemmDims{m, n, k});
  run.macs = static_cast<double>(m) * static_cast<double>(n) *
             static_cast<double>(k);
  const double pe_cycles =
      run.cycles * static_cast<double>(h * w * nl);
  run.utilization = pe_cycles > 0.0 ? run.macs / pe_cycles : 0.0;

  total_cycles_ += run.cycles;
  nn_cycles_ += run.cycles;
  total_macs_ += run.macs;
  return run;
}

ArrayRun AdArray::RunCircConvBatch(const Tensor& a, const Tensor& b,
                                   std::int64_t nv) {
  NSF_CHECK_MSG(a.rank() == 2 && b.rank() == 2 && a.shape() == b.shape(),
                "circular-conv batch expects equal [count, d] operands");
  NSF_CHECK_MSG(nv >= 1 && nv <= folding_.vsa_subarrays,
                "circular conv needs sub-arrays within the VSA fold share");
  const std::int64_t count = a.dim(0);
  const std::int64_t d = a.dim(1);

  ArrayRun run;
  run.output = Tensor({count, d});
  // Functional result: each vector pair convolves independently; hardware
  // mapping (spatial vs. temporal) only changes *where*, not *what*.
  // Hot loop: the wrap-around index Mod(n - k, d) is replaced by splitting
  // the k range at n (k <= n reads b[n-k], k > n reads b[n-k+d]) — same
  // ascending-k accumulation order, so results stay bit-identical, without
  // a modulo per MAC.
  for (std::int64_t v = 0; v < count; ++v) {
    const float* av = a.row(v);
    const float* bv = b.row(v);
    float* ov = run.output.row(v);
    for (std::int64_t n = 0; n < d; ++n) {
      double acc = 0.0;
      for (std::int64_t k = 0; k <= n; ++k) {
        acc += static_cast<double>(av[k]) * static_cast<double>(bv[n - k]);
      }
      for (std::int64_t k = n + 1; k < d; ++k) {
        acc += static_cast<double>(av[k]) *
               static_cast<double>(bv[n - k + d]);
      }
      ov[n] = static_cast<float>(acc);
    }
  }

  const VsaDims dims{count, d};
  const double spatial = VsaSpatialCycles(config_, nv, dims);
  const double temporal = VsaTemporalCycles(config_, nv, dims);
  run.cycles = std::min(spatial, temporal);
  run.macs = static_cast<double>(count) * static_cast<double>(d) *
             static_cast<double>(d);
  const double pe_cycles =
      run.cycles * static_cast<double>(config_.height * config_.width * nv);
  run.utilization = pe_cycles > 0.0 ? run.macs / pe_cycles : 0.0;

  total_cycles_ += run.cycles;
  vsa_cycles_ += run.cycles;
  total_macs_ += run.macs;
  return run;
}

DetailedGemmRun AdArray::SimulateGemmPassDetailed(const Tensor& a_tile,
                                                  const Tensor& b_tile) const {
  NSF_CHECK_MSG(a_tile.rank() == 2 && b_tile.rank() == 2,
                "detailed GEMM expects matrices");
  const std::int64_t m = a_tile.dim(0);
  const std::int64_t ht = a_tile.dim(1);   // Rows of the stationary tile.
  const std::int64_t wt = b_tile.dim(1);   // Columns of the stationary tile.
  NSF_CHECK_MSG(b_tile.dim(0) == ht, "tile inner dimensions must match");
  NSF_CHECK_MSG(ht <= config_.height && wt <= config_.width,
                "tile exceeds sub-array geometry");

  DetailedGemmRun run;
  run.output = Tensor({m, wt});

  // Register state: A values flow left-to-right (one column per cycle),
  // partial sums flow top-to-bottom (one row per cycle). a_reg[h][w] holds
  // the A element currently at PE (h, w); psum[h][w] the partial sum.
  std::vector<std::vector<float>> a_reg(
      static_cast<std::size_t>(ht),
      std::vector<float>(static_cast<std::size_t>(wt), 0.0f));
  std::vector<std::vector<std::int64_t>> a_row(
      static_cast<std::size_t>(ht),
      std::vector<std::int64_t>(static_cast<std::size_t>(wt), -1));
  std::vector<std::vector<float>> psum(
      static_cast<std::size_t>(ht),
      std::vector<float>(static_cast<std::size_t>(wt), 0.0f));
  std::vector<std::vector<std::int64_t>> psum_row(
      static_cast<std::size_t>(ht),
      std::vector<std::int64_t>(static_cast<std::size_t>(wt), -1));

  // Weight (stationary) load: one row per cycle.
  std::int64_t cycles = config_.height;

  // Stream until the last A row's partial sum drains from the last column:
  // row i enters row h of the array at cycle i + h; the completed dot
  // product for (i, w) exits the bottom of column w at i + ht + w.
  const std::int64_t stream_cycles = m + ht + wt - 1;
  for (std::int64_t t = 0; t < stream_cycles; ++t) {
    // Move right-to-left / bottom-to-top so reads see last cycle's values.
    for (std::int64_t h = ht - 1; h >= 0; --h) {
      for (std::int64_t w = wt - 1; w >= 0; --w) {
        // Shift A horizontally.
        if (w > 0) {
          a_reg[h][w] = a_reg[h][w - 1];
          a_row[h][w] = a_row[h][w - 1];
        } else {
          const std::int64_t i = t - h;  // Row skew at the left edge.
          if (i >= 0 && i < m) {
            a_reg[h][0] = a_tile.at2(i, h);
            a_row[h][0] = i;
          } else {
            a_row[h][0] = -1;
          }
        }
        // MAC: psum from above (h-1, same column, previous cycle — but we
        // iterate bottom-up so psum[h-1][w] still holds last cycle's value).
        if (a_row[h][w] >= 0) {
          const float above = h > 0 ? psum[h - 1][w] : 0.0f;
          const std::int64_t above_row = h > 0 ? psum_row[h - 1][w] : a_row[h][w];
          NSF_CHECK_MSG(h == 0 || above_row == a_row[h][w],
                        "systolic skew mismatch in GEMM pass");
          psum[h][w] = above + a_reg[h][w] * b_tile.at2(h, w);
          psum_row[h][w] = a_row[h][w];
          if (h == ht - 1) {
            run.output.at2(a_row[h][w], w) = psum[h][w];
          }
        } else {
          psum_row[h][w] = -1;
        }
      }
    }
    ++cycles;
  }

  // Architectural pass latency: weight load (H) + skewed stream + drain,
  // evaluated at the full sub-array height/width as Eq. (1) charges it.
  run.cycles = 2 * config_.height + config_.width + m - 2;
  NSF_CHECK_MSG(cycles <= run.cycles + config_.height + config_.width,
                "detailed simulation overran the analytical bound");
  return run;
}

DetailedGemmRun AdArray::SimulateCircConvDetailed(
    std::span<const float> a, std::span<const float> b) const {
  CircConvColumn column(config_.height);
  const CircConvRun r = column.Run(a, b);
  DetailedGemmRun run;
  run.output = Tensor({static_cast<std::int64_t>(r.output.size())},
                      r.output);
  run.cycles = r.cycles;
  return run;
}

}  // namespace nsflow::arch
