// Control unit: executes one loop of a workload's dataflow graph on the
// simulated backend (AdArray + SIMD + memory system) according to an
// accelerator design — the hardware-level task scheduling of Sec. IV-A.
//
// In parallel (folded) mode the controller keeps two timelines: the NN lane
// (layers on their Nl sub-arrays, filters staged through MemA1, IFMAPs
// through MemB) and the VSA lane (vector nodes on their Nv sub-arrays,
// stationary operands through MemA2). The lanes advance independently —
// inter-loop fusion lets loop k+1's NN overlap loop k's symbolic tail — so
// loop latency is the slower lane plus any SIMD or AXI time the double
// buffering could not hide. In sequential mode MemA1/MemA2 are merged and
// every kernel owns the whole array.
//
// The controller's measured totals are validated against the closed-form
// accelerator model (model/accel_model.h) in tests.
#pragma once

#include <cstdint>

#include "arch/adarray.h"
#include "arch/memory_system.h"
#include "arch/simd_unit.h"
#include "graph/dataflow_graph.h"
#include "model/accel_model.h"

namespace nsflow::arch {

/// Cycle/traffic report for one simulated loop.
struct SimReport {
  double nn_lane_cycles = 0.0;
  double vsa_lane_cycles = 0.0;
  double array_cycles = 0.0;        // max (parallel) or sum (sequential).
  double simd_cycles = 0.0;
  double simd_exposed_cycles = 0.0;
  double dram_cycles = 0.0;
  double dram_stall_cycles = 0.0;
  double total_cycles = 0.0;
  double dram_bytes = 0.0;
  double mem_a_swaps = 0.0;         // Double-buffer swaps performed.
  int kernels_executed = 0;

  double Seconds(double clock_hz) const { return total_cycles / clock_hz; }
};

class Controller {
 public:
  Controller(const AcceleratorDesign& design, const DataflowGraph& dfg);

  /// Simulate one loop; repeatable (statistics accumulate in the units).
  SimReport RunLoop();

  /// End-to-end seconds across the workload's loop_count, with the first
  /// loop paying the un-overlapped pipeline fill.
  double RunWorkload();

  /// Seconds for `batch_size` back-to-back end-to-end tasks of the same
  /// workload (the serving case: one model, many requests). The first task
  /// pays the full RunWorkload() cost; follow-up tasks reuse the stationary
  /// operands already resident in MemA1/MemA2 — filters and VSA codebooks are
  /// not re-fetched over AXI — so their marginal cost drops the weight share
  /// of the DRAM stall. Batch size 1 degenerates to RunWorkload().
  double RunWorkloadBatch(int batch_size);

  /// AXI cycles one loop spends moving stationary operands (NN filters plus
  /// stationary VSA vectors) — the share a batch amortizes.
  double WeightDramCycles() const;

  AdArray& array() { return array_; }
  SimdUnit& simd() { return simd_; }
  MemorySystem& memory() { return memory_; }

 private:
  /// End-to-end seconds for `loops` iterations given one steady-state loop
  /// report (the first loop pays the un-overlapped pipeline fill).
  double WorkloadSeconds(const SimReport& steady, int loops) const;

  const AcceleratorDesign& design_;
  const DataflowGraph& dfg_;
  AdArray array_;
  SimdUnit simd_;
  MemorySystem memory_;
};

}  // namespace nsflow::arch
