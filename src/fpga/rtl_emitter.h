// Parameterized-RTL instantiation — the "RTL basic blocks (.v) +
// Parameterized Instantiation" step of the paper's backend (Fig. 2).
//
// NSFlow's backend keeps pre-written RTL for the AdArray, SIMD unit, memory
// blocks, and controller, and instantiates them from the design config. In
// this reproduction the RTL bodies are represented by generated skeletons:
// `EmitParameterHeader` produces the Verilog parameter package every block
// includes, and `EmitTopLevel` produces the top-level wrapper wiring the
// blocks together with the chosen geometry. The generated text is
// syntactically valid Verilog-2001 so it can be linted or dropped into a
// Vivado project as the integration scaffold.
#pragma once

#include <string>

#include "model/accel_model.h"

namespace nsflow {

/// `nsflow_params.vh`: localparam definitions for the whole design.
std::string EmitParameterHeader(const AcceleratorDesign& design);

/// `nsflow_top.v`: top-level module instantiating AdArray sub-arrays, the
/// SIMD unit, memory blocks, and the AXI controller.
std::string EmitTopLevel(const AcceleratorDesign& design);

}  // namespace nsflow
