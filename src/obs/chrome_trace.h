// Chrome trace_event export — turn a drained TraceData into a JSON
// document Perfetto / chrome://tracing load directly, plus a compact
// binary encoding for long runs (docs/OBSERVABILITY.md).
//
// Track layout (process = track group, thread = track):
//   pid 1 "requests"    one thread per workload; each request is an async
//                       "b"/"e" span (id = request id) from arrival to
//                       completion. kFull detail nests "form" and
//                       "execute" phase spans under the same async id.
//   pid 2 "replicas"    one thread per replica; every dispatched batch is
//                       a complete "X" event spanning its execution, and
//                       replica lifecycle transitions (added / draining /
//                       retired / refit) are instant events on the track.
//   pid 3 "autoscaler"  decision instants (applied PoolDeltas, deferred
//                       adds) plus "C" counter series for the window rate,
//                       active replica count, and forming backlog.
//
// Timestamps are virtual seconds scaled to microseconds (the trace_event
// unit). Serialization goes through common/json's deterministic dump
// (sorted keys, bit-stable number formatting), so a fixed-seed run
// serializes bit-identically — and SerializeChromeTrace(ParseChromeTrace(
// text)) == text, the round-trip contract tests/obs_test.cpp pins.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "obs/trace_recorder.h"

namespace nsflow::obs {

/// How much of the request lifecycle the Chrome export expands.
/// Recording cost is identical — detail is an export-time choice.
enum class TraceDetail {
  kSpans,  // One async span per request + batch/replica/autoscaler tracks.
  kFull,   // Additionally nest per-request "form"/"execute" phase spans.
};

/// Run context the exporter needs beyond the raw records: track naming and
/// replica lifecycle spans (filled by the serve engine).
struct TraceMeta {
  std::vector<std::string> workload_names;  // Indexed by workload id.
  int replicas = 0;                         // Peak replica count.
  double duration_s = 0.0;                  // Virtual run horizon.
};

/// One trace_event entry. Optional fields use sentinels (`dur_us` < 0,
/// empty strings) so the serializer emits exactly the keys that are set —
/// which is what makes the typed parse -> re-emit round trip bit-exact.
struct ChromeEvent {
  std::string name;
  std::string cat;
  std::string ph;           // "X", "b", "e", "i", "C", "M".
  double ts_us = 0.0;
  double dur_us = -1.0;     // Only "X" events carry a duration.
  int pid = 0;
  int tid = 0;
  std::string id;           // Async ("b"/"e") correlation id; "" = absent.
  std::string scope;        // Instant ("i") scope; "" = absent.
  JsonObject args;          // Empty = omitted.
};

/// Expand records + metadata into the flat trace_event list.
std::vector<ChromeEvent> BuildChromeTrace(const TraceData& data,
                                          const TraceMeta& meta,
                                          TraceDetail detail);

/// {"displayTimeUnit": "ms", "traceEvents": [...]} as compact JSON.
/// Deterministic: sorted keys and bit-stable number formatting.
std::string SerializeChromeTrace(const std::vector<ChromeEvent>& events);

/// Inverse of SerializeChromeTrace (schema round trip, not a general
/// trace_event reader): re-serializing the parsed events reproduces the
/// input byte-for-byte.
std::vector<ChromeEvent> ParseChromeTrace(std::string_view text);

// ---- Compact binary encoding ("NSFT"): fixed-size little-endian records,
// doubles bit-copied, strings length-prefixed. The ring-buffer companion:
// a long run records into a bounded TraceRecorder and serializes the
// retained window here at a fraction of the JSON size.

/// Encode a drained TraceData (magic "NSFT", version 1).
std::string SerializeBinaryTrace(const TraceData& data);

/// Decode; throws common/error on a bad magic, version, or truncation.
/// Field-exact inverse: re-encoding reproduces the input bytes.
TraceData ParseBinaryTrace(std::string_view bytes);

}  // namespace nsflow::obs
