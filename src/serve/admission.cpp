#include "serve/admission.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include "common/error.h"
#include "obs/metrics.h"

namespace nsflow::serve {

const char* TierName(SlaTier tier) {
  switch (tier) {
    case SlaTier::kCritical: return "critical";
    case SlaTier::kStandard: return "standard";
    case SlaTier::kBatch: return "batch";
  }
  throw Error("unknown SLA tier");
}

SlaTier TierFromName(const std::string& name) {
  if (name == "critical") {
    return SlaTier::kCritical;
  }
  if (name == "standard") {
    return SlaTier::kStandard;
  }
  if (name == "batch") {
    return SlaTier::kBatch;
  }
  throw Error("unknown SLA tier '" + name +
              "' (known: critical, standard, batch)");
}

namespace {

struct KindInfo {
  AdmissionKind kind;
  const char* name;
  // Parameter keys this policy accepts (nullptr-terminated).
  const char* keys[8];
};

constexpr KindInfo kKinds[] = {
    {AdmissionKind::kNone, "none", {nullptr}},
    {AdmissionKind::kQuota,
     "quota",
     {"rate", "burst", "retry", "backoff", nullptr}},
    {AdmissionKind::kSlo, "slo", {"deadline", "retry", "backoff", nullptr}},
    {AdmissionKind::kOverload,
     "overload",
     {"depth", "live", "retry", "backoff", nullptr}},
    {AdmissionKind::kGuard,
     "guard",
     {"rate", "burst", "deadline", "depth", "live", "retry", "backoff",
      nullptr}},
};

const KindInfo& InfoFor(AdmissionKind kind) {
  for (const KindInfo& info : kKinds) {
    if (info.kind == kind) {
      return info;
    }
  }
  throw Error("unknown admission kind");
}

std::string KnownPolicyNames() {
  std::string names;
  for (const KindInfo& info : kKinds) {
    names += (names.empty() ? "" : ", ") + std::string(info.name);
  }
  return names;
}

bool IsIntegral(double value) { return value == std::floor(value); }

bool HasKey(const KindInfo& info, const char* key) {
  for (const char* const* k = info.keys; *k != nullptr; ++k) {
    if (std::strcmp(key, *k) == 0) {
      return true;
    }
  }
  return false;
}

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

AdmissionSpec AdmissionSpec::Parse(const std::string& text) {
  AdmissionSpec spec;
  const std::size_t colon = text.find(':');
  const std::string name = text.substr(0, colon);
  bool known = false;
  for (const KindInfo& info : kKinds) {
    if (name == info.name) {
      spec.kind = info.kind;
      known = true;
      break;
    }
  }
  if (!known) {
    throw Error("unknown admission policy '" + name +
                "' (known: " + KnownPolicyNames() + ")");
  }

  std::size_t start = colon == std::string::npos ? text.size() : colon + 1;
  while (start < text.size()) {
    std::size_t end = text.find(',', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string entry = text.substr(start, end - start);
    const std::size_t eq = entry.find('=');
    if (entry.empty() || eq == std::string::npos || eq == 0) {
      throw Error("bad admission parameter '" + entry +
                  "' (expected key=value)");
    }
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    const KindInfo& info = InfoFor(spec.kind);
    if (!HasKey(info, key.c_str())) {
      std::string keys;
      for (const char* const* k = info.keys; *k != nullptr; ++k) {
        keys += (keys.empty() ? "" : ", ") + std::string(*k);
      }
      throw Error("admission policy '" + std::string(info.name) +
                  "' has no parameter '" + key + "'" +
                  (keys.empty() ? "" : " (known: " + keys + ")"));
    }
    try {
      spec.params[key] = std::stod(value);
    } catch (const std::exception&) {
      throw Error("bad numeric value for admission parameter '" + key +
                  "': '" + value + "'");
    }
    start = end + 1;
  }

  // Range validation of the provided parameters (defaults are always
  // valid; the tenant-relative rate default resolves at construction).
  const auto require = [&](bool ok, const char* message) {
    if (!ok) {
      throw Error("admission '" + spec.Name() + "': " + message);
    }
  };
  const KindInfo& info = InfoFor(spec.kind);
  if (HasKey(info, "rate")) {
    require(spec.Param("rate", 1.0) > 0.0, "rate must be positive");
    require(spec.Param("burst", 1.0) >= 1.0, "burst must be >= 1");
  }
  if (HasKey(info, "deadline")) {
    require(spec.Param("deadline", 1.0) > 0.0, "deadline must be positive");
  }
  if (HasKey(info, "depth")) {
    require(spec.Param("depth", 1.0) >= 1.0 &&
                IsIntegral(spec.Param("depth", 1.0)),
            "depth must be a positive integer");
    require(spec.Param("live", 0.5) >= 0.0 && spec.Param("live", 0.5) <= 1.0,
            "live must be a fraction in [0, 1]");
  }
  if (spec.kind != AdmissionKind::kNone) {
    require(spec.Param("retry", 0.0) >= 0.0 &&
                IsIntegral(spec.Param("retry", 0.0)),
            "retry must be a non-negative integer");
    require(spec.Param("backoff", 0.0) >= 0.0,
            "backoff must be non-negative");
  }
  return spec;
}

std::string AdmissionSpec::Name() const { return InfoFor(kind).name; }

std::string AdmissionSpec::ToString() const {
  std::string out = Name();
  char sep = ':';
  for (const auto& [key, value] : params) {
    out += sep;
    sep = ',';
    // Shortest form that parses back to the same double (same canonical
    // printing as ScenarioSpec/AdversitySpec — report JSON records it).
    char buf[64];
    if (value == std::floor(value) && std::fabs(value) < 1e15) {
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    } else {
      for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
        if (std::strtod(buf, nullptr) == value) {
          break;
        }
      }
    }
    out += key + "=" + buf;
  }
  return out;
}

double AdmissionSpec::Param(const std::string& key, double fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

AdmissionController::AdmissionController(const AdmissionSpec& spec,
                                         std::vector<TenantConfig> tenants)
    : spec_(spec), tenants_(std::move(tenants)) {
  NSF_CHECK_MSG(!tenants_.empty(), "admission needs at least one tenant");
  quota_on_ = spec_.kind == AdmissionKind::kQuota ||
              spec_.kind == AdmissionKind::kGuard;
  deadline_on_ = spec_.kind == AdmissionKind::kSlo ||
                 spec_.kind == AdmissionKind::kGuard;
  overload_on_ = spec_.kind == AdmissionKind::kOverload ||
                 spec_.kind == AdmissionKind::kGuard;
  deadline_s_ = spec_.Param("deadline", 0.05);
  depth_ = static_cast<std::int64_t>(spec_.Param("depth", 64.0));
  live_ = spec_.Param("live", 0.75);
  retry_budget_ = static_cast<std::int64_t>(spec_.Param("retry", 1.0));
  backoff_s_ = spec_.Param("backoff", 0.01);

  stats_.reserve(tenants_.size());
  buckets_.reserve(tenants_.size());
  counters_.resize(tenants_.size());
  for (const TenantConfig& tenant : tenants_) {
    AdmissionTenantSummary stat;
    stat.tenant = tenant.name;
    stat.tier = tenant.tier;
    stats_.push_back(std::move(stat));

    Bucket bucket;
    // An explicit rate is an absolute per-tenant contract; the default is
    // the tenant's share of the run's offered rate (a bucket sized for the
    // traffic actually aimed at it, so steady runs never quota-shed).
    bucket.rate = spec_.Param("rate", tenant.offered_rps);
    bucket.burst = spec_.Param("burst", std::max(1.0, 0.25 * bucket.rate));
    bucket.tokens = bucket.burst;  // Opens full: bursts up to `burst` pass.
    // A zero-share tenant (listed in the registry, absent from the mix)
    // keeps a zero refill rate: it admits its opening burst and then
    // quota-sheds — it has no traffic contract, so any arrivals that reach
    // it (e.g. a replayed trace) are treated as over quota.
    buckets_.push_back(bucket);
  }
}

double AdmissionController::DeadlineBudget(SlaTier tier) const {
  if (!deadline_on_ || tier == SlaTier::kBatch) {
    return kInf;  // Batch is throughput traffic: no start deadline.
  }
  return tier == SlaTier::kCritical ? deadline_s_ : 4.0 * deadline_s_;
}

bool AdmissionController::TakeToken(WorkloadId workload, double now_s) {
  Bucket& bucket = buckets_[static_cast<std::size_t>(workload)];
  bucket.tokens = std::min(
      bucket.burst, bucket.tokens + bucket.rate * (now_s - bucket.refilled_s));
  bucket.refilled_s = now_s;
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return true;
  }
  return false;
}

void AdmissionController::CountFinalShed(const Request& request, bool quota) {
  const auto w = static_cast<std::size_t>(request.workload);
  if (quota) {
    ++stats_[w].shed_quota;
  } else {
    ++stats_[w].shed_overload;
  }
  ++removed_;
  if (counters_[w].shed != nullptr) {
    counters_[w].shed->Increment();
  }
}

bool AdmissionController::ShedOrRetry(Request* request, bool quota,
                                      double now_s) {
  const auto w = static_cast<std::size_t>(request->workload);
  if (request->tier == SlaTier::kStandard &&
      request->attempt < retry_budget_) {
    // Exponential backoff from the *current* offer time; the deadline
    // stays anchored at the original arrival (the client's contract).
    PendingRetry retry;
    retry.retry_at_s = now_s + backoff_s_ * std::ldexp(1.0, request->attempt);
    retry.request = *request;
    retry.request.arrival_s = retry.retry_at_s;
    ++retry.request.attempt;
    retries_.push(std::move(retry));
    ++stats_[w].retried;
    if (counters_[w].retried != nullptr) {
      counters_[w].retried->Increment();
    }
    return false;
  }
  CountFinalShed(*request, quota);
  return false;
}

bool AdmissionController::Offer(Request* request, std::int64_t backlog,
                                double live_fraction) {
  NSF_CHECK(request != nullptr);
  const auto w = static_cast<std::size_t>(request->workload);
  NSF_CHECK_MSG(w < tenants_.size(), "offer for an unknown tenant");
  ++stats_[w].offered;
  request->tier = tenants_[w].tier;
  if (request->attempt == 0) {
    request->deadline_s = request->arrival_s + DeadlineBudget(request->tier);
  }
  // A retry re-offered at or past its original deadline can no longer
  // start in time: shed it instead of admitting doomed work.
  if (request->arrival_s > request->deadline_s) {
    CountFinalShed(*request, /*quota=*/false);
    return false;
  }
  if (quota_on_ && !TakeToken(request->workload, request->arrival_s)) {
    return ShedOrRetry(request, /*quota=*/true, request->arrival_s);
  }
  if (overload_on_) {
    // Lowest tier first: batch sheds at the first overload signal (deep
    // backlog *or* degraded pool), standard only under 4x-deep backlog,
    // critical never load-sheds.
    const bool overloaded = backlog >= depth_ || live_fraction < live_;
    if (overloaded && request->tier == SlaTier::kBatch) {
      CountFinalShed(*request, /*quota=*/false);
      return false;
    }
    if (backlog >= 4 * depth_ && request->tier == SlaTier::kStandard) {
      return ShedOrRetry(request, /*quota=*/false, request->arrival_s);
    }
  }
  ++stats_[w].admitted;
  if (counters_[w].admitted != nullptr) {
    counters_[w].admitted->Increment();
  }
  return true;
}

double AdmissionController::NextRetryAt() const {
  return retries_.empty() ? kInf : retries_.top().retry_at_s;
}

Request AdmissionController::PopRetry() {
  NSF_CHECK_MSG(!retries_.empty(), "no pending retry to pop");
  Request request = retries_.top().request;
  retries_.pop();
  return request;
}

std::int64_t AdmissionController::CloseRetries() {
  std::int64_t closed = 0;
  while (!retries_.empty()) {
    // Shutdown: the frontend stops admitting, so a pending retry can never
    // re-enter — it finalizes as an overload shed.
    CountFinalShed(retries_.top().request, /*quota=*/false);
    retries_.pop();
    ++closed;
  }
  return closed;
}

std::int64_t AdmissionController::SweepExpired(Batch* batch, double start_s) {
  NSF_CHECK(batch != nullptr);
  auto& requests = batch->requests;
  std::int64_t removed = 0;
  const auto expired = [&](const Request& request) {
    if (start_s <= request.deadline_s) {
      return false;
    }
    const auto w = static_cast<std::size_t>(request.workload);
    ++stats_[w].expired;
    ++removed_;
    if (counters_[w].expired != nullptr) {
      counters_[w].expired->Increment();
    }
    ++removed;
    return true;
  };
  requests.erase(std::remove_if(requests.begin(), requests.end(), expired),
                 requests.end());
  return removed;
}

SlaTier AdmissionController::TierOf(WorkloadId workload) const {
  NSF_CHECK(workload >= 0 &&
            static_cast<std::size_t>(workload) < tenants_.size());
  return tenants_[static_cast<std::size_t>(workload)].tier;
}

bool AdmissionController::TierShed(SlaTier tier) const {
  for (const AdmissionTenantSummary& stat : stats_) {
    if (stat.tier == tier && (stat.shed() > 0 || stat.expired > 0)) {
      return true;
    }
  }
  return false;
}

std::vector<AdmissionTenantSummary> AdmissionController::Summaries() const {
  return stats_;
}

int AdmissionExitCode(const std::vector<AdmissionTenantSummary>& rows) {
  bool critical_loss = false;
  bool standard_loss = false;
  for (const AdmissionTenantSummary& row : rows) {
    if (row.shed() > 0 || row.expired > 0) {
      if (row.tier == SlaTier::kCritical) {
        critical_loss = true;
      } else if (row.tier == SlaTier::kStandard) {
        standard_loss = true;
      }
    }
  }
  if (critical_loss) {
    return 4;
  }
  return standard_loss ? 5 : 0;
}

void AdmissionController::AttachMetrics(obs::MetricsRegistry* registry) {
  for (std::size_t w = 0; w < tenants_.size(); ++w) {
    if (registry == nullptr) {
      counters_[w] = Counters{};
      continue;
    }
    const std::string& tenant = tenants_[w].name;
    counters_[w].admitted = registry->GetCounter("admission.admitted." + tenant);
    counters_[w].shed = registry->GetCounter("admission.shed." + tenant);
    counters_[w].expired = registry->GetCounter("admission.expired." + tenant);
    counters_[w].retried = registry->GetCounter("admission.retried." + tenant);
  }
}

}  // namespace nsflow::serve
