// Design-space accounting — paper Table II.
//
// The cross-coupled space is defined by the hardware configuration (sub-array
// height H, width W, count N) and the mapping scheme (Nl[i] / Nv[j] per node,
// each in [1, N-1]). With a maximum of 2^m PEs, exhaustive search is
// ~m(m+1)/2 hardware points times (N-1)^k mapping points for k dataflow
// nodes — ~10^300 for m=10 on an NVSA-sized graph. NSFlow's two phases prune
// this to ~10^3 (Phase I) plus Iter x #layers (Phase II) evaluations, a
// ~10^100x reduction. Sizes are returned as log10 to stay representable.
#pragma once

#include <cstdint>

#include "graph/dataflow_graph.h"

namespace nsflow {

struct DesignSpaceSize {
  double log10_original = 0.0;       // Full cross-coupled space.
  double log10_phase1 = 0.0;         // Phase I evaluations after pruning.
  double log10_phase2 = 0.0;         // Phase II evaluations (Iter x #layers).
  double log10_reduction = 0.0;      // original / (phase1 + phase2).

  std::int64_t hw_points_original = 0;  // (H, W) grid points before pruning.
  std::int64_t hw_points_pruned = 0;    // After 1/4 <= H/W <= 16.
};

/// Count the space for a dataflow graph with `max_pes` = 2^m total PEs and
/// `phase2_iters` Phase II sweeps.
DesignSpaceSize CountDesignSpace(const DataflowGraph& dfg, int m,
                                 int phase2_iters);

}  // namespace nsflow
