#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace nsflow {
namespace {

[[noreturn]] void TypeMismatch(const char* wanted, Json::Type got) {
  static const char* kNames[] = {"null",   "bool",  "number",
                                 "string", "array", "object"};
  throw ParseError(std::string("JSON type mismatch: wanted ") + wanted +
                   ", got " + kNames[static_cast<int>(got)]);
}

/// Recursive-descent JSON parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json ParseDocument() {
    Json value = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) {
      Fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Json ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return Json(ParseString());
      case 't':
        Expect("true");
        return Json(true);
      case 'f':
        Expect("false");
        return Json(false);
      case 'n':
        Expect("null");
        return Json(nullptr);
      default:
        return ParseNumber();
    }
  }

  Json ParseObject() {
    Consume('{');
    JsonObject object;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    while (true) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Consume(':');
      object[std::move(key)] = ParseValue();
      SkipWhitespace();
      const char c = Peek();
      ++pos_;
      if (c == '}') {
        return Json(std::move(object));
      }
      if (c != ',') {
        Fail("expected ',' or '}' in object");
      }
    }
  }

  Json ParseArray() {
    Consume('[');
    JsonArray array;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    while (true) {
      array.push_back(ParseValue());
      SkipWhitespace();
      const char c = Peek();
      ++pos_;
      if (c == ']') {
        return Json(std::move(array));
      }
      if (c != ',') {
        Fail("expected ',' or ']' in array");
      }
    }
  }

  std::string ParseString() {
    Consume('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        Fail("unterminated string");
      }
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        Fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("invalid hex digit in \\u escape");
            }
          }
          AppendUtf8(out, code);
          break;
        }
        default:
          Fail("unknown escape character");
      }
    }
  }

  Json ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto result =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (result.ec != std::errc() || result.ptr != text_.data() + pos_) {
      Fail("malformed number");
    }
    return Json(value);
  }

  static void AppendUtf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char Peek() const {
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void Consume(char expected) {
    if (Peek() != expected) {
      Fail(std::string("expected '") + expected + "'");
    }
    ++pos_;
  }

  void Expect(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      Fail(std::string("expected literal '") + std::string(literal) + "'");
    }
    pos_ += literal.size();
  }

  [[noreturn]] void Fail(const std::string& message) const {
    throw ParseError("JSON parse error at offset " + std::to_string(pos_) +
                     ": " + message);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void EscapeString(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void FormatNumber(std::string& out, double d) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    out += std::to_string(static_cast<std::int64_t>(d));
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

}  // namespace

bool Json::AsBool() const {
  if (!is_bool()) {
    TypeMismatch("bool", type());
  }
  return std::get<bool>(value_);
}

double Json::AsDouble() const {
  if (!is_number()) {
    TypeMismatch("number", type());
  }
  return std::get<double>(value_);
}

std::int64_t Json::AsInt() const {
  const double d = AsDouble();
  if (d != std::floor(d)) {
    throw ParseError("JSON number is not an integer: " + std::to_string(d));
  }
  return static_cast<std::int64_t>(d);
}

const std::string& Json::AsString() const {
  if (!is_string()) {
    TypeMismatch("string", type());
  }
  return std::get<std::string>(value_);
}

const JsonArray& Json::AsArray() const {
  if (!is_array()) {
    TypeMismatch("array", type());
  }
  return std::get<JsonArray>(value_);
}

JsonArray& Json::AsArray() {
  if (!is_array()) {
    TypeMismatch("array", type());
  }
  return std::get<JsonArray>(value_);
}

const JsonObject& Json::AsObject() const {
  if (!is_object()) {
    TypeMismatch("object", type());
  }
  return std::get<JsonObject>(value_);
}

JsonObject& Json::AsObject() {
  if (!is_object()) {
    TypeMismatch("object", type());
  }
  return std::get<JsonObject>(value_);
}

const Json& Json::At(const std::string& key) const {
  const auto& object = AsObject();
  const auto it = object.find(key);
  if (it == object.end()) {
    throw ParseError("JSON object has no member '" + key + "'");
  }
  return it->second;
}

bool Json::Contains(const std::string& key) const {
  return is_object() && AsObject().count(key) > 0;
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) {
    value_ = JsonObject{};
  }
  return AsObject()[key];
}

double Json::GetNumberOr(const std::string& key, double fallback) const {
  return Contains(key) ? At(key).AsDouble() : fallback;
}

std::string Json::GetStringOr(const std::string& key,
                              const std::string& fallback) const {
  return Contains(key) ? At(key).AsString() : fallback;
}

const Json& Json::At(std::size_t index) const {
  const auto& array = AsArray();
  if (index >= array.size()) {
    throw ParseError("JSON array index out of range: " + std::to_string(index));
  }
  return array[index];
}

std::size_t Json::size() const {
  if (is_array()) {
    return AsArray().size();
  }
  if (is_object()) {
    return AsObject().size();
  }
  TypeMismatch("array or object", type());
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

void Json::DumpTo(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent) * d, ' ');
    }
  };
  switch (type()) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += std::get<bool>(value_) ? "true" : "false";
      break;
    case Type::kNumber:
      FormatNumber(out, std::get<double>(value_));
      break;
    case Type::kString:
      EscapeString(out, std::get<std::string>(value_));
      break;
    case Type::kArray: {
      const auto& array = std::get<JsonArray>(value_);
      if (array.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i > 0) {
          out.push_back(',');
        }
        newline(depth + 1);
        array[i].DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      const auto& object = std::get<JsonObject>(value_);
      if (object.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : object) {
        if (!first) {
          out.push_back(',');
        }
        first = false;
        newline(depth + 1);
        EscapeString(out, key);
        out += indent > 0 ? ": " : ":";
        value.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

Json Json::Parse(std::string_view text) { return Parser(text).ParseDocument(); }

}  // namespace nsflow
