#include "quant/precision.h"

#include "common/error.h"

namespace nsflow {

int BitsOf(Precision p) {
  switch (p) {
    case Precision::kFP32:
      return 32;
    case Precision::kFP16:
      return 16;
    case Precision::kINT8:
      return 8;
    case Precision::kINT4:
      return 4;
  }
  throw Error("unknown precision");
}

double BytesOf(Precision p) { return BitsOf(p) / 8.0; }

const char* PrecisionName(Precision p) {
  switch (p) {
    case Precision::kFP32:
      return "FP32";
    case Precision::kFP16:
      return "FP16";
    case Precision::kINT8:
      return "INT8";
    case Precision::kINT4:
      return "INT4";
  }
  return "?";
}

Precision PrecisionFromName(const std::string& name) {
  if (name == "FP32") return Precision::kFP32;
  if (name == "FP16") return Precision::kFP16;
  if (name == "INT8") return Precision::kINT8;
  if (name == "INT4") return Precision::kINT4;
  throw ParseError("unknown precision name: " + name);
}

std::string PrecisionPolicy::Name() const {
  if (neural == symbolic) {
    return PrecisionName(neural);
  }
  return std::string("MP(") + PrecisionName(neural) + " NN, " +
         PrecisionName(symbolic) + " Symb)";
}

int MacsPerDsp(Precision p) {
  switch (p) {
    case Precision::kFP32:
      return 0;  // FP32 MACs are built from fabric + multiple DSPs; see fpga/.
    case Precision::kFP16:
      return 1;
    case Precision::kINT8:
      return 2;  // Two INT8 MACs per DSP48 via the packing of [30].
    case Precision::kINT4:
      return 4;  // Four INT4 MACs per DSP48 with the same technique.
  }
  return 1;
}

}  // namespace nsflow
