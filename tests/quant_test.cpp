// Unit + property tests for mixed-precision arithmetic (fp16, INT8/INT4).
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "quant/fp16.h"
#include "quant/precision.h"
#include "quant/quantizer.h"

namespace nsflow {
namespace {

TEST(PrecisionTest, BitsAndBytes) {
  EXPECT_EQ(BitsOf(Precision::kFP32), 32);
  EXPECT_EQ(BitsOf(Precision::kFP16), 16);
  EXPECT_EQ(BitsOf(Precision::kINT8), 8);
  EXPECT_EQ(BitsOf(Precision::kINT4), 4);
  EXPECT_DOUBLE_EQ(BytesOf(Precision::kINT4), 0.5);
}

TEST(PrecisionTest, NamesRoundTrip) {
  for (const auto p : {Precision::kFP32, Precision::kFP16, Precision::kINT8,
                       Precision::kINT4}) {
    EXPECT_EQ(PrecisionFromName(PrecisionName(p)), p);
  }
  EXPECT_THROW(PrecisionFromName("INT2"), ParseError);
}

TEST(PrecisionTest, PolicyNames) {
  EXPECT_EQ(PrecisionPolicy::Uniform(Precision::kINT8).Name(), "INT8");
  EXPECT_EQ(PrecisionPolicy::MixedNvsa().Name(), "MP(INT8 NN, INT4 Symb)");
}

TEST(PrecisionTest, DspPackingMonotone) {
  // Narrower integer precisions pack more MACs per DSP ([30]).
  EXPECT_GT(MacsPerDsp(Precision::kINT4), MacsPerDsp(Precision::kINT8));
  EXPECT_GT(MacsPerDsp(Precision::kINT8), MacsPerDsp(Precision::kFP16));
}

TEST(Fp16Test, ExactValuesSurviveRoundTrip) {
  for (const float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f,
                        65504.0f /* max half */}) {
    EXPECT_EQ(RoundToHalf(v), v) << v;
  }
}

TEST(Fp16Test, SignedZero) {
  EXPECT_EQ(FloatToHalfBits(-0.0f), 0x8000);
  EXPECT_EQ(FloatToHalfBits(0.0f), 0x0000);
}

TEST(Fp16Test, OverflowToInfinity) {
  const float inf = HalfBitsToFloat(FloatToHalfBits(1e6f));
  EXPECT_TRUE(std::isinf(inf));
  EXPECT_GT(inf, 0.0f);
  EXPECT_TRUE(std::isinf(RoundToHalf(-1e6f)));
  EXPECT_LT(RoundToHalf(-1e6f), 0.0f);
}

TEST(Fp16Test, NanPropagates) {
  EXPECT_TRUE(std::isnan(RoundToHalf(std::nanf(""))));
}

TEST(Fp16Test, SubnormalsRepresented) {
  // Smallest positive half subnormal = 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(RoundToHalf(tiny), tiny);
  // Below half subnormal range: flushes to zero.
  EXPECT_EQ(RoundToHalf(std::ldexp(1.0f, -26)), 0.0f);
}

TEST(Fp16Test, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half (1 + 2^-10);
  // round-to-nearest-even picks 1.0 (even mantissa).
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(RoundToHalf(halfway), 1.0f);
  // Slightly above halfway rounds up.
  const float above = 1.0f + std::ldexp(1.0f, -11) + std::ldexp(1.0f, -14);
  EXPECT_EQ(RoundToHalf(above), 1.0f + std::ldexp(1.0f, -10));
}

TEST(Fp16Test, RelativeErrorBounded) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const auto v = static_cast<float>(rng.Uniform(-1000.0, 1000.0));
    const float r = RoundToHalf(v);
    if (v != 0.0f) {
      EXPECT_LE(std::abs(r - v) / std::abs(v), 1.0f / 1024.0f) << v;
    }
  }
}

TEST(QuantizerTest, QmaxPerPrecision) {
  QuantParams p8 = QuantParams::Calibrate(Precision::kINT8, 1.0f);
  QuantParams p4 = QuantParams::Calibrate(Precision::kINT4, 1.0f);
  EXPECT_EQ(p8.qmax(), 127);
  EXPECT_EQ(p4.qmax(), 7);
  EXPECT_THROW(QuantParams::Calibrate(Precision::kFP32, 1.0f).qmax(), Error);
}

TEST(QuantizerTest, GridEdgeMapsExactly) {
  const Tensor t({3}, {-2.0f, 0.0f, 2.0f});
  const auto q = Quantize(t, Precision::kINT8);
  EXPECT_EQ(q.values[0], -127);
  EXPECT_EQ(q.values[1], 0);
  EXPECT_EQ(q.values[2], 127);
  const Tensor d = q.Dequantize();
  EXPECT_FLOAT_EQ(d.at(0), -2.0f);
  EXPECT_FLOAT_EQ(d.at(2), 2.0f);
}

TEST(QuantizerTest, AllZeroTensorIsExact) {
  const Tensor t({4});
  const auto q = Quantize(t, Precision::kINT4);
  EXPECT_EQ(q.Dequantize(), t);
}

TEST(QuantizerTest, Int4PacksHalfByte) {
  const Tensor t({100});
  const auto q = Quantize(t, Precision::kINT4);
  EXPECT_DOUBLE_EQ(q.byte_size(), 50.0);
}

TEST(QuantizerTest, FakeQuantizeFp32IsIdentity) {
  Rng rng(3);
  Tensor t({64});
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = static_cast<float>(rng.Gaussian());
  }
  EXPECT_EQ(FakeQuantize(t, Precision::kFP32), t);
}

TEST(QuantizerTest, QuantizationErrorOrdering) {
  // Property: coarser grids have strictly larger RMSE on generic data.
  Rng rng(7);
  Tensor t({4096});
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = static_cast<float>(rng.Gaussian());
  }
  const double e16 = QuantizationRmse(t, Precision::kFP16);
  const double e8 = QuantizationRmse(t, Precision::kINT8);
  const double e4 = QuantizationRmse(t, Precision::kINT4);
  EXPECT_LT(e16, e8);
  EXPECT_LT(e8, e4);
  EXPECT_GT(e4, 0.0);
}

TEST(QuantizerTest, DequantizedValuesStayOnGrid) {
  Rng rng(9);
  Tensor t({256});
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = static_cast<float>(rng.Uniform(-5.0, 5.0));
  }
  const auto q = Quantize(t, Precision::kINT4);
  for (const auto v : q.values) {
    EXPECT_GE(v, -7);
    EXPECT_LE(v, 7);
  }
  // Idempotence: fake-quantizing a fake-quantized tensor changes nothing.
  const Tensor once = FakeQuantize(t, Precision::kINT4);
  const Tensor twice = FakeQuantize(once, Precision::kINT4);
  for (std::int64_t i = 0; i < once.numel(); ++i) {
    EXPECT_NEAR(once.at(i), twice.at(i), 1e-6);
  }
}

class QuantRoundTripTest : public ::testing::TestWithParam<Precision> {};

TEST_P(QuantRoundTripTest, ErrorBoundedByHalfStep) {
  const Precision precision = GetParam();
  Rng rng(13);
  Tensor t({512});
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = static_cast<float>(rng.Uniform(-3.0, 3.0));
  }
  const auto q = Quantize(t, precision);
  const Tensor d = q.Dequantize();
  const double half_step = q.params.scale / 2.0 + 1e-6;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_LE(std::abs(d.at(i) - t.at(i)), half_step) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(IntegerGrids, QuantRoundTripTest,
                         ::testing::Values(Precision::kINT8, Precision::kINT4),
                         [](const auto& info) {
                           return PrecisionName(info.param);
                         });

}  // namespace
}  // namespace nsflow
