// Tests for the baseline device models (the hardware substitution layer).
#include "common/error.h"

#include <gtest/gtest.h>

#include "model/device_model.h"
#include "model/device_zoo.h"
#include "workloads/builders.h"

namespace nsflow {
namespace {

TEST(RooflineDeviceTest, OpRuntimeIsMaxOfComputeAndMemory) {
  DeviceSpec spec;
  spec.name = "toy";
  spec.peak_flops = 1e12;
  spec.mem_bandwidth = 1e11;
  spec.launch_overhead_s = 0.0;
  const RooflineDevice device(spec);

  OpNode conv;
  conv.kind = OpKind::kConv2d;
  conv.gemm = {100, 100, 100};  // 2e6 flops.
  conv.weight_bytes = 1e3;
  // Compute-bound: 2e6/(1e12*0.6) ≈ 3.3e-6 s >> 1e3/(1e11*0.7).
  EXPECT_NEAR(device.OpRuntime(conv), 2e6 / (1e12 * 0.6), 1e-9);

  OpNode bind;
  bind.kind = OpKind::kCircularBind;
  bind.vsa = {1, 64};  // 8192 flops, trivial compute.
  bind.activation_bytes = 1e6;  // Streamed operand: re-fetched dim=64 times.
  EXPECT_NEAR(device.OpRuntime(bind), 64e6 / (1e11 * 0.05), 1e-6);
}

TEST(RooflineDeviceTest, LaunchOverheadAddsPerKernel) {
  DeviceSpec spec;
  spec.peak_flops = 1e15;  // Effectively free compute.
  spec.mem_bandwidth = 1e15;
  spec.launch_overhead_s = 1e-5;
  const RooflineDevice device(spec);
  OpNode relu;
  relu.kind = OpKind::kRelu;
  relu.elem_count = 10;
  EXPECT_GT(device.OpRuntime(relu), 1e-5);
  EXPECT_LT(device.OpRuntime(relu), 1.1e-5);
}

TEST(DeviceZooTest, AllDevicesConstruct) {
  for (const auto kind :
       {DeviceKind::kJetsonTx2, DeviceKind::kXavierNx, DeviceKind::kXeonCpu,
        DeviceKind::kRtx2080, DeviceKind::kCoralTpu, DeviceKind::kTpuLikeSa,
        DeviceKind::kXilinxDpu}) {
    const auto device = MakeDevice(kind);
    ASSERT_NE(device, nullptr);
    EXPECT_EQ(device->name(), DeviceKindName(kind));
  }
}

TEST(DeviceZooTest, Fig5BaselineOrder) {
  const auto devices = MakeFig5Baselines();
  ASSERT_EQ(devices.size(), 6u);
  EXPECT_EQ(devices[0]->name(), "Jetson TX2");
  EXPECT_EQ(devices[3]->name(), "RTX 2080");
  EXPECT_EQ(devices[5]->name(), "DPU");
}

TEST(DeviceZooTest, EdgeDevicesSlowerThanDesktopGpu) {
  // Fig. 1b: the same workload is strictly slower on TX2 than NX than RTX.
  const OperatorGraph nvsa = workloads::MakeNvsa();
  const double tx2 =
      MakeDevice(DeviceKind::kJetsonTx2)->Estimate(nvsa).total_s();
  const double nx =
      MakeDevice(DeviceKind::kXavierNx)->Estimate(nvsa).total_s();
  const double rtx =
      MakeDevice(DeviceKind::kRtx2080)->Estimate(nvsa).total_s();
  EXPECT_GT(tx2, nx);
  EXPECT_GT(nx, rtx);
}

TEST(DeviceZooTest, SymbolicDominatesGpuRuntimeOnNvsa) {
  // Paper Sec. II-B: symbolic ops are ~19% of FLOPs but the dominant share
  // of GPU runtime (quoted at 87% for NVSA).
  const OperatorGraph nvsa = workloads::MakeNvsa();
  const auto estimate = MakeDevice(DeviceKind::kRtx2080)->Estimate(nvsa);
  EXPECT_GT(estimate.symbolic_share(), 0.5);
  EXPECT_LT(estimate.symbolic_share(), 0.97);
}

TEST(DeviceZooTest, MimonetIsNotSymbolicBound) {
  const OperatorGraph mimo = workloads::MakeMimonet();
  const auto estimate = MakeDevice(DeviceKind::kRtx2080)->Estimate(mimo);
  EXPECT_LT(estimate.symbolic_share(), 0.5);
}

TEST(SystolicArrayDeviceTest, RequiresMonolithicArray) {
  EXPECT_THROW(SystolicArrayDevice("bad", ArrayConfig{16, 16, 4}, 1e8, 1e9),
               CheckError);
}

TEST(SystolicArrayDeviceTest, CircularConvIsPathological) {
  // The architectural point of the paper: a rigid 128x128 GEMM array wastes
  // enormous time on circular convolutions (circulant lowering + streaming).
  const SystolicArrayDevice sa("TPU-like", ArrayConfig{128, 128, 1}, 272e6,
                               38.4e9);
  OpNode conv;
  conv.kind = OpKind::kConv2d;
  conv.gemm = {64, 576, 6400};

  OpNode bind;
  bind.kind = OpKind::kCircularBind;
  bind.vsa = {256, 256};

  // Per-FLOP cost of the symbolic op is far worse than the conv's.
  const double conv_cost = sa.OpCycles(conv) / conv.Flops();
  const double bind_cost = sa.OpCycles(bind) / bind.Flops();
  EXPECT_GT(bind_cost, 4.0 * conv_cost);
}

TEST(SystolicArrayDeviceTest, EstimateSeparatesDomains) {
  const SystolicArrayDevice sa("TPU-like", ArrayConfig{128, 128, 1}, 272e6,
                               38.4e9);
  const OperatorGraph nvsa = workloads::MakeNvsa();
  const auto estimate = sa.Estimate(nvsa);
  EXPECT_GT(estimate.neuro_s, 0.0);
  EXPECT_GT(estimate.symbolic_s, 0.0);
  // On the rigid array the symbolic share is crushing (paper: up to 8x
  // total-runtime gap vs NSFlow).
  EXPECT_GT(estimate.symbolic_share(), 0.6);
}

TEST(RooflineZooTest, Rtx2080TiMatchesDatasheet) {
  const Roofline r = Rtx2080TiRoofline();
  EXPECT_NEAR(r.peak_flops, 13.45e12, 1e10);
  EXPECT_NEAR(r.mem_bandwidth, 616e9, 1e9);
}

}  // namespace
}  // namespace nsflow
