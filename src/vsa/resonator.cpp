#include "vsa/resonator.h"

#include "common/error.h"

namespace nsflow::vsa {

ResonatorResult Factorize(const HyperVector& composite,
                          std::span<const Codebook> codebooks,
                          const ResonatorOptions& options) {
  NSF_CHECK_MSG(!codebooks.empty(), "need at least one factor codebook");
  const std::size_t num_factors = codebooks.size();

  // Initialize every factor estimate with the bundle of its codebook — the
  // maximally uncertain superposition state.
  std::vector<HyperVector> estimates;
  estimates.reserve(num_factors);
  for (const auto& cb : codebooks) {
    estimates.push_back(Bundle(cb.entries()));
  }

  ResonatorResult result;
  result.factors.assign(num_factors, -1);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    bool changed = false;
    for (std::size_t i = 0; i < num_factors; ++i) {
      // Unbind all *other* current estimates from the composite.
      HyperVector residual = composite;
      for (std::size_t j = 0; j < num_factors; ++j) {
        if (j != i) {
          residual = Unbind(residual, estimates[j]);
        }
      }
      // Cleanup against this factor's codebook and snap to the winner.
      const auto cleanup = codebooks[i].Cleanup(residual);
      if (cleanup.symbol != result.factors[i]) {
        changed = true;
        result.factors[i] = cleanup.symbol;
      }
      estimates[i] = codebooks[i].at(cleanup.symbol);
    }
    if (!changed && options.early_stop) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace nsflow::vsa
