// Factory for the paper's baseline devices (Sec. VI-A hardware setup).
//
// Every calibration constant in the zoo lives in device_zoo.cpp next to a
// comment naming the datasheet number or paper figure it is calibrated
// against. These models are the documented substitution for physical
// hardware (DESIGN.md): they reproduce the *shape* of Fig. 1 and Fig. 5 —
// orderings and rough speedup factors — not testbed-exact latencies.
#pragma once

#include <memory>
#include <vector>

#include "model/device_model.h"
#include "model/roofline.h"

namespace nsflow {

enum class DeviceKind {
  kJetsonTx2,
  kXavierNx,
  kXeonCpu,
  kRtx2080,
  kCoralTpu,
  kTpuLikeSa,   // Monolithic 128x128 weight-stationary systolic array.
  kXilinxDpu,   // DPU-like fixed INT8 convolution engine.
};

const char* DeviceKindName(DeviceKind kind);

/// Build one device model.
std::unique_ptr<DeviceModel> MakeDevice(DeviceKind kind);

/// The Fig. 5 comparison set, in the paper's legend order
/// (TX2, NX, Xeon CPU, RTX 2080, TPU-like SA, DPU).
std::vector<std::unique_ptr<DeviceModel>> MakeFig5Baselines();

/// RTX 2080 Ti roofline used in the paper's Fig. 1c.
Roofline Rtx2080TiRoofline();

}  // namespace nsflow
