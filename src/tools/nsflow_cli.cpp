// nsflow — command-line front door to the framework (the `NSFlow-generated`
// flow of paper Fig. 2).
//
// Usage:
//   nsflow compile <trace.json> [--out-dir DIR] [--max-pes N]
//                  [--clock-mhz F] [--no-phase2]
//       Run the frontend on a JSON program trace and emit the deployment
//       artifacts: design_config.json, host.cpp, nsflow_params.vh,
//       nsflow_top.v, and a report.txt with the DSE decision and the
//       predicted performance/utilization.
//
//   nsflow estimate <trace.json> [--device NAME]
//       Predict end-to-end latency of the workload on a baseline device
//       (tx2 | nx | cpu | rtx2080 | coral | tpu-like | dpu) or on the
//       NSFlow-generated design (default).
//
//   nsflow serve [trace.json] [--qps F] [--duration F] [--replicas N]
//                [--max-batch N] [--max-wait-ms F] [--seed N] [--threads N]
//                [--heterogeneous] [--mix name=share,...] [--partition]
//       Compile the workload (built-in NVSA when no trace is given), deploy
//       a pool of accelerator replicas, drive it with an open-loop Poisson
//       arrival trace, and print the ServeStats table (p50/p95/p99 latency,
//       throughput, queue depth, per-replica utilization). With --mix the
//       pool turns multi-tenant: every listed workload (built-ins mlp |
//       resnet18 | nvsa | mimonet | lvrf | prae, plus the trace file when
//       given) is compiled through the WorkloadRegistry and served side by
//       side at its share of the offered load, with a per-workload
//       latency/throughput breakdown. --partition dedicates replica r to
//       workload r % W instead of sharing every replica across all
//       workloads (requires replicas >= workloads). See docs/SERVING.md.
//
//   nsflow demo
//       Compile the built-in NVSA workload and print a summary.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "fpga/device.h"
#include "graph/trace.h"
#include "model/device_zoo.h"
#include "nsflow/framework.h"
#include "serve/engine.h"
#include "workloads/builders.h"

namespace nsflow {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("cannot open file: " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw Error("cannot write file: " + path);
  }
  out << contents;
}

struct CliArgs {
  std::string command;
  std::string trace_path;
  std::string out_dir = ".";
  std::string device = "nsflow";
  DseOptions dse;
  serve::ServeOptions serve;
  int replicas = 1;
  bool heterogeneous = false;
  std::string mix;       // Multi-tenant QPS mix, e.g. "mlp=0.6,nvsa=0.4".
  bool partition = false;  // Dedicate replica r to workload r % W.
};

CliArgs Parse(int argc, char** argv) {
  CliArgs args;
  if (argc < 2) {
    throw Error("usage: nsflow <compile|estimate|serve|demo> [args]");
  }
  args.command = argv[1];
  int i = 2;
  if ((args.command == "compile" || args.command == "estimate")) {
    if (i >= argc) {
      throw Error(args.command + " needs a trace file argument");
    }
    args.trace_path = argv[i++];
  }
  if (args.command == "serve" && i < argc && argv[i][0] != '-') {
    args.trace_path = argv[i++];  // Optional: defaults to built-in NVSA.
  }
  for (; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw Error("flag " + flag + " needs a value");
      }
      return argv[++i];
    };
    if (flag == "--out-dir") {
      args.out_dir = next();
    } else if (flag == "--max-pes") {
      args.dse.max_pes = std::stoll(next());
    } else if (flag == "--clock-mhz") {
      args.dse.clock_hz = std::stod(next()) * 1e6;
    } else if (flag == "--no-phase2") {
      args.dse.enable_phase2 = false;
    } else if (flag == "--device") {
      args.device = next();
    } else if (flag == "--qps") {
      args.serve.qps = std::stod(next());
    } else if (flag == "--duration") {
      args.serve.duration_s = std::stod(next());
    } else if (flag == "--replicas") {
      args.replicas = static_cast<int>(std::stoll(next()));
    } else if (flag == "--max-batch") {
      args.serve.max_batch = std::stoll(next());
    } else if (flag == "--max-wait-ms") {
      args.serve.max_wait_s = std::stod(next()) * 1e-3;
    } else if (flag == "--seed") {
      args.serve.seed = static_cast<std::uint64_t>(std::stoull(next()));
    } else if (flag == "--threads") {
      args.serve.worker_threads = static_cast<int>(std::stoll(next()));
    } else if (flag == "--heterogeneous") {
      args.heterogeneous = true;
    } else if (flag == "--mix") {
      args.mix = next();
    } else if (flag == "--partition") {
      args.partition = true;
    } else {
      throw Error("unknown flag: " + flag);
    }
  }
  return args;
}

std::string ReportText(const CompiledDesign& compiled) {
  const auto& dse = compiled.dse;
  const auto& d = dse.design;
  std::ostringstream os;
  os << "NSFlow compilation report — workload '"
     << compiled.graph->workload_name() << "'\n\n";
  os << "Dataflow graph: " << compiled.dataflow->layers().size()
     << " NN layers, " << compiled.dataflow->vsa_ops().size()
     << " VSA nodes, " << compiled.dataflow->simd_ops().size()
     << " SIMD ops, " << compiled.dataflow->ParallelOpCount()
     << " parallel-attached ops\n\n";
  os << "DSE (Algorithm 1): " << dse.evaluated_points
     << " model evaluations\n";
  os << "  t_seq  = " << dse.t_seq_cycles << " cycles\n";
  os << "  t_para = " << dse.t_para_cycles << " cycles (Phase I "
     << dse.phase1_cycles << " -> Phase II " << dse.phase2_cycles << ", gain "
     << dse.Phase2Gain() * 100.0 << "%)\n";
  os << "  mode   = " << (d.sequential_mode ? "sequential" : "folded") << "\n\n";
  os << "AdArray: H=" << d.array.height << " W=" << d.array.width
     << " N=" << d.array.count << " (partition " << d.default_nl << ":"
     << d.default_nv << "), SIMD " << d.simd_width << " lanes\n";
  os << "Memory: A1=" << d.memory.mem_a1_bytes / 1e6
     << " MB, A2=" << d.memory.mem_a2_bytes / 1e6
     << " MB, B=" << d.memory.mem_b_bytes / 1e6
     << " MB, C=" << d.memory.mem_c_bytes / 1e6
     << " MB, cache=" << d.memory.cache_bytes / 1e6 << " MB\n\n";

  const ResourceReport rpt = Report(compiled, U250());
  os << "U250 @ " << d.clock_hz / 1e6 << " MHz: DSP " << rpt.dsp_util * 100
     << "%, LUT " << rpt.lut_util * 100 << "%, FF " << rpt.ff_util * 100
     << "%, BRAM " << rpt.bram_util * 100 << "%, URAM "
     << rpt.uram_util * 100 << "% -> " << (rpt.fits ? "fits" : "DOES NOT FIT")
     << "\n";
  os << "Predicted end-to-end latency: " << compiled.PredictedSeconds() * 1e3
     << " ms\n";
  return os.str();
}

int RunCompile(const CliArgs& args, OperatorGraph graph) {
  CompileOptions options;
  options.dse = args.dse;
  const Compiler compiler(options);
  const CompiledDesign compiled = compiler.Compile(std::move(graph));

  const std::string prefix = args.out_dir + "/";
  WriteFile(prefix + "design_config.json", compiled.design_config_json);
  WriteFile(prefix + "host.cpp", compiled.host_code);
  WriteFile(prefix + "nsflow_params.vh", compiled.rtl_parameter_header);
  WriteFile(prefix + "nsflow_top.v", compiled.rtl_top_level);
  const std::string report = ReportText(compiled);
  WriteFile(prefix + "report.txt", report);
  std::printf("%s\nArtifacts written to %s\n", report.c_str(),
              args.out_dir.c_str());
  return 0;
}

int RunEstimate(const CliArgs& args) {
  const OperatorGraph graph = ParseJsonTrace(ReadFile(args.trace_path));
  const int loops = std::max(1, graph.loop_count());

  if (args.device == "nsflow") {
    CompileOptions options;
    options.dse = args.dse;
    const Compiler compiler(options);
    const CompiledDesign compiled =
        compiler.Compile(OperatorGraph(graph));
    std::printf("NSFlow-generated design: %.3f ms end to end\n",
                compiled.PredictedSeconds() * 1e3);
    return 0;
  }

  DeviceKind kind;
  if (args.device == "tx2") {
    kind = DeviceKind::kJetsonTx2;
  } else if (args.device == "nx") {
    kind = DeviceKind::kXavierNx;
  } else if (args.device == "cpu") {
    kind = DeviceKind::kXeonCpu;
  } else if (args.device == "rtx2080") {
    kind = DeviceKind::kRtx2080;
  } else if (args.device == "coral") {
    kind = DeviceKind::kCoralTpu;
  } else if (args.device == "tpu-like") {
    kind = DeviceKind::kTpuLikeSa;
  } else if (args.device == "dpu") {
    kind = DeviceKind::kXilinxDpu;
  } else {
    throw Error("unknown device: " + args.device);
  }
  const auto device = MakeDevice(kind);
  const auto estimate = device->Estimate(graph);
  std::printf("%s: %.3f ms end to end (%.1f%% symbolic)\n",
              device->name().c_str(), estimate.total_s() * loops * 1e3,
              estimate.symbolic_share() * 100.0);
  return 0;
}

/// Multi-tenant serve: compile every mix workload through the registry,
/// deploy one shared (or partitioned) pool over all of them, and print the
/// per-workload breakdown next to the aggregate table.
int RunServeMix(const CliArgs& args) {
  const std::vector<serve::WorkloadShare> mix = serve::ParseMix(args.mix);

  CompileOptions options;
  options.dse = args.dse;
  serve::WorkloadRegistry registry(options);
  // A trace file on the command line registers under its workload name and
  // can then be referenced from the mix like any built-in.
  if (!args.trace_path.empty()) {
    const OperatorGraph traced = ParseJsonTrace(ReadFile(args.trace_path));
    registry.Register(traced.workload_name(), OperatorGraph(traced));
  }
  for (const serve::WorkloadShare& entry : mix) {
    if (!registry.Contains(entry.workload)) {
      registry.RegisterBuiltin(entry.workload);
    }
  }

  if (args.partition && args.replicas < registry.size()) {
    throw Error("--partition needs at least one replica per workload (" +
                std::to_string(registry.size()) + " workloads)");
  }

  // Replica r carries the DSE winner of workload r % W — with --partition
  // it serves only that workload, otherwise every replica serves the full
  // set with memory provisioned for the worst tenant (the design variety
  // then acts as a heterogeneous pool).
  const std::vector<serve::ReplicaSpec> replicas =
      registry.ReplicaSpecs(args.replicas, args.partition);

  std::printf(
      "NSFlow-Serve — %d workload(s) [", registry.size());
  for (serve::WorkloadId w = 0; w < registry.size(); ++w) {
    std::printf("%s%s", w == 0 ? "" : ", ", registry.NameOf(w).c_str());
  }
  std::printf(
      "], %d replica(s)%s, max batch %lld, max wait %.2f ms\n",
      args.replicas, args.partition ? " (partitioned)" : " (shared)",
      static_cast<long long>(args.serve.max_batch),
      args.serve.max_wait_s * 1e3);
  std::printf("Open-loop trace: %.1f qps for %.2f s (seed %llu), mix %s\n",
              args.serve.qps, args.serve.duration_s,
              static_cast<unsigned long long>(args.serve.seed),
              args.mix.c_str());
  std::printf("Compile cache: %lld compile(s), %lld hit(s)\n\n",
              static_cast<long long>(registry.cache().misses()),
              static_cast<long long>(registry.cache().hits()));

  const serve::ServeReport report =
      serve::RunSyntheticServe(registry, replicas, mix, args.serve);
  std::printf("%s\n", serve::ServeStats::ToTable(report.summary).c_str());
  for (serve::WorkloadId w = 0; w < registry.size(); ++w) {
    const double single =
        report.single_request_by_workload[static_cast<std::size_t>(w)];
    std::printf(
        "Single-request baseline [%s]: %.3f ms -> %.1f rps per unbatched "
        "replica\n",
        registry.NameOf(w).c_str(), single * 1e3,
        single > 0.0 ? 1.0 / single : 0.0);
  }
  return 0;
}

int RunServe(const CliArgs& args) {
  if (args.replicas < 1) {
    throw Error("--replicas must be at least 1");
  }
  if (!args.mix.empty()) {
    if (args.heterogeneous) {
      throw Error(
          "--heterogeneous is not supported with --mix (a mixed pool is "
          "already heterogeneous: replica r carries workload r % W's "
          "design)");
    }
    return RunServeMix(args);
  }
  OperatorGraph graph = args.trace_path.empty()
                            ? workloads::MakeNvsa()
                            : ParseJsonTrace(ReadFile(args.trace_path));
  const std::string workload_name = graph.workload_name();
  CompileOptions options;
  options.dse = args.dse;
  const Compiler compiler(options);
  const CompiledDesign compiled = compiler.Compile(std::move(graph));

  // Homogeneous pool: N copies of the DSE winner. Heterogeneous pool: walk
  // the (PEs, latency) pareto frontier so big low-latency replicas coexist
  // with small area-efficient ones.
  std::vector<AcceleratorDesign> designs;
  if (args.heterogeneous) {
    // Mirror Compiler::Compile's option adjustment so the frontier designs
    // are provisioned for the same resident dictionaries as the compiled
    // design.
    DseOptions pareto_options = args.dse;
    pareto_options.dictionary_bytes = options.dictionary_bytes;
    const auto frontier =
        ParetoDesigns(*compiled.dataflow, pareto_options, args.replicas);
    for (int r = 0; r < args.replicas; ++r) {
      designs.push_back(
          frontier[static_cast<std::size_t>(r) % frontier.size()].design);
    }
  } else {
    designs.assign(static_cast<std::size_t>(args.replicas),
                   compiled.design());
  }

  std::printf(
      "NSFlow-Serve — workload '%s', %d replica(s)%s, max batch %lld, "
      "max wait %.2f ms\n",
      workload_name.c_str(), args.replicas,
      args.heterogeneous ? " (heterogeneous pareto pool)" : "",
      static_cast<long long>(args.serve.max_batch),
      args.serve.max_wait_s * 1e3);
  std::printf("Open-loop trace: %.1f qps for %.2f s (seed %llu)\n\n",
              args.serve.qps, args.serve.duration_s,
              static_cast<unsigned long long>(args.serve.seed));

  const serve::ServeReport report =
      serve::RunSyntheticServe(*compiled.dataflow, designs, args.serve);
  std::printf("%s\n", serve::ServeStats::ToTable(report.summary).c_str());
  std::printf(
      "Single-request baseline: %.3f ms -> %.1f rps per unbatched replica\n",
      report.single_request_s * 1e3,
      report.single_request_s > 0.0 ? 1.0 / report.single_request_s : 0.0);
  return 0;
}

int Main(int argc, char** argv) {
  const CliArgs args = Parse(argc, argv);
  if (args.command == "compile") {
    return RunCompile(args, ParseJsonTrace(ReadFile(args.trace_path)));
  }
  if (args.command == "estimate") {
    return RunEstimate(args);
  }
  if (args.command == "serve") {
    return RunServe(args);
  }
  if (args.command == "demo") {
    CliArgs demo_args = args;
    demo_args.out_dir = ".";
    return RunCompile(demo_args, workloads::MakeNvsa());
  }
  throw Error("unknown command: " + args.command);
}

}  // namespace
}  // namespace nsflow

int main(int argc, char** argv) {
  try {
    return nsflow::Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nsflow: %s\n", e.what());
    return 1;
  }
}
