#include "model/device_zoo.h"

#include "common/error.h"

namespace nsflow {
namespace {

// Symbolic kernels on general-purpose devices: low compute efficiency (no
// reuse, irregular access) and derated streaming bandwidth. Calibrated so
// that symbolic runtime share on the CPU+GPU system lands near the paper's
// Fig. 1a bars (NVSA ~66%, MIMONet ~94%, LVRF ~80%, PrAE ~92%).
CategoryEfficiency GpuComputeEff() {
  CategoryEfficiency eff;
  eff.matrix_nn = 0.45;   // cuDNN conv on Turing at the small batches /
                          // small images NSAI perception uses (8-16 panels
                          // of 80-160 px): well below large-batch peak.
  eff.other_gemm = 0.40;
  eff.vector_vsa = 0.05;  // Circular conv: no tensor-core path, strided reads.
  eff.elem_vsa = 0.06;
  eff.elem_nn = 0.15;
  return eff;
}

CategoryEfficiency GpuBandwidthEff() {
  CategoryEfficiency eff;
  eff.matrix_nn = 0.70;
  eff.other_gemm = 0.65;
  eff.vector_vsa = 0.22;  // Modulo-indexed gathers defeat coalescing.
  eff.elem_vsa = 0.30;
  eff.elem_nn = 0.60;
  return eff;
}

CategoryEfficiency CpuComputeEff() {
  CategoryEfficiency eff;
  eff.matrix_nn = 0.55;   // MKL GEMM.
  eff.other_gemm = 0.50;
  eff.vector_vsa = 0.10;  // Caches help the small vectors, SIMD gathers hurt.
  eff.elem_vsa = 0.20;
  eff.elem_nn = 0.25;
  return eff;
}

CategoryEfficiency CpuBandwidthEff() {
  CategoryEfficiency eff;
  eff.matrix_nn = 0.60;
  eff.other_gemm = 0.60;
  eff.vector_vsa = 0.55;  // LLC-resident working sets stream reasonably well.
  eff.elem_vsa = 0.70;    // Probability tensors stream linearly.
  eff.elem_nn = 0.55;
  return eff;
}

CategoryEfficiency EdgeSocComputeEff() {
  CategoryEfficiency eff;
  eff.matrix_nn = 0.45;   // Mobile GPU conv kernels.
  eff.other_gemm = 0.40;
  eff.vector_vsa = 0.03;  // Worst case: tiny SMs + uncoalesced circular reads.
  eff.elem_vsa = 0.06;
  eff.elem_nn = 0.12;
  return eff;
}

CategoryEfficiency EdgeSocBandwidthEff() {
  CategoryEfficiency eff;
  eff.matrix_nn = 0.55;
  eff.other_gemm = 0.50;
  eff.vector_vsa = 0.30;
  eff.elem_vsa = 0.35;
  eff.elem_nn = 0.45;
  return eff;
}

CategoryEfficiency EdgeTpuComputeEff() {
  CategoryEfficiency eff;
  eff.matrix_nn = 0.70;   // Conv is the edge TPU's design point.
  eff.other_gemm = 0.55;
  eff.vector_vsa = 0.01;  // No circular-conv support: host fallback.
  eff.elem_vsa = 0.02;
  eff.elem_nn = 0.30;
  return eff;
}

CategoryEfficiency EdgeTpuBandwidthEff() {
  CategoryEfficiency eff;
  eff.matrix_nn = 0.60;
  eff.other_gemm = 0.50;
  eff.vector_vsa = 0.08;  // PCIe/USB hop to host for unsupported ops.
  eff.elem_vsa = 0.10;
  eff.elem_nn = 0.40;
  return eff;
}

}  // namespace

const char* DeviceKindName(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kJetsonTx2:
      return "Jetson TX2";
    case DeviceKind::kXavierNx:
      return "Xavier NX";
    case DeviceKind::kXeonCpu:
      return "Xeon CPU";
    case DeviceKind::kRtx2080:
      return "RTX 2080";
    case DeviceKind::kCoralTpu:
      return "Coral TPU";
    case DeviceKind::kTpuLikeSa:
      return "TPU-like SA";
    case DeviceKind::kXilinxDpu:
      return "DPU";
  }
  return "?";
}

std::unique_ptr<DeviceModel> MakeDevice(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kJetsonTx2: {
      DeviceSpec spec;
      spec.name = DeviceKindName(kind);
      spec.peak_flops = 0.665e12;     // 256-core Pascal @ 1.3 GHz, FP32.
      spec.mem_bandwidth = 58.4e9;    // LPDDR4 datasheet.
      spec.launch_overhead_s = 25e-6; // Slow mobile driver stack.
      spec.compute_eff = EdgeSocComputeEff();
      spec.bandwidth_eff = EdgeSocBandwidthEff();
      spec.tdp_watts = 15.0;
      return std::make_unique<RooflineDevice>(spec);
    }
    case DeviceKind::kXavierNx: {
      DeviceSpec spec;
      spec.name = DeviceKindName(kind);
      spec.peak_flops = 1.1e12;       // Volta iGPU FP32 + DLA share.
      spec.mem_bandwidth = 51.2e9;    // LPDDR4x datasheet.
      spec.launch_overhead_s = 18e-6;
      spec.compute_eff = EdgeSocComputeEff();
      spec.bandwidth_eff = EdgeSocBandwidthEff();
      spec.tdp_watts = 20.0;
      return std::make_unique<RooflineDevice>(spec);
    }
    case DeviceKind::kXeonCpu: {
      DeviceSpec spec;
      spec.name = DeviceKindName(kind);
      spec.peak_flops = 1.6e12;       // ~20 cores x AVX-512 FMA @ 2.5 GHz.
      spec.mem_bandwidth = 107e9;     // 6-channel DDR4-2666.
      spec.launch_overhead_s = 2e-6;  // Function call, not a device dispatch.
      spec.compute_eff = CpuComputeEff();
      spec.bandwidth_eff = CpuBandwidthEff();
      spec.tdp_watts = 150.0;
      return std::make_unique<RooflineDevice>(spec);
    }
    case DeviceKind::kRtx2080: {
      DeviceSpec spec;
      spec.name = DeviceKindName(kind);
      spec.peak_flops = 10.1e12;      // Turing TU104 FP32.
      spec.mem_bandwidth = 448e9;     // GDDR6 datasheet.
      spec.launch_overhead_s = 8e-6;  // CUDA launch latency dominates the
                                      // many small symbolic kernels.
      spec.compute_eff = GpuComputeEff();
      spec.bandwidth_eff = GpuBandwidthEff();
      spec.tdp_watts = 215.0;
      return std::make_unique<RooflineDevice>(spec);
    }
    case DeviceKind::kCoralTpu: {
      DeviceSpec spec;
      spec.name = DeviceKindName(kind);
      spec.peak_flops = 4.0e12;       // 4 TOPS INT8.
      spec.mem_bandwidth = 8e9;       // On-board LPDDR + USB/PCIe host hop.
      spec.launch_overhead_s = 80e-6;
      spec.compute_eff = EdgeTpuComputeEff();
      spec.bandwidth_eff = EdgeTpuBandwidthEff();
      spec.tdp_watts = 4.0;
      return std::make_unique<RooflineDevice>(spec);
    }
    case DeviceKind::kTpuLikeSa: {
      // Paper Sec. VI-B: "TPU-like systolic array (128x128)". Same fabric
      // clock (272 MHz) and DDR4 bandwidth as the NSFlow U250 deployment so
      // the comparison isolates the architecture, not the board.
      return std::make_unique<SystolicArrayDevice>(
          DeviceKindName(kind), ArrayConfig{128, 128, 1},
          /*clock_hz=*/272e6, /*mem_bandwidth=*/77e9);
    }
    case DeviceKind::kXilinxDpu: {
      // DPUCADF8H-class engine: ~64x64 INT8 MAC fabric at 300 MHz. Better
      // clock than our fabric but rigid conv-only dataflow.
      return std::make_unique<SystolicArrayDevice>(
          DeviceKindName(kind), ArrayConfig{64, 64, 1},
          /*clock_hz=*/300e6, /*mem_bandwidth=*/77e9,
          /*launch_overhead_s=*/4e-6);
    }
  }
  throw Error("unknown device kind");
}

std::vector<std::unique_ptr<DeviceModel>> MakeFig5Baselines() {
  std::vector<std::unique_ptr<DeviceModel>> devices;
  devices.push_back(MakeDevice(DeviceKind::kJetsonTx2));
  devices.push_back(MakeDevice(DeviceKind::kXavierNx));
  devices.push_back(MakeDevice(DeviceKind::kXeonCpu));
  devices.push_back(MakeDevice(DeviceKind::kRtx2080));
  devices.push_back(MakeDevice(DeviceKind::kTpuLikeSa));
  devices.push_back(MakeDevice(DeviceKind::kXilinxDpu));
  return devices;
}

Roofline Rtx2080TiRoofline() {
  // TU102: 13.45 TFLOPS FP32 peak, 616 GB/s GDDR6 — the paper's Fig. 1c axes.
  return Roofline{13.45e12, 616e9};
}

}  // namespace nsflow
