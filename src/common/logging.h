// Minimal leveled logger.
//
// Intended for the framework's host-side tooling (trace ingestion, DSE
// progress, runtime scheduling), not for per-cycle simulator events — the
// simulator exposes structured statistics instead of log spam.
#pragma once

#include <sstream>
#include <string>

namespace nsflow {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emit one log line (thread safe). Prefer the NSF_LOG macro.
void LogMessage(LogLevel level, std::string_view file, int line,
                const std::string& message);

namespace internal {

/// Stream-style collector used by NSF_LOG; flushes on destruction.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { LogMessage(level_, file_, line_, os_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream os_;
};

}  // namespace internal
}  // namespace nsflow

#define NSF_LOG(level) \
  ::nsflow::internal::LogStream(::nsflow::LogLevel::level, __FILE__, __LINE__)
