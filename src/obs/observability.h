// Observability bundle — the one object the serve engine threads through
// the pipeline when tracing is on (docs/OBSERVABILITY.md).
//
// `ObsOptions` rides inside `ServeOptions` (engine.h) and the engine
// constructs one `Observability` per traced run: the TraceRecorder takes
// the lifecycle events, the MetricsRegistry takes the aggregate
// instruments the components publish into (ServeStats latencies,
// BatchFormer close reasons, ServerPool cache hits, Autoscaler decisions),
// and `meta` collects what the Chrome exporter needs for track naming.
// `ServeReport::obs` hands the bundle back to the caller, who exports with
// ChromeTraceJson / BinaryTrace / MetricsJson.
//
// Overhead contract: with `enabled == false` the serve path pays exactly
// one null-pointer test per record site; with tracing on, the fixed-seed
// serve bench must stay within 5% wall clock of tracing off
// (bench_serve_fastpath's `obs_overhead` gate), and two runs at the same
// seed must serialize bit-identical traces.
#pragma once

#include <cstddef>
#include <string>

#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"

namespace nsflow::obs {

struct ObsOptions {
  /// Master switch: off = zero recording, null metrics, no overhead beyond
  /// a branch per record site.
  bool enabled = false;
  /// Export expansion (recording cost is identical either way).
  TraceDetail detail = TraceDetail::kSpans;
  /// > 0: per-shard ring buffers keeping only the newest records (long
  /// runs); 0: unbounded pools.
  std::size_t ring_capacity = 0;
  /// Virtual-time cadence of metrics-timeline snapshots.
  double snapshot_interval_s = 0.25;
};

struct Observability {
  explicit Observability(const ObsOptions& opts)
      : options(opts), recorder(opts.ring_capacity) {}

  ObsOptions options;
  TraceRecorder recorder;
  MetricsRegistry metrics;
  TraceMeta meta;

  /// The Chrome trace_event JSON of everything recorded so far.
  std::string ChromeTraceJson() const {
    return SerializeChromeTrace(
        BuildChromeTrace(recorder.Drain(), meta, options.detail));
  }
  /// The compact binary encoding of everything recorded so far.
  std::string BinaryTrace() const {
    return SerializeBinaryTrace(recorder.Drain());
  }
  /// The metrics.json timeline document.
  std::string MetricsJson() const { return metrics.TimelineJson().Dump(2); }
};

}  // namespace nsflow::obs
