// Deterministic random-number utilities.
//
// All stochastic components of the reproduction (synthetic RPM task
// generation, hypervector codebook sampling, workload perturbation sweeps)
// draw from an explicitly-seeded `Rng` so that every table and figure is
// bit-reproducible run to run.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/error.h"

namespace nsflow {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5f3759df) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    NSF_DCHECK(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal scaled by `stddev` around `mean`.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Random sign in {-1.0, +1.0} — the bipolar draw used for hypervectors.
  double Sign() { return Bernoulli(0.5) ? 1.0 : -1.0; }

  /// Sample `k` distinct indices from [0, n).
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(i) - 1));
      std::swap(values[i - 1], values[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace nsflow
