// Design-choice ablations beyond the paper's Fig. 6: sensitivity of the
// generated NVSA design to the knobs NSFlow's architecture exposes —
// sub-array granularity, aspect ratio, SIMD width, and DRAM bandwidth.
// These quantify *why* the DSE picks what it picks.
#include <cstdio>

#include "common/table.h"
#include "dse/dse.h"
#include "model/accel_model.h"
#include "workloads/builders.h"

namespace nsflow {
namespace {

double EvaluateForced(const DataflowGraph& dfg, ArrayConfig array,
                      double* phase2_gain = nullptr) {
  DseOptions options;
  options.enable_phase1 = false;
  options.forced_array = array;
  const DseResult result = RunTwoPhaseDse(dfg, options);
  if (phase2_gain != nullptr) {
    *phase2_gain = result.Phase2Gain();
  }
  return result.t_para_cycles / options.clock_hz * 1e3;
}

void GranularityAblation(const DataflowGraph& dfg) {
  std::printf("Sub-array granularity at a fixed 16384-PE budget "
              "(folding flexibility vs. per-pass overhead):\n");
  TablePrinter table({"Geometry (H,W,N)", "Sub-arrays", "ms/loop"});
  for (const auto& cfg :
       {ArrayConfig{128, 128, 1}, ArrayConfig{64, 64, 4},
        ArrayConfig{32, 64, 8}, ArrayConfig{32, 32, 16},
        ArrayConfig{32, 16, 32}, ArrayConfig{16, 16, 64}}) {
    table.AddRow({std::to_string(cfg.height) + "," +
                      std::to_string(cfg.width) + "," +
                      std::to_string(cfg.count),
                  std::to_string(cfg.count),
                  TablePrinter::Num(EvaluateForced(dfg, cfg), 2)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void AspectRatioAblation(const DataflowGraph& dfg) {
  std::printf("Aspect ratio at fixed PEs-per-sub-array (H*W = 2048, N = 8):\n");
  TablePrinter table({"H", "W", "H/W", "ms/loop"});
  for (const auto& [h, w] : std::vector<std::pair<std::int64_t, std::int64_t>>{
           {128, 16}, {64, 32}, {32, 64}, {16, 128}}) {
    table.AddRow({std::to_string(h), std::to_string(w),
                  TablePrinter::Num(static_cast<double>(h) / w, 2),
                  TablePrinter::Num(EvaluateForced(dfg, {h, w, 8}), 2)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void SimdWidthAblation(const DataflowGraph& dfg) {
  std::printf("SIMD width (exposed element-wise latency vs. lane cost):\n");
  DseOptions base;
  const DseResult reference = RunTwoPhaseDse(dfg, base);
  TablePrinter table({"Width", "SIMD cycles", "Exposed cycles", "ms total"});
  for (const std::int64_t width : {8LL, 16LL, 64LL, 256LL, 1024LL}) {
    AcceleratorDesign design = reference.design;
    design.simd_width = width;
    const AccelPerf perf = EstimateAccelerator(dfg, design);
    table.AddRow({std::to_string(width),
                  TablePrinter::Num(perf.simd_cycles, 0),
                  TablePrinter::Num(perf.simd_exposed_cycles, 0),
                  TablePrinter::Num(perf.total_cycles / design.clock_hz * 1e3,
                                    2)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void BandwidthAblation(const DataflowGraph& dfg) {
  std::printf("DRAM bandwidth (double-buffering hides transfers until the "
              "AXI port saturates):\n");
  DseOptions base;
  const DseResult reference = RunTwoPhaseDse(dfg, base);
  TablePrinter table({"Channels", "GB/s", "DRAM stall cycles", "ms total"});
  for (const int channels : {1, 2, 4, 8}) {
    AcceleratorDesign design = reference.design;
    design.dram_bandwidth = 19.25e9 * channels;
    const AccelPerf perf = EstimateAccelerator(dfg, design);
    table.AddRow({std::to_string(channels),
                  TablePrinter::Num(design.dram_bandwidth / 1e9, 1),
                  TablePrinter::Num(perf.dram_stall_cycles, 0),
                  TablePrinter::Num(perf.total_cycles / design.clock_hz * 1e3,
                                    2)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace nsflow

int main() {
  std::printf("=== NSFlow design-choice ablations (NVSA workload) ===\n\n");
  const nsflow::OperatorGraph graph = nsflow::workloads::MakeNvsa();
  const nsflow::DataflowGraph dfg(graph);
  nsflow::GranularityAblation(dfg);
  nsflow::AspectRatioAblation(dfg);
  nsflow::SimdWidthAblation(dfg);
  nsflow::BandwidthAblation(dfg);
  return 0;
}
