#!/usr/bin/env python3
"""NSFlow perf-regression harness.

Runs the serve benches from an existing build tree and records the perf
trajectory artifacts: BENCH_serve.json (fast-path cycle estimation — see
docs/PERFORMANCE.md) and BENCH_plan.json (capacity-planner predicted vs
measured p99 per traffic scenario, the elastic-vs-static autoscale
headline, the adversity hardening gate, the admission overload gate, and
the multi-node cluster survival gate — see docs/PLANNING.md,
docs/AUTOSCALING.md, docs/SCENARIOS.md, docs/ADMISSION.md, and
docs/CLUSTER.md). The heavy
lifting happens inside bench_serve_fastpath and bench_plan_scenarios;
this script drives them, sanity-checks the emitted JSON, and fails loudly
when the fast-path estimator diverges from the functional simulator, a
planned pool's measured tail leaves the documented tolerance band, or the
autoscaled run misses its SLO / replica-seconds gate.

Perf-trajectory gate (`--compare`): compare the freshly emitted artifacts
against checked-in baselines (bench/baselines/) and exit non-zero on
regression. Metrics come in two classes:

  * virtual  — results on the simulated timeline (throughput, p99,
               replica counts, the autoscale replica-seconds ratio).
               Deterministic up to libm differences across platforms;
               gated at --tolerance (default 0.25 relative).
  * wall     — host wall-clock measurements (fill times, warm-hit ns,
               engine wall ms). Machine-dependent, so gated only against
               catastrophic regressions at --wall-tolerance (default 10x)
               while still being recorded in the delta report.

Improvements never fail the gate. `--delta-out` writes the full
per-metric comparison as JSON (the CI bench-smoke job uploads it).

Usage:
  tools/run_benches.py [--build-dir build] [--out BENCH_serve.json]
                       [--plan-out BENCH_plan.json] [--smoke] [--full]
                       [--compare bench/baselines] [--tolerance 0.25]
                       [--wall-tolerance 10] [--delta-out BENCH_delta.json]
                       [--trace-out trace.json]

  --smoke  reduced iteration counts (the CI bench-smoke job's mode)
  --full   additionally run the serve throughput/multi-tenant sweeps
           (console tables only; they do not feed the JSON)
"""

import argparse
import json
import pathlib
import subprocess
import sys


def run(cmd, **kwargs):
    print("+", " ".join(str(c) for c in cmd), flush=True)
    return subprocess.run(cmd, **kwargs)


def require_binary(build, target):
    """The bench binary, or a clear non-zero exit telling what to build."""
    path = build / target
    if not path.exists():
        sys.exit(f"error: {path} not found — build target {target} first:\n"
                 f"  cmake -B {build} -S . && "
                 f"cmake --build {build} -j --target {target}")
    return path


def load_artifact(path):
    """Parse an emitted artifact, failing with a clear message instead of a
    traceback when the file is missing or truncated."""
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        sys.exit(f"error: bench artifact {path} was not written")
    except json.JSONDecodeError as err:
        sys.exit(f"error: bench artifact {path} is not valid JSON ({err})")


# ---------------------------------------------------------------- comparison

def collect_metrics(serve_report, plan_report):
    """(name, value, better, cls) rows for the perf-trajectory gate.

    `better` is the direction of improvement ("higher"/"lower"); `cls` is
    "virtual" (simulated-timeline results, tight tolerance) or "wall"
    (host timings, catastrophic-only tolerance).
    """
    metrics = []
    if serve_report is not None:
        cold = serve_report["cold_cache"]
        metrics += [
            ("serve.throughput_rps",
             serve_report["serve"]["throughput_rps"], "higher", "virtual"),
            ("serve.p99_ms", serve_report["serve"]["p99_ms"],
             "lower", "virtual"),
            ("cold_cache.speedup", cold["speedup"], "higher", "wall"),
            ("latency_cache.warm_hit_ns",
             serve_report["latency_cache"]["warm_hit_ns"], "lower", "wall"),
            ("serve.engine_wall_ms",
             serve_report["serve"]["engine_wall_ms"], "lower", "wall"),
        ]
        obs = serve_report.get("obs_overhead")
        if obs is not None:
            metrics += [
                ("obs_overhead.ratio", obs["ratio"], "lower", "wall"),
                ("obs_overhead.on_wall_ms", obs["on_wall_ms"],
                 "lower", "wall"),
            ]
        event_core = serve_report.get("event_core")
        if event_core is not None:
            metrics += [
                ("event_core.heap_events_per_s",
                 event_core["heap_events_per_s"], "higher", "wall"),
                ("event_core.event_wall_ms", event_core["event_wall_ms"],
                 "lower", "wall"),
                ("event_core.legacy_over_event",
                 event_core["legacy_over_event"], "higher", "wall"),
            ]
    if plan_report is not None:
        for row in plan_report["scenarios"]:
            tag = f"plan[{row['scenario']}]"
            metrics += [
                (f"{tag}.replicas", row["replicas"], "lower", "virtual"),
                (f"{tag}.throughput_rps", row["throughput_rps"],
                 "higher", "virtual"),
                (f"{tag}.planning_wall_ms", row["planning_wall_ms"],
                 "lower", "wall"),
                (f"{tag}.wall_ms", row["wall_ms"], "lower", "wall"),
            ]
        autoscale = plan_report.get("autoscale")
        if autoscale is not None:
            metrics += [
                ("autoscale.replica_seconds_ratio",
                 autoscale["replica_seconds_ratio"], "lower", "virtual"),
                ("autoscale.elastic_p99_ms", autoscale["elastic_p99_ms"],
                 "lower", "virtual"),
                ("autoscale.elastic_wall_ms", autoscale["elastic_wall_ms"],
                 "lower", "wall"),
            ]
        adversity = plan_report.get("adversity")
        if adversity is not None:
            metrics += [
                ("adversity.replica_seconds_overhead",
                 adversity["replica_seconds_overhead"], "lower", "virtual"),
                ("adversity.fault_p99_ms", adversity["fault_p99_ms"],
                 "lower", "virtual"),
                ("adversity.fault_wall_ms", adversity["fault_wall_ms"],
                 "lower", "wall"),
            ]
        admission = plan_report.get("admission")
        if admission is not None:
            metrics += [
                ("admission.critical_p99_ms",
                 admission["critical_p99_ms"], "lower", "virtual"),
                ("admission.wall_ms", admission["wall_ms"],
                 "lower", "wall"),
            ]
        cluster = plan_report.get("cluster")
        if cluster is not None:
            metrics += [
                ("cluster.critical_p99_ms",
                 cluster["critical_p99_ms"], "lower", "virtual"),
                ("cluster.remote_batches", cluster["remote_batches"],
                 "lower", "virtual"),
                ("cluster.network_s", cluster["network_s"],
                 "lower", "virtual"),
                ("cluster.wall_ms", cluster["wall_ms"], "lower", "wall"),
            ]
    return metrics


def compare(baseline_dir, serve_report, plan_report, out_name, plan_name,
            tolerance, wall_tolerance, delta_out):
    """Gate the fresh artifacts against the checked-in baselines. Returns
    the number of gated regressions (0 = pass)."""
    baseline_serve = load_artifact(baseline_dir / out_name)
    baseline_plan = load_artifact(baseline_dir / plan_name)
    current = dict(
        (name, (value, better, cls))
        for name, value, better, cls in collect_metrics(serve_report,
                                                        plan_report))
    rows = []
    regressions = 0
    for name, base, better, cls in collect_metrics(baseline_serve,
                                                   baseline_plan):
        if name not in current:
            rows.append({"metric": name, "baseline": base,
                         "status": "missing-in-current"})
            regressions += 1
            continue
        value = current[name][0]
        # Relative regression in the "worse" direction; improvements are
        # negative and never gate.
        if base == 0:
            change = 0.0 if value == 0 else float("inf")
        elif better == "lower":
            change = (value - base) / abs(base)
        else:
            change = (base - value) / abs(base)
        allowed = tolerance if cls == "virtual" else wall_tolerance
        status = "ok" if change <= allowed else "REGRESSION"
        if status != "ok":
            regressions += 1
            print(f"PERF REGRESSION: {name} {base:g} -> {value:g} "
                  f"({change:+.1%} worse, {cls} tolerance {allowed:.0%})",
                  file=sys.stderr)
        rows.append({"metric": name, "class": cls, "better": better,
                     "baseline": base, "current": value,
                     "regression": change, "allowed": allowed,
                     "status": status})
    report = {
        "baseline_dir": str(baseline_dir),
        "tolerance": tolerance,
        "wall_tolerance": wall_tolerance,
        "regressions": regressions,
        "metrics": rows,
    }
    if delta_out:
        with open(delta_out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {delta_out}")
    worst = max((r.get("regression", 0.0) for r in rows
                 if isinstance(r.get("regression"), float)), default=0.0)
    print(f"perf gate: {len(rows)} metric(s) vs {baseline_dir}, "
          f"{regressions} regression(s), worst change {worst:+.1%}")
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build tree holding the bench binaries")
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="where to write the perf artifact")
    parser.add_argument("--plan-out", default="BENCH_plan.json",
                        help="where to write the planner/scenario artifact")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced iteration counts (CI mode)")
    parser.add_argument("--full", action="store_true",
                        help="also run the serve sweep benches")
    parser.add_argument("--compare", metavar="BASELINE_DIR",
                        help="gate the fresh artifacts against baseline "
                             "BENCH_serve.json/BENCH_plan.json in this "
                             "directory (bench/baselines in CI)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative regression for virtual "
                             "(simulated-timeline) metrics")
    parser.add_argument("--wall-tolerance", type=float, default=10.0,
                        help="allowed relative regression for wall-clock "
                             "metrics (machine-dependent; catastrophic-"
                             "only)")
    parser.add_argument("--delta-out", metavar="FILE",
                        help="write the per-metric comparison report here")
    parser.add_argument("--trace-out", metavar="FILE",
                        help="also write the traced bench run's Chrome "
                             "trace JSON (docs/OBSERVABILITY.md; the CI "
                             "bench-smoke job uploads it)")
    args = parser.parse_args()

    build = pathlib.Path(args.build_dir).resolve()
    fastpath = require_binary(build, "bench_serve_fastpath")

    cmd = [str(fastpath), "--out", args.out]
    if args.smoke:
        cmd.append("--smoke")
    if args.trace_out:
        cmd += ["--trace-out", args.trace_out]
    result = run(cmd)
    if result.returncode != 0:
        print("error: bench_serve_fastpath failed "
              "(estimator/functional divergence, or the observability "
              "overhead gate tripped)",
              file=sys.stderr)
        return result.returncode

    # Independent sanity pass over the artifact: the bench already exits
    # non-zero on divergence, but a malformed or truncated JSON should not
    # reach CI artifacts silently.
    report = load_artifact(args.out)
    divergent = report["contract"]["divergent"]
    if divergent != 0:
        print(f"error: {divergent} divergent cycle estimates",
              file=sys.stderr)
        return 1
    cold = report["cold_cache"]
    print(f"cold-cache fill: functional {cold['functional_fill_us']:.1f} us "
          f"-> fast path {cold['fastpath_fill_us']:.1f} us "
          f"({cold['speedup']:.1f}x), "
          f"warm hit {report['latency_cache']['warm_hit_ns']:.0f} ns")
    serve = report["serve"]
    print(f"serve: {serve['throughput_rps']:.1f} rps over "
          f"{serve['virtual_duration_s']:.1f} virtual s "
          f"({serve['engine_wall_ms']:.1f} ms wall), "
          f"p99 {serve['p99_ms']:.3f} ms")
    obs = report.get("obs_overhead")
    if obs is not None:
        if not obs["ok"]:
            print("error: observability overhead gate recorded a breach in "
                  "the artifact", file=sys.stderr)
            return 1
        print(f"obs overhead: off {obs['off_wall_ms']:.3f} ms -> on "
              f"{obs['on_wall_ms']:.3f} ms ({obs['ratio']:.2f}x, gate "
              f"{obs['gate_ratio']:.2f}x + {obs['gate_epsilon_ms']:.1f} ms)")
    event_core = report.get("event_core")
    if event_core is not None:
        if not event_core["ok"]:
            print("error: event-core events/s gate recorded a breach in "
                  "the artifact", file=sys.stderr)
            return 1
        gate = ("" if event_core["gate_enforced"]
                else ", informational on this build")
        print(f"event core: {event_core['heap_events_per_s'] / 1e6:.1f}M "
              f"events/s (gate "
              f"{event_core['gate_events_per_s'] / 1e6:.0f}M{gate}), "
              f"legacy/event wall "
              f"{event_core['legacy_over_event']:.2f}x")

    # Planner/scenario smoke: plan once, validate predicted vs measured
    # p99 under each arrival pattern, then the autoscale elastic-vs-static
    # comparison. The bench itself exits non-zero on a tolerance or gate
    # violation; re-check the artifact independently.
    plan_bench = require_binary(build, "bench_plan_scenarios")
    cmd = [str(plan_bench), "--out", args.plan_out]
    if args.smoke:
        cmd.append("--smoke")
    result = run(cmd)
    if result.returncode != 0:
        print("error: bench_plan_scenarios failed (measured p99 outside the "
              "documented tolerance of the plan's prediction, or the "
              "autoscale SLO/replica-seconds gate tripped)",
              file=sys.stderr)
        return result.returncode
    plan_report = load_artifact(args.plan_out)
    if plan_report["tolerance"]["violations"] != 0:
        print("error: planner tolerance violations recorded in artifact",
              file=sys.stderr)
        return 1
    rows = plan_report["scenarios"]
    ratios = [w["ratio"] for row in rows for w in row["per_workload"]]
    print(f"plan: {len(rows)} scenario(s) planned+validated, "
          f"p99 meas/pred ratios {min(ratios):.2f}..{max(ratios):.2f}")
    autoscale = plan_report.get("autoscale")
    if autoscale is not None:
        print(f"autoscale: elastic pool used "
              f"{100 * autoscale['replica_seconds_ratio']:.0f}% of the "
              f"static replica-seconds at p99 "
              f"{autoscale['elastic_p99_ms']:.2f} ms "
              f"(SLO {autoscale['p99_slo_ms']:.0f} ms, "
              f"gate {100 * autoscale['replica_seconds_gate']:.0f}%)")
    adversity = plan_report.get("adversity")
    if adversity is not None:
        print(f"adversity: {adversity['pattern']} held p99 "
              f"{adversity['fault_p99_ms']:.2f} ms "
              f"(SLO {adversity['p99_slo_ms']:.0f} ms) at "
              f"{100 * (adversity['replica_seconds_overhead'] - 1):.1f}% "
              f"replica-seconds overhead (gate "
              f"{100 * (adversity['overhead_gate'] - 1):.0f}%)")
    admission = plan_report.get("admission")
    if admission is not None:
        print(f"admission: {admission['policy']} held critical p99 "
              f"{admission['critical_p99_ms']:.2f} ms "
              f"(SLO {admission['p99_slo_ms']:.0f} ms) under "
              f"{admission['scenario']} + {admission['adversity']}, "
              f"shedding {admission['batch_shed']} batch-tier request(s), "
              f"{admission['protected_tier_losses']} protected-tier "
              f"loss(es)")
    cluster = plan_report.get("cluster")
    if cluster is not None:
        print(f"cluster: {cluster['spec']} over {cluster['nodes']} node(s) "
              f"held critical p99 {cluster['critical_p99_ms']:.2f} ms "
              f"(SLO {cluster['p99_slo_ms']:.0f} ms) through "
              f"{cluster['adversity']}, {cluster['remote_batches']} remote "
              f"batch(es), {cluster['bytes_moved'] / 1e6:.1f} MB moved, "
              f"{cluster['network_s'] * 1e3:.1f} ms modeled network")

    if args.full:
        for bench in ("bench_serve_throughput", "bench_serve_multitenant",
                      "bench_scalability"):
            path = build / bench
            if path.exists():
                if run([str(path)]).returncode != 0:
                    print(f"error: {bench} failed", file=sys.stderr)
                    return 1
            else:
                print(f"note: {path} not built, skipping "
                      f"(build target {bench} to include it)")

    print(f"wrote {args.out} and {args.plan_out}")

    if args.compare:
        baseline_dir = pathlib.Path(args.compare)
        if not baseline_dir.is_dir():
            sys.exit(f"error: baseline directory {baseline_dir} not found")
        regressions = compare(baseline_dir, report, plan_report,
                              "BENCH_serve.json", "BENCH_plan.json",
                              args.tolerance, args.wall_tolerance,
                              args.delta_out)
        if regressions:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
