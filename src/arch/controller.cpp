#include "arch/controller.h"

#include <algorithm>

#include "common/error.h"

namespace nsflow::arch {

Controller::Controller(const AcceleratorDesign& design,
                       const DataflowGraph& dfg)
    : design_(design),
      dfg_(dfg),
      array_(design.array),
      simd_(design.simd_width),
      memory_(design.memory) {
  memory_.set_bytes_per_cycle(design.dram_bandwidth / design.clock_hz);
  if (design.sequential_mode) {
    memory_.MergeMemA();  // Single-kind execution: one big stationary buffer.
  }
}

SimReport Controller::RunLoop() {
  SimReport report;
  const auto& layers = dfg_.layers();
  const auto& vsa = dfg_.vsa_ops();

  // Configure the fold for this loop. In sequential mode the whole array
  // serves each kernel in turn; in parallel mode the static split follows
  // the design's default partition (kernel-level refolds are reflected in
  // the per-node Nl/Nv the timing equations consume).
  if (design_.sequential_mode) {
    array_.Fold({design_.array.count, 0});
  } else {
    const std::int64_t nn_share =
        design_.default_nl > 0 ? design_.default_nl : design_.array.count / 2;
    array_.Fold({nn_share, design_.array.count - nn_share});
  }

  // ------------------------------------------------------------- NN lane
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const auto& layer = layers[i];
    const std::int64_t nl =
        design_.sequential_mode ? design_.array.count : design_.nl[i];
    // Stage this layer's filters into MemA1's shadow buffer while the
    // previous layer computes, then swap (double buffering).
    NSF_CHECK_MSG(layer.weight_bytes <= memory_.MemANnCapacity() / 2.0 + 0.5 ||
                      layer.weight_bytes <=
                          memory_.mem_a1().capacity() / 2.0 + 0.5,
                  "DSE memory sizing must fit the largest filter");
    memory_.mem_a1().Stage(
        std::min(layer.weight_bytes, memory_.mem_a1().capacity() / 2.0));
    memory_.mem_a1().Swap();
    report.mem_a_swaps += 1.0;

    report.nn_lane_cycles += LayerCycles(design_.array, nl, layer.gemm);
    memory_.mem_b().Read(layer.weight_bytes);  // IFMAP stream proxy.
    memory_.mem_c().Clear();
    memory_.mem_c().Write(
        std::min(layer.output_bytes, memory_.mem_c().capacity()));

    // AXI traffic: filters always; outputs only when the URAM cache cannot
    // hold them for the next consumer.
    double bytes = layer.weight_bytes;
    if (layer.output_bytes > memory_.cache().capacity()) {
      bytes += layer.output_bytes;
    }
    report.dram_cycles += memory_.DramTransfer(bytes);
    ++report.kernels_executed;
  }

  // ------------------------------------------------------------ VSA lane
  if (!vsa.empty()) {
    std::vector<std::int64_t> nv;
    nv.reserve(vsa.size());
    for (std::size_t j = 0; j < vsa.size(); ++j) {
      nv.push_back(design_.sequential_mode ? design_.array.count
                                           : design_.nv[j]);
    }
    report.vsa_lane_cycles = VsaTotalCycles(design_.array, vsa, nv);
    for (const auto& v : vsa) {
      memory_.mem_a2().Stage(std::min(
          v.bytes / 2.0, memory_.mem_a2().capacity() / 2.0));  // Stationary.
      memory_.mem_a2().Swap();
      report.mem_a_swaps += 1.0;
      report.dram_cycles += memory_.DramTransfer(v.bytes);
      ++report.kernels_executed;
    }
  }

  // --------------------------------------------------------------- Merge
  report.array_cycles =
      design_.sequential_mode
          ? report.nn_lane_cycles + report.vsa_lane_cycles
          : std::max(report.nn_lane_cycles, report.vsa_lane_cycles);

  report.simd_cycles = SimdCycles(dfg_.TotalSimdElems(), design_.simd_width);
  report.simd_exposed_cycles =
      std::max(0.0, report.simd_cycles - report.array_cycles);
  report.dram_stall_cycles =
      std::max(0.0, report.dram_cycles - report.array_cycles);
  report.total_cycles = report.array_cycles + report.simd_exposed_cycles +
                        report.dram_stall_cycles;
  report.dram_bytes = memory_.dram_bytes();
  return report;
}

double Controller::WeightDramCycles() const {
  double weight_bytes = 0.0;
  for (const auto& layer : dfg_.layers()) {
    weight_bytes += layer.weight_bytes;
  }
  for (const auto& v : dfg_.vsa_ops()) {
    // Only the stationary half of a VSA node's footprint stays resident
    // across batch items (RunLoop stages v.bytes / 2 into MemA2); the
    // streamed query operand is per-request traffic.
    weight_bytes += v.bytes / 2.0;
  }
  return weight_bytes / memory_.bytes_per_cycle();
}

double Controller::RunWorkloadBatch(int batch_size) {
  NSF_CHECK_MSG(batch_size >= 1, "batch size must be positive");
  const SimReport steady = RunLoop();
  const int loops = std::max(1, dfg_.source().loop_count());
  const double first = WorkloadSeconds(steady, loops);
  if (batch_size == 1) {
    return first;
  }
  // Marginal loop cost for tasks 2..B: same array/SIMD work, but the
  // stationary-operand AXI traffic disappears (weight-stationary serving),
  // shrinking — often eliminating — the exposed DRAM stall.
  const double amortized_dram =
      std::max(0.0, steady.dram_cycles - WeightDramCycles());
  const double amortized_stall =
      std::max(0.0, amortized_dram - steady.array_cycles);
  const double marginal_cycles =
      steady.array_cycles + steady.simd_exposed_cycles + amortized_stall;
  return first + static_cast<double>(batch_size - 1) *
                     static_cast<double>(loops) * marginal_cycles /
                     design_.clock_hz;
}

double Controller::RunWorkload() {
  const SimReport steady = RunLoop();
  return WorkloadSeconds(steady, std::max(1, dfg_.source().loop_count()));
}

double Controller::WorkloadSeconds(const SimReport& steady, int loops) const {
  if (design_.sequential_mode || loops == 1) {
    return steady.Seconds(design_.clock_hz) * loops;
  }
  const double fill = steady.nn_lane_cycles + steady.vsa_lane_cycles +
                      steady.simd_exposed_cycles + steady.dram_stall_cycles;
  return (fill + static_cast<double>(loops - 1) * steady.total_cycles) /
         design_.clock_hz;
}

}  // namespace nsflow::arch
