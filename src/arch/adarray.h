// AdArray — the adaptive systolic array of paper Sec. IV-B.
//
// The array is built from N sub-arrays of H x W PEs. At runtime each
// sub-array is *folded* into one of two modes:
//   * NN mode: adjacent sub-arrays combine into a wider weight-stationary
//     systolic array running GEMM (conv via im2col); the passing register is
//     bypassed and horizontal neighbor links are enabled.
//   * VSA mode: each column independently runs blockwise circular
//     convolution with the stationary/streaming/passing-register datapath
//     (see circ_conv_column.h).
//
// Two execution fidelities are provided:
//   * Detailed: register-stepped simulation (SimulateGemmPassDetailed and
//     CircConvColumn) that demonstrates the exact microarchitecture and is
//     cross-checked against the closed-form cycle model in tests.
//   * Kernel-level: tiled functional execution that walks the same tile
//     loops the hardware schedule does (row tiles of n across H·Nl, column
//     tiles of k across W) and charges cycles with Eqs. (1)/(3)/(4). This is
//     what the workload-scale controller uses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/tensor.h"
#include "model/analytical.h"

namespace nsflow::arch {

/// Runtime folding state: how many sub-arrays currently run NN vs VSA work.
struct FoldingPlan {
  std::int64_t nn_subarrays = 0;
  std::int64_t vsa_subarrays = 0;
};

/// Result of a kernel-level array execution.
struct ArrayRun {
  Tensor output;
  double cycles = 0.0;
  double macs = 0.0;
  /// Fraction of PE-cycles doing useful MACs over the run.
  double utilization = 0.0;
};

/// Result of the register-stepped GEMM pass (for tests/examples).
struct DetailedGemmRun {
  Tensor output;          // [m, w_tile]
  std::int64_t cycles = 0;
};

class AdArray {
 public:
  explicit AdArray(ArrayConfig config);

  const ArrayConfig& config() const { return config_; }

  /// Reconfigure the fold (kernel-level flexibility, Sec. IV-B). The two
  /// shares must not exceed the sub-array count.
  void Fold(const FoldingPlan& plan);
  const FoldingPlan& folding() const { return folding_; }

  /// GEMM C[m,k] = A[m,n] · B[n,k] on `nl` cooperating sub-arrays (must not
  /// exceed the NN share of the current fold). Functionally exact (tiled
  /// accumulation); cycles follow Eq. (1).
  ArrayRun RunGemm(const Tensor& a, const Tensor& b, std::int64_t nl);

  /// Batch of `count` independent circular convolutions of dimension d:
  /// out[i] = a[i] ⊛ b[i], with a, b shaped [count, d], on `nv` sub-arrays.
  /// Picks the faster of spatial/temporal mapping (Eq. (5)).
  ArrayRun RunCircConvBatch(const Tensor& a, const Tensor& b, std::int64_t nv);

  /// Register-stepped weight-stationary GEMM for one H x W tile: B_tile is
  /// held stationary ([h_tile, w_tile]), the m rows of A_tile ([m, h_tile])
  /// stream through with row skew. Returns the exact output and the
  /// measured pipeline cycles (== 2H + W + m − 2 when the tile fills the
  /// sub-array). Exposed for microarchitecture validation.
  DetailedGemmRun SimulateGemmPassDetailed(const Tensor& a_tile,
                                           const Tensor& b_tile) const;

  /// Register-stepped circular convolution through one column (Fig. 3b).
  /// Returns output and measured cycles (== ⌈d/H⌉ · (3H + d − 1)).
  DetailedGemmRun SimulateCircConvDetailed(std::span<const float> a,
                                           std::span<const float> b) const;

  /// Cumulative statistics since construction.
  double total_cycles() const { return total_cycles_; }
  double total_macs() const { return total_macs_; }
  double nn_cycles() const { return nn_cycles_; }
  double vsa_cycles() const { return vsa_cycles_; }

 private:
  ArrayConfig config_;
  FoldingPlan folding_;
  double total_cycles_ = 0.0;
  double total_macs_ = 0.0;
  double nn_cycles_ = 0.0;
  double vsa_cycles_ = 0.0;
};

}  // namespace nsflow::arch
