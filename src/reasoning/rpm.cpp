#include "reasoning/rpm.h"

#include <algorithm>
#include <set>

#include "common/error.h"
#include "common/math_util.h"

namespace nsflow::reasoning {

const char* RuleTypeName(RuleType type) {
  switch (type) {
    case RuleType::kConstant:
      return "Constant";
    case RuleType::kProgression:
      return "Progression";
    case RuleType::kArithmetic:
      return "Arithmetic";
    case RuleType::kDistributeThree:
      return "DistributeThree";
  }
  return "?";
}

RpmSuiteSpec RavenLikeSuite() {
  RpmSuiteSpec spec;
  spec.name = "RAVEN-like";
  spec.num_attributes = 4;
  spec.values_per_attribute = 10;
  spec.max_perturbed_attributes = 3;
  spec.near_miss_fraction = 0.25;
  return spec;
}

RpmSuiteSpec IRavenLikeSuite() {
  RpmSuiteSpec spec = RavenLikeSuite();
  spec.name = "I-RAVEN-like";
  // I-RAVEN regenerates the candidate set to remove answer-set biases; the
  // distractors become independent perturbations rather than compounding
  // ones — slightly *easier* for a rule-executing solver, matching the
  // paper's 99.0% vs 98.9%.
  spec.max_perturbed_attributes = 2;
  spec.near_miss_fraction = 0.2;
  return spec;
}

RpmSuiteSpec PgmLikeSuite() {
  RpmSuiteSpec spec;
  spec.name = "PGM-like";
  // PGM: more attribute relations (lines + shapes), larger alphabets, and
  // notoriously near-miss answer panels. The float solver plateaus around
  // the paper's 68.7% on this preset.
  spec.name = "PGM-like";
  spec.num_attributes = 6;
  spec.values_per_attribute = 16;
  spec.max_perturbed_attributes = 1;  // All distractors are near misses.
  spec.near_miss_fraction = 1.0;
  return spec;
}

std::int64_t RpmGenerator::ApplyRule(RuleType rule, std::int64_t first,
                                     std::int64_t second, std::int64_t modulus,
                                     std::int64_t step) {
  switch (rule) {
    case RuleType::kConstant:
      return first;
    case RuleType::kProgression:
      return Mod(first + 2 * step, modulus);
    case RuleType::kArithmetic:
      return Mod(first + second, modulus);
    case RuleType::kDistributeThree:
      // Third element is the remaining member of the triple; caller encodes
      // the triple in (first, second) ordering — here we derive it as the
      // value distinct from both (generator keeps triples disjoint).
      return -1;  // Signals "derive from the triple" (handled by caller).
  }
  throw Error("unknown rule type");
}

void RpmGenerator::FillAttribute(RuleType rule, Rng& rng,
                                 std::vector<std::int64_t>& column) const {
  const std::int64_t v = spec_.values_per_attribute;
  column.assign(9, 0);
  switch (rule) {
    case RuleType::kConstant: {
      // Each row holds a constant (rows may differ).
      for (int row = 0; row < 3; ++row) {
        const std::int64_t value = rng.UniformInt(0, v - 1);
        for (int col = 0; col < 3; ++col) {
          column[static_cast<std::size_t>(row * 3 + col)] = value;
        }
      }
      break;
    }
    case RuleType::kProgression: {
      const std::int64_t step = rng.Bernoulli(0.5) ? 1 : -1;
      for (int row = 0; row < 3; ++row) {
        const std::int64_t start = rng.UniformInt(0, v - 1);
        for (int col = 0; col < 3; ++col) {
          column[static_cast<std::size_t>(row * 3 + col)] =
              Mod(start + step * col, v);
        }
      }
      break;
    }
    case RuleType::kArithmetic: {
      for (int row = 0; row < 3; ++row) {
        const std::int64_t a = rng.UniformInt(0, v - 1);
        const std::int64_t b = rng.UniformInt(0, v - 1);
        column[static_cast<std::size_t>(row * 3)] = a;
        column[static_cast<std::size_t>(row * 3 + 1)] = b;
        column[static_cast<std::size_t>(row * 3 + 2)] = Mod(a + b, v);
      }
      break;
    }
    case RuleType::kDistributeThree: {
      // One value triple, permuted differently in each row.
      const auto triple_indices = rng.SampleWithoutReplacement(
          static_cast<std::size_t>(v), 3);
      std::vector<std::int64_t> triple(triple_indices.begin(),
                                       triple_indices.end());
      for (int row = 0; row < 3; ++row) {
        std::vector<std::int64_t> perm = triple;
        rng.Shuffle(perm);
        for (int col = 0; col < 3; ++col) {
          column[static_cast<std::size_t>(row * 3 + col)] =
              perm[static_cast<std::size_t>(col)];
        }
      }
      break;
    }
  }
}

RpmTask RpmGenerator::Generate(Rng& rng) const {
  const std::int64_t attrs = spec_.num_attributes;
  RpmTask task;
  task.rules.reserve(static_cast<std::size_t>(attrs));

  // Grid[position][attribute].
  std::vector<Panel> grid(9, Panel(static_cast<std::size_t>(attrs), 0));
  for (std::int64_t a = 0; a < attrs; ++a) {
    const auto rule = spec_.allowed_rules[static_cast<std::size_t>(
        rng.UniformInt(0,
                       static_cast<std::int64_t>(spec_.allowed_rules.size()) -
                           1))];
    task.rules.push_back(rule);
    std::vector<std::int64_t> column;
    FillAttribute(rule, rng, column);
    for (int pos = 0; pos < 9; ++pos) {
      grid[static_cast<std::size_t>(pos)][static_cast<std::size_t>(a)] =
          column[static_cast<std::size_t>(pos)];
    }
  }

  task.context.assign(grid.begin(), grid.begin() + 8);
  task.solution = grid[8];

  // Candidates: the solution plus difficulty-controlled distractors. Keep
  // them pairwise distinct.
  std::set<Panel> seen;
  seen.insert(task.solution);
  task.candidates.push_back(task.solution);
  while (static_cast<std::int64_t>(task.candidates.size()) <
         spec_.num_candidates) {
    Panel distractor = task.solution;
    const bool near_miss = rng.Uniform() < spec_.near_miss_fraction;
    const std::int64_t flips =
        near_miss ? 1
                  : rng.UniformInt(1, std::max<std::int64_t>(
                                          1, spec_.max_perturbed_attributes));
    const auto which = rng.SampleWithoutReplacement(
        static_cast<std::size_t>(attrs), static_cast<std::size_t>(flips));
    for (const auto a : which) {
      std::int64_t nv = distractor[a];
      while (nv == distractor[a]) {
        nv = rng.UniformInt(0, spec_.values_per_attribute - 1);
      }
      distractor[a] = nv;
    }
    if (seen.insert(distractor).second) {
      task.candidates.push_back(std::move(distractor));
    }
  }

  // Shuffle candidates and record where the answer landed.
  std::vector<std::size_t> order(task.candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  rng.Shuffle(order);
  std::vector<Panel> shuffled;
  shuffled.reserve(task.candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == 0) {
      task.answer_index = static_cast<std::int64_t>(i);
    }
    shuffled.push_back(task.candidates[order[i]]);
  }
  task.candidates = std::move(shuffled);
  return task;
}

}  // namespace nsflow::reasoning
