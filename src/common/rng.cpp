#include "common/rng.h"

#include <numeric>

namespace nsflow {

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  NSF_CHECK_MSG(k <= n, "cannot sample more elements than the population");
  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  // Partial Fisher–Yates: only the first k positions need to be randomized.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        UniformInt(static_cast<std::int64_t>(i),
                   static_cast<std::int64_t>(n) - 1));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace nsflow
