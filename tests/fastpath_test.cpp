// Fast-path estimator contract (docs/PERFORMANCE.md): the timing-only
// estimator must report *bit-identical* cycle counts and seconds to the
// functional cycle-level simulator — exact double equality, not a
// tolerance — for every builtin workload, batch size, and allocation
// (tuned and refit), and it must do so without materializing a single
// tensor buffer. This is what lets ServerPool::BatchSeconds, the DSE
// sweep, and the serve engine run on the estimator while the functional
// simulator remains the cross-checked reference.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "arch/controller.h"
#include "arch/fastpath.h"
#include "common/tensor.h"
#include "runtime/host_runtime.h"
#include "serve/server_pool.h"
#include "serve/workload_registry.h"

namespace nsflow {
namespace {

const std::vector<int> kBatchSizes = {1, 2, 8, 32};

/// One registry shared by every test: six builtin compiles (each a full
/// two-phase DSE) are paid once per binary, not once per test.
serve::WorkloadRegistry& Registry() {
  static serve::WorkloadRegistry* registry = [] {
    auto* r = new serve::WorkloadRegistry();
    for (const std::string& name : serve::WorkloadRegistry::BuiltinNames()) {
      r->RegisterBuiltin(name);
    }
    return r;
  }();
  return *registry;
}

TEST(FastPathContract, EstimateLoopBitMatchesRunLoopReport) {
  auto& registry = Registry();
  for (serve::WorkloadId w = 0; w < registry.size(); ++w) {
    SCOPED_TRACE(registry.NameOf(w));
    const AcceleratorDesign& design = registry.compiled(w).design();
    const DataflowGraph& dfg = registry.dataflow(w);

    arch::Controller controller(design, dfg);
    const arch::SimReport est = controller.EstimateLoop();
    const arch::SimReport sim = controller.RunLoop();  // Fresh controller.

    EXPECT_EQ(est.nn_lane_cycles, sim.nn_lane_cycles);
    EXPECT_EQ(est.vsa_lane_cycles, sim.vsa_lane_cycles);
    EXPECT_EQ(est.array_cycles, sim.array_cycles);
    EXPECT_EQ(est.simd_cycles, sim.simd_cycles);
    EXPECT_EQ(est.simd_exposed_cycles, sim.simd_exposed_cycles);
    EXPECT_EQ(est.dram_cycles, sim.dram_cycles);
    EXPECT_EQ(est.dram_stall_cycles, sim.dram_stall_cycles);
    EXPECT_EQ(est.total_cycles, sim.total_cycles);
    // A fresh controller's cumulative AXI traffic is exactly one loop.
    EXPECT_EQ(est.dram_bytes, sim.dram_bytes);
    EXPECT_EQ(est.mem_a_swaps, sim.mem_a_swaps);
    EXPECT_EQ(est.kernels_executed, sim.kernels_executed);
  }
}

TEST(FastPathContract, EstimateBitMatchesFunctionalTunedAllBuiltins) {
  auto& registry = Registry();
  for (serve::WorkloadId w = 0; w < registry.size(); ++w) {
    SCOPED_TRACE(registry.NameOf(w));
    const AcceleratorDesign& design = registry.compiled(w).design();
    const DataflowGraph& dfg = registry.dataflow(w);
    runtime::Accelerator accel(design, dfg);

    EXPECT_EQ(accel.EstimateWorkload(), accel.RunWorkload());
    for (const int batch : kBatchSizes) {
      SCOPED_TRACE(batch);
      // Exact double equality — the contract, not a tolerance.
      EXPECT_EQ(accel.EstimateWorkloadBatch(batch),
                accel.RunWorkloadBatch(batch));
      // The free function (what the serving stack calls) agrees too.
      EXPECT_EQ(arch::EstimateWorkloadBatchSeconds(design, dfg, batch),
                accel.RunWorkloadBatch(batch));
      EXPECT_EQ(
          arch::EstimateServingBatchSeconds(design, dfg, batch, true),
          accel.RunWorkloadBatch(batch));
    }
  }
}

TEST(FastPathContract, EstimateBitMatchesFunctionalRefitCrossTenant) {
  auto& registry = Registry();
  // Every design serving every *other* tenant's graph: the refit schedule
  // the multi-tenant pool applies must estimate to exactly what deploying
  // RefitDesign functionally reports. Hardware is provisioned the way a
  // shared pool provisions it (memory grown to the worst tenant) — a raw
  // tuned design rightly fails the filter-fit check on foreign graphs, in
  // both the functional and the estimated path.
  for (serve::WorkloadId owner = 0; owner < registry.size(); ++owner) {
    const AcceleratorDesign hardware = registry.ProvisionDesign(owner);
    for (serve::WorkloadId tenant = 0; tenant < registry.size(); ++tenant) {
      if (tenant == owner) {
        continue;
      }
      SCOPED_TRACE(registry.NameOf(owner) + " serving " +
                   registry.NameOf(tenant));
      const DataflowGraph& dfg = registry.dataflow(tenant);
      runtime::Accelerator functional(serve::RefitDesign(hardware, dfg), dfg);
      for (const int batch : kBatchSizes) {
        SCOPED_TRACE(batch);
        EXPECT_EQ(
            arch::EstimateServingBatchSeconds(hardware, dfg, batch, false),
            functional.RunWorkloadBatch(batch));
      }
    }
  }
}

TEST(FastPathContract, ServerPoolBatchSecondsMatchesFunctionalSim) {
  auto& registry = Registry();
  // Shared multi-tenant pool: replica 0 carries workload 0's provisioned
  // design and serves every tenant — workload 0 tuned, the rest refit.
  const std::vector<serve::ReplicaSpec> specs =
      registry.ReplicaSpecs(/*replicas=*/2, /*partitioned=*/false);
  serve::ServerPool pool(specs, registry.Dataflows());
  const AcceleratorDesign& hardware = specs[0].design;

  for (serve::WorkloadId w = 0; w < registry.size(); ++w) {
    SCOPED_TRACE(registry.NameOf(w));
    const DataflowGraph& dfg = registry.dataflow(w);
    const bool tuned = (w == specs[0].tuned_for);
    runtime::Accelerator functional(
        tuned ? hardware : serve::RefitDesign(hardware, dfg), dfg);
    for (const int batch : kBatchSizes) {
      SCOPED_TRACE(batch);
      EXPECT_EQ(pool.BatchSeconds(0, w, batch),
                functional.RunWorkloadBatch(batch));
    }
  }
}

TEST(FastPathContract, EstimatorNeverAllocatesATensor) {
  auto& registry = Registry();
  // Pre-touch everything so lazy setup outside the estimator is excluded.
  const AcceleratorDesign& design = registry.compiled(0).design();
  const DataflowGraph& dfg = registry.dataflow(0);
  arch::Controller controller(design, dfg);

  const std::int64_t before = Tensor::allocation_count();
  for (int i = 0; i < 100; ++i) {
    for (serve::WorkloadId w = 0; w < registry.size(); ++w) {
      const AcceleratorDesign& d = registry.compiled(w).design();
      const DataflowGraph& g = registry.dataflow(w);
      (void)arch::EstimateLoop(d, g);
      (void)arch::EstimateWorkloadSeconds(d, g);
      (void)arch::EstimateWorkloadBatchSeconds(d, g, 32);
      (void)arch::EstimateServingBatchSeconds(d, g, 32, false);
    }
    (void)controller.EstimateLoop();
    (void)controller.EstimateWorkloadBatch(8);
  }
  EXPECT_EQ(Tensor::allocation_count(), before)
      << "the timing-only fast path materialized a tensor buffer";
}

TEST(TensorReshape, RvalueReshapeMovesStorage) {
  Tensor t({4, 8});
  t.at2(2, 3) = 42.0f;
  const float* storage = t.data();
  Tensor reshaped = std::move(t).Reshaped({8, 4});
  // Move-aware reshape: same buffer, new shape, no copy.
  EXPECT_EQ(reshaped.data(), storage);
  EXPECT_EQ(reshaped.at2(4, 3), 42.0f);

  Tensor source({2, 2});
  const float* original = source.data();
  Tensor copy = source.Reshaped({4});
  // Lvalue reshape still copies; the source keeps its storage.
  EXPECT_NE(copy.data(), original);
  EXPECT_EQ(source.data(), original);
}

TEST(TensorRow, RowPointersAliasStorage) {
  Tensor t({3, 5});
  t.at2(1, 2) = 7.0f;
  EXPECT_EQ(t.row(0), t.data());
  EXPECT_EQ(t.row(1)[2], 7.0f);
  const Tensor& ct = t;
  EXPECT_EQ(ct.row(2), ct.data() + 10);
}

}  // namespace
}  // namespace nsflow
