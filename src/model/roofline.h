// Roofline model (paper Fig. 1c).
//
// For a device with peak compute P (FLOP/s) and memory bandwidth B (byte/s),
// a kernel with arithmetic intensity I (FLOP/byte) attains at most
// min(P, I·B). The characterization bench places each workload's neural and
// symbolic components on the RTX 2080 Ti roofline and classifies them as
// compute- vs. memory-bound, reproducing the paper's observation that
// symbolic VSA kernels sit far left of the ridge point.
#pragma once

#include <string>
#include <vector>

#include "graph/operator_graph.h"

namespace nsflow {

struct Roofline {
  double peak_flops = 0.0;       // FLOP/s
  double mem_bandwidth = 0.0;    // byte/s

  /// Ridge point: intensity above which the kernel is compute-bound.
  double RidgeIntensity() const { return peak_flops / mem_bandwidth; }

  /// Attainable performance at intensity `ai` (FLOP/s).
  double Attainable(double ai) const;

  bool IsComputeBound(double ai) const { return ai >= RidgeIntensity(); }
};

/// One point on the roofline plot.
struct RooflinePoint {
  std::string label;
  double arithmetic_intensity = 0.0;  // FLOP/byte
  double attained_flops = 0.0;        // FLOP/s actually achieved
  bool memory_bound = false;
};

/// Place a workload's neural and symbolic components on `roofline`,
/// derating attained performance by `efficiency` (real kernels do not hit
/// the roofline exactly; the paper's measured points sit below it).
std::vector<RooflinePoint> PlaceOnRoofline(const OperatorGraph& graph,
                                           const Roofline& roofline,
                                           double efficiency = 0.5);

}  // namespace nsflow
