// Tests for the top-level NSFlow framework facade (compile -> deploy).
#include "common/error.h"

#include <gtest/gtest.h>

#include "graph/trace.h"
#include "nsflow/framework.h"
#include "workloads/builders.h"

namespace nsflow {
namespace {

TEST(FrameworkTest, CompileProducesAllArtifacts) {
  const Compiler compiler;
  const CompiledDesign compiled = compiler.Compile(workloads::MakeNvsa());

  EXPECT_NE(compiled.graph, nullptr);
  EXPECT_NE(compiled.dataflow, nullptr);
  EXPECT_FALSE(compiled.design_config_json.empty());
  EXPECT_FALSE(compiled.host_code.empty());
  EXPECT_FALSE(compiled.rtl_parameter_header.empty());
  EXPECT_FALSE(compiled.rtl_top_level.empty());
  EXPECT_GT(compiled.PredictedSeconds(), 0.0);
}

TEST(FrameworkTest, DesignConfigJsonIsValid) {
  const Compiler compiler;
  const CompiledDesign compiled = compiler.Compile(workloads::MakeNvsa());
  const Json doc = Json::Parse(compiled.design_config_json);
  EXPECT_EQ(doc.At("workload").AsString(), "NVSA");
  EXPECT_GT(doc.At("array").At("height").AsInt(), 0);
  EXPECT_EQ(doc.At("precision").At("symbolic").AsString(), "INT4");
}

TEST(FrameworkTest, HostCodeReferencesXrtAndSchedule) {
  const Compiler compiler;
  const CompiledDesign compiled = compiler.Compile(workloads::MakeNvsa());
  const std::string& code = compiled.host_code;
  EXPECT_NE(code.find("#include <xrt/xrt_kernel.h>"), std::string::npos);
  EXPECT_NE(code.find("nsflow_nn"), std::string::npos);
  EXPECT_NE(code.find("nsflow_vsa"), std::string::npos);
  // The fused schedule issues concurrent lanes for a folding design.
  if (!compiled.design().sequential_mode) {
    EXPECT_NE(code.find("lane_nn"), std::string::npos);
    EXPECT_NE(code.find("lane_vsa"), std::string::npos);
  }
}

TEST(FrameworkTest, CompileFromJsonTraceEndToEnd) {
  // Emit a trace from a built workload, then compile from the JSON path —
  // exercising the Fig. 2 entry artifact.
  const std::string trace = EmitJsonTrace(workloads::MakeMimonet());
  const Compiler compiler;
  const CompiledDesign compiled = compiler.CompileJsonTrace(trace);
  EXPECT_EQ(compiled.graph->workload_name(), "MIMONet");
  EXPECT_GT(compiled.PredictedSeconds(), 0.0);
}

TEST(FrameworkTest, DeployAndRun) {
  const Compiler compiler;
  const CompiledDesign compiled = compiler.Compile(workloads::MakeNvsa());
  const auto accelerator = Deploy(compiled);
  ASSERT_NE(accelerator, nullptr);
  const double seconds = accelerator->RunWorkload();
  // The simulated deployment agrees with the frontend's prediction.
  EXPECT_NEAR(seconds, compiled.PredictedSeconds(),
              0.05 * compiled.PredictedSeconds());
}

TEST(FrameworkTest, ReportAgainstU250) {
  const Compiler compiler;
  const CompiledDesign compiled = compiler.Compile(workloads::MakeNvsa());
  const ResourceReport report = Report(compiled, U250());
  EXPECT_TRUE(report.fits);
  EXPECT_GT(report.dsp_util, 0.0);
}

TEST(FrameworkTest, DifferentWorkloadsGetDifferentDesigns) {
  const Compiler compiler;
  const CompiledDesign nvsa = compiler.Compile(workloads::MakeNvsa());
  const CompiledDesign prae = compiler.Compile(workloads::MakePrae());
  // PrAE has no vector-VSA kernels at all: its design must differ in mode
  // or partition from NVSA's folding design.
  const bool differs =
      nvsa.design().sequential_mode != prae.design().sequential_mode ||
      !(nvsa.design().array == prae.design().array) ||
      nvsa.design().default_nl != prae.design().default_nl;
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace nsflow
