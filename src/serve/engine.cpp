#include "serve/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <optional>
#include <queue>
#include <sstream>
#include <thread>
#include <utility>

#include "common/error.h"
#include "serve/autoscaler.h"
#include "serve/batch_former.h"
#include "serve/request_queue.h"

namespace nsflow::serve {

std::vector<Request> SyntheticArrivals(const ServeOptions& options) {
  return SyntheticArrivals(options, {1.0});
}

double EffectiveOfferedRps(const ServeOptions& options,
                           std::int64_t generated_requests) {
  switch (options.scenario.kind) {
    case ScenarioKind::kClosedLoop:
      // Sized by the client count; --qps is ignored.
      return ScenarioMeanRate(options.scenario, options.qps,
                              options.duration_s);
    case ScenarioKind::kTrace:
      // A replayed file has no rate parameter — report what it contained.
      return static_cast<double>(generated_requests) / options.duration_s;
    default:
      return options.qps;
  }
}

std::vector<Request> SyntheticArrivals(
    const ServeOptions& options, const std::vector<double>& shares,
    const std::vector<std::string>& workload_names) {
  NSF_CHECK_MSG(options.duration_s > 0.0, "duration must be positive");
  std::vector<Request> arrivals;
  if (options.scenario.kind == ScenarioKind::kTrace) {
    // Replay: workload labels resolve through the registry's names; a
    // single-workload caller passes {} and the labels are ignored.
    std::ifstream in(options.scenario.trace_path, std::ios::binary);
    if (!in) {
      throw Error("cannot open arrival trace: " + options.scenario.trace_path);
    }
    std::ostringstream text;
    text << in.rdbuf();
    arrivals = ParseArrivalTraceJson(text.str(), workload_names,
                                     options.duration_s);
  } else {
    // The workload draw shares the RNG stream with the inter-arrival draws,
    // so one seed pins the entire (time, workload) trace whatever the
    // scenario (see scenario.cpp).
    arrivals = GenerateArrivals(options.scenario, options.qps,
                                options.duration_s, options.seed, shares);
  }
  // Arrival-side adversity (churn masking, flash-crowd superimposition)
  // composes here, inside the one arrival path: every consumer of the
  // trace — forming, admission accounting, the autoscaler's rate window —
  // sees the same composed stream, so flash extras can never bypass the
  // per-tenant admission books. No-op for the default `none` spec.
  ApplyAdversityArrivals(options.adversity, &arrivals, options.qps,
                         options.duration_s, options.seed, shares);
  return arrivals;
}

std::vector<WorkloadShare> ParseMix(const std::string& spec) {
  std::vector<WorkloadShare> mix;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) {
      end = spec.size();
    }
    const std::string entry = spec.substr(start, end - start);
    const std::size_t eq = entry.find('=');
    if (entry.empty() || eq == std::string::npos || eq == 0) {
      throw Error("bad mix entry '" + entry +
                  "' (expected name=share, e.g. mlp=0.6)");
    }
    WorkloadShare share;
    share.workload = entry.substr(0, eq);
    try {
      share.share = std::stod(entry.substr(eq + 1));
    } catch (const std::exception&) {
      throw Error("bad mix share in '" + entry + "'");
    }
    if (share.share <= 0.0) {
      throw Error("mix share for '" + share.workload + "' must be positive");
    }
    mix.push_back(std::move(share));
    start = end + 1;
  }
  if (mix.empty()) {
    throw Error("empty workload mix");
  }
  return mix;
}

namespace {

/// Shared forming + dispatch loop: stream `arrivals` through the queue into
/// the multi-workload former, sending every closed batch to the earliest
/// capable replica. Works unchanged for the single-workload path (one lane,
/// every replica capable). With `autoscaler` non-null, its control
/// decisions interleave with the arrival stream on the virtual timeline:
/// every tick at or before the next arrival fires first, so a fixed seed
/// pins the whole (arrival, decision) sequence.
ServeReport RunPipeline(ServerPool& pool, ServeStats& stats,
                        const std::vector<Request>& arrivals,
                        const ServeOptions& options,
                        Autoscaler* autoscaler = nullptr,
                        AdmissionController* admission = nullptr,
                        std::shared_ptr<obs::Observability> obs = nullptr) {
  NSF_CHECK_MSG(options.max_batch >= 1, "max_batch must be positive");
  // Observability (docs/OBSERVABILITY.md): resolve the instrument pointers
  // once up front; with `obs` null every record site below is one pointer
  // test — the whole overhead of tracing-off.
  obs::TraceRecorder* recorder = obs != nullptr ? &obs->recorder : nullptr;
  if (obs != nullptr) {
    stats.AttachMetrics(&obs->metrics);
    pool.AttachMetrics(&obs->metrics);
    if (autoscaler != nullptr) {
      autoscaler->AttachMetrics(&obs->metrics);
    }
    if (admission != nullptr) {
      admission->AttachMetrics(&obs->metrics);
    }
  }
  // Per-lane batching policies: `per_workload_max_batch` overrides the
  // uniform cap where set (0 entries fall back).
  std::vector<BatchPolicy> policies(
      static_cast<std::size_t>(pool.workloads()),
      BatchPolicy{options.max_batch, options.max_wait_s});
  NSF_CHECK_MSG(options.per_workload_max_batch.empty() ||
                    options.per_workload_max_batch.size() ==
                        policies.size(),
                "per_workload_max_batch must have one entry per workload");
  for (std::size_t w = 0; w < options.per_workload_max_batch.size(); ++w) {
    if (options.per_workload_max_batch[w] > 0) {
      policies[w].max_batch = options.per_workload_max_batch[w];
    }
  }

  // Producer thread feeds the queue in arrival order; the consumer below
  // drains it into the batch former. FIFO + virtual timestamps keep the
  // result independent of how the two threads interleave. The joiner
  // makes the consumer exception-safe: an error thrown mid-pipeline (an
  // autoscaler guard, a bad trace) must propagate to the caller, not hit
  // the joinable-thread destructor and terminate the process.
  RequestQueue queue;
  std::thread producer([&] {
    for (const Request& request : arrivals) {
      if (!queue.Push(request)) {
        break;  // Queue closed under us — nothing left to feed.
      }
    }
    queue.Close();
  });
  struct ProducerJoiner {
    RequestQueue& queue;
    std::thread& producer;
    ~ProducerJoiner() {
      queue.Close();  // Unblocks a producer still pushing.
      if (producer.joinable()) {
        producer.join();
      }
    }
  } joiner{queue, producer};

  // Parallel cycle-model warm-up, restricted to workloads that actually
  // have traffic — idle tenants stay lazily memoized (their unbatched
  // baseline below is the only evaluation they pay).
  std::vector<bool> active(static_cast<std::size_t>(pool.workloads()), false);
  for (const Request& request : arrivals) {
    active[static_cast<std::size_t>(request.workload)] = true;
  }
  // Warm each active lane only up to *its* batch cap — a cap-1 lane never
  // forms a batch its policy forbids, so pre-evaluating larger sizes for
  // it would be wasted cold-start work. Lanes sharing a cap warm together.
  std::map<std::int64_t, std::vector<WorkloadId>> active_by_cap;
  for (int w = 0; w < pool.workloads(); ++w) {
    if (active[static_cast<std::size_t>(w)]) {
      active_by_cap[policies[static_cast<std::size_t>(w)].max_batch]
          .push_back(w);
    }
  }
  for (const auto& [cap, ids] : active_by_cap) {
    pool.WarmBatchSizes(cap, ids);
  }

  // Integrated forming + dispatch: each closed batch goes straight to the
  // earliest-available capable replica, and the pool's per-workload
  // availability feeds back into the former so lanes grow from backlog
  // while every replica that could take them is busy.
  MultiBatchFormer former(policies);
  if (obs != nullptr) {
    former.AttachMetrics(&obs->metrics);
  }
  if (admission != nullptr) {
    // Tier-priority dispatch: when several lanes close together (or flush
    // at drain), critical lanes preempt batch lanes (tier order == close
    // order). Admission-off runs keep all-zero priorities — the legacy
    // oldest-head-of-line order, bit-exactly.
    for (int w = 0; w < pool.workloads(); ++w) {
      former.SetLanePriority(w, static_cast<int>(admission->TierOf(w)));
    }
  }
  std::vector<DispatchRecord> dispatches;
  std::int64_t started = 0;  // Requests whose batch already dispatched.
  std::int64_t expired_dispatched = 0;  // Defensive; the sweep keeps it 0.

  // Admission's congestion signal. The eager scheduler books closed
  // batches onto replicas ahead of the virtual clock, so forming lanes
  // stay shallow even when the pool is hours behind — the real backlog
  // lives in dispatched batches whose virtual start hasn't arrived yet.
  // Track those here (only when a controller is attached: the
  // admission-off path must stay byte-identical), draining entries as the
  // offer clock passes their start. A replica failure re-enqueues aborted
  // batches without deleting their old entries; the stale entries expire
  // on their own as the clock passes, so the signal briefly over-counts
  // during the outage — conservative shedding, still seed-deterministic.
  std::priority_queue<std::pair<double, std::int64_t>,
                      std::vector<std::pair<double, std::int64_t>>,
                      std::greater<>>
      scheduled_starts;
  std::int64_t scheduled_backlog = 0;

  // Environment-event timeline (adversity.h). Replica failures need commit
  // deferral: the eager scheduler books batches onto replicas ahead of the
  // virtual clock, so a failure must be able to *abort* everything the
  // schedule had placed on the dead replica past the failure instant and
  // re-enqueue it. In deferred mode each dispatched batch's stats/spans
  // are held until the clock provably passes its completion; fault-free
  // runs commit inline — the exact pre-adversity path, bit-identical.
  std::vector<AdversityEvent> env =
      BuildAdversityTimeline(options.adversity, options.duration_s);
  std::size_t env_next = 0;
  const bool defer_commits =
      options.adversity.kind == AdversityKind::kReplicaFail;
  struct PendingCommit {
    DispatchRecord record;
    Batch batch;
    std::int64_t depth = 0;
  };
  std::vector<PendingCommit> pending;

  const auto write_spans = [&](const DispatchRecord& dr, const Batch& batch) {
    if (recorder == nullptr) {
      return;
    }
    // Every phase stamp is resolved by dispatch time (enqueue == arrival
    // on the virtual timeline), so the spans are written once, complete.
    const auto close = static_cast<obs::BatchClose>(batch.close_reason);
    obs::BatchSpan bspan;
    bspan.batch_index = dr.batch_index;
    bspan.workload = dr.workload;
    bspan.replica = dr.replica;
    bspan.close = close;
    bspan.formed_s = batch.formed_s;
    bspan.start_s = dr.start_s;
    bspan.complete_s = dr.complete_s;
    bspan.size = dr.size;
    recorder->RecordBatch(bspan);
    for (const Request& r : batch.requests) {
      obs::RequestSpan span;
      span.request_id = r.id;
      span.workload = r.workload;
      span.close = close;
      span.arrival_s = r.arrival_s;
      span.formed_s = batch.formed_s;
      span.start_s = dr.start_s;
      span.complete_s = dr.complete_s;
      span.batch_index = dr.batch_index;
      span.replica = dr.replica;
      span.batch_size = static_cast<std::int32_t>(dr.size);
      recorder->RecordRequest(span);
    }
  };

  const auto admission_instant = [&](double t, obs::InstantKind kind,
                                     WorkloadId workload,
                                     std::string detail) {
    if (recorder == nullptr) {
      return;
    }
    obs::InstantEvent instant;
    instant.t_s = t;
    instant.kind = kind;
    instant.workload = workload;
    instant.detail = std::move(detail);
    recorder->RecordInstant(std::move(instant));
  };

  const auto dispatch = [&](Batch&& batch) {
    const double start =
        std::max(batch.formed_s, pool.EarliestFree(batch.workload));
    if (admission != nullptr) {
      // Deadline-expiry sweep: a member whose start deadline already
      // passed is dropped here, before the dispatch — the
      // never-dispatched invariant (docs/ADMISSION.md). A batch emptied by
      // the sweep simply never dispatches.
      const std::int64_t swept = admission->SweepExpired(&batch, start);
      if (swept > 0) {
        admission_instant(start, obs::InstantKind::kAdmissionExpired,
                          batch.workload,
                          std::to_string(swept) + " expired before dispatch");
        if (batch.requests.empty()) {
          return;
        }
      }
      for (const Request& r : batch.requests) {
        if (start > r.deadline_s) {
          ++expired_dispatched;  // Defensive: the sweep keeps this at 0.
        }
      }
    }
    // Backlog the batch sees at its start: arrivals in the system (the
    // stream is sorted, so count by binary search) minus requests already
    // sent to a replica and minus everything admission removed for good
    // (final sheds + expiries never reach a replica).
    const auto arrived = static_cast<std::int64_t>(
        std::upper_bound(arrivals.begin(), arrivals.end(), start,
                         [](double t, const Request& r) {
                           return t < r.arrival_s;
                         }) -
        arrivals.begin());
    const std::int64_t depth =
        arrived - started -
        (admission != nullptr ? admission->removed() : 0);
    if (defer_commits) {
      const DispatchRecord dr = pool.Dispatch(batch, nullptr, depth);
      started += batch.size();
      if (admission != nullptr) {
        scheduled_starts.emplace(dr.start_s, batch.size());
        scheduled_backlog += batch.size();
      }
      pending.push_back(PendingCommit{dr, std::move(batch), depth});
      return;
    }
    const DispatchRecord dr = pool.Dispatch(batch, &stats, depth);
    dispatches.push_back(dr);
    started += batch.size();
    if (admission != nullptr) {
      scheduled_starts.emplace(dr.start_s, batch.size());
      scheduled_backlog += batch.size();
    }
    write_spans(dr, batch);
  };

  // Deferred-mode settlement: commit every pending batch completed by
  // virtual time `t`, ordered by (completion, dispatch order) — a pure
  // function of the schedule, so the stats stream (and with it the
  // record-order latency mean) stays pinned by the seed.
  const auto commit = [&](PendingCommit& p) {
    stats.RecordBatch(p.batch.workload, p.batch.size(), p.depth);
    stats.RecordReplicaBusy(p.record.replica,
                            p.record.complete_s - p.record.start_s);
    for (const Request& r : p.batch.requests) {
      stats.RecordRequest(p.batch.workload, r.arrival_s, p.record.complete_s);
    }
    dispatches.push_back(p.record);
    write_spans(p.record, p.batch);
  };
  const auto commit_until = [&](double t) {
    std::stable_sort(pending.begin(), pending.end(),
                     [](const PendingCommit& a, const PendingCommit& b) {
                       return a.record.complete_s < b.record.complete_s;
                     });
    std::size_t done = 0;
    while (done < pending.size() && pending[done].record.complete_s <= t) {
      commit(pending[done]);
      ++done;
    }
    pending.erase(pending.begin(),
                  pending.begin() + static_cast<std::ptrdiff_t>(done));
  };

  // Mirror new ServeStats PoolEvents into the trace: periodic samples
  // become Chrome counter points, budget deferrals become autoscaler-track
  // instants (applied deltas get richer instants straight from the delta
  // in the tick loop below).
  std::size_t timeline_seen = 0;
  const auto sync_timeline = [&] {
    if (recorder == nullptr) {
      return;
    }
    const std::vector<PoolEvent>& timeline = stats.timeline();
    for (; timeline_seen < timeline.size(); ++timeline_seen) {
      const PoolEvent& event = timeline[timeline_seen];
      if (event.kind == PoolEventKind::kFault) {
        continue;  // The adversity engine emitted its own rich instants.
      }
      if (event.event.empty()) {
        obs::CounterSample sample;
        sample.t_s = event.t_s;
        sample.window_rate_rps = event.window_rate_rps;
        sample.active_replicas =
            static_cast<std::int32_t>(event.active_replicas);
        sample.queue_depth = event.queue_depth;
        recorder->RecordCounter(sample);
      } else if (event.event.rfind("budget exhausted", 0) == 0) {
        obs::InstantEvent instant;
        instant.t_s = event.t_s;
        instant.kind = obs::InstantKind::kAutoscalerDeferred;
        instant.detail = event.event;
        recorder->RecordInstant(std::move(instant));
      }
    }
  };
  const auto record_delta = [&](const PoolDelta& delta) {
    if (recorder == nullptr) {
      return;
    }
    obs::InstantEvent decision;
    decision.t_s = delta.t_s;
    decision.kind = obs::InstantKind::kAutoscalerDecision;
    decision.replica = delta.replica;
    decision.workload = delta.workload;
    decision.detail = delta.reason;
    recorder->RecordInstant(std::move(decision));
    obs::InstantKind kind = obs::InstantKind::kAutoscalerDecision;
    switch (delta.kind) {
      case PoolDeltaKind::kAddReplica:
        kind = obs::InstantKind::kReplicaAdded;
        break;
      case PoolDeltaKind::kRetireReplica:
        kind = obs::InstantKind::kReplicaDraining;
        break;
      case PoolDeltaKind::kRefitReplica:
        kind = obs::InstantKind::kReplicaRefit;
        break;
      case PoolDeltaKind::kSetBatchCap:
        return;  // No replica track to annotate.
    }
    obs::InstantEvent transition;
    transition.t_s = delta.t_s;
    transition.kind = kind;
    transition.replica = delta.replica;
    transition.workload = delta.workload;
    transition.detail = delta.reason;
    recorder->RecordInstant(std::move(transition));
  };

  // Virtual-time metrics-snapshot clock (obs on): one timeline point every
  // snapshot_interval_s, fired between arrivals like the autoscaler tick.
  const double snapshot_interval_s =
      obs != nullptr ? obs->options.snapshot_interval_s : 0.0;
  double next_snapshot_s = snapshot_interval_s;
  const auto snapshot_until = [&](double t) {
    if (obs == nullptr || snapshot_interval_s <= 0.0) {
      return;
    }
    while (next_snapshot_s <= t) {
      pool.PublishCacheMetrics();
      obs->metrics.TakeSnapshot(next_snapshot_s);
      next_snapshot_s += snapshot_interval_s;
    }
  };

  std::vector<PoolDelta> deltas;

  // ---- Environment-event firing (adversity engine). Fault events are
  // surfaced twice: a kFault PoolEvent on the stats timeline (the CLI
  // epilogue and bench artifacts read it) and a typed instant on the obs
  // trace (sync_timeline skips kFault so nothing double-emits).
  const auto fault_event = [&](double t, std::string text) {
    PoolEvent event;
    event.t_s = t;
    event.kind = PoolEventKind::kFault;
    event.event = std::move(text);
    event.active_replicas = pool.ActiveReplicas(t);
    event.queue_depth = former.total_pending();
    stats.RecordPoolEvent(std::move(event));
  };
  const auto fault_instant = [&](double t, obs::InstantKind kind, int replica,
                                 WorkloadId workload, std::string detail) {
    if (recorder == nullptr) {
      return;
    }
    obs::InstantEvent instant;
    instant.t_s = t;
    instant.kind = kind;
    instant.replica = replica;
    instant.workload = workload;
    instant.detail = std::move(detail);
    recorder->RecordInstant(std::move(instant));
  };
  // End events paired to a start resolved at fire time (recovery, derate
  // end) are spliced into the not-yet-fired suffix of the timeline.
  const auto schedule_env = [&](AdversityEvent e) {
    std::size_t at = env_next;
    while (at < env.size() && env[at].t_s <= e.t_s) {
      ++at;
    }
    env.insert(env.begin() + static_cast<std::ptrdiff_t>(at), std::move(e));
  };
  const auto seconds = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  const auto fire_env = [&](const AdversityEvent& e) {
    switch (e.kind) {
      case AdversityEventKind::kReplicaFail: {
        const int target =
            pool.ResolveFaultTarget(e.replica, e.t_s, /*for_failure=*/true);
        if (target < 0) {
          fault_event(e.t_s,
                      "replica failure skipped: no eligible target (loss "
                      "would orphan a workload)");
          break;
        }
        // Settle history, then abort everything the schedule had placed on
        // the dead replica past the failure instant.
        commit_until(e.t_s);
        std::vector<PendingCommit> aborted;
        for (std::size_t i = 0; i < pending.size();) {
          if (pending[i].record.replica == target) {
            aborted.push_back(std::move(pending[i]));
            pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
          } else {
            ++i;
          }
        }
        pool.FailReplica(target, e.t_s, e.until_s, e.warmup_s);
        fault_event(e.t_s, "replica " + std::to_string(target) +
                               " failed: dark until " + seconds(e.until_s) +
                               " s, " + std::to_string(aborted.size()) +
                               " in-flight batch(es) re-enqueued");
        fault_instant(e.t_s, obs::InstantKind::kReplicaFailed, target, -1,
                      "failed; recovery at " + seconds(e.until_s) + " s");
        // Re-enqueue in original dispatch order: the batches re-enter the
        // pipeline at the failure instant and reroute to survivors (FIFO
        // within each batch is untouched — composition is preserved).
        std::sort(aborted.begin(), aborted.end(),
                  [](const PendingCommit& a, const PendingCommit& b) {
                    return a.record.batch_index < b.record.batch_index;
                  });
        for (PendingCommit& p : aborted) {
          started -= p.batch.size();
          Batch batch = std::move(p.batch);
          batch.formed_s = e.t_s;
          dispatch(std::move(batch));
        }
        AdversityEvent recover;
        recover.t_s = e.until_s;
        recover.kind = AdversityEventKind::kReplicaRecover;
        recover.replica = target;
        recover.warmup_s = e.warmup_s;
        schedule_env(std::move(recover));
        break;
      }
      case AdversityEventKind::kReplicaRecover:
        fault_event(e.t_s, "replica " + std::to_string(e.replica) +
                               " recovered (warming for " +
                               seconds(e.warmup_s) + " s)");
        fault_instant(e.t_s, obs::InstantKind::kReplicaRecovered, e.replica,
                      -1, "recovered; warming for " + seconds(e.warmup_s) +
                              " s");
        break;
      case AdversityEventKind::kDerateStart: {
        const int target =
            pool.ResolveFaultTarget(e.replica, e.t_s, /*for_failure=*/false);
        if (target < 0) {
          fault_event(e.t_s, "straggler derate skipped: no eligible target");
          break;
        }
        pool.SetDerate(target, e.factor, e.t_s, e.until_s);
        fault_event(e.t_s, "replica " + std::to_string(target) +
                               " derated x" + seconds(e.factor) +
                               " until " + seconds(e.until_s) + " s");
        fault_instant(e.t_s, obs::InstantKind::kReplicaDerated, target, -1,
                      "derated x" + seconds(e.factor) + " until " +
                          seconds(e.until_s) + " s");
        AdversityEvent end;
        end.t_s = e.until_s;
        end.kind = AdversityEventKind::kDerateEnd;
        end.replica = target;
        end.factor = e.factor;
        schedule_env(std::move(end));
        break;
      }
      case AdversityEventKind::kDerateEnd:
        fault_event(e.t_s, "replica " + std::to_string(e.replica) +
                               " derate ended (back to full clock)");
        fault_instant(e.t_s, obs::InstantKind::kReplicaDerated, e.replica,
                      -1, "derate ended");
        break;
      case AdversityEventKind::kChurnLeave:
        fault_event(e.t_s, "workload " + std::to_string(e.workload) +
                               " churned out (arrivals masked until " +
                               seconds(e.until_s) + " s)");
        fault_instant(e.t_s, obs::InstantKind::kEnvironment, -1, e.workload,
                      "tenant churned out until " + seconds(e.until_s) +
                          " s");
        break;
      case AdversityEventKind::kChurnRejoin:
        fault_event(e.t_s, "workload " + std::to_string(e.workload) +
                               " rejoined");
        fault_instant(e.t_s, obs::InstantKind::kEnvironment, -1, e.workload,
                      "tenant rejoined");
        break;
      case AdversityEventKind::kFlashStart:
        fault_event(e.t_s, "flash crowd x" + seconds(e.factor) +
                               " across tenants until " +
                               seconds(e.until_s) + " s");
        fault_instant(e.t_s, obs::InstantKind::kEnvironment, -1, -1,
                      "flash crowd x" + seconds(e.factor) + " until " +
                          seconds(e.until_s) + " s");
        break;
      case AdversityEventKind::kFlashEnd:
        fault_event(e.t_s, "flash crowd ended");
        fault_instant(e.t_s, obs::InstantKind::kEnvironment, -1, -1,
                      "flash crowd ended");
        break;
    }
  };
  // Everything scheduled at or before `t` fires in virtual-time order;
  // environment events land before a control tick at the same instant
  // (the world changes, then the control loop observes it).
  const auto fire_until = [&](double t) {
    while (true) {
      const double env_t = env_next < env.size()
                               ? env[env_next].t_s
                               : std::numeric_limits<double>::infinity();
      const double tick_t = autoscaler != nullptr
                                ? autoscaler->next_tick_s()
                                : std::numeric_limits<double>::infinity();
      if (env_t > t && tick_t > t) {
        break;
      }
      if (env_t <= tick_t) {
        const AdversityEvent e = env[env_next++];
        fire_env(e);  // May splice paired end events after env_next.
      } else {
        for (PoolDelta& delta : autoscaler->Tick(former, stats)) {
          record_delta(delta);
          deltas.push_back(std::move(delta));
        }
        sync_timeline();
      }
    }
  };

  std::vector<double> busy_until(static_cast<std::size_t>(pool.workloads()),
                                 0.0);
  // Feed one admitted request into the forming lanes — the pre-admission
  // hot path, unchanged when no controller is attached.
  const auto add_to_former = [&](const Request& r) {
    for (int w = 0; w < pool.workloads(); ++w) {
      busy_until[static_cast<std::size_t>(w)] = pool.EarliestFree(w);
    }
    for (Batch& batch : former.Add(r, busy_until)) {
      dispatch(std::move(batch));
    }
  };
  // Offer one arrival (or retry re-offer) to the admission controller;
  // only admitted requests reach the former. The offer sees the admitted
  // backlog — forming-lane depth plus dispatched requests whose virtual
  // start is still ahead of the offer clock — and the pool's live
  // fraction (failed replicas discounted) at the offer instant, both pure
  // functions of the virtual timeline.
  const auto offer = [&](Request r) {
    if (admission == nullptr) {
      add_to_former(r);
      return;
    }
    const double t = r.arrival_s;
    const int provisioned = pool.ActiveReplicas(t);
    int failed = 0;
    for (int rep = 0; rep < pool.size(); ++rep) {
      if (pool.Failed(rep, t)) {
        ++failed;
      }
    }
    const double live_fraction =
        provisioned > 0
            ? static_cast<double>(std::max(0, provisioned - failed)) /
                  static_cast<double>(provisioned)
            : 1.0;
    while (!scheduled_starts.empty() && scheduled_starts.top().first <= t) {
      scheduled_backlog -= scheduled_starts.top().second;
      scheduled_starts.pop();
    }
    const std::int64_t removed_before = admission->removed();
    if (!admission->Offer(&r, former.total_pending() + scheduled_backlog,
                          live_fraction)) {
      const bool final_shed = admission->removed() > removed_before;
      admission_instant(t,
                        final_shed ? obs::InstantKind::kAdmissionShed
                                   : obs::InstantKind::kAdmissionRetry,
                        r.workload, TierName(r.tier));
      return;
    }
    add_to_former(r);
  };
  // Re-offer every scheduled retry due at or before `t`, interleaved with
  // the tick/fault clocks in virtual-time order (a re-shed retry may
  // schedule another attempt inside the same window — the loop re-checks).
  const auto drain_retries = [&](double t) {
    if (admission == nullptr) {
      return;
    }
    while (admission->NextRetryAt() <= t) {
      const double retry_t = admission->NextRetryAt();
      fire_until(retry_t);
      Request retry = admission->PopRetry();
      if (autoscaler != nullptr) {
        stats.RecordArrival(retry.workload, retry_t);
      }
      snapshot_until(retry_t);
      offer(std::move(retry));
    }
  };
  while (auto request = queue.Pop()) {
    // Control decisions, environment events, and retry re-offers scheduled
    // at or before this arrival fire first — the tick clock, the fault
    // timeline, the retry heap, and the arrival stamps share one virtual
    // timeline. The arrival record only exists to feed the autoscaler's
    // windowed rate samples; static runs skip the bookkeeping (hot path).
    drain_retries(request->arrival_s);
    fire_until(request->arrival_s);
    if (autoscaler != nullptr) {
      stats.RecordArrival(request->workload, request->arrival_s);
    }
    snapshot_until(request->arrival_s);
    offer(*request);
  }
  // Run out the retry heap, the tick and fault clocks over the
  // arrival-free tail, flush, then settle whatever the deferred-commit
  // mode still holds. Retries scheduled past the horizon never re-enter:
  // shutdown finalizes them as sheds (graceful drain admits nothing new).
  drain_retries(options.duration_s);
  fire_until(options.duration_s);
  snapshot_until(options.duration_s);
  if (admission != nullptr) {
    admission->CloseRetries();
  }
  for (Batch& tail : former.Flush(options.duration_s + options.max_wait_s)) {
    dispatch(std::move(tail));
  }
  commit_until(std::numeric_limits<double>::infinity());

  // Graceful drain (admission runs): the arrival stream is over and every
  // lane has flushed in tier order — retire the whole pool. Replicas
  // finish what they already started (retire at their busy horizon), and
  // the span accounting below judges them against their drained span.
  if (admission != nullptr) {
    std::vector<bool> was_draining(static_cast<std::size_t>(pool.size()));
    for (int r = 0; r < pool.size(); ++r) {
      was_draining[static_cast<std::size_t>(r)] = pool.draining(r);
    }
    const int drained = pool.DrainAll(options.duration_s);
    PoolEvent event;
    event.t_s = options.duration_s;
    event.kind = PoolEventKind::kDecision;
    event.event = "graceful drain: " + std::to_string(drained) +
                  " replica(s) retired";
    event.active_replicas = pool.ActiveReplicas(options.duration_s);
    event.queue_depth = former.total_pending();
    stats.RecordPoolEvent(std::move(event));
    if (recorder != nullptr) {
      for (int r = 0; r < pool.size(); ++r) {
        if (was_draining[static_cast<std::size_t>(r)]) {
          continue;  // The autoscaler already drained it mid-run.
        }
        obs::InstantEvent instant;
        instant.t_s = options.duration_s;
        instant.kind = obs::InstantKind::kReplicaDraining;
        instant.replica = r;
        instant.detail = "graceful drain";
        recorder->RecordInstant(std::move(instant));
      }
    }
  }

  // Utilization denominators: each replica against its provisioned span
  // (a no-op for static pools, whose spans are the whole horizon).
  // Admission runs also land here: the graceful drain gave every replica a
  // finite retire time.
  if (autoscaler != nullptr || admission != nullptr) {
    for (int r = 0; r < pool.size(); ++r) {
      stats.SetReplicaSpan(r, pool.AddedAt(r), pool.RetiredAt(r));
      // Retire instants are only knowable post-run: a drained replica's
      // actual retire time is its busy horizon at drain, not the decision.
      const double retired = pool.RetiredAt(r);
      if (recorder != nullptr && std::isfinite(retired)) {
        obs::InstantEvent instant;
        instant.t_s = retired;
        instant.kind = obs::InstantKind::kReplicaRetired;
        instant.replica = r;
        instant.detail = "replica " + std::to_string(r) + " retired";
        recorder->RecordInstant(std::move(instant));
      }
    }
  }

  ServeReport report;
  report.generated_requests = static_cast<std::int64_t>(arrivals.size());
  for (int w = 0; w < pool.workloads(); ++w) {
    // The unbatched baseline runs on the first replica deployed for w.
    for (int r = 0; r < pool.size(); ++r) {
      if (pool.CanServe(r, w)) {
        report.single_request_by_workload.push_back(
            pool.BatchSeconds(r, w, 1));
        break;
      }
    }
  }
  report.single_request_s = report.single_request_by_workload.empty()
                                ? 0.0
                                : report.single_request_by_workload.front();
  report.dispatches = std::move(dispatches);
  report.deltas = std::move(deltas);
  if (admission != nullptr) {
    report.admission = admission->Summaries();
    report.expired_dispatched = expired_dispatched;
  }
  report.summary = stats.Summarize(
      EffectiveOfferedRps(options, report.generated_requests),
      options.duration_s);
  report.replica_seconds = pool.ReplicaSeconds(report.summary.horizon_s);
  if (obs != nullptr) {
    // Final metrics point at the true horizon, then hand the bundle back
    // for export.
    pool.PublishCacheMetrics();
    obs->metrics.TakeSnapshot(report.summary.horizon_s);
    obs->meta.replicas = pool.size();
    obs->meta.duration_s = options.duration_s;
    report.obs = std::move(obs);
  }
  return report;
}

}  // namespace

ServeReport RunSyntheticServe(const DataflowGraph& dfg,
                              const std::vector<AcceleratorDesign>& designs,
                              const ServeOptions& options) {
  NSF_CHECK_MSG(!options.autoscale,
                "autoscaling requires the multi-tenant engine — serve a "
                "mix or a plan (docs/AUTOSCALING.md)");
  std::vector<Request> arrivals = SyntheticArrivals(options);
  ServerPool pool(designs, dfg, options.worker_threads);
  ServeStats stats(pool.size());
  std::optional<AdmissionController> admission;
  if (options.admission.enabled()) {
    NSF_CHECK_MSG(options.tiers.empty() || options.tiers.size() == 1,
                  "tiers must have one entry per workload");
    AdmissionController::TenantConfig tenant;
    tenant.name = "workload 0";
    tenant.tier =
        options.tiers.empty() ? SlaTier::kStandard : options.tiers[0];
    tenant.offered_rps = EffectiveOfferedRps(
        options, static_cast<std::int64_t>(arrivals.size()));
    stats.SetWorkloadTier(0, tenant.tier);
    admission.emplace(options.admission,
                      std::vector<AdmissionController::TenantConfig>{tenant});
  }
  std::shared_ptr<obs::Observability> obs;
  if (options.trace.enabled) {
    obs = std::make_shared<obs::Observability>(options.trace);
    obs->meta.workload_names = {"workload 0"};
  }
  return RunPipeline(pool, stats, arrivals, options, nullptr,
                     admission.has_value() ? &*admission : nullptr,
                     std::move(obs));
}

ServeReport RunSyntheticServe(const WorkloadRegistry& registry,
                              const std::vector<ReplicaSpec>& replicas,
                              const std::vector<WorkloadShare>& mix,
                              const ServeOptions& options) {
  NSF_CHECK_MSG(registry.size() >= 1, "registry has no workloads");
  NSF_CHECK_MSG(!mix.empty(), "workload mix cannot be empty");

  // Resolve names -> per-id shares. Unlisted workloads get zero traffic
  // (they are still compiled and servable — just idle this run).
  std::vector<double> shares(static_cast<std::size_t>(registry.size()), 0.0);
  for (const WorkloadShare& entry : mix) {
    NSF_CHECK_MSG(entry.share > 0.0, "mix shares must be positive");
    const WorkloadId id = registry.IdOf(entry.workload);
    NSF_CHECK_MSG(shares[static_cast<std::size_t>(id)] == 0.0,
                  "workload '" + entry.workload + "' listed twice in mix");
    shares[static_cast<std::size_t>(id)] = entry.share;
  }

  std::vector<Request> arrivals =
      SyntheticArrivals(options, shares, registry.Names());
  ServerPool pool(replicas, registry.Dataflows(), options.worker_threads);
  ServeStats stats(pool.size(), registry.size());
  for (WorkloadId w = 0; w < registry.size(); ++w) {
    stats.SetWorkloadName(w, registry.NameOf(w));
  }
  std::optional<AdmissionController> admission;
  if (options.admission.enabled()) {
    NSF_CHECK_MSG(options.tiers.empty() ||
                      options.tiers.size() ==
                          static_cast<std::size_t>(registry.size()),
                  "tiers must have one entry per registry workload");
    double total_share = 0.0;
    for (const double share : shares) {
      total_share += share;
    }
    const double offered_rps = EffectiveOfferedRps(
        options, static_cast<std::int64_t>(arrivals.size()));
    std::vector<AdmissionController::TenantConfig> tenants;
    tenants.reserve(static_cast<std::size_t>(registry.size()));
    for (WorkloadId w = 0; w < registry.size(); ++w) {
      AdmissionController::TenantConfig tenant;
      tenant.name = registry.NameOf(w);
      tenant.tier = options.tiers.empty()
                        ? SlaTier::kStandard
                        : options.tiers[static_cast<std::size_t>(w)];
      // The tenant's share of the run's offered rate sizes its default
      // token bucket (an explicit rate= param overrides per tenant).
      tenant.offered_rps =
          total_share > 0.0
              ? offered_rps * shares[static_cast<std::size_t>(w)] /
                    total_share
              : 0.0;
      stats.SetWorkloadTier(w, tenant.tier);
      tenants.push_back(std::move(tenant));
    }
    admission.emplace(options.admission, std::move(tenants));
  }
  AdmissionController* admission_ptr =
      admission.has_value() ? &*admission : nullptr;
  std::shared_ptr<obs::Observability> obs;
  if (options.trace.enabled) {
    obs = std::make_shared<obs::Observability>(options.trace);
    obs->meta.workload_names = registry.Names();
  }
  if (options.autoscale) {
    for (const ReplicaSpec& spec : replicas) {
      NSF_CHECK_MSG(spec.workloads.size() == 1,
                    "autoscaling needs a partitioned pool (every replica "
                    "dedicated to exactly one workload) — `nsflow plan` "
                    "emits one, or pass --partition with --mix");
    }
    Autoscaler autoscaler(registry, mix, pool, options);
    return RunPipeline(pool, stats, arrivals, options, &autoscaler,
                       admission_ptr, std::move(obs));
  }
  return RunPipeline(pool, stats, arrivals, options, nullptr, admission_ptr,
                     std::move(obs));
}

}  // namespace nsflow::serve
