// Software IEEE 754 binary16 ("half") emulation.
//
// The reproduction runs on a CPU, so FP16 arithmetic in the accuracy study
// (Table IV) is emulated by rounding every value through the binary16 format:
// round-to-nearest-even conversion float -> half -> float. This captures the
// precision loss that matters for the reasoning-accuracy experiment without
// needing hardware half-float support.
#pragma once

#include <cstdint>

namespace nsflow {

/// Convert an IEEE binary32 float to binary16 bits (round-to-nearest-even,
/// with correct handling of subnormals, infinities, and NaN).
std::uint16_t FloatToHalfBits(float value);

/// Convert binary16 bits back to binary32.
float HalfBitsToFloat(std::uint16_t bits);

/// Round-trip a float through binary16 — the "fake fp16" operator.
inline float RoundToHalf(float value) {
  return HalfBitsToFloat(FloatToHalfBits(value));
}

}  // namespace nsflow
