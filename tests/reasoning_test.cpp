// Tests for the synthetic RPM generator and the VSA abductive reasoner.
#include <gtest/gtest.h>

#include "common/math_util.h"
#include "reasoning/accuracy.h"
#include "reasoning/rpm.h"
#include "reasoning/vsa_reasoner.h"

namespace nsflow::reasoning {
namespace {

bool RowSatisfiesRule(RuleType rule, std::int64_t a, std::int64_t b,
                      std::int64_t c, std::int64_t v) {
  switch (rule) {
    case RuleType::kConstant:
      return a == b && b == c;
    case RuleType::kProgression:
      return (b == Mod(a + 1, v) && c == Mod(b + 1, v)) ||
             (b == Mod(a - 1, v) && c == Mod(b - 1, v));
    case RuleType::kArithmetic:
      return c == Mod(a + b, v);
    case RuleType::kDistributeThree:
      return a != b && b != c && a != c;
  }
  return false;
}

TEST(RpmGeneratorTest, GeneratedRowsObeyTheirRules) {
  Rng rng(1);
  const RpmGenerator gen(RavenLikeSuite());
  for (int trial = 0; trial < 50; ++trial) {
    const RpmTask task = gen.Generate(rng);
    const std::int64_t v = gen.spec().values_per_attribute;
    // Reassemble the full grid with the true solution.
    std::vector<Panel> grid = task.context;
    grid.push_back(task.solution);
    for (std::int64_t a = 0; a < gen.spec().num_attributes; ++a) {
      const RuleType rule = task.rules[static_cast<std::size_t>(a)];
      for (int row = 0; row < 3; ++row) {
        const auto x0 = grid[static_cast<std::size_t>(row * 3)]
                            [static_cast<std::size_t>(a)];
        const auto x1 = grid[static_cast<std::size_t>(row * 3 + 1)]
                            [static_cast<std::size_t>(a)];
        const auto x2 = grid[static_cast<std::size_t>(row * 3 + 2)]
                            [static_cast<std::size_t>(a)];
        EXPECT_TRUE(RowSatisfiesRule(rule, x0, x1, x2, v))
            << RuleTypeName(rule) << " row " << row << " = (" << x0 << ","
            << x1 << "," << x2 << ")";
      }
    }
  }
}

TEST(RpmGeneratorTest, AnswerIndexPointsAtSolution) {
  Rng rng(2);
  const RpmGenerator gen(RavenLikeSuite());
  for (int trial = 0; trial < 50; ++trial) {
    const RpmTask task = gen.Generate(rng);
    ASSERT_LT(task.answer_index,
              static_cast<std::int64_t>(task.candidates.size()));
    EXPECT_EQ(task.candidates[static_cast<std::size_t>(task.answer_index)],
              task.solution);
  }
}

TEST(RpmGeneratorTest, CandidatesAreDistinct) {
  Rng rng(3);
  const RpmGenerator gen(PgmLikeSuite());
  const RpmTask task = gen.Generate(rng);
  EXPECT_EQ(task.candidates.size(), 8u);
  for (std::size_t i = 0; i < task.candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < task.candidates.size(); ++j) {
      EXPECT_NE(task.candidates[i], task.candidates[j]);
    }
  }
}

TEST(RpmGeneratorTest, SuitePresetsDifferInDifficultyKnobs) {
  const auto raven = RavenLikeSuite();
  const auto pgm = PgmLikeSuite();
  EXPECT_GT(pgm.num_attributes, raven.num_attributes);
  EXPECT_GT(pgm.values_per_attribute, raven.values_per_attribute);
  EXPECT_GT(pgm.near_miss_fraction, raven.near_miss_fraction);
}

TEST(VsaReasonerTest, NoiselessFloatReasonerIsNearPerfect) {
  Rng rng(4);
  const auto suite = RavenLikeSuite();
  ReasonerConfig config;
  config.perception_noise = 0.0;
  const VsaReasoner reasoner(suite, config, rng);
  const RpmGenerator gen(suite);
  int correct = 0;
  constexpr int kTrials = 60;
  for (int t = 0; t < kTrials; ++t) {
    const RpmTask task = gen.Generate(rng);
    if (reasoner.Solve(task, rng) == task.answer_index) {
      ++correct;
    }
  }
  EXPECT_GE(correct, kTrials - 2);  // Rule-ambiguity may cost a task or two.
}

TEST(VsaReasonerTest, DecodeRecoversEncodedAttributes) {
  Rng rng(5);
  const auto suite = RavenLikeSuite();
  ReasonerConfig config;
  config.perception_noise = 0.1;
  const VsaReasoner reasoner(suite, config, rng);
  const Panel panel = {3, 7, 1, 9};
  const auto encoding = reasoner.EncodePanel(panel, rng);
  for (std::int64_t a = 0; a < suite.num_attributes; ++a) {
    EXPECT_EQ(reasoner.DecodeAttribute(encoding, a),
              panel[static_cast<std::size_t>(a)])
        << "attribute " << a;
  }
}

TEST(VsaReasonerTest, SolveTraceIsPopulated) {
  Rng rng(6);
  const auto suite = RavenLikeSuite();
  ReasonerConfig config;
  config.perception_noise = 0.0;
  const VsaReasoner reasoner(suite, config, rng);
  const RpmGenerator gen(suite);
  const RpmTask task = gen.Generate(rng);
  SolveTrace trace;
  reasoner.Solve(task, rng, &trace);
  EXPECT_EQ(trace.decoded_context.size(), 8u);
  EXPECT_EQ(trace.abduced_rules.size(),
            static_cast<std::size_t>(suite.num_attributes));
  EXPECT_EQ(trace.predicted.size(),
            static_cast<std::size_t>(suite.num_attributes));
  EXPECT_GE(trace.winning_similarity, trace.runner_up_similarity);
}

TEST(VsaReasonerTest, CodebookBytesScaleWithPrecision) {
  Rng rng(7);
  const auto suite = RavenLikeSuite();
  ReasonerConfig fp32;
  fp32.vsa_precision = Precision::kFP32;
  ReasonerConfig int4;
  int4.vsa_precision = Precision::kINT4;
  const VsaReasoner r32(suite, fp32, rng);
  const VsaReasoner r4(suite, int4, rng);
  EXPECT_DOUBLE_EQ(r32.CodebookBytes() / r4.CodebookBytes(), 8.0);
}

TEST(AccuracyHarnessTest, TableIvSettingsInPaperOrder) {
  const auto settings = TableIvSettings();
  ASSERT_EQ(settings.size(), 5u);
  EXPECT_EQ(settings[0].label, "FP32");
  EXPECT_EQ(settings[3].vsa_precision, Precision::kINT4);
  EXPECT_EQ(settings[3].nn_precision, Precision::kINT8);
  EXPECT_EQ(settings[4].label, "INT4");
}

TEST(AccuracyHarnessTest, MemoryRowMatchesPaperAnchors) {
  const auto settings = TableIvSettings();
  // Paper Table IV: 32 MB, 16 MB, 8 MB, 5.5 MB, 4 MB.
  EXPECT_NEAR(ModelMemoryBytes(settings[0]) / 1e6, 32.0, 0.5);
  EXPECT_NEAR(ModelMemoryBytes(settings[1]) / 1e6, 16.0, 0.5);
  EXPECT_NEAR(ModelMemoryBytes(settings[2]) / 1e6, 8.0, 0.5);
  EXPECT_NEAR(ModelMemoryBytes(settings[3]) / 1e6, 5.5, 0.5);
  EXPECT_NEAR(ModelMemoryBytes(settings[4]) / 1e6, 4.0, 0.5);
}

TEST(AccuracyHarnessTest, AccuracyDegradesGracefullyThenCliffsAtInt4) {
  // The Table IV shape: FP32 ≈ FP16 ≈ INT8 >= MP >> INT4, on the RAVEN-like
  // suite. Small trial counts keep this fast; bands are wide accordingly.
  const auto suite = RavenLikeSuite();
  const auto settings = TableIvSettings();
  constexpr int kTrials = 120;
  std::vector<double> acc;
  for (const auto& setting : settings) {
    acc.push_back(EvaluateAccuracy(suite, setting, kTrials, 7).accuracy);
  }
  EXPECT_GT(acc[0], 0.9);                 // FP32 near the paper's 98.9%.
  EXPECT_NEAR(acc[1], acc[0], 0.06);      // FP16 ≈ FP32.
  EXPECT_GE(acc[2] + 0.08, acc[0]);       // INT8 within a few points.
  EXPECT_GE(acc[3] + 0.12, acc[0]);       // MP within ~a point of INT8.
  EXPECT_LT(acc[4], acc[0] - 0.02);       // INT4 visibly worse.
}

TEST(AccuracyHarnessTest, PgmIsHarderThanRaven) {
  const auto settings = TableIvSettings();
  const double raven =
      EvaluateAccuracy(RavenLikeSuite(), settings[0], 100, 11).accuracy;
  const double pgm =
      EvaluateAccuracy(PgmLikeSuite(), settings[0], 100, 11).accuracy;
  EXPECT_GT(raven, pgm + 0.1);
}

TEST(AccuracyHarnessTest, DeterministicGivenSeed) {
  const auto suite = RavenLikeSuite();
  const auto setting = TableIvSettings()[0];
  const auto a = EvaluateAccuracy(suite, setting, 40, 123);
  const auto b = EvaluateAccuracy(suite, setting, 40, 123);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
}

}  // namespace
}  // namespace nsflow::reasoning
