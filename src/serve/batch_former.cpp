#include "serve/batch_former.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.h"

namespace nsflow::serve {

BatchFormer::BatchFormer(BatchPolicy policy) : policy_(policy) {
  NSF_CHECK_MSG(policy_.max_batch >= 1, "max_batch must be positive");
  NSF_CHECK_MSG(policy_.max_wait_s >= 0.0, "max_wait_s must be non-negative");
}

Batch BatchFormer::CloseAt(double formed_s) {
  Batch batch;
  batch.requests = std::move(pending_);
  batch.formed_s = formed_s;
  pending_.clear();
  return batch;
}

std::optional<Batch> BatchFormer::Add(const Request& request,
                                      double busy_until) {
  std::optional<Batch> closed;
  // The pending batch's wait clock may have expired before this arrival:
  // close it at its effective deadline — stretched to `busy_until` while no
  // server could take it anyway — so its requests are not delayed by a lull
  // in the arrival process.
  const double effective_deadline = std::max(Deadline(), busy_until);
  if (!pending_.empty() && request.arrival_s >= effective_deadline) {
    closed = CloseAt(effective_deadline);
  }
  pending_.push_back(request);
  if (static_cast<std::int64_t>(pending_.size()) >= policy_.max_batch) {
    NSF_CHECK_MSG(!closed.has_value(),
                  "a single arrival cannot close two batches");
    return CloseAt(request.arrival_s);
  }
  return closed;
}

std::optional<Batch> BatchFormer::Flush(double now) {
  if (pending_.empty()) {
    return std::nullopt;
  }
  // Close no later than the wait deadline and no earlier than the newest
  // pending arrival (a batch cannot form before its requests exist).
  const double formed =
      std::max(pending_.back().arrival_s, std::min(now, Deadline()));
  return CloseAt(formed);
}

double BatchFormer::Deadline() const {
  if (pending_.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  return pending_.front().arrival_s + policy_.max_wait_s;
}

}  // namespace nsflow::serve
