#include "graph/trace.h"

#include <cctype>
#include <numeric>
#include <sstream>
#include <unordered_map>

#include "common/error.h"

namespace nsflow {
namespace {

double ShapeNumel(const std::vector<std::int64_t>& shape) {
  double numel = 1.0;
  for (const auto d : shape) {
    numel *= static_cast<double>(d);
  }
  return shape.empty() ? 0.0 : numel;
}

}  // namespace

OperatorGraph ParseJsonTrace(const std::string& text) {
  const Json doc = Json::Parse(text);
  OperatorGraph graph(doc.GetStringOr("workload", "unnamed"));
  graph.set_loop_count(
      static_cast<int>(doc.GetNumberOr("loop_count", 1.0)));

  if (doc.Contains("precision")) {
    const auto& p = doc.At("precision");
    PrecisionPolicy policy;
    policy.neural = PrecisionFromName(p.GetStringOr("neural", "FP32"));
    policy.symbolic = PrecisionFromName(p.GetStringOr("symbolic", "FP32"));
    graph.set_precision(policy);
  }

  std::unordered_map<std::string, NodeId> by_name;
  for (const auto& op_json : doc.At("ops").AsArray()) {
    OpNode node;
    node.name = op_json.At("name").AsString();
    node.kind = OpKindFromName(op_json.At("kind").AsString());
    if (op_json.Contains("inputs")) {
      for (const auto& input : op_json.At("inputs").AsArray()) {
        const auto it = by_name.find(input.AsString());
        if (it == by_name.end()) {
          throw ParseError("trace op '" + node.name +
                           "' references unknown input '" + input.AsString() +
                           "'");
        }
        node.inputs.push_back(it->second);
      }
    }
    if (op_json.Contains("gemm")) {
      const auto& g = op_json.At("gemm");
      node.gemm = {g.At("m").AsInt(), g.At("n").AsInt(), g.At("k").AsInt()};
    }
    if (op_json.Contains("vsa")) {
      const auto& v = op_json.At("vsa");
      node.vsa = {v.At("count").AsInt(), v.At("dim").AsInt()};
    }
    node.elem_count =
        static_cast<std::int64_t>(op_json.GetNumberOr("elem_count", 0.0));
    node.weight_bytes = op_json.GetNumberOr("weight_bytes", 0.0);
    node.activation_bytes = op_json.GetNumberOr("activation_bytes", 0.0);
    node.output_bytes = op_json.GetNumberOr("output_bytes", 0.0);
    const std::string name = node.name;
    by_name[name] = graph.AddNode(std::move(node));
  }
  graph.Validate();
  return graph;
}

std::string EmitJsonTrace(const OperatorGraph& graph, int indent) {
  Json doc;
  doc["workload"] = Json(graph.workload_name());
  doc["loop_count"] = Json(static_cast<std::int64_t>(graph.loop_count()));
  JsonObject precision;
  precision["neural"] = Json(PrecisionName(graph.precision().neural));
  precision["symbolic"] = Json(PrecisionName(graph.precision().symbolic));
  doc["precision"] = Json(std::move(precision));

  JsonArray ops;
  for (const auto& node : graph.nodes()) {
    JsonObject op;
    op["name"] = Json(node.name);
    op["kind"] = Json(std::string(OpKindName(node.kind)));
    JsonArray inputs;
    for (const NodeId input : node.inputs) {
      inputs.push_back(Json(graph.node(input).name));
    }
    op["inputs"] = Json(std::move(inputs));
    if (node.gemm.m > 0) {
      JsonObject g;
      g["m"] = Json(node.gemm.m);
      g["n"] = Json(node.gemm.n);
      g["k"] = Json(node.gemm.k);
      op["gemm"] = Json(std::move(g));
    }
    if (node.vsa.count > 0) {
      JsonObject v;
      v["count"] = Json(node.vsa.count);
      v["dim"] = Json(node.vsa.dim);
      op["vsa"] = Json(std::move(v));
    }
    if (node.elem_count > 0) {
      op["elem_count"] = Json(node.elem_count);
    }
    if (node.weight_bytes > 0) {
      op["weight_bytes"] = Json(node.weight_bytes);
    }
    if (node.activation_bytes > 0) {
      op["activation_bytes"] = Json(node.activation_bytes);
    }
    if (node.output_bytes > 0) {
      op["output_bytes"] = Json(node.output_bytes);
    }
    ops.push_back(Json(std::move(op)));
  }
  doc["ops"] = Json(std::move(ops));
  return doc.Dump(indent);
}

namespace trace_internal {
namespace {

/// Small cursor over one line.
class LineCursor {
 public:
  explicit LineCursor(const std::string& line) : line_(line) {}

  void SkipSpace() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool TryConsume(char c) {
    SkipSpace();
    if (pos_ < line_.size() && line_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void Consume(char c) {
    if (!TryConsume(c)) {
      Fail(std::string("expected '") + c + "'");
    }
  }

  void ConsumeLiteral(std::string_view literal) {
    SkipSpace();
    if (line_.compare(pos_, literal.size(), literal) != 0) {
      Fail("expected literal '" + std::string(literal) + "'");
    }
    pos_ += literal.size();
  }

  /// Identifier: [A-Za-z0-9_.]+
  std::string ConsumeIdentifier() {
    SkipSpace();
    const std::size_t start = pos_;
    while (pos_ < line_.size() &&
           (std::isalnum(static_cast<unsigned char>(line_[pos_])) != 0 ||
            line_[pos_] == '_' || line_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("expected identifier");
    }
    return line_.substr(start, pos_ - start);
  }

  std::vector<std::int64_t> ConsumeShape() {
    Consume('[');
    std::vector<std::int64_t> shape;
    while (true) {
      SkipSpace();
      std::int64_t value = 0;
      bool any = false;
      while (pos_ < line_.size() &&
             std::isdigit(static_cast<unsigned char>(line_[pos_])) != 0) {
        value = value * 10 + (line_[pos_] - '0');
        ++pos_;
        any = true;
      }
      if (!any) {
        Fail("expected dimension");
      }
      shape.push_back(value);
      if (TryConsume(']')) {
        return shape;
      }
      Consume(',');
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= line_.size();
  }

  [[noreturn]] void Fail(const std::string& message) const {
    throw ParseError("trace line parse error at column " +
                     std::to_string(pos_) + ": " + message + " in: " + line_);
  }

 private:
  const std::string& line_;
  std::size_t pos_ = 0;
};

}  // namespace

TextTraceLine ParseLine(const std::string& line) {
  TextTraceLine parsed;
  LineCursor cursor(line);
  cursor.Consume('%');
  parsed.result_name = cursor.ConsumeIdentifier();
  parsed.result_shape = cursor.ConsumeShape();
  cursor.Consume(':');
  parsed.call_type = cursor.ConsumeIdentifier();
  if (parsed.call_type != "call_module" && parsed.call_type != "call_function") {
    throw ParseError("unknown call type: " + parsed.call_type);
  }
  cursor.Consume('[');
  parsed.op_name = cursor.ConsumeIdentifier();
  cursor.Consume(']');
  cursor.Consume('(');
  cursor.ConsumeLiteral("args");
  cursor.Consume('=');
  cursor.Consume('(');
  if (!cursor.TryConsume(')')) {
    while (true) {
      cursor.Consume('%');
      TextTraceLine::Arg arg;
      arg.name = cursor.ConsumeIdentifier();
      arg.shape = cursor.ConsumeShape();
      parsed.args.push_back(std::move(arg));
      if (cursor.TryConsume(')')) {
        break;
      }
      cursor.Consume(',');
    }
  }
  cursor.Consume(')');
  return parsed;
}

}  // namespace trace_internal

namespace {

using trace_internal::TextTraceLine;

/// Map a parsed text line onto an OpNode, inferring kernel dimensions from
/// output/input shapes. Conv filters are not present in fx-style traces, so a
/// 3x3 kernel is assumed; this matches ResNet body convolutions and is the
/// documented heuristic for text ingestion (JSON traces carry exact dims).
OpNode NodeFromLine(const TextTraceLine& line, const OperatorGraph& graph,
                    const std::unordered_map<std::string, NodeId>& by_name) {
  OpNode node;
  node.name = line.result_name;
  node.kind = OpKindFromName(line.op_name);
  for (const auto& arg : line.args) {
    node.inputs.push_back(by_name.at(arg.name));
  }

  const auto& out_shape = line.result_shape;
  const double out_elems = ShapeNumel(out_shape);
  const double bytes_per_elem =
      BytesOf(node.domain() == Domain::kSymbolic
                  ? graph.precision().symbolic
                  : graph.precision().neural);

  switch (node.unit()) {
    case ComputeUnit::kAdArray: {
      if (node.domain() == Domain::kNeuro) {
        // Output [B, C, H, W]: m = C; n = Cin * 3 * 3; k = B * H * W.
        NSF_CHECK_MSG(out_shape.size() == 4,
                      "conv trace line needs a 4-D output shape");
        const std::int64_t cin =
            line.args.empty() || line.args[0].shape.size() != 4
                ? out_shape[1]
                : line.args[0].shape[1];
        node.gemm.m = out_shape[1];
        node.gemm.n = cin * 9;
        node.gemm.k = out_shape[0] * out_shape[2] * out_shape[3];
        node.weight_bytes =
            static_cast<double>(node.gemm.m * node.gemm.n) * bytes_per_elem;
      } else {
        // VSA op, shape [batch, blocks, block_dim]: count = batch * blocks.
        NSF_CHECK_MSG(!out_shape.empty(), "VSA trace line needs a shape");
        const std::int64_t dim = out_shape.back();
        std::int64_t count = 1;
        for (std::size_t i = 0; i + 1 < out_shape.size(); ++i) {
          count *= out_shape[i];
        }
        node.vsa.count = count;
        node.vsa.dim = dim;
        node.weight_bytes = out_elems * bytes_per_elem;  // Stationary operand.
      }
      break;
    }
    case ComputeUnit::kSimd: {
      // Element count: the larger of output and first-arg element counts
      // (reductions have scalar outputs but vector inputs).
      double elems = out_elems;
      for (const auto& arg : line.args) {
        elems = std::max(elems, ShapeNumel(arg.shape));
      }
      node.elem_count = static_cast<std::int64_t>(elems);
      break;
    }
    case ComputeUnit::kNone:
      break;
  }

  double in_elems = 0.0;
  for (const auto& arg : line.args) {
    in_elems += ShapeNumel(arg.shape);
  }
  node.activation_bytes = in_elems * bytes_per_elem;
  node.output_bytes = out_elems * bytes_per_elem;
  return node;
}

}  // namespace

OperatorGraph ParseTextTrace(const std::string& text) {
  OperatorGraph graph("text_trace");
  std::unordered_map<std::string, NodeId> by_name;

  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    // Strip surrounding whitespace, including the '\r' a CRLF-encoded trace
    // leaves behind (std::getline only consumes the '\n').
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) {
      continue;  // Blank (or whitespace-only) lines are skipped anywhere.
    }
    const std::size_t last = line.find_last_not_of(" \t\r");
    const std::string trimmed = line.substr(first, last - first + 1);
    if (trimmed.starts_with("//") || trimmed.starts_with("#") ||
        trimmed.starts_with("graph()") || trimmed.starts_with("...")) {
      continue;
    }
    const auto parsed = trace_internal::ParseLine(trimmed);

    // Materialize implicit inputs for operands that were never defined.
    for (const auto& arg : parsed.args) {
      if (by_name.count(arg.name) == 0) {
        OpNode input;
        input.name = arg.name;
        input.kind = OpKind::kInput;
        input.output_bytes = ShapeNumel(arg.shape) * BytesOf(Precision::kFP32);
        by_name[arg.name] = graph.AddNode(std::move(input));
      }
    }
    by_name[parsed.result_name] =
        graph.AddNode(NodeFromLine(parsed, graph, by_name));
  }
  graph.Validate();
  return graph;
}

}  // namespace nsflow
