// Codebooks and cleanup memory.
//
// A codebook maps discrete symbols (attribute values such as "size=3" or
// "color=red") to hypervectors. Cleanup — finding the stored symbol nearest
// to a noisy query — is the decode step at the end of every unbinding chain,
// and corresponds to the `match_prob_multi_batched` + argmax pattern in the
// paper's NVSA trace (Listing 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "vsa/block_code.h"

namespace nsflow::vsa {

class Codebook {
 public:
  /// Create a codebook of `num_symbols` random hypervectors.
  Codebook(BlockShape shape, std::int64_t num_symbols, Rng& rng,
           std::string name = "codebook");

  const std::string& name() const { return name_; }
  std::int64_t size() const { return static_cast<std::int64_t>(entries_.size()); }
  const BlockShape& shape() const { return shape_; }

  /// Hypervector for a symbol index.
  const HyperVector& at(std::int64_t symbol) const;

  /// All entries, for batched matching.
  std::span<const HyperVector> entries() const { return entries_; }

  /// Result of a cleanup query.
  struct CleanupResult {
    std::int64_t symbol = -1;      // argmax index
    double best_score = 0.0;       // similarity of the winner
    double runner_up_score = 0.0;  // second best — margin = best - runner_up
    std::vector<double> scores;    // full score vector (match_prob per entry)
  };

  /// Nearest-entry search by similarity (the cleanup memory operation).
  CleanupResult Cleanup(const HyperVector& query) const;

  /// Replace all entries with fake-quantized copies — models storing the
  /// codebook in INT8/INT4 on-chip memory (paper Sec. IV-D).
  void QuantizeInPlace(Precision precision);

  /// Total storage at a given precision (for Table IV memory accounting).
  double ByteSize(Precision precision) const;

 private:
  std::string name_;
  BlockShape shape_;
  std::vector<HyperVector> entries_;
};

}  // namespace nsflow::vsa
