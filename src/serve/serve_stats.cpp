#include "serve/serve_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "common/error.h"
#include "common/table.h"
#include "obs/metrics.h"

namespace nsflow::serve {

ServeStats::ServeStats(int replicas, int workloads) {
  NSF_CHECK_MSG(replicas >= 1, "a serve pool needs at least one replica");
  NSF_CHECK_MSG(workloads >= 1, "stats need at least one workload slice");
  replica_busy_s_.assign(static_cast<std::size_t>(replicas), 0.0);
  replica_spans_.assign(
      static_cast<std::size_t>(replicas),
      {0.0, std::numeric_limits<double>::infinity()});
  workload_names_.resize(static_cast<std::size_t>(workloads));
  workload_arrivals_s_.resize(static_cast<std::size_t>(workloads));
  for (int w = 0; w < workloads; ++w) {
    workload_names_[static_cast<std::size_t>(w)] =
        "workload " + std::to_string(w);
  }
  workload_latencies_s_.resize(static_cast<std::size_t>(workloads));
  workload_batches_.resize(static_cast<std::size_t>(workloads));
  workload_tiers_.assign(static_cast<std::size_t>(workloads),
                         SlaTier::kStandard);
}

void ServeStats::Reserve(std::int64_t expected_requests) {
  if (expected_requests <= 0) {
    return;
  }
  const auto n = static_cast<std::size_t>(expected_requests);
  latencies_s_.reserve(n);
  arrivals_s_.reserve(n);
  completions_s_.reserve(n);
  arrival_stamps_.reserve(n);
}

void ServeStats::SetWorkloadName(WorkloadId w, std::string name) {
  NSF_CHECK_MSG(w >= 0 && w < static_cast<int>(workload_names_.size()),
                "workload index out of range");
  workload_names_[static_cast<std::size_t>(w)] = std::move(name);
}

void ServeStats::SetWorkloadTier(WorkloadId w, SlaTier tier) {
  NSF_CHECK_MSG(w >= 0 && w < static_cast<int>(workload_tiers_.size()),
                "workload index out of range");
  workload_tiers_[static_cast<std::size_t>(w)] = tier;
  tiers_set_ = true;
  if (registry_ != nullptr) {
    for (int t = 0; t < 3; ++t) {
      tier_hists_[t] = registry_->GetHistogram(
          std::string("serve.latency_s.") +
          TierName(static_cast<SlaTier>(t)));
    }
  }
}

void ServeStats::RecordRequest(WorkloadId workload, double arrival_s,
                               double complete_s) {
  NSF_CHECK_MSG(complete_s >= arrival_s,
                "completion cannot precede arrival");
  NSF_CHECK_MSG(workload >= 0 &&
                    workload < static_cast<int>(workload_latencies_s_.size()),
                "workload index out of range");
  arrivals_s_.push_back(arrival_s);
  completions_s_.push_back(complete_s);
  latencies_s_.push_back(complete_s - arrival_s);
  workload_latencies_s_[static_cast<std::size_t>(workload)].push_back(
      complete_s - arrival_s);
  if (latency_hist_ != nullptr) {
    latency_hist_->Observe(complete_s - arrival_s);
  }
  if (tiers_set_) {
    obs::Histogram* hist = tier_hists_[static_cast<int>(
        workload_tiers_[static_cast<std::size_t>(workload)])];
    if (hist != nullptr) {
      hist->Observe(complete_s - arrival_s);
    }
  }
  if (completed_counter_ != nullptr) {
    completed_counter_->Increment();
  }
}

void ServeStats::RecordBatch(WorkloadId workload, std::int64_t size,
                             std::int64_t queue_depth) {
  NSF_CHECK_MSG(size >= 1, "batches are non-empty");
  NSF_CHECK_MSG(workload >= 0 &&
                    workload < static_cast<int>(workload_batches_.size()),
                "workload index out of range");
  batch_sizes_.push_back(size);
  depth_samples_.push_back(std::max<std::int64_t>(0, queue_depth));
  workload_batches_[static_cast<std::size_t>(workload)].push_back(size);
  if (batch_counter_ != nullptr) {
    batch_counter_->Increment();
  }
}

void ServeStats::RecordReplicaBusy(int index, double busy_s) {
  NSF_CHECK_MSG(index >= 0 &&
                    index < static_cast<int>(replica_busy_s_.size()),
                "replica index out of range");
  replica_busy_s_[static_cast<std::size_t>(index)] += busy_s;
}

void ServeStats::RecordArrival(WorkloadId workload, double arrival_s) {
  NSF_CHECK_MSG(workload >= 0 &&
                    workload <
                        static_cast<int>(workload_arrivals_s_.size()),
                "workload index out of range");
  NSF_CHECK_MSG(arrival_stamps_.empty() ||
                    arrival_s >= arrival_stamps_.back(),
                "arrivals must be recorded in time order");
  arrival_stamps_.push_back(arrival_s);
  workload_arrivals_s_[static_cast<std::size_t>(workload)].push_back(
      arrival_s);
}

namespace {

std::int64_t CountInWindow(const std::vector<double>& sorted, double t0,
                           double t1) {
  return std::lower_bound(sorted.begin(), sorted.end(), t1) -
         std::lower_bound(sorted.begin(), sorted.end(), t0);
}

}  // namespace

std::int64_t ServeStats::ArrivalsInWindow(WorkloadId workload, double t0,
                                          double t1) const {
  NSF_CHECK_MSG(workload >= 0 &&
                    workload <
                        static_cast<int>(workload_arrivals_s_.size()),
                "workload index out of range");
  return CountInWindow(workload_arrivals_s_[static_cast<std::size_t>(workload)],
                       t0, t1);
}

std::int64_t ServeStats::ArrivalsInWindow(double t0, double t1) const {
  return CountInWindow(arrival_stamps_, t0, t1);
}

void ServeStats::RecordPoolEvent(PoolEvent event) {
  NSF_CHECK_MSG(timeline_.empty() || event.t_s >= timeline_.back().t_s,
                "timeline events must be recorded in time order");
  timeline_.push_back(std::move(event));
}

void ServeStats::AddReplicaSlot() {
  replica_busy_s_.push_back(0.0);
  replica_spans_.push_back({0.0, std::numeric_limits<double>::infinity()});
}

void ServeStats::SetReplicaSpan(int index, double added_s,
                                double retired_s) {
  NSF_CHECK_MSG(index >= 0 &&
                    index < static_cast<int>(replica_spans_.size()),
                "replica index out of range");
  NSF_CHECK_MSG(added_s >= 0.0 && retired_s >= added_s,
                "replica span must be a non-negative interval");
  replica_spans_[static_cast<std::size_t>(index)] = {added_s, retired_s};
}

double ServeStats::Percentile(std::vector<double> values, double p) {
  return PercentileInPlace(&values, p);
}

double ServeStats::PercentileInPlace(std::vector<double>* values, double p) {
  NSF_CHECK(values != nullptr);
  std::sort(values->begin(), values->end());
  return PercentileSorted(*values, p);
}

void ServeStats::AttachMetrics(obs::MetricsRegistry* registry) {
  registry_ = registry;
  if (registry == nullptr) {
    latency_hist_ = nullptr;
    completed_counter_ = nullptr;
    batch_counter_ = nullptr;
    tier_hists_[0] = tier_hists_[1] = tier_hists_[2] = nullptr;
    return;
  }
  latency_hist_ = registry->GetHistogram("serve.latency_s");
  completed_counter_ = registry->GetCounter("serve.completed");
  batch_counter_ = registry->GetCounter("serve.batches");
  // Tier histograms only exist in tiered (admission) runs, so untiered
  // runs keep a byte-identical metrics dump.
  if (tiers_set_) {
    for (int t = 0; t < 3; ++t) {
      tier_hists_[t] = registry->GetHistogram(
          std::string("serve.latency_s.") +
          TierName(static_cast<SlaTier>(t)));
    }
  }
}

double ServeStats::PercentileSorted(const std::vector<double>& sorted,
                                    double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  NSF_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  // Nearest-rank: smallest value with at least p% of the population at or
  // below it.
  const double rank = std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  const std::size_t index =
      static_cast<std::size_t>(std::max(1.0, rank)) - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

StatsSummary ServeStats::Summarize(double offered_qps,
                                   double run_duration_s) const {
  StatsSummary s;
  s.completed = completed();
  s.batches = static_cast<std::int64_t>(batch_sizes_.size());
  s.offered_qps = offered_qps;
  double last_completion = 0.0;
  for (const double c : completions_s_) {
    last_completion = std::max(last_completion, c);
  }
  s.horizon_s = std::max(run_duration_s, last_completion);
  if (s.horizon_s > 0.0 && s.completed > 0) {
    s.throughput_rps = static_cast<double>(s.completed) / s.horizon_s;
  }

  // One sorted copy serves all three percentiles plus the max — not three
  // copy-and-sort passes through Percentile(). The mean stays on the
  // record-order vector: float summation is order-sensitive and the summary
  // must be bit-identical to what the unsorted accumulation reports.
  std::vector<double> sorted = latencies_s_;
  std::sort(sorted.begin(), sorted.end());
  s.p50_ms = PercentileSorted(sorted, 50.0) * 1e3;
  s.p95_ms = PercentileSorted(sorted, 95.0) * 1e3;
  s.p99_ms = PercentileSorted(sorted, 99.0) * 1e3;
  if (!sorted.empty()) {
    s.mean_ms = std::accumulate(latencies_s_.begin(), latencies_s_.end(), 0.0) /
                static_cast<double>(latencies_s_.size()) * 1e3;
    s.max_ms = sorted.back() * 1e3;
  }

  if (!batch_sizes_.empty()) {
    s.mean_batch =
        static_cast<double>(std::accumulate(batch_sizes_.begin(),
                                            batch_sizes_.end(),
                                            std::int64_t{0})) /
        static_cast<double>(batch_sizes_.size());
  }
  if (!depth_samples_.empty()) {
    s.mean_queue_depth =
        static_cast<double>(std::accumulate(depth_samples_.begin(),
                                            depth_samples_.end(),
                                            std::int64_t{0})) /
        static_cast<double>(depth_samples_.size());
    s.max_queue_depth =
        *std::max_element(depth_samples_.begin(), depth_samples_.end());
  }

  s.replica_utilization.reserve(replica_busy_s_.size());
  for (std::size_t r = 0; r < replica_busy_s_.size(); ++r) {
    // Busy share of the replica's *active span* within the horizon: a
    // warm-added or drained replica is judged against the time it was
    // actually provisioned, not the whole run (spans default to the full
    // horizon for static pools).
    const double span =
        std::min(replica_spans_[r].second, s.horizon_s) -
        std::min(replica_spans_[r].first, s.horizon_s);
    s.replica_utilization.push_back(
        span > 0.0 ? replica_busy_s_[r] / span : 0.0);
  }
  s.timeline = timeline_;

  s.per_workload.reserve(workload_names_.size());
  std::vector<double> scratch;  // Reused sort buffer across slices.
  for (std::size_t w = 0; w < workload_names_.size(); ++w) {
    WorkloadSummary slice;
    slice.name = workload_names_[w];
    const auto& latencies = workload_latencies_s_[w];
    slice.completed = static_cast<std::int64_t>(latencies.size());
    if (s.horizon_s > 0.0 && slice.completed > 0) {
      slice.throughput_rps =
          static_cast<double>(slice.completed) / s.horizon_s;
    }
    // Single-workload runs: slice 0's population *is* the aggregate — reuse
    // the sorted copy above instead of sorting it again. Multi-workload
    // runs reuse one scratch buffer's allocation across slices.
    const std::vector<double>* slice_sorted = &sorted;
    if (workload_names_.size() > 1) {
      scratch.assign(latencies.begin(), latencies.end());
      std::sort(scratch.begin(), scratch.end());
      slice_sorted = &scratch;
    }
    slice.p50_ms = PercentileSorted(*slice_sorted, 50.0) * 1e3;
    slice.p95_ms = PercentileSorted(*slice_sorted, 95.0) * 1e3;
    slice.p99_ms = PercentileSorted(*slice_sorted, 99.0) * 1e3;
    if (!slice_sorted->empty()) {
      slice.mean_ms = std::accumulate(latencies.begin(), latencies.end(), 0.0) /
                      static_cast<double>(latencies.size()) * 1e3;
      slice.max_ms = slice_sorted->back() * 1e3;
    }
    const auto& batches = workload_batches_[w];
    slice.batches = static_cast<std::int64_t>(batches.size());
    if (!batches.empty()) {
      slice.mean_batch =
          static_cast<double>(std::accumulate(batches.begin(), batches.end(),
                                              std::int64_t{0})) /
          static_cast<double>(batches.size());
    }
    s.per_workload.push_back(std::move(slice));
  }

  // Tier slices (admission-tiered runs): each tier's percentiles over its
  // own population, so batch-tier latencies cannot dilute the critical
  // tier's p99. Workloads concatenate in workload-id order before the sort
  // — a deterministic population regardless of completion interleaving.
  if (tiers_set_) {
    for (int t = 0; t < 3; ++t) {
      const SlaTier tier = static_cast<SlaTier>(t);
      scratch.clear();
      bool any = false;
      for (std::size_t w = 0; w < workload_tiers_.size(); ++w) {
        if (workload_tiers_[w] != tier) {
          continue;
        }
        any = true;
        scratch.insert(scratch.end(), workload_latencies_s_[w].begin(),
                       workload_latencies_s_[w].end());
      }
      if (!any) {
        continue;  // No tenant mapped to this tier: no slice row.
      }
      std::sort(scratch.begin(), scratch.end());
      TierSummary slice;
      slice.name = TierName(tier);
      slice.tier = tier;
      slice.completed = static_cast<std::int64_t>(scratch.size());
      slice.p50_ms = PercentileSorted(scratch, 50.0) * 1e3;
      slice.p99_ms = PercentileSorted(scratch, 99.0) * 1e3;
      s.per_tier.push_back(std::move(slice));
    }
  }
  return s;
}

std::string ServeStats::ToTable(const StatsSummary& s) {
  TablePrinter table({"metric", "value"});
  table.AddRow({"requests completed", std::to_string(s.completed)});
  table.AddRow({"batches dispatched", std::to_string(s.batches)});
  table.AddRow({"offered load", TablePrinter::Num(s.offered_qps, 1) + " rps"});
  table.AddRow(
      {"throughput", TablePrinter::Num(s.throughput_rps, 1) + " rps"});
  table.AddRow({"latency p50", TablePrinter::Num(s.p50_ms, 3) + " ms"});
  table.AddRow({"latency p95", TablePrinter::Num(s.p95_ms, 3) + " ms"});
  table.AddRow({"latency p99", TablePrinter::Num(s.p99_ms, 3) + " ms"});
  table.AddRow({"latency mean", TablePrinter::Num(s.mean_ms, 3) + " ms"});
  table.AddRow({"latency max", TablePrinter::Num(s.max_ms, 3) + " ms"});
  table.AddRow({"mean batch size", TablePrinter::Num(s.mean_batch, 2)});
  table.AddRow(
      {"mean queue depth", TablePrinter::Num(s.mean_queue_depth, 2)});
  table.AddRow({"max queue depth", std::to_string(s.max_queue_depth)});
  for (std::size_t i = 0; i < s.replica_utilization.size(); ++i) {
    table.AddRow({"replica " + std::to_string(i) + " utilization",
                  TablePrinter::Percent(s.replica_utilization[i])});
  }
  std::string out = table.ToString();

  // Per-workload breakdown, only meaningful for multi-tenant runs.
  if (s.per_workload.size() >= 2) {
    TablePrinter breakdown({"workload", "completed", "throughput (rps)",
                            "p50 (ms)", "p95 (ms)", "p99 (ms)", "mean batch"});
    for (const WorkloadSummary& w : s.per_workload) {
      breakdown.AddRow({w.name, std::to_string(w.completed),
                        TablePrinter::Num(w.throughput_rps, 1),
                        TablePrinter::Num(w.p50_ms, 3),
                        TablePrinter::Num(w.p95_ms, 3),
                        TablePrinter::Num(w.p99_ms, 3),
                        TablePrinter::Num(w.mean_batch, 2)});
    }
    out += "\n" + breakdown.ToString();
  }

  // Per-node cluster slices (clustered runs only, docs/CLUSTER.md).
  if (!s.per_node.empty()) {
    TablePrinter nodes({"node", "replicas", "batches", "remote", "bytes in",
                        "bytes out", "network (ms)"});
    for (const NodeSummary& n : s.per_node) {
      nodes.AddRow({"node " + std::to_string(n.node),
                    std::to_string(n.replicas), std::to_string(n.batches),
                    std::to_string(n.remote_batches),
                    TablePrinter::Num(n.bytes_in, 0),
                    TablePrinter::Num(n.bytes_out, 0),
                    TablePrinter::Num(n.network_s * 1e3, 3)});
    }
    out += "\n" + nodes.ToString();
  }

  // SLA-tier breakdown (admission-tiered runs only).
  if (!s.per_tier.empty()) {
    TablePrinter tiers({"tier", "completed", "p50 (ms)", "p99 (ms)"});
    for (const TierSummary& t : s.per_tier) {
      tiers.AddRow({t.name, std::to_string(t.completed),
                    TablePrinter::Num(t.p50_ms, 3),
                    TablePrinter::Num(t.p99_ms, 3)});
    }
    out += "\n" + tiers.ToString();
  }
  return out;
}

}  // namespace nsflow::serve
