// Operator taxonomy for NSAI workloads.
//
// The paper's characterization (Fig. 1) splits NSAI programs into five
// operation categories: matrix-wise NN ops, other GEMMs, vector-wise VSA ops,
// element-wise VSA ops, and element-wise NN ops. This module defines the
// operator kinds appearing in the four benchmark workloads (Table I), their
// category mapping, which compute unit executes them (AdArray vs. SIMD), and
// their FLOP / byte cost model inputs.
#pragma once

#include <cstdint>
#include <string>

#include "quant/precision.h"

namespace nsflow {

/// Concrete operator kinds, matching the kernels in the paper's Listing 1
/// trace plus the standard CNN menagerie.
enum class OpKind : std::uint8_t {
  // Graph plumbing.
  kInput,
  kConstant,
  // Matrix-wise neural ops (run on AdArray in NN mode).
  kConv2d,
  kLinear,       // Fully connected / projection GEMM.
  kAttentionQkv, // Transformer projection GEMM (MIMONet variants).
  // Element-wise neural ops (run on SIMD).
  kRelu,
  kBatchNorm,
  kMaxPool,
  kAvgPool,
  kSoftmax,
  kAddElem,
  // Vector-wise symbolic ops (run on AdArray in VSA mode).
  kCircularBind,     // nvsa.binding_circular — blockwise circular conv.
  kCircularUnbind,   // nvsa.inv_binding_circular — circular correlation.
  // Element-wise / reduction symbolic ops (run on SIMD).
  kMatchProb,          // nvsa.match_prob
  kMatchProbBatched,   // nvsa.match_prob_multi_batched
  kVecSum,             // torch.sum
  kVecClamp,           // torch.clamp
  kVecMul,             // operator.mul
  kVecNorm,
  kProbAbduction,      // PrAE-style probabilistic scene abduction.
};

/// The paper's five operation categories (Fig. 1 legend).
enum class OpCategory : std::uint8_t {
  kMatrixNn,      // Matrix-wise NN operations.
  kOtherGemm,     // Other GEMMs.
  kVectorVsa,     // Vector-wise VSA operations.
  kElemVsa,       // Element-wise VSA operations.
  kElemNn,        // Element-wise NN operations.
  kNone,          // Inputs/constants.
};

/// Which side of the neuro-symbolic split an op belongs to.
enum class Domain : std::uint8_t { kNeuro, kSymbolic, kNone };

/// Which hardware unit executes the op.
enum class ComputeUnit : std::uint8_t { kAdArray, kSimd, kNone };

OpCategory CategoryOf(OpKind kind);
Domain DomainOf(OpKind kind);
ComputeUnit UnitOf(OpKind kind);
const char* OpKindName(OpKind kind);
OpKind OpKindFromName(const std::string& name);

/// GEMM dimensions after lowering (conv via im2col): C[m,k] = A[m,n]·B[n,k].
/// The analytical model's (d1, d2, d3) = (m, n, k).
struct GemmDims {
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t k = 0;

  double Flops() const { return 2.0 * static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k); }
  bool operator==(const GemmDims&) const = default;
};

/// Vector-symbolic kernel dimensions: `count` independent circular
/// convolutions (the paper's n_j) over vectors of `dim` elements (d_j).
struct VsaDims {
  std::int64_t count = 0;
  std::int64_t dim = 0;

  /// Direct-form circular convolution cost: count * (2 d^2) FLOPs.
  double Flops() const { return 2.0 * static_cast<double>(count) * static_cast<double>(dim) * static_cast<double>(dim); }
  bool operator==(const VsaDims&) const = default;
};

}  // namespace nsflow
