#include "vsa/codebook.h"

#include "common/error.h"

namespace nsflow::vsa {

Codebook::Codebook(BlockShape shape, std::int64_t num_symbols, Rng& rng,
                   std::string name)
    : name_(std::move(name)), shape_(shape) {
  NSF_CHECK_MSG(num_symbols > 0, "codebook needs at least one symbol");
  entries_.reserve(static_cast<std::size_t>(num_symbols));
  for (std::int64_t i = 0; i < num_symbols; ++i) {
    auto v = RandomHyperVector(shape, rng);
    v.NormalizeBlocks();
    entries_.push_back(std::move(v));
  }
}

const HyperVector& Codebook::at(std::int64_t symbol) const {
  NSF_CHECK_MSG(symbol >= 0 && symbol < size(), "codebook symbol out of range");
  return entries_[static_cast<std::size_t>(symbol)];
}

Codebook::CleanupResult Codebook::Cleanup(const HyperVector& query) const {
  CleanupResult result;
  result.scores.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const double score = Similarity(query, entries_[i]);
    result.scores.push_back(score);
    if (result.symbol < 0 || score > result.best_score) {
      result.runner_up_score =
          result.symbol < 0 ? -1.0 : result.best_score;
      result.best_score = score;
      result.symbol = static_cast<std::int64_t>(i);
    } else if (score > result.runner_up_score) {
      result.runner_up_score = score;
    }
  }
  return result;
}

void Codebook::QuantizeInPlace(Precision precision) {
  for (auto& entry : entries_) {
    entry = QuantizeHyperVector(entry, precision);
  }
}

double Codebook::ByteSize(Precision precision) const {
  double total = 0.0;
  for (const auto& entry : entries_) {
    total += entry.ByteSize(precision);
  }
  return total;
}

}  // namespace nsflow::vsa
