#include "quant/quantizer.h"

#include <cmath>

#include "common/error.h"
#include "quant/fp16.h"

namespace nsflow {

std::int32_t QuantParams::qmax() const {
  switch (precision) {
    case Precision::kINT8:
      return 127;
    case Precision::kINT4:
      return 7;
    default:
      throw Error("qmax() only defined for integer precisions");
  }
}

QuantParams QuantParams::Calibrate(Precision precision, float max_abs) {
  QuantParams params;
  params.precision = precision;
  const float qmax = static_cast<float>(params.qmax());
  // Guard the all-zero tensor: any positive scale represents it exactly.
  params.scale = max_abs > 0.0f ? max_abs / qmax : 1.0f;
  return params;
}

Tensor QuantizedTensor::Dequantize() const {
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = params.scale * static_cast<float>(values[static_cast<std::size_t>(i)]);
  }
  return t;
}

QuantizedTensor Quantize(const Tensor& t, Precision precision) {
  NSF_CHECK_MSG(precision == Precision::kINT8 || precision == Precision::kINT4,
                "Quantize expects an integer precision");
  QuantizedTensor q;
  q.shape = t.shape();
  q.params = QuantParams::Calibrate(precision, t.MaxAbs());
  q.values.resize(static_cast<std::size_t>(t.numel()));
  const auto qmax = q.params.qmax();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    const float scaled = t.at(i) / q.params.scale;
    const auto rounded = static_cast<std::int32_t>(std::lrintf(scaled));
    q.values[static_cast<std::size_t>(i)] =
        std::min(qmax, std::max(-qmax, rounded));
  }
  return q;
}

Tensor FakeQuantize(const Tensor& t, Precision precision) {
  switch (precision) {
    case Precision::kFP32:
      return t;
    case Precision::kFP16: {
      Tensor out(t.shape());
      for (std::int64_t i = 0; i < t.numel(); ++i) {
        out.at(i) = RoundToHalf(t.at(i));
      }
      return out;
    }
    case Precision::kINT8:
    case Precision::kINT4:
      return Quantize(t, precision).Dequantize();
  }
  throw Error("unknown precision in FakeQuantize");
}

double QuantizationRmse(const Tensor& t, Precision precision) {
  const Tensor q = FakeQuantize(t, precision);
  double acc = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    const double e = static_cast<double>(t.at(i)) - static_cast<double>(q.at(i));
    acc += e * e;
  }
  return t.numel() > 0 ? std::sqrt(acc / static_cast<double>(t.numel())) : 0.0;
}

}  // namespace nsflow
