#include "serve/capacity_planner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "arch/fastpath.h"
#include "common/error.h"
#include "common/table.h"
#include "fpga/resource_model.h"

namespace nsflow::serve {
namespace {

/// Erlang C — probability an arriving job waits in an M/M/k queue offered
/// `a` erlangs. Computed through the numerically stable Erlang B recursion
/// B(n) = a·B(n−1) / (n + a·B(n−1)). Requires a < k.
double ErlangC(int k, double a) {
  double b = 1.0;
  for (int n = 1; n <= k; ++n) {
    b = a * b / (static_cast<double>(n) + a * b);
  }
  const double rho = a / static_cast<double>(k);
  return b / (1.0 - rho * (1.0 - b));
}

/// Smallest n with P(Poisson(mean) <= n) >= q.
int PoissonQuantile(double mean, double q) {
  double pmf = std::exp(-mean);
  double cdf = pmf;
  int n = 0;
  while (cdf < q && n < 4096) {
    ++n;
    pmf *= mean / static_cast<double>(n);
    cdf += pmf;
  }
  return n;
}

/// The queueing-bound evaluation for one replica group under batch cap `c`
/// (see the header comment for the model and docs/PLANNING.md for its
/// assumptions).
struct QueueEval {
  bool stable = false;      // rho under the utilization cap.
  int planned_batch = 1;    // b*.
  double batch_service_s = 0.0;
  double utilization = 0.0;
  double p_wait = 0.0;      // Erlang C.
  double forming_s = 0.0;   // Forming-delay bound added to both quantiles.
  double wait_p50_s = 0.0;
  double wait_p99_s = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
};

QueueEval EvaluateQueue(double lambda_rps, int k,
                        const arch::ServingModel& model, std::int64_t cap,
                        double max_wait_s, double max_utilization) {
  QueueEval eval;
  // The former coalesces roughly one deadline window of arrivals per
  // launch, bounded by the lane's size cap.
  const auto batch = static_cast<std::int64_t>(
      std::clamp(std::ceil(lambda_rps * max_wait_s), 1.0,
                 static_cast<double>(cap)));
  eval.planned_batch = static_cast<int>(batch);
  eval.batch_service_s = model.BatchSeconds(eval.planned_batch);

  // Jobs are whole batches: rate lambda/b*, deterministic service S(b*).
  const double job_rate = lambda_rps / static_cast<double>(batch);
  const double a = job_rate * eval.batch_service_s;  // Offered erlangs.
  eval.utilization = a / static_cast<double>(k);
  eval.stable = eval.utilization <= max_utilization;

  // Forming delay: a cap-1 lane closes every batch at its own arrival and
  // pays nothing. In the deadline-close regime a thin batch's requests
  // wait out the full max_wait deadline; once size closes dominate (b* at
  // the cap), a batch fills in cap/lambda.
  if (cap == 1) {
    eval.forming_s = 0.0;
  } else {
    eval.forming_s =
        batch >= cap
            ? std::min(max_wait_s, static_cast<double>(cap) / lambda_rps)
            : max_wait_s;
  }

  if (eval.utilization < 1.0) {
    eval.p_wait = ErlangC(k, a);
    // M/M/k wait tail P(W > t) = C · e^{−θt}, θ = (k − a)/S. Service is
    // deterministic and batch-quantized here, so whenever tail waits occur
    // at all (P_wait above the quantile), the quantile request additionally
    // sits behind one full batch in service — waits come in service-sized
    // quanta. The exponential term covers the queue ahead of that batch.
    const double theta = (static_cast<double>(k) - a) / eval.batch_service_s;
    eval.wait_p99_s =
        eval.p_wait > 0.01
            ? std::log(eval.p_wait / 0.01) / theta + eval.batch_service_s
            : 0.0;
    eval.wait_p50_s =
        eval.p_wait > 0.5
            ? std::log(eval.p_wait / 0.5) / theta + eval.batch_service_s
            : 0.0;
  } else {
    // Unstable queue: report divergence, not numbers.
    eval.p_wait = 1.0;
    eval.wait_p99_s = std::numeric_limits<double>::infinity();
    eval.wait_p50_s = std::numeric_limits<double>::infinity();
  }

  // Batch-tail residence: the quantile request rides the batch its
  // co-arrival cluster formed. Residence on these designs is nearly linear
  // in batch size, and the busy-horizon deadline stretch lets a cluster
  // spanning a forming window plus one service keep feeding the same lane,
  // so the q-quantile batch is 1 + Q_q(Poisson co-arrivals in that span),
  // clamped to the cap. A cap-1 lane never batches.
  const auto tail_batch = [&](double q, double span_s) {
    if (cap == 1) {
      return 1;
    }
    return static_cast<int>(
        std::min(cap, 1 + static_cast<std::int64_t>(PoissonQuantile(
                          lambda_rps * span_s, q))));
  };
  const double residence_p99_s = model.BatchSeconds(
      tail_batch(0.99, max_wait_s + eval.batch_service_s));
  const double residence_p50_s =
      model.BatchSeconds(tail_batch(0.5, max_wait_s));

  eval.p50_s = eval.forming_s + eval.wait_p50_s + residence_p50_s;
  eval.p99_s = eval.forming_s + eval.wait_p99_s + residence_p99_s;
  return eval;
}

/// Mix-weighted aggregate latency quantile: the smallest per-group
/// q-quantile t such that groups covering a q-share of the traffic predict
/// their own q-quantile <= t. A conservative composition — the true mixed
/// quantile is never above it when every group meets its own prediction —
/// that avoids widening GroupPlan with tail parameters for a display-only
/// aggregate.
double AggregateQuantile(const std::vector<GroupPlan>& groups,
                         const std::vector<double>& shares, double q) {
  std::vector<std::pair<double, double>> by_quantile;  // (quantile, share).
  for (std::size_t i = 0; i < groups.size(); ++i) {
    // An unplaceable group (no replicas) has no latency at all — infinite,
    // not zero, or an infeasible plan's aggregate would read as passing.
    const double quantile =
        groups[i].replicas == 0
            ? std::numeric_limits<double>::infinity()
            : (q >= 0.99 ? groups[i].predicted_p99_s
                         : groups[i].predicted_p50_s);
    by_quantile.emplace_back(quantile, shares[i]);
  }
  std::sort(by_quantile.begin(), by_quantile.end());
  double covered = 0.0;
  for (const auto& [quantile, share] : by_quantile) {
    covered += share;
    if (covered >= q) {
      return quantile;
    }
  }
  return by_quantile.empty() ? 0.0 : by_quantile.back().first;
}

double BottleneckShare(const ResourceReport& report) {
  return std::max({report.dsp_util, report.lut_util, report.ff_util,
                   report.bram_util, report.uram_util});
}

}  // namespace

int PoolPlan::TotalReplicas() const {
  int total = 0;
  for (const GroupPlan& group : groups) {
    total += group.replicas;
  }
  return total;
}

std::vector<std::int64_t> PoolPlan::PerWorkloadMaxBatch() const {
  WorkloadId max_id = 0;
  for (const GroupPlan& group : groups) {
    max_id = std::max(max_id, group.workload_id);
  }
  std::vector<std::int64_t> caps(static_cast<std::size_t>(max_id) + 1, 0);
  for (const GroupPlan& group : groups) {
    caps[static_cast<std::size_t>(group.workload_id)] = group.batch_cap;
  }
  return caps;
}

std::vector<int> PoolPlan::Placement() const {
  std::vector<int> nodes_out;
  nodes_out.reserve(static_cast<std::size_t>(TotalReplicas()));
  for (const GroupPlan& group : groups) {
    for (int r = 0; r < group.replicas; ++r) {
      nodes_out.push_back(
          static_cast<std::size_t>(r) < group.placement.size()
              ? group.placement[static_cast<std::size_t>(r)]
              : 0);
    }
  }
  return nodes_out;
}

std::vector<ReplicaSpec> PoolPlan::Replicas() const {
  std::vector<ReplicaSpec> specs;
  specs.reserve(static_cast<std::size_t>(TotalReplicas()));
  for (const GroupPlan& group : groups) {
    for (int r = 0; r < group.replicas; ++r) {
      ReplicaSpec spec;
      spec.design = group.design;
      spec.workloads = {group.workload_id};
      spec.tuned_for = group.workload_id;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

const PlanFrontier::WorkloadEntry& PlanFrontier::Entry(
    const std::string& workload) const {
  for (const WorkloadEntry& entry : workloads) {
    if (entry.workload == workload) {
      return entry;
    }
  }
  throw Error("plan frontier was not built over workload '" + workload +
              "' (rebuild it with the full mix)");
}

PlanFrontier BuildPlanFrontier(const WorkloadRegistry& registry,
                               const std::vector<WorkloadShare>& mix,
                               const PlanOptions& options) {
  NSF_CHECK_MSG(!mix.empty(), "workload mix cannot be empty");
  PlanFrontier frontier;
  frontier.device = DeviceByName(options.device);

  DseOptions base = options.dse;
  base.dictionary_bytes = options.dictionary_bytes;
  for (const WorkloadShare& entry : mix) {
    PlanFrontier::WorkloadEntry workload;
    workload.workload = entry.workload;
    workload.workload_id = registry.IdOf(entry.workload);
    const DataflowGraph& dfg = registry.dataflow(workload.workload_id);
    workload.points = ParetoDesigns(dfg, base, options.frontier_points);
    workload.models.reserve(workload.points.size());
    workload.resources.reserve(workload.points.size());
    for (const ParetoPoint& point : workload.points) {
      workload.models.push_back(
          arch::BuildServingModel(point.design, dfg, /*tuned=*/true));
      workload.resources.push_back(
          EstimateResources(point.design, frontier.device));
    }
    frontier.workloads.push_back(std::move(workload));
  }
  return frontier;
}

PoolPlan PlanCapacity(const WorkloadRegistry& registry,
                      const std::vector<WorkloadShare>& mix,
                      const PlanOptions& options) {
  return PlanCapacity(registry, mix, options,
                      BuildPlanFrontier(registry, mix, options));
}

PoolPlan PlanCapacity(const WorkloadRegistry& registry,
                      const std::vector<WorkloadShare>& mix,
                      const PlanOptions& options,
                      const PlanFrontier& frontier) {
  NSF_CHECK_MSG(!mix.empty(), "workload mix cannot be empty");
  NSF_CHECK_MSG(options.p99_slo_s > 0.0, "p99 SLO must be positive");
  NSF_CHECK_MSG(options.qps > 0.0, "qps must be positive");
  NSF_CHECK_MSG(options.devices >= 1, "need at least one device");
  NSF_CHECK_MSG(options.nodes >= 1, "need at least one node");
  NSF_CHECK_MSG(options.devices % options.nodes == 0,
                "devices must split evenly across nodes (" +
                    std::to_string(options.devices) + " boards over " +
                    std::to_string(options.nodes) + " nodes)");
  NSF_CHECK_MSG(options.max_replicas_per_workload >= 1,
                "need at least one replica per workload");
  NSF_CHECK_MSG(
      options.max_utilization > 0.0 && options.max_utilization < 1.0,
      "utilization cap must be in (0, 1)");
  NSF_CHECK_MSG(options.max_batch >= 1, "max_batch must be positive");
  NSF_CHECK_MSG(options.max_wait_s >= 0.0, "max_wait_s must be non-negative");
  NSF_CHECK_MSG(options.scenario.kind != ScenarioKind::kClosedLoop,
                "closed-loop scenarios size their own load from the client "
                "count — plan with the open-loop pattern the clients "
                "approximate instead");

  const FpgaDevice& device = frontier.device;
  NSF_CHECK_MSG(DeviceByName(options.device).name == device.name,
                "plan frontier was built for a different budget device — "
                "rebuild it for '" + options.device + "'");

  PoolPlan plan;
  plan.mix = mix;
  plan.qps = options.qps;
  plan.planning_rate =
      ScenarioPeakRate(options.scenario, options.qps, /*duration_s=*/1.0);
  plan.p99_slo_s = options.p99_slo_s;
  plan.device_name = options.device;
  plan.devices = options.devices;
  plan.nodes = options.nodes;
  plan.max_batch = options.max_batch;
  plan.max_wait_s = options.max_wait_s;
  plan.scenario = options.scenario;
  plan.dse_clock_hz = options.dse.clock_hz;
  plan.dse_enable_phase2 = options.dse.enable_phase2;
  plan.dse_max_pes = options.dse.max_pes;
  plan.dictionary_bytes = options.dictionary_bytes;
  plan.feasible = true;

  double total_share = 0.0;
  for (const WorkloadShare& entry : mix) {
    NSF_CHECK_MSG(entry.share > 0.0, "mix shares must be positive");
    total_share += entry.share;
  }

  std::vector<double> shares_norm;
  for (const WorkloadShare& entry : mix) {
    shares_norm.push_back(entry.share / total_share);
    const WorkloadId id = registry.IdOf(entry.workload);
    const PlanFrontier::WorkloadEntry& swept = frontier.Entry(entry.workload);
    NSF_CHECK_MSG(swept.workload_id == id,
                  "plan frontier ids disagree with the registry — rebuild "
                  "the frontier against this registry");
    const double lambda = plan.planning_rate * entry.share / total_share;

    GroupPlan best;
    double best_cost = std::numeric_limits<double>::infinity();
    GroupPlan fallback;  // Lowest-p99 configuration at max replicas.
    bool have_fallback = false;
    bool any_design_fits = false;  // Distinguishes "doesn't fit a board"
                                   // from "overloaded at max replicas".

    for (std::size_t p = 0; p < swept.points.size(); ++p) {
      const ParetoPoint& point = swept.points[p];
      const ResourceReport& report = swept.resources[p];
      if (!report.fits) {
        continue;  // A single replica must fit one board.
      }
      any_design_fits = true;
      const double bottleneck = BottleneckShare(report);
      const arch::ServingModel& model = swept.models[p];

      const auto fill = [&](GroupPlan& group, std::int64_t cap, int k,
                            const QueueEval& eval) {
        group.workload = entry.workload;
        group.workload_id = id;
        group.design = point.design;
        group.pe_budget = point.pe_budget;
        group.pes = point.pes;
        group.replicas = k;
        group.lambda_rps = lambda;
        group.batch_cap = cap;
        group.planned_batch = eval.planned_batch;
        group.service_s = model.BatchSeconds(1);
        group.batch_service_s = eval.batch_service_s;
        group.utilization = eval.utilization;
        group.wait_p99_s = eval.wait_p99_s;
        group.predicted_p50_s = eval.p50_s;
        group.predicted_p99_s = eval.p99_s;
      };

      // Candidate batch caps: powers of two up to the policy bound (the
      // bound itself always included) — batching trades tail latency
      // (residence ~ linear in batch size) for throughput on
      // batch-amortizing workloads; the search makes the trade per
      // workload instead of hard-coding either answer.
      std::vector<std::int64_t> caps;
      for (std::int64_t c = 1; c < options.max_batch; c *= 2) {
        caps.push_back(c);
      }
      caps.push_back(options.max_batch);
      for (const std::int64_t cap : caps) {
        for (int k = 1; k <= options.max_replicas_per_workload; ++k) {
          const QueueEval eval =
              EvaluateQueue(lambda, k, model, cap, options.max_wait_s,
                            options.max_utilization);
          if (k == options.max_replicas_per_workload && eval.stable &&
              (!have_fallback || eval.p99_s < fallback.predicted_p99_s)) {
            // Best-effort answer when no configuration meets the SLO.
            fill(fallback, cap, k, eval);
            have_fallback = true;
          }
          if (eval.stable && eval.p99_s <= options.p99_slo_s) {
            // Smallest replica count for this (design, cap) meeting the
            // SLO; cost is the FPGA area it ties up (bottleneck share x
            // count).
            const double cost = bottleneck * static_cast<double>(k);
            if (cost < best_cost ||
                (cost == best_cost && eval.p99_s < best.predicted_p99_s)) {
              best_cost = cost;
              fill(best, cap, k, eval);
            }
            break;
          }
        }
      }
    }

    if (std::isfinite(best_cost)) {
      plan.groups.push_back(std::move(best));
    } else {
      plan.feasible = false;
      plan.note += (plan.note.empty() ? "" : "; ");
      if (have_fallback) {
        plan.note += "workload '" + entry.workload +
                     "' cannot meet the SLO within " +
                     std::to_string(options.max_replicas_per_workload) +
                     " replicas";
        plan.groups.push_back(std::move(fallback));
      } else {
        // No usable configuration at all: either nothing fits one board,
        // or every fitting design stays over the utilization cap even at
        // max replicas (overload) — distinct problems, distinct advice.
        if (any_design_fits) {
          plan.note += "workload '" + entry.workload +
                       "' exceeds the utilization cap even at " +
                       std::to_string(options.max_replicas_per_workload) +
                       " replicas (raise --max-replicas or reduce load)";
        } else {
          plan.note += "no frontier design of workload '" + entry.workload +
                       "' fits a single " + device.name;
        }
        GroupPlan unplaceable;
        unplaceable.workload = entry.workload;
        unplaceable.workload_id = id;
        unplaceable.lambda_rps = lambda;
        plan.groups.push_back(std::move(unplaceable));
      }
    }
  }

  // Budget accounting: summed per-replica resources against the aggregate
  // inventory (each replica already individually fits one board).
  for (const GroupPlan& group : plan.groups) {
    if (group.replicas == 0) {
      continue;
    }
    const ResourceReport report = EstimateResources(group.design, device);
    const auto k = static_cast<double>(group.replicas);
    plan.resources.dsp += k * report.dsp;
    plan.resources.lut += k * report.lut;
    plan.resources.ff += k * report.ff;
    plan.resources.bram18 += k * report.bram18;
    plan.resources.uram += k * report.uram;
  }
  const auto budget = static_cast<double>(plan.devices);
  plan.resources.fits =
      plan.resources.dsp <= budget * static_cast<double>(device.dsp) &&
      plan.resources.lut <= budget * static_cast<double>(device.lut) &&
      plan.resources.ff <= budget * static_cast<double>(device.ff) &&
      plan.resources.bram18 <= budget * static_cast<double>(device.bram18) &&
      plan.resources.uram <= budget * static_cast<double>(device.uram);
  if (!plan.resources.fits) {
    plan.feasible = false;
    plan.note += (plan.note.empty() ? "" : "; ");
    plan.note += "plan needs more FPGA area than " +
                 std::to_string(plan.devices) + " x " + device.name +
                 " provides (add --devices or relax the SLO)";
  }

  // Cross-node placement (docs/CLUSTER.md): the boards split evenly
  // across the nodes, and replicas land greedily in group order on the
  // node carrying the least accumulated bottleneck-share load (ties to
  // the lowest node) — tenants shard across the cluster instead of
  // packing node 0. Each node's summed resources must then fit its own
  // devices/nodes board slice, checked exactly like the aggregate.
  if (plan.nodes > 1) {
    const double per_node_boards =
        static_cast<double>(plan.devices) / static_cast<double>(plan.nodes);
    std::vector<double> load(static_cast<std::size_t>(plan.nodes), 0.0);
    std::vector<PlanResources> node_use(
        static_cast<std::size_t>(plan.nodes));
    for (GroupPlan& group : plan.groups) {
      if (group.replicas == 0) {
        continue;
      }
      const ResourceReport report = EstimateResources(group.design, device);
      const double bottleneck = BottleneckShare(report);
      group.placement.assign(static_cast<std::size_t>(group.replicas), 0);
      for (int r = 0; r < group.replicas; ++r) {
        int target = 0;
        for (int n = 1; n < plan.nodes; ++n) {
          if (load[static_cast<std::size_t>(n)] <
              load[static_cast<std::size_t>(target)]) {
            target = n;
          }
        }
        group.placement[static_cast<std::size_t>(r)] = target;
        const auto t = static_cast<std::size_t>(target);
        load[t] += bottleneck;
        node_use[t].dsp += report.dsp;
        node_use[t].lut += report.lut;
        node_use[t].ff += report.ff;
        node_use[t].bram18 += report.bram18;
        node_use[t].uram += report.uram;
      }
    }
    for (int n = 0; n < plan.nodes; ++n) {
      const PlanResources& use = node_use[static_cast<std::size_t>(n)];
      const bool node_fits =
          use.dsp <= per_node_boards * static_cast<double>(device.dsp) &&
          use.lut <= per_node_boards * static_cast<double>(device.lut) &&
          use.ff <= per_node_boards * static_cast<double>(device.ff) &&
          use.bram18 <=
              per_node_boards * static_cast<double>(device.bram18) &&
          use.uram <= per_node_boards * static_cast<double>(device.uram);
      if (!node_fits) {
        plan.feasible = false;
        plan.note += (plan.note.empty() ? "" : "; ");
        plan.note += "node " + std::to_string(n) +
                     " overflows its per-node budget of " +
                     std::to_string(plan.devices / plan.nodes) + " x " +
                     device.name + " (add --devices or --nodes)";
      }
    }
  }

  plan.predicted_p50_s = AggregateQuantile(plan.groups, shares_norm, 0.5);
  plan.predicted_p99_s = AggregateQuantile(plan.groups, shares_norm, 0.99);
  return plan;
}

Json PoolPlan::ToJson() const {
  JsonObject root;
  root["version"] = Json(1);

  JsonArray mix_json;
  for (const WorkloadShare& entry : mix) {
    JsonObject m;
    m["workload"] = Json(entry.workload);
    m["share"] = Json(entry.share);
    mix_json.push_back(Json(std::move(m)));
  }
  root["mix"] = Json(std::move(mix_json));

  JsonObject traffic;
  traffic["qps"] = Json(qps);
  traffic["scenario"] = Json(scenario.ToString());
  traffic["planning_rate_rps"] = Json(planning_rate);
  root["traffic"] = Json(std::move(traffic));

  JsonObject slo;
  slo["p99_ms"] = Json(p99_slo_s * 1e3);
  root["slo"] = Json(std::move(slo));

  JsonObject budget;
  budget["device"] = Json(device_name);
  budget["devices"] = Json(devices);
  root["budget"] = Json(std::move(budget));

  // Cluster shape and placement are emitted only for multi-node plans, so
  // a single-node plan's JSON stays byte-identical to the pre-cluster
  // schema (and pre-cluster readers keep loading it).
  if (nodes > 1) {
    JsonObject cluster;
    cluster["nodes"] = Json(nodes);
    root["cluster"] = Json(std::move(cluster));
  }

  JsonObject batching;
  batching["max_batch"] = Json(max_batch);
  batching["max_wait_ms"] = Json(max_wait_s * 1e3);
  root["batching"] = Json(std::move(batching));

  JsonObject dse;
  dse["clock_hz"] = Json(dse_clock_hz);
  dse["enable_phase2"] = Json(dse_enable_phase2);
  dse["max_pes"] = Json(dse_max_pes);
  dse["dictionary_bytes"] = Json(dictionary_bytes);
  root["dse"] = Json(std::move(dse));

  JsonArray groups_json;
  for (const GroupPlan& group : groups) {
    JsonObject g;
    g["workload"] = Json(group.workload);
    g["replicas"] = Json(group.replicas);
    g["pe_budget"] = Json(group.pe_budget);
    g["pes"] = Json(group.pes);
    g["lambda_rps"] = Json(group.lambda_rps);
    g["batch_cap"] = Json(group.batch_cap);
    g["planned_batch"] = Json(group.planned_batch);
    g["service_ms_batch1"] = Json(group.service_s * 1e3);
    g["service_ms_planned_batch"] = Json(group.batch_service_s * 1e3);
    JsonObject predicted;
    predicted["p50_ms"] = Json(group.predicted_p50_s * 1e3);
    predicted["p99_ms"] = Json(group.predicted_p99_s * 1e3);
    predicted["wait_p99_ms"] = Json(group.wait_p99_s * 1e3);
    predicted["utilization"] = Json(group.utilization);
    g["predicted"] = Json(std::move(predicted));
    if (nodes > 1 && !group.placement.empty()) {
      JsonArray placement;
      for (const int node : group.placement) {
        placement.push_back(Json(node));
      }
      g["placement"] = Json(std::move(placement));
    }
    groups_json.push_back(Json(std::move(g)));
  }
  root["groups"] = Json(std::move(groups_json));

  JsonObject resources;
  resources["dsp"] = Json(this->resources.dsp);
  resources["lut"] = Json(this->resources.lut);
  resources["ff"] = Json(this->resources.ff);
  resources["bram18"] = Json(this->resources.bram18);
  resources["uram"] = Json(this->resources.uram);
  resources["fits"] = Json(this->resources.fits);
  root["resources"] = Json(std::move(resources));

  JsonObject predicted;
  predicted["p50_ms"] = Json(predicted_p50_s * 1e3);
  predicted["p99_ms"] = Json(predicted_p99_s * 1e3);
  root["predicted"] = Json(std::move(predicted));

  root["feasible"] = Json(feasible);
  root["note"] = Json(note);
  return Json(std::move(root));
}

PoolPlan LoadPlan(const Json& plan_json, WorkloadRegistry& registry) {
  NSF_CHECK_MSG(plan_json.At("version").AsInt() == 1,
                "unsupported PoolPlan version");
  PoolPlan plan;
  for (const Json& entry : plan_json.At("mix").AsArray()) {
    WorkloadShare share;
    share.workload = entry.At("workload").AsString();
    share.share = entry.At("share").AsDouble();
    if (!registry.Contains(share.workload)) {
      registry.RegisterBuiltin(share.workload);
    }
    plan.mix.push_back(std::move(share));
  }

  const Json& traffic = plan_json.At("traffic");
  plan.qps = traffic.At("qps").AsDouble();
  plan.scenario = ScenarioSpec::Parse(traffic.At("scenario").AsString());
  plan.planning_rate = traffic.At("planning_rate_rps").AsDouble();
  plan.p99_slo_s = plan_json.At("slo").At("p99_ms").AsDouble() * 1e-3;
  plan.device_name = plan_json.At("budget").At("device").AsString();
  plan.devices = static_cast<int>(plan_json.At("budget").At("devices").AsInt());
  // Cluster shape joined the schema in PR 10; single-node plans omit it.
  if (plan_json.Contains("cluster")) {
    plan.nodes =
        static_cast<int>(plan_json.At("cluster").At("nodes").AsInt());
  }
  plan.max_batch = plan_json.At("batching").At("max_batch").AsInt();
  plan.max_wait_s =
      plan_json.At("batching").At("max_wait_ms").AsDouble() * 1e-3;
  plan.dse_clock_hz = plan_json.At("dse").At("clock_hz").AsDouble();
  plan.dse_enable_phase2 = plan_json.At("dse").At("enable_phase2").AsBool();
  // max_pes joined the schema in PR 5; plans written before it keep the
  // default sweep base.
  if (plan_json.At("dse").Contains("max_pes")) {
    plan.dse_max_pes = plan_json.At("dse").At("max_pes").AsInt();
  }
  plan.dictionary_bytes = plan_json.At("dse").At("dictionary_bytes").AsDouble();
  plan.feasible = plan_json.At("feasible").AsBool();
  plan.note = plan_json.At("note").AsString();
  plan.predicted_p50_s =
      plan_json.At("predicted").At("p50_ms").AsDouble() * 1e-3;
  plan.predicted_p99_s =
      plan_json.At("predicted").At("p99_ms").AsDouble() * 1e-3;

  const Json& resources = plan_json.At("resources");
  plan.resources.dsp = resources.At("dsp").AsDouble();
  plan.resources.lut = resources.At("lut").AsDouble();
  plan.resources.ff = resources.At("ff").AsDouble();
  plan.resources.bram18 = resources.At("bram18").AsDouble();
  plan.resources.uram = resources.At("uram").AsDouble();
  plan.resources.fits = resources.At("fits").AsBool();

  // Rebuild each group's design by re-running the deterministic DSE at the
  // recorded PE budget — bit-identical to the planner's design, with no
  // design serialization in the JSON. Assumes default DseOptions apart
  // from the recorded clock, Phase II switch, and dictionary reserve
  // (docs/PLANNING.md).
  DseOptions base;
  base.clock_hz = plan.dse_clock_hz;
  base.enable_phase2 = plan.dse_enable_phase2;
  base.dictionary_bytes = plan.dictionary_bytes;
  for (const Json& entry : plan_json.At("groups").AsArray()) {
    GroupPlan group;
    group.workload = entry.At("workload").AsString();
    group.workload_id = registry.IdOf(group.workload);
    group.replicas = static_cast<int>(entry.At("replicas").AsInt());
    group.pe_budget = entry.At("pe_budget").AsInt();
    group.pes = entry.At("pes").AsInt();
    group.lambda_rps = entry.At("lambda_rps").AsDouble();
    group.batch_cap = entry.At("batch_cap").AsInt();
    group.planned_batch =
        static_cast<int>(entry.At("planned_batch").AsInt());
    group.service_s = entry.At("service_ms_batch1").AsDouble() * 1e-3;
    group.batch_service_s =
        entry.At("service_ms_planned_batch").AsDouble() * 1e-3;
    const Json& predicted = entry.At("predicted");
    group.predicted_p50_s = predicted.At("p50_ms").AsDouble() * 1e-3;
    group.predicted_p99_s = predicted.At("p99_ms").AsDouble() * 1e-3;
    group.wait_p99_s = predicted.At("wait_p99_ms").AsDouble() * 1e-3;
    group.utilization = predicted.At("utilization").AsDouble();
    if (entry.Contains("placement")) {
      for (const Json& node : entry.At("placement").AsArray()) {
        group.placement.push_back(static_cast<int>(node.AsInt()));
      }
      NSF_CHECK_MSG(
          static_cast<int>(group.placement.size()) == group.replicas,
          "plan group '" + group.workload +
              "' records a placement for a different replica count — the "
              "plan is stale; re-run nsflow plan");
    }
    if (group.replicas > 0) {
      DseOptions options = base;
      options.max_pes = group.pe_budget;
      group.design =
          RunTwoPhaseDse(registry.dataflow(group.workload_id), options)
              .design;
      // Guard against stale or hand-edited plans: the rebuilt design must
      // be the one the recorded predictions describe.
      const std::int64_t rebuilt_pes = group.design.array.height *
                                       group.design.array.width *
                                       group.design.array.count;
      NSF_CHECK_MSG(rebuilt_pes == group.pes,
                    "plan group '" + group.workload +
                        "' rebuilds to a different design (" +
                        std::to_string(rebuilt_pes) + " PEs vs recorded " +
                        std::to_string(group.pes) +
                        ") — the plan is stale; re-run nsflow plan");
    }
    plan.groups.push_back(std::move(group));
  }
  return plan;
}

std::string PlanValidationTable(const PoolPlan& plan,
                                const StatsSummary& measured) {
  TablePrinter table({"workload", "replicas x PEs", "pred p50 (ms)",
                      "meas p50 (ms)", "pred p99 (ms)", "meas p99 (ms)",
                      "meas/pred p99"});
  for (const GroupPlan& group : plan.groups) {
    const auto w = static_cast<std::size_t>(group.workload_id);
    double measured_p50 = 0.0;
    double measured_p99 = 0.0;
    if (w < measured.per_workload.size()) {
      measured_p50 = measured.per_workload[w].p50_ms;
      measured_p99 = measured.per_workload[w].p99_ms;
    } else if (measured.per_workload.size() <= 1 && plan.groups.size() == 1) {
      measured_p50 = measured.p50_ms;
      measured_p99 = measured.p99_ms;
    }
    const double predicted_p99_ms = group.predicted_p99_s * 1e3;
    table.AddRow({group.workload,
                  std::to_string(group.replicas) + " x " +
                      std::to_string(group.pes),
                  TablePrinter::Num(group.predicted_p50_s * 1e3, 3),
                  TablePrinter::Num(measured_p50, 3),
                  TablePrinter::Num(predicted_p99_ms, 3),
                  TablePrinter::Num(measured_p99, 3),
                  predicted_p99_ms > 0.0
                      ? TablePrinter::Num(measured_p99 / predicted_p99_ms, 2)
                      : "-"});
  }
  table.AddRow({"aggregate", std::to_string(plan.TotalReplicas()) + " total",
                TablePrinter::Num(plan.predicted_p50_s * 1e3, 3),
                TablePrinter::Num(measured.p50_ms, 3),
                TablePrinter::Num(plan.predicted_p99_s * 1e3, 3),
                TablePrinter::Num(measured.p99_ms, 3),
                plan.predicted_p99_s > 0.0
                    ? TablePrinter::Num(
                          measured.p99_ms / (plan.predicted_p99_s * 1e3), 2)
                    : "-"});
  return table.ToString();
}

}  // namespace nsflow::serve
