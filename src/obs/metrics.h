// Metrics registry — typed counters, gauges, and log-bucketed latency
// histograms for NSFlow-Serve observability (docs/OBSERVABILITY.md).
//
// The registry is the pull-side complement of the TraceRecorder: where the
// recorder captures *events* (one record per request/batch/decision), the
// registry captures *aggregates* that the serving components publish into —
// completed counts, cache hit/miss tallies, batch close reasons, latency
// distributions. Instruments are created once by name (std::map keeps the
// serialized order deterministic) and callers hold raw pointers afterwards,
// so the steady-state publish path is an atomic add / a bucket increment
// with no allocation and no map lookup.
//
// Histograms are HDR-style log-bucketed with a *pinned* bucket-boundary
// schema: bucket i spans [kBase * 2^(i/kBucketsPerOctave), next boundary).
// The schema (base, buckets-per-octave, bucket count) is a versioned
// contract — two histograms with the same schema merge by adding counts,
// and a serialized timeline stays comparable across runs and commits
// (tests/obs_test.cpp pins the boundaries).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"

namespace nsflow::obs {

/// Monotonically increasing event tally. Relaxed atomics: counters are
/// published from the engine's consumer thread and read after the run (or
/// at snapshot points on the same thread), so no ordering is needed.
class Counter {
 public:
  void Increment(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins instantaneous value (active replicas, window rate).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed latency histogram with a pinned bucket-boundary schema.
///
/// Boundary(i) = kBase * 2^(i / kBucketsPerOctave): quarter-octave buckets
/// from 1 us up past ~100 s (relative bucket width 2^(1/4) ~= 19%), plus an
/// underflow bucket for values below kBase. Mergeable: two histograms with
/// the same schema add bucket-wise.
class Histogram {
 public:
  static constexpr double kBase = 1e-6;     // Seconds; bucket 0's floor.
  static constexpr int kBucketsPerOctave = 4;
  static constexpr int kBucketCount = 112;  // Through kBase * 2^28 = 268 s.
  static constexpr int kSchemaVersion = 1;

  /// Lower edge of bucket `i` (i == 0 -> kBase). Exact for whole octaves:
  /// Boundary(4) == 2e-6, Boundary(8) == 4e-6, ...
  static double Boundary(int i);
  /// Bucket index for `value_s` (underflow -> -1 maps to the underflow
  /// slot; overflow clamps into the last bucket).
  static int BucketFor(double value_s);

  void Observe(double value_s);
  void Merge(const Histogram& other);

  std::int64_t count() const { return count_; }
  double sum_s() const { return sum_s_; }
  double min_s() const { return count_ > 0 ? min_s_ : 0.0; }
  double max_s() const { return count_ > 0 ? max_s_ : 0.0; }
  std::int64_t underflow() const { return underflow_; }
  std::int64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)];
  }

  /// Upper bucket boundary containing the p-th percentile (nearest-rank on
  /// bucket counts) — a <=19%-wide bracket of the true value.
  double ValueAtPercentile(double p) const;

  /// Sparse serialization: schema header + only the non-zero buckets.
  Json ToJson() const;

 private:
  std::array<std::int64_t, kBucketCount> buckets_{};
  std::int64_t underflow_ = 0;
  std::int64_t count_ = 0;
  double sum_s_ = 0.0;
  double min_s_ = 0.0;
  double max_s_ = 0.0;
};

/// One virtual-time point of every instrument's value. Stored *typed* —
/// name pointers into the registry's maps (stable; a snapshot never
/// outlives its registry) plus plain value copies — so taking a snapshot
/// on the serve path costs three vector fills, not a Json tree build;
/// ToJson renders at export time.
struct MetricsSnapshot {
  double t_s = 0.0;
  std::vector<std::pair<const std::string*, std::int64_t>> counters;
  std::vector<std::pair<const std::string*, double>> gauges;
  std::vector<std::pair<const std::string*, Histogram>> histograms;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}
  Json ToJson() const;
};

class MetricsRegistry {
 public:
  /// Create-or-get by name. The returned pointer is stable for the life of
  /// the registry — resolve it once at attach time, publish through it.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Current values of every instrument as one deterministic Json object.
  Json Snapshot() const;
  /// Append a timeline point stamped at virtual time `t_s`. Cheap enough
  /// for the serve loop's snapshot clock: no Json building, no string
  /// copies (see MetricsSnapshot).
  void TakeSnapshot(double t_s);
  const std::vector<MetricsSnapshot>& timeline() const { return timeline_; }

  /// The metrics.json document: schema header + the snapshot timeline
  /// (callers append a final snapshot before serializing).
  Json TimelineJson() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::vector<MetricsSnapshot> timeline_;
};

}  // namespace nsflow::obs
