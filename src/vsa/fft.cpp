#include "vsa/fft.h"

#include <cmath>
#include <numbers>

#include "common/error.h"
#include "common/math_util.h"
#include "vsa/block_code.h"

namespace nsflow::vsa {
namespace {

bool PowerOfTwo(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Shared frequency-domain pipeline: out = IFFT(f(FFT(a), FFT(b))).
template <typename Combine>
void FrequencyDomainOp(std::span<const float> a, std::span<const float> b,
                       std::span<float> out, Combine&& combine) {
  const std::size_t d = a.size();
  std::vector<std::complex<double>> fa(d);
  std::vector<std::complex<double>> fb(d);
  for (std::size_t i = 0; i < d; ++i) {
    fa[i] = a[i];
    fb[i] = b[i];
  }
  Fft(fa, /*inverse=*/false);
  Fft(fb, /*inverse=*/false);
  for (std::size_t i = 0; i < d; ++i) {
    fa[i] = combine(fa[i], fb[i]);
  }
  Fft(fa, /*inverse=*/true);
  const double scale = 1.0 / static_cast<double>(d);
  for (std::size_t i = 0; i < d; ++i) {
    out[i] = static_cast<float>(fa[i].real() * scale);
  }
}

}  // namespace

void Fft(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  NSF_CHECK_MSG(PowerOfTwo(n), "FFT length must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      std::swap(data[i], data[j]);
    }
  }

  // Butterfly stages.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * std::numbers::pi /
                         static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> even = data[i + k];
        const std::complex<double> odd = data[i + k + len / 2] * w;
        data[i + k] = even + odd;
        data[i + k + len / 2] = even - odd;
        w *= wlen;
      }
    }
  }
}

void FastCircularConvolve(std::span<const float> a, std::span<const float> b,
                          std::span<float> out) {
  NSF_CHECK_MSG(a.size() == b.size() && a.size() == out.size(),
                "circular convolution requires equal lengths");
  if (!PowerOfTwo(a.size()) || a.size() < 2) {
    CircularConvolve(a, b, out);
    return;
  }
  FrequencyDomainOp(a, b, out, [](const std::complex<double>& x,
                                  const std::complex<double>& y) {
    return x * y;
  });
}

void FastCircularCorrelate(std::span<const float> a, std::span<const float> b,
                           std::span<float> out) {
  NSF_CHECK_MSG(a.size() == b.size() && a.size() == out.size(),
                "circular correlation requires equal lengths");
  if (!PowerOfTwo(a.size()) || a.size() < 2) {
    CircularCorrelate(a, b, out);
    return;
  }
  // corr(a, b)[n] = sum_k a[k] b[(k+n) mod d]  <=>  IFFT(conj(FFT(a)) FFT(b)).
  FrequencyDomainOp(a, b, out, [](const std::complex<double>& x,
                                  const std::complex<double>& y) {
    return std::conj(x) * y;
  });
}

}  // namespace nsflow::vsa
