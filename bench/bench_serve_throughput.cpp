// NSFlow-Serve throughput sweep: batch size x replica count.
//
// Drives the serving engine with a saturating open-loop Poisson trace (the
// offered load is set well above pool capacity) and reports sustained
// throughput, tail latency, and mean utilization at every (max batch,
// replicas) point, plus the speedup over the unbatched single-replica
// baseline. Shows the two levers the serving engine adds on top of the
// paper's one-shot accelerator: batching amortizes the stationary-weight
// AXI traffic, replication multiplies service capacity.
#include <cstdio>

#include "common/table.h"
#include "nsflow/framework.h"
#include "serve/engine.h"
#include "workloads/builders.h"

int main() {
  using namespace nsflow;
  std::printf("=== NSFlow-Serve: throughput sweep (batch x replicas) ===\n\n");

  const Compiler compiler;
  const CompiledDesign compiled =
      compiler.Compile(workloads::MakeNvsa());
  const DataflowGraph& dfg = *compiled.dataflow;

  serve::ServeOptions base;
  base.duration_s = 1.0;
  base.max_wait_s = 10e-3;
  base.seed = 7;

  // Unbatched single-replica capacity anchors the speedup column.
  serve::ServerPool probe({compiled.design()}, dfg);
  const double single_s = probe.BatchSeconds(0, 1);
  const double single_rps = 1.0 / single_s;
  std::printf("Single-request latency: %.3f ms (%.1f rps unbatched)\n\n",
              single_s * 1e3, single_rps);

  TablePrinter table({"replicas", "max batch", "offered (rps)",
                      "throughput (rps)", "speedup", "p50 (ms)", "p99 (ms)",
                      "mean util"});
  for (const int replicas : {1, 2, 4, 8}) {
    for (const std::int64_t max_batch : {std::int64_t{1}, std::int64_t{4},
                                         std::int64_t{8}, std::int64_t{16}}) {
      serve::ServeOptions options = base;
      options.max_batch = max_batch;
      // Saturate: offer ~4x the optimistic fully-batched capacity.
      options.qps = 4.0 * single_rps * replicas * static_cast<double>(max_batch);

      const std::vector<AcceleratorDesign> designs(
          static_cast<std::size_t>(replicas), compiled.design());
      const serve::ServeReport report =
          serve::RunSyntheticServe(dfg, designs, options);

      double util = 0.0;
      for (const double u : report.summary.replica_utilization) {
        util += u;
      }
      util /= static_cast<double>(replicas);

      table.AddRow({std::to_string(replicas),
                    std::to_string(max_batch),
                    TablePrinter::Num(options.qps, 0),
                    TablePrinter::Num(report.summary.throughput_rps, 1),
                    TablePrinter::Num(
                        report.summary.throughput_rps / single_rps, 2) +
                        "x",
                    TablePrinter::Num(report.summary.p50_ms, 1),
                    TablePrinter::Num(report.summary.p99_ms, 1),
                    TablePrinter::Percent(util)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Reading: at saturation, throughput scales ~linearly with replicas and "
      "sub-linearly\nwith batch size (batching amortizes weight AXI traffic, "
      "not array compute).\n");
  return 0;
}
