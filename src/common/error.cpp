#include "common/error.h"

#include <sstream>

namespace nsflow {

std::string CheckError::Format(std::string_view expr, std::string_view file,
                               int line, const std::string& msg) {
  std::ostringstream os;
  os << "CheckError: `" << expr << "` failed at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  return os.str();
}

namespace internal {

void ThrowCheckError(const char* expr, const char* file, int line,
                     const std::string& msg) {
  throw CheckError(expr, file, line, msg);
}

}  // namespace internal
}  // namespace nsflow
