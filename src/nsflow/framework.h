// NSFlow framework facade — the end-to-end flow of paper Fig. 2.
//
//   workload trace (.json / OperatorGraph)
//     └─ frontend: dataflow graph -> two-phase DSE -> design config + host code
//          └─ backend: parameterized accelerator (cycle-level simulator here;
//             RTL parameter header for a real Vivado flow) + XRT-like runtime
//
// `Compiler::Compile` runs the whole frontend; `Deploy` instantiates the
// simulated accelerator from the compiled design. This is the public entry
// point examples and benches use.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dse/dse.h"
#include "fpga/resource_model.h"
#include "graph/dataflow_graph.h"
#include "graph/operator_graph.h"
#include "runtime/host_runtime.h"

namespace nsflow {

/// Everything the frontend produces for one workload.
struct CompiledDesign {
  std::unique_ptr<OperatorGraph> graph;     // The ingested workload.
  std::unique_ptr<DataflowGraph> dataflow;  // Fig. 4 graph (references graph).
  DseResult dse;                            // Algorithm 1 output.
  std::string design_config_json;           // "System Design Config (.json)".
  std::string host_code;                    // Generated host C++ (XRT calls).
  std::string rtl_parameter_header;         // nsflow_params.vh.
  std::string rtl_top_level;                // nsflow_top.v.

  const AcceleratorDesign& design() const { return dse.design; }

  /// Predicted end-to-end latency (closed-form model), seconds.
  double PredictedSeconds() const;
};

struct CompileOptions {
  DseOptions dse;
  /// Reserve MemA2 headroom for cleanup dictionaries resident on-chip.
  double dictionary_bytes = 512.0 * 1024.0;
};

class Compiler {
 public:
  explicit Compiler(CompileOptions options = {}) : options_(std::move(options)) {}

  /// Frontend on an already-ingested operator graph.
  CompiledDesign Compile(OperatorGraph graph) const;

  /// Frontend from a JSON program trace (Fig. 2's entry artifact).
  CompiledDesign CompileJsonTrace(const std::string& trace_json) const;

 private:
  CompileOptions options_;
};

/// Instantiate the simulated accelerator for a compiled design.
std::unique_ptr<runtime::Accelerator> Deploy(const CompiledDesign& compiled);

/// One point on the (PE budget, latency) pareto frontier.
struct ParetoPoint {
  AcceleratorDesign design;
  double predicted_seconds = 0.0;  // End-to-end workload latency.
  std::int64_t pes = 0;            // H * W * N of the chosen array.
  /// The `max_pes` DSE budget that produced this design. Re-running the
  /// (deterministic) DSE with this budget reproduces `design` bit-exactly —
  /// the capacity planner records it so a serialized PoolPlan can rebuild
  /// its designs instead of serializing them.
  std::int64_t pe_budget = 0;
};

/// Sweep the DSE across shrinking PE budgets (halving from
/// `base.max_pes` down to `min_pes`) and keep the designs on the
/// (PEs, latency) pareto frontier, largest budget first. Serving pools use
/// this to deploy heterogeneous replica sets: a few full-budget low-latency
/// replicas plus smaller ones that trade latency for FPGA area.
std::vector<ParetoPoint> ParetoDesigns(const DataflowGraph& dfg,
                                       DseOptions base, int max_points,
                                       std::int64_t min_pes = 1024);

/// FPGA utilization of a compiled design on a device (Table III columns).
ResourceReport Report(const CompiledDesign& compiled, const FpgaDevice& device);

}  // namespace nsflow
