// Custom SIMD unit — paper Sec. IV-E.
//
// A bank of `width` processing elements, each with compact sum / mult-div /
// exp-log-tanh / norm / softmax circuits, sitting between the AdArray output
// (MemC) and the input SRAMs so element-wise and reduction kernels never
// round-trip through DRAM. Functionally exact over float spans; timing is
// one element per lane per cycle plus a pipeline-fill constant, matching
// model/analytical.h's SimdCycles.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace nsflow::arch {

enum class SimdOp : std::uint8_t {
  kRelu,
  kAdd,        // Element-wise a + b.
  kMul,        // Element-wise a * b.
  kScale,      // a * scalar.
  kClamp,      // clamp(a, lo, hi).
  kExp,
  kTanh,
  kSoftmax,    // In-place over the span.
  kSum,        // Reduction -> scalar.
  kNorm,       // L2 norm -> scalar.
  kDot,        // Reduction over a*b -> scalar.
};

struct SimdRun {
  double cycles = 0.0;
  double scalar_result = 0.0;  // For reductions.
};

class SimdUnit {
 public:
  explicit SimdUnit(std::int64_t width);

  std::int64_t width() const { return width_; }

  /// Unary / in-place ops (kRelu, kScale, kClamp, kExp, kTanh, kSoftmax).
  SimdRun RunUnary(SimdOp op, std::span<float> data, float arg0 = 0.0f,
                   float arg1 = 0.0f);

  /// Binary element-wise ops (kAdd, kMul): out = a (op) b.
  SimdRun RunBinary(SimdOp op, std::span<const float> a,
                    std::span<const float> b, std::span<float> out);

  /// Reductions (kSum, kNorm, kDot — pass b only for kDot).
  SimdRun RunReduce(SimdOp op, std::span<const float> a,
                    std::span<const float> b = {});

  double total_cycles() const { return total_cycles_; }
  double total_elems() const { return total_elems_; }

 private:
  double Charge(double elems);

  std::int64_t width_;
  double total_cycles_ = 0.0;
  double total_elems_ = 0.0;
};

}  // namespace nsflow::arch
