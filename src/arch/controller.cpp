#include "arch/controller.h"

#include <algorithm>

#include "arch/fastpath.h"
#include "common/error.h"

namespace nsflow::arch {

Controller::Controller(const AcceleratorDesign& design,
                       const DataflowGraph& dfg)
    : design_(design),
      dfg_(dfg),
      array_(design.array),
      simd_(design.simd_width),
      memory_(design.memory) {
  memory_.set_bytes_per_cycle(design.dram_bandwidth / design.clock_hz);
  if (design.sequential_mode) {
    memory_.MergeMemA();  // Single-kind execution: one big stationary buffer.
  }
}

SimReport Controller::EstimateLoop() const {
  return arch::EstimateLoop(design_, dfg_);
}

SimReport Controller::RunLoop() {
  SimReport report = arch::EstimateLoop(design_, dfg_);
  ReplayLoopTraffic();
  // Unlike the per-loop estimate, RunLoop reports the memory system's
  // cumulative AXI traffic (statistics accumulate across calls).
  report.dram_bytes = memory_.dram_bytes();
  return report;
}

void Controller::ReplayLoopTraffic() {
  const auto& layers = dfg_.layers();
  const auto& vsa = dfg_.vsa_ops();

  // Configure the fold for this loop. In sequential mode the whole array
  // serves each kernel in turn; in parallel mode the static split follows
  // the design's default partition (kernel-level refolds are reflected in
  // the per-node Nl/Nv the timing equations consume).
  if (design_.sequential_mode) {
    array_.Fold({design_.array.count, 0});
  } else {
    const std::int64_t nn_share =
        design_.default_nl > 0 ? design_.default_nl : design_.array.count / 2;
    array_.Fold({nn_share, design_.array.count - nn_share});
  }

  for (const auto& layer : layers) {
    // Stage this layer's filters into MemA1's shadow buffer while the
    // previous layer computes, then swap (double buffering).
    memory_.mem_a1().Stage(
        std::min(layer.weight_bytes, memory_.mem_a1().capacity() / 2.0));
    memory_.mem_a1().Swap();
    memory_.mem_b().Read(layer.weight_bytes);  // IFMAP stream proxy.
    memory_.mem_c().Clear();
    memory_.mem_c().Write(
        std::min(layer.output_bytes, memory_.mem_c().capacity()));

    // AXI traffic: filters always; outputs only when the URAM cache cannot
    // hold them for the next consumer.
    double bytes = layer.weight_bytes;
    if (layer.output_bytes > memory_.cache().capacity()) {
      bytes += layer.output_bytes;
    }
    memory_.DramTransfer(bytes);
  }

  for (const auto& v : vsa) {
    memory_.mem_a2().Stage(std::min(
        v.bytes / 2.0, memory_.mem_a2().capacity() / 2.0));  // Stationary.
    memory_.mem_a2().Swap();
    memory_.DramTransfer(v.bytes);
  }
}

double Controller::WeightDramCycles() const {
  return EstimateWeightDramCycles(design_, dfg_);
}

double Controller::RunWorkloadBatch(int batch_size) {
  // Validate before RunLoop(): a rejected batch size must not leave one
  // loop's traffic accumulated in the unit statistics.
  NSF_CHECK_MSG(batch_size >= 1, "batch size must be positive");
  return BatchSecondsFromReport(design_, dfg_, RunLoop(), batch_size);
}

double Controller::RunWorkload() {
  return WorkloadSecondsFromReport(design_, dfg_, RunLoop());
}

double Controller::EstimateWorkload() const {
  return EstimateWorkloadSeconds(design_, dfg_);
}

double Controller::EstimateWorkloadBatch(int batch_size) const {
  return EstimateWorkloadBatchSeconds(design_, dfg_, batch_size);
}

}  // namespace nsflow::arch
